package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
)

// traceSums folds a wire trace into the totals the acceptance
// invariants are stated over.
func traceSums(stages []gdb.TraceStage) (pruned, exactPairs, exactPruned int, byName map[string]gdb.TraceStage) {
	byName = make(map[string]gdb.TraceStage, len(stages))
	for _, s := range stages {
		byName[s.Stage] = s
		pruned += s.Pruned
		if s.Stage == "exact" {
			exactPairs, exactPruned = s.Pairs, s.Pruned
		}
	}
	return pruned, exactPairs, exactPruned, byName
}

// requireWireTraceConsistent asserts the HTTP-level acceptance
// invariant: the trace's per-stage pruned counts sum to the reported
// stats.Pruned, and exact-stage pairs minus exact-stage pruned equal
// stats.Evaluated.
func requireWireTraceConsistent(t *testing.T, label string, stages []gdb.TraceStage, stats QueryStats) {
	t.Helper()
	if len(stages) == 0 {
		t.Fatalf("%s: response carries no trace", label)
	}
	pruned, exactPairs, exactPruned, _ := traceSums(stages)
	if pruned != stats.Pruned {
		t.Fatalf("%s: stage pruned sum %d != stats.Pruned %d (trace %+v)", label, pruned, stats.Pruned, stages)
	}
	if exactPairs-exactPruned != stats.Evaluated {
		t.Fatalf("%s: exact pairs %d - pruned %d != stats.Evaluated %d (trace %+v)",
			label, exactPairs, exactPruned, stats.Evaluated, stages)
	}
	for _, s := range stages {
		if s.Pairs < 0 || s.Pruned < 0 || s.DurationMS < 0 {
			t.Fatalf("%s: negative stage counters: %+v", label, s)
		}
	}
}

// TestTraceEndToEnd posts traced queries of every kind and checks the
// returned per-stage pair counts reconcile with the reported stats —
// the acceptance invariant of the tracing layer, asserted through the
// full HTTP path.
func TestTraceEndToEnd(t *testing.T) {
	_, ts := newPivotTestServer(t, 2, Config{CacheSize: 16})

	var sky SkylineResponse
	r := postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery(), Trace: true}, &sky)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("skyline status = %d", r.StatusCode)
	}
	requireWireTraceConsistent(t, "skyline", sky.Trace, sky.Stats)
	if sky.Stats.Evaluated+sky.Stats.Pruned != 7 {
		t.Fatalf("skyline evaluated %d + pruned %d != 7", sky.Stats.Evaluated, sky.Stats.Pruned)
	}
	if _, _, _, byName := traceSums(sky.Trace); byName["merge"].Stage == "" {
		t.Fatalf("skyline trace has no merge stage: %+v", sky.Trace)
	}

	var tk TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: dataset.PaperQuery(), K: 3, Trace: true}, &tk)
	requireWireTraceConsistent(t, "topk", tk.Trace, tk.Stats)

	radius := 6.0
	var rng RangeResponse
	postJSON(t, ts.URL+"/query/range", QueryRequest{Graph: dataset.PaperQuery(), Radius: &radius, Trace: true}, &rng)
	requireWireTraceConsistent(t, "range", rng.Trace, rng.Stats)

	// Without "trace": true the field must stay off the wire.
	var quiet SkylineResponse
	resp, err := http.Post(ts.URL+"/query/skyline", "application/json",
		strings.NewReader(`{"graph":`+mustGraphJSON(t)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Contains(raw, []byte(`"trace"`)) {
		t.Fatalf("untraced response leaks a trace field: %s", raw)
	}
	if err := json.Unmarshal(raw, &quiet); err != nil {
		t.Fatal(err)
	}
}

func mustGraphJSON(t *testing.T) string {
	t.Helper()
	b, err := json.Marshal(dataset.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestBatchTraceConsistent asserts the same invariant for every item of
// a traced batch.
func TestBatchTraceConsistent(t *testing.T) {
	_, ts := newPivotTestServer(t, 2, Config{CacheSize: 0})
	radius := 6.0
	req := BatchRequest{Queries: []BatchQuery{
		{Kind: "skyline", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), Trace: true}},
		{Kind: "topk", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), K: 3, Trace: true}},
		{Kind: "range", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), Radius: &radius, Trace: true}},
	}}
	var resp BatchResponse
	r := postJSON(t, ts.URL+"/query/batch", req, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", r.StatusCode)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results; want 3", len(resp.Results))
	}
	for i, res := range resp.Results {
		if res.Error != "" {
			t.Fatalf("item %d failed: %s", i, res.Error)
		}
		var stages []gdb.TraceStage
		var stats QueryStats
		switch {
		case res.Skyline != nil:
			stages, stats = res.Skyline.Trace, res.Skyline.Stats
		case res.TopK != nil:
			stages, stats = res.TopK.Trace, res.TopK.Stats
		case res.Range != nil:
			stages, stats = res.Range.Trace, res.Range.Stats
		}
		requireWireTraceConsistent(t, fmt.Sprintf("batch item %d (%s)", i, res.Kind), stages, stats)
	}
}

// promLine matches one Prometheus text-format sample line. Label
// values may themselves contain braces (route patterns like
// "/graphs/{name}"), so the label block matches greedily to the last
// closing brace before the value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [-+0-9.eEIna]+$`)

// TestMetricsEndpoint scrapes /metrics after mixed traffic and checks
// the exposition: parseable sample lines, HELP/TYPE headers for every
// family, and non-zero values on the counters the traffic must have
// moved.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newPivotTestServer(t, 2, Config{CacheSize: 16})

	var sky SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &sky)
	var tk TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: dataset.PaperQuery(), K: 3}, &tk)
	// One bad request so an error code shows up per endpoint.
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: dataset.PaperQuery()}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q; want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	helped := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !helped[name] && !helped[family] {
			t.Fatalf("sample %q has no preceding HELP/TYPE header", name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	text := string(body)
	for _, want := range []string{
		`skygraph_http_requests_total{endpoint="POST /query/skyline",code="200"}`,
		`skygraph_http_requests_total{endpoint="POST /query/topk",code="400"}`,
		`skygraph_query_pairs_evaluated_total{kind="skyline"}`,
		`skygraph_query_duration_seconds_bucket{kind="skyline",le="+Inf"}`,
		`skygraph_http_request_duration_seconds_bucket{endpoint="POST /query/skyline",le="+Inf"}`,
		`skygraph_stage_seconds_total{stage="exact"}`,
		`skygraph_pivot_ready_columns{shard="0"}`,
		`skygraph_cache_entries`,
		"go_goroutines",
		"skygraph_uptime_seconds",
		"skygraph_build_info",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q\n%s", want, text)
		}
	}
	// The skyline query evaluated 7 fresh pairs — the kind-counter must
	// say so, not just exist.
	re := regexp.MustCompile(`skygraph_query_pairs_evaluated_total\{kind="skyline"\} (\d+)`)
	m := re.FindStringSubmatch(text)
	if m == nil || m[1] == "0" {
		t.Fatalf("skyline pairs-evaluated counter missing or zero (match %v)", m)
	}
}

// TestHealthAndReady checks both probes answer without touching the
// instrumented paths.
func TestHealthAndReady(t *testing.T) {
	s, ts := newPivotTestServer(t, 2, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
	}
	if !s.Ready() {
		t.Fatal("server with drained pivot backlog reports not ready")
	}
	// Probes must not show up in the per-endpoint request counters.
	var buf bytes.Buffer
	if err := s.Metrics().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "healthz") || strings.Contains(buf.String(), "readyz") {
		t.Fatal("health probes leaked into the request metrics")
	}
}

// TestSlowQueryLog drives a query past a zero-ish threshold and checks
// the log line: one JSON object with kind, duration and a trace that
// satisfies the same consistency invariant as the wire trace.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	db := gdb.NewSharded(1)
	if err := db.InsertAll(dataset.PaperDB()); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: &buf})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var sky SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &sky)

	s.slowMu.Lock()
	logged := buf.String()
	s.slowMu.Unlock()
	lines := strings.Split(strings.TrimSpace(logged), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d slow-log lines; want 1:\n%s", len(lines), logged)
	}
	var rec SlowQueryRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("slow-log line is not JSON: %v\n%s", err, lines[0])
	}
	if rec.Kind != "skyline" || rec.DurationMS < 0 || rec.Time == "" {
		t.Fatalf("bad slow-query record: %+v", rec)
	}
	requireWireTraceConsistent(t, "slow-log", rec.Trace, rec.Stats)
	if c := s.met.slowQueries.Value(); c != 1 {
		t.Fatalf("slow-query counter = %v; want 1", c)
	}

	// Below threshold nothing is logged.
	buf.Reset()
	s.cfg.SlowQueryThreshold = time.Hour
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: dataset.PaperQuery(), K: 2}, nil)
	s.slowMu.Lock()
	again := buf.String()
	s.slowMu.Unlock()
	if again != "" {
		t.Fatalf("fast query logged as slow: %s", again)
	}
}

// TestStatsRuntimeBuild checks /stats now reports runtime and build
// sections.
func TestStatsRuntimeBuild(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var st StatsResponse
	r := getJSON(t, ts.URL+"/stats", &st)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/stats status = %d", r.StatusCode)
	}
	if st.Runtime.Goroutines <= 0 || st.Runtime.HeapAllocByte == 0 {
		t.Fatalf("runtime section not populated: %+v", st.Runtime)
	}
	if st.Build.GoVersion == "" || st.Build.Revision == "" {
		t.Fatalf("build section not populated: %+v", st.Build)
	}
}
