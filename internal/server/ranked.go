package server

import (
	"context"
	"runtime"
	"time"

	"skygraph/internal/gdb"
	"skygraph/internal/topk"
)

// Pruned ranked serving. /query/topk and /query/range default to the
// best-first bound-index evaluation of gdb/ranked.go instead of
// building full vector tables: per shard, a complete table already in
// the cache is served as-is (its rows seed the shared threshold with
// zero pair evaluations), and only the remaining shards scan — all
// against ONE cross-shard threshold. The merged answer is cached under
// its own RankedKey variant; it never populates, shadows, or satisfies
// a full-table key, so a later skyline-with-table or unpruned request
// still builds (and caches) the real table.

// rankedAnswer is the outcome of one pruned ranked evaluation, plus
// what it cost.
type rankedAnswer struct {
	items   []topk.Item
	inexact int
	// evaluated and pruned count pair decisions this request caused
	// (0 when the whole answer came from a cache), with the pivot-tier
	// and score-memo activity of the fresh shard scans alongside.
	evaluated       int
	pruned          int
	pivotPruned     int
	pivotDists      int
	memoHits        int
	memoMisses      int
	vectorCells     int
	vectorSkipped   int
	vectorFallbacks int
	// shardHits counts shards served from cached complete tables; hit
	// reports the whole merged answer came from the ranked cache (or a
	// coalesced leader).
	shardHits int
	hit       bool
	// deltas counts the in-place delta upgrades the served cached
	// answer has absorbed since it was cold-built (0 for fresh
	// evaluations).
	deltas int
}

// rankedArg is the scalar the answer depends on: k for top-k, the
// radius for range.
func rankedArg(kind string, k int, radius float64) float64 {
	if kind == "topk" {
		return float64(k)
	}
	return radius
}

// ranked answers a pruned topk/range request end to end: ranked-answer
// cache, flight coalescing, then a leader evaluation. Mirrors
// shardTable's loop — a follower whose leader fails retries under its
// own deadline.
func (s *Server) ranked(ctx context.Context, kind string, res resolved, k int, radius float64) (rankedAnswer, error) {
	n := s.db.NumShards()
	for {
		gens := s.db.Generations()
		key := RankedKey(kind, gens, res.qh, res.m, rankedArg(kind, k, radius), res.opts.Eval)
		if res.novector {
			// The answers are byte-identical, but the opt-out is an A/B
			// measurement tool: it must neither serve nor seed the default
			// path's cached answers.
			key += "|novec"
		}
		if e, ok := s.cache.GetRanked(key); ok {
			return rankedAnswer{items: e.items, inexact: e.inexact, deltas: e.deltas, shardHits: n, hit: true}, nil
		}
		s.flightMu.Lock()
		leader, inflight := s.flight[key]
		if !inflight {
			c := &flightCall{done: make(chan struct{})}
			s.flight[key] = c
			s.flightMu.Unlock()
			return s.leadRanked(ctx, kind, res, k, radius, gens, key, c)
		}
		s.flightMu.Unlock()
		select {
		case <-leader.done:
			if leader.err == nil {
				ra := *leader.ra
				ra.evaluated, ra.pruned = 0, 0
				ra.pivotPruned, ra.pivotDists, ra.memoHits, ra.memoMisses = 0, 0, 0, 0
				ra.vectorCells, ra.vectorSkipped, ra.vectorFallbacks = 0, 0, 0
				ra.shardHits, ra.hit = n, true
				return ra, nil
			}
			// Leader failed for its own reasons; try again ourselves.
		case <-ctx.Done():
			return rankedAnswer{}, ctx.Err()
		}
	}
}

// leadRanked evaluates the merged ranked answer as the flight leader
// for key, publishing the result to followers via c.
func (s *Server) leadRanked(ctx context.Context, kind string, res resolved, k int, radius float64, gens []uint64, key string, c *flightCall) (ra rankedAnswer, err error) {
	defer func() {
		c.ra, c.err = &ra, err
		s.flightMu.Lock()
		delete(s.flight, key)
		s.flightMu.Unlock()
		close(c.done)
	}()

	// A previous leader may have published between our cache miss and
	// flight takeover.
	if e, ok := s.cache.getRankedRecheck(key); ok {
		return rankedAnswer{items: e.items, inexact: e.inexact, deltas: e.deltas, shardHits: s.db.NumShards(), hit: true}, nil
	}

	var run *gdb.Ranked
	if kind == "topk" {
		run = gdb.NewRankedTopK(res.m, k)
	} else {
		run = gdb.NewRankedRange(res.m, radius)
	}

	// Shards whose complete table is cached answer from it — their best
	// rows seed the shared threshold before any scan starts, and a
	// fully warmed cache answers with zero pair evaluations.
	var cold []int
	for i := 0; i < s.db.NumShards(); i++ {
		fullKey := CacheKey(i, gens[i], res.qh, res.basis, res.opts.Eval)
		t, ok := s.cache.getRecheck(fullKey)
		if !ok {
			cold = append(cold, i)
			continue
		}
		var items []topk.Item
		var terr error
		if kind == "topk" {
			items, terr = t.TopK(res.m, k)
		} else {
			items, terr = t.Range(res.m, radius)
		}
		if terr != nil {
			// Unreachable: full keys only ever hold complete tables
			// whose basis contains the ranking measure.
			cold = append(cold, i)
			continue
		}
		run.Offer(items)
		ra.shardHits++
	}

	if len(cold) > 0 {
		// One inflight slot per scanning shard, mirroring the table
		// path's accounting of evaluation capacity.
		if s.sem != nil {
			for acquired := 0; acquired < len(cold); acquired++ {
				select {
				case s.sem <- struct{}{}:
				default:
					for ; acquired > 0; acquired-- {
						<-s.sem
					}
					s.rejected.Add(1)
					return rankedAnswer{}, errTooBusy
				}
			}
			defer func() {
				for range cold {
					<-s.sem
				}
			}()
		}
		workers := s.cfg.Workers
		if workers <= 0 {
			workers = (runtime.GOMAXPROCS(0) + len(cold) - 1) / len(cold)
		}
		stats := make([]gdb.RankedStats, len(cold))
		errs := make([]error, len(cold))
		done := make(chan int)
		for j, shard := range cold {
			go func(j, shard int) {
				defer func() { done <- j }()
				opts := gdb.QueryOptions{Eval: res.opts.Eval, Workers: workers, Trace: res.opts.Trace, NoVector: res.novector}
				stats[j], errs[j] = run.EvalDB(ctx, s.db.Shard(shard), res.q, opts)
			}(j, shard)
		}
		for range cold {
			<-done
		}
		for _, e := range errs {
			if e != nil {
				return rankedAnswer{}, e
			}
		}
		for _, st := range stats {
			ra.evaluated += st.Evaluated
			ra.pruned += st.Pruned
			ra.inexact += st.Inexact
			ra.pivotPruned += st.PivotPruned
			ra.pivotDists += st.PivotDists
			ra.memoHits += st.MemoHits
			ra.memoMisses += st.MemoMisses
			ra.vectorCells += st.VectorCells
			ra.vectorSkipped += st.VectorSkipped
			ra.vectorFallbacks += st.VectorFallbacks
		}
	}

	var mstart time.Time
	if res.opts.Trace != nil {
		mstart = time.Now()
	}
	ra.items = run.Items()
	if kind == "range" {
		s.db.SortItemsByRank(ra.items)
	}
	res.opts.Trace.Observe(gdb.StageMerge, time.Since(mstart), len(ra.items), 0)
	s.pairEvals.Add(uint64(ra.evaluated))
	s.pairsPruned.Add(uint64(ra.pruned))
	s.pivotPruned.Add(uint64(ra.pivotPruned))
	s.pivotDists.Add(uint64(ra.pivotDists))
	s.memoHits.Add(uint64(ra.memoHits))
	s.memoMisses.Add(uint64(ra.memoMisses))
	s.vectorCells.Add(uint64(ra.vectorCells))
	s.vectorSkipped.Add(uint64(ra.vectorSkipped))
	s.vectorFallbacks.Add(uint64(ra.vectorFallbacks))
	// Cache only when no mutation raced the evaluation: generations are
	// monotone, so unchanged before/after means every snapshot the scan
	// used matches the keyed generations.
	if gensEqual(gens, s.db.Generations()) {
		s.cache.PutRanked(key, gens, &rankedEntry{
			items:   ra.items,
			inexact: ra.inexact,
			// The lineage makes the answer delta-maintainable: a later
			// single mutation can splice, append or prove it unchanged
			// instead of invalidating it (see delta.go).
			lin: &rankedLineage{
				kind:     kind,
				q:        res.q,
				qh:       res.qh,
				m:        res.m,
				arg:      rankedArg(kind, k, radius),
				novector: res.novector,
				eval:     res.opts.Eval,
			},
		})
	}
	return ra, nil
}

func gensEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rankedStats assembles the wire stats for one pruned ranked answer.
func (s *Server) rankedStats(ra rankedAnswer, start time.Time) QueryStats {
	return QueryStats{
		DeltaPatched:    ra.deltas,
		Evaluated:       ra.evaluated,
		Pruned:          ra.pruned,
		Inexact:         ra.inexact,
		PivotPruned:     ra.pivotPruned,
		PivotDists:      ra.pivotDists,
		MemoHits:        ra.memoHits,
		MemoMisses:      ra.memoMisses,
		VectorCells:     ra.vectorCells,
		VectorSkipped:   ra.vectorSkipped,
		VectorFallbacks: ra.vectorFallbacks,
		CacheHit:        ra.hit || ra.shardHits == s.db.NumShards(),
		Shards:          s.db.NumShards(),
		ShardHits:       ra.shardHits,
		DurationMS:      float64(time.Since(start).Microseconds()) / 1000,
	}
}
