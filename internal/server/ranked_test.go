package server

import (
	"net/http"
	"reflect"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/measure"
	"skygraph/internal/testutil"
)

// TestRankedPrunesByDefaultAndMatchesFull: the default topk and range
// paths run the best-first bound-index evaluation and return items —
// scores and tie-order — identical to a forced-full (prune=false)
// evaluation, across shard counts and measures, on the HTTP path.
func TestRankedPrunesByDefaultAndMatchesFull(t *testing.T) {
	gs := append(dataset.PaperDB(), testutil.SeededGraphs(6, 15)...)
	radius := 4.0
	noPrune := false
	for _, shards := range []int{1, 2, 3, 7} {
		for _, m := range []string{"DistEd", "DistGu"} {
			_, ts := newShardedTestServerWith(t, shards, Config{CacheSize: 64}, gs)
			for qi, q := range append(testutil.SeededQueries(88, gs, 2), dataset.PaperQuery()) {
				var full TopKResponse
				r := postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 4, Measure: m, Prune: &noPrune}, &full)
				if r.StatusCode != http.StatusOK {
					t.Fatalf("shards=%d m=%s q=%d: full status %d", shards, m, qi, r.StatusCode)
				}
				var pruned TopKResponse
				r = postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 4, Measure: m}, &pruned)
				if r.StatusCode != http.StatusOK {
					t.Fatalf("shards=%d m=%s q=%d: pruned status %d", shards, m, qi, r.StatusCode)
				}
				if !reflect.DeepEqual(full.Items, pruned.Items) {
					t.Fatalf("shards=%d m=%s q=%d: topk differs:\nfull   %v\npruned %v",
						shards, m, qi, full.Items, pruned.Items)
				}
				// The full tables are warm from the prune=false request,
				// so the pruned request is served from them.
				if !pruned.Stats.CacheHit || pruned.Stats.Evaluated != 0 {
					t.Fatalf("shards=%d m=%s q=%d: pruned topk missed the warm full tables: %+v",
						shards, m, qi, pruned.Stats)
				}
				var fullR, prunedR RangeResponse
				postJSON(t, ts.URL+"/query/range", QueryRequest{Graph: q, Radius: &radius, Measure: m, Prune: &noPrune}, &fullR)
				postJSON(t, ts.URL+"/query/range", QueryRequest{Graph: q, Radius: &radius, Measure: m}, &prunedR)
				if !reflect.DeepEqual(fullR.Items, prunedR.Items) {
					t.Fatalf("shards=%d m=%s q=%d: range differs:\nfull   %v\npruned %v",
						shards, m, qi, fullR.Items, prunedR.Items)
				}
			}
		}
	}
}

// TestRankedColdPathMatchesFull: cold pruned ranked evaluations (no
// warm tables anywhere) account for every graph and agree with the
// full path computed on a separate server.
func TestRankedColdPathMatchesFull(t *testing.T) {
	gs := append(dataset.PaperDB(), testutil.SeededGraphs(9, 12)...)
	noPrune := false
	for _, shards := range []int{1, 3} {
		_, tsFull := newShardedTestServerWith(t, shards, Config{CacheSize: 64}, gs)
		_, tsPruned := newShardedTestServerWith(t, shards, Config{CacheSize: 64}, gs)
		q := dataset.PaperQuery()
		var full, pruned TopKResponse
		postJSON(t, tsFull.URL+"/query/topk", QueryRequest{Graph: q, K: 5, Prune: &noPrune}, &full)
		postJSON(t, tsPruned.URL+"/query/topk", QueryRequest{Graph: q, K: 5}, &pruned)
		if !reflect.DeepEqual(full.Items, pruned.Items) {
			t.Fatalf("shards=%d: cold topk differs:\nfull   %v\npruned %v", shards, full.Items, pruned.Items)
		}
		if pruned.Stats.CacheHit {
			t.Fatalf("shards=%d: cold pruned topk claims a cache hit", shards)
		}
		if got := pruned.Stats.Evaluated + pruned.Stats.Pruned; got != len(gs) {
			t.Fatalf("shards=%d: evaluated %d + pruned %d != %d",
				shards, pruned.Stats.Evaluated, pruned.Stats.Pruned, len(gs))
		}
	}
}

// TestRankedAnswerCached: a repeated pruned ranked query is served from
// the ranked-answer cache with zero evaluations, and /stats totals the
// pruned pairs.
func TestRankedAnswerCached(t *testing.T) {
	_, ts := newShardedTestServerWith(t, 3, Config{CacheSize: 64}, dataset.PaperDB())
	q := dataset.PaperQuery()
	var first, second TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 2}, &first)
	if first.Stats.CacheHit {
		t.Fatal("first pruned topk claims a cache hit")
	}
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 2}, &second)
	if !second.Stats.CacheHit || second.Stats.Evaluated != 0 || second.Stats.Pruned != 0 {
		t.Fatalf("repeat pruned topk not served from cache: %+v", second.Stats)
	}
	if !reflect.DeepEqual(first.Items, second.Items) {
		t.Fatalf("cached items differ: %v vs %v", first.Items, second.Items)
	}
	st := statsOf(t, ts.URL)
	if st.Requests.PairEvals+st.Requests.PairsPruned < uint64(len(dataset.PaperDB())) {
		t.Fatalf("stats do not account for the scan: %+v", st.Requests)
	}
}

// TestRankedNeverShadowsFullTable: a pruned ranked answer must not
// satisfy (or block) a full-table request — the skyline-with-table
// request after a pruned topk still evaluates and returns every row.
func TestRankedNeverShadowsFullTable(t *testing.T) {
	_, ts := newShardedTestServerWith(t, 2, Config{CacheSize: 64}, dataset.PaperDB())
	q := dataset.PaperQuery()
	var tk TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 2}, &tk)
	var sky SkylineResponse
	r := postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q, All: true}, &sky)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("skyline status %d", r.StatusCode)
	}
	if len(sky.All) != len(dataset.PaperDB()) {
		t.Fatalf("full table after pruned topk holds %d rows; want %d", len(sky.All), len(dataset.PaperDB()))
	}
	if sky.Stats.CacheHit {
		t.Fatal("full-table request claims a cache hit off a ranked answer")
	}
}

// TestRankedMaintainedAcrossMutation: inserting a graph no longer
// discards a cached ranked answer — the delta layer upgrades it in
// place, and the patched answer matches a cold recompute exactly. With
// delta maintenance disabled, the insert falls back to invalidation.
func TestRankedMaintainedAcrossMutation(t *testing.T) {
	_, ts := newShardedTestServerWith(t, 2, Config{CacheSize: 64}, dataset.PaperDB())
	q := dataset.PaperQuery()
	var first TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3}, &first)
	extra := testutil.SeededGraphs(33, 1)
	extra[0].SetName("late-arrival")
	postJSON(t, ts.URL+"/graphs", InsertRequest{Graph: extra[0]}, &InsertResponse{})
	var second TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3}, &second)
	if !second.Stats.CacheHit || second.Stats.Evaluated+second.Stats.Pruned != 0 {
		t.Fatalf("pruned topk after insert not delta-maintained: %+v", second.Stats)
	}
	if second.Stats.DeltaPatched == 0 {
		t.Fatalf("maintained answer reports no delta patches: %+v", second.Stats)
	}
	// The patched answer must be byte-identical to a cold recompute on a
	// server that never cached anything.
	_, tsCold := newShardedTestServerWith(t, 2, Config{CacheSize: 64}, append(dataset.PaperDB(), extra[0]))
	var cold TopKResponse
	postJSON(t, tsCold.URL+"/query/topk", QueryRequest{Graph: q, K: 3}, &cold)
	if !reflect.DeepEqual(cold.Items, second.Items) {
		t.Fatalf("delta-patched topk differs from cold recompute:\ncold  %v\ndelta %v", cold.Items, second.Items)
	}
}

// TestRankedInvalidatedByMutationWithDeltaOff: with delta maintenance
// disabled, a mutation falls back to generation invalidation and the
// next ranked query rescans everything.
func TestRankedInvalidatedByMutationWithDeltaOff(t *testing.T) {
	_, ts := newShardedTestServerWith(t, 2, Config{CacheSize: 64, DisableDelta: true}, dataset.PaperDB())
	q := dataset.PaperQuery()
	var first TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3}, &first)
	extra := testutil.SeededGraphs(33, 1)
	extra[0].SetName("late-arrival")
	postJSON(t, ts.URL+"/graphs", InsertRequest{Graph: extra[0]}, &InsertResponse{})
	var second TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3}, &second)
	if second.Stats.CacheHit {
		t.Fatalf("pruned topk after insert served stale cache: %+v", second.Stats)
	}
	if got := second.Stats.Evaluated + second.Stats.Pruned; got != len(dataset.PaperDB())+1 {
		t.Fatalf("post-insert scan accounted %d graphs; want %d", got, len(dataset.PaperDB())+1)
	}
}

// TestBatchRankedMixedKinds: a batch mixing pruned skyline and ranked
// items over the same query coalesces onto full builds (no double
// evaluation), while a pure-ranked batch keeps the pruned path.
func TestBatchRankedMixedKinds(t *testing.T) {
	gs := dataset.PaperDB()
	_, ts := newShardedTestServerWith(t, 2, Config{CacheSize: 64}, gs)
	radius := 3.0
	var resp BatchResponse
	postJSON(t, ts.URL+"/query/batch", BatchRequest{Queries: []BatchQuery{
		{Kind: "topk", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), K: 3}},
		{Kind: "range", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), Radius: &radius}},
	}}, &resp)
	if resp.Stats.Errors != 0 {
		t.Fatalf("pure-ranked batch errors: %+v", resp)
	}
	// Pure-ranked batch: best-first scans, some graphs pruned.
	if resp.Stats.Evaluated+resp.Stats.Pruned == 0 {
		t.Fatalf("pure-ranked batch did no work: %+v", resp.Stats)
	}
	// Cross-check against the library reference.
	flat := testutil.NewDB(t, gs)
	ref, err := flat.TopKQuery(dataset.PaperQuery(), measure.DistEd{}, 3, gdb.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Results[0].TopK
	if got == nil || len(got.Items) != len(ref.Items) {
		t.Fatalf("batch topk = %+v, want %d items", got, len(ref.Items))
	}
	for i := range ref.Items {
		if got.Items[i].ID != ref.Items[i].ID || got.Items[i].Score != ref.Items[i].Score {
			t.Fatalf("batch topk item %d = %+v, want %+v", i, got.Items[i], ref.Items[i])
		}
	}
}
