package server

import (
	"fmt"
	"testing"

	"skygraph/internal/gdb"
	"skygraph/internal/measure"
)

func tableAt(gen uint64) *gdb.VectorTable {
	return &gdb.VectorTable{Generation: gen, Basis: measure.Default()}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	tab := tableAt(1)
	c.Put("a", 0, tab)
	got, ok := c.Get("a")
	if !ok || got != tab {
		t.Fatalf("Get(a) = %v, %v; want stored table", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 0, tableAt(1))
	c.Put("b", 0, tableAt(1))
	c.Get("a") // a is now more recent than b
	c.Put("c", 0, tableAt(1))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived eviction")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be cached")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d; want 1", st.Evictions)
	}
}

func TestCachePutExistingRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 0, tableAt(1))
	c.Put("b", 0, tableAt(1))
	c.Put("a", 0, tableAt(2)) // refresh, not a new entry
	c.Put("c", 0, tableAt(1))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should be evicted: a was refreshed to most recent")
	}
	got, ok := c.Get("a")
	if !ok || got.Generation != 2 {
		t.Fatalf("a should hold the refreshed table, got %+v, %v", got, ok)
	}
}

func TestCachePruneStale(t *testing.T) {
	c := NewCache(8)
	c.Put("g1-a", 0, tableAt(1))
	c.Put("g1-b", 0, tableAt(1))
	c.Put("g2-a", 0, tableAt(2))
	if dropped := c.PruneStale(0, 2); dropped != 2 {
		t.Fatalf("PruneStale dropped %d; want 2", dropped)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d after prune; want 1", c.Len())
	}
	if _, ok := c.Get("g2-a"); !ok {
		t.Fatal("current-generation entry must survive pruning")
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidations = %d; want 2", st.Invalidations)
	}
}

func TestCachePruneStaleKeepsNewer(t *testing.T) {
	// A handler racing with a later mutation may call PruneStale with a
	// stale (smaller) generation; entries newer than it must survive.
	c := NewCache(8)
	c.Put("g2-a", 0, tableAt(2))
	if dropped := c.PruneStale(0, 1); dropped != 0 {
		t.Fatalf("PruneStale(1) dropped %d newer entries; want 0", dropped)
	}
	if _, ok := c.Get("g2-a"); !ok {
		t.Fatal("newer-generation entry must survive a stale prune")
	}

	// The takeover window a delta upgrade opens: promote republishes an
	// entry at the mutation's generation before the routing pass's own
	// PruneStale (and any racing handler's) runs. A prune carrying the
	// upgrade's generation — or any older one — must treat the upgraded
	// entry as current, not stale.
	c.promote("g2-a", "g3-a", &cacheEntry{shard: 0, table: tableAt(3)})
	if dropped := c.PruneStale(0, 2); dropped != 0 {
		t.Fatalf("PruneStale(2) dropped %d upgraded entries; want 0", dropped)
	}
	if dropped := c.PruneStale(0, 3); dropped != 0 {
		t.Fatalf("PruneStale(3) dropped %d entries at its own generation; want 0", dropped)
	}
	if _, ok := c.Get("g3-a"); !ok {
		t.Fatal("delta-upgraded entry must survive prunes at or below its generation")
	}
	if _, ok := c.Get("g2-a"); ok {
		t.Fatal("promote must retire the old key")
	}
	if st := c.Stats(); st.DeltaApplied != 1 {
		t.Fatalf("delta_applied = %d; want 1", st.DeltaApplied)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("a", 0, tableAt(1))
	if _, ok := c.Get("a"); ok {
		t.Fatal("capacity-0 cache must never hit")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d; want 0", c.Len())
	}
}

func TestCacheKeyDistinguishesInputs(t *testing.T) {
	base := CacheKey(0, 1, "qh", measure.Default(), measure.Options{})
	variants := []string{
		CacheKey(0, 2, "qh", measure.Default(), measure.Options{}),
		CacheKey(0, 1, "other", measure.Default(), measure.Options{}),
		CacheKey(0, 1, "qh", []measure.Measure{measure.DistEd{}}, measure.Options{}),
		CacheKey(0, 1, "qh", measure.Default(), measure.Options{GEDMaxNodes: 10}),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with base key %s", i, base)
		}
	}
	if again := CacheKey(0, 1, "qh", measure.Default(), measure.Options{}); again != base {
		t.Errorf("key is not stable: %s vs %s", base, again)
	}
}

func TestCacheManyEntriesBounded(t *testing.T) {
	c := NewCache(16)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), 0, tableAt(1))
	}
	if c.Len() != 16 {
		t.Fatalf("len = %d; want capacity 16", c.Len())
	}
}

func TestCachePruneStaleIsPerShard(t *testing.T) {
	// Entries of other shards survive a prune no matter how old their
	// generation is — that is the point of per-shard invalidation.
	c := NewCache(8)
	c.Put("s0-old", 0, tableAt(1))
	c.Put("s1-old", 1, tableAt(1))
	if dropped := c.PruneStale(0, 5); dropped != 1 {
		t.Fatalf("PruneStale(0, 5) dropped %d; want 1", dropped)
	}
	if _, ok := c.Get("s1-old"); !ok {
		t.Fatal("shard 1 entry must survive a shard 0 prune")
	}
	if _, ok := c.Get("s0-old"); ok {
		t.Fatal("shard 0 entry must be pruned")
	}
}

func TestCacheKeyDistinguishesShards(t *testing.T) {
	a := CacheKey(0, 1, "qh", measure.Default(), measure.Options{})
	b := CacheKey(1, 1, "qh", measure.Default(), measure.Options{})
	if a == b {
		t.Fatalf("shard 0 and shard 1 keys collide: %s", a)
	}
}
