package server

import (
	"net/http"
	"reflect"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/graph"
)

// TestShardedServerMatchesSingleShard: the HTTP answers of a sharded
// server are byte-identical to a single-shard server's for all three
// query kinds, on the paper dataset.
func TestShardedServerMatchesSingleShard(t *testing.T) {
	_, ref := newShardedTestServer(t, 1, Config{CacheSize: 16})
	radius := 3.0
	var refSky SkylineResponse
	postJSON(t, ref.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery(), All: true}, &refSky)
	var refTk TopKResponse
	postJSON(t, ref.URL+"/query/topk", QueryRequest{Graph: dataset.PaperQuery(), K: 3}, &refTk)
	var refRg RangeResponse
	postJSON(t, ref.URL+"/query/range", QueryRequest{Graph: dataset.PaperQuery(), Radius: &radius}, &refRg)

	for _, shards := range []int{2, 3, 7} {
		_, ts := newShardedTestServer(t, shards, Config{CacheSize: 16})
		var sky SkylineResponse
		postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery(), All: true}, &sky)
		if !reflect.DeepEqual(sky.Skyline, refSky.Skyline) || !reflect.DeepEqual(sky.All, refSky.All) {
			t.Fatalf("%d shards: skyline answer differs:\n got %+v\nwant %+v", shards, sky, refSky)
		}
		var tk TopKResponse
		postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: dataset.PaperQuery(), K: 3}, &tk)
		if !reflect.DeepEqual(tk.Items, refTk.Items) {
			t.Fatalf("%d shards: topk answer differs:\n got %+v\nwant %+v", shards, tk.Items, refTk.Items)
		}
		var rg RangeResponse
		postJSON(t, ts.URL+"/query/range", QueryRequest{Graph: dataset.PaperQuery(), Radius: &radius}, &rg)
		if !reflect.DeepEqual(rg.Items, refRg.Items) {
			t.Fatalf("%d shards: range answer differs:\n got %+v\nwant %+v", shards, rg.Items, refRg.Items)
		}
	}
}

// TestInsertInvalidatesOnlyOwningShard: after a query populates one
// table per shard, an insert drops exactly the owning shard's entry,
// and the requery rebuilds only that shard.
func TestInsertInvalidatesOnlyOwningShard(t *testing.T) {
	const shards = 3
	s, ts := newShardedTestServer(t, shards, Config{CacheSize: 32})
	var first SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &first)
	if first.Stats.Evaluated+first.Stats.Pruned != 7 || first.Stats.ShardHits != 0 {
		t.Fatalf("cold query stats = %+v", first.Stats)
	}
	if got := s.Cache().Len(); got != shards {
		t.Fatalf("cache holds %d tables after cold query; want %d", got, shards)
	}

	g := graph.New("extra")
	g.AddVertex("a")
	g.AddVertex("b")
	g.MustAddEdge(0, 1, "x")
	owner := s.DB().ShardFor("extra")
	if r := postJSON(t, ts.URL+"/graphs", InsertRequest{Graph: g}, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("insert status = %d", r.StatusCode)
	}
	if got := s.Cache().Len(); got != shards-1 {
		t.Fatalf("cache holds %d tables after insert; want %d (only the owning shard pruned)", got, shards-1)
	}

	var second SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &second)
	wantEval := s.DB().Shard(owner).Len()
	if second.Stats.ShardHits != shards-1 || second.Stats.Evaluated+second.Stats.Pruned != wantEval {
		t.Fatalf("requery stats = %+v; want %d shard hits and %d evaluated+pruned (owning shard only)",
			second.Stats, shards-1, wantEval)
	}
	if len(second.Skyline) == 0 {
		t.Fatal("requery returned an empty skyline")
	}

	// Delete invalidates the owning shard again; the others stay warm.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/extra", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	var third SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &third)
	if third.Stats.ShardHits != shards-1 {
		t.Fatalf("post-delete stats = %+v; want %d warm shards", third.Stats, shards-1)
	}
}

// TestIsomorphicQueryHitsShardedCache: the canonical query hash shares
// per-shard tables across isomorphic re-encodings too.
func TestIsomorphicQueryHitsShardedCache(t *testing.T) {
	_, ts := newShardedTestServer(t, 3, Config{CacheSize: 16})
	var first SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &first)
	var second SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: permutedPaperQuery(t)}, &second)
	if !second.Stats.CacheHit || second.Stats.Evaluated != 0 {
		t.Fatalf("isomorphic requery stats = %+v; want full cache hit", second.Stats)
	}
	if !reflect.DeepEqual(second.Skyline, first.Skyline) {
		t.Fatalf("isomorphic requery answer differs: %+v vs %+v", second.Skyline, first.Skyline)
	}
}
