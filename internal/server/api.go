// Package server implements skygraphd's query-serving subsystem: an
// HTTP/JSON API over a sharded gdb database with a per-shard
// vector-table cache in front of the pair-evaluation hot path. The
// layers are
//
//   - cache.go: an LRU of per-shard GCS vector tables keyed by (shard,
//     shard generation, canonical query hash, basis, engine options),
//     so a repeated or refined query — same query graph, different k,
//     radius or skyline algorithm — answers with zero new pair
//     evaluations, and a mutation invalidates only its own shard's
//     tables;
//   - api.go (this file): the wire types;
//   - server.go: the handlers, per-shard table assembly and merging,
//     per-request timeouts and worker limits;
//   - batch.go: POST /query/batch, answering many queries with at most
//     one table build per (shard, query-hash) pair under one budget.
package server

import (
	"skygraph/internal/fault"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
)

// QueryRequest is the shared body of the three query endpoints
// (/query/skyline, /query/topk, /query/range). Graph uses the same JSON
// encoding as internal/graph: {"name", "vertices": ["label", ...],
// "edges": [{"u", "v", "label"}, ...]}.
type QueryRequest struct {
	// Graph is the query graph q (required).
	Graph *graph.Graph `json:"graph"`
	// K is the result size for /query/topk (required there, >= 1).
	K int `json:"k,omitempty"`
	// Radius is the distance threshold for /query/range (required there).
	Radius *float64 `json:"radius,omitempty"`
	// Measure names the ranking measure for topk/range (default DistEd).
	Measure string `json:"measure,omitempty"`
	// Basis names the GCS basis (default: DistEd, DistMcs, DistGu). For
	// topk/range the ranking measure is appended when absent, so default
	// topk/range tables are shared with default skyline tables.
	Basis []string `json:"basis,omitempty"`
	// Algorithm picks the skyline algorithm: "sfs" (default), "bnl",
	// "dac". Ignored by topk/range.
	Algorithm string `json:"algorithm,omitempty"`
	// Eval bounds the exact GED/MCS engines, merged per field over the
	// server defaults: zero (or omitted) keeps the server default, a
	// negative value explicitly requests unbounded exact computation.
	Eval *measure.Options `json:"eval,omitempty"`
	// TimeoutMS caps this request's evaluation time (0 = server default;
	// values above the server maximum are clamped).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// All requests the full vector table in the skyline response.
	All bool `json:"all,omitempty"`
	// Prune overrides filter-and-refine evaluation. Unset means the
	// server default: prune whenever the answer allows it — skyline
	// requests with no full table asked for (boundable basis), and
	// topk/range requests on a built-in measure, which then evaluate
	// best-first against the live k-th best score or radius instead of
	// building complete tables. Set false to force full evaluation —
	// e.g. to warm per-shard tables that later queries of any kind on
	// the same graph are served from.
	Prune *bool `json:"prune,omitempty"`
	// Trace requests the per-stage cascade trace in the response: one
	// entry per stage the query touched (vector, bound, pivot, refine,
	// exact, merge) with wall time, pair count and pruned count. The trace
	// is always recorded server-side (it feeds the stage metrics and the
	// slow-query log); this flag only controls whether it is returned.
	Trace bool `json:"trace,omitempty"`
	// Vector opts out of the vector candidate tier when set false: the
	// pruned paths scan in insertion order instead of partition-proximity
	// order and skip no cells. The answer is byte-identical either way —
	// the flag exists for A/B measurement against a daemon running with
	// -vector-cells. Unset (or true) uses the tier whenever the shards
	// carry a partition.
	Vector *bool `json:"vector,omitempty"`
}

// QueryStats reports the work a request caused.
type QueryStats struct {
	// Evaluated counts pair evaluations performed for this request;
	// it is 0 when every shard table came from the cache.
	Evaluated int `json:"evaluated"`
	// Pruned counts database graphs the filter-and-refine machinery
	// excluded without exact evaluation for this request: the interval
	// filter while building pruned skyline tables, the best-first
	// threshold cutoff and engine decision runs on the ranked paths.
	// Like Evaluated it is 0 for cache hits, so Evaluated + Pruned is
	// the total size of the freshly evaluated shards.
	Pruned int `json:"pruned"`
	// Inexact counts table pairs where a capped engine returned a bound
	// (a property of the answer, whether cached or fresh).
	Inexact int `json:"inexact"`
	// PivotPruned counts graphs (within Pruned) whose exclusion needed
	// the pivot tier's triangle-inequality bounds; PivotDists counts
	// the query-to-pivot distance computations the tier paid for. Both
	// are 0 when the daemon runs without -pivots, and 0 for cache hits
	// (like Evaluated/Pruned, they count work this request caused).
	PivotPruned int `json:"pivot_pruned"`
	PivotDists  int `json:"pivot_dists"`
	// MemoHits and MemoMisses count cross-query score-memo lookups
	// during this request's fresh evaluations; hits replayed recorded
	// engine results instead of running the exact engines. Both 0
	// without -memo.
	MemoHits   int `json:"memo_hits"`
	MemoMisses int `json:"memo_misses"`
	// VectorCells counts partition cells the vector tier probed for this
	// request's fresh evaluations; VectorSkipped counts graphs (within
	// Pruned) it excluded wholesale — by the admissible cell floor on the
	// ranked paths, by cell-floor dominance on the skyline path — without
	// even a signature bound; VectorFallbacks counts shard snapshots an
	// attached vector index could not serve (stale partition), which fell
	// back to the plain scan. All 0 without -vector-cells and for cache
	// hits.
	VectorCells     int `json:"vector_cells_probed"`
	VectorSkipped   int `json:"vector_skipped"`
	VectorFallbacks int `json:"vector_fallbacks"`
	// DeltaPatched counts the in-place delta upgrades the cached state
	// serving this answer has absorbed since it was cold-built (0 for
	// fresh evaluations and for caches maintained only by invalidation).
	DeltaPatched int `json:"delta_patched"`
	// CacheHit reports whether every shard table came from the cache.
	CacheHit bool `json:"cache_hit"`
	// Shards is the number of shards the query ran against.
	Shards int `json:"shards"`
	// ShardHits counts shard tables served from the cache (or a
	// coalesced in-flight leader).
	ShardHits int `json:"shard_hits"`
	// DurationMS is the server-side wall-clock time for the request.
	DurationMS float64 `json:"duration_ms"`
}

// PointJSON is one (graph, GCS vector) row.
type PointJSON struct {
	ID  string    `json:"id"`
	Vec []float64 `json:"vec"`
}

// SkylineResponse answers /query/skyline.
type SkylineResponse struct {
	Basis   []string    `json:"basis"`
	Skyline []PointJSON `json:"skyline"`
	// All holds the full vector table when requested.
	All   []PointJSON `json:"all,omitempty"`
	Stats QueryStats  `json:"stats"`
	// Trace is the per-stage cascade breakdown (present when the request
	// set "trace": true). Stage durations are summed across shards and
	// workers, so they can exceed the request's wall-clock duration.
	Trace []gdb.TraceStage `json:"trace,omitempty"`
}

// ItemJSON is one (graph, scalar distance) row.
type ItemJSON struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

// TopKResponse answers /query/topk.
type TopKResponse struct {
	Measure string           `json:"measure"`
	K       int              `json:"k"`
	Items   []ItemJSON       `json:"items"`
	Stats   QueryStats       `json:"stats"`
	Trace   []gdb.TraceStage `json:"trace,omitempty"`
}

// RangeResponse answers /query/range.
type RangeResponse struct {
	Measure string           `json:"measure"`
	Radius  float64          `json:"radius"`
	Items   []ItemJSON       `json:"items"`
	Stats   QueryStats       `json:"stats"`
	Trace   []gdb.TraceStage `json:"trace,omitempty"`
}

// BatchRequest is the body of POST /query/batch: many queries answered
// in one request, sharing the shard pool, the per-shard table cache and
// one time budget. Identical (or isomorphic) query graphs in a batch
// cost one vector-table build per (shard, query-hash) pair.
type BatchRequest struct {
	// Queries holds the batch items (required, at most the server's
	// batch limit).
	Queries []BatchQuery `json:"queries"`
	// TimeoutMS is the budget for the whole batch (0 = server default;
	// clamped to the server maximum). Per-item timeout_ms fields are
	// ignored inside a batch.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BatchQuery is one batch item: a query kind plus the usual query
// fields.
type BatchQuery struct {
	// Kind selects the query type: "skyline" (default), "topk", "range".
	Kind string `json:"kind,omitempty"`
	QueryRequest
}

// BatchResult answers one batch item: exactly one of Skyline/TopK/Range
// is set on success, Error on failure. Item failures do not fail the
// batch.
type BatchResult struct {
	Kind    string           `json:"kind"`
	Skyline *SkylineResponse `json:"skyline,omitempty"`
	TopK    *TopKResponse    `json:"topk,omitempty"`
	Range   *RangeResponse   `json:"range,omitempty"`
	Error   string           `json:"error,omitempty"`
}

// stats returns the per-item query stats of whichever answer is set.
func (r BatchResult) stats() QueryStats {
	switch {
	case r.Skyline != nil:
		return r.Skyline.Stats
	case r.TopK != nil:
		return r.TopK.Stats
	case r.Range != nil:
		return r.Range.Stats
	}
	return QueryStats{}
}

// BatchStats aggregates the work one batch caused.
type BatchStats struct {
	// Queries is the number of items in the batch.
	Queries int `json:"queries"`
	// Errors counts items that failed.
	Errors int `json:"errors"`
	// Evaluated counts pair evaluations across the batch; coalesced and
	// cached items contribute 0.
	Evaluated int `json:"evaluated"`
	// Pruned counts graphs the bound filter excluded across the batch's
	// answers.
	Pruned int `json:"pruned"`
	// PivotPruned, PivotDists, MemoHits and MemoMisses aggregate the
	// per-item pivot-tier and score-memo counters (see QueryStats).
	PivotPruned int `json:"pivot_pruned"`
	PivotDists  int `json:"pivot_dists"`
	MemoHits    int `json:"memo_hits"`
	MemoMisses  int `json:"memo_misses"`
	// VectorCells, VectorSkipped and VectorFallbacks aggregate the
	// per-item vector-tier counters (see QueryStats).
	VectorCells     int `json:"vector_cells_probed"`
	VectorSkipped   int `json:"vector_skipped"`
	VectorFallbacks int `json:"vector_fallbacks"`
	// DeltaPatched aggregates the per-item delta-upgrade counts (see
	// QueryStats).
	DeltaPatched int `json:"delta_patched"`
	// ShardHits counts shard tables served from the cache or a
	// coalesced leader across the batch.
	ShardHits int `json:"shard_hits"`
	// DurationMS is the server-side wall-clock time for the batch.
	DurationMS float64 `json:"duration_ms"`
}

// BatchResponse answers /query/batch, one result per query in order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	Stats   BatchStats    `json:"stats"`
}

// InsertRequest is the body of POST /graphs. Exactly one of Graph or
// Graphs must be set.
type InsertRequest struct {
	Graph  *graph.Graph   `json:"graph,omitempty"`
	Graphs []*graph.Graph `json:"graphs,omitempty"`
	// IdempotencyKey makes the insert safely retryable. The key is
	// persisted with each WAL record it inserts, so the server has
	// durable evidence of which names this key applied — in-process and
	// across restarts. A retry replays the recorded ack, or skips the
	// names proven applied under the key and inserts only the
	// remainder (completing a partially applied multi-graph insert).
	// Names the key never inserted get no benefit of the doubt: a keyed
	// insert of a name someone else created is a genuine 409 conflict.
	// Keys are client-chosen; reuse across different payloads is the
	// client's bug.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// InsertResponse confirms an insert.
type InsertResponse struct {
	// Inserted lists every requested name now applied under this
	// request's key — freshly inserted or already proven inserted by an
	// earlier attempt with the same key.
	Inserted   []string `json:"inserted"`
	Generation uint64   `json:"generation"`
	// Skipped lists the subset of Inserted that was not re-applied: the
	// WAL already showed them inserted under this key.
	Skipped []string `json:"skipped,omitempty"`
	// Replayed reports that nothing was newly inserted — the whole
	// response answers an earlier attempt with the same key, either
	// from the replay table or from keys recovered out of the WAL.
	Replayed bool `json:"replayed,omitempty"`
}

// DeleteResponse confirms a delete.
type DeleteResponse struct {
	Deleted    string `json:"deleted"`
	Generation uint64 `json:"generation"`
	// Replayed mirrors InsertResponse.Replayed for keyed deletes (the
	// key travels in the X-Skygraph-Idempotency-Key header, DELETE
	// having no body).
	Replayed bool `json:"replayed,omitempty"`
}

// ListResponse answers GET /graphs.
type ListResponse struct {
	Names      []string `json:"names"`
	Generation uint64   `json:"generation"`
}

// StatsResponse answers GET /stats.
type StatsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Generation    uint64      `json:"generation"`
	DB            DBStats     `json:"db"`
	Shards        []ShardInfo `json:"shards"`
	Cache         CacheStats  `json:"cache"`
	// Memo is the cross-query score memo's occupancy and lifetime
	// hit/miss counters (absent without -memo).
	Memo *gdb.MemoStats `json:"memo,omitempty"`
	// Durability reports the persistence layer — WAL occupancy, fsync
	// policy, snapshot progress and what the last recovery rebuilt
	// (absent without -data-dir).
	Durability *DurabilityInfo `json:"durability,omitempty"`
	// Health reports the write-path health state machine (absent
	// without -data-dir: an in-memory daemon has no disk to break).
	Health *HealthInfo `json:"health,omitempty"`
	// Fault lists the armed failpoints and their hit/fire counters
	// (absent when none are armed — the production steady state).
	Fault    *FaultInfo   `json:"fault,omitempty"`
	Requests ReqStats     `json:"requests"`
	Runtime  RuntimeStats `json:"runtime"`
	Build    BuildInfo    `json:"build"`
}

// HealthInfo is the wire form of the health state machine.
type HealthInfo struct {
	// State is serving, degraded_readonly or recovering.
	State string `json:"state"`
	// ConsecutiveFailures counts transient persist failures since the
	// last success; Degradations counts serving → degraded transitions.
	ConsecutiveFailures int64  `json:"consecutive_persist_failures"`
	Degradations        uint64 `json:"degradations"`
	// Probes and ProbeFailures count the background WAL write probes
	// fired while degraded.
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	// LastPersistError is the most recent transient persist or probe
	// error (empty while everything works).
	LastPersistError string `json:"last_persist_error,omitempty"`
	// InsertSeqHighWater is the largest insert sequence minted so far —
	// the client's reference point for idempotent retry decisions.
	InsertSeqHighWater uint64 `json:"insert_seq_high_water"`
}

// DurabilityInfo is the wire form of the persistence layer's state.
type DurabilityInfo struct {
	// Dir is the data directory; Sync the WAL fsync policy in effect.
	Dir  string `json:"dir"`
	Sync string `json:"sync"`
	// WAL occupancy and lifetime append counters.
	WALSegments    int    `json:"wal_segments"`
	WALSizeBytes   int64  `json:"wal_size_bytes"`
	WALLastLSN     uint64 `json:"wal_last_lsn"`
	WALAppends     uint64 `json:"wal_appends"`
	WALFsyncs      uint64 `json:"wal_fsyncs"`
	Snapshots      uint64 `json:"snapshots"`
	LastSnapLSN    uint64 `json:"last_snapshot_lsn"`
	LastSnapGraphs int    `json:"last_snapshot_graphs"`
	// Recovery reports what the startup rebuild found: graphs loaded
	// from the snapshot, WAL records replayed on top, bytes truncated
	// off a torn tail and whole segments dropped (both 0 after a clean
	// shutdown), and the rebuild's wall time.
	RecoverySnapshotGraphs  int     `json:"recovery_snapshot_graphs"`
	RecoveryReplayedRecords uint64  `json:"recovery_replayed_records"`
	RecoveryRepairedBytes   int64   `json:"recovery_repaired_bytes"`
	RecoveryDroppedSegments int     `json:"recovery_dropped_segments"`
	RecoverySeconds         float64 `json:"recovery_seconds"`
}

// RuntimeStats is a Go runtime snapshot taken when /stats is served.
type RuntimeStats struct {
	Goroutines    int     `json:"goroutines"`
	HeapAllocByte uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes  uint64  `json:"heap_sys_bytes"`
	GCCycles      uint32  `json:"gc_cycles"`
	GCPauseMS     float64 `json:"gc_pause_total_ms"`
}

// BuildInfo identifies the running binary.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	// Revision is the VCS commit the binary was built from, or "unknown"
	// when the build carried no VCS stamp.
	Revision string `json:"revision"`
}

// SlowQueryRecord is one line of the slow-query log (JSON, one object
// per line), emitted for any query whose server-side duration reaches
// the -slow-query-ms threshold.
type SlowQueryRecord struct {
	Time       string           `json:"time"`
	Kind       string           `json:"kind"`
	DurationMS float64          `json:"duration_ms"`
	Stats      QueryStats       `json:"stats"`
	Trace      []gdb.TraceStage `json:"trace,omitempty"`
}

// ShardInfo is one shard's occupancy and generation, plus its pivot
// index occupancy when the daemon runs with -pivots: Pivots is the
// selected pivot count, PivotReady how many stored graphs have their
// distance column computed, PivotPending how many are still queued
// behind the background workers.
type ShardInfo struct {
	Index        int    `json:"index"`
	Graphs       int    `json:"graphs"`
	Generation   uint64 `json:"generation"`
	Pivots       int    `json:"pivots,omitempty"`
	PivotReady   int    `json:"pivot_ready,omitempty"`
	PivotPending int    `json:"pivot_pending,omitempty"`
	// Vector-tier occupancy when the daemon runs with -vector-cells:
	// coarse cells in the shard's partition, embedded members, mean
	// inverted-list length, the partition's rebuild epoch and lifetime
	// rebuild count. Absent (zero) without the tier; a shard still below
	// -vector-cells members reports 0 cells (dormant partition).
	VectorCells    int     `json:"vector_cells,omitempty"`
	VectorMembers  int     `json:"vector_members,omitempty"`
	VectorMeanList float64 `json:"vector_mean_list,omitempty"`
	VectorEpoch    uint64  `json:"vector_epoch,omitempty"`
	VectorRebuilds int64   `json:"vector_rebuilds,omitempty"`
}

// DBStats mirrors gdb.Stats in wire form.
type DBStats struct {
	Graphs       int `json:"graphs"`
	Vertices     int `json:"vertices"`
	Edges        int `json:"edges"`
	VertexLabels int `json:"vertex_labels"`
	EdgeLabels   int `json:"edge_labels"`
	MinSize      int `json:"min_size"`
	MaxSize      int `json:"max_size"`
}

// ReqStats counts requests served since startup.
type ReqStats struct {
	Queries uint64 `json:"queries"`
	Batches uint64 `json:"batches"`
	Inserts uint64 `json:"inserts"`
	Deletes uint64 `json:"deletes"`
	Errors  uint64 `json:"errors"`
	// PairEvals counts exact pair evaluations across all table builds
	// and best-first ranked scans; PairsPruned counts pairs the bound
	// filter and threshold cutoffs spared.
	PairEvals   uint64 `json:"pair_evals"`
	PairsPruned uint64 `json:"pairs_pruned"`
	// PivotPruned counts pairs (within PairsPruned) only the pivot
	// tier's triangle bounds excluded; PivotDists counts query-to-pivot
	// distance computations. MemoHits/MemoMisses total the score-memo
	// lookups the query paths performed.
	PivotPruned uint64 `json:"pivot_pruned"`
	PivotDists  uint64 `json:"pivot_dists"`
	MemoHits    uint64 `json:"memo_hits"`
	MemoMisses  uint64 `json:"memo_misses"`
	// VectorCells, VectorSkipped and VectorFallbacks total the vector
	// tier's activity across all fresh evaluations: partition cells
	// probed, candidates excluded wholesale by cell floors, and shard
	// snapshots a stale partition could not serve.
	VectorCells      uint64 `json:"vector_cells_probed"`
	VectorSkipped    uint64 `json:"vector_skipped"`
	VectorFallbacks  uint64 `json:"vector_fallbacks"`
	QueryTimeouts    uint64 `json:"query_timeouts"`
	InflightRejected uint64 `json:"inflight_rejected"`
	// LoadShed counts queries refused with 429 at the inflight-query
	// cap; DegradedRejected counts mutations refused with 503 while the
	// daemon was in degraded-readonly mode.
	LoadShed         uint64 `json:"load_shed"`
	DegradedRejected uint64 `json:"degraded_rejected"`
}

// WarmRequest is the body of POST /cache/warm: query graphs whose
// complete per-shard vector tables should be built (and cached) ahead
// of traffic. Warming populates the table cache and, when enabled, the
// cross-query score memo — so later queries of any kind on these (or
// isomorphic) graphs answer from cache, and even after a mutation
// invalidates the tables, rebuilding them replays memoized pair scores
// instead of re-running engines.
type WarmRequest struct {
	// Queries holds the query graphs to warm, each with the optional
	// basis/eval fields of a normal request (k, radius, algorithm and
	// prune are ignored — warming always builds complete tables).
	Queries []QueryRequest `json:"queries"`
	// TimeoutMS bounds the whole warming pass (0 = server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// WarmResult reports one warmed query.
type WarmResult struct {
	// Evaluated counts fresh pair evaluations; ShardHits counts shard
	// tables that were already cached.
	Evaluated int    `json:"evaluated"`
	ShardHits int    `json:"shard_hits"`
	Error     string `json:"error,omitempty"`
}

// WarmResponse answers /cache/warm, one result per query in order.
type WarmResponse struct {
	Results    []WarmResult `json:"results"`
	DurationMS float64      `json:"duration_ms"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Class tells the client how to react without parsing the message:
	//
	//	bad_request  — fix the request; retrying as-is cannot help
	//	not_found    — the named resource does not exist
	//	conflict     — duplicate name; retrying as-is cannot help
	//	overloaded   — load-shed (429); retry after the Retry-After delay
	//	unavailable  — busy or warming (503); retry after Retry-After
	//	degraded     — read-only mode (503); mutations retry after
	//	               Retry-After, the store is being probed
	//	transient    — a persist failure that should heal (503); safe to
	//	               retry with an idempotency key
	//	corrupt      — corruption-class storage failure (500); retrying
	//	               cannot help, the data directory needs attention
	//	timeout      — the query deadline fired (504)
	//	canceled     — the client went away mid-query
	//	internal     — unclassified server-side failure (500)
	Class string `json:"class,omitempty"`
	// RetryAfterMS mirrors the Retry-After header (milliseconds) on
	// retryable classes, for clients that prefer the body.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Error classes (see ErrorResponse.Class).
const (
	ClassBadRequest  = "bad_request"
	ClassNotFound    = "not_found"
	ClassConflict    = "conflict"
	ClassOverloaded  = "overloaded"
	ClassUnavailable = "unavailable"
	ClassDegraded    = "degraded"
	ClassTransient   = "transient"
	ClassCorrupt     = "corrupt"
	ClassTimeout     = "timeout"
	ClassCanceled    = "canceled"
	ClassInternal    = "internal"
)

// TimeoutHeader propagates the client's per-attempt deadline to the
// server (milliseconds) for requests whose body carries no timeout_ms
// — the server evaluates under the smaller of this and its own limits,
// so work is abandoned the moment the client stops waiting.
const TimeoutHeader = "X-Skygraph-Timeout-Ms"

// IdempotencyHeader carries the idempotency key for DELETE requests
// (no body) and, when set, overrides the body key on POST /graphs.
const IdempotencyHeader = "X-Skygraph-Idempotency-Key"

// FaultInfo reports the failpoint registry in /stats while any point
// is armed.
type FaultInfo struct {
	Armed  int                `json:"armed"`
	Fires  uint64             `json:"fires"`
	Points []fault.PointStats `json:"points"`
}
