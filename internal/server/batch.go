package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"
)

// DefaultMaxBatch is the /query/batch size limit when Config.MaxBatch
// is unset.
const DefaultMaxBatch = 256

// handleBatch answers POST /query/batch: many queries, one request.
// Items run concurrently through the same per-shard table path as the
// dedicated endpoints, so identical (or isomorphic) query graphs in one
// batch coalesce onto a single table build per (shard, query-hash) pair
// — first via the in-flight leader, then via the cache. The whole batch
// shares one time budget; an item that fails (bad request, timeout)
// reports its error in place without failing the rest.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.batches.Add(1)
	start := time.Now()
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	maxBatch := s.cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if len(req.Queries) > maxBatch {
		s.writeError(w, http.StatusBadRequest, "batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatch)
		return
	}

	ctx := r.Context()
	if d := s.timeout(&QueryRequest{TimeoutMS: req.TimeoutMS}); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	workers := s.cfg.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Queries) {
		workers = len(req.Queries)
	}
	results := make([]BatchResult, len(req.Queries))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = s.runBatchQuery(ctx, &req.Queries[i])
			}
		}()
	}
	for i := range req.Queries {
		work <- i
	}
	close(work)
	wg.Wait()

	stats := BatchStats{Queries: len(results), DurationMS: float64(time.Since(start).Microseconds()) / 1000}
	for _, res := range results {
		if res.Error != "" {
			stats.Errors++
			continue
		}
		qs := res.stats()
		stats.Evaluated += qs.Evaluated
		stats.ShardHits += qs.ShardHits
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results, Stats: stats})
}

// runBatchQuery executes one batch item end to end, reporting failures
// in the result instead of aborting the batch.
func (s *Server) runBatchQuery(ctx context.Context, bq *BatchQuery) BatchResult {
	s.queries.Add(1)
	start := time.Now()
	kind := bq.Kind
	if kind == "" {
		kind = "skyline"
	}
	out := BatchResult{Kind: kind}
	fail := func(msg string) BatchResult {
		s.errors.Add(1)
		out.Error = msg
		return out
	}

	var validate func(*QueryRequest) error
	needMeasure := false
	switch kind {
	case "skyline":
	case "topk":
		needMeasure, validate = true, validateTopK
	case "range":
		needMeasure, validate = true, validateRange
	default:
		return fail(fmt.Sprintf("unknown query kind %q (want skyline, topk or range)", kind))
	}
	if validate != nil {
		if err := validate(&bq.QueryRequest); err != nil {
			return fail(err.Error())
		}
	}
	res, err := s.resolveQuery(&bq.QueryRequest, needMeasure)
	if err != nil {
		return fail(err.Error())
	}
	ts, err := s.tables(ctx, res)
	if err != nil {
		_, msg := s.classifyQueryErr(err)
		return fail(msg)
	}
	stats := s.queryStats(ts, start)
	switch kind {
	case "skyline":
		out.Skyline = s.skylineAnswer(&bq.QueryRequest, res, ts, stats)
	case "topk":
		out.TopK = s.topkAnswer(&bq.QueryRequest, res, ts, stats)
	case "range":
		out.Range = s.rangeAnswer(&bq.QueryRequest, res, ts, stats)
	}
	return out
}
