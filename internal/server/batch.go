package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"skygraph/internal/gdb"
)

// DefaultMaxBatch is the /query/batch size limit when Config.MaxBatch
// is unset.
const DefaultMaxBatch = 256

// handleBatch answers POST /query/batch: many queries, one request.
// Items run concurrently through the same per-shard table path as the
// dedicated endpoints, so identical (or isomorphic) query graphs in one
// batch coalesce onto a single table build per (shard, query-hash) pair
// — first via the in-flight leader, then via the cache. The whole batch
// shares one time budget; an item that fails (bad request, timeout)
// reports its error in place without failing the rest.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.admitQuery(w) {
		return
	}
	defer s.releaseQuery()
	s.batches.Add(1)
	start := time.Now()
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.TimeoutMS <= 0 {
		req.TimeoutMS = headerTimeoutMS(r)
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	maxBatch := s.cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if len(req.Queries) > maxBatch {
		s.writeError(w, http.StatusBadRequest, "batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatch)
		return
	}

	ctx := r.Context()
	if d := s.timeout(&QueryRequest{TimeoutMS: req.TimeoutMS}); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	workers := s.cfg.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Queries) {
		workers = len(req.Queries)
	}

	// Resolve every item first — in parallel, since resolution includes
	// the per-item query-graph canonicalization — then de-conflict
	// evaluation variants per table group (same query hash, basis,
	// engine budgets). A group runs unpruned — one shared complete
	// build per shard — when any member needs a complete table (a
	// skyline asking for the full table, any explicit prune=false), or
	// when it mixes pruned skyline and pruned ranked members: one full
	// build answers every kind, where separate pruned-table and
	// best-first evaluations would each re-pay most of the group's pair
	// work. Groups that are uniformly pruned-skyline or uniformly
	// pruned-ranked keep their cheaper pruned paths.
	items := make([]batchItem, len(req.Queries))
	var resolveWG sync.WaitGroup
	var nextItem atomic.Int64
	for w := 0; w < workers; w++ {
		resolveWG.Add(1)
		go func() {
			defer resolveWG.Done()
			for {
				i := int(nextItem.Add(1)) - 1
				if i >= len(req.Queries) {
					return
				}
				items[i] = s.resolveBatchItem(&req.Queries[i])
			}
		}()
	}
	resolveWG.Wait()
	needFull := make(map[string]bool)
	prunedKinds := make(map[string]int) // bit 1: skyline member, bit 2: ranked member
	for i := range items {
		if items[i].errMsg != "" {
			continue
		}
		group := items[i].res.tableGroup()
		switch {
		case !items[i].res.prune:
			needFull[group] = true
		case items[i].kind == "skyline":
			prunedKinds[group] |= 1
		default:
			prunedKinds[group] |= 2
		}
	}
	for group, kinds := range prunedKinds {
		if kinds == 1|2 {
			needFull[group] = true
		}
	}
	for i := range items {
		if items[i].errMsg == "" && items[i].res.prune && needFull[items[i].res.tableGroup()] {
			items[i].res.prune = false
		}
	}

	results := make([]BatchResult, len(req.Queries))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = s.runBatchQuery(ctx, items[i], &req.Queries[i])
			}
		}()
	}
	for i := range req.Queries {
		work <- i
	}
	close(work)
	wg.Wait()

	stats := BatchStats{Queries: len(results), DurationMS: float64(time.Since(start).Microseconds()) / 1000}
	for _, res := range results {
		if res.Error != "" {
			stats.Errors++
			continue
		}
		qs := res.stats()
		stats.Evaluated += qs.Evaluated
		stats.Pruned += qs.Pruned
		stats.PivotPruned += qs.PivotPruned
		stats.PivotDists += qs.PivotDists
		stats.MemoHits += qs.MemoHits
		stats.MemoMisses += qs.MemoMisses
		stats.VectorCells += qs.VectorCells
		stats.VectorSkipped += qs.VectorSkipped
		stats.VectorFallbacks += qs.VectorFallbacks
		stats.DeltaPatched += qs.DeltaPatched
		stats.ShardHits += qs.ShardHits
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results, Stats: stats})
}

// batchItem is one validated and resolved batch entry, ready to
// execute (or carrying the validation error to report in place).
type batchItem struct {
	kind   string
	res    resolved
	errMsg string
}

// resolveBatchItem validates and resolves one batch entry without
// executing it, so handleBatch can plan table sharing across the batch
// before any evaluation starts.
func (s *Server) resolveBatchItem(bq *BatchQuery) batchItem {
	kind := bq.Kind
	if kind == "" {
		kind = "skyline"
	}
	it := batchItem{kind: kind}
	var validate func(*QueryRequest) error
	needMeasure := false
	switch kind {
	case "skyline":
	case "topk":
		needMeasure, validate = true, validateTopK
	case "range":
		needMeasure, validate = true, validateRange
	default:
		it.errMsg = fmt.Sprintf("unknown query kind %q (want skyline, topk or range)", kind)
		return it
	}
	if validate != nil {
		if err := validate(&bq.QueryRequest); err != nil {
			it.errMsg = err.Error()
			return it
		}
	}
	res, err := s.resolveQuery(&bq.QueryRequest, needMeasure)
	if err != nil {
		it.errMsg = err.Error()
		return it
	}
	it.res = res
	return it
}

// runBatchQuery executes one resolved batch item end to end, reporting
// failures in the result instead of aborting the batch.
func (s *Server) runBatchQuery(ctx context.Context, it batchItem, bq *BatchQuery) BatchResult {
	s.queries.Add(1)
	start := time.Now()
	out := BatchResult{Kind: it.kind}
	fail := func(msg string) BatchResult {
		s.errors.Add(1)
		out.Error = msg
		return out
	}
	if it.errMsg != "" {
		return fail(it.errMsg)
	}
	it.res.opts.Trace = gdb.NewQueryTrace()
	ans, err := s.execQuery(ctx, it.kind, &bq.QueryRequest, it.res, start)
	if err != nil {
		_, _, msg := s.classifyQueryErr(err)
		return fail(msg)
	}
	s.finishQuery(it.kind, &bq.QueryRequest, it.res, ans, start)
	out.Skyline, out.TopK, out.Range = ans.sky, ans.tk, ans.rng
	return out
}
