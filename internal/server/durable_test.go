package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
)

// newDurableServer opens (or recovers) dir and serves it.
func newDurableServer(t *testing.T, dir string, shards int) (*gdb.Durable, *httptest.Server) {
	t.Helper()
	d, err := gdb.OpenDurable(gdb.DurableOptions{Dir: dir, Shards: shards})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	s := New(d.DB, Config{CacheSize: 16, Durable: d})
	ts := httptest.NewServer(s.Handler())
	return d, ts
}

// TestServerRestartDurability is the HTTP-level warm-restart test:
// mutations applied through the API survive a close-and-reopen of the
// data directory (at a different shard count), with identical /stats
// occupancy and an identical query answer, and /metrics exposing the
// WAL and recovery series.
func TestServerRestartDurability(t *testing.T) {
	dir := t.TempDir()
	d1, ts1 := newDurableServer(t, dir, 2)

	var ins InsertResponse
	resp := postJSON(t, ts1.URL+"/graphs", InsertRequest{Graphs: dataset.PaperDB()}, &ins)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d", resp.StatusCode)
	}
	if len(ins.Inserted) != 7 {
		t.Fatalf("inserted %d graphs, want 7", len(ins.Inserted))
	}
	req, err := http.NewRequest(http.MethodDelete, ts1.URL+"/graphs/"+ins.Inserted[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}

	var stats1 StatsResponse
	getJSON(t, ts1.URL+"/stats", &stats1)
	if stats1.DB.Graphs != 6 {
		t.Fatalf("pre-restart graphs = %d, want 6", stats1.DB.Graphs)
	}
	if stats1.Durability == nil || stats1.Durability.WALAppends != 8 {
		t.Fatalf("pre-restart durability block: %+v", stats1.Durability)
	}
	qreq := QueryRequest{Graph: dataset.PaperDB()[0]}
	var sky1 SkylineResponse
	postJSON(t, ts1.URL+"/query/skyline", qreq, &sky1)

	metrics := func(ts *httptest.Server) string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	m1 := metrics(ts1)
	for _, want := range []string{"skygraph_wal_appends_total 8", "skygraph_wal_fsyncs_total", "skygraph_recovery_replayed_records 0"} {
		if !strings.Contains(m1, want) {
			t.Errorf("pre-restart /metrics missing %q", want)
		}
	}

	ts1.Close()
	if err := d1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart with a different shard count: storage is shard-agnostic.
	d2, ts2 := newDurableServer(t, dir, 3)
	defer ts2.Close()
	defer d2.Close()

	var stats2 StatsResponse
	getJSON(t, ts2.URL+"/stats", &stats2)
	if stats2.DB.Graphs != 6 {
		t.Fatalf("post-restart graphs = %d, want 6", stats2.DB.Graphs)
	}
	if stats2.Durability == nil || stats2.Durability.RecoveryReplayedRecords != 8 {
		t.Fatalf("post-restart durability block: %+v", stats2.Durability)
	}
	var sky2 SkylineResponse
	postJSON(t, ts2.URL+"/query/skyline", qreq, &sky2)
	if !reflect.DeepEqual(sky1.Skyline, sky2.Skyline) {
		t.Fatalf("skyline answer changed across restart:\npre:  %+v\npost: %+v", sky1.Skyline, sky2.Skyline)
	}
	if !strings.Contains(metrics(ts2), "skygraph_recovery_replayed_records 8") {
		t.Error("post-restart /metrics missing recovery replay count")
	}

	// Readiness after recovery.
	rresp, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after recovery: status %d", rresp.StatusCode)
	}
}

// TestServerDeleteNotPersisted verifies the handler maps a failed
// write-ahead append to a 5xx, not a 404: the graph is still there and
// the client must not believe the delete happened. A closed WAL is a
// transient-class failure (a restart heals it), so both mutations
// answer 503, inviting a retry — not 500.
func TestServerDeleteNotPersisted(t *testing.T) {
	dir := t.TempDir()
	d, ts := newDurableServer(t, dir, 1)
	defer ts.Close()

	var ins InsertResponse
	postJSON(t, ts.URL+"/graphs", InsertRequest{Graphs: dataset.PaperDB()}, &ins)
	if err := d.Close(); err != nil { // WAL refuses appends from here on
		t.Fatalf("Close: %v", err)
	}

	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/graphs/%s", ts.URL, ins.Inserted[0]), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("delete with closed WAL: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("transient persist failure carried no Retry-After")
	}

	// And the insert path likewise: a fresh name reaches the WAL append,
	// fails it, and must come back 503 with nothing applied.
	fresh := dataset.PaperDB()[0].Clone()
	fresh.SetName("fresh-after-close")
	iresp := postJSON(t, ts.URL+"/graphs", InsertRequest{Graph: fresh}, nil)
	if iresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert with closed WAL: status %d, want 503", iresp.StatusCode)
	}
	if _, ok := d.DB.Get("fresh-after-close"); ok {
		t.Fatal("failed insert landed in the database")
	}
}
