package server

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"skygraph/internal/gdb"
	"skygraph/internal/measure"
)

// Cache is a bounded LRU of per-shard query vector tables. A key binds
// a table to the exact inputs that produced it — shard index, that
// shard's generation, canonical query-graph hash, measure basis and
// engine options — so a lookup can only ever return a table that
// answers the current request exactly. Because the owning shard's
// generation participates in the key, a mutation invalidates exactly
// that shard's entries: old-generation tables become unreachable and
// are either aged out by the LRU or dropped eagerly by PruneStale;
// tables of the other shards stay live.
//
// Counters are atomics, read without the LRU lock: /stats can hammer
// the cache while queries run without contending on (or racing with)
// the hot lookup path.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

type cacheEntry struct {
	key   string
	shard int
	table *gdb.VectorTable
}

// NewCache returns an LRU holding at most capacity tables. Capacity < 1
// disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// CacheKey renders the canonical cache key for one shard's vector table.
func CacheKey(shard int, generation uint64, queryHash string, basis []measure.Measure, eval measure.Options) string {
	return fmt.Sprintf("s%d|g%d|q%s|b%s|%s",
		shard, generation, queryHash, strings.Join(measure.BasisNames(basis), ","), eval.Key())
}

// prunedKey derives the key of the skyline-pruned table variant from a
// full-table key. Pruned tables hold only the filter survivors, so they
// answer skyline requests exactly but can never be returned for a
// full-table, top-k or range lookup — hence the separate namespace.
func prunedKey(full string) string { return full + "|pruned" }

// Get returns the cached table for key, marking it most recently used.
func (c *Cache) Get(key string) (*gdb.VectorTable, bool) {
	return c.get(key, false)
}

// getRecheck is Get for a lookup that re-checks a key already counted
// as a miss: absence is not counted again (presence still counts as a
// hit, since the caller serves the table without evaluating).
func (c *Cache) getRecheck(key string) (*gdb.VectorTable, bool) {
	return c.get(key, true)
}

func (c *Cache) get(key string, quiet bool) (*gdb.VectorTable, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		if !quiet {
			c.misses.Add(1)
		}
		return nil, false
	}
	c.ll.MoveToFront(el)
	t := el.Value.(*cacheEntry).table
	c.mu.Unlock()
	c.hits.Add(1)
	return t, true
}

// contains reports whether key is cached, without touching recency or
// the hit/miss counters — a planning peek, not a lookup.
func (c *Cache) contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put stores shard's table under key, evicting the least recently used
// entry when the cache is full.
func (c *Cache) Put(key string, shard int, t *gdb.VectorTable) {
	if c.capacity < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		e.shard, e.table = shard, t
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, shard: shard, table: t})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// PruneStale eagerly drops every entry of shard computed before
// generation gen, returning how many were dropped. Correctness never
// depends on this — stale keys are unreachable — but pruning on
// mutation frees their memory immediately instead of waiting for LRU
// pressure. Generations only increase, so the strict < keeps entries
// newer than the caller's (possibly stale) generation read, and other
// shards' entries are never touched.
func (c *Cache) PruneStale(shard int, gen uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.shard == shard && e.table.Generation < gen {
			c.ll.Remove(el)
			delete(c.items, e.key)
			dropped++
		}
		el = next
	}
	c.invalidations.Add(uint64(dropped))
	return dropped
}

// Len returns the number of cached tables.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Capacity      int    `json:"capacity"`
	Entries       int    `json:"entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// Stats returns the current counters. Counter reads are atomic and do
// not block concurrent lookups.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Capacity:      c.capacity,
		Entries:       c.Len(),
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}
