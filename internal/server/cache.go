package server

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/lru"
	"skygraph/internal/measure"
	"skygraph/internal/topk"
)

// Cache is a bounded LRU of per-shard query vector tables plus merged
// ranked answers, layered on the shared internal/lru core (the same
// machinery behind gdb's cross-query score memo). A table key binds a
// table to the exact inputs that produced it — shard index, that
// shard's generation, canonical query-graph hash, measure basis and
// engine options — so a lookup can only ever return a table that
// answers the current request exactly. Because the owning shard's
// generation participates in the key, a mutation invalidates exactly
// that shard's entries: old-generation tables become unreachable and
// are either aged out by the LRU or dropped eagerly by PruneStale;
// tables of the other shards stay live. Ranked answers (RankedKey)
// instead carry every shard's generation — the merged result spans the
// whole database, so any mutation invalidates them.
//
// Counters are atomics, read without the LRU lock: /stats can hammer
// the cache while queries run without contending on (or racing with)
// the hot lookup path.
type Cache struct {
	lru *lru.Cache[*cacheEntry]

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
	deltaApplied  atomic.Uint64
	deltaFallback atomic.Uint64
}

// cacheEntry is one cached value: a per-shard vector table (shard >= 0,
// invalidated when that shard's generation moves past the table's), or
// a whole-database ranked answer (shard == -1, bound to EVERY shard's
// generation via gens — any mutation anywhere invalidates it). lin,
// when set, is the table's maintenance lineage: a later mutation of the
// owning shard can upgrade the entry in place (Server.maintain) instead
// of invalidating it.
type cacheEntry struct {
	shard  int
	table  *gdb.VectorTable
	gens   []uint64
	ranked *rankedEntry
	lin    *tableLineage
}

// tableLineage is everything needed to re-derive a complete table's
// key and evaluate a single delta row through the exact code path the
// cold build used: the query graph, its canonical hash, the basis and
// the engine budgets. Pruned and vector-preselected variants carry no
// lineage — their survivor sets are not row-patchable — and fall back
// to generation invalidation.
type tableLineage struct {
	q     *graph.Graph
	qh    string
	basis []measure.Measure
	eval  measure.Options
}

// rankedEntry is a cached pruned ranked answer: the merged items of one
// (kind, measure, k-or-radius) query over all shards. It lives in its
// own key namespace (RankedKey) so it can never shadow — or be returned
// for — a full-table lookup. lin carries the maintenance lineage;
// deltas counts in-place upgrades since the answer was cold-built.
type rankedEntry struct {
	items   []topk.Item
	inexact int
	deltas  int
	lin     *rankedLineage
}

// rankedLineage mirrors tableLineage for merged ranked answers.
type rankedLineage struct {
	kind     string // "topk" or "range"
	q        *graph.Graph
	qh       string
	m        measure.Measure
	arg      float64 // k for topk, radius for range
	novector bool
	eval     measure.Options
}

// stale reports whether the entry was computed before generation gen of
// the given shard.
func (e *cacheEntry) stale(shard int, gen uint64) bool {
	if e.shard >= 0 {
		return e.shard == shard && e.table.Generation < gen
	}
	return shard < len(e.gens) && e.gens[shard] < gen
}

// NewCache returns an LRU holding at most capacity tables. Capacity < 1
// disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{lru: lru.New[*cacheEntry](capacity)}
}

// CacheKey renders the canonical cache key for one shard's vector table.
func CacheKey(shard int, generation uint64, queryHash string, basis []measure.Measure, eval measure.Options) string {
	return fmt.Sprintf("s%d|g%d|q%s|b%s|%s",
		shard, generation, queryHash, strings.Join(measure.BasisNames(basis), ","), eval.Key())
}

// prunedKey derives the key of the skyline-pruned table variant from a
// full-table key. Pruned tables hold only the filter survivors, so they
// answer skyline requests exactly but can never be returned for a
// full-table, top-k or range lookup — hence the separate namespace.
func prunedKey(full string) string { return full + "|pruned" }

// vectorKey derives the key of the pruned-table variant built with the
// vector tier's cell pre-selection live. Its skyline is identical to
// the plain pruned variant's, but the two hold different survivor sets
// and different work attributions, and the "vector": false escape hatch
// promises a vector-free evaluation — so the variants never shadow one
// another.
func vectorKey(full string) string { return full + "|vector" }

// RankedKey renders the cache key of a pruned ranked answer: the merged
// result of one (kind, measure, k/radius) query, bound to the canonical
// query hash, the engine budgets and every shard's generation. The
// basis does not participate — a ranked answer depends only on its
// ranking measure. The "r|" namespace keeps ranked answers from ever
// shadowing a table key.
func RankedKey(kind string, gens []uint64, queryHash string, m measure.Measure, arg float64, eval measure.Options) string {
	gs := make([]string, len(gens))
	for i, g := range gens {
		gs[i] = strconv.FormatUint(g, 10)
	}
	return fmt.Sprintf("r|%s|g%s|q%s|m%s|a%s|%s",
		kind, strings.Join(gs, ","), queryHash, m.Name(),
		strconv.FormatFloat(arg, 'g', -1, 64), eval.Key())
}

// Get returns the cached table for key, marking it most recently used.
func (c *Cache) Get(key string) (*gdb.VectorTable, bool) {
	return c.get(key, false)
}

// getRecheck is Get for a lookup that re-checks a key already counted
// as a miss: absence is not counted again (presence still counts as a
// hit, since the caller serves the table without evaluating).
func (c *Cache) getRecheck(key string) (*gdb.VectorTable, bool) {
	return c.get(key, true)
}

func (c *Cache) get(key string, quiet bool) (*gdb.VectorTable, bool) {
	e, ok := c.lookup(key, quiet)
	if !ok {
		return nil, false
	}
	return e.table, true
}

// GetRanked returns the cached ranked answer for key, marking it most
// recently used.
func (c *Cache) GetRanked(key string) (*rankedEntry, bool) {
	return c.getRanked(key, false)
}

// getRankedRecheck is GetRanked for a lookup already counted as a miss.
func (c *Cache) getRankedRecheck(key string) (*rankedEntry, bool) {
	return c.getRanked(key, true)
}

func (c *Cache) getRanked(key string, quiet bool) (*rankedEntry, bool) {
	e, ok := c.lookup(key, quiet)
	if !ok {
		return nil, false
	}
	return e.ranked, true
}

func (c *Cache) lookup(key string, quiet bool) (*cacheEntry, bool) {
	e, ok := c.lru.Get(key)
	if !ok {
		if !quiet {
			c.misses.Add(1)
		}
		return nil, false
	}
	c.hits.Add(1)
	return e, true
}

// contains reports whether key is cached, without touching recency or
// the hit/miss counters — a planning peek, not a lookup.
func (c *Cache) contains(key string) bool { return c.lru.Contains(key) }

// Put stores shard's table under key, evicting the least recently used
// entry when the cache is full.
func (c *Cache) Put(key string, shard int, t *gdb.VectorTable) {
	c.put(key, &cacheEntry{shard: shard, table: t})
}

func (c *Cache) put(key string, e *cacheEntry) {
	c.evictions.Add(uint64(c.lru.Put(key, e)))
}

// PutRanked stores a ranked answer computed at the given per-shard
// generations under key (one cache slot, like a table).
func (c *Cache) PutRanked(key string, gens []uint64, r *rankedEntry) {
	c.put(key, &cacheEntry{shard: -1, gens: gens, ranked: r})
}

// deltaCandidate is one cached entry a mutation may be able to upgrade
// in place, paired with the key it currently lives under.
type deltaCandidate struct {
	key string
	e   *cacheEntry
}

// deltaCandidates collects the entries a single mutation of shard —
// the one that produced generation gen — could provably upgrade:
// lineage-carrying complete tables of that shard exactly one
// generation behind, and lineage-carrying ranked answers whose
// recorded generation for that shard is exactly gen-1. Everything else
// (pruned variants, entries further behind, foreign shards) is left
// for PruneStale. Collection never drops anything.
func (c *Cache) deltaCandidates(shard int, gen uint64) []deltaCandidate {
	var out []deltaCandidate
	c.lru.PruneFunc(func(key string, e *cacheEntry) bool {
		switch {
		case e.shard >= 0:
			if e.shard == shard && e.lin != nil && e.table.Complete && e.table.Generation == gen-1 {
				out = append(out, deltaCandidate{key: key, e: e})
			}
		case e.ranked != nil:
			if e.ranked.lin != nil && shard < len(e.gens) && e.gens[shard] == gen-1 {
				out = append(out, deltaCandidate{key: key, e: e})
			}
		}
		return false
	})
	return out
}

// promote publishes an upgraded entry under its new generation-bearing
// key and retires the old key, counting one applied delta. Put-then-
// Remove ordering means a concurrent reader always finds at least one
// of the two keys; a racing PruneStale that drops the old key first
// makes the Remove a no-op.
func (c *Cache) promote(oldKey, newKey string, e *cacheEntry) {
	c.put(newKey, e)
	c.lru.Remove(oldKey)
	c.deltaApplied.Add(1)
}

// PruneStale eagerly drops every entry of shard computed before
// generation gen, returning how many were dropped. Correctness never
// depends on this — stale keys are unreachable — but pruning on
// mutation frees their memory immediately instead of waiting for LRU
// pressure. Generations only increase, so the strict < keeps entries
// newer than the caller's (possibly stale) generation read, and other
// shards' entries are never touched: an entry a concurrent delta
// upgrade just republished at gen (or later) can never be dropped by a
// prune carrying an older generation. With delta maintenance live,
// every drop is by definition a fallback to invalidation — the entry
// was not provably upgradable — so the prune feeds both counters.
func (c *Cache) PruneStale(shard int, gen uint64) int {
	dropped := c.lru.PruneFunc(func(_ string, e *cacheEntry) bool {
		return e.stale(shard, gen)
	})
	c.invalidations.Add(uint64(dropped))
	c.deltaFallback.Add(uint64(dropped))
	return dropped
}

// Len returns the number of cached tables.
func (c *Cache) Len() int { return c.lru.Len() }

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Capacity      int    `json:"capacity"`
	Entries       int    `json:"entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	// DeltaApplied counts cache entries upgraded in place across a
	// mutation; DeltaFallbacks counts entries dropped because no delta
	// proof existed (pruned variants, interleaved mutations, entries
	// more than one generation behind).
	DeltaApplied   uint64 `json:"delta_applied"`
	DeltaFallbacks uint64 `json:"delta_fallbacks"`
}

// Stats returns the current counters. Counter reads are atomic and do
// not block concurrent lookups.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Capacity:       c.lru.Capacity(),
		Entries:        c.Len(),
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Evictions:      c.evictions.Load(),
		Invalidations:  c.invalidations.Load(),
		DeltaApplied:   c.deltaApplied.Load(),
		DeltaFallbacks: c.deltaFallback.Load(),
	}
}
