package server

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"skygraph/internal/gdb"
	"skygraph/internal/measure"
)

// Cache is a bounded LRU of query vector tables. A key binds a table to
// the exact inputs that produced it — database generation, canonical
// query-graph hash, measure basis and engine options — so a lookup can
// only ever return a table that answers the current request exactly.
// Because the generation participates in the key, a database mutation
// implicitly invalidates every cached entry: old-generation tables become
// unreachable and are either aged out by the LRU or dropped eagerly by
// PruneStale.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits          uint64
	misses        uint64
	evictions     uint64
	invalidations uint64
}

type cacheEntry struct {
	key   string
	table *gdb.VectorTable
}

// NewCache returns an LRU holding at most capacity tables. Capacity < 1
// disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// CacheKey renders the canonical cache key for a query vector table.
func CacheKey(generation uint64, queryHash string, basis []measure.Measure, eval measure.Options) string {
	return fmt.Sprintf("g%d|q%s|b%s|%s",
		generation, queryHash, strings.Join(measure.BasisNames(basis), ","), eval.Key())
}

// Get returns the cached table for key, marking it most recently used.
func (c *Cache) Get(key string) (*gdb.VectorTable, bool) {
	return c.get(key, false)
}

// getRecheck is Get for a lookup that re-checks a key already counted
// as a miss: absence is not counted again (presence still counts as a
// hit, since the caller serves the table without evaluating).
func (c *Cache) getRecheck(key string) (*gdb.VectorTable, bool) {
	return c.get(key, true)
}

func (c *Cache) get(key string, quiet bool) (*gdb.VectorTable, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		if !quiet {
			c.misses++
		}
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).table, true
}

// Put stores a table under key, evicting the least recently used entry
// when the cache is full.
func (c *Cache) Put(key string, t *gdb.VectorTable) {
	if c.capacity < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).table = t
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, table: t})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// PruneStale eagerly drops every entry computed before generation gen,
// returning how many were dropped. Correctness never depends on this —
// stale keys are unreachable — but pruning on mutation frees their
// memory immediately instead of waiting for LRU pressure. Generations
// only increase, so the strict < keeps entries newer than the caller's
// (possibly stale) generation read.
func (c *Cache) PruneStale(gen uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.table.Generation < gen {
			c.ll.Remove(el)
			delete(c.items, e.key)
			dropped++
		}
		el = next
	}
	c.invalidations += uint64(dropped)
	return dropped
}

// Len returns the number of cached tables.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Capacity      int    `json:"capacity"`
	Entries       int    `json:"entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:      c.capacity,
		Entries:       c.ll.Len(),
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
