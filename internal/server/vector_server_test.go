package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/pivot"
	"skygraph/internal/testutil"
	"skygraph/internal/vector"
)

// serverVectorCfg keeps the partition small enough that the seeded test
// databases activate it (the index is dormant below Cells members).
var serverVectorCfg = vector.Config{Dims: 16, Cells: 4}

// newVectorTestServer serves gs across nshards shards with pivots,
// the score memo and the vector candidate tier all enabled — in that
// order, and before server construction, exactly as skygraphd wires a
// production daemon (so the per-shard vector gauges register too).
func newVectorTestServer(t *testing.T, nshards int, cfg Config, gs []*graph.Graph) (*Server, *httptest.Server) {
	t.Helper()
	db := gdb.NewSharded(nshards)
	if err := db.InsertAll(gs); err != nil {
		t.Fatal(err)
	}
	db.EnablePivots(pivot.Config{Pivots: 3})
	db.EnableScoreMemo(1024)
	db.WaitPivots()
	db.EnableVector(serverVectorCfg)
	s := New(db, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func vectorTestGraphs() []*graph.Graph {
	return append(dataset.PaperDB(), testutil.SeededGraphs(5, 17)...)
}

// TestVectorServingEquivalence: with the vector tier under the whole
// cascade (pivots + memo on top), served skyline/topk/range answers
// across shard counts are byte-identical to a bare reference server —
// and so are answers with the "vector": false opt-out, which must also
// report zero vector activity.
func TestVectorServingEquivalence(t *testing.T) {
	gs := vectorTestGraphs()
	queries := append(testutil.SeededQueries(77, gs, 2), dataset.PaperQuery())

	radius := 6.0
	refSky := make([]SkylineResponse, len(queries))
	refTK := make([]TopKResponse, len(queries))
	refRng := make([]RangeResponse, len(queries))
	{
		_, ts := newShardedTestServerWith(t, 1, Config{CacheSize: 0}, gs)
		for qi, q := range queries {
			postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q}, &refSky[qi])
			postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 4, Measure: "DistEd"}, &refTK[qi])
			postJSON(t, ts.URL+"/query/range", QueryRequest{Graph: q, Radius: &radius, Measure: "DistEd"}, &refRng[qi])
		}
	}

	off := false
	for _, shards := range []int{1, 2, 3, 7} {
		_, ts := newVectorTestServer(t, shards, Config{CacheSize: 64}, gs)
		for qi, q := range queries {
			var sky SkylineResponse
			postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q}, &sky)
			requireSameSkylineJSON(t, shards, qi, refSky[qi].Skyline, sky.Skyline)

			var tk TopKResponse
			postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 4, Measure: "DistEd"}, &tk)
			if !reflect.DeepEqual(tk.Items, refTK[qi].Items) {
				t.Fatalf("shards=%d q=%d: topk items differ:\nref: %+v\ngot: %+v", shards, qi, refTK[qi].Items, tk.Items)
			}

			var rng RangeResponse
			postJSON(t, ts.URL+"/query/range", QueryRequest{Graph: q, Radius: &radius, Measure: "DistEd"}, &rng)
			if !reflect.DeepEqual(rng.Items, refRng[qi].Items) {
				t.Fatalf("shards=%d q=%d: range items differ:\nref: %+v\ngot: %+v", shards, qi, refRng[qi].Items, rng.Items)
			}

			// The A/B escape hatch: same answers, provably vector-free.
			var skyOff SkylineResponse
			postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q, Vector: &off}, &skyOff)
			requireSameSkylineJSON(t, shards, qi, refSky[qi].Skyline, skyOff.Skyline)
			var tkOff TopKResponse
			postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 4, Measure: "DistEd", Vector: &off}, &tkOff)
			if !reflect.DeepEqual(tkOff.Items, refTK[qi].Items) {
				t.Fatalf("shards=%d q=%d: opt-out topk items differ", shards, qi)
			}
			if tkOff.Stats.VectorCells != 0 || tkOff.Stats.VectorSkipped != 0 || tkOff.Stats.VectorFallbacks != 0 {
				t.Fatalf("shards=%d q=%d: opt-out topk reported vector activity: %+v", shards, qi, tkOff.Stats)
			}
			if skyOff.Stats.VectorCells != 0 || skyOff.Stats.VectorSkipped != 0 {
				t.Fatalf("shards=%d q=%d: opt-out skyline reported vector activity: %+v", shards, qi, skyOff.Stats)
			}
		}
	}
}

// TestVectorCountersOnWire: cold pruned queries surface the vector-tier
// counters on /query responses; /stats totals them and reports the
// per-shard partition occupancy; /metrics exposes the occupancy gauges
// and lifetime counters.
func TestVectorCountersOnWire(t *testing.T) {
	gs := vectorTestGraphs()
	_, ts := newVectorTestServer(t, 1, Config{CacheSize: 32}, gs)
	q := testutil.SeededQueries(78, gs, 1)[0]

	var tk TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3, Measure: "DistEd"}, &tk)
	if tk.Stats.VectorCells == 0 {
		t.Fatalf("cold pruned topk probed no vector cells: %+v", tk.Stats)
	}
	if tk.Stats.VectorFallbacks != 0 {
		t.Fatalf("quiescent database forced a vector fallback: %+v", tk.Stats)
	}

	var sky SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q}, &sky)
	if sky.Stats.VectorCells == 0 {
		t.Fatalf("cold pruned skyline probed no vector cells: %+v", sky.Stats)
	}

	// Batch aggregation folds the per-item vector counters.
	q2 := testutil.SeededQueries(79, gs, 1)[0]
	var batch BatchResponse
	postJSON(t, ts.URL+"/query/batch", map[string]any{
		"queries": []map[string]any{
			{"kind": "topk", "graph": q2, "k": 2, "measure": "DistEd"},
			{"kind": "range", "graph": q2, "radius": 5.0, "measure": "DistEd"},
		},
	}, &batch)
	if batch.Stats.Errors != 0 {
		t.Fatalf("batch errors: %+v", batch.Results)
	}
	if batch.Stats.VectorCells == 0 {
		t.Fatalf("batch aggregated no vector cells: %+v", batch.Stats)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests.VectorCells == 0 {
		t.Fatalf("global vector_cells_probed is 0: %+v", st.Requests)
	}
	if st.Shards[0].VectorCells != serverVectorCfg.Cells {
		t.Fatalf("shard vector cell count = %d, want %d", st.Shards[0].VectorCells, serverVectorCfg.Cells)
	}
	if st.Shards[0].VectorMembers != len(gs) {
		t.Fatalf("shard vector members = %d, want %d", st.Shards[0].VectorMembers, len(gs))
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := string(b)
	for _, want := range []string{
		"skygraph_vector_cells_probed_total",
		"skygraph_vector_skipped_total",
		"skygraph_vector_fallbacks_total 0",
		`skygraph_vector_cells{shard="0"} 4`,
		`skygraph_vector_members{shard="0"} 24`,
		"skygraph_vector_rebuilds_total",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestVectorOptOutCacheIsolation: answers built with the vector tier
// and answers built with "vector": false live in separate cache
// namespaces — an opt-out request never serves (or seeds) the default
// path's entries, so the A/B comparison it exists for stays honest.
func TestVectorOptOutCacheIsolation(t *testing.T) {
	gs := vectorTestGraphs()
	_, ts := newVectorTestServer(t, 2, Config{CacheSize: 64}, gs)
	q := testutil.SeededQueries(80, gs, 1)[0]
	off := false

	// Warm the default (vector) ranked answer.
	var warm TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3, Measure: "DistEd"}, &warm)
	if warm.Stats.CacheHit {
		t.Fatalf("first topk was already cached: %+v", warm.Stats)
	}

	// The opt-out must do its own fresh, vector-free evaluation.
	var cold TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3, Measure: "DistEd", Vector: &off}, &cold)
	if cold.Stats.CacheHit {
		t.Fatalf("opt-out topk served the vector-built answer: %+v", cold.Stats)
	}
	if cold.Stats.Evaluated == 0 {
		t.Fatalf("opt-out topk did no fresh work: %+v", cold.Stats)
	}
	if cold.Stats.VectorCells != 0 || cold.Stats.VectorSkipped != 0 {
		t.Fatalf("opt-out topk touched the vector tier: %+v", cold.Stats)
	}
	if !reflect.DeepEqual(cold.Items, warm.Items) {
		t.Fatalf("opt-out answer differs:\nvector: %+v\nplain:  %+v", warm.Items, cold.Items)
	}

	// But the opt-out variant caches under its own key.
	var again TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3, Measure: "DistEd", Vector: &off}, &again)
	if !again.Stats.CacheHit {
		t.Fatalf("repeated opt-out topk was not a cache hit: %+v", again.Stats)
	}

	// Same variant split on the pruned skyline table path.
	var skyVec SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q}, &skyVec)
	var skyOff SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q, Vector: &off}, &skyOff)
	if skyOff.Stats.CacheHit {
		t.Fatalf("opt-out skyline served a vector-built table: %+v", skyOff.Stats)
	}
	requireSameSkylineJSON(t, 2, 0, skyVec.Skyline, skyOff.Skyline)
	var skyOff2 SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q, Vector: &off}, &skyOff2)
	if !skyOff2.Stats.CacheHit {
		t.Fatalf("repeated opt-out skyline was not a cache hit: %+v", skyOff2.Stats)
	}
}

// TestVectorServerRestart: the vector tier carries no persistence of
// its own — after a durable close-and-reopen (at a different shard
// count), re-enabling it rebuilds the embeddings from the recovered
// graphs, /stats shows full occupancy, and answers are unchanged.
func TestVectorServerRestart(t *testing.T) {
	dir := t.TempDir()
	gs := testutil.SeededGraphs(6, 24)
	q := testutil.SeededQueries(81, gs, 1)[0]

	open := func(shards int) (*gdb.Durable, *httptest.Server) {
		d, err := gdb.OpenDurable(gdb.DurableOptions{Dir: dir, Shards: shards})
		if err != nil {
			t.Fatalf("OpenDurable: %v", err)
		}
		// After recovery, before serving: the same ordering skygraphd uses.
		d.DB.EnableVector(serverVectorCfg)
		s := New(d.DB, Config{CacheSize: 16, Durable: d})
		return d, httptest.NewServer(s.Handler())
	}

	d1, ts1 := open(2)
	resp := postJSON(t, ts1.URL+"/graphs", InsertRequest{Graphs: gs}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d", resp.StatusCode)
	}

	countMembers := func(ts *httptest.Server) int {
		var st StatsResponse
		getJSON(t, ts.URL+"/stats", &st)
		n := 0
		for _, sh := range st.Shards {
			n += sh.VectorMembers
		}
		return n
	}
	if n := countMembers(ts1); n != len(gs) {
		t.Fatalf("pre-restart vector members = %d, want %d", n, len(gs))
	}
	var sky1 SkylineResponse
	postJSON(t, ts1.URL+"/query/skyline", QueryRequest{Graph: q}, &sky1)
	var tk1 TopKResponse
	postJSON(t, ts1.URL+"/query/topk", QueryRequest{Graph: q, K: 5, Measure: "DistGu"}, &tk1)

	ts1.Close()
	if err := d1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, ts2 := open(3)
	defer ts2.Close()
	defer d2.Close()

	if n := countMembers(ts2); n != len(gs) {
		t.Fatalf("post-restart vector members = %d, want %d", n, len(gs))
	}
	var sky2 SkylineResponse
	postJSON(t, ts2.URL+"/query/skyline", QueryRequest{Graph: q}, &sky2)
	if !reflect.DeepEqual(sky1.Skyline, sky2.Skyline) {
		t.Fatalf("skyline changed across restart:\npre:  %+v\npost: %+v", sky1.Skyline, sky2.Skyline)
	}
	var tk2 TopKResponse
	postJSON(t, ts2.URL+"/query/topk", QueryRequest{Graph: q, K: 5, Measure: "DistGu"}, &tk2)
	if !reflect.DeepEqual(tk1.Items, tk2.Items) {
		t.Fatalf("topk changed across restart:\npre:  %+v\npost: %+v", tk1.Items, tk2.Items)
	}
}
