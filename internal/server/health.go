package server

import (
	"sync"
	"sync/atomic"
	"time"

	"skygraph/internal/gdb"
)

// HealthState is the daemon's write-path health:
//
//	serving ──K consecutive transient persist failures──▶ degraded-readonly
//	degraded-readonly ──background probe succeeds──▶ recovering
//	recovering ──next mutation persists──▶ serving
//	recovering ──next mutation fails────▶ degraded-readonly
//
// In degraded-readonly the daemon stops 500-ing on a disk that is
// plainly broken: queries keep serving from memory, mutations are
// rejected up front with 503 + Retry-After (they could only fail), and
// a background probe exercises the WAL append path until it heals.
// Recovering is the trust-but-verify step: mutations are admitted
// again, but one more failure drops straight back to degraded instead
// of re-counting to K.
type HealthState int32

const (
	HealthServing HealthState = iota
	HealthDegraded
	HealthRecovering
)

func (h HealthState) String() string {
	switch h {
	case HealthServing:
		return "serving"
	case HealthDegraded:
		return "degraded_readonly"
	case HealthRecovering:
		return "recovering"
	}
	return "unknown"
}

// health runs the state machine. All methods are safe for concurrent
// use; a nil receiver (in-memory daemon, no persistence to break) is
// permanently serving.
type health struct {
	durable      *gdb.Durable
	degradeAfter int
	probeEvery   time.Duration

	state        atomic.Int32
	consecFails  atomic.Int64
	degradations atomic.Uint64
	probes       atomic.Uint64
	probeFails   atomic.Uint64

	mu      sync.Mutex
	lastErr string

	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// newHealth starts the machine (and its probe loop) over a durable
// store. Returns nil — permanently serving — when there is none.
func newHealth(d *gdb.Durable, degradeAfter int, probeEvery time.Duration) *health {
	if d == nil {
		return nil
	}
	if degradeAfter <= 0 {
		degradeAfter = 3
	}
	if probeEvery <= 0 {
		probeEvery = 500 * time.Millisecond
	}
	h := &health{
		durable:      d,
		degradeAfter: degradeAfter,
		probeEvery:   probeEvery,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	go h.probeLoop()
	return h
}

// State returns the current state (serving for a nil machine).
func (h *health) State() HealthState {
	if h == nil {
		return HealthServing
	}
	return HealthState(h.state.Load())
}

// ReadOnly reports whether mutations must be rejected up front.
func (h *health) ReadOnly() bool { return h.State() == HealthDegraded }

// NoteSuccess records a persisted mutation: the failure streak resets,
// and a recovering daemon has verified its disk — back to serving.
func (h *health) NoteSuccess() {
	if h == nil {
		return
	}
	h.consecFails.Store(0)
	h.state.CompareAndSwap(int32(HealthRecovering), int32(HealthServing))
}

// NoteTransientFailure records a transient persist failure. In
// recovering it drops straight back to degraded; in serving it counts
// toward the K threshold. Corruption-class failures do not feed the
// machine — probing cannot heal a corrupt store, and the 500s they
// produce are the correct signal.
func (h *health) NoteTransientFailure(err error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.lastErr = err.Error()
	h.mu.Unlock()
	if h.state.CompareAndSwap(int32(HealthRecovering), int32(HealthDegraded)) {
		return
	}
	if h.consecFails.Add(1) >= int64(h.degradeAfter) {
		if h.state.CompareAndSwap(int32(HealthServing), int32(HealthDegraded)) {
			h.degradations.Add(1)
		}
	}
}

// probeLoop re-arms the write path: while degraded, it appends a no-op
// record through the full WAL append+fsync path; the first success
// moves to recovering (mutations re-admitted, next real one decides).
func (h *health) probeLoop() {
	defer close(h.done)
	t := time.NewTicker(h.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if h.State() != HealthDegraded {
				continue
			}
			h.probes.Add(1)
			if err := h.durable.Probe(); err != nil {
				h.probeFails.Add(1)
				h.mu.Lock()
				h.lastErr = err.Error()
				h.mu.Unlock()
				continue
			}
			h.state.CompareAndSwap(int32(HealthDegraded), int32(HealthRecovering))
		case <-h.stop:
			return
		}
	}
}

// Close stops the probe loop (idempotent, nil-safe, and safe for
// concurrent callers — the Once is what makes two racing Closes not
// double-close the channel).
func (h *health) Close() {
	if h == nil {
		return
	}
	h.closeOnce.Do(func() { close(h.stop) })
	<-h.done
}

// Info snapshots the machine for /stats.
func (h *health) Info() *HealthInfo {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	lastErr := h.lastErr
	h.mu.Unlock()
	return &HealthInfo{
		State:               h.State().String(),
		ConsecutiveFailures: h.consecFails.Load(),
		Degradations:        h.degradations.Load(),
		Probes:              h.probes.Load(),
		ProbeFailures:       h.probeFails.Load(),
		LastPersistError:    lastErr,
		InsertSeqHighWater:  gdb.InsertSeqHighWater(),
	}
}
