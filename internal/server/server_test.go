package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
)

// newTestServer serves the paper's 7-graph database on a single shard
// (the legacy behavior every pre-sharding assertion was written for).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	return newShardedTestServer(t, 1, cfg)
}

// newShardedTestServer serves the paper's 7-graph database split across
// nshards shards.
func newShardedTestServer(t *testing.T, nshards int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	db := gdb.NewSharded(nshards)
	if err := db.InsertAll(dataset.PaperDB()); err != nil {
		t.Fatal(err)
	}
	s := New(db, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	return postJSONClient(t, http.DefaultClient, url, body, out)
}

func postJSONClient(t *testing.T, client *http.Client, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	return getJSONClient(t, http.DefaultClient, url, out)
}

func getJSONClient(t *testing.T, client *http.Client, url string, out any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestSkylineRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 16})
	var resp SkylineResponse
	r := postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery(), All: true}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if len(resp.Skyline) == 0 || len(resp.Skyline) > 7 {
		t.Fatalf("skyline size %d out of range", len(resp.Skyline))
	}
	if len(resp.All) != 7 {
		t.Fatalf("full table has %d rows; want 7", len(resp.All))
	}
	if resp.Stats.CacheHit || resp.Stats.Evaluated != 7 {
		t.Fatalf("first query stats = %+v; want cold miss evaluating 7", resp.Stats)
	}
	for _, p := range resp.Skyline {
		if len(p.Vec) != 3 {
			t.Fatalf("point %s has %d dims; want 3", p.ID, len(p.Vec))
		}
	}
	// The same skyline must come back no matter which algorithm runs, and
	// from the cache.
	for _, alg := range []string{"bnl", "dac", "sfs"} {
		var again SkylineResponse
		postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery(), Algorithm: alg}, &again)
		if !again.Stats.CacheHit || again.Stats.Evaluated != 0 {
			t.Fatalf("%s: stats = %+v; want cache hit with zero evaluations", alg, again.Stats)
		}
		if len(again.Skyline) != len(resp.Skyline) {
			t.Fatalf("%s skyline size %d; want %d", alg, len(again.Skyline), len(resp.Skyline))
		}
	}
}

func TestTopKAndRangeShareSkylineTable(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 16})
	// prune=false warms a complete table that the ranking queries below
	// can reuse (a pruned skyline table cannot serve top-k/range).
	noPrune := false
	var sky SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery(), Prune: &noPrune}, &sky)
	if sky.Stats.CacheHit {
		t.Fatal("first skyline query cannot hit")
	}
	if sky.Stats.Pruned != 0 || sky.Stats.Evaluated != 7 {
		t.Fatalf("prune=false skyline stats = %+v; want full evaluation", sky.Stats)
	}

	// DistEd is in the default basis, so top-k reuses the skyline table.
	var tk TopKResponse
	r := postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: dataset.PaperQuery(), K: 3, Measure: "DistEd"}, &tk)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("topk status = %d", r.StatusCode)
	}
	if !tk.Stats.CacheHit || tk.Stats.Evaluated != 0 {
		t.Fatalf("topk stats = %+v; want cache hit", tk.Stats)
	}
	if len(tk.Items) != 3 {
		t.Fatalf("topk returned %d items; want 3", len(tk.Items))
	}
	for i := 1; i < len(tk.Items); i++ {
		if tk.Items[i].Score < tk.Items[i-1].Score {
			t.Fatal("topk items are not sorted ascending")
		}
	}

	var rg RangeResponse
	radius := 100.0
	r = postJSON(t, ts.URL+"/query/range", QueryRequest{Graph: dataset.PaperQuery(), Radius: &radius, Measure: "DistEd"}, &rg)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("range status = %d", r.StatusCode)
	}
	if !rg.Stats.CacheHit {
		t.Fatalf("range stats = %+v; want cache hit", rg.Stats)
	}
	if len(rg.Items) != 7 {
		t.Fatalf("radius 100 should admit all 7 graphs, got %d", len(rg.Items))
	}
}

func TestIsomorphicQueryHitsCache(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 16})
	var first SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &first)

	// Rebuild the query with its vertices in reverse order: a different
	// wire encoding of an isomorphic graph must reuse the cached table.
	q := dataset.PaperQuery()
	n := q.Order()
	perm := graph.New("permuted-q")
	for i := n - 1; i >= 0; i-- {
		perm.AddVertex(q.VertexLabel(i))
	}
	for _, e := range q.Edges() {
		if err := perm.AddEdge(n-1-e.U, n-1-e.V, e.Label); err != nil {
			t.Fatal(err)
		}
	}
	var second SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: perm}, &second)
	if !second.Stats.CacheHit {
		t.Fatal("isomorphic query should hit the cache via the canonical query hash")
	}
	if len(second.Skyline) != len(first.Skyline) {
		t.Fatalf("skyline sizes differ: %d vs %d", len(second.Skyline), len(first.Skyline))
	}
}

func TestMutationInvalidatesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: 16})
	var first SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &first)
	if first.Stats.CacheHit {
		t.Fatal("first query cannot hit")
	}

	// Insert a graph: the generation bumps and the cached table dies.
	g := graph.New("extra")
	g.AddVertex("a")
	g.AddVertex("b")
	g.MustAddEdge(0, 1, "x")
	var ins InsertResponse
	r := postJSON(t, ts.URL+"/graphs", InsertRequest{Graph: g}, &ins)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("insert status = %d", r.StatusCode)
	}
	if len(ins.Inserted) != 1 || ins.Inserted[0] != "extra" {
		t.Fatalf("inserted = %v", ins.Inserted)
	}
	if s.Cache().Len() != 0 {
		t.Fatalf("cache holds %d entries after insert; want 0", s.Cache().Len())
	}

	var second SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &second)
	if second.Stats.CacheHit {
		t.Fatal("query after insert must re-evaluate")
	}
	if second.Stats.Evaluated+second.Stats.Pruned != 8 {
		t.Fatalf("evaluated %d + pruned %d pairs after insert; want 8 total",
			second.Stats.Evaluated, second.Stats.Pruned)
	}

	// Delete invalidates again.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/extra", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	var third SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &third)
	if third.Stats.CacheHit || third.Stats.Evaluated+third.Stats.Pruned != 7 {
		t.Fatalf("stats after delete = %+v; want a fresh build covering all 7", third.Stats)
	}

	st := statsOf(t, ts.URL)
	if st.Cache.Invalidations < 1 {
		t.Fatalf("stats report %d invalidations; want >= 1", st.Cache.Invalidations)
	}
}

func statsOf(t *testing.T, base string) StatsResponse {
	t.Helper()
	var st StatsResponse
	if r := getJSON(t, base+"/stats", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", r.StatusCode)
	}
	return st
}

func TestStatsCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 16})
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, nil)
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, nil)
	st := statsOf(t, ts.URL)
	if st.DB.Graphs != 7 {
		t.Fatalf("db graphs = %d; want 7", st.DB.Graphs)
	}
	if st.Requests.Queries != 2 {
		t.Fatalf("queries = %d; want 2", st.Requests.Queries)
	}
	if st.Requests.PairEvals+st.Requests.PairsPruned != 7 {
		t.Fatalf("pair evals %d + pruned %d; want 7 total (second query cached)",
			st.Requests.PairEvals, st.Requests.PairsPruned)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d; want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
}

func TestGraphCRUD(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 4})
	var list ListResponse
	getJSON(t, ts.URL+"/graphs", &list)
	if len(list.Names) != 7 {
		t.Fatalf("list has %d names; want 7", len(list.Names))
	}

	var got graph.Graph
	r := getJSON(t, ts.URL+"/graphs/"+list.Names[0], &got)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d", r.StatusCode)
	}
	want := dataset.PaperDB()[0]
	if !got.Equal(want) {
		t.Fatalf("round-tripped graph differs:\n got %s\nwant %s", &got, want)
	}

	if r := getJSON(t, ts.URL+"/graphs/nope", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("get unknown status = %d; want 404", r.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/nope", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown status = %d; want 404", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 4})
	cases := []struct {
		name string
		url  string
		body any
	}{
		{"missing graph", "/query/skyline", QueryRequest{}},
		{"bad measure", "/query/topk", QueryRequest{Graph: dataset.PaperQuery(), K: 1, Measure: "DistBogus"}},
		{"missing k", "/query/topk", QueryRequest{Graph: dataset.PaperQuery()}},
		{"missing radius", "/query/range", QueryRequest{Graph: dataset.PaperQuery()}},
		{"bad algorithm", "/query/skyline", QueryRequest{Graph: dataset.PaperQuery(), Algorithm: "quantum"}},
		{"bad basis", "/query/skyline", QueryRequest{Graph: dataset.PaperQuery(), Basis: []string{"DistBogus"}}},
		{"empty insert", "/graphs", InsertRequest{}},
	}
	for _, tc := range cases {
		if r := postJSON(t, ts.URL+tc.url, tc.body, nil); r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d; want 400", tc.name, r.StatusCode)
		}
	}

	// Unknown fields are rejected too.
	resp, err := http.Post(ts.URL+"/query/skyline", "application/json",
		bytes.NewReader([]byte(`{"graf": {}}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status = %d; want 400", resp.StatusCode)
	}

	if r := postJSON(t, ts.URL+"/graphs", InsertRequest{Graph: dataset.PaperDB()[0]}, nil); r.StatusCode != http.StatusConflict {
		t.Errorf("duplicate insert: status = %d; want 409", r.StatusCode)
	}
}

func TestCustomBasisQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 16})
	// A topk on a measure outside the requested basis extends the basis.
	var tk TopKResponse
	r := postJSON(t, ts.URL+"/query/topk", QueryRequest{
		Graph:   dataset.PaperQuery(),
		K:       2,
		Measure: "DistDegree",
		Basis:   []string{"DistMcs"},
	}, &tk)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if tk.Measure != "DistDegree" || len(tk.Items) != 2 {
		t.Fatalf("resp = %+v", tk)
	}
	// Same request again: hits its own (extended-basis) table.
	var again TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{
		Graph:   dataset.PaperQuery(),
		K:       2,
		Measure: "DistDegree",
		Basis:   []string{"DistMcs"},
	}, &again)
	if !again.Stats.CacheHit {
		t.Fatal("repeat custom-basis query should hit")
	}
}

func TestInflightLimit(t *testing.T) {
	// MaxInflight 0 vs 1 is hard to race deterministically; instead check
	// the rejection path by filling the semaphore directly.
	s, ts := newTestServer(t, Config{CacheSize: 0, MaxInflight: 1})
	s.sem <- struct{}{} // occupy the only slot
	r := postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, nil)
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d; want 503", r.StatusCode)
	}
	<-s.sem
	if r := postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("status after freeing slot = %d; want 200", r.StatusCode)
	}
}

func TestConcurrentIdenticalQueriesCoalesce(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 16})
	const n = 8
	var wg sync.WaitGroup
	stats := make([]QueryStats, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp SkylineResponse
			postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &resp)
			stats[i] = resp.Stats
		}(i)
	}
	wg.Wait()
	// Whether followers coalesced on the in-flight leader or hit the
	// cache afterwards, the total pair-evaluation work is exactly one
	// table build covering all 7 graphs (evaluated or bound-pruned).
	st := statsOf(t, ts.URL)
	if st.Requests.PairEvals+st.Requests.PairsPruned != 7 {
		t.Fatalf("pair evals %d + pruned %d across %d concurrent identical queries; want 7 total",
			st.Requests.PairEvals, st.Requests.PairsPruned, n)
	}
	misses := 0
	for _, qs := range stats {
		if !qs.CacheHit {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d of %d concurrent queries report a miss; want exactly the leader", misses, n)
	}
}

func TestFollowerRetriesAfterLeaderFailure(t *testing.T) {
	s, _ := newTestServer(t, Config{CacheSize: 16})
	res, err := s.resolveQuery(&QueryRequest{Graph: dataset.PaperQuery()}, false)
	if err != nil {
		t.Fatal(err)
	}
	qh := graph.QueryHash(res.q)
	key := CacheKey(0, s.db.ShardGeneration(0), qh, res.basis, res.opts.Eval)

	// Simulate a leader that fails on its own deadline: registered in the
	// flight map, then (as the real leader does) removed before done is
	// closed with an error set.
	c := &flightCall{done: make(chan struct{}), err: context.DeadlineExceeded}
	s.flightMu.Lock()
	s.flight[key] = c
	s.flightMu.Unlock()
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.flightMu.Lock()
		delete(s.flight, key)
		s.flightMu.Unlock()
		close(c.done)
	}()

	tab, hit, err := s.shardTable(context.Background(), 0, qh, res)
	if err != nil {
		t.Fatalf("follower inherited the leader's failure: %v", err)
	}
	if hit {
		t.Fatal("follower should have evaluated itself after the leader failed")
	}
	if len(tab.Points)+tab.Pruned != 7 {
		t.Fatalf("table covers %d rows + %d pruned; want 7", len(tab.Points), tab.Pruned)
	}
}

func TestInsertInvalidGraphIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 4})
	// Nameless graph.
	g := graph.New("")
	g.AddVertex("a")
	if r := postJSON(t, ts.URL+"/graphs", InsertRequest{Graph: g}, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("nameless graph: status = %d; want 400", r.StatusCode)
	}
	// Structurally invalid graph (edge endpoint out of range) — built via
	// raw JSON since the Graph API refuses to construct it.
	body := []byte(`{"graph": {"name": "bad", "vertices": ["a"], "edges": [{"u": 0, "v": 5, "label": "x"}]}}`)
	resp, err := http.Post(ts.URL+"/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid edge: status = %d; want 400", resp.StatusCode)
	}
}

func TestEvalMergesOverServerDefaults(t *testing.T) {
	db := gdb.NewSharded(1)
	if err := db.InsertAll(dataset.PaperDB()); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{DefaultEval: measure.Options{GEDMaxNodes: 1234, MCSMaxNodes: 99}})
	cases := []struct {
		name string
		req  *measure.Options
		want measure.Options
	}{
		{"nil keeps defaults", nil, measure.Options{GEDMaxNodes: 1234, MCSMaxNodes: 99}},
		{"empty keeps defaults", &measure.Options{}, measure.Options{GEDMaxNodes: 1234, MCSMaxNodes: 99}},
		{"nonzero overrides", &measure.Options{GEDMaxNodes: 7}, measure.Options{GEDMaxNodes: 7, MCSMaxNodes: 99}},
		{"negative lifts cap", &measure.Options{GEDMaxNodes: -1}, measure.Options{GEDMaxNodes: 0, MCSMaxNodes: 99}},
	}
	for _, tc := range cases {
		if got := s.mergeEval(tc.req); got != tc.want {
			t.Errorf("%s: merged %+v; want %+v", tc.name, got, tc.want)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var body map[string]string
	if r := getJSON(t, ts.URL+"/healthz", &body); r.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", r.StatusCode, body)
	}
}

func TestEvictionUnderManyDistinctQueries(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: 2})
	for i := 0; i < 4; i++ {
		q := graph.New(fmt.Sprintf("q%d", i))
		for v := 0; v <= i+1; v++ {
			q.AddVertex("a")
		}
		for v := 0; v <= i; v++ {
			q.MustAddEdge(v, v+1, "x")
		}
		postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q}, nil)
	}
	if got := s.Cache().Len(); got != 2 {
		t.Fatalf("cache len = %d; want bounded at 2", got)
	}
	if st := s.Cache().Stats(); st.Evictions != 2 {
		t.Fatalf("evictions = %d; want 2", st.Evictions)
	}
}
