package server

import (
	"net/http"

	"skygraph/internal/fault"
)

// The fault admin endpoint — mounted only with Config.FaultAdmin — lets
// chaos tooling arm and inspect the process-wide failpoint registry
// over HTTP:
//
//	GET  /admin/fault            → current registry snapshot
//	POST /admin/fault {"spec":S} → fault.Configure(S), then snapshot
//
// The spec grammar is fault.Configure's: "point=mode:key=val,...;..."
// ("off" resets everything). It is deliberately test-only: a production
// daemon must never expose a handle that makes its own disk fail.

// FaultAdminRequest is the body of POST /admin/fault.
type FaultAdminRequest struct {
	Spec string `json:"spec"`
}

// FaultAdminResponse answers both methods with the registry state
// after any change.
type FaultAdminResponse struct {
	Armed  int                `json:"armed"`
	Fires  uint64             `json:"fires"`
	Points []fault.PointStats `json:"points"`
}

func faultAdminSnapshot() FaultAdminResponse {
	return FaultAdminResponse{
		Armed:  fault.Armed(),
		Fires:  fault.TotalFires(),
		Points: fault.Snapshot(),
	}
}

func (s *Server) handleFaultGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, faultAdminSnapshot())
}

func (s *Server) handleFaultSet(w http.ResponseWriter, r *http.Request) {
	var req FaultAdminRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := fault.Configure(req.Spec); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad fault spec: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, faultAdminSnapshot())
}
