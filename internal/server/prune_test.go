package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/testutil"
)

// newShardedTestServerWith serves an arbitrary graph set split across
// nshards shards.
func newShardedTestServerWith(t *testing.T, nshards int, cfg Config, gs []*graph.Graph) (*Server, *httptest.Server) {
	t.Helper()
	db := gdb.NewSharded(nshards)
	if err := db.InsertAll(gs); err != nil {
		t.Fatal(err)
	}
	s := New(db, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestSkylinePrunesByDefaultAndMatchesFull: the default skyline path
// runs filter-and-refine, reports pruned in the wire stats, and returns
// exactly the skyline a forced-full evaluation returns — across shard
// counts, including the harness's seeded databases.
func TestSkylinePrunesByDefaultAndMatchesFull(t *testing.T) {
	gs := append(dataset.PaperDB(), testutil.SeededGraphs(5, 17)...)
	for _, shards := range []int{1, 2, 3, 7} {
		_, ts := newShardedTestServerWith(t, shards, Config{CacheSize: 64}, gs)
		for qi, q := range append(testutil.SeededQueries(77, gs, 2), dataset.PaperQuery()) {
			noPrune := false
			var full SkylineResponse
			r := postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q, Prune: &noPrune}, &full)
			if r.StatusCode != http.StatusOK {
				t.Fatalf("shards=%d q=%d: full status %d", shards, qi, r.StatusCode)
			}
			var pruned SkylineResponse
			r = postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q}, &pruned)
			if r.StatusCode != http.StatusOK {
				t.Fatalf("shards=%d q=%d: pruned status %d", shards, qi, r.StatusCode)
			}
			// The full table is warm, so the default request is served
			// from it (a complete table answers skyline queries too).
			if !pruned.Stats.CacheHit {
				t.Fatalf("shards=%d q=%d: pruned query missed the warm full table", shards, qi)
			}
			requireSameSkylineJSON(t, shards, qi, full.Skyline, pruned.Skyline)
		}
	}
}

// TestSkylinePrunedColdPathMatchesFull: cold pruned builds (no warm
// full table) must produce the same skyline and account for every
// graph.
func TestSkylinePrunedColdPathMatchesFull(t *testing.T) {
	gs := testutil.SeededGraphs(9, 20)
	q := testutil.SeededQueries(99, gs, 1)[0]
	for _, shards := range []int{1, 3} {
		// Separate servers so neither run sees the other's cache.
		_, tsPruned := newShardedTestServerWith(t, shards, Config{CacheSize: 64}, gs)
		_, tsFull := newShardedTestServerWith(t, shards, Config{CacheSize: 64}, gs)

		var pruned SkylineResponse
		postJSON(t, tsPruned.URL+"/query/skyline", QueryRequest{Graph: q}, &pruned)
		noPrune := false
		var full SkylineResponse
		postJSON(t, tsFull.URL+"/query/skyline", QueryRequest{Graph: q, Prune: &noPrune}, &full)

		if pruned.Stats.Evaluated+pruned.Stats.Pruned != len(gs) {
			t.Fatalf("shards=%d: evaluated %d + pruned %d != %d graphs",
				shards, pruned.Stats.Evaluated, pruned.Stats.Pruned, len(gs))
		}
		if full.Stats.Pruned != 0 || full.Stats.Evaluated != len(gs) {
			t.Fatalf("shards=%d: full run stats = %+v", shards, full.Stats)
		}
		requireSameSkylineJSON(t, shards, 0, full.Skyline, pruned.Skyline)

		// A later ranking query on the pruned-only server still answers
		// (it builds the complete table it needs).
		var tk TopKResponse
		r := postJSON(t, tsPruned.URL+"/query/topk", QueryRequest{Graph: q, K: 3, Measure: "DistEd"}, &tk)
		if r.StatusCode != http.StatusOK || len(tk.Items) != 3 {
			t.Fatalf("shards=%d: topk after pruned skyline: status %d items %d", shards, r.StatusCode, len(tk.Items))
		}
	}
}

// requireSameSkylineJSON compares wire skylines member-by-member (both
// engines answer in global insertion order, so order is part of the
// contract).
func requireSameSkylineJSON(t *testing.T, shards, qi int, want, got []PointJSON) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("shards=%d q=%d: skyline sizes differ: want %d, got %d", shards, qi, len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID {
			t.Fatalf("shards=%d q=%d: member %d: want %s, got %s", shards, qi, i, want[i].ID, got[i].ID)
		}
		if len(want[i].Vec) != len(got[i].Vec) {
			t.Fatalf("shards=%d q=%d: %s: vector dims differ", shards, qi, want[i].ID)
		}
		for d := range want[i].Vec {
			if want[i].Vec[d] != got[i].Vec[d] {
				t.Fatalf("shards=%d q=%d: %s dim %d: want %v, got %v",
					shards, qi, want[i].ID, d, want[i].Vec[d], got[i].Vec[d])
			}
		}
	}
}
