package server

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"skygraph/internal/fault"
	"skygraph/internal/gdb"
	"skygraph/internal/obs"
)

// metrics is the server's obs registry plus the handles the hot paths
// write to. Request-scoped series (per-endpoint latency, per-kind
// cascade counters) are fed by the handlers; occupancy numbers another
// subsystem already maintains (cache, shards, pivot indexes, memo, Go
// runtime) are registered as render-time callbacks so /metrics always
// reports the live value without a second set of counters to keep in
// sync.
type metrics struct {
	reg *obs.Registry

	// HTTP layer, labelled by route pattern.
	httpRequests obs.CounterVec // endpoint, code
	httpLatency  obs.HistogramVec
	httpInflight obs.GaugeVec

	// Query cascade, labelled by query kind (skyline/topk/range).
	queryLatency  obs.HistogramVec
	pairsEval     obs.CounterVec
	pairsPruned   obs.CounterVec
	pivotPruned   obs.CounterVec
	memoHits      obs.CounterVec
	memoMisses    obs.CounterVec
	vectorSkipped obs.CounterVec
	queryCacheHit obs.CounterVec

	// Cascade stages, labelled by trace stage name.
	stageSeconds obs.CounterVec
	stagePairs   obs.CounterVec
	stagePruned  obs.CounterVec

	slowQueries obs.Counter
}

// newMetrics builds the registry for one Server. Call once, after the
// database (shards, pivot indexes, memo) is fully assembled — the
// callback metrics bind to what exists now.
func newMetrics(s *Server) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	m.httpRequests = reg.CounterVec("skygraph_http_requests_total",
		"HTTP requests served, by route and status code.", "endpoint", "code")
	m.httpLatency = reg.HistogramVec("skygraph_http_request_duration_seconds",
		"HTTP request latency by route.", nil, "endpoint")
	m.httpInflight = reg.GaugeVec("skygraph_http_inflight_requests",
		"HTTP requests currently being served, by route.", "endpoint")

	m.queryLatency = reg.HistogramVec("skygraph_query_duration_seconds",
		"Server-side query latency by query kind (batch items counted individually).", nil, "kind")
	m.pairsEval = reg.CounterVec("skygraph_query_pairs_evaluated_total",
		"Exact pair evaluations caused by queries, by query kind.", "kind")
	m.pairsPruned = reg.CounterVec("skygraph_query_pairs_pruned_total",
		"Pairs excluded without exact evaluation, by query kind.", "kind")
	m.pivotPruned = reg.CounterVec("skygraph_query_pivot_pruned_total",
		"Pairs (within pruned) excluded only thanks to the pivot tier, by query kind.", "kind")
	m.memoHits = reg.CounterVec("skygraph_query_memo_hits_total",
		"Score-memo lookups that replayed a recorded result, by query kind.", "kind")
	m.memoMisses = reg.CounterVec("skygraph_query_memo_misses_total",
		"Score-memo lookups that missed, by query kind.", "kind")
	m.vectorSkipped = reg.CounterVec("skygraph_query_vector_skipped_total",
		"Candidates the vector tier excluded wholesale via cell floors, by query kind.", "kind")
	m.queryCacheHit = reg.CounterVec("skygraph_query_cache_hits_total",
		"Queries answered entirely from the table or ranked cache, by query kind.", "kind")

	m.stageSeconds = reg.CounterVec("skygraph_stage_seconds_total",
		"Cascade-stage work time summed across shards and workers, by stage.", "stage")
	m.stagePairs = reg.CounterVec("skygraph_stage_pairs_total",
		"Candidate pairs processed per cascade stage.", "stage")
	m.stagePruned = reg.CounterVec("skygraph_stage_pruned_total",
		"Candidate pairs excluded per cascade stage.", "stage")

	m.slowQueries = reg.Counter("skygraph_slow_queries_total",
		"Queries at or above the slow-query threshold.")

	// Lifetime request counters the handlers already maintain.
	reg.CounterFunc("skygraph_queries_total", "Query requests received (batch items included).",
		func() float64 { return float64(s.queries.Load()) })
	reg.CounterFunc("skygraph_batches_total", "Batch requests received.",
		func() float64 { return float64(s.batches.Load()) })
	reg.CounterFunc("skygraph_inserts_total", "Insert requests received.",
		func() float64 { return float64(s.inserts.Load()) })
	reg.CounterFunc("skygraph_deletes_total", "Delete requests received.",
		func() float64 { return float64(s.deletes.Load()) })
	reg.CounterFunc("skygraph_request_errors_total", "Requests answered with an error.",
		func() float64 { return float64(s.errors.Load()) })
	reg.CounterFunc("skygraph_query_timeouts_total", "Queries that hit their deadline.",
		func() float64 { return float64(s.timeouts.Load()) })
	reg.CounterFunc("skygraph_vector_cells_probed_total", "Partition cells the vector tier probed across fresh evaluations.",
		func() float64 { return float64(s.vectorCells.Load()) })
	reg.CounterFunc("skygraph_vector_skipped_total", "Candidates the vector tier excluded wholesale via cell floors.",
		func() float64 { return float64(s.vectorSkipped.Load()) })
	reg.CounterFunc("skygraph_vector_fallbacks_total", "Shard snapshots a stale vector partition could not serve.",
		func() float64 { return float64(s.vectorFallbacks.Load()) })
	reg.CounterFunc("skygraph_inflight_rejected_total", "Evaluations rejected at the inflight limit.",
		func() float64 { return float64(s.rejected.Load()) })
	reg.CounterFunc("skygraph_load_shed_total", "Queries refused with 429 at the inflight-query cap.",
		func() float64 { return float64(s.shed.Load()) })
	reg.CounterFunc("skygraph_degraded_rejects_total", "Mutations refused with 503 in degraded-readonly mode.",
		func() float64 { return float64(s.degradedRejects.Load()) })

	// Fault injection — the registry is process-wide, so these are
	// flat 0 on a production daemon (disarmed failpoints are no-ops).
	reg.GaugeFunc("skygraph_fault_armed_points", "Failpoints currently armed.",
		func() float64 { return float64(fault.Armed()) })
	reg.CounterFunc("skygraph_fault_injected_total", "Faults fired across all failpoints since arming.",
		func() float64 { return float64(fault.TotalFires()) })

	// Write-path health (absent without -data-dir).
	if h := s.health; h != nil {
		reg.GaugeFunc("skygraph_health_state",
			"Write-path health: 0 serving, 1 degraded-readonly, 2 recovering.",
			func() float64 { return float64(h.State()) })
		reg.GaugeFunc("skygraph_health_consecutive_persist_failures",
			"Transient persist failures since the last success.",
			func() float64 { return float64(h.consecFails.Load()) })
		reg.CounterFunc("skygraph_health_degradations_total", "Transitions into degraded-readonly.",
			func() float64 { return float64(h.degradations.Load()) })
		reg.CounterFunc("skygraph_health_probes_total", "Background write probes fired while degraded.",
			func() float64 { return float64(h.probes.Load()) })
		reg.CounterFunc("skygraph_health_probe_failures_total", "Background write probes that failed.",
			func() float64 { return float64(h.probeFails.Load()) })
	}

	// Vector-table / ranked-answer cache.
	reg.CounterFunc("skygraph_cache_hits_total", "Table and ranked cache hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("skygraph_cache_misses_total", "Table and ranked cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("skygraph_cache_evictions_total", "Cache entries evicted by LRU pressure.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.CounterFunc("skygraph_cache_invalidations_total", "Cache entries dropped by mutations.",
		func() float64 { return float64(s.cache.Stats().Invalidations) })
	reg.CounterFunc("skygraph_cache_delta_applied_total", "Cache entries upgraded in place across a mutation.",
		func() float64 { return float64(s.cache.Stats().DeltaApplied) })
	reg.CounterFunc("skygraph_cache_delta_fallbacks_total", "Cache entries a mutation dropped because no delta proof existed.",
		func() float64 { return float64(s.cache.Stats().DeltaFallbacks) })
	reg.GaugeFunc("skygraph_cache_entries", "Cached tables and ranked answers.",
		func() float64 { return float64(s.cache.Len()) })

	// Cross-query score memo (absent without -memo).
	if memo := s.db.Memo(); memo != nil {
		reg.CounterFunc("skygraph_memo_hits_total", "Score-memo hits since startup.",
			func() float64 { return float64(memo.Stats().Hits) })
		reg.CounterFunc("skygraph_memo_misses_total", "Score-memo misses since startup.",
			func() float64 { return float64(memo.Stats().Misses) })
		reg.GaugeFunc("skygraph_memo_entries", "Memoized pair scores held.",
			func() float64 { return float64(memo.Stats().Entries) })
	}

	// Persistence layer (absent without -data-dir): WAL occupancy and
	// append/fsync counters, snapshot progress, and what the startup
	// recovery rebuilt (the recovery numbers are constants for the
	// process lifetime — gauges so a scrape right after a restart shows
	// whether the WAL tail needed repair).
	if d := s.cfg.Durable; d != nil {
		reg.CounterFunc("skygraph_wal_appends_total", "Records appended to the write-ahead log.",
			func() float64 { return float64(d.Stats().WAL.Appends) })
		reg.CounterFunc("skygraph_wal_appended_bytes_total", "Bytes appended to the write-ahead log.",
			func() float64 { return float64(d.Stats().WAL.AppendedBytes) })
		reg.CounterFunc("skygraph_wal_fsyncs_total", "WAL fsync calls.",
			func() float64 { return float64(d.Stats().WAL.Fsyncs) })
		reg.GaugeFunc("skygraph_wal_segments", "Live WAL segment files.",
			func() float64 { return float64(d.Stats().WAL.Segments) })
		reg.GaugeFunc("skygraph_wal_size_bytes", "Total bytes held in WAL segments.",
			func() float64 { return float64(d.Stats().WAL.SizeBytes) })
		reg.GaugeFunc("skygraph_wal_last_lsn", "LSN of the most recently appended record.",
			func() float64 { return float64(d.Stats().WAL.LastLSN) })
		reg.CounterFunc("skygraph_snapshots_total", "Snapshots cut since startup.",
			func() float64 { return float64(d.Stats().Snapshots) })
		reg.GaugeFunc("skygraph_snapshot_last_lsn", "WAL coverage point of the current snapshot.",
			func() float64 { return float64(d.Stats().LastSnapLSN) })
		reg.GaugeFunc("skygraph_snapshot_graphs", "Graphs in the current snapshot.",
			func() float64 { return float64(d.Stats().LastSnapGraphs) })
		rec := d.Recovery()
		reg.GaugeFunc("skygraph_recovery_snapshot_graphs", "Graphs the startup recovery loaded from the snapshot.",
			func() float64 { return float64(rec.SnapshotGraphs) })
		reg.GaugeFunc("skygraph_recovery_replayed_records", "WAL records the startup recovery replayed.",
			func() float64 { return float64(rec.ReplayedRecords) })
		reg.GaugeFunc("skygraph_recovery_repaired_bytes", "Bytes truncated off a torn WAL tail at startup.",
			func() float64 { return float64(rec.RepairedBytes) })
		reg.GaugeFunc("skygraph_recovery_dropped_segments", "WAL segments dropped as unrecoverable at startup.",
			func() float64 { return float64(rec.DroppedSegments) })
		reg.GaugeFunc("skygraph_recovery_seconds", "Wall time of the startup recovery.",
			func() float64 { return rec.Duration.Seconds() })
	}

	// Per-shard occupancy, and the pivot index's background work where
	// one is attached.
	shardGraphs := reg.GaugeVec("skygraph_shard_graphs", "Graphs stored per shard.", "shard")
	shardGen := reg.GaugeVec("skygraph_shard_generation", "Mutation generation per shard.", "shard")
	var pivotReady, pivotPending obs.GaugeVec
	var pivotRebuilds, pivotRebuildSecs, pivotColumns, pivotColumnSecs obs.CounterVec
	pivotRegistered := false
	var vecCells, vecMembers, vecMeanList, vecEpoch obs.GaugeVec
	var vecRebuilds, vecRebuildSecs obs.CounterVec
	vectorRegistered := false
	for i := 0; i < s.db.NumShards(); i++ {
		shard := s.db.Shard(i)
		label := strconv.Itoa(i)
		shardGraphs.WithFunc(func() float64 { return float64(shard.Len()) }, label)
		shardGen.WithFunc(func() float64 { return float64(shard.Generation()) }, label)
		// Vector-tier occupancy where a partition index is attached: cell
		// count, embedded members, mean inverted-list length, and the
		// epoch/rebuild counters that show the inline doubling rebuilds
		// keeping up with growth.
		if vix := shard.VectorIndex(); vix != nil {
			if !vectorRegistered {
				vectorRegistered = true
				vecCells = reg.GaugeVec("skygraph_vector_cells", "Coarse cells in the shard's vector partition.", "shard")
				vecMembers = reg.GaugeVec("skygraph_vector_members", "Graphs embedded in the shard's vector partition.", "shard")
				vecMeanList = reg.GaugeVec("skygraph_vector_mean_list_length", "Mean inverted-list length per partition cell, per shard.", "shard")
				vecEpoch = reg.GaugeVec("skygraph_vector_epoch", "Partition rebuild epoch, per shard.", "shard")
				vecRebuilds = reg.CounterVec("skygraph_vector_rebuilds_total", "Partition rebuilds (centroid re-selections), per shard.", "shard")
				vecRebuildSecs = reg.CounterVec("skygraph_vector_rebuild_seconds_total", "Time spent rebuilding partitions, per shard.", "shard")
			}
			vecCells.WithFunc(func() float64 { return float64(vix.Occupancy().Cells) }, label)
			vecMembers.WithFunc(func() float64 { return float64(vix.Occupancy().Members) }, label)
			vecMeanList.WithFunc(func() float64 { return vix.Occupancy().MeanList }, label)
			vecEpoch.WithFunc(func() float64 { return float64(vix.Occupancy().Epoch) }, label)
			vecRebuilds.WithFunc(func() float64 { return float64(vix.Occupancy().Rebuilds) }, label)
			vecRebuildSecs.WithFunc(func() float64 { return float64(vix.Occupancy().RebuildNanos) / 1e9 }, label)
		}
		ix := shard.PivotIndex()
		if ix == nil {
			continue
		}
		if !pivotRegistered {
			pivotRegistered = true
			pivotReady = reg.GaugeVec("skygraph_pivot_ready_columns", "Stored graphs with a computed pivot column, per shard.", "shard")
			pivotPending = reg.GaugeVec("skygraph_pivot_pending_columns", "Pivot columns still queued behind the background workers, per shard.", "shard")
			pivotRebuilds = reg.CounterVec("skygraph_pivot_rebuilds_total", "Pivot re-selections, per shard.", "shard")
			pivotRebuildSecs = reg.CounterVec("skygraph_pivot_rebuild_seconds_total", "Time spent re-selecting pivots, per shard.", "shard")
			pivotColumns = reg.CounterVec("skygraph_pivot_columns_total", "Pivot distance columns computed, per shard.", "shard")
			pivotColumnSecs = reg.CounterVec("skygraph_pivot_column_seconds_total", "Engine time spent computing pivot columns, per shard.", "shard")
		}
		pivotReady.WithFunc(func() float64 { _, ready, _ := ix.Ready(); return float64(ready) }, label)
		pivotPending.WithFunc(func() float64 { _, _, pending := ix.Ready(); return float64(pending) }, label)
		pivotRebuilds.WithFunc(func() float64 { return float64(ix.Counters().Rebuilds) }, label)
		pivotRebuildSecs.WithFunc(func() float64 { return float64(ix.Counters().RebuildNanos) / 1e9 }, label)
		pivotColumns.WithFunc(func() float64 { return float64(ix.Counters().Columns) }, label)
		pivotColumnSecs.WithFunc(func() float64 { return float64(ix.Counters().ColumnNanos) / 1e9 }, label)
	}

	// Process-level runtime stats and build identity.
	reg.GaugeFunc("skygraph_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_memstats_heap_alloc_bytes", "Heap bytes allocated and in use.",
		func() float64 { return float64(readMemStats().HeapAlloc) })
	reg.GaugeFunc("go_memstats_heap_sys_bytes", "Heap bytes obtained from the OS.",
		func() float64 { return float64(readMemStats().HeapSys) })
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(readMemStats().NumGC) })
	reg.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(readMemStats().PauseTotalNs) / 1e9 })
	bi := buildInfo()
	buildGauge := reg.GaugeVec("skygraph_build_info",
		"Constant 1, labelled with the build's Go version and VCS revision.", "go_version", "revision")
	buildGauge.With(bi.GoVersion, bi.Revision).Set(1)

	return m
}

// readMemStats snapshots runtime.MemStats. Each callback reads its own
// snapshot; scrapes are rare enough that coherence across gauges is not
// worth a cache.
func readMemStats() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms
}

// buildInfo extracts the wire build identity from the binary's embedded
// build information.
func buildInfo() BuildInfo {
	out := BuildInfo{GoVersion: runtime.Version(), Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Module = bi.Main.Path
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			out.Revision = s.Value
		}
	}
	return out
}

// observeQuery feeds one answered query's stats and trace into the
// per-kind and per-stage families. Called for dedicated-endpoint
// queries and each batch item alike.
func (m *metrics) observeQuery(kind string, qs QueryStats, stages []gdb.TraceStage) {
	m.queryLatency.With(kind).Observe(qs.DurationMS / 1e3)
	m.pairsEval.With(kind).Add(float64(qs.Evaluated))
	m.pairsPruned.With(kind).Add(float64(qs.Pruned))
	m.pivotPruned.With(kind).Add(float64(qs.PivotPruned))
	m.memoHits.With(kind).Add(float64(qs.MemoHits))
	m.memoMisses.With(kind).Add(float64(qs.MemoMisses))
	m.vectorSkipped.With(kind).Add(float64(qs.VectorSkipped))
	if qs.CacheHit {
		m.queryCacheHit.With(kind).Inc()
	}
	for _, st := range stages {
		m.stageSeconds.With(st.Stage).Add(st.DurationMS / 1e3)
		m.stagePairs.With(st.Stage).Add(float64(st.Pairs))
		m.stagePruned.With(st.Stage).Add(float64(st.Pruned))
	}
}

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// route registers pattern on mux wrapped with per-endpoint
// instrumentation: request count by status code, latency histogram and
// inflight gauge, all labelled with the route pattern.
func (s *Server) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	inflight := s.met.httpInflight.With(pattern)
	hist := s.met.httpLatency.With(pattern)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Inc()
		defer inflight.Dec()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		hist.Observe(time.Since(start).Seconds())
		s.met.httpRequests.With(pattern, strconv.Itoa(sw.code)).Inc()
	})
}
