package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"syscall"
	"testing"
	"time"

	"skygraph/internal/dataset"
	"skygraph/internal/fault"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/wal"
)

// newResilientServer opens dir with a fast-reacting health machine for
// the degradation tests: degrade after 2 failures, probe every 10ms.
func newResilientServer(t *testing.T, dir string) (*gdb.Durable, *Server, *httptest.Server) {
	t.Helper()
	d, err := gdb.OpenDurable(gdb.DurableOptions{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	s := New(d.DB, Config{
		CacheSize:    16,
		Durable:      d,
		DegradeAfter: 2,
		ProbeEvery:   10 * time.Millisecond,
		RetryAfter:   250 * time.Millisecond,
		FaultAdmin:   true,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		_ = d.Close()
	})
	return d, s, ts
}

func namedGraph(t *testing.T, name string) *graph.Graph {
	t.Helper()
	g := dataset.PaperDB()[0].Clone()
	g.SetName(name)
	return g
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// postAny is postJSON that decodes the body on every status, so tests
// can assert error classes.
func postAny(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

func doDelete(t *testing.T, url string, headers map[string]string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

// TestDegradedReadonlyLifecycle walks the whole state machine over a
// live server: a persistently failing WAL turns K consecutive mutation
// failures into degraded-readonly (mutations 503 + Retry-After, queries
// fine, /readyz not ready), the background probe notices the heal and
// re-admits writes, and the next persisted mutation returns to serving.
func TestDegradedReadonlyLifecycle(t *testing.T) {
	defer fault.Reset()
	_, s, ts := newResilientServer(t, t.TempDir())

	var ins InsertResponse
	if resp := postAny(t, ts.URL+"/graphs", InsertRequest{Graphs: dataset.PaperDB()}, &ins); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed insert: status %d", resp.StatusCode)
	}

	// Break the disk. Two failed mutations cross the K=2 threshold.
	fault.Set(fault.WALAppend, fault.Config{Mode: fault.ModeError, Err: syscall.EIO})
	for i := 0; i < 2; i++ {
		var body ErrorResponse
		resp := postAny(t, ts.URL+"/graphs", InsertRequest{Graph: namedGraph(t, fmt.Sprintf("doomed-%d", i))}, &body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("faulted insert %d: status %d, want 503", i, resp.StatusCode)
		}
		if body.Class != ClassTransient {
			t.Fatalf("faulted insert %d: class %q, want %q", i, body.Class, ClassTransient)
		}
		if body.RetryAfterMS != 250 {
			t.Fatalf("faulted insert %d: retry_after_ms %d, want 250", i, body.RetryAfterMS)
		}
	}
	if got := s.HealthState(); got != HealthDegraded {
		t.Fatalf("state after %d failures: %v", 2, got)
	}

	// Degraded: mutations are refused up front with the degraded class...
	var dbody ErrorResponse
	resp := postAny(t, ts.URL+"/graphs", InsertRequest{Graph: namedGraph(t, "refused")}, &dbody)
	if resp.StatusCode != http.StatusServiceUnavailable || dbody.Class != ClassDegraded {
		t.Fatalf("degraded insert: status %d class %q", resp.StatusCode, dbody.Class)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("degraded insert Retry-After = %q, want 1s (250ms rounded up)", resp.Header.Get("Retry-After"))
	}
	if resp := doDelete(t, ts.URL+"/graphs/"+ins.Inserted[0], nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded delete: status %d", resp.StatusCode)
	}

	// ...queries keep serving from memory...
	var sky SkylineResponse
	if resp := postAny(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &sky); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query: status %d", resp.StatusCode)
	}
	if len(sky.Skyline) == 0 {
		t.Fatal("degraded query returned an empty skyline")
	}

	// ...and /readyz and /stats say why.
	if rresp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		rresp.Body.Close()
		if rresp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("/readyz while degraded: status %d", rresp.StatusCode)
		}
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Health == nil || stats.Health.State != "degraded_readonly" {
		t.Fatalf("stats health block: %+v", stats.Health)
	}
	if stats.Health.Degradations != 1 {
		t.Fatalf("degradations = %d, want 1", stats.Health.Degradations)
	}
	if stats.Health.LastPersistError == "" {
		t.Fatal("no last_persist_error while degraded")
	}
	if stats.Requests.DegradedRejected != 2 {
		t.Fatalf("degraded_rejected = %d, want 2", stats.Requests.DegradedRejected)
	}
	if stats.Fault == nil || stats.Fault.Armed != 1 {
		t.Fatalf("stats fault block: %+v", stats.Fault)
	}

	// Heal the disk: the probe re-arms writes, the next mutation lands
	// and the machine returns to serving.
	fault.Reset()
	waitFor(t, "probe to leave degraded", func() bool { return s.HealthState() != HealthDegraded })
	var ok InsertResponse
	if resp := postAny(t, ts.URL+"/graphs", InsertRequest{Graph: namedGraph(t, "healed")}, &ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert after heal: status %d", resp.StatusCode)
	}
	if got := s.HealthState(); got != HealthServing {
		t.Fatalf("state after healed mutation: %v", got)
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Health.Probes == 0 {
		t.Fatal("no probes counted across a degradation")
	}
	if rresp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		rresp.Body.Close()
		if rresp.StatusCode != http.StatusOK {
			t.Fatalf("/readyz after heal: status %d", rresp.StatusCode)
		}
	}
}

// TestRecoveringRelapsesToDegraded pins the trust-but-verify edge: a
// mutation that fails while recovering drops straight back to degraded
// without re-counting to K.
func TestRecoveringRelapsesToDegraded(t *testing.T) {
	defer fault.Reset()
	_, s, ts := newResilientServer(t, t.TempDir())

	fault.Set(fault.WALAppend, fault.Config{Mode: fault.ModeError, Err: syscall.EIO})
	for i := 0; i < 2; i++ {
		postAny(t, ts.URL+"/graphs", InsertRequest{Graph: namedGraph(t, fmt.Sprintf("doomed-%d", i))}, nil)
	}
	if s.HealthState() != HealthDegraded {
		t.Fatal("not degraded after K failures")
	}

	// Let exactly one probe succeed, then break the disk again before
	// the verifying mutation arrives.
	fault.Reset()
	waitFor(t, "probe success", func() bool { return s.HealthState() == HealthRecovering })
	fault.Set(fault.WALAppend, fault.Config{Mode: fault.ModeError, Err: syscall.EIO, Limit: 1})
	resp := postAny(t, ts.URL+"/graphs", InsertRequest{Graph: namedGraph(t, "relapse")}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("relapse insert: status %d", resp.StatusCode)
	}
	if s.HealthState() != HealthDegraded {
		t.Fatalf("one failure in recovering left state %v, want degraded", s.HealthState())
	}
}

// TestCorruptClassDoesNotDegrade: corruption-class persist failures
// answer 500/corrupt and must not move the health machine — probing
// cannot heal a corrupt store.
func TestCorruptClassDoesNotDegrade(t *testing.T) {
	defer fault.Reset()
	_, s, ts := newResilientServer(t, t.TempDir())

	fault.Set(fault.WALAppend, fault.Config{Mode: fault.ModeError, Err: wal.ErrCorrupt})
	for i := 0; i < 4; i++ {
		var body ErrorResponse
		resp := postAny(t, ts.URL+"/graphs", InsertRequest{Graph: namedGraph(t, fmt.Sprintf("corrupt-%d", i))}, &body)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("corrupt insert %d: status %d, want 500", i, resp.StatusCode)
		}
		if body.Class != ClassCorrupt {
			t.Fatalf("corrupt insert %d: class %q", i, body.Class)
		}
	}
	if got := s.HealthState(); got != HealthServing {
		t.Fatalf("corruption-class failures moved the machine to %v", got)
	}
}

// TestLoadShed pins the front-door admission control: with the
// inflight-query cap saturated, queries, batches and warms answer 429
// with the overloaded class and a Retry-After, and the shed counter
// shows up in /stats.
func TestLoadShed(t *testing.T) {
	db := gdb.NewSharded(2)
	for _, g := range dataset.PaperDB() {
		if err := db.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	s := New(db, Config{CacheSize: 16, MaxInflightQueries: 2, RetryAfter: 2 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Saturate the cap without racing real slow queries.
	s.inflightQ.Add(2)
	for _, ep := range []string{"/query/skyline", "/query/batch", "/cache/warm"} {
		var body ErrorResponse
		resp := postAny(t, ts.URL+ep, map[string]any{}, &body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s at cap: status %d, want 429", ep, resp.StatusCode)
		}
		if body.Class != ClassOverloaded {
			t.Fatalf("%s at cap: class %q", ep, body.Class)
		}
		if resp.Header.Get("Retry-After") != "2" {
			t.Fatalf("%s at cap: Retry-After %q", ep, resp.Header.Get("Retry-After"))
		}
	}
	s.inflightQ.Add(-2)

	// Below the cap, queries pass and the shed count is visible.
	var sky SkylineResponse
	if resp := postAny(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, &sky); resp.StatusCode != http.StatusOK {
		t.Fatalf("query below cap: status %d", resp.StatusCode)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Requests.LoadShed != 3 {
		t.Fatalf("load_shed = %d, want 3", stats.Requests.LoadShed)
	}
	// Mutations are not queries and must never be shed by the cap.
	s.inflightQ.Add(2)
	resp := postAny(t, ts.URL+"/graphs", InsertRequest{Graph: namedGraph(t, "not-shed")}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert at query cap: status %d", resp.StatusCode)
	}
	s.inflightQ.Add(-2)
}

// TestIdempotentMutations covers the replay table end to end: a keyed
// insert retried after a success replays the recorded ack instead of
// 409ing; the same works for deletes (key in the header) retried after
// the graph is gone; and a key the server has no evidence for gets no
// benefit of the doubt — a keyed insert of an existing name is a real
// 409 and a keyed delete of a never-existing graph a real 404.
func TestIdempotentMutations(t *testing.T) {
	_, _, ts := newResilientServer(t, t.TempDir())

	ireq := InsertRequest{Graph: namedGraph(t, "idem-a"), IdempotencyKey: "k1"}
	var first InsertResponse
	if resp := postAny(t, ts.URL+"/graphs", ireq, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed insert: status %d", resp.StatusCode)
	}
	if first.Replayed {
		t.Fatal("first keyed insert marked replayed")
	}
	var again InsertResponse
	if resp := postAny(t, ts.URL+"/graphs", ireq, &again); resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed insert retry: status %d", resp.StatusCode)
	}
	if !again.Replayed || len(again.Inserted) != 1 || again.Inserted[0] != "idem-a" {
		t.Fatalf("keyed insert retry: %+v", again)
	}
	// Unkeyed duplicate still conflicts.
	if resp := postAny(t, ts.URL+"/graphs", InsertRequest{Graph: namedGraph(t, "idem-a")}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("unkeyed duplicate: status %d, want 409", resp.StatusCode)
	}

	// Keyed delete, retried after the graph is gone.
	hdr := map[string]string{IdempotencyHeader: "k2"}
	var del DeleteResponse
	if resp := doDelete(t, ts.URL+"/graphs/idem-a", hdr, &del); resp.StatusCode != http.StatusOK || del.Replayed {
		t.Fatalf("keyed delete: status %d replayed %v", resp.StatusCode, del.Replayed)
	}
	var del2 DeleteResponse
	if resp := doDelete(t, ts.URL+"/graphs/idem-a", hdr, &del2); resp.StatusCode != http.StatusOK || !del2.Replayed {
		t.Fatalf("keyed delete retry: status %d replayed %v", resp.StatusCode, del2.Replayed)
	}
	// Unkeyed delete of the absent graph is a plain 404.
	if resp := doDelete(t, ts.URL+"/graphs/idem-a", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unkeyed absent delete: status %d, want 404", resp.StatusCode)
	}
	// A keyed delete of a graph that never existed is a real 404: the
	// server has no evidence k3 ever deleted anything, so it must not
	// invent a success.
	if resp := doDelete(t, ts.URL+"/graphs/never-was", map[string]string{IdempotencyHeader: "k3"}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("keyed absent delete: status %d, want 404", resp.StatusCode)
	}

	// A fresh key inserting a name someone else created is a genuine
	// conflict, not a lost ack — the key has no evidence behind it, and
	// answering 200 would silently drop the caller's (different) graph.
	ireq2 := InsertRequest{Graph: namedGraph(t, "idem-b")}
	if resp := postAny(t, ts.URL+"/graphs", ireq2, nil); resp.StatusCode != http.StatusOK {
		t.Fatal("setup insert failed")
	}
	ireq2.IdempotencyKey = "fresh-key-other-writer"
	if resp := postAny(t, ts.URL+"/graphs", ireq2, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("fresh-key insert of existing name: status %d, want 409", resp.StatusCode)
	}
}

// TestIdempotencySurvivesRestart pins the durable half of the replay
// story: idempotency keys ride in the WAL records, so after a restart a
// keyed retry is answered from recovered evidence — while keys the WAL
// has never seen still get real 409/404 answers.
func TestIdempotencySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d, s, ts := newResilientServer(t, dir)

	ireq := InsertRequest{Graph: namedGraph(t, "dur-a"), IdempotencyKey: "ins-key"}
	if resp := postAny(t, ts.URL+"/graphs", ireq, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed insert: status %d", resp.StatusCode)
	}
	if resp := postAny(t, ts.URL+"/graphs", InsertRequest{Graph: namedGraph(t, "dur-b"), IdempotencyKey: "del-target"}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("setup insert: status %d", resp.StatusCode)
	}
	if resp := doDelete(t, ts.URL+"/graphs/dur-b", map[string]string{IdempotencyHeader: "del-key"}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed delete: status %d", resp.StatusCode)
	}

	// Restart the way skygraphd does: final snapshot (which reclaims the
	// WAL segments carrying the keyed records — the evidence must ride
	// in the manifest to survive this), then close, then reopen.
	ts.Close()
	s.Close()
	if err := d.Snapshot(); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close durable: %v", err)
	}
	_, _, ts2 := newResilientServer(t, dir)

	// The insert retry is recognized from the recovered WAL key: the
	// name is skipped, not 409ed, and the response is a replay.
	var rec InsertResponse
	if resp := postAny(t, ts2.URL+"/graphs", ireq, &rec); resp.StatusCode != http.StatusOK || !rec.Replayed {
		t.Fatalf("keyed insert after restart: status %d replayed %v", resp.StatusCode, rec.Replayed)
	}
	if len(rec.Inserted) != 1 || rec.Inserted[0] != "dur-a" || len(rec.Skipped) != 1 || rec.Skipped[0] != "dur-a" {
		t.Fatalf("keyed insert after restart: %+v", rec)
	}
	// The delete retry replays from the recovered key even though the
	// graph is long gone.
	var del DeleteResponse
	if resp := doDelete(t, ts2.URL+"/graphs/dur-b", map[string]string{IdempotencyHeader: "del-key"}, &del); resp.StatusCode != http.StatusOK || !del.Replayed || del.Deleted != "dur-b" {
		t.Fatalf("keyed delete after restart: status %d %+v", resp.StatusCode, del)
	}
	// A key the WAL never saw is still held to the truth after restart.
	fresh := InsertRequest{Graph: namedGraph(t, "dur-a"), IdempotencyKey: "never-logged"}
	if resp := postAny(t, ts2.URL+"/graphs", fresh, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("fresh-key insert after restart: status %d, want 409", resp.StatusCode)
	}
	if resp := doDelete(t, ts2.URL+"/graphs/dur-b", map[string]string{IdempotencyHeader: "never-logged"}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fresh-key delete after restart: status %d, want 404", resp.StatusCode)
	}
}

// TestPartialInsertRetryCompletes pins the multi-graph repair path: when
// a batch insert dies partway (fault on the second WAL append), a keyed
// retry skips the names already applied under the key and inserts only
// the remainder — instead of 409ing on its own earlier work and leaving
// the request permanently uncompletable.
func TestPartialInsertRetryCompletes(t *testing.T) {
	defer fault.Reset()
	_, _, ts := newResilientServer(t, t.TempDir())

	if resp := postAny(t, ts.URL+"/admin/fault", FaultAdminRequest{
		Spec: "wal/append=error:err=ENOSPC,after=1,limit=1",
	}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("arm failpoint: status %d", resp.StatusCode)
	}

	ireq := InsertRequest{
		Graphs:         []*graph.Graph{namedGraph(t, "part-a"), namedGraph(t, "part-b")},
		IdempotencyKey: "partial-key",
	}
	var errBody map[string]any
	resp := postAny(t, ts.URL+"/graphs", ireq, &errBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("partial insert: status %d, want 503", resp.StatusCode)
	}
	applied, _ := errBody["inserted"].([]any)
	if len(applied) != 1 || applied[0] != "part-a" {
		t.Fatalf("partial insert applied %v, want [part-a]", applied)
	}

	// The retry completes: part-a is skipped on the key's evidence,
	// part-b is inserted, and the whole request is acked.
	var done InsertResponse
	if resp := postAny(t, ts.URL+"/graphs", ireq, &done); resp.StatusCode != http.StatusOK {
		t.Fatalf("retry: status %d", resp.StatusCode)
	}
	if done.Replayed {
		t.Fatalf("retry that inserted part-b marked replayed: %+v", done)
	}
	if len(done.Inserted) != 2 || len(done.Skipped) != 1 || done.Skipped[0] != "part-a" {
		t.Fatalf("retry: %+v", done)
	}
	if resp := postAny(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after repair: status %d", resp.StatusCode)
	}
	// A further retry is a pure replay of the completed request.
	var again InsertResponse
	if resp := postAny(t, ts.URL+"/graphs", ireq, &again); resp.StatusCode != http.StatusOK || !again.Replayed {
		t.Fatalf("third attempt: status %d replayed %v", resp.StatusCode, again.Replayed)
	}
}

// TestTimeoutHeader pins the deadline-propagation helper: the header
// fills timeout_ms only when the body carries none, and malformed or
// non-positive values are ignored.
func TestTimeoutHeader(t *testing.T) {
	mk := func(v string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/query/skyline", nil)
		if v != "" {
			r.Header.Set(TimeoutHeader, v)
		}
		return r
	}
	if got := headerTimeoutMS(mk("1500")); got != 1500 {
		t.Fatalf("headerTimeoutMS(1500) = %d", got)
	}
	for _, v := range []string{"", "abc", "-5", "0", "1.5"} {
		if got := headerTimeoutMS(mk(v)); got != 0 {
			t.Fatalf("headerTimeoutMS(%q) = %d, want 0", v, got)
		}
	}
	// Body timeout wins over the header.
	req := QueryRequest{TimeoutMS: 42}
	if hv := headerTimeoutMS(mk("1000")); req.TimeoutMS > 0 && hv != 1000 {
		t.Fatalf("header parse changed: %d", hv)
	}
	s := New(gdb.NewSharded(1), Config{MaxTimeout: time.Second})
	defer s.Close()
	if d := s.timeout(&QueryRequest{TimeoutMS: 5000}); d != time.Second {
		t.Fatalf("MaxTimeout clamp broken: %v", d)
	}
}

// TestFaultAdminEndpoint drives the registry over HTTP: arm a point,
// watch a mutation fail with it, read the snapshot back, disarm.
func TestFaultAdminEndpoint(t *testing.T) {
	defer fault.Reset()
	_, _, ts := newResilientServer(t, t.TempDir())

	var snap FaultAdminResponse
	resp := postAny(t, ts.URL+"/admin/fault", FaultAdminRequest{Spec: "wal/append=error:err=ENOSPC,limit=1"}, &snap)
	if resp.StatusCode != http.StatusOK || snap.Armed != 1 {
		t.Fatalf("arm: status %d snapshot %+v", resp.StatusCode, snap)
	}
	if resp := postAny(t, ts.URL+"/graphs", InsertRequest{Graph: namedGraph(t, "victim")}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert under admin-armed fault: status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/admin/fault", &snap)
	if len(snap.Points) != 1 || snap.Points[0].Fires != 1 {
		t.Fatalf("post-fire snapshot: %+v", snap)
	}
	if resp := postAny(t, ts.URL+"/admin/fault", FaultAdminRequest{Spec: "off"}, &snap); resp.StatusCode != http.StatusOK || snap.Armed != 0 {
		t.Fatalf("disarm: status %d snapshot %+v", resp.StatusCode, snap)
	}
	var bad ErrorResponse
	if resp := postAny(t, ts.URL+"/admin/fault", FaultAdminRequest{Spec: "wal/append=warp"}, &bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d", resp.StatusCode)
	}

	// Servers without FaultAdmin must not mount the endpoint at all.
	plain := New(gdb.NewSharded(1), Config{})
	defer plain.Close()
	pts := httptest.NewServer(plain.Handler())
	defer pts.Close()
	if resp := getJSON(t, pts.URL+"/admin/fault", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/admin/fault without FaultAdmin: status %d, want 404", resp.StatusCode)
	}
}

// TestErrorClassDefaults spot-checks classForCode's mapping on live
// endpoints that predate the class field.
func TestErrorClassDefaults(t *testing.T) {
	_, _, ts := newResilientServer(t, t.TempDir())
	var body ErrorResponse
	if resp := postAny(t, ts.URL+"/query/topk", QueryRequest{}, &body); resp.StatusCode != http.StatusBadRequest || body.Class != ClassBadRequest {
		t.Fatalf("bad request: status %d class %q", resp.StatusCode, body.Class)
	}
	nresp, err := http.Get(ts.URL + "/graphs/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer nresp.Body.Close()
	var nbody ErrorResponse
	if err := json.NewDecoder(nresp.Body).Decode(&nbody); err != nil {
		t.Fatal(err)
	}
	if nresp.StatusCode != http.StatusNotFound || nbody.Class != ClassNotFound {
		t.Fatalf("not found: status %d class %q", nresp.StatusCode, nbody.Class)
	}
}

// TestHealthCloseConcurrent pins Close's documented idempotence under
// actual concurrency: racing Closes must not double-close the stop
// channel and panic.
func TestHealthCloseConcurrent(t *testing.T) {
	d, err := gdb.OpenDurable(gdb.DurableOptions{Dir: t.TempDir(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	h := newHealth(d, 2, 10*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Close()
		}()
	}
	wg.Wait()
	h.Close() // and once more after everyone is done
}
