package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"skygraph/internal/dataset"
	"skygraph/internal/graph"
)

// TestConcurrentBatchAndInsertNoLeaks is the goroutine-leak regression
// test (run under -race in CI): concurrent batch queries and inserts
// against a sharded server, then a clean shutdown, after which the
// goroutine count must return to its pre-server baseline. Worker pools
// that outlive their query, flight leaders that never publish, or
// handlers blocked on abandoned channels would all keep the count high.
func TestConcurrentBatchAndInsertNoLeaks(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	s, ts := newShardedTestServer(t, 3, Config{CacheSize: 32})
	client := ts.Client()

	const workers = 4
	const iters = 4
	radius := 3.0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				// Insert a fresh graph: bumps one shard's generation and
				// prunes its tables while queries are in flight.
				g := graph.Molecule(5, rng)
				g.SetName(fmt.Sprintf("leak-%d-%d", w, i))
				doPost(t, client, ts.URL+"/graphs", InsertRequest{Graph: g})
				doPost(t, client, ts.URL+"/query/batch", BatchRequest{Queries: []BatchQuery{
					{Kind: "skyline", QueryRequest: QueryRequest{Graph: dataset.PaperQuery()}},
					{Kind: "topk", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), K: 2}},
					{Kind: "range", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), Radius: &radius}},
				}})
			}
		}(w)
	}
	wg.Wait()

	if s.DB().Len() != 7+workers*iters {
		t.Fatalf("db holds %d graphs; want %d", s.DB().Len(), 7+workers*iters)
	}
	ts.Close()
	client.CloseIdleConnections()

	// Connections and handler goroutines drain asynchronously; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline after shutdown: %d -> %d", baseline, now)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// doPost is postJSON against a specific client, tolerating only 2xx.
func doPost(t *testing.T, client *http.Client, url string, body any) {
	t.Helper()
	resp := postJSONClient(t, client, url, body, nil)
	if resp.StatusCode/100 != 2 {
		t.Errorf("POST %s = %d", url, resp.StatusCode)
	}
}

// TestStatsHammerDuringQueries hammers GET /stats (which reads the
// cache and request counters) while queries, batches and inserts run —
// the regression test for torn or racy stats reads; -race in CI is the
// real assertion, status codes are the smoke check.
func TestStatsHammerDuringQueries(t *testing.T) {
	_, ts := newShardedTestServer(t, 2, Config{CacheSize: 8})
	client := ts.Client()
	stop := make(chan struct{})
	var hammer sync.WaitGroup
	hammer.Add(1)
	go func() {
		defer hammer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var st StatsResponse
			resp := getJSONClient(t, client, ts.URL+"/stats", &st)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("stats status = %d", resp.StatusCode)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 6; i++ {
				g := graph.Molecule(5, rng)
				g.SetName(fmt.Sprintf("hammer-%d-%d", w, i))
				doPost(t, client, ts.URL+"/graphs", InsertRequest{Graph: g})
				doPost(t, client, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery()})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	hammer.Wait()

	st := statsOf(t, ts.URL)
	if st.Requests.Queries == 0 || st.Cache.Misses == 0 {
		t.Fatalf("hammer saw no work: %+v", st.Requests)
	}
}
