package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
	"skygraph/internal/skyline"
	"skygraph/internal/testutil"
	"skygraph/internal/topk"
	"skygraph/internal/vector"
)

func deleteGraph(t *testing.T, url string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE %s: status %d", url, resp.StatusCode)
	}
}

func wirePoints(ps []PointJSON) []skyline.Point {
	out := make([]skyline.Point, len(ps))
	for i, p := range ps {
		out[i] = skyline.Point{ID: p.ID, Vec: p.Vec}
	}
	return out
}

func wireItems(is []ItemJSON) []topk.Item {
	out := make([]topk.Item, len(is))
	for i, it := range is {
		out[i] = topk.Item{ID: it.ID, Score: it.Score}
	}
	return out
}

// TestDeltaMatchesColdRecompute is the interleaved-mutation equivalence
// harness: randomized schedules of inserts, deletes and queries, across
// shard counts and acceleration tiers, must keep every delta-maintained
// answer byte-identical to a cold recompute over the live graph set —
// and the maintenance must actually fire (delta_applied > 0), so the
// equivalence is proved against upgraded entries, not against a cache
// that silently fell back to invalidation.
func TestDeltaMatchesColdRecompute(t *testing.T) {
	base := testutil.SeededGraphs(401, 20)
	pool := testutil.SeededGraphs(402, 10)
	for i, g := range pool {
		g.SetName(fmt.Sprintf("new%02d", i))
	}
	queries := testutil.SeededQueries(403, base, 2)
	radius := 4.0
	noPrune := false

	for _, shards := range []int{1, 2, 3, 7} {
		for _, mode := range []string{"plain", "pivot-memo", "vector"} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, mode), func(t *testing.T) {
				db := gdb.NewSharded(shards)
				if err := db.InsertAll(base); err != nil {
					t.Fatal(err)
				}
				switch mode {
				case "pivot-memo":
					db.EnablePivots(pivot.Config{Pivots: 3})
					db.EnableScoreMemo(4096)
					db.WaitPivots()
				case "vector":
					db.EnablePivots(pivot.Config{Pivots: 3})
					db.EnableVector(vector.Config{Cells: 4, Dims: 16})
					db.WaitPivots()
				}
				s := New(db, Config{CacheSize: 256})
				ts := httptest.NewServer(s.Handler())
				defer ts.Close()

				rng := rand.New(rand.NewSource(int64(shards)*31 + int64(len(mode))))
				live := append([]*graph.Graph(nil), base...)
				next := 0
				for round := 0; round < 6; round++ {
					// Warm cached state so the mutation has something to
					// maintain: complete tables (unpruned skyline) plus
					// ranked answers.
					for _, q := range queries {
						postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q, Prune: &noPrune}, &SkylineResponse{})
						postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3}, &TopKResponse{})
						postJSON(t, ts.URL+"/query/range", QueryRequest{Graph: q, Radius: &radius}, &RangeResponse{})
					}
					// One interleaved mutation.
					if next < len(pool) && rng.Intn(2) == 0 {
						g := pool[next]
						next++
						postJSON(t, ts.URL+"/graphs", InsertRequest{Graph: g}, &InsertResponse{})
						live = append(live, g)
					} else {
						victim := rng.Intn(len(live))
						deleteGraph(t, ts.URL+"/graphs/"+live[victim].Name())
						live = append(live[:victim:victim], live[victim+1:]...)
					}
					// Every answer after the mutation must equal the cold
					// library recompute over the live set.
					ref := testutil.NewDB(t, live)
					for qi, q := range queries {
						label := fmt.Sprintf("shards=%d mode=%s round=%d q=%d", shards, mode, round, qi)
						var sky SkylineResponse
						postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q, Prune: &noPrune}, &sky)
						wantSky, err := ref.SkylineQuery(q, gdb.QueryOptions{})
						if err != nil {
							t.Fatal(err)
						}
						testutil.RequireSameSkyline(t, label+"/skyline", wantSky.Skyline, wirePoints(sky.Skyline))

						var tk TopKResponse
						postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3}, &tk)
						wantTK, err := ref.TopKQuery(q, measure.DistEd{}, 3, gdb.QueryOptions{})
						if err != nil {
							t.Fatal(err)
						}
						testutil.RequireSameItems(t, label+"/topk", wantTK.Items, wireItems(tk.Items))

						var rr RangeResponse
						postJSON(t, ts.URL+"/query/range", QueryRequest{Graph: q, Radius: &radius}, &rr)
						wantR, err := ref.RangeQuery(q, measure.DistEd{}, radius, gdb.QueryOptions{})
						if err != nil {
							t.Fatal(err)
						}
						testutil.RequireSameItems(t, label+"/range", wantR.Items, wireItems(rr.Items))
					}
				}
				if st := s.cache.Stats(); st.DeltaApplied == 0 {
					t.Fatalf("no deltas applied across the schedule: %+v", st)
				}
			})
		}
	}
}

// TestDeltaDisabledStillCorrect: the same interleaving with delta
// maintenance off must also match cold recomputes — DisableDelta is a
// performance A/B switch, never a correctness one — and must count
// every mutation-driven drop as a fallback.
func TestDeltaDisabledStillCorrect(t *testing.T) {
	base := testutil.SeededGraphs(411, 16)
	q := testutil.SeededQueries(412, base, 1)[0]
	noPrune := false
	db := gdb.NewSharded(2)
	if err := db.InsertAll(base); err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{CacheSize: 64, DisableDelta: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	live := append([]*graph.Graph(nil), base...)
	extra := testutil.SeededGraphs(413, 1)[0]
	extra.SetName("late")
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q, Prune: &noPrune}, &SkylineResponse{})
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3}, &TopKResponse{})
	postJSON(t, ts.URL+"/graphs", InsertRequest{Graph: extra}, &InsertResponse{})
	live = append(live, extra)

	ref := testutil.NewDB(t, live)
	var sky SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: q, Prune: &noPrune}, &sky)
	wantSky, err := ref.SkylineQuery(q, gdb.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireSameSkyline(t, "nodelta/skyline", wantSky.Skyline, wirePoints(sky.Skyline))
	var tk TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: q, K: 3}, &tk)
	wantTK, err := ref.TopKQuery(q, measure.DistEd{}, 3, gdb.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireSameItems(t, "nodelta/topk", wantTK.Items, wireItems(tk.Items))

	st := s.cache.Stats()
	if st.DeltaApplied != 0 {
		t.Fatalf("DisableDelta applied %d deltas", st.DeltaApplied)
	}
	if st.DeltaFallbacks == 0 {
		t.Fatalf("mutation with DisableDelta recorded no fallbacks: %+v", st)
	}
}
