package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"skygraph/internal/fault"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/lru"
	"skygraph/internal/measure"
	"skygraph/internal/obs"
	"skygraph/internal/skyline"
	"skygraph/internal/topk"
	"skygraph/internal/wal"
)

// Config tunes a Server.
type Config struct {
	// CacheSize is the vector-table LRU capacity (entries; < 1 disables).
	// Each (shard, query) pair occupies one entry.
	CacheSize int
	// Workers is the pair-evaluation parallelism per shard per query
	// (0 = GOMAXPROCS spread evenly across the shards).
	Workers int
	// DefaultTimeout bounds a query when the request does not ask for a
	// timeout (0 = no default).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts (0 = no clamp).
	MaxTimeout time.Duration
	// MaxInflight caps concurrently evaluating shard tables; excess
	// builds are rejected with 503 rather than queued (0 = unlimited).
	// With N shards a single cold query can occupy up to N slots, so
	// set this to at least the shard count.
	MaxInflight int
	// DefaultEval bounds the exact engines when the request does not
	// carry its own options.
	DefaultEval measure.Options
	// MaxBatch caps the number of queries in one /query/batch request
	// (0 = DefaultMaxBatch).
	MaxBatch int
	// BatchWorkers caps how many batch queries execute concurrently
	// (0 = GOMAXPROCS).
	BatchWorkers int
	// SlowQueryThreshold emits a structured log line for every query
	// whose server-side wall time reaches it (0 = disabled). Batch items
	// are judged individually.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives one JSON-encoded SlowQueryRecord per line
	// (nil = os.Stderr). Writes are serialized by the server.
	SlowQueryLog io.Writer
	// Durable is the persistence engine backing db, when the daemon runs
	// with -data-dir (nil = in-memory only). The server does not drive
	// it — mutations are write-ahead logged by the database itself, and
	// snapshots/shutdown are the daemon's job — it only surfaces the
	// layer's counters in /stats and /metrics and fails mutations whose
	// WAL append fails.
	Durable *gdb.Durable
	// DegradeAfter is K: after K consecutive transient persist failures
	// the daemon enters degraded-readonly — queries keep serving from
	// memory, mutations answer 503 + Retry-After while a background
	// probe exercises the WAL until it heals (0 = 3). Only meaningful
	// with Durable.
	DegradeAfter int
	// ProbeEvery is the write-probe interval while degraded (0 = 500ms).
	ProbeEvery time.Duration
	// RetryAfter is the delay hinted to clients on 429/503 answers via
	// the Retry-After header and retry_after_ms body field (0 = 1s).
	RetryAfter time.Duration
	// MaxInflightQueries caps concurrently executing query, batch and
	// warm requests; excess requests are shed with 429 + Retry-After
	// before any decoding or evaluation (0 = unlimited). This is
	// admission control at the front door — MaxInflight above still
	// bounds the expensive table builds behind it.
	MaxInflightQueries int
	// FaultAdmin mounts GET/POST /admin/fault for configuring the
	// failpoint registry over HTTP. Test and chaos tooling only — never
	// enable it on a daemon you care about.
	FaultAdmin bool
	// IdempotencyCapacity is the number of recently acknowledged
	// mutation keys remembered for replay (0 = 4096; < 0 disables).
	IdempotencyCapacity int
	// DisableDelta turns off delta maintenance of cached tables and
	// ranked answers: every mutation falls back to generation-keyed
	// invalidation (the pre-delta behavior). An A/B lever for
	// benchmarks and triage; answers are byte-identical either way.
	DisableDelta bool
}

// Server serves similarity queries over a sharded graph database with a
// per-shard vector-table cache in front of pair evaluation. Create with
// New, mount via Handler.
type Server struct {
	db     *gdb.Sharded
	cache  *Cache
	cfg    Config
	start  time.Time
	sem    chan struct{}
	met    *metrics
	health *health

	slowMu sync.Mutex
	slowW  io.Writer

	flightMu sync.Mutex
	flight   map[string]*flightCall

	idemMu sync.Mutex
	idem   *lru.Cache[idemRecord]
	// idemProg tracks, per insert key, the names proven applied under
	// that key — noted live as each graph commits and seeded from the
	// WAL's recovered keys at startup. It is the evidence that lets a
	// keyed retry skip its own earlier work (including completing a
	// partially applied multi-graph insert) without ever masking a
	// genuine name conflict. Values are copy-on-write: readers get a
	// snapshot map that is never mutated.
	idemProg *lru.Cache[map[string]bool]

	inflightQ       atomic.Int64
	queries         atomic.Uint64
	batches         atomic.Uint64
	inserts         atomic.Uint64
	deletes         atomic.Uint64
	errors          atomic.Uint64
	pairEvals       atomic.Uint64
	pairsPruned     atomic.Uint64
	pivotPruned     atomic.Uint64
	pivotDists      atomic.Uint64
	memoHits        atomic.Uint64
	memoMisses      atomic.Uint64
	vectorCells     atomic.Uint64
	vectorSkipped   atomic.Uint64
	vectorFallbacks atomic.Uint64
	timeouts        atomic.Uint64
	rejected        atomic.Uint64
	shed            atomic.Uint64
	degradedRejects atomic.Uint64
}

// New returns a Server over db. MaxInflight below the shard count is
// raised to it: one cold query needs a slot per shard, so a smaller
// limit would 503 every cold query on an idle server.
func New(db *gdb.Sharded, cfg Config) *Server {
	if cfg.MaxInflight > 0 && cfg.MaxInflight < db.NumShards() {
		cfg.MaxInflight = db.NumShards()
	}
	s := &Server{
		db:     db,
		cache:  NewCache(cfg.CacheSize),
		cfg:    cfg,
		start:  time.Now(),
		slowW:  cfg.SlowQueryLog,
		flight: make(map[string]*flightCall),
	}
	if s.slowW == nil {
		s.slowW = os.Stderr
	}
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	idemCap := cfg.IdempotencyCapacity
	if idemCap == 0 {
		idemCap = 4096
	}
	s.idem = lru.New[idemRecord](idemCap)
	s.idemProg = lru.New[map[string]bool](idemCap)
	s.seedIdempotency()
	s.health = newHealth(cfg.Durable, cfg.DegradeAfter, cfg.ProbeEvery)
	s.met = newMetrics(s)
	return s
}

// seedIdempotency loads the WAL's recovered idempotency keys into the
// replay bookkeeping, so keyed retries whose acks died with the
// previous process are answered from durable evidence: recovered
// delete keys become replayable acks outright (a delete is complete by
// construction), recovered insert keys become per-name progress (a
// multi-graph insert may have been cut short mid-batch, so the retry
// must be able to complete the remainder, not just replay). Keys the
// WAL does not know — reclaimed by a snapshot, or never accepted —
// get no special treatment, which is the point.
func (s *Server) seedIdempotency() {
	if s.cfg.Durable == nil {
		return
	}
	rk := s.cfg.Durable.RecoveredKeys()
	gen := s.db.Generation()
	for key, name := range rk.Deletes {
		s.idemRemember("delete", key, idemRecord{del: &DeleteResponse{Deleted: name, Generation: gen}})
	}
	for key, names := range rk.Inserts {
		done := make(map[string]bool, len(names))
		for _, n := range names {
			done[n] = true
		}
		s.idemProg.Put(key, done)
	}
}

// Close stops the server's background work (the health probe loop).
// The Server must not serve requests after Close; safe to call on a
// server without persistence, and idempotent.
func (s *Server) Close() { s.health.Close() }

// HealthState reports the write-path health (always serving for an
// in-memory daemon).
func (s *Server) HealthState() HealthState { return s.health.State() }

// Metrics exposes the server's metric registry (mounted at GET /metrics
// by Handler; for tests and for embedding extra collectors).
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// Ready reports whether the server is ready to serve at full fidelity:
// the database was loaded before construction, so readiness is about
// the background pivot-index build — every shard with a pivot index
// must have drained its column backlog. Servers without -pivots are
// ready immediately.
func (s *Server) Ready() bool {
	for i := 0; i < s.db.NumShards(); i++ {
		if ix := s.db.Shard(i).PivotIndex(); ix != nil {
			if _, _, pending := ix.Ready(); pending > 0 {
				return false
			}
		}
	}
	return true
}

// Cache exposes the server's vector-table cache (read-mostly; for tests
// and stats tooling).
func (s *Server) Cache() *Cache { return s.cache }

// DB exposes the server's sharded database.
func (s *Server) DB() *gdb.Sharded { return s.db }

// Handler returns the HTTP routing for the API. Serving routes are
// wrapped with per-endpoint request/latency/inflight metrics; the
// health probes and the metrics scrape itself stay uninstrumented (they
// are polled constantly and must never count as, or contend with,
// traffic).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "POST /query/skyline", s.handleSkyline)
	s.route(mux, "POST /query/topk", s.handleTopK)
	s.route(mux, "POST /query/range", s.handleRange)
	s.route(mux, "POST /query/batch", s.handleBatch)
	s.route(mux, "POST /cache/warm", s.handleWarm)
	s.route(mux, "GET /graphs", s.handleList)
	s.route(mux, "POST /graphs", s.handleInsert)
	s.route(mux, "GET /graphs/{name}", s.handleGet)
	s.route(mux, "DELETE /graphs/{name}", s.handleDelete)
	s.route(mux, "GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.met.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	if s.cfg.FaultAdmin {
		mux.HandleFunc("GET /admin/fault", s.handleFaultGet)
		mux.HandleFunc("POST /admin/fault", s.handleFaultSet)
	}
	return mux
}

// handleReady answers GET /readyz: 200 once every shard's pivot-index
// backlog has drained, 503 while columns are still being computed (the
// bounds still work, but queries prune less until the index is warm)
// and 503 while the write path is degraded-readonly — load balancers
// that route mutations should drain a degraded daemon, which still
// answers queries for clients that talk to it directly. The health
// state rides along in every answer.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	state := s.health.State()
	if state == HealthDegraded {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "degraded",
			"health": state.String(),
		})
		return
	}
	if s.Ready() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "health": state.String()})
		return
	}
	pending := 0
	for i := 0; i < s.db.NumShards(); i++ {
		if ix := s.db.Shard(i).PivotIndex(); ix != nil {
			_, _, p := ix.Ready()
			pending += p
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status":                "not_ready",
		"health":                state.String(),
		"pivot_columns_pending": pending,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// classForCode maps a status code to the default error class; paths
// that know better (degraded, transient, corrupt) pass their class to
// writeErrorClass directly.
func classForCode(code int) string {
	switch code {
	case http.StatusBadRequest:
		return ClassBadRequest
	case http.StatusNotFound:
		return ClassNotFound
	case http.StatusConflict:
		return ClassConflict
	case http.StatusTooManyRequests:
		return ClassOverloaded
	case http.StatusServiceUnavailable:
		return ClassUnavailable
	case http.StatusGatewayTimeout:
		return ClassTimeout
	default:
		return ClassInternal
	}
}

// retryAfter is the delay hinted to clients on shed/degraded answers.
func (s *Server) retryAfter() time.Duration {
	if s.cfg.RetryAfter > 0 {
		return s.cfg.RetryAfter
	}
	return time.Second
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeErrorClass(w, code, classForCode(code), 0, format, args...)
}

// writeErrorClass writes an ErrorResponse with an explicit class and,
// when retryAfter > 0, the Retry-After header (whole seconds, rounded
// up per RFC 9110) plus its exact form in the body.
func (s *Server) writeErrorClass(w http.ResponseWriter, code int, class string, retryAfter time.Duration, format string, args ...any) {
	s.errors.Add(1)
	resp := ErrorResponse{Error: fmt.Sprintf(format, args...), Class: class}
	if retryAfter > 0 {
		secs := (retryAfter + time.Second - 1) / time.Second
		w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
		resp.RetryAfterMS = retryAfter.Milliseconds()
	}
	writeJSON(w, code, resp)
}

const maxBodyBytes = 64 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// resolveQuery validates a query request and resolves its wire fields
// into engine values.
type resolved struct {
	q     *graph.Graph
	qh    string // canonical query hash, computed once per request
	basis []measure.Measure
	m     measure.Measure // ranking measure (topk/range)
	alg   skyline.Algorithm
	opts  gdb.QueryOptions
	// prune selects the filter-and-refine evaluation path: skyline-kind
	// requests that do not ask for the full table, on a boundable basis
	// (request field "prune" overrides). Pruned tables are cached under
	// their own key variant because they cannot serve top-k/range/full-
	// table requests.
	prune bool
	// novector is the request's explicit opt-out of the vector tier
	// ("vector": false). Pruned tables built without the tier live in
	// their own key variant, so an A/B pair of requests never serves one
	// path's table for the other's.
	novector bool
}

// tableGroup keys the set of requests answerable from the same shard
// tables: same query graph (canonically), basis and engine budgets.
func (res resolved) tableGroup() string {
	return CacheKey(0, 0, res.qh, res.basis, res.opts.Eval)
}

// needMeasure selects whether the ranking measure must resolve (topk and
// range requests).
func (s *Server) resolveQuery(req *QueryRequest, needMeasure bool) (resolved, error) {
	var res resolved
	if req.Graph == nil {
		return res, errors.New("missing query graph")
	}
	if err := req.Graph.Validate(); err != nil {
		return res, fmt.Errorf("invalid query graph: %w", err)
	}
	res.q = req.Graph
	res.qh = graph.QueryHash(res.q)

	basis, err := measure.BasisByNames(req.Basis)
	if err != nil {
		return res, err
	}
	if needMeasure {
		name := req.Measure
		if name == "" {
			name = "DistEd"
		}
		m, err := measure.ByName(name)
		if err != nil {
			return res, err
		}
		res.m = m
		// Share tables with skyline queries on the same basis: only
		// extend the basis when the ranking measure is missing from it.
		found := false
		for _, b := range basis {
			if b.Name() == m.Name() {
				found = true
				break
			}
		}
		if !found {
			basis = append(basis, m)
		}
	}
	res.basis = basis

	switch req.Algorithm {
	case "", "sfs":
		res.alg = skyline.SFS
	case "bnl":
		res.alg = skyline.BNL
	case "dac":
		res.alg = skyline.DivideAndConquer
	default:
		return res, fmt.Errorf("unknown skyline algorithm %q (want sfs, bnl or dac)", req.Algorithm)
	}

	// Workers 0 is resolved per query in tables(), where the number of
	// shards actually needing evaluation is known. The canonical query
	// hash rides along so the score memo never re-canonicalizes.
	res.novector = req.Vector != nil && !*req.Vector
	res.opts = gdb.QueryOptions{Basis: basis, Eval: s.mergeEval(req.Eval), Workers: s.cfg.Workers, QueryHash: res.qh, NoVector: res.novector}
	// Every kind prunes by default when the bounds allow it: skyline
	// requests unless the full table was asked for (boundable basis),
	// ranking kinds whenever the ranking measure is a built-in. "prune":
	// false opts out either way.
	if needMeasure {
		res.prune = measure.Rankable(res.m) && (req.Prune == nil || *req.Prune)
	} else {
		res.prune = !req.All && measure.Boundable(basis) &&
			(req.Prune == nil || *req.Prune)
	}
	return res, nil
}

// mergeEval overlays request engine budgets on the server defaults,
// per field: zero keeps the server default, a negative value explicitly
// requests unbounded exact computation.
func (s *Server) mergeEval(req *measure.Options) measure.Options {
	eval := s.cfg.DefaultEval
	if req == nil {
		return eval
	}
	merge := func(dst *int64, v int64) {
		switch {
		case v < 0:
			*dst = 0
		case v > 0:
			*dst = v
		}
	}
	merge(&eval.GEDMaxNodes, req.GEDMaxNodes)
	merge(&eval.MCSMaxNodes, req.MCSMaxNodes)
	return eval
}

// timeout picks the effective deadline for a request: the request's own
// timeout (clamped to MaxTimeout) when given, else the server default.
// Zero means no deadline.
func (s *Server) timeout(req *QueryRequest) time.Duration {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > 0 && s.cfg.MaxTimeout > 0 && d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// headerTimeoutMS reads the client's propagated deadline from the
// X-Skygraph-Timeout-Ms header (0 when absent or malformed). It fills
// the body's timeout_ms only when the body carries none — an explicit
// body timeout is the more specific intent.
func headerTimeoutMS(r *http.Request) int {
	v := r.Header.Get(TimeoutHeader)
	if v == "" {
		return 0
	}
	ms, err := strconv.Atoi(v)
	if err != nil || ms <= 0 {
		return 0
	}
	return ms
}

// admitQuery is the front-door load shed: when MaxInflightQueries is
// set and that many query/batch/warm requests are already executing,
// the request is refused with 429 + Retry-After before any decoding.
// Returns false when shed; on true the caller must releaseQuery.
func (s *Server) admitQuery(w http.ResponseWriter) bool {
	if s.cfg.MaxInflightQueries <= 0 {
		return true
	}
	if s.inflightQ.Add(1) > int64(s.cfg.MaxInflightQueries) {
		s.inflightQ.Add(-1)
		s.shed.Add(1)
		s.writeErrorClass(w, http.StatusTooManyRequests, ClassOverloaded, s.retryAfter(),
			"server is shedding load: %d queries already in flight", s.cfg.MaxInflightQueries)
		return false
	}
	return true
}

func (s *Server) releaseQuery() {
	if s.cfg.MaxInflightQueries > 0 {
		s.inflightQ.Add(-1)
	}
}

// flightCall is one in-progress computation — a shard table, or a
// merged ranked answer — that concurrent identical requests wait on
// instead of recomputing.
type flightCall struct {
	done chan struct{} // closed once the result fields are set
	t    *gdb.VectorTable
	ra   *rankedAnswer
	err  error
}

// tableSet is the per-shard answer material for one query, plus what it
// cost: hits counts shards served from cache (or a coalesced leader),
// the work sums count pair evaluations (and pivot/memo activity) this
// request caused — all 0 for shards served from cache.
type tableSet struct {
	tables []*gdb.VectorTable
	hits   int
	work   tableWork
}

// tableWork sums the fresh-evaluation counters of one or more shard
// table builds.
type tableWork struct {
	evaluated       int
	pruned          int
	pivotPruned     int
	pivotDists      int
	memoHits        int
	memoMisses      int
	vectorCells     int
	vectorSkipped   int
	vectorFallbacks int
}

// freshWork extracts a table's counters, zeroed for cache hits (the
// work was counted by the request that built the table).
func freshWork(t *gdb.VectorTable, hit bool) tableWork {
	if hit {
		return tableWork{}
	}
	return tableWork{
		evaluated:       len(t.Points),
		pruned:          t.Pruned,
		pivotPruned:     t.PivotPruned,
		pivotDists:      t.PivotDists,
		memoHits:        t.MemoHits,
		memoMisses:      t.MemoMisses,
		vectorCells:     t.VectorCells,
		vectorSkipped:   t.VectorSkipped,
		vectorFallbacks: t.VectorFallbacks,
	}
}

func (w *tableWork) add(o tableWork) {
	w.evaluated += o.evaluated
	w.pruned += o.pruned
	w.pivotPruned += o.pivotPruned
	w.pivotDists += o.pivotDists
	w.memoHits += o.memoHits
	w.memoMisses += o.memoMisses
	w.vectorCells += o.vectorCells
	w.vectorSkipped += o.vectorSkipped
	w.vectorFallbacks += o.vectorFallbacks
}

func (ts tableSet) inexact() int {
	n := 0
	for _, t := range ts.tables {
		n += t.Inexact
	}
	return n
}

// tables returns the vector table of every shard for a resolved query,
// each from the cache when possible. Shard misses evaluate
// concurrently; concurrent identical cold lookups coalesce per (shard,
// key) on one flight leader. The first shard error aborts the query.
func (s *Server) tables(ctx context.Context, res resolved) (tableSet, error) {
	n := s.db.NumShards()
	qh := res.qh
	out := tableSet{tables: make([]*gdb.VectorTable, n)}
	if n == 1 {
		t, hit, err := s.shardTable(ctx, 0, qh, res)
		if err != nil {
			return tableSet{}, err
		}
		out.tables[0] = t
		out.hits, out.work = boolToInt(hit), freshWork(t, hit)
		return out, nil
	}
	// Spread the default worker budget over the shards that will
	// actually evaluate, not the shard count: after a single-shard
	// invalidation the lone rebuilding shard gets the whole machine
	// instead of 1/Nth of it. The peek is advisory — a racing
	// invalidation at worst changes parallelism, never correctness —
	// so a surprise rebuild (0 predicted misses) runs at full width.
	if res.opts.Workers <= 0 {
		cold := 0
		for i := 0; i < n; i++ {
			if !s.cachedForQuery(i, qh, res) {
				cold++
			}
		}
		if cold > 0 {
			res.opts.Workers = (runtime.GOMAXPROCS(0) + cold - 1) / cold
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		hits     int
		work     tableWork
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t, hit, err := s.shardTable(ctx, i, qh, res)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			out.tables[i] = t
			mu.Lock()
			hits += boolToInt(hit)
			work.add(freshWork(t, hit))
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return tableSet{}, firstErr
	}
	out.hits, out.work = hits, work
	return out, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// cachedForQuery reports whether shard's table for the query is cached
// under any key the request could be served from (the full key always;
// additionally the pruned variant for pruning requests). A planning
// peek for worker sizing — no counters, no recency.
func (s *Server) cachedForQuery(shard int, qh string, res resolved) bool {
	key := CacheKey(shard, s.db.ShardGeneration(shard), qh, res.basis, res.opts.Eval)
	if s.cache.contains(key) {
		return true
	}
	return res.prune && s.cache.contains(res.prunedVariant(key))
}

// prunedVariant derives the pruned-table key namespace this request
// reads and writes: the vector-preselected variant by default, the
// plain-scan variant under "vector": false. Separate namespaces keep an
// A/B pair honest — the opt-out never serves (or is served) a table the
// vector tier helped build.
func (res resolved) prunedVariant(full string) string {
	if res.novector {
		return prunedKey(full)
	}
	return vectorKey(full)
}

// shardTable returns one shard's table for a resolved query, from the
// cache when possible. Concurrent identical cold lookups are coalesced:
// one leader evaluates, the rest wait on its result and report a cache
// hit (they caused no pair evaluations). A follower whose leader fails
// — e.g. the leader's own shorter timeout fired — retries under its own
// deadline instead of inheriting the failure.
//
// Pruning requests first try the full table (a complete table answers
// a skyline query too, with zero extra work), then the pruned variant,
// and build the pruned variant on a double miss. Non-pruning requests
// never touch pruned entries.
func (s *Server) shardTable(ctx context.Context, shard int, qh string, res resolved) (t *gdb.VectorTable, hit bool, err error) {
	db := s.db.Shard(shard)
	for {
		fullKey := CacheKey(shard, db.Generation(), qh, res.basis, res.opts.Eval)
		key := fullKey
		if res.prune {
			// Quiet lookup: a miss here is not a miss for the request —
			// the pruned key below is the authoritative one.
			if t, ok := s.cache.getRecheck(fullKey); ok {
				return t, true, nil
			}
			key = res.prunedVariant(fullKey)
		}
		if t, ok := s.cache.Get(key); ok {
			return t, true, nil
		}
		s.flightMu.Lock()
		leader, inflight := s.flight[key]
		if !inflight && res.prune {
			// An in-flight full build answers a skyline request too;
			// wait on it rather than duplicating the evaluation with a
			// pruned build of the same shard.
			leader, inflight = s.flight[fullKey]
		}
		if !inflight {
			c := &flightCall{done: make(chan struct{})}
			s.flight[key] = c
			s.flightMu.Unlock()
			return s.lead(ctx, res, shard, qh, key, fullKey, c)
		}
		s.flightMu.Unlock()
		select {
		case <-leader.done:
			if leader.err == nil {
				return leader.t, true, nil
			}
			// Leader failed for its own reasons; try again ourselves.
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// lead evaluates shard's table as the flight leader for key, publishing
// the result to followers via c. fullKey is the complete-table key the
// request could equally be served from (equal to key for non-pruning
// requests).
func (s *Server) lead(ctx context.Context, res resolved, shard int, qh, key, fullKey string, c *flightCall) (t *gdb.VectorTable, hit bool, err error) {
	defer func() {
		c.t, c.err = t, err
		s.flightMu.Lock()
		delete(s.flight, key)
		s.flightMu.Unlock()
		close(c.done)
	}()

	// A previous leader may have published between our cache miss and
	// flight takeover; its removal from the flight map happens after its
	// Put, so re-checking here closes the window. A pruning leader also
	// re-checks the full key — a complete table published in the window
	// answers a skyline request too.
	if t0, ok := s.cache.getRecheck(key); ok {
		return t0, true, nil
	}
	if fullKey != key {
		if t0, ok := s.cache.getRecheck(fullKey); ok {
			return t0, true, nil
		}
	}

	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rejected.Add(1)
			return nil, false, errTooBusy
		}
	}
	opts := res.opts
	opts.Prune = res.prune
	t, err = s.db.Shard(shard).VectorTable(ctx, res.q, opts)
	if err != nil {
		return nil, false, err
	}
	s.pairEvals.Add(uint64(len(t.Points)))
	s.pairsPruned.Add(uint64(t.Pruned))
	s.pivotPruned.Add(uint64(t.PivotPruned))
	s.pivotDists.Add(uint64(t.PivotDists))
	s.memoHits.Add(uint64(t.MemoHits))
	s.memoMisses.Add(uint64(t.MemoMisses))
	s.vectorCells.Add(uint64(t.VectorCells))
	s.vectorSkipped.Add(uint64(t.VectorSkipped))
	s.vectorFallbacks.Add(uint64(t.VectorFallbacks))
	// The snapshot generation is authoritative: if the shard changed
	// between the key computation and the snapshot, rekey so the entry
	// stays reachable exactly as long as it is valid. A pruning build
	// that pruned nothing yields a complete table and is cached under
	// the full key, where every request kind can reuse it.
	putKey := CacheKey(shard, t.Generation, qh, res.basis, res.opts.Eval)
	e := &cacheEntry{shard: shard, table: t}
	if t.Complete {
		// Complete tables carry their maintenance lineage: a later
		// mutation of this shard can splice its one-row delta in instead
		// of invalidating the entry. Pruned variants hold survivor sets a
		// row patch cannot maintain, so they stay invalidation-only.
		e.lin = &tableLineage{q: res.q, qh: qh, basis: res.basis, eval: res.opts.Eval}
	} else {
		putKey = res.prunedVariant(putKey)
	}
	s.cache.put(putKey, e)
	return t, false, nil
}

var errTooBusy = errors.New("server is at its concurrent query limit")

// classifyQueryErr maps a table-evaluation error to an HTTP status,
// error class and message, bumping the matching counters. Shared by the
// single-query endpoints and the per-item error reporting of
// /query/batch.
func (s *Server) classifyQueryErr(err error) (int, string, string) {
	switch {
	case errors.Is(err, errTooBusy):
		return http.StatusServiceUnavailable, ClassUnavailable, err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		return http.StatusGatewayTimeout, ClassTimeout, "query timed out"
	case errors.Is(err, context.Canceled):
		return http.StatusBadRequest, ClassCanceled, "query canceled"
	default:
		return http.StatusInternalServerError, ClassInternal, err.Error()
	}
}

// queryStats assembles the wire stats for one answered query.
func (s *Server) queryStats(ts tableSet, start time.Time) QueryStats {
	deltas := 0
	for _, t := range ts.tables {
		deltas += t.Deltas
	}
	return QueryStats{
		DeltaPatched:    deltas,
		Evaluated:       ts.work.evaluated,
		Pruned:          ts.work.pruned,
		Inexact:         ts.inexact(),
		PivotPruned:     ts.work.pivotPruned,
		PivotDists:      ts.work.pivotDists,
		MemoHits:        ts.work.memoHits,
		MemoMisses:      ts.work.memoMisses,
		VectorCells:     ts.work.vectorCells,
		VectorSkipped:   ts.work.vectorSkipped,
		VectorFallbacks: ts.work.vectorFallbacks,
		CacheHit:        ts.hits == len(ts.tables),
		Shards:          len(ts.tables),
		ShardHits:       ts.hits,
		DurationMS:      float64(time.Since(start).Microseconds()) / 1000,
	}
}

// Per-kind request validation, shared by the dedicated endpoints and
// /query/batch.
func validateTopK(req *QueryRequest) error {
	if req.K < 1 {
		return errors.New("k must be >= 1")
	}
	return nil
}

func validateRange(req *QueryRequest) error {
	if req.Radius == nil {
		return errors.New("missing radius")
	}
	if *req.Radius < 0 {
		return errors.New("radius must be >= 0")
	}
	return nil
}

// Answer shaping from per-shard tables, shared by the dedicated
// endpoints and /query/batch.
func (s *Server) skylineAnswer(req *QueryRequest, res resolved, ts tableSet, stats QueryStats) *SkylineResponse {
	resp := &SkylineResponse{
		Basis:   measure.BasisNames(res.basis),
		Skyline: toPointJSON(s.db.MergeSkyline(ts.tables, res.alg)),
		Stats:   stats,
	}
	if req.All {
		resp.All = toPointJSON(s.db.MergeTables(ts.tables))
	}
	return resp
}

func (s *Server) topkAnswer(req *QueryRequest, res resolved, ts tableSet, stats QueryStats) *TopKResponse {
	items, err := s.db.MergeTopK(ts.tables, res.m, req.K)
	if err != nil {
		// Unreachable: resolveQuery guarantees m is in the basis.
		items = nil
	}
	return &TopKResponse{Measure: res.m.Name(), K: req.K, Items: toItemJSON(items), Stats: stats}
}

func (s *Server) rangeAnswer(req *QueryRequest, res resolved, ts tableSet, stats QueryStats) *RangeResponse {
	items, _ := s.db.MergeRange(ts.tables, res.m, *req.Radius)
	return &RangeResponse{Measure: res.m.Name(), Radius: *req.Radius, Items: toItemJSON(items), Stats: stats}
}

// answer bundles the per-kind response of one executed query; exactly
// one field is set.
type answer struct {
	sky *SkylineResponse
	tk  *TopKResponse
	rng *RangeResponse
}

// body returns whichever response is set, for JSON encoding.
func (a answer) body() any {
	switch {
	case a.sky != nil:
		return a.sky
	case a.tk != nil:
		return a.tk
	default:
		return a.rng
	}
}

// stats returns whichever response's stats are set.
func (a answer) stats() QueryStats {
	switch {
	case a.sky != nil:
		return a.sky.Stats
	case a.tk != nil:
		return a.tk.Stats
	case a.rng != nil:
		return a.rng.Stats
	}
	return QueryStats{}
}

// setTrace attaches the per-stage trace to whichever response is set.
func (a answer) setTrace(stages []gdb.TraceStage) {
	switch {
	case a.sky != nil:
		a.sky.Trace = stages
	case a.tk != nil:
		a.tk.Trace = stages
	case a.rng != nil:
		a.rng.Trace = stages
	}
}

// finishQuery is the post-answer bookkeeping shared by the dedicated
// endpoints and each batch item: feed the per-kind and per-stage
// metrics, attach the trace to the response when the client asked for
// it, and emit the slow-query log line when the query crossed the
// threshold.
func (s *Server) finishQuery(kind string, req *QueryRequest, res resolved, ans answer, start time.Time) {
	stages := res.opts.Trace.Stages()
	qs := ans.stats()
	s.met.observeQuery(kind, qs, stages)
	if req.Trace {
		ans.setTrace(stages)
	}
	s.logSlow(kind, qs, stages, time.Since(start))
}

// logSlow writes one SlowQueryRecord line when elapsed reaches the
// configured threshold.
func (s *Server) logSlow(kind string, qs QueryStats, stages []gdb.TraceStage, elapsed time.Duration) {
	if s.cfg.SlowQueryThreshold <= 0 || elapsed < s.cfg.SlowQueryThreshold {
		return
	}
	s.met.slowQueries.Inc()
	rec := SlowQueryRecord{
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		Kind:       kind,
		DurationMS: float64(elapsed.Microseconds()) / 1000,
		Stats:      qs,
		Trace:      stages,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.slowMu.Lock()
	_, _ = s.slowW.Write(b)
	s.slowMu.Unlock()
}

// execQuery executes one resolved query of the given kind end to end —
// pruned ranked evaluation for topk/range when the request allows it,
// the per-shard table path otherwise. Shared by the dedicated endpoints
// and /query/batch.
func (s *Server) execQuery(ctx context.Context, kind string, req *QueryRequest, res resolved, start time.Time) (answer, error) {
	if res.prune && kind != "skyline" {
		ra, err := s.ranked(ctx, kind, res, req.K, derefRadius(req.Radius))
		if err != nil {
			return answer{}, err
		}
		stats := s.rankedStats(ra, start)
		if kind == "topk" {
			return answer{tk: &TopKResponse{Measure: res.m.Name(), K: req.K, Items: toItemJSON(ra.items), Stats: stats}}, nil
		}
		return answer{rng: &RangeResponse{Measure: res.m.Name(), Radius: *req.Radius, Items: toItemJSON(ra.items), Stats: stats}}, nil
	}
	ts, err := s.tables(ctx, res)
	if err != nil {
		return answer{}, err
	}
	stats := s.queryStats(ts, start)
	// Answer shaping from the per-shard tables is the merge stage:
	// skyline cross-filtering, top-k heap merging, range concatenation.
	var mstart time.Time
	if res.opts.Trace != nil {
		mstart = time.Now()
	}
	var ans answer
	switch kind {
	case "topk":
		ans = answer{tk: s.topkAnswer(req, res, ts, stats)}
	case "range":
		ans = answer{rng: s.rangeAnswer(req, res, ts, stats)}
	default:
		ans = answer{sky: s.skylineAnswer(req, res, ts, stats)}
	}
	if res.opts.Trace != nil {
		rows := 0
		for _, t := range ts.tables {
			rows += len(t.Points)
		}
		res.opts.Trace.Observe(gdb.StageMerge, time.Since(mstart), rows, 0)
	}
	return ans, nil
}

func derefRadius(r *float64) float64 {
	if r == nil {
		return 0
	}
	return *r
}

// runQuery wraps the shared decode / resolve / timeout / execute
// plumbing of the three query endpoints.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, kind string,
	validate func(*QueryRequest) error) {
	if !s.admitQuery(w) {
		return
	}
	defer s.releaseQuery()
	s.queries.Add(1)
	start := time.Now()
	var req QueryRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.TimeoutMS <= 0 {
		req.TimeoutMS = headerTimeoutMS(r)
	}
	if validate != nil {
		if err := validate(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	res, err := s.resolveQuery(&req, kind != "skyline")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Every query is traced — the per-pair bookkeeping is noise next to
	// engine work, and the cascade-stage metrics want the numbers whether
	// or not the client asked to see them.
	res.opts.Trace = gdb.NewQueryTrace()
	ctx := r.Context()
	if d := s.timeout(&req); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	ans, err := s.execQuery(ctx, kind, &req, res, start)
	if err != nil {
		code, class, msg := s.classifyQueryErr(err)
		var retry time.Duration
		if code == http.StatusServiceUnavailable {
			retry = s.retryAfter()
		}
		s.writeErrorClass(w, code, class, retry, "%s", msg)
		return
	}
	s.finishQuery(kind, &req, res, ans, start)
	writeJSON(w, http.StatusOK, ans.body())
}

func (s *Server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	s.runQuery(w, r, "skyline", nil)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.runQuery(w, r, "topk", validateTopK)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	s.runQuery(w, r, "range", validateRange)
}

func toPointJSON(pts []skyline.Point) []PointJSON {
	out := make([]PointJSON, len(pts))
	for i, p := range pts {
		out[i] = PointJSON{ID: p.ID, Vec: p.Vec}
	}
	return out
}

func toItemJSON(items []topk.Item) []ItemJSON {
	out := make([]ItemJSON, len(items))
	for i, it := range items {
		out[i] = ItemJSON{ID: it.ID, Score: it.Score}
	}
	return out
}

// idemRecord remembers one acknowledged keyed mutation for replay;
// exactly one field is set.
type idemRecord struct {
	insert *InsertResponse
	del    *DeleteResponse
}

// idemLookup fetches the recorded ack of a keyed mutation. Keys are
// namespaced by verb so an insert key can never replay a delete.
func (s *Server) idemLookup(verb, key string) (idemRecord, bool) {
	if key == "" {
		return idemRecord{}, false
	}
	s.idemMu.Lock()
	defer s.idemMu.Unlock()
	return s.idem.Get(verb + ":" + key)
}

func (s *Server) idemRemember(verb, key string, rec idemRecord) {
	if key == "" {
		return
	}
	s.idemMu.Lock()
	defer s.idemMu.Unlock()
	s.idem.Put(verb+":"+key, rec)
}

// insertProgress returns the names proven applied under the given
// insert key (nil for unkeyed or unknown keys). The returned map is an
// immutable snapshot — noteInsertProgress replaces rather than mutates
// it, so readers race with nothing.
func (s *Server) insertProgress(key string) map[string]bool {
	if key == "" {
		return nil
	}
	done, _ := s.idemProg.Get(key)
	return done
}

// noteInsertProgress records that name committed under the given
// insert key (copy-on-write, see insertProgress).
func (s *Server) noteInsertProgress(key, name string) {
	if key == "" {
		return
	}
	s.idemProg.Update(key, func(old map[string]bool, _ bool) map[string]bool {
		next := make(map[string]bool, len(old)+1)
		for n := range old {
			next[n] = true
		}
		next[name] = true
		return next
	})
}

// rejectDegraded refuses a mutation up front while the write path is
// degraded-readonly (it could only fail), with the class and
// Retry-After hint the retrying client keys on. Reports whether the
// request was rejected.
func (s *Server) rejectDegraded(w http.ResponseWriter) bool {
	if !s.health.ReadOnly() {
		return false
	}
	s.degradedRejects.Add(1)
	s.writeErrorClass(w, http.StatusServiceUnavailable, ClassDegraded, s.retryAfter(),
		"store is degraded-readonly: mutation refused while the write path heals")
	return true
}

// mutationError answers a failed mutation. Name collisions stay 409;
// persist failures split into transient (503 + Retry-After — the kind
// a broken-then-fixed disk produces; feeds the health state machine)
// and corruption-class (500, terminal: probing cannot heal a corrupt
// store, and retrying cannot help). extra fields — partial-insert
// progress — are merged into the body.
func (s *Server) mutationError(w http.ResponseWriter, err error, extra map[string]any) {
	code, class := http.StatusConflict, ClassConflict
	var retry time.Duration
	if errors.Is(err, gdb.ErrNotPersisted) {
		if errors.Is(err, wal.ErrCorrupt) {
			code, class = http.StatusInternalServerError, ClassCorrupt
		} else {
			s.health.NoteTransientFailure(err)
			code, class, retry = http.StatusServiceUnavailable, ClassTransient, s.retryAfter()
		}
	}
	s.errors.Add(1)
	body := map[string]any{"error": err.Error(), "class": class}
	if retry > 0 {
		secs := (retry + time.Second - 1) / time.Second
		w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
		body["retry_after_ms"] = retry.Milliseconds()
	}
	for k, v := range extra {
		body[k] = v
	}
	writeJSON(w, code, body)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.inserts.Add(1)
	var req InsertRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var gs []*graph.Graph
	switch {
	case req.Graph != nil && req.Graphs != nil:
		s.writeError(w, http.StatusBadRequest, "set exactly one of graph, graphs")
		return
	case req.Graph != nil:
		gs = []*graph.Graph{req.Graph}
	case len(req.Graphs) > 0:
		gs = req.Graphs
	default:
		s.writeError(w, http.StatusBadRequest, "missing graph")
		return
	}
	// Validate everything up front so malformed payloads are a clean 400
	// with nothing inserted; only name collisions can fail past here.
	for _, g := range gs {
		if g.Name() == "" {
			s.writeError(w, http.StatusBadRequest, "graph has no name")
			return
		}
		if err := g.Validate(); err != nil {
			s.writeError(w, http.StatusBadRequest, "invalid graph %q: %v", g.Name(), err)
			return
		}
	}
	key := r.Header.Get(IdempotencyHeader)
	if key == "" {
		key = req.IdempotencyKey
	}
	// Replay before anything else — even degraded, serving the recorded
	// ack of an already-persisted mutation is a read.
	if rec, ok := s.idemLookup("insert", key); ok && rec.insert != nil {
		resp := *rec.insert
		resp.Replayed = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if s.rejectDegraded(w) {
		return
	}
	// done is the evidence this key was accepted before: names noted by
	// this process on commit, or recovered from the WAL (keys ride
	// along in the records) after a restart ate the ack. Those names
	// are skipped rather than re-inserted, which both replays lost
	// acks and lets a retry of a partially applied multi-graph insert
	// complete the remainder instead of 409-ing on its own earlier
	// work. Without evidence nothing is skipped: a keyed insert of a
	// name someone else created is a genuine 409 conflict.
	done := s.insertProgress(key)
	inserted := make([]string, 0, len(gs))
	var skipped []string
	for _, g := range gs {
		if done[g.Name()] {
			skipped = append(skipped, g.Name())
			continue
		}
		shard, gen, err := s.db.InsertKeyedGen(g, key)
		if err != nil {
			// Partial inserts stand (each bumped its shard's generation,
			// and each already routed its cache delta) and are reported;
			// the request is not recorded for replay, but the applied
			// names are noted under the key, so a keyed retry re-attempts
			// exactly the remainder.
			s.mutationError(w, err, map[string]any{
				"inserted":   inserted,
				"generation": s.db.Generation(),
			})
			return
		}
		s.health.NoteSuccess()
		s.noteInsertProgress(key, g.Name())
		inserted = append(inserted, g.Name())
		// Route the delta per applied insert, not per request: each
		// mutation advances its shard by exactly one generation, which is
		// the step the upgrade proofs are built on.
		s.deltaInsert(g, shard, gen)
	}
	// Inserted reports every name the request asked for that is now
	// applied under this key — freshly inserted or skipped as already
	// done — so a completed retry acks the whole request; Replayed
	// marks the pure-replay case (nothing newly applied).
	names := make([]string, len(gs))
	for i, g := range gs {
		names[i] = g.Name()
	}
	resp := InsertResponse{
		Inserted:   names,
		Skipped:    skipped,
		Generation: s.db.Generation(),
		Replayed:   len(inserted) == 0 && len(skipped) > 0,
	}
	s.idemRemember("insert", key, idemRecord{insert: &resp})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.deletes.Add(1)
	name := r.PathValue("name")
	key := r.Header.Get(IdempotencyHeader)
	if rec, ok := s.idemLookup("delete", key); ok && rec.del != nil {
		resp := *rec.del
		resp.Replayed = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if s.rejectDegraded(w) {
		return
	}
	existed, shard, gen, err := s.db.DeleteKeyedGen(name, key)
	if err != nil {
		// The write-ahead append failed: the graph is still there and the
		// mutation must not be acked.
		s.mutationError(w, err, nil)
		return
	}
	if !existed {
		// A keyed delete whose ack was lost is answered by the replay
		// table above — recovery seeds it from the keys in the WAL — so
		// an absent graph here means this key never deleted anything:
		// 404, keyed or not.
		s.writeError(w, http.StatusNotFound, "no graph named %q", name)
		return
	}
	s.health.NoteSuccess()
	s.deltaDelete(name, shard, gen)
	resp := DeleteResponse{Deleted: name, Generation: s.db.Generation()}
	s.idemRemember("delete", key, idemRecord{del: &resp})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	g, ok := s.db.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no graph named %q", name)
		return
	}
	writeJSON(w, http.StatusOK, g)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListResponse{Names: s.db.Names(), Generation: s.db.Generation()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	dbs := s.db.Stats()
	shards := make([]ShardInfo, s.db.NumShards())
	for i := range shards {
		shards[i] = ShardInfo{
			Index:      i,
			Graphs:     s.db.Shard(i).Len(),
			Generation: s.db.ShardGeneration(i),
		}
		if ix := s.db.Shard(i).PivotIndex(); ix != nil {
			shards[i].Pivots, shards[i].PivotReady, shards[i].PivotPending = ix.Ready()
		}
		if vix := s.db.Shard(i).VectorIndex(); vix != nil {
			o := vix.Occupancy()
			shards[i].VectorCells = o.Cells
			shards[i].VectorMembers = o.Members
			shards[i].VectorMeanList = o.MeanList
			shards[i].VectorEpoch = o.Epoch
			shards[i].VectorRebuilds = o.Rebuilds
		}
	}
	var memo *gdb.MemoStats
	if m := s.db.Memo(); m != nil {
		ms := m.Stats()
		memo = &ms
	}
	var durability *DurabilityInfo
	if d := s.cfg.Durable; d != nil {
		ds := d.Stats()
		durability = &DurabilityInfo{
			Dir:                     ds.Dir,
			Sync:                    ds.Sync,
			WALSegments:             ds.WAL.Segments,
			WALSizeBytes:            ds.WAL.SizeBytes,
			WALLastLSN:              ds.WAL.LastLSN,
			WALAppends:              ds.WAL.Appends,
			WALFsyncs:               ds.WAL.Fsyncs,
			Snapshots:               ds.Snapshots,
			LastSnapLSN:             ds.LastSnapLSN,
			LastSnapGraphs:          ds.LastSnapGraphs,
			RecoverySnapshotGraphs:  ds.Recovery.SnapshotGraphs,
			RecoveryReplayedRecords: ds.Recovery.ReplayedRecords,
			RecoveryRepairedBytes:   ds.Recovery.RepairedBytes,
			RecoveryDroppedSegments: ds.Recovery.DroppedSegments,
			RecoverySeconds:         ds.Recovery.Duration.Seconds(),
		}
	}
	var faultBlock *FaultInfo
	if pts := fault.Snapshot(); len(pts) > 0 {
		faultBlock = &FaultInfo{Armed: fault.Armed(), Fires: fault.TotalFires(), Points: pts}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Generation:    s.db.Generation(),
		DB: DBStats{
			Graphs:       dbs.Graphs,
			Vertices:     dbs.Vertices,
			Edges:        dbs.Edges,
			VertexLabels: dbs.VertexLabels,
			EdgeLabels:   dbs.EdgeLabels,
			MinSize:      dbs.MinSize,
			MaxSize:      dbs.MaxSize,
		},
		Shards:     shards,
		Cache:      s.cache.Stats(),
		Memo:       memo,
		Durability: durability,
		Health:     s.health.Info(),
		Fault:      faultBlock,
		Requests: ReqStats{
			Queries:          s.queries.Load(),
			Batches:          s.batches.Load(),
			Inserts:          s.inserts.Load(),
			Deletes:          s.deletes.Load(),
			Errors:           s.errors.Load(),
			PairEvals:        s.pairEvals.Load(),
			PairsPruned:      s.pairsPruned.Load(),
			PivotPruned:      s.pivotPruned.Load(),
			PivotDists:       s.pivotDists.Load(),
			MemoHits:         s.memoHits.Load(),
			MemoMisses:       s.memoMisses.Load(),
			VectorCells:      s.vectorCells.Load(),
			VectorSkipped:    s.vectorSkipped.Load(),
			VectorFallbacks:  s.vectorFallbacks.Load(),
			QueryTimeouts:    s.timeouts.Load(),
			InflightRejected: s.rejected.Load(),
			LoadShed:         s.shed.Load(),
			DegradedRejected: s.degradedRejects.Load(),
		},
		Runtime: runtimeStats(),
		Build:   buildInfo(),
	})
}

// runtimeStats snapshots the Go runtime for /stats.
func runtimeStats() RuntimeStats {
	ms := readMemStats()
	return RuntimeStats{
		Goroutines:    runtime.NumGoroutine(),
		HeapAllocByte: ms.HeapAlloc,
		HeapSysBytes:  ms.HeapSys,
		GCCycles:      ms.NumGC,
		GCPauseMS:     float64(ms.PauseTotalNs) / 1e6,
	}
}

// handleWarm answers POST /cache/warm: build (and cache) the complete
// per-shard vector tables of the given query graphs ahead of traffic.
// Queries run sequentially — warming is maintenance, not serving, so it
// should trickle through the inflight budget rather than flood it; each
// item still evaluates its shards in parallel like a normal cold query.
func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	if !s.admitQuery(w) {
		return
	}
	defer s.releaseQuery()
	start := time.Now()
	var req WarmRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.TimeoutMS <= 0 {
		req.TimeoutMS = headerTimeoutMS(r)
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty warm request")
		return
	}
	// Same size cap as /query/batch: every warm item is a full unpruned
	// table build across all shards, the most expensive request kind
	// there is.
	maxBatch := s.cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if len(req.Queries) > maxBatch {
		s.writeError(w, http.StatusBadRequest, "warm request of %d queries exceeds the limit of %d", len(req.Queries), maxBatch)
		return
	}
	ctx := r.Context()
	if d := s.timeout(&QueryRequest{TimeoutMS: req.TimeoutMS}); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	results := make([]WarmResult, len(req.Queries))
	for i := range req.Queries {
		qr := req.Queries[i]
		// Warming always builds the complete table: every later query
		// kind — skyline, full-table, top-k, range — can be served from
		// it, and pruned variants would warm nothing ranked.
		qr.All = true
		res, err := s.resolveQuery(&qr, false)
		if err != nil {
			results[i] = WarmResult{Error: err.Error()}
			s.errors.Add(1)
			continue
		}
		ts, err := s.tables(ctx, res)
		if err != nil {
			_, _, msg := s.classifyQueryErr(err)
			results[i] = WarmResult{Error: msg}
			continue
		}
		results[i] = WarmResult{Evaluated: ts.work.evaluated, ShardHits: ts.hits}
	}
	writeJSON(w, http.StatusOK, WarmResponse{
		Results:    results,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}
