package server

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/pivot"
)

// newPivotTestServer serves the paper DB across nshards shards with the
// pivot index (fully built) and the score memo enabled.
func newPivotTestServer(t *testing.T, nshards int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	db := gdb.NewSharded(nshards)
	if err := db.InsertAll(dataset.PaperDB()); err != nil {
		t.Fatal(err)
	}
	db.EnablePivots(pivot.Config{Pivots: 3})
	db.EnableScoreMemo(1024)
	db.WaitPivots()
	s := New(db, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestPivotCountersOnWire: /query/topk and /query/skyline surface the
// pivot/memo counters; warm reruns served from the answer caches report
// zero fresh work, and /stats totals the activity.
func TestPivotCountersOnWire(t *testing.T) {
	_, ts := newPivotTestServer(t, 1, Config{CacheSize: 16})
	q := dataset.PaperQuery()

	var tk TopKResponse
	postJSON(t, ts.URL+"/query/topk", map[string]any{"graph": q, "k": 3}, &tk)
	if tk.Stats.PivotDists == 0 {
		t.Fatalf("cold pruned topk computed no pivot distances: %+v", tk.Stats)
	}
	if tk.Stats.MemoMisses == 0 {
		t.Fatalf("cold pruned topk reported no memo lookups: %+v", tk.Stats)
	}

	// Same query again: the ranked answer cache serves it, no fresh work.
	var warm TopKResponse
	postJSON(t, ts.URL+"/query/topk", map[string]any{"graph": q, "k": 3}, &warm)
	if !warm.Stats.CacheHit || warm.Stats.PivotDists != 0 || warm.Stats.MemoHits != 0 {
		t.Fatalf("warm topk should be a pure cache hit: %+v", warm.Stats)
	}

	// Skyline with pruning: pivot distances + memo lookups flow through
	// the table path too (memo hits now, since topk published scores...
	// only for the engines it ran; at minimum the lookups are counted).
	var sky SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", map[string]any{"graph": q}, &sky)
	if sky.Stats.PivotDists == 0 {
		t.Fatalf("pruned skyline computed no pivot distances: %+v", sky.Stats)
	}
	if sky.Stats.MemoHits+sky.Stats.MemoMisses == 0 {
		t.Fatalf("pruned skyline performed no memo lookups: %+v", sky.Stats)
	}

	// /stats: global counters and per-shard pivot occupancy.
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests.PivotDists == 0 {
		t.Fatalf("global pivot_dists is 0: %+v", st.Requests)
	}
	if st.Memo == nil || st.Memo.Entries == 0 {
		t.Fatalf("memo stats missing or empty: %+v", st.Memo)
	}
	if st.Shards[0].Pivots != 3 || st.Shards[0].PivotReady != 7 || st.Shards[0].PivotPending != 0 {
		t.Fatalf("shard pivot occupancy wrong: %+v", st.Shards[0])
	}
}

// TestPivotCountersInBatch: batch stats aggregate the per-item pivot
// and memo counters.
func TestPivotCountersInBatch(t *testing.T) {
	_, ts := newPivotTestServer(t, 2, Config{CacheSize: 32})
	q := dataset.PaperQuery()
	var resp BatchResponse
	postJSON(t, ts.URL+"/query/batch", map[string]any{
		"queries": []map[string]any{
			{"kind": "topk", "graph": q, "k": 2},
			{"kind": "range", "graph": q, "radius": 5.0},
		},
	}, &resp)
	if resp.Stats.Errors != 0 {
		t.Fatalf("batch errors: %+v", resp.Results)
	}
	if resp.Stats.PivotDists == 0 {
		t.Fatalf("batch aggregated no pivot distances: %+v", resp.Stats)
	}
	if resp.Stats.MemoHits+resp.Stats.MemoMisses == 0 {
		t.Fatalf("batch aggregated no memo lookups: %+v", resp.Stats)
	}
}

// TestWarmEndpoint: /cache/warm builds complete shard tables so later
// queries of every kind answer from cache, and malformed entries fail
// in place.
func TestWarmEndpoint(t *testing.T) {
	_, ts := newPivotTestServer(t, 2, Config{CacheSize: 32})
	q := dataset.PaperQuery()

	var wr WarmResponse
	postJSON(t, ts.URL+"/cache/warm", map[string]any{
		"queries": []map[string]any{
			{"graph": q},
			{}, // missing graph: per-item error
		},
	}, &wr)
	if len(wr.Results) != 2 {
		t.Fatalf("warm results: %+v", wr)
	}
	if wr.Results[0].Error != "" || wr.Results[0].Evaluated != 7 {
		t.Fatalf("warm[0] = %+v, want 7 evaluated", wr.Results[0])
	}
	if wr.Results[1].Error == "" {
		t.Fatal("warm[1] (missing graph) did not error")
	}

	// Every kind is now served from the warmed tables.
	var sky SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", map[string]any{"graph": q, "all": true}, &sky)
	if !sky.Stats.CacheHit || sky.Stats.Evaluated != 0 {
		t.Fatalf("skyline after warm not a cache hit: %+v", sky.Stats)
	}
	var tk TopKResponse
	postJSON(t, ts.URL+"/query/topk", map[string]any{"graph": q, "k": 3}, &tk)
	if tk.Stats.Evaluated != 0 || tk.Stats.ShardHits != 2 {
		t.Fatalf("topk after warm still evaluated: %+v", tk.Stats)
	}

	// Empty warm request is a 400.
	resp := postJSON(t, ts.URL+"/cache/warm", map[string]any{"queries": []map[string]any{}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty warm request: status %d", resp.StatusCode)
	}
}

// TestPivotServingEquivalence: with pivots + memo enabled, served
// answers across shard counts match a pivot-free reference server.
func TestPivotServingEquivalence(t *testing.T) {
	q := graph.Mutate(dataset.PaperQuery(), 2, graph.MoleculeAlphabet.Atoms, graph.MoleculeAlphabet.Bonds, rand.New(rand.NewSource(9)))
	q.SetName("qx")
	var refSky SkylineResponse
	var refTK TopKResponse
	{
		_, ts := newShardedTestServer(t, 1, Config{CacheSize: 0})
		postJSON(t, ts.URL+"/query/skyline", map[string]any{"graph": q}, &refSky)
		postJSON(t, ts.URL+"/query/topk", map[string]any{"graph": q, "k": 3}, &refTK)
	}
	for _, shards := range []int{1, 2, 3, 7} {
		_, ts := newPivotTestServer(t, shards, Config{CacheSize: 64})
		var sky SkylineResponse
		postJSON(t, ts.URL+"/query/skyline", map[string]any{"graph": q}, &sky)
		requireSameSkylineJSON(t, shards, 0, refSky.Skyline, sky.Skyline)
		var tk TopKResponse
		postJSON(t, ts.URL+"/query/topk", map[string]any{"graph": q, "k": 3}, &tk)
		if len(tk.Items) != len(refTK.Items) {
			t.Fatalf("shards=%d: topk sizes differ", shards)
		}
		for i := range tk.Items {
			if tk.Items[i] != refTK.Items[i] {
				t.Fatalf("shards=%d: topk item %d: %+v vs %+v", shards, i, tk.Items[i], refTK.Items[i])
			}
		}
	}
}
