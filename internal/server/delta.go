package server

import (
	"sort"

	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/topk"
)

// Delta maintenance: instead of discarding every cached table and
// ranked answer of a mutated shard, a mutation routes its delta to the
// entries it touches and upgrades them in place — generation-advancing
// rather than generation-keyed discard. The provability conditions are
// deliberately narrow:
//
//   - Only lineage-carrying entries qualify: complete tables cached
//     under their full key, and merged ranked answers. Pruned and
//     vector-preselected variants hold survivor sets a single row
//     cannot patch.
//   - The entry must be exactly ONE generation behind the mutation on
//     the mutated shard. Anything older has unknown intermediate
//     history.
//   - An insert additionally requires the freshly evaluated row to
//     have been read at exactly the mutation's generation (DeltaRow's
//     observed gen): a later interleaved mutation could have replaced
//     the named graph's value.
//   - A table delete requires Inexact == 0 (per-row inexactness is not
//     recorded, so the surviving count is otherwise underivable); a
//     top-k delete requires the victim NOT to be in the answer (the
//     (k+1)-th item was never stored).
//
// Every condition that fails falls back to today's invalidation, via
// the PruneStale call that ends each routing pass — which also
// guarantees no stale entry survives a mutation whether or not it was
// upgradable. Counted as delta_applied / delta_fallbacks in CacheStats.
//
// Byte-identity: a spliced table row goes through the cold build's own
// per-pair path (DeltaRow), insert rows land at the end of Points
// exactly where the global insertion order puts them, top-k splices
// reproduce topk.Select's deterministic ascending (score, ID) order,
// and range answers stay in insertion order because a new graph is by
// construction last. The interleaved-mutation equivalence tests
// (delta_test.go) enforce this against cold recompute.

// deltaInsert routes the delta of one applied insert: g landed on
// shard, producing generation gen there.
func (s *Server) deltaInsert(g *graph.Graph, shard int, gen uint64) {
	s.maintain(shard, gen, g, "")
}

// deltaDelete routes the delta of one applied delete of name from
// shard, which produced generation gen there.
func (s *Server) deltaDelete(name string, shard int, gen uint64) {
	s.maintain(shard, gen, nil, name)
}

// maintain upgrades every provably patchable cache entry across the
// mutation (shard, gen), then prunes whatever remains stale — the
// fallback-to-invalidation path for everything the proofs do not
// cover. Exactly one of inserted / deleted is set.
func (s *Server) maintain(shard int, gen uint64, inserted *graph.Graph, deleted string) {
	if !s.cfg.DisableDelta {
		for _, cand := range s.cache.deltaCandidates(shard, gen) {
			if cand.e.shard >= 0 {
				s.upgradeTable(cand, shard, gen, inserted, deleted)
			} else {
				s.upgradeRanked(cand, shard, gen, inserted, deleted)
			}
		}
	}
	s.cache.PruneStale(shard, gen)
}

// upgradeTable patches one cached complete table across the mutation
// and republishes it under the advanced generation's key. Returning
// without promoting leaves the entry for PruneStale (a counted
// fallback).
func (s *Server) upgradeTable(cand deltaCandidate, shard int, gen uint64, inserted *graph.Graph, deleted string) {
	lin := cand.e.lin
	var nt *gdb.VectorTable
	if inserted != nil {
		opts := gdb.QueryOptions{Basis: lin.basis, Eval: lin.eval, QueryHash: lin.qh}
		pt, inexact, got, ok := s.db.Shard(shard).DeltaRow(inserted.Name(), lin.q, opts)
		if !ok || got != gen {
			return // a later mutation interleaved; the row is not provably gen's
		}
		nt = cand.e.table.WithInsert(pt, inexact, gen)
	} else {
		if cand.e.table.Inexact > 0 {
			return // per-row inexactness unknown: the patched count is not derivable
		}
		var ok bool
		nt, ok = cand.e.table.WithDelete(deleted, gen)
		if !ok {
			return
		}
	}
	newKey := CacheKey(shard, gen, lin.qh, lin.basis, lin.eval)
	s.cache.promote(cand.key, newKey, &cacheEntry{shard: shard, table: nt, lin: lin})
}

// upgradeRanked patches one cached merged ranked answer across the
// mutation. Top-k inserts splice into topk.Select's deterministic
// ascending (score, ID) order against the stored k-th threshold; range
// inserts append on a single membership test (a new graph is last in
// insertion order); deletes remove the victim (range) or prove the
// answer unchanged (top-k, victim absent).
func (s *Server) upgradeRanked(cand deltaCandidate, shard int, gen uint64, inserted *graph.Graph, deleted string) {
	r := cand.e.ranked
	lin := r.lin
	items, inexact := r.items, r.inexact
	if inserted != nil {
		opts := gdb.QueryOptions{Eval: lin.eval, QueryHash: lin.qh}
		score, inex, got, ok := s.db.Shard(shard).DeltaScore(inserted.Name(), lin.q, lin.m, opts)
		if !ok || got != gen {
			return
		}
		name := inserted.Name()
		if lin.kind == "topk" {
			k := int(lin.arg)
			pos := sort.Search(len(items), func(i int) bool {
				return items[i].Score > score || (items[i].Score == score && items[i].ID > name)
			})
			if pos < len(items) || len(items) < k {
				next := make([]topk.Item, 0, len(items)+1)
				next = append(next, items[:pos]...)
				next = append(next, topk.Item{ID: name, Score: score})
				next = append(next, items[pos:]...)
				if len(next) > k {
					next = next[:k]
				}
				items = next
				if inex {
					inexact++
				}
			}
			// pos == len(items) with a full answer: strictly worse than
			// the stored k-th, provably unchanged.
		} else if score <= lin.arg {
			next := make([]topk.Item, 0, len(items)+1)
			next = append(next, items...)
			next = append(next, topk.Item{ID: name, Score: score})
			items = next
			if inex {
				inexact++
			}
		}
	} else {
		idx := -1
		for i := range items {
			if items[i].ID == deleted {
				idx = i
				break
			}
		}
		if lin.kind == "topk" {
			if idx >= 0 || len(items) < int(lin.arg) {
				// The victim was in the answer (or the answer held every
				// graph, where it must have been): the (k+1)-th item was
				// never stored, so the successor answer is not derivable.
				return
			}
		} else if idx >= 0 {
			next := make([]topk.Item, 0, len(items)-1)
			next = append(next, items[:idx]...)
			next = append(next, items[idx+1:]...)
			items = next
		}
	}
	gens := make([]uint64, len(cand.e.gens))
	copy(gens, cand.e.gens)
	gens[shard] = gen
	newKey := RankedKey(lin.kind, gens, lin.qh, lin.m, lin.arg, lin.eval)
	if lin.novector {
		newKey += "|novec"
	}
	s.cache.promote(cand.key, newKey, &cacheEntry{
		shard:  -1,
		gens:   gens,
		ranked: &rankedEntry{items: items, inexact: inexact, deltas: r.deltas + 1, lin: lin},
	})
}
