package server

import (
	"net/http"
	"reflect"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/graph"
)

// permutedPaperQuery returns the paper query with its vertices
// renumbered in reverse: a different wire encoding of an isomorphic
// graph, which must share cache entries via the canonical query hash.
func permutedPaperQuery(t *testing.T) *graph.Graph {
	t.Helper()
	q := dataset.PaperQuery()
	n := q.Order()
	perm := graph.New("permuted-q")
	for i := n - 1; i >= 0; i-- {
		perm.AddVertex(q.VertexLabel(i))
	}
	for _, e := range q.Edges() {
		if err := perm.AddEdge(n-1-e.U, n-1-e.V, e.Label); err != nil {
			t.Fatal(err)
		}
	}
	return perm
}

// TestBatchCoalescesTableBuilds is the batch acceptance check: M
// queries over the same (isomorphism class of) query graph cost at most
// one vector-table build per (shard, query-hash) pair — here exactly
// one per shard, i.e. 7 pair evaluations total over the paper database,
// no matter how many batch items ask.
func TestBatchCoalescesTableBuilds(t *testing.T) {
	for _, shards := range []int{1, 2, 3} {
		s, ts := newShardedTestServer(t, shards, Config{CacheSize: 32})
		radius := 3.0
		batch := BatchRequest{Queries: []BatchQuery{
			{Kind: "skyline", QueryRequest: QueryRequest{Graph: dataset.PaperQuery()}},
			{Kind: "skyline", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), Algorithm: "bnl"}},
			{Kind: "topk", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), K: 3}},
			{Kind: "topk", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), K: 5}},
			{Kind: "range", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), Radius: &radius}},
			{Kind: "skyline", QueryRequest: QueryRequest{Graph: permutedPaperQuery(t)}},
		}}
		var resp BatchResponse
		r := postJSON(t, ts.URL+"/query/batch", batch, &resp)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%d shards: batch status = %d", shards, r.StatusCode)
		}
		if len(resp.Results) != 6 || resp.Stats.Errors != 0 {
			t.Fatalf("%d shards: results = %d, errors = %d", shards, len(resp.Results), resp.Stats.Errors)
		}
		for i, res := range resp.Results {
			if res.Error != "" {
				t.Fatalf("%d shards: item %d failed: %s", shards, i, res.Error)
			}
		}
		// At most one build per (shard, query-hash): the whole batch
		// evaluated each of the 7 database graphs exactly once, and the
		// cache holds exactly one table per shard.
		st := statsOf(t, ts.URL)
		if st.Requests.PairEvals != 7 {
			t.Fatalf("%d shards: pair evals = %d across the batch; want 7", shards, st.Requests.PairEvals)
		}
		if got := s.Cache().Len(); got != shards {
			t.Fatalf("%d shards: cache holds %d tables; want one per shard (%d)", shards, got, shards)
		}
		if resp.Stats.Evaluated != 7 {
			t.Fatalf("%d shards: batch stats evaluated = %d; want 7", shards, resp.Stats.Evaluated)
		}
		// Repeating the whole batch is free: every item hits.
		var again BatchResponse
		postJSON(t, ts.URL+"/query/batch", batch, &again)
		if again.Stats.Evaluated != 0 {
			t.Fatalf("%d shards: repeat batch evaluated %d pairs; want 0", shards, again.Stats.Evaluated)
		}
		for i, res := range again.Results {
			if qs := res.stats(); !qs.CacheHit || qs.ShardHits != shards {
				t.Fatalf("%d shards: repeat item %d stats = %+v; want full cache hit", shards, i, qs)
			}
		}
	}
}

// TestBatchMatchesSingleEndpoints: each batch item's answer is
// byte-identical to the dedicated endpoint's (stats aside).
func TestBatchMatchesSingleEndpoints(t *testing.T) {
	_, ts := newShardedTestServer(t, 3, Config{CacheSize: 32})
	radius := 3.0

	var sky SkylineResponse
	postJSON(t, ts.URL+"/query/skyline", QueryRequest{Graph: dataset.PaperQuery(), All: true}, &sky)
	var tk TopKResponse
	postJSON(t, ts.URL+"/query/topk", QueryRequest{Graph: dataset.PaperQuery(), K: 3}, &tk)
	var rg RangeResponse
	postJSON(t, ts.URL+"/query/range", QueryRequest{Graph: dataset.PaperQuery(), Radius: &radius}, &rg)

	var batch BatchResponse
	postJSON(t, ts.URL+"/query/batch", BatchRequest{Queries: []BatchQuery{
		{Kind: "skyline", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), All: true}},
		{Kind: "topk", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), K: 3}},
		{Kind: "range", QueryRequest: QueryRequest{Graph: dataset.PaperQuery(), Radius: &radius}},
	}}, &batch)
	if len(batch.Results) != 3 {
		t.Fatalf("batch results = %d; want 3", len(batch.Results))
	}
	bSky, bTk, bRg := batch.Results[0].Skyline, batch.Results[1].TopK, batch.Results[2].Range
	if bSky == nil || bTk == nil || bRg == nil {
		t.Fatalf("batch results missing answers: %+v", batch.Results)
	}
	if !reflect.DeepEqual(bSky.Skyline, sky.Skyline) || !reflect.DeepEqual(bSky.All, sky.All) {
		t.Fatalf("batch skyline differs from endpoint:\n batch %+v\n single %+v", bSky, sky)
	}
	if bTk.Measure != tk.Measure || bTk.K != tk.K || !reflect.DeepEqual(bTk.Items, tk.Items) {
		t.Fatalf("batch topk differs from endpoint:\n batch %+v\n single %+v", bTk, tk)
	}
	if bRg.Measure != rg.Measure || bRg.Radius != rg.Radius || !reflect.DeepEqual(bRg.Items, rg.Items) {
		t.Fatalf("batch range differs from endpoint:\n batch %+v\n single %+v", bRg, rg)
	}
}

// TestBatchItemErrorsDoNotFailBatch: invalid items report in place.
func TestBatchItemErrorsDoNotFailBatch(t *testing.T) {
	_, ts := newShardedTestServer(t, 2, Config{CacheSize: 8})
	var resp BatchResponse
	r := postJSON(t, ts.URL+"/query/batch", BatchRequest{Queries: []BatchQuery{
		{Kind: "topk", QueryRequest: QueryRequest{Graph: dataset.PaperQuery()}},    // missing k
		{Kind: "warp", QueryRequest: QueryRequest{Graph: dataset.PaperQuery()}},    // unknown kind
		{Kind: "skyline", QueryRequest: QueryRequest{}},                            // missing graph
		{Kind: "skyline", QueryRequest: QueryRequest{Graph: dataset.PaperQuery()}}, // fine
	}}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d; want 200 with per-item errors", r.StatusCode)
	}
	if resp.Stats.Errors != 3 {
		t.Fatalf("batch errors = %d; want 3", resp.Stats.Errors)
	}
	for i := 0; i < 3; i++ {
		if resp.Results[i].Error == "" {
			t.Fatalf("item %d should carry an error", i)
		}
	}
	if resp.Results[3].Error != "" || resp.Results[3].Skyline == nil {
		t.Fatalf("valid item failed: %+v", resp.Results[3])
	}
}

// TestBatchLimits: empty and oversized batches are rejected whole.
func TestBatchLimits(t *testing.T) {
	_, ts := newShardedTestServer(t, 1, Config{CacheSize: 8, MaxBatch: 2})
	if r := postJSON(t, ts.URL+"/query/batch", BatchRequest{}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d; want 400", r.StatusCode)
	}
	over := BatchRequest{Queries: []BatchQuery{
		{QueryRequest: QueryRequest{Graph: dataset.PaperQuery()}},
		{QueryRequest: QueryRequest{Graph: dataset.PaperQuery()}},
		{QueryRequest: QueryRequest{Graph: dataset.PaperQuery()}},
	}}
	if r := postJSON(t, ts.URL+"/query/batch", over, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status = %d; want 400", r.StatusCode)
	}
}

// TestBatchDefaultKindIsSkyline: omitting kind runs a skyline query.
func TestBatchDefaultKindIsSkyline(t *testing.T) {
	_, ts := newShardedTestServer(t, 2, Config{CacheSize: 8})
	var resp BatchResponse
	postJSON(t, ts.URL+"/query/batch", BatchRequest{Queries: []BatchQuery{
		{QueryRequest: QueryRequest{Graph: dataset.PaperQuery()}},
	}}, &resp)
	if len(resp.Results) != 1 || resp.Results[0].Kind != "skyline" || resp.Results[0].Skyline == nil {
		t.Fatalf("defaulted batch item = %+v; want a skyline answer", resp.Results)
	}
}
