package assign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	a, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: 0->1 (1), 1->0 (2), 2->2 (2) = 5.
	if total != 5 {
		t.Errorf("total=%v, want 5 (assignment %v)", total, a)
	}
}

func TestSolveIdentity(t *testing.T) {
	n := 6
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 10
			}
		}
	}
	a, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("total=%v", total)
	}
	for i, j := range a {
		if i != j {
			t.Errorf("assignment %v not identity", a)
			break
		}
	}
}

func TestSolveEmpty(t *testing.T) {
	a, total, err := Solve(nil)
	if err != nil || a != nil || total != 0 {
		t.Errorf("empty: %v %v %v", a, total, err)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, _, err := Solve([][]float64{{1, 2}}); err == nil {
		t.Error("non-square accepted")
	}
	if _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
	if _, _, err := Solve([][]float64{{math.Inf(1)}}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestSolveNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	_, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -10 {
		t.Errorf("total=%v, want -10", total)
	}
}

func TestSolveIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		cost := randomMatrix(n, rng)
		a, _, err := Solve(cost)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for _, j := range a {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("assignment %v is not a permutation", a)
			}
			seen[j] = true
		}
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		cost := randomMatrix(n, r)
		_, fast, err1 := Solve(cost)
		_, slow, err2 := BruteForce(cost)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(fast-slow) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceErrors(t *testing.T) {
	if _, _, err := BruteForce([][]float64{{1, 2}}); err == nil {
		t.Error("non-square accepted")
	}
}

func randomMatrix(n int, rng *rand.Rand) [][]float64 {
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = math.Floor(rng.Float64()*20) - 5
		}
	}
	return cost
}
