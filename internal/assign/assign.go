// Package assign implements minimum-cost perfect assignment on a square
// cost matrix (the Hungarian algorithm in its O(n^3) potentials/shortest
// augmenting path form). It is the substrate of the bipartite graph edit
// distance approximation (Riesen & Bunke style) in internal/ged.
package assign

import (
	"fmt"
	"math"
)

// Solve returns a minimum-cost perfect assignment for the square cost
// matrix: assignment[i] = j means row i is assigned to column j. It returns
// the total cost as well. Costs may be any finite float64 (including
// negatives). An error is returned if the matrix is not square or empty
// rows differ in length.
func Solve(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("assign: row %d has %d columns, want %d", i, len(row), n)
		}
		for j, c := range row {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, 0, fmt.Errorf("assign: non-finite cost at (%d,%d)", i, j)
			}
		}
	}

	// Jonker–Volgenant style shortest augmenting path with dual potentials.
	// 1-based arrays with a virtual row/column 0 simplify the loop.
	const inf = math.MaxFloat64
	u := make([]float64, n+1) // row potentials
	v := make([]float64, n+1) // column potentials
	p := make([]int, n+1)     // p[j]: row assigned to column j
	way := make([]int, n+1)

	// Per-augmentation scratch, reset in place each row instead of
	// reallocated: Solve runs once per bipartite GED approximation, which
	// the pruning refinement tier calls for every database graph.
	minv := make([]float64, n+1)
	used := make([]bool, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	assignment = make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][assignment[i]]
	}
	return assignment, total, nil
}

// BruteForce returns the optimal assignment by enumerating all permutations.
// It is exponential and intended only for cross-checking Solve in tests and
// for matrices with n <= 9.
func BruteForce(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("assign: row %d has %d columns, want %d", i, len(row), n)
		}
	}
	if n == 0 {
		return nil, 0, nil
	}
	best := math.MaxFloat64
	perm := make([]int, n)
	bestPerm := make([]int, n)
	used := make([]bool, n)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if i == n {
			if acc < best {
				best = acc
				copy(bestPerm, perm)
			}
			return
		}
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			perm[i] = j
			rec(i+1, acc+cost[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return bestPerm, best, nil
}
