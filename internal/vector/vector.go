// Package vector implements the candidate-generation tier below the
// bound cascade: fixed-length per-graph embeddings (a feature-hashed
// Weisfeiler–Leman color histogram concatenated with pivot-distance
// midpoints) organized in an IVF-style coarse partition — deterministic
// farthest-first centroids over the embedding space with one inverted
// list per cell.
//
// The tier never answers anything by itself. It orders the cells by
// proximity to the query embedding so the ranked scan's monotone
// threshold tightens early, and it summarizes each cell (vertex/edge
// count ranges, per-pivot distance ranges) so the query layer can
// derive an ADMISSIBLE per-cell floor on any measure: every stored
// member of the cell is provably at least that far from the query, so
// once the live threshold drops below a cell's floor the whole cell —
// and every farther cell — is skipped without touching a single
// signature. Answers stay byte-identical to a full scan because
// exclusion always carries that proof; when the proof is unavailable
// (membership changed mid-query, pivot epochs diverged) the caller
// falls back to the plain pass.
//
// Like internal/pivot, the structure is epoch-guarded and rebuilds when
// the collection doubles past the last build. Rebuilds run off the
// mutation path: Add snapshots the membership and queues the centroid
// selection for a background worker, assigns the new member to its
// nearest existing cell so it serves immediately, and the previous
// epoch's partition keeps answering until the worker swaps the new one
// in. Queries never see a half-built partition — staleness is detected
// by the generation tag and answered by the plain-scan fallback, never
// by a wrong answer.
package vector

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
)

// Defaults for Config zero values.
const (
	DefaultDims    = 32
	DefaultCells   = 16
	DefaultWLIters = 2
)

// Config tunes an Index.
type Config struct {
	// Dims is the feature-hashed WL histogram width (0 = DefaultDims).
	Dims int
	// Cells is the number of IVF cells (0 = DefaultCells). The index
	// stays dormant — Snapshot returns nil — until the collection
	// reaches Cells members.
	Cells int
	// WLIters caps the WL refinement rounds feeding the embedding
	// (0 = DefaultWLIters; refinement to stability would make embedding
	// cost grow with graph diameter for no retrieval benefit).
	WLIters int
}

func (c Config) withDefaults() Config {
	if c.Dims <= 0 {
		c.Dims = DefaultDims
	}
	if c.Cells <= 0 {
		c.Cells = DefaultCells
	}
	if c.WLIters <= 0 {
		c.WLIters = DefaultWLIters
	}
	return c
}

// member is one indexed graph: its signature (cell summaries) and the
// WL part of its embedding, both computed once at Add time.
type member struct {
	sig *measure.Signature
	wl  []float64
}

// Cell is one inverted list plus the optimistic summaries the query
// layer derives floors from. Every numeric range covers EVERY member of
// the cell, so a bound built from the favorable end of each range is a
// lower bound on any member's distance to the query.
type Cell struct {
	// Members are indices into the collection's insertion order (the
	// same order a database snapshot at the partition's generation
	// holds its graphs in).
	Members []int
	// OrderMin..SizeMax bracket the members' vertex and edge counts.
	OrderMin, OrderMax int
	SizeMin, SizeMax   int
	// PivLo[j], PivHi[j] bracket the members' certified distance
	// intervals to pivot j (selection order of the pivot epoch below).
	// Valid only when PivAll is true: every member had a published
	// column when the summaries were built.
	PivLo, PivHi []float64
	PivAll       bool
}

// Partition is the immutable query-facing snapshot of the index: the
// coarse centroids, the inverted lists with their summaries, and the
// tags that gate its use (collection generation, pivot epoch).
type Partition struct {
	// Gen is the database generation after the last membership change
	// folded in. A query may consume the partition only when its own
	// snapshot carries the same generation — otherwise the inverted
	// lists describe a different collection.
	Gen uint64
	// Epoch counts centroid rebuilds.
	Epoch uint64
	// PivotEpoch is the pivot-index selection epoch the cell summaries
	// (and embedding midpoints) were read at; 0 with no pivot index.
	// Per-pivot floors require the query's pivot bounds to carry the
	// same epoch.
	PivotEpoch uint64
	// WLDims is the width of the WL block; centroid vectors are
	// WLDims + (pivot count at build) long.
	WLDims    int
	Centroids [][]float64
	Cells     []Cell
	// N is the total member count (sum of the inverted list lengths).
	N int
}

// QueryVec assembles a query embedding in this partition's layout: the
// WL histogram followed by the pivot-distance midpoints. mids may be
// nil (no pivot bounds, or a different epoch) — the pivot block is then
// zero, which only loosens the proximity ordering, never correctness.
func (p *Partition) QueryVec(wl, mids []float64) []float64 {
	dims := p.WLDims
	if len(p.Centroids) > 0 {
		dims = len(p.Centroids[0])
	}
	out := make([]float64, dims)
	copy(out, wl)
	for i := 0; i < len(mids) && p.WLDims+i < dims; i++ {
		out[p.WLDims+i] = mids[i]
	}
	return out
}

// Nearest returns the cell indices ordered by ascending L2 distance
// between qvec and each centroid, ties by cell index — the probe order
// of a query that has no admissibility information yet.
func (p *Partition) Nearest(qvec []float64) []int {
	type cd struct {
		i int
		d float64
	}
	ds := make([]cd, len(p.Centroids))
	for i, c := range p.Centroids {
		ds[i] = cd{i: i, d: l2(qvec, c)}
	}
	for i := 1; i < len(ds); i++ { // insertion sort: cell counts are small
		for j := i; j > 0 && (ds[j].d < ds[j-1].d || (ds[j].d == ds[j-1].d && ds[j].i < ds[j-1].i)); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	out := make([]int, len(ds))
	for i, x := range ds {
		out[i] = x.i
	}
	return out
}

// CentroidDist returns the L2 distance from qvec to cell i's centroid.
func (p *Partition) CentroidDist(qvec []float64, i int) float64 {
	return l2(qvec, p.Centroids[i])
}

func l2(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	for i := n; i < len(a); i++ {
		s += a[i] * a[i]
	}
	for i := n; i < len(b); i++ {
		s += b[i] * b[i]
	}
	return math.Sqrt(s)
}

// Index maintains the embeddings and the partition for one collection.
// All methods are safe for concurrent use; mutations are expected to
// arrive synchronously from the owning database's write path (the
// generation tags rely on it).
type Index struct {
	cfg Config

	mu   sync.Mutex
	pidx *pivot.Index // optional; nil = WL-only embeddings

	order   []string
	members map[string]*member
	assign  map[string]int // name -> cell of the current epoch

	// Build state: centroids in the embedding layout of the build
	// (WL block + one coordinate per pivot in pnames order).
	centroids  [][]float64
	pnames     []string
	pivEpoch   uint64
	epoch      uint64
	selectedAt int // member count at the last rebuild

	gen uint64 // database generation after the last mutation

	// Background rebuild state: queued membership snapshots, whether the
	// worker goroutine is running, and the drain signal WaitRebuild
	// blocks on.
	jobs    []rebuildJob
	working bool
	drained *sync.Cond

	snap      *Partition
	snapDirty bool
	// snapPivEpoch/snapPivCols fingerprint the pivot columns the cached
	// snapshot summarized; background column publishes change it.
	snapPivEpoch uint64
	snapPivCols  int

	rebuilds     atomic.Int64
	rebuildNanos atomic.Int64
}

// New returns an empty index. pidx may be nil (embeddings are then the
// WL block alone) and may also be attached later via AttachPivots.
func New(cfg Config, pidx *pivot.Index) *Index {
	ix := &Index{
		cfg:     cfg.withDefaults(),
		pidx:    pidx,
		members: make(map[string]*member),
		assign:  make(map[string]int),
	}
	ix.drained = sync.NewCond(&ix.mu)
	return ix
}

// Config returns the resolved configuration.
func (ix *Index) Config() Config { return ix.cfg }

// AttachPivots wires a pivot index in after construction (EnablePivots
// called after EnableVector). The next rebuild picks its midpoints up;
// summaries refresh on the next snapshot.
func (ix *Index) AttachPivots(p *pivot.Index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.pidx = p
	ix.snapDirty = true
}

// Add registers a stored graph under the database generation its
// insertion produced. The WL block of its embedding is computed here,
// once — like the signature itself. Crossing the doubling threshold
// queues a background centroid rebuild; either way the member is
// assigned to its nearest EXISTING cell so it serves immediately — the
// old partition keeps answering until the rebuild swaps in.
func (ix *Index) Add(name string, g *graph.Graph, sig *measure.Signature, gen uint64) {
	wl := graph.WLHistogram(g, ix.cfg.WLIters, ix.cfg.Dims)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.gen = gen
	if _, dup := ix.members[name]; dup {
		return
	}
	ix.members[name] = &member{sig: sig, wl: wl}
	ix.order = append(ix.order, name)
	ix.snapDirty = true
	n := len(ix.order)
	if (ix.selectedAt == 0 && n >= ix.cfg.Cells) || (ix.selectedAt > 0 && n >= 2*ix.selectedAt) {
		ix.scheduleRebuildLocked()
	}
	if ix.centroids != nil {
		ix.assign[name] = ix.assignLocked(name)
	}
}

// rebuildJob captures the membership a centroid rebuild was triggered
// over. Member records are immutable after Add, so the worker can embed
// them without the lock; snapshotting at trigger time makes the
// selection input — and therefore the chosen centroids — independent of
// how long the job waited in the queue.
type rebuildJob struct {
	names []string
	mems  []*member
}

// scheduleRebuildLocked snapshots the current membership and queues a
// centroid re-selection. selectedAt advances at TRIGGER time, not at
// completion: the doubling test compares against the size the queued
// build will cover, so a sustained insert burst queues one build per
// doubling — O(log growth) builds total — not one per insert.
func (ix *Index) scheduleRebuildLocked() {
	job := rebuildJob{
		names: append([]string(nil), ix.order...),
		mems:  make([]*member, len(ix.order)),
	}
	for i, name := range job.names {
		job.mems[i] = ix.members[name]
	}
	ix.selectedAt = len(ix.order)
	ix.jobs = append(ix.jobs, job)
	if !ix.working {
		ix.working = true
		go ix.rebuildWorker()
	}
}

// rebuildWorker drains the rebuild queue serially. Selection runs
// outside the lock — Add, Remove, Snapshot and queries keep using the
// previous epoch's partition meanwhile — and the swap is one short
// critical section: bump the epoch, install the centroids, reassign the
// CURRENT membership (members deleted while selecting drop out, members
// added while selecting get their final cells).
func (ix *Index) rebuildWorker() {
	ix.mu.Lock()
	for len(ix.jobs) > 0 {
		job := ix.jobs[0]
		ix.jobs = ix.jobs[1:]
		pidx := ix.pidx
		ix.mu.Unlock()

		start := time.Now()
		centroids, pnames, pivEpoch := selectCentroids(job, ix.cfg, pidx)

		ix.mu.Lock()
		ix.epoch++
		ix.centroids = centroids
		ix.pnames, ix.pivEpoch = pnames, pivEpoch
		ix.assign = make(map[string]int, len(ix.order))
		for _, name := range ix.order {
			ix.assign[name] = ix.assignLocked(name)
		}
		ix.snapDirty = true
		ix.rebuilds.Add(1)
		ix.rebuildNanos.Add(int64(time.Since(start)))
	}
	ix.working = false
	ix.drained.Broadcast()
	ix.mu.Unlock()
}

// WaitRebuild blocks until every queued centroid rebuild has completed
// and swapped in. Tests, benchmarks and metrics probes use it to
// observe the post-rebuild state; serving paths never need it — a query
// that races a rebuild just keeps using the previous partition.
func (ix *Index) WaitRebuild() {
	ix.mu.Lock()
	for ix.working {
		ix.drained.Wait()
	}
	ix.mu.Unlock()
}

// Remove forgets a graph under the generation its deletion produced.
// Centroids are value copies, so no rebuild is needed — the member just
// leaves its inverted list (summaries get conservatively loose until
// the next rebuild, which is always sound).
func (ix *Index) Remove(name string, gen uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.gen = gen
	if _, ok := ix.members[name]; !ok {
		return
	}
	delete(ix.members, name)
	delete(ix.assign, name)
	for i, n := range ix.order {
		if n == name {
			ix.order = append(ix.order[:i], ix.order[i+1:]...)
			break
		}
	}
	ix.snapDirty = true
}

// embedLocked assembles a member's full embedding in the current build
// layout: the stored WL block plus the pivot-distance midpoints from
// cols (zeros for members whose column is missing or from another
// epoch).
func (ix *Index) embedLocked(m *member, cols map[string][]pivot.Entry, name string) []float64 {
	out := make([]float64, ix.cfg.Dims+len(ix.pnames))
	copy(out, m.wl)
	if cols != nil {
		if col, ok := cols[name]; ok && len(col) == len(ix.pnames) {
			for j, e := range col {
				out[ix.cfg.Dims+j] = (e.Lo + e.Hi) / 2
			}
		}
	}
	return out
}

// pivotColsLocked reads the pivot columns consistent with the CURRENT
// build layout, or nil when no pivot index is attached. Columns from an
// epoch other than the build's are rejected wholesale — midpoints from
// different pivot sets must never mix in one embedding space.
func (ix *Index) pivotColsLocked() map[string][]pivot.Entry {
	if ix.pidx == nil {
		return nil
	}
	epoch, _, cols := ix.pidx.ColumnsSnapshot()
	if epoch != ix.pivEpoch {
		return nil
	}
	return cols
}

// assignLocked returns the nearest cell for a member (ties to the
// lowest cell index).
func (ix *Index) assignLocked(name string) int {
	emb := ix.embedLocked(ix.members[name], ix.pivotColsLocked(), name)
	best, bestD := 0, math.Inf(1)
	for c, cent := range ix.centroids {
		if d := l2(emb, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// selectCentroids re-selects the coarse centroids with a deterministic
// farthest-first sweep over the job's membership snapshot (seeded by
// the oldest member, ties by insertion order — mirroring the pivot
// index's pivot selection). Lock-free: member records are immutable and
// the pivot column snapshot is itself epoch-tagged. The returned layout
// is the WL block plus one coordinate per pivot of the read epoch.
func selectCentroids(job rebuildJob, cfg Config, pidx *pivot.Index) (centroids [][]float64, pnames []string, pivEpoch uint64) {
	if len(job.names) == 0 {
		return nil, nil, 0
	}
	var cols map[string][]pivot.Entry
	if pidx != nil {
		pivEpoch, pnames, cols = pidx.ColumnsSnapshot()
	}
	embs := make([][]float64, len(job.names))
	for i := range job.names {
		emb := make([]float64, cfg.Dims+len(pnames))
		copy(emb, job.mems[i].wl)
		if col, ok := cols[job.names[i]]; ok && len(col) == len(pnames) {
			for j, e := range col {
				emb[cfg.Dims+j] = (e.Lo + e.Hi) / 2
			}
		}
		embs[i] = emb
	}
	k := cfg.Cells
	if k > len(job.names) {
		k = len(job.names)
	}
	minDist := make([]float64, len(job.names))
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	chosen := make([]bool, len(job.names))
	pick := 0
	for len(centroids) < k {
		chosen[pick] = true
		centroids = append(centroids, append([]float64(nil), embs[pick]...))
		best, bestAt := -1.0, -1
		for i := range job.names {
			if chosen[i] {
				continue
			}
			if d := l2(embs[i], embs[pick]); d < minDist[i] {
				minDist[i] = d
			}
			if minDist[i] > best {
				best, bestAt = minDist[i], i
			}
		}
		if bestAt < 0 {
			break
		}
		pick = bestAt
	}
	return centroids, pnames, pivEpoch
}

// Snapshot returns the immutable query-facing partition, rebuilding it
// lazily when membership changed or new pivot columns landed. Nil until
// the collection has reached Config.Cells members (the tier is then
// simply off — not an error, not a fallback).
func (ix *Index) Snapshot() *Partition {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.centroids == nil {
		return nil
	}
	var (
		pe   uint64
		pn   []string
		cols map[string][]pivot.Entry
	)
	if ix.pidx != nil {
		pe, pn, cols = ix.pidx.ColumnsSnapshot()
	}
	if ix.snap != nil && !ix.snapDirty && ix.snapPivEpoch == pe && ix.snapPivCols == len(cols) {
		return ix.snap
	}
	p := &Partition{
		Gen:        ix.gen,
		Epoch:      ix.epoch,
		PivotEpoch: pe,
		WLDims:     ix.cfg.Dims,
		Centroids:  ix.centroids,
		Cells:      make([]Cell, len(ix.centroids)),
		N:          len(ix.order),
	}
	np := 0
	if len(cols) > 0 {
		np = len(pn)
	}
	for c := range p.Cells {
		cell := &p.Cells[c]
		cell.PivAll = np > 0
		if np > 0 {
			cell.PivLo = make([]float64, np)
			cell.PivHi = make([]float64, np)
			for j := 0; j < np; j++ {
				cell.PivLo[j] = math.Inf(1)
				cell.PivHi[j] = math.Inf(-1)
			}
		}
	}
	for i, name := range ix.order {
		c, ok := ix.assign[name]
		if !ok || c >= len(p.Cells) {
			c = 0 // unassigned members (pre-first-build adds) pool in cell 0
		}
		cell := &p.Cells[c]
		sig := ix.members[name].sig
		if len(cell.Members) == 0 {
			cell.OrderMin, cell.OrderMax = sig.Order, sig.Order
			cell.SizeMin, cell.SizeMax = sig.Size, sig.Size
		} else {
			if sig.Order < cell.OrderMin {
				cell.OrderMin = sig.Order
			}
			if sig.Order > cell.OrderMax {
				cell.OrderMax = sig.Order
			}
			if sig.Size < cell.SizeMin {
				cell.SizeMin = sig.Size
			}
			if sig.Size > cell.SizeMax {
				cell.SizeMax = sig.Size
			}
		}
		cell.Members = append(cell.Members, i)
		if cell.PivAll {
			col, ok := cols[name]
			if !ok || len(col) != np {
				cell.PivAll = false
			} else {
				for j, e := range col {
					if e.Lo < cell.PivLo[j] {
						cell.PivLo[j] = e.Lo
					}
					if e.Hi > cell.PivHi[j] {
						cell.PivHi[j] = e.Hi
					}
				}
			}
		}
	}
	ix.snap = p
	ix.snapDirty = false
	ix.snapPivEpoch = pe
	ix.snapPivCols = len(cols)
	return p
}

// Occupancy is a point-in-time view of the partition for metrics
// exporters: cell count, indexed members, mean inverted-list length,
// and the monotone rebuild counters.
type Occupancy struct {
	Cells        int
	Members      int
	MeanList     float64
	Epoch        uint64
	Rebuilds     int64
	RebuildNanos int64
}

// Occupancy returns the current occupancy.
func (ix *Index) Occupancy() Occupancy {
	ix.mu.Lock()
	cells := len(ix.centroids)
	members := len(ix.order)
	epoch := ix.epoch
	ix.mu.Unlock()
	o := Occupancy{
		Cells:        cells,
		Members:      members,
		Epoch:        epoch,
		Rebuilds:     ix.rebuilds.Load(),
		RebuildNanos: ix.rebuildNanos.Load(),
	}
	if cells > 0 {
		o.MeanList = float64(members) / float64(cells)
	}
	return o
}
