package vector_test

import (
	"fmt"
	"testing"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
	"skygraph/internal/testutil"
	"skygraph/internal/vector"
)

// addAll registers graphs under consecutive generations starting at 1,
// the way a database insert path would, and drains the background
// rebuild queue so the caller observes the post-build state.
func addAll(ix *vector.Index, gs []*graph.Graph) {
	for i, g := range gs {
		ix.Add(g.Name(), g, measure.NewSignature(g), uint64(i+1))
	}
	ix.WaitRebuild()
}

// TestDormantUntilCells: below Config.Cells members the index has no
// partition; crossing the threshold builds one covering everything.
func TestDormantUntilCells(t *testing.T) {
	gs := testutil.SeededGraphs(1, 10)
	ix := vector.New(vector.Config{Cells: 4}, nil)
	for i, g := range gs {
		ix.Add(g.Name(), g, measure.NewSignature(g), uint64(i+1))
		if i+1 < 4 && ix.Snapshot() != nil {
			t.Fatalf("partition exists at %d members (cells=4)", i+1)
		}
	}
	ix.WaitRebuild()
	p := ix.Snapshot()
	if p == nil {
		t.Fatal("no partition after 10 members")
	}
	if p.N != 10 || p.Gen != 10 {
		t.Fatalf("partition N=%d Gen=%d, want 10/10", p.N, p.Gen)
	}
	if len(p.Centroids) != 4 || len(p.Cells) != 4 {
		t.Fatalf("got %d centroids, %d cells, want 4", len(p.Centroids), len(p.Cells))
	}
}

// TestPartitionCoversEveryMember: the inverted lists must hold every
// insertion-order index exactly once, and every cell summary must
// bracket its members' signatures — the admissibility the query layer's
// floors stand on.
func TestPartitionCoversEveryMember(t *testing.T) {
	gs := testutil.SeededGraphs(2, 25)
	ix := vector.New(vector.Config{Cells: 5}, nil)
	addAll(ix, gs)
	p := ix.Snapshot()
	if p == nil {
		t.Fatal("no partition")
	}
	seen := make(map[int]int)
	for c, cell := range p.Cells {
		for _, i := range cell.Members {
			seen[i]++
			sig := measure.NewSignature(gs[i])
			if sig.Order < cell.OrderMin || sig.Order > cell.OrderMax {
				t.Fatalf("cell %d: member %d order %d outside [%d,%d]",
					c, i, sig.Order, cell.OrderMin, cell.OrderMax)
			}
			if sig.Size < cell.SizeMin || sig.Size > cell.SizeMax {
				t.Fatalf("cell %d: member %d size %d outside [%d,%d]",
					c, i, sig.Size, cell.SizeMin, cell.SizeMax)
			}
		}
	}
	for i := range gs {
		if seen[i] != 1 {
			t.Fatalf("member %d appears %d times across cells", i, seen[i])
		}
	}
}

// TestDeterministicBuild: identical insert sequences produce identical
// centroids and cell assignments.
func TestDeterministicBuild(t *testing.T) {
	gs := testutil.SeededGraphs(3, 20)
	a := vector.New(vector.Config{Cells: 4}, nil)
	b := vector.New(vector.Config{Cells: 4}, nil)
	addAll(a, gs)
	addAll(b, gs)
	pa, pb := a.Snapshot(), b.Snapshot()
	if len(pa.Centroids) != len(pb.Centroids) {
		t.Fatalf("centroid counts differ: %d vs %d", len(pa.Centroids), len(pb.Centroids))
	}
	for c := range pa.Centroids {
		for d := range pa.Centroids[c] {
			if pa.Centroids[c][d] != pb.Centroids[c][d] {
				t.Fatalf("centroid %d dim %d differs", c, d)
			}
		}
		if fmt.Sprint(pa.Cells[c].Members) != fmt.Sprint(pb.Cells[c].Members) {
			t.Fatalf("cell %d members differ: %v vs %v", c, pa.Cells[c].Members, pb.Cells[c].Members)
		}
	}
}

// TestDoublingRebuild: the centroids re-select when the collection
// doubles past the last build, bumping the epoch.
func TestDoublingRebuild(t *testing.T) {
	gs := testutil.SeededGraphs(4, 40)
	ix := vector.New(vector.Config{Cells: 4}, nil)
	addAll(ix, gs[:10])
	e0 := ix.Snapshot().Epoch
	addAll(ix, gs[10:])
	e1 := ix.Snapshot().Epoch
	if e1 <= e0 {
		t.Fatalf("epoch did not advance across a doubling: %d -> %d", e0, e1)
	}
	if o := ix.Occupancy(); o.Rebuilds < 2 || o.Members != 40 {
		t.Fatalf("occupancy %+v, want >=2 rebuilds over 40 members", o)
	}
}

// TestRemoveKeepsIndicesConsistent: removals shrink the insertion order,
// and the next snapshot's member indices index the SHRUNK order — the
// contract the query layer's generation check relies on.
func TestRemoveKeepsIndicesConsistent(t *testing.T) {
	gs := testutil.SeededGraphs(5, 12)
	ix := vector.New(vector.Config{Cells: 3}, nil)
	addAll(ix, gs)
	gen := uint64(len(gs))
	removed := map[string]bool{gs[0].Name(): true, gs[7].Name(): true}
	for name := range removed {
		gen++
		ix.Remove(name, gen)
	}
	var live []*graph.Graph
	for _, g := range gs {
		if !removed[g.Name()] {
			live = append(live, g)
		}
	}
	p := ix.Snapshot()
	if p.Gen != gen || p.N != len(live) {
		t.Fatalf("partition Gen=%d N=%d, want %d/%d", p.Gen, p.N, gen, len(live))
	}
	seen := make(map[int]bool)
	for _, cell := range p.Cells {
		for _, i := range cell.Members {
			if i < 0 || i >= len(live) {
				t.Fatalf("member index %d out of range for %d live graphs", i, len(live))
			}
			seen[i] = true
		}
	}
	if len(seen) != len(live) {
		t.Fatalf("%d distinct member indices, want %d", len(seen), len(live))
	}
}

// TestPivotSummaries: with a fully built pivot index attached, the cell
// summaries carry per-pivot ranges (PivAll) that bracket every member's
// published column.
func TestPivotSummaries(t *testing.T) {
	gs := testutil.SeededGraphs(6, 16)
	pidx := pivot.New(pivot.Config{Pivots: 3})
	for _, g := range gs {
		pidx.Add(g.Name(), g, measure.NewSignature(g))
	}
	pidx.Wait()
	ix := vector.New(vector.Config{Cells: 4}, pidx)
	addAll(ix, gs)
	p := ix.Snapshot()
	if p == nil {
		t.Fatal("no partition")
	}
	epoch, pnames, cols := pidx.ColumnsSnapshot()
	if p.PivotEpoch != epoch {
		t.Fatalf("partition pivot epoch %d, index epoch %d", p.PivotEpoch, epoch)
	}
	for c, cell := range p.Cells {
		if len(cell.Members) == 0 {
			continue
		}
		if !cell.PivAll {
			t.Fatalf("cell %d: PivAll false with a fully built pivot index", c)
		}
		if len(cell.PivLo) != len(pnames) {
			t.Fatalf("cell %d: %d pivot ranges, want %d", c, len(cell.PivLo), len(pnames))
		}
		for _, i := range cell.Members {
			col := cols[gs[i].Name()]
			for j, e := range col {
				if e.Lo < cell.PivLo[j] || e.Hi > cell.PivHi[j] {
					t.Fatalf("cell %d pivot %d: member %s column [%v,%v] outside range [%v,%v]",
						c, j, gs[i].Name(), e.Lo, e.Hi, cell.PivLo[j], cell.PivHi[j])
				}
			}
		}
	}
}

// TestOccupancy: counters reflect the build.
func TestOccupancy(t *testing.T) {
	gs := testutil.SeededGraphs(7, 8)
	ix := vector.New(vector.Config{Cells: 4}, nil)
	addAll(ix, gs)
	o := ix.Occupancy()
	if o.Cells != 4 || o.Members != 8 || o.MeanList != 2 {
		t.Fatalf("occupancy %+v, want 4 cells / 8 members / mean 2", o)
	}
	if o.Rebuilds < 1 || o.Epoch < 1 {
		t.Fatalf("occupancy %+v, want at least one rebuild", o)
	}
}
