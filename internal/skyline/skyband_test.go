package skyline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSkybandK1IsSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randomPoints(r, 40, 3)
		return equalStrings(ids(Skyband(pts, 1)), ids(Compute(pts)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSkybandMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 60, 2)
	prev := 0
	for k := 1; k <= 5; k++ {
		cur := len(Skyband(pts, k))
		if cur < prev {
			t.Fatalf("skyband shrank from %d to %d at k=%d", prev, cur, k)
		}
		prev = cur
	}
	if got := len(Skyband(pts, len(pts)+1)); got != len(pts) {
		t.Errorf("k>n skyband has %d of %d points", got, len(pts))
	}
	if Skyband(pts, 0) != nil {
		t.Error("k=0 should return nil")
	}
}

func TestSkybandHotelsK2(t *testing.T) {
	// Hotels: skyline {H2,H4,H6}. H7 (1.2,210) is dominated only by H6 ->
	// in 2-skyband. H1 (4,150) dominated only by H2 -> in 2-skyband.
	// H3 (2.5,240) dominated by H4 (2,180)... and H2? (3,110): 3>2.5 no.
	// H5 (1.7,270) dominated by H6 (1,195) only.
	pts := hotels()
	band := ids(Skyband(pts, 2))
	want := map[string]bool{"H1": true, "H2": true, "H3": true, "H4": true, "H5": true, "H6": true, "H7": true}
	// Verify against DominationCount directly.
	counts := DominationCount(pts)
	for i, p := range pts {
		if (counts[i] < 2) != want[p.ID] {
			// Recompute expectation from counts (source of truth).
			want[p.ID] = counts[i] < 2
		}
	}
	got := map[string]bool{}
	for _, id := range band {
		got[id] = true
	}
	for id, w := range want {
		if got[id] != w {
			t.Errorf("%s: in band=%v, want %v", id, got[id], w)
		}
	}
}

func TestDominationCount(t *testing.T) {
	pts := []Point{
		{ID: "a", Vec: []float64{1, 1}},
		{ID: "b", Vec: []float64{2, 2}},
		{ID: "c", Vec: []float64{3, 3}},
	}
	counts := DominationCount(pts)
	if counts[0] != 0 || counts[1] != 1 || counts[2] != 2 {
		t.Errorf("counts=%v", counts)
	}
}

func TestLayersPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := randomPoints(r, 30, 2)
		layers := Layers(pts)
		total := 0
		for li, layer := range layers {
			total += len(layer)
			if len(layer) == 0 {
				return false
			}
			// No point in a layer may dominate another in the same layer.
			for i := range layer {
				for j := range layer {
					if i != j && Dominates(layer[i].Vec, layer[j].Vec) {
						return false
					}
				}
			}
			// Every point in layer li+1 must be dominated by someone in
			// some earlier layer.
			if li > 0 {
				for _, p := range layer {
					dominated := false
					for _, prev := range layers[li-1] {
						if Dominates(prev.Vec, p.Vec) {
							dominated = true
							break
						}
					}
					if !dominated {
						return false
					}
				}
			}
		}
		return total == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestLayersChain(t *testing.T) {
	// A totally ordered chain peels into singleton layers.
	pts := []Point{
		{ID: "a", Vec: []float64{1}},
		{ID: "b", Vec: []float64{2}},
		{ID: "c", Vec: []float64{3}},
	}
	layers := Layers(pts)
	if len(layers) != 3 {
		t.Fatalf("layers=%d", len(layers))
	}
	for i, want := range []string{"a", "b", "c"} {
		if len(layers[i]) != 1 || layers[i][0].ID != want {
			t.Errorf("layer %d=%v", i, ids(layers[i]))
		}
	}
}

func TestLayersEmpty(t *testing.T) {
	if got := Layers(nil); len(got) != 0 {
		t.Errorf("layers of empty input: %v", got)
	}
}

func randomPoints(r *rand.Rand, n, d int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		v := make([]float64, d)
		for j := range v {
			v[j] = float64(r.Intn(10))
		}
		pts[i] = Point{ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Vec: v}
	}
	return pts
}
