package skyline

// This file extends the plain skyline with two classical result-set
// controls from the skyline literature the paper builds on:
//
//   - the k-skyband: all points dominated by fewer than k others (the
//     1-skyband is exactly the skyline). Where the Section VII diversity
//     refinement shrinks a too-large skyline, the skyband relaxes a
//     too-small one.
//   - skyline layers ("onion peeling"): layer 1 is the skyline, layer 2
//     the skyline of the rest, and so on — a total stratification usable
//     for progressive result delivery.

// Skyband returns the points dominated by fewer than k other points, in
// input order. k <= 0 returns nil; k = 1 equals the skyline.
func Skyband(points []Point, k int) []Point {
	if k <= 0 {
		return nil
	}
	out := make([]Point, 0)
	for i, p := range points {
		dominators := 0
		for j, q := range points {
			if i == j {
				continue
			}
			if Dominates(q.Vec, p.Vec) {
				dominators++
				if dominators >= k {
					break
				}
			}
		}
		if dominators < k {
			out = append(out, p)
		}
	}
	return out
}

// DominationCount returns, for each point, how many other points dominate
// it (0 = skyline member).
func DominationCount(points []Point) []int {
	out := make([]int, len(points))
	for i, p := range points {
		for j, q := range points {
			if i != j && Dominates(q.Vec, p.Vec) {
				out[i]++
			}
		}
	}
	return out
}

// Layers peels the point set into skyline layers: Layers(P)[0] is the
// skyline of P, Layers(P)[1] the skyline of the remainder, etc. Every
// point appears in exactly one layer; points within a layer keep input
// order.
func Layers(points []Point) [][]Point {
	remaining := append([]Point(nil), points...)
	var layers [][]Point
	for len(remaining) > 0 {
		layer := Compute(remaining)
		layers = append(layers, layer)
		inLayer := make(map[int]bool, len(layer))
		li := 0
		var rest []Point
		for _, p := range remaining {
			if li < len(layer) && p.ID == layer[li].ID && sameVec(p.Vec, layer[li].Vec) {
				inLayer[li] = true
				li++
				continue
			}
			rest = append(rest, p)
		}
		remaining = rest
	}
	return layers
}
