// Package skyline implements d-dimensional skyline (Pareto-optimal set)
// computation in the smaller-is-better convention of the paper's
// Definition 1, together with the similarity-dominance semantics of
// Definition 12: a point p dominates q iff p <= q on every dimension and
// p < q on at least one.
//
// Three algorithms are provided and benched against each other (experiment
// E9): Block-Nested-Loop, Sort-Filter-Skyline and a divide-and-conquer
// merge. All return exactly the set of non-dominated points, preserving
// input order.
package skyline

import (
	"fmt"
	"sort"
)

// Point is one candidate with its distance vector. ID is caller-defined
// (e.g. a graph name); Vec is the GCS vector.
type Point struct {
	ID  string
	Vec []float64
}

// Dominates reports whether a dominates b (Definition 1): a <= b everywhere
// and a < b somewhere. Vectors must have equal length.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("skyline: dimension mismatch %d vs %d", len(a), len(b)))
	}
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// Algorithm computes the skyline of a point set.
type Algorithm func([]Point) []Point

// BNL is the Block-Nested-Loop algorithm: each point is compared against a
// window of currently undominated points.
func BNL(points []Point) []Point {
	var window []Point
	for _, p := range points {
		dominated := false
		keep := window[:0]
		for _, w := range window {
			if dominated {
				keep = append(keep, w)
				continue
			}
			if Dominates(w.Vec, p.Vec) {
				dominated = true
				keep = append(keep, w)
				continue
			}
			if !Dominates(p.Vec, w.Vec) {
				keep = append(keep, w)
			}
		}
		window = keep
		if !dominated {
			window = append(window, p)
		}
	}
	return reorder(points, window)
}

// SFS is Sort-Filter-Skyline: points are pre-sorted by a monotone score
// (the coordinate sum), after which a point can only be dominated by points
// appearing earlier, so one forward pass against the growing skyline
// suffices and accepted points are never evicted.
func SFS(points []Point) []Point {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sum := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return sum(points[idx[a]].Vec) < sum(points[idx[b]].Vec)
	})
	var sky []Point
	for _, i := range idx {
		p := points[i]
		dominated := false
		for _, s := range sky {
			if Dominates(s.Vec, p.Vec) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, p)
		}
	}
	return reorder(points, sky)
}

// DivideAndConquer splits the point set in half, computes each half's
// skyline recursively, and cross-filters the two partial skylines.
func DivideAndConquer(points []Point) []Point {
	return reorder(points, dac(points))
}

func dac(points []Point) []Point {
	if len(points) <= 1 {
		return points
	}
	mid := len(points) / 2
	left := dac(points[:mid])
	right := dac(points[mid:])
	var out []Point
	for _, p := range left {
		if !dominatedByAny(p, right) {
			out = append(out, p)
		}
	}
	for _, p := range right {
		if !dominatedByAny(p, left) {
			out = append(out, p)
		}
	}
	return out
}

func dominatedByAny(p Point, set []Point) bool {
	for _, s := range set {
		if Dominates(s.Vec, p.Vec) {
			return true
		}
	}
	return false
}

// reorder returns the members of sky in the order they appear in the
// original input (IDs may repeat; identity is by index lookup on pointer-
// equal vectors falling back to ID+vector equality).
func reorder(points, sky []Point) []Point {
	if sky == nil {
		return []Point{}
	}
	taken := make([]bool, len(sky))
	out := make([]Point, 0, len(sky))
	for _, p := range points {
		for i, s := range sky {
			if !taken[i] && s.ID == p.ID && sameVec(s.Vec, p.Vec) {
				out = append(out, s)
				taken[i] = true
				break
			}
		}
	}
	return out
}

func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Compute runs the default algorithm (SFS).
func Compute(points []Point) []Point { return SFS(points) }

// Incremental maintains a skyline under point insertion.
type Incremental struct {
	sky []Point
}

// Insert adds p, returning true if p enters the skyline (false if it is
// dominated). Existing members newly dominated by p are evicted.
func (inc *Incremental) Insert(p Point) bool {
	keep := inc.sky[:0]
	dominated := false
	for _, s := range inc.sky {
		if !dominated && Dominates(s.Vec, p.Vec) {
			dominated = true
		}
		if !Dominates(p.Vec, s.Vec) {
			keep = append(keep, s)
		}
	}
	if dominated {
		// p cannot dominate anyone if someone dominates p (transitivity
		// would contradict s being in the skyline), so keep == sky.
		inc.sky = inc.sky[:len(keep)]
		return false
	}
	inc.sky = append(keep, p)
	return true
}

// Skyline returns the current skyline members in insertion order.
func (inc *Incremental) Skyline() []Point {
	out := make([]Point, len(inc.sky))
	copy(out, inc.sky)
	return out
}
