package skyline

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestMergeEmpty(t *testing.T) {
	if got := Merge(nil); len(got) != 0 || got == nil {
		t.Fatalf("Merge(nil) = %v; want empty non-nil", got)
	}
	if got := Merge([][]Point{{}, {}}); len(got) != 0 {
		t.Fatalf("Merge of empties = %v; want empty", got)
	}
}

func TestMergeSinglePart(t *testing.T) {
	part := []Point{{ID: "a", Vec: []float64{1, 2}}, {ID: "b", Vec: []float64{2, 1}}}
	got := Merge([][]Point{part})
	if !reflect.DeepEqual(got, part) {
		t.Fatalf("Merge single part = %v; want %v", got, part)
	}
}

func TestMergeCrossDomination(t *testing.T) {
	// Each part is a valid local skyline (members incomparable); across
	// parts a1 dominates b1 and b2 dominates a2.
	partA := []Point{{ID: "a1", Vec: []float64{0, 5}}, {ID: "a2", Vec: []float64{5, 0}}}
	partB := []Point{{ID: "b1", Vec: []float64{1, 6}}, {ID: "b2", Vec: []float64{4, 0}}}
	got := Merge([][]Point{partA, partB})
	ids := idsOf(got)
	want := []string{"a1", "b2"}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("merged ids = %v; want %v", ids, want)
	}
}

func TestMergeKeepsEqualVectors(t *testing.T) {
	partA := []Point{{ID: "a", Vec: []float64{1, 1}}}
	partB := []Point{{ID: "b", Vec: []float64{1, 1}}}
	got := Merge([][]Point{partA, partB})
	if len(got) != 2 {
		t.Fatalf("equal vectors across partitions must both survive, got %v", got)
	}
}

// TestMergeMatchesGlobalSkyline is the divide-and-conquer identity on
// random point sets: partition arbitrarily, take local skylines, Merge,
// and compare against the direct global skyline.
func TestMergeMatchesGlobalSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		dims := 2 + rng.Intn(3)
		pts := make([]Point, n)
		for i := range pts {
			vec := make([]float64, dims)
			for d := range vec {
				vec[d] = float64(rng.Intn(6)) // small alphabet forces ties/duplicates
			}
			pts[i] = Point{ID: fmt.Sprintf("p%02d", i), Vec: vec}
		}
		nparts := 1 + rng.Intn(5)
		parts := make([][]Point, nparts)
		for i, p := range pts {
			parts[i%nparts] = append(parts[i%nparts], p)
		}
		locals := make([][]Point, nparts)
		for i := range parts {
			locals[i] = SFS(parts[i])
		}
		merged := idsOf(Merge(locals))
		global := idsOf(SFS(pts))
		sort.Strings(merged)
		sort.Strings(global)
		if !reflect.DeepEqual(merged, global) {
			t.Fatalf("trial %d: merged skyline %v != global skyline %v", trial, merged, global)
		}
	}
}

func idsOf(pts []Point) []string {
	ids := make([]string, len(pts))
	for i, p := range pts {
		ids[i] = p.ID
	}
	return ids
}
