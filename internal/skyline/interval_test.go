package skyline

import "testing"

func ip(id string, lo, hi []float64) IntervalPoint {
	return IntervalPoint{ID: id, Lo: lo, Hi: hi}
}

func TestIntervalPruneDominated(t *testing.T) {
	pts := []IntervalPoint{
		ip("near", []float64{0, 0}, []float64{1, 1}),    // pessimistic corner (1,1)
		ip("far", []float64{2, 2}, []float64{9, 9}),     // optimistic corner strictly above (1,1)
		ip("maybe", []float64{0.5, 3}, []float64{4, 4}), // beats (1,1) on dim 0, so not provably dominated
	}
	if got := IntervalPrune(pts); got != 1 {
		t.Fatalf("pruned %d, want 1", got)
	}
	if pts[0].Pruned || !pts[1].Pruned || pts[2].Pruned {
		t.Fatalf("pruned flags = %v %v %v; want only %q pruned", pts[0].Pruned, pts[1].Pruned, pts[2].Pruned, "far")
	}
}

func TestIntervalPruneTouchingBoxesSurvive(t *testing.T) {
	// Exact (degenerate) boxes with equal vectors: neither dominates the
	// other, both must survive.
	pts := []IntervalPoint{
		ip("a", []float64{1, 1}, []float64{1, 1}),
		ip("b", []float64{1, 1}, []float64{1, 1}),
	}
	if got := IntervalPrune(pts); got != 0 {
		t.Fatalf("pruned %d equal points, want 0", got)
	}
}

func TestIntervalPruneStrictOnOneDimSuffices(t *testing.T) {
	pts := []IntervalPoint{
		ip("a", []float64{1, 1}, []float64{1, 1}),
		ip("b", []float64{1, 2}, []float64{3, 3}), // lo equals a's hi on dim 0, strictly above on dim 1
	}
	if got := IntervalPrune(pts); got != 1 || !pts[1].Pruned {
		t.Fatalf("pruned=%d flags=%v,%v; want b pruned", got, pts[0].Pruned, pts[1].Pruned)
	}
}

func TestIntervalPruneKeepsPriorExclusions(t *testing.T) {
	pts := []IntervalPoint{
		ip("a", []float64{0, 0}, []float64{1, 1}),
		ip("b", []float64{5, 5}, []float64{6, 6}),
	}
	pts[1].Pruned = true // proven dominated in an earlier pass
	// a alone cannot be pruned, but b must stay pruned and count.
	if got := IntervalPrune(pts); got != 1 || !pts[1].Pruned {
		t.Fatalf("pruned=%d, b.Pruned=%v; prior exclusion must persist", got, pts[1].Pruned)
	}
}

// TestIntervalPrunePrunedFilterStillApplies: a point dominated only by
// an already-pruned point must still be pruned (dominance is transitive,
// so the pruned filter's true vector is itself dominated by a survivor
// yet still dominates the candidate).
func TestIntervalPrunePrunedFilterStillApplies(t *testing.T) {
	pts := []IntervalPoint{
		ip("best", []float64{0, 0}, []float64{1, 1}),
		ip("mid", []float64{2, 2}, []float64{3, 3}),
		ip("worst", []float64{4, 4}, []float64{9, 9}),
	}
	if got := IntervalPrune(pts); got != 2 {
		t.Fatalf("pruned %d, want 2 (mid and worst)", got)
	}
	if !pts[1].Pruned || !pts[2].Pruned {
		t.Fatalf("flags = %v %v %v", pts[0].Pruned, pts[1].Pruned, pts[2].Pruned)
	}
}
