package skyline

// Interval pruning for filter-and-refine skyline evaluation: when each
// candidate's vector is known only as a [lo, hi] box (optimistic and
// pessimistic corners, componentwise), a candidate whose optimistic
// corner is dominated by some other candidate's pessimistic corner can
// never enter the skyline — the other's true vector dominates its true
// vector no matter where inside the boxes they land. Dominance is
// transitive, so a pruned candidate is always dominated by a surviving
// one, and the skyline of the survivors' exact vectors equals the
// skyline of the full set.

// IntervalPoint is one candidate with its interval vector. Lo and Hi
// are the optimistic and pessimistic corners (Lo[d] <= true[d] <=
// Hi[d]); both must have the skyline dimensionality. Pruned is in/out:
// points arriving pruned keep that status (their exclusion is already
// proven) while still lending their pessimistic corners as filters.
type IntervalPoint struct {
	ID     string
	Lo, Hi []float64
	Pruned bool
}

// IntervalPrune marks every point that provably cannot be in the
// skyline: point i is pruned when some other point j has Hi_j <= Lo_i
// on every dimension and Hi_j < Lo_i on at least one (then j's true
// vector strictly dominates i's, Definition 1, wherever the truth lies
// inside the boxes). It returns the total number of points marked
// pruned, including ones that arrived pruned.
func IntervalPrune(pts []IntervalPoint) int {
	pruned := 0
	for i := range pts {
		if pts[i].Pruned {
			pruned++
			continue
		}
		for j := range pts {
			if j == i {
				continue
			}
			if cornerDominates(pts[j].Hi, pts[i].Lo) {
				pts[i].Pruned = true
				pruned++
				break
			}
		}
	}
	return pruned
}

// cornerDominates reports whether the pessimistic corner hi is <= the
// optimistic corner lo everywhere and strictly below somewhere —
// certain dominance of the underlying true vectors. Boxes that merely
// touch (hi == lo everywhere) do not count: the true vectors could be
// equal, and equal vectors do not dominate each other.
func cornerDominates(hi, lo []float64) bool {
	strict := false
	for d := range hi {
		if hi[d] > lo[d] {
			return false
		}
		if hi[d] < lo[d] {
			strict = true
		}
	}
	return strict
}
