package skyline

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict dim
		{[]float64{1, 2}, []float64{1, 3}, true},
		{[]float64{2, 2}, []float64{1, 1}, false},
	}
	for i, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: Dominates(%v,%v)=%v", i, c.a, c.b, got)
		}
	}
}

func TestDominatesDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

// hotels is Table I of the paper; the expected skyline is {H2, H4, H6}
// (Example 1).
func hotels() []Point {
	return []Point{
		{ID: "H1", Vec: []float64{4.0, 150}},
		{ID: "H2", Vec: []float64{3.0, 110}},
		{ID: "H3", Vec: []float64{2.5, 240}},
		{ID: "H4", Vec: []float64{2.0, 180}},
		{ID: "H5", Vec: []float64{1.7, 270}},
		{ID: "H6", Vec: []float64{1.0, 195}},
		{ID: "H7", Vec: []float64{1.2, 210}},
	}
}

func ids(ps []Point) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}

func TestHotelsExample1AllAlgorithms(t *testing.T) {
	want := []string{"H2", "H4", "H6"}
	for name, algo := range map[string]Algorithm{"BNL": BNL, "SFS": SFS, "DC": DivideAndConquer, "Compute": Compute} {
		got := ids(algo(hotels()))
		if len(got) != len(want) {
			t.Errorf("%s: skyline=%v, want %v", name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: skyline=%v, want %v", name, got, want)
				break
			}
		}
	}
}

func TestHotelsDominancePairs(t *testing.T) {
	// Example 1 states H1 is dominated by H2, and H7 by H6.
	h := hotels()
	if !Dominates(h[1].Vec, h[0].Vec) {
		t.Error("H2 should dominate H1")
	}
	if !Dominates(h[5].Vec, h[6].Vec) {
		t.Error("H6 should dominate H7")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	for _, algo := range []Algorithm{BNL, SFS, DivideAndConquer} {
		if got := algo(nil); len(got) != 0 {
			t.Error("empty input")
		}
		one := []Point{{ID: "a", Vec: []float64{1}}}
		if got := algo(one); len(got) != 1 || got[0].ID != "a" {
			t.Error("singleton input")
		}
	}
}

func TestDuplicatesBothKept(t *testing.T) {
	pts := []Point{
		{ID: "a", Vec: []float64{1, 1}},
		{ID: "b", Vec: []float64{1, 1}},
		{ID: "c", Vec: []float64{2, 2}},
	}
	for name, algo := range map[string]Algorithm{"BNL": BNL, "SFS": SFS, "DC": DivideAndConquer} {
		got := ids(algo(pts))
		if len(got) != 2 || got[0] != "a" || got[1] != "b" {
			t.Errorf("%s: duplicates handled wrong: %v", name, got)
		}
	}
}

func TestAlgorithmsAgreeOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(60)
		d := 1 + r.Intn(4)
		pts := make([]Point, n)
		for i := range pts {
			v := make([]float64, d)
			for j := range v {
				v[j] = float64(r.Intn(8)) // small ints force ties/duplicates
			}
			pts[i] = Point{ID: string(rune('a' + i%26)), Vec: v}
		}
		a := ids(BNL(pts))
		b := ids(SFS(pts))
		c := ids(DivideAndConquer(pts))
		return equalStrings(a, b) && equalStrings(b, c) && skylineCorrect(pts, BNL(pts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// skylineCorrect checks the defining property: a point is in the skyline
// iff no other point dominates it.
func skylineCorrect(all, sky []Point) bool {
	inSky := map[int]bool{}
	for i, p := range all {
		dominated := false
		for j, q := range all {
			if i != j && Dominates(q.Vec, p.Vec) {
				dominated = true
				break
			}
		}
		inSky[i] = !dominated
	}
	// Count expected vs got by multiset of IDs+vectors.
	want := 0
	for _, ok := range inSky {
		if ok {
			want++
		}
	}
	if len(sky) != want {
		return false
	}
	for _, p := range sky {
		dominated := false
		for _, q := range all {
			if Dominates(q.Vec, p.Vec) {
				dominated = true
				break
			}
		}
		if dominated {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestInputOrderPreserved(t *testing.T) {
	pts := []Point{
		{ID: "z", Vec: []float64{0, 9}},
		{ID: "m", Vec: []float64{5, 5}},
		{ID: "a", Vec: []float64{9, 0}},
	}
	for name, algo := range map[string]Algorithm{"BNL": BNL, "SFS": SFS, "DC": DivideAndConquer} {
		got := ids(algo(pts))
		want := []string{"z", "m", "a"}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: order %v, want %v", name, got, want)
				break
			}
		}
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{ID: string(rune('A' + i%26)), Vec: []float64{float64(rng.Intn(6)), float64(rng.Intn(6))}}
		}
		var inc Incremental
		for _, p := range pts {
			inc.Insert(p)
		}
		if !equalStrings(ids(inc.Skyline()), ids(BNL(pts))) {
			t.Fatalf("incremental %v != batch %v", ids(inc.Skyline()), ids(BNL(pts)))
		}
	}
}

func TestIncrementalInsertReturn(t *testing.T) {
	var inc Incremental
	if !inc.Insert(Point{ID: "a", Vec: []float64{2, 2}}) {
		t.Error("first insert rejected")
	}
	if inc.Insert(Point{ID: "b", Vec: []float64{3, 3}}) {
		t.Error("dominated insert accepted")
	}
	if !inc.Insert(Point{ID: "c", Vec: []float64{1, 1}}) {
		t.Error("dominating insert rejected")
	}
	sky := inc.Skyline()
	if len(sky) != 1 || sky[0].ID != "c" {
		t.Errorf("skyline=%v", ids(sky))
	}
}
