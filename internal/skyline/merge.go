package skyline

// Merge combines per-partition skylines into the skyline of the union,
// via the divide-and-conquer identity skyline(A ∪ B) =
// crossfilter(skyline(A), skyline(B)). Each part must be the skyline of
// its own partition (mutually non-dominated points); the parts are
// folded together pairwise, cross-filtering each side against the
// other's survivors. Points with identical vectors never dominate each
// other, so duplicates across partitions are all kept — exactly as a
// global skyline over the union would.
//
// The result preserves part-then-index order; callers needing a global
// order (e.g. database insertion order) sort afterwards.
func Merge(parts [][]Point) []Point {
	acc := []Point{}
	for _, part := range parts {
		acc = crossFilter(acc, part)
	}
	return acc
}

// crossFilter merges two skylines: a point survives iff no point of the
// other side dominates it. Within a side points are already mutually
// non-dominated, so only cross comparisons are needed.
func crossFilter(a, b []Point) []Point {
	if len(a) == 0 {
		return append([]Point{}, b...)
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Point, 0, len(a)+len(b))
	for _, p := range a {
		if !dominatedByAny(p, b) {
			out = append(out, p)
		}
	}
	for _, p := range b {
		if !dominatedByAny(p, a) {
			out = append(out, p)
		}
	}
	return out
}
