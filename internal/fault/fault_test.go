package fault

import (
	"errors"
	"syscall"
	"testing"
	"time"
)

func TestDisarmedPassesThrough(t *testing.T) {
	defer Reset()
	if act := Hit(WALAppend); act != nil {
		t.Fatalf("disarmed Hit returned %+v", act)
	}
	if err := Hit(WALFsync).Do(); err != nil {
		t.Fatalf("disarmed Do returned %v", err)
	}
	if Armed() != 0 {
		t.Fatalf("Armed() = %d, want 0", Armed())
	}
}

func TestErrorMode(t *testing.T) {
	defer Reset()
	Set(WALAppend, Config{Mode: ModeError, Err: syscall.ENOSPC})
	act := Hit(WALAppend)
	if act == nil {
		t.Fatal("armed Hit returned nil")
	}
	if err := act.Do(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Do() = %v, want ENOSPC", err)
	}
	if act.Short != -1 {
		t.Fatalf("error mode Short = %d, want -1", act.Short)
	}
	// Other points stay disarmed.
	if Hit(WALFsync) != nil {
		t.Fatal("unrelated point fired")
	}
}

func TestDefaultErrIsEIO(t *testing.T) {
	defer Reset()
	Set(WALFsync, Config{Mode: ModeError})
	if err := Hit(WALFsync).Do(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Do() = %v, want EIO default", err)
	}
}

func TestAfterAndLimit(t *testing.T) {
	defer Reset()
	Set("p", Config{Mode: ModeError, After: 2, Limit: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if Hit("p") != nil {
			fired++
			if i < 2 {
				t.Fatalf("fired at hit %d despite after=2", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3 (limit)", fired)
	}
	st := Snapshot()
	if len(st) != 1 || st[0].Hits != 10 || st[0].Fires != 3 {
		t.Fatalf("Snapshot() = %+v, want hits=10 fires=3", st)
	}
}

func TestProbabilityIsSeededAndBounded(t *testing.T) {
	defer Reset()
	run := func() int {
		Set("p", Config{Mode: ModeError, P: 0.5, Seed: 42})
		fired := 0
		for i := 0; i < 1000; i++ {
			if Hit("p") != nil {
				fired++
			}
		}
		return fired
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("seeded runs differ: %d vs %d", a, b)
	}
	if a < 350 || a > 650 {
		t.Fatalf("p=0.5 fired %d/1000, far from expectation", a)
	}
}

func TestShortWriteMode(t *testing.T) {
	defer Reset()
	Set(WALAppend, Config{Mode: ModeShortWrite, ShortBytes: 7})
	act := Hit(WALAppend)
	if act == nil || act.Short != 7 {
		t.Fatalf("short-write action = %+v, want Short=7", act)
	}
	if err := act.Do(); err == nil {
		t.Fatal("short-write Do() returned nil error")
	}
}

func TestLatencyMode(t *testing.T) {
	defer Reset()
	Set("p", Config{Mode: ModeLatency, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := Hit("p").Do(); err != nil {
		t.Fatalf("latency Do() = %v, want nil", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency hit returned after %v, want >= 10ms", d)
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	Set("p", Config{Mode: ModePanic})
	defer func() {
		if recover() == nil {
			t.Fatal("panic mode did not panic")
		}
	}()
	_ = Hit("p").Do()
}

func TestClearAndReset(t *testing.T) {
	defer Reset()
	Set("a", Config{Mode: ModeError})
	Set("b", Config{Mode: ModeError})
	if Armed() != 2 {
		t.Fatalf("Armed() = %d, want 2", Armed())
	}
	Clear("a")
	if Armed() != 1 || Hit("a") != nil {
		t.Fatal("Clear did not disarm")
	}
	Reset()
	if Armed() != 0 || Hit("b") != nil {
		t.Fatal("Reset did not disarm")
	}
}

func TestConfigureSpec(t *testing.T) {
	defer Reset()
	spec := "wal/append=error:err=ENOSPC,after=10,p=0.5,seed=7; wal/fsync=latency:delay=50ms;wal/rotate=short:bytes=3,limit=2"
	if err := Configure(spec); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	st := Snapshot()
	if len(st) != 3 {
		t.Fatalf("Snapshot() has %d points, want 3: %+v", len(st), st)
	}
	byName := map[string]PointStats{}
	for _, p := range st {
		byName[p.Name] = p
	}
	if p := byName[WALAppend]; p.Mode != "error" || p.After != 10 || p.P != 0.5 {
		t.Fatalf("wal/append = %+v", p)
	}
	if p := byName[WALFsync]; p.Mode != "latency" || p.DelayMS != 50 {
		t.Fatalf("wal/fsync = %+v", p)
	}
	if p := byName[WALRotate]; p.Mode != "short" || p.Limit != 2 {
		t.Fatalf("wal/rotate = %+v", p)
	}
	// Per-point off disarms only the named point.
	if err := Configure("wal/fsync=off"); err != nil {
		t.Fatalf("Configure(wal/fsync=off): %v", err)
	}
	if Armed() != 2 {
		t.Fatalf("per-point off left %d points armed, want 2", Armed())
	}
	if err := Configure("off"); err != nil || Armed() != 0 {
		t.Fatalf("Configure(off): err=%v armed=%d", err, Armed())
	}
}

func TestConfigureRejectsBadSpecs(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		"nomode",
		"p=explode",
		"p=error:after=x",
		"p=error:p=1.5",
		"p=latency",
		"p=error:wat=1",
	} {
		if err := Configure(spec); err == nil {
			t.Fatalf("Configure(%q) accepted", spec)
		}
	}
	if Armed() != 0 {
		t.Fatalf("failed Configure left %d points armed", Armed())
	}
}

func TestRegisteredError(t *testing.T) {
	defer Reset()
	sentinel := errors.New("registered sentinel")
	RegisterError("sentinel", sentinel)
	if err := Configure("p=error:err=sentinel"); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	if err := Hit("p").Do(); !errors.Is(err, sentinel) {
		t.Fatalf("Do() = %v, want registered sentinel", err)
	}
}

// TestDisarmedZeroAlloc is the no-op guard: the disarmed hot path must
// not allocate (and, per the benchmark below, must stay ~one atomic
// load). Instrumented production code relies on this.
func TestDisarmedZeroAlloc(t *testing.T) {
	Reset()
	if n := testing.AllocsPerRun(1000, func() {
		if Hit(WALAppend) != nil {
			t.Fatal("fired while disarmed")
		}
	}); n != 0 {
		t.Fatalf("disarmed Hit allocates %.1f per run, want 0", n)
	}
}

// BenchmarkHitDisarmed pins the cost of an instrumented call site with
// no faults armed — the "failpoints compile to (almost) nothing" guard.
// Compare with BenchmarkHitArmedPassThrough for the armed-but-passing
// cost.
func BenchmarkHitDisarmed(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Hit(WALAppend) != nil {
			b.Fatal("fired")
		}
	}
}

func BenchmarkHitArmedPassThrough(b *testing.B) {
	defer Reset()
	Set(WALAppend, Config{Mode: ModeError, After: 1 << 62})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Hit(WALAppend) != nil {
			b.Fatal("fired")
		}
	}
}
