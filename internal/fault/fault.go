// Package fault is a process-wide failpoint registry: named points in
// the storage and serving code where tests (and the -fault flag or the
// daemon's test-only admin endpoint) can inject disk errors, latency,
// short writes or panics into live traffic — the tooling that lets the
// crash-safety and graceful-degradation claims be provoked rather than
// argued.
//
// A failpoint is disarmed until explicitly configured. The disarmed
// hot path is a single atomic load shared by every point (see Hit), so
// instrumented code pays nothing measurable in production builds; the
// benchmark and allocation guard in fault_test.go pin that down.
//
// Arming supports the shapes chaos testing needs:
//
//   - mode: return an error (EIO, ENOSPC, ...), perform a short write,
//     sleep (latency), or panic;
//   - after=N: pass through the first N hits, then start firing —
//     "the disk fills up mid-run";
//   - limit=M: fire at most M times, then pass through again — "the
//     glitch clears";
//   - p=0.3: once past After, fire with probability p from a seeded
//     stream, so probabilistic chaos runs stay reproducible.
//
// Specs are parsed from strings (flag / HTTP admin):
//
//	wal/append=error:err=ENOSPC,after=10,p=0.5;wal/fsync=latency:delay=50ms
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// The failpoints the storage stack exposes. Sites are free to define
// more; the registry treats names as opaque.
const (
	// WALAppend fires inside wal.Log.Append, before the record frame is
	// written. Short-write mode writes a partial frame first.
	WALAppend = "wal/append"
	// WALFsync fires before every WAL fsync (per-append under
	// SyncAlways, ticker flushes, rotation seals, Close).
	WALFsync = "wal/fsync"
	// WALRotate fires when the active segment is sealed and the next one
	// opened.
	WALRotate = "wal/rotate"
	// SnapshotWrite fires inside wal.WriteSnapshot, before the snapshot
	// file is produced.
	SnapshotWrite = "wal/snapshot-write"
	// ManifestReplace fires inside wal.WriteManifest, before the
	// manifest is atomically replaced.
	ManifestReplace = "wal/manifest-replace"
	// StoreInsert and StoreDelete fire in the write-ahead store wrapper
	// (gdb.FaultStore) before the mutation reaches the WAL at all.
	StoreInsert = "store/insert"
	StoreDelete = "store/delete"
)

// Mode selects what an armed failpoint does when it fires.
type Mode int

const (
	// ModeError makes the hit site fail with Config.Err.
	ModeError Mode = iota
	// ModeShortWrite makes the hit site write only Config.ShortBytes
	// bytes of its payload and then fail with Config.Err (sites without
	// a payload treat it as ModeError).
	ModeShortWrite
	// ModeLatency makes the hit site sleep Config.Delay and proceed.
	ModeLatency
	// ModePanic makes the hit site panic (simulated crash mid-write).
	ModePanic
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeShortWrite:
		return "short"
	case ModeLatency:
		return "latency"
	case ModePanic:
		return "panic"
	}
	return "unknown"
}

// Config arms one failpoint.
type Config struct {
	Mode Mode
	// Err is the injected error for ModeError/ModeShortWrite (default
	// EIO).
	Err error
	// ShortBytes is how many payload bytes a ModeShortWrite hit site
	// writes before failing (clamped to the payload).
	ShortBytes int
	// Delay is slept before the hit proceeds (ModeLatency) or fails
	// (other modes, when set) — slow-then-failing disks exist too.
	Delay time.Duration
	// After arms the point only after this many hits have passed
	// through (0 = fire immediately).
	After uint64
	// Limit caps the number of fires; past it the point passes through
	// again (0 = unlimited).
	Limit uint64
	// P is the per-hit fire probability once past After (0 or 1 = fire
	// every time). Draws come from a stream seeded with Seed so runs
	// are reproducible.
	P float64
	// Seed seeds the probability stream (only meaningful with 0<P<1).
	Seed int64
}

// Action is what an armed failpoint asks the hit site to do. Sites
// receive nil from Hit when the point passes through.
type Action struct {
	// Err is the error to fail with (nil for pure latency).
	Err error
	// Short is >= 0 when the site should write only Short bytes of its
	// payload before failing (-1 = no short write).
	Short int
	// Delay is slept by Do before failing/proceeding.
	Delay  time.Duration
	panics bool
}

// Do performs the non-payload parts of the action — sleep, panic — and
// returns the error to fail with (nil means proceed). Nil-safe, so
// `if err := fault.Hit(p).Do(); err != nil` works at sites that do not
// support short writes.
func (a *Action) Do() error {
	if a == nil {
		return nil
	}
	if a.Delay > 0 {
		time.Sleep(a.Delay)
	}
	if a.panics {
		panic("fault: injected panic")
	}
	return a.Err
}

// point is one registered failpoint.
type point struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	hits  uint64 // hits while armed (pass-throughs included)
	fires uint64
}

var (
	// armed counts configured points; the disarmed fast path of Hit is
	// this single load.
	armed atomic.Int64

	mu     sync.Mutex
	points = map[string]*point{}

	// errNames maps spec error names to injectable errors. Built-ins
	// cover the disk-failure vocabulary; packages can register their own
	// (e.g. wal registers "corrupt").
	errNamesMu sync.Mutex
	errNames   = map[string]error{
		"EIO":    syscall.EIO,
		"ENOSPC": syscall.ENOSPC,
		"EROFS":  syscall.EROFS,
		"EBADF":  syscall.EBADF,
	}
)

// RegisterError makes err injectable under name in specs (e.g.
// "err=corrupt"). Later registrations of the same name win.
func RegisterError(name string, err error) {
	errNamesMu.Lock()
	defer errNamesMu.Unlock()
	errNames[name] = err
}

// namedError resolves a spec error name; unknown names become opaque
// injected errors so specs never fail on the error vocabulary.
func namedError(name string) error {
	errNamesMu.Lock()
	defer errNamesMu.Unlock()
	if err, ok := errNames[name]; ok {
		return err
	}
	return errors.New("fault: injected " + name)
}

// Hit checks the named failpoint. It returns nil when the point is
// disarmed or passes through; otherwise the Action the site must apply.
// The disarmed fast path is one atomic load — no map lookup, no lock,
// no allocation.
func Hit(name string) *Action {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return nil
	}
	return p.fire()
}

// fire applies the arming rules for one hit.
func (p *point) fire() *Action {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits++
	if p.hits <= p.cfg.After {
		return nil
	}
	if p.cfg.Limit > 0 && p.fires >= p.cfg.Limit {
		return nil
	}
	if p.cfg.P > 0 && p.cfg.P < 1 && p.rng.Float64() >= p.cfg.P {
		return nil
	}
	p.fires++
	act := &Action{Err: p.cfg.Err, Short: -1, Delay: p.cfg.Delay}
	switch p.cfg.Mode {
	case ModeLatency:
		act.Err = nil
	case ModePanic:
		act.panics = true
	case ModeShortWrite:
		act.Short = p.cfg.ShortBytes
	}
	return act
}

// Set arms (or re-arms) the named failpoint.
func Set(name string, cfg Config) {
	if cfg.Err == nil {
		cfg.Err = syscall.EIO
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Clear disarms the named failpoint (no-op when not armed).
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint. Tests defer it so armed points never
// leak across test cases.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int64(len(points)))
	points = map[string]*point{}
}

// Armed returns the number of configured failpoints.
func Armed() int { return int(armed.Load()) }

// PointStats is one failpoint's configuration and counters, for the
// serving layer's stats/metrics and the admin endpoint.
type PointStats struct {
	Name  string `json:"name"`
	Mode  string `json:"mode"`
	Error string `json:"error,omitempty"`
	// Hits counts checks since arming (pass-throughs included); Fires
	// counts hits that actually injected.
	Hits  uint64 `json:"hits"`
	Fires uint64 `json:"fires"`
	// Spec echoes the arming shape.
	After   uint64  `json:"after,omitempty"`
	Limit   uint64  `json:"limit,omitempty"`
	P       float64 `json:"p,omitempty"`
	DelayMS float64 `json:"delay_ms,omitempty"`
}

// Snapshot returns every armed failpoint's stats, sorted by name.
func Snapshot() []PointStats {
	mu.Lock()
	defer mu.Unlock()
	out := make([]PointStats, 0, len(points))
	for name, p := range points {
		p.mu.Lock()
		st := PointStats{
			Name:    name,
			Mode:    p.cfg.Mode.String(),
			Hits:    p.hits,
			Fires:   p.fires,
			After:   p.cfg.After,
			Limit:   p.cfg.Limit,
			P:       p.cfg.P,
			DelayMS: float64(p.cfg.Delay.Microseconds()) / 1000,
		}
		if p.cfg.Mode == ModeError || p.cfg.Mode == ModeShortWrite {
			st.Error = p.cfg.Err.Error()
		}
		p.mu.Unlock()
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TotalFires sums fires across all armed points (the serving layer's
// skygraph_fault_injected_total).
func TotalFires() uint64 {
	var n uint64
	for _, st := range Snapshot() {
		n += st.Fires
	}
	return n
}

// Configure parses and applies a spec string:
//
//	point=mode[:key=value[,key=value...]][;point=mode...]
//
// Modes: error, short, latency, panic. Keys: err (EIO, ENOSPC, EROFS,
// EBADF, corrupt, or any name), bytes (short-write payload bytes),
// delay (Go duration), after, limit, p, seed. An empty spec is a no-op;
// "off" disarms everything, "point=off" disarms one point while the
// rest stay armed.
func Configure(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	if spec == "off" {
		Reset()
		return nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, mode, ok := strings.Cut(part, "="); ok && strings.TrimSpace(mode) == "off" {
			Clear(strings.TrimSpace(name))
			continue
		}
		name, cfg, err := parseOne(part)
		if err != nil {
			return err
		}
		Set(name, cfg)
	}
	return nil
}

// parseOne parses a single point=mode[:opts] clause.
func parseOne(part string) (string, Config, error) {
	name, rest, ok := strings.Cut(part, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return "", Config{}, fmt.Errorf("fault: bad spec %q (want point=mode[:opts])", part)
	}
	modeStr, opts, _ := strings.Cut(rest, ":")
	var cfg Config
	switch strings.TrimSpace(modeStr) {
	case "error":
		cfg.Mode = ModeError
	case "short":
		cfg.Mode = ModeShortWrite
	case "latency":
		cfg.Mode = ModeLatency
	case "panic":
		cfg.Mode = ModePanic
	default:
		return "", Config{}, fmt.Errorf("fault: unknown mode %q in %q (want error, short, latency or panic)", modeStr, part)
	}
	if opts != "" {
		for _, kv := range strings.Split(opts, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return "", Config{}, fmt.Errorf("fault: bad option %q in %q", kv, part)
			}
			var err error
			switch k {
			case "err":
				cfg.Err = namedError(v)
			case "bytes":
				cfg.ShortBytes, err = strconv.Atoi(v)
			case "delay":
				cfg.Delay, err = time.ParseDuration(v)
			case "after":
				cfg.After, err = strconv.ParseUint(v, 10, 64)
			case "limit":
				cfg.Limit, err = strconv.ParseUint(v, 10, 64)
			case "p":
				cfg.P, err = strconv.ParseFloat(v, 64)
			case "seed":
				cfg.Seed, err = strconv.ParseInt(v, 10, 64)
			default:
				return "", Config{}, fmt.Errorf("fault: unknown option %q in %q", k, part)
			}
			if err != nil {
				return "", Config{}, fmt.Errorf("fault: bad value for %q in %q: %v", k, part, err)
			}
		}
	}
	if (cfg.Mode == ModeLatency) && cfg.Delay <= 0 {
		return "", Config{}, fmt.Errorf("fault: latency mode needs delay= in %q", part)
	}
	if cfg.P < 0 || cfg.P > 1 {
		return "", Config{}, fmt.Errorf("fault: p must be in [0,1] in %q", part)
	}
	return name, cfg, nil
}
