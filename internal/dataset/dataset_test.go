package dataset

import (
	"math"
	"testing"

	"skygraph/internal/diversity"
	"skygraph/internal/ged"
	"skygraph/internal/graph"
	"skygraph/internal/mcs"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
)

func TestHotelsSkylineExample1(t *testing.T) {
	got := skyline.Compute(Hotels())
	if len(got) != len(HotelsSkyline) {
		t.Fatalf("skyline size %d, want %d", len(got), len(HotelsSkyline))
	}
	for i, id := range HotelsSkyline {
		if got[i].ID != id {
			t.Errorf("skyline[%d]=%s, want %s", i, got[i].ID, id)
		}
	}
}

// TestFig1Examples234 recomputes Examples 2, 3 and 4 of the paper on the
// reconstructed Fig. 1 pair with the real engines.
func TestFig1Examples234(t *testing.T) {
	g1, g2 := Fig1Pair()
	if g1.Size() != 6 || g2.Size() != 6 {
		t.Fatalf("sizes %d,%d, want 6,6", g1.Size(), g2.Size())
	}
	// The stated edit script transforms g1 into g2.
	transformed, err := graph.ApplyScript(g1, Fig1Script())
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Isomorphic(transformed, g2) {
		t.Fatalf("Fig1Script does not produce g2:\n%s\n%s", transformed, g2)
	}
	// Example 2: DistEd(g1,g2) = 4.
	if d := ged.Distance(g1, g2); d != 4 {
		t.Errorf("DistEd=%v, want 4", d)
	}
	// Example 3: |mcs| = 4 and DistMcs = 0.33.
	if m := mcs.Size(g1, g2); m != 4 {
		t.Errorf("|mcs|=%d, want 4", m)
	}
	s := measure.Compute(g1, g2, measure.Options{})
	if got := Round2((measure.DistMcs{}).FromStats(s)); got != 0.33 {
		t.Errorf("DistMcs=%v, want 0.33", got)
	}
	// Example 4: DistGu = 0.50.
	if got := Round2((measure.DistGu{}).FromStats(s)); got != 0.50 {
		t.Errorf("DistGu=%v, want 0.50", got)
	}
}

func TestPaperDBSizes(t *testing.T) {
	db := PaperDB()
	q := PaperQuery()
	if q.Size() != PaperQuerySize {
		t.Errorf("|q|=%d, want %d", q.Size(), PaperQuerySize)
	}
	for i, g := range db {
		if g.Size() != PaperSizes[i] {
			t.Errorf("|%s|=%d, want %d", g.Name(), g.Size(), PaperSizes[i])
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
		if !g.IsConnected() {
			t.Errorf("%s disconnected", g.Name())
		}
	}
}

// TestPaperTable2Mcs recomputes Table II with the exact MCS engine.
func TestPaperTable2Mcs(t *testing.T) {
	db := PaperDB()
	q := PaperQuery()
	for i, g := range db {
		if got := mcs.Size(g, q); got != PaperMcs[i] {
			t.Errorf("|mcs(%s,q)|=%d, want %d", g.Name(), got, PaperMcs[i])
		}
	}
}

// TestPaperTable3GCS recomputes every row of Table III with the exact GED
// and MCS engines and compares at the paper's 2-decimal precision.
func TestPaperTable3GCS(t *testing.T) {
	db := PaperDB()
	q := PaperQuery()
	want := PaperTable3()
	for i, g := range db {
		vec := measure.ComputeGCS(g, q, measure.Options{})
		for d := 0; d < 3; d++ {
			if got := Round2(vec[d]); math.Abs(got-want[i].Vec[d]) > 1e-9 {
				t.Errorf("%s dim %d: %v, want %v", g.Name(), d, got, want[i].Vec[d])
			}
		}
	}
}

func TestPaperG7IsSupergraphOfQuery(t *testing.T) {
	db := PaperDB()
	q := PaperQuery()
	if !graph.IsSupergraphOf(db[6], q) {
		t.Error("g7 should be a supergraph of q (Section VI)")
	}
	for i, g := range db[:6] {
		if graph.IsSupergraphOf(g, q) {
			t.Errorf("g%d unexpectedly a supergraph of q", i+1)
		}
	}
}

// TestPaperGSS recomputes GSS(D,q) = {g1,g4,g5,g7} end to end from graphs.
func TestPaperGSS(t *testing.T) {
	db := PaperDB()
	q := PaperQuery()
	pts := make([]skyline.Point, len(db))
	for i, g := range db {
		pts[i] = skyline.Point{ID: g.Name(), Vec: measure.ComputeGCS(g, q, measure.Options{})}
	}
	got := skyline.Compute(pts)
	if len(got) != len(GSSExpected) {
		t.Fatalf("GSS size %d, want %d: %v", len(got), len(GSSExpected), got)
	}
	for i, id := range GSSExpected {
		if got[i].ID != id {
			t.Errorf("GSS[%d]=%s, want %s", i, got[i].ID, id)
		}
	}
	// Section VI's domination witnesses.
	vec := map[string][]float64{}
	for _, p := range pts {
		vec[p.ID] = p.Vec
	}
	for loser, winner := range DominatedBy {
		if !skyline.Dominates(vec[winner], vec[loser]) {
			t.Errorf("%s should dominate %s", winner, loser)
		}
	}
}

// TestPaperDiversity reruns the Section VII refinement on the Table IV
// pairwise fixture: the winner must be {g1, g4} with val 5.
func TestPaperDiversity(t *testing.T) {
	m := PaperPairwise()
	best, all, err := diversity.Exhaustive(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("candidates=%d, want 6 (Table IV)", len(all))
	}
	if PaperPairwiseIDs[best.Members[0]] != DiversityWinner[0] ||
		PaperPairwiseIDs[best.Members[1]] != DiversityWinner[1] {
		t.Errorf("winner=%v", best.Members)
	}
	if best.Val != 5 {
		t.Errorf("val=%d, want 5", best.Val)
	}
}

func TestPaperTopKMissesG3(t *testing.T) {
	// Section VI: with single-measure top-3 by DistEd, g3 is returned even
	// though g5 dominates it — the skyline approach excludes g3.
	db := PaperDB()
	q := PaperQuery()
	type scored struct {
		id string
		d  float64
	}
	var byEd []scored
	for _, g := range db {
		byEd = append(byEd, scored{g.Name(), ged.Distance(g, q)})
	}
	// g4 (2) and g3, g5 (3) are the unique top-3 by DistEd.
	top := map[string]bool{}
	for _, s := range byEd {
		if s.d <= 3 {
			top[s.id] = true
		}
	}
	if !top["g3"] {
		t.Error("top-3 by DistEd should include g3 (the paper's point)")
	}
	inGSS := map[string]bool{}
	for _, id := range GSSExpected {
		inGSS[id] = true
	}
	if inGSS["g3"] {
		t.Error("g3 must not be in the skyline")
	}
}

func TestMoleculeDBDeterministic(t *testing.T) {
	a := MoleculeDB(5, 6, 10, 42)
	b := MoleculeDB(5, 6, 10, 42)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("generation not deterministic at %d", i)
		}
		if a[i].Order() < 6 || a[i].Order() > 10 {
			t.Errorf("order %d out of range", a[i].Order())
		}
	}
	c := MoleculeDB(5, 6, 10, 43)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical databases")
	}
}

func TestNoisyQueries(t *testing.T) {
	db := MoleculeDB(4, 6, 8, 7)
	qs := NoisyQueries(db, 3, 2, 11)
	if len(qs) != 3 {
		t.Fatalf("count=%d", len(qs))
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Error(err)
		}
		if !q.IsConnected() {
			t.Error("noisy query disconnected")
		}
	}
}

func TestMoleculeDBPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MoleculeDB(1, 5, 4, 1)
}
