package dataset

import (
	"bytes"
	"os"
	"testing"

	"skygraph/internal/graph"
)

// TestGoldenPaperLGF pins the reconstructed paper dataset to the committed
// testdata/paper.lgf fixture: any accidental change to the reconstruction
// (which would silently alter the reproduced tables) fails here. The file
// holds, in order: q, g1..g7, fig1-g1, fig1-g2.
func TestGoldenPaperLGF(t *testing.T) {
	f, err := os.Open("testdata/paper.lgf")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	golden, err := graph.ReadLGF(f)
	if err != nil {
		t.Fatal(err)
	}
	var want []*graph.Graph
	want = append(want, PaperQuery())
	want = append(want, PaperDB()...)
	f1, f2 := Fig1Pair()
	want = append(want, f1, f2)
	if len(golden) != len(want) {
		t.Fatalf("golden holds %d graphs, want %d", len(golden), len(want))
	}
	for i, g := range want {
		if !golden[i].Equal(g) {
			t.Errorf("graph %d (%s) drifted from golden fixture:\ngolden: %s\n   now: %s",
				i, g.Name(), golden[i], g)
		}
	}
}

// TestGoldenValidates double-checks every fixture graph passes Validate
// (the same file ships as example input for cmd/gss).
func TestGoldenValidates(t *testing.T) {
	data, err := os.ReadFile("testdata/paper.lgf")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := graph.ReadLGF(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range parsed {
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
	}
}
