// Package dataset ships the paper's worked examples as fixtures plus
// synthetic workload generators for the experiments the paper promises.
//
// The HAL text of the paper carries every number of Tables I–V but not the
// figure drawings, so the graphs of Fig. 1 and Fig. 3 are *reconstructed*
// from the constraints stated in the text (see DESIGN.md §3):
//
//   - Fig1Pair reproduces Examples 2–4 exactly: DistEd = 4 via the stated
//     edit script {edge deletion, edge relabeling, vertex relabeling, edge
//     insertion}, |mcs| = 4, DistMcs = 0.33, DistGu = 0.50.
//   - PaperDB/PaperQuery reproduce Tables II and III exactly: each database
//     graph is a labeled edit of the 6-edge query such that the real GED
//     and MCS engines recompute the published |mcs(gi,q)| and
//     (DistEd, DistMcs, DistGu) rows. Distinct vertex labels pin the
//     optimal correspondences, which is what makes the reconstruction
//     provable rather than approximate.
//   - PaperPairwise decodes Table IV into the pairwise distance matrix over
//     the skyline members {g1,g4,g5,g7}, driving the Section VII
//     reproduction (Tables IV and V).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"skygraph/internal/diversity"
	"skygraph/internal/graph"
	"skygraph/internal/skyline"
)

// Hotels returns Table I of the paper as 2-dimensional skyline points
// (price in euros, distance to the beach in km). Example 1's skyline is
// {H2, H4, H6}.
func Hotels() []skyline.Point {
	return []skyline.Point{
		{ID: "H1", Vec: []float64{4.0, 150}},
		{ID: "H2", Vec: []float64{3.0, 110}},
		{ID: "H3", Vec: []float64{2.5, 240}},
		{ID: "H4", Vec: []float64{2.0, 180}},
		{ID: "H5", Vec: []float64{1.7, 270}},
		{ID: "H6", Vec: []float64{1.0, 195}},
		{ID: "H7", Vec: []float64{1.2, 210}},
	}
}

// HotelsSkyline is Example 1's expected result.
var HotelsSkyline = []string{"H2", "H4", "H6"}

// Fig1Pair returns a reconstruction of the Fig. 1 graphs g1, g2 used by
// Examples 2–4: both have 6 edges, the optimal edit script from g1 to g2 is
// one edge deletion, one edge relabeling, one vertex relabeling and one
// edge insertion (DistEd = 4), and |mcs(g1,g2)| = 4 (the path spanning
// vertices 0–4), so DistMcs = 1 − 4/6 ≈ 0.33 and DistGu = 1 − 4/8 = 0.50.
func Fig1Pair() (g1, g2 *graph.Graph) {
	g1 = graph.New("fig1-g1")
	for _, l := range []string{"A", "B", "C", "D", "E", "G"} {
		g1.AddVertex(l)
	}
	g1.MustAddEdge(0, 1, "x")
	g1.MustAddEdge(1, 2, "x")
	g1.MustAddEdge(2, 3, "x")
	g1.MustAddEdge(3, 4, "x")
	g1.MustAddEdge(4, 5, "x")
	g1.MustAddEdge(0, 2, "x")

	// g2 = g1 after: delete edge {0,2}; relabel edge {4,5} to y; relabel
	// vertex 5 to H; insert edge {1,3}.
	g2 = graph.New("fig1-g2")
	for _, l := range []string{"A", "B", "C", "D", "E", "H"} {
		g2.AddVertex(l)
	}
	g2.MustAddEdge(0, 1, "x")
	g2.MustAddEdge(1, 2, "x")
	g2.MustAddEdge(2, 3, "x")
	g2.MustAddEdge(3, 4, "x")
	g2.MustAddEdge(4, 5, "y")
	g2.MustAddEdge(1, 3, "x")
	return g1, g2
}

// Fig1Script is the paper's Example 2 edit sequence transforming g1 into
// g2 (for the reconstruction above).
func Fig1Script() []graph.EditOp {
	return []graph.EditOp{
		graph.DeleteEdge{U: 0, V: 2},
		graph.RelabelEdgeOp{U: 4, V: 5, Label: "y"},
		graph.RelabelVertexOp{V: 5, Label: "H"},
		graph.InsertEdge{U: 1, V: 3, Label: "x"},
	}
}

// paperQueryBase builds the 7-vertex, 6-edge path query q with distinct
// vertex labels a..g and uniform edge label "s".
func paperQueryBase(name string) *graph.Graph {
	g := graph.New(name)
	for _, l := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		g.AddVertex(l)
	}
	for i := 0; i < 6; i++ {
		g.MustAddEdge(i, i+1, "s")
	}
	return g
}

// PaperQuery returns the reconstructed Section VI query graph q (|q| = 6).
func PaperQuery() *graph.Graph { return paperQueryBase("q") }

// PaperDB returns the reconstructed Section VI database D = {g1..g7}. The
// sizes are the paper's (6,7,7,6,8,9,10) and each graph's exact
// |mcs(gi,q)| and GED(gi,q) equal Table II / Table III:
//
//	g1: |g|=6  mcs=4 ged=4    g5: |g|=8  mcs=5 ged=3
//	g2: |g|=7  mcs=4 ged=4    g6: |g|=9  mcs=5 ged=4
//	g3: |g|=7  mcs=4 ged=3    g7: |g|=10 mcs=6 ged=4 (g7 ⊃ q)
//	g4: |g|=6  mcs=3 ged=2
func PaperDB() []*graph.Graph {
	// g1: delete edge {0,1}; insert chord {0,2}; relabel edge {5,6} to t;
	// relabel vertex 6 to z. Common path 1-2-3-4-5 keeps 4 edges.
	g1 := paperQueryBase("g1")
	g1.RemoveEdge(0, 1)
	g1.MustAddEdge(0, 2, "s")
	g1.RelabelEdge(5, 6, "t")
	g1.RelabelVertex(6, "z")

	// g2: relabel edges {0,1} and {5,6} to t; insert chord {0,3}; relabel
	// vertex 0 to y. 4 ops, common run of 4 edges, size 7.
	g2 := paperQueryBase("g2")
	g2.RelabelEdge(0, 1, "t")
	g2.RelabelEdge(5, 6, "t")
	g2.MustAddEdge(0, 3, "s")
	g2.RelabelVertex(0, "y")

	// g3: like g2 without the vertex relabel. 3 ops, mcs 4, size 7.
	g3 := paperQueryBase("g3")
	g3.RelabelEdge(0, 1, "t")
	g3.RelabelEdge(5, 6, "t")
	g3.MustAddEdge(0, 3, "s")

	// g4: relabel edges {1,2} and {5,6} to t. 2 ops; the longest common run
	// is edges {2,3},{3,4},{4,5}: mcs 3, size 6.
	g4 := paperQueryBase("g4")
	g4.RelabelEdge(1, 2, "t")
	g4.RelabelEdge(5, 6, "t")

	// g5: insert chords {0,2} and {1,3}; relabel edge {5,6} to t. 3 ops,
	// mcs 5, size 8.
	g5 := paperQueryBase("g5")
	g5.MustAddEdge(0, 2, "s")
	g5.MustAddEdge(1, 3, "s")
	g5.RelabelEdge(5, 6, "t")

	// g6: insert chords {0,2},{1,3},{2,4}; relabel edge {5,6} to t. 4 ops,
	// mcs 5, size 9.
	g6 := paperQueryBase("g6")
	g6.MustAddEdge(0, 2, "s")
	g6.MustAddEdge(1, 3, "s")
	g6.MustAddEdge(2, 4, "s")
	g6.RelabelEdge(5, 6, "t")

	// g7: insert chords {0,2},{1,3},{2,4},{3,5}. 4 ops, q ⊂ g7, mcs 6,
	// size 10.
	g7 := paperQueryBase("g7")
	g7.MustAddEdge(0, 2, "s")
	g7.MustAddEdge(1, 3, "s")
	g7.MustAddEdge(2, 4, "s")
	g7.MustAddEdge(3, 5, "s")

	return []*graph.Graph{g1, g2, g3, g4, g5, g6, g7}
}

// PaperSizes is the |gi| row of Section VI.
var PaperSizes = []int{6, 7, 7, 6, 8, 9, 10}

// PaperMcs is Table II: |mcs(gi, q)| for i = 1..7.
var PaperMcs = []int{4, 4, 4, 3, 5, 5, 6}

// PaperGED is the DistEd(gi, q) column of Table III.
var PaperGED = []float64{4, 4, 3, 2, 3, 4, 4}

// PaperQuerySize is |q|.
const PaperQuerySize = 6

// PaperTable3 returns Table III as published (values rounded to two
// decimals): the GCS vectors (DistEd, DistMcs, DistGu) of g1..g7 against q.
func PaperTable3() []skyline.Point {
	return []skyline.Point{
		{ID: "g1", Vec: []float64{4, 0.33, 0.50}},
		{ID: "g2", Vec: []float64{4, 0.43, 0.56}},
		{ID: "g3", Vec: []float64{3, 0.43, 0.56}},
		{ID: "g4", Vec: []float64{2, 0.50, 0.67}},
		{ID: "g5", Vec: []float64{3, 0.38, 0.44}},
		{ID: "g6", Vec: []float64{4, 0.44, 0.50}},
		{ID: "g7", Vec: []float64{4, 0.40, 0.40}},
	}
}

// GSSExpected is the graph similarity skyline of Section VI:
// GSS(D,q) = {g1, g4, g5, g7}.
var GSSExpected = []string{"g1", "g4", "g5", "g7"}

// DominatedBy records the domination witnesses stated in Section VI.
var DominatedBy = map[string]string{"g2": "g7", "g3": "g5", "g6": "g1"}

// DiversityWinner is the Section VII result: 𝕊 = S1 = {g1, g4} for k = 2.
var DiversityWinner = []string{"g1", "g4"}

// PaperPairwise decodes Table IV into the pairwise distance matrix over the
// skyline members in order (g1, g4, g5, g7) and dimensions
// (DistNEd, DistMcs, DistGu): the diversity vector of each 2-subset in
// Table IV is exactly the pairwise distance of its two members.
func PaperPairwise() *diversity.Matrix {
	m := diversity.NewMatrix(4, 3)
	set := func(i, j int, v ...float64) {
		for d, x := range v {
			m.Set(d, i, j, x)
		}
	}
	set(0, 1, 0.86, 0.67, 0.80) // S1 = {g1,g4}
	set(0, 2, 0.83, 0.50, 0.60) // S2 = {g1,g5}
	set(0, 3, 0.87, 0.60, 0.67) // S3 = {g1,g7}
	set(1, 2, 0.80, 0.62, 0.73) // S4 = {g4,g5}
	set(1, 3, 0.83, 0.70, 0.77) // S5 = {g4,g7}
	set(2, 3, 0.75, 0.50, 0.61) // S6 = {g5,g7}
	return m
}

// PaperPairwiseIDs names the rows/columns of PaperPairwise.
var PaperPairwiseIDs = []string{"g1", "g4", "g5", "g7"}

// Round2 rounds to two decimals, the precision of the paper's tables.
func Round2(x float64) float64 { return math.Round(x*100) / 100 }

// MoleculeDB generates a deterministic database of n molecule-like graphs
// with orders drawn uniformly from [minV, maxV].
func MoleculeDB(n, minV, maxV int, seed int64) []*graph.Graph {
	if minV < 1 || maxV < minV {
		panic(fmt.Sprintf("dataset: bad order range [%d,%d]", minV, maxV))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, n)
	for i := range out {
		g := graph.Molecule(minV+rng.Intn(maxV-minV+1), rng)
		g.SetName(fmt.Sprintf("m%03d", i))
		out[i] = g
	}
	return out
}

// RewiredClusters generates a deterministic database of clusters * per
// molecule-like graphs: each cluster is a random seed molecule (orders
// drawn from [minV, maxV]) plus per-1 REWIRED variants within 1..ops
// edge relocations of it (graph.Rewire — edges moved, labels and sizes
// untouched). Every graph in a cluster shares the seed's exact label
// histograms, so the histogram edit-distance bound between cluster
// mates is 0 no matter how far apart they really are: signature
// filters are blind inside clusters, and only a structural index (the
// metric pivot tier) can separate them — the isomer-database regime.
// The returned slice is deterministically shuffled so insertion order
// carries no cluster locality. Names are c<cluster>m<member>.
func RewiredClusters(clusters, per, minV, maxV, ops int, seed int64) []*graph.Graph {
	if minV < 1 || maxV < minV {
		panic(fmt.Sprintf("dataset: bad order range [%d,%d]", minV, maxV))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, 0, clusters*per)
	for c := 0; c < clusters; c++ {
		root := graph.Molecule(minV+rng.Intn(maxV-minV+1), rng)
		root.SetName(fmt.Sprintf("c%02dm00", c))
		out = append(out, root)
		for i := 1; i < per; i++ {
			g := graph.Rewire(root, 1+rng.Intn(ops), rng)
			g.SetName(fmt.Sprintf("c%02dm%02d", c, i))
			out = append(out, g)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// NoisyQueries derives query graphs from randomly chosen database members
// by applying noiseOps random edit operations each, the standard way to
// build similarity-search workloads with controlled noise.
func NoisyQueries(db []*graph.Graph, count, noiseOps int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, count)
	for i := range out {
		base := db[rng.Intn(len(db))]
		q := graph.Mutate(base, noiseOps, graph.MoleculeAlphabet.Atoms, graph.MoleculeAlphabet.Bonds, rng)
		q.SetName(fmt.Sprintf("q%03d", i))
		out[i] = q
	}
	return out
}
