package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// histogram is the storage behind a Histogram child: per-bucket atomic
// counts (the last slot is the implicit +Inf bucket), plus the running
// sum and count. Observations are lock-free; renders read whatever is
// there — each atomic is individually consistent, which is all the
// Prometheus scrape model asks for.
type histogram struct {
	bounds []float64       // strictly increasing upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; counts[len(bounds)] is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	// Bucket le=b counts observations v <= b: the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram is a cumulative histogram of observations.
type Histogram struct{ h *histogram }

// Observe records one observation.
func (h Histogram) Observe(v float64) { h.h.observe(v) }

// Sum returns the running sum of observed values.
func (h Histogram) Sum() float64 { return math.Float64frombits(h.h.sum.Load()) }

// Count returns the number of observations.
func (h Histogram) Count() uint64 { return h.h.count.Load() }

// Buckets returns the bucket upper bounds (excluding the implicit +Inf
// bucket) and the per-bucket (non-cumulative) counts, the last entry
// being the +Inf bucket's.
func (h Histogram) Buckets() (bounds []float64, counts []uint64) {
	bounds = append([]float64(nil), h.h.bounds...)
	counts = make([]uint64, len(h.h.counts))
	for i := range h.h.counts {
		counts[i] = h.h.counts[i].Load()
	}
	return bounds, counts
}

// ExpBuckets returns n strictly increasing bucket bounds starting at
// start and multiplying by factor: start, start*factor, ... — the
// standard shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets is the default request-latency bucket layout:
// 0.5ms to ~8.2s in powers of two (seconds).
func DefLatencyBuckets() []float64 { return ExpBuckets(0.0005, 2, 15) }
