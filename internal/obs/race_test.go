package obs

import (
	"io"
	"strconv"
	"sync"
	"testing"
)

// TestConcurrentObserveRender hammers every metric kind from many
// goroutines while other goroutines render and register, so the race
// detector (the CI race job runs this package) gets a chance to object
// to any unsynchronized access, and the final counts prove no update
// was lost.
func TestConcurrentObserveRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "x")
	cv := r.CounterVec("kinds_total", "x", "kind")
	g := r.Gauge("depth", "x")
	h := r.Histogram("lat", "x", ExpBuckets(1, 2, 10))
	hv := r.HistogramVec("latv", "x", ExpBuckets(1, 2, 10), "kind")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := strconv.Itoa(w % 3)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				cv.With(kind).Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 700))
				hv.With(kind).Observe(float64(i % 700))
			}
		}(w)
	}
	// Renderers and late registrations run concurrently with the writers.
	for rdr := 0; rdr < 4; rdr++ {
		wg.Add(1)
		go func(rdr int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := r.WriteText(io.Discard); err != nil {
					t.Errorf("render: %v", err)
					return
				}
			}
			r.Gauge("late_"+strconv.Itoa(rdr), "registered mid-flight").Set(1)
		}(rdr)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter lost updates: got %g, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram lost updates: got %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge should balance to 0, got %g", got)
	}
	var total float64
	for k := 0; k < 3; k++ {
		total += cv.With(strconv.Itoa(k)).Value()
	}
	if total != workers*perWorker {
		t.Errorf("vec counter lost updates: got %g, want %d", total, workers*perWorker)
	}
}
