// Package obs is skygraph's dependency-free observability core: a
// concurrency-safe metrics registry of counters, gauges and cumulative
// histograms that renders the Prometheus text exposition format. It is
// the instrumentation seam shared by the serving layer
// (internal/server), the query engine (internal/gdb) and the pivot
// index (internal/pivot); no external client library is pulled in.
//
// Metrics are registered once (registration panics on invalid names,
// duplicate names, or kind mismatches — all programmer errors) and
// observed lock-free on the hot path: scalar cells are atomic float64
// bits, histogram buckets are atomic counters. Rendering takes a
// consistent-enough snapshot without blocking writers.
//
// Labelled families hand out children on demand:
//
//	reqs := reg.CounterVec("http_requests_total", "Requests served.", "endpoint", "code")
//	reqs.With("/query/skyline", "200").Inc()
//
// Callback metrics (GaugeFunc / CounterFunc and the vec WithFunc
// variants) read their value at render time — the natural fit for
// occupancy numbers another subsystem already maintains (cache sizes,
// shard populations, runtime stats).
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the metric family type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry holds metric families in registration order (the render
// order, so text output is deterministic).
type Registry struct {
	mu     sync.RWMutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with its children (one per label-value
// combination; exactly one unlabelled child for plain metrics).
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]*child
}

// child is one concrete series: either a scalar cell (atomic float64
// bits, or a callback) or a histogram.
type child struct {
	labelValues []string
	bits        atomic.Uint64
	fn          func() float64
	hist        *histogram
}

func (c *child) value() float64 {
	if c.fn != nil {
		return c.fn()
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *child) add(v float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (c *child) set(v float64) { c.bits.Store(math.Float64bits(v)) }

// register creates (or fails on) a family. All registration errors are
// programmer errors and panic.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels ...string) *family {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", name))
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// childKey joins label values into the children map key. \xff never
// appears in valid UTF-8 label text, so the join is unambiguous.
func childKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	if f.kind == KindHistogram {
		c.hist = newHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

// sortedChildren snapshots the children in deterministic (label value)
// order for rendering.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	f.mu.RUnlock()
	sort.Strings(keys)
	out := make([]*child, 0, len(keys))
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, k := range keys {
		if c, ok := f.children[k]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Counter is a monotonically increasing value.
type Counter struct{ c *child }

// Inc adds one.
func (c Counter) Inc() { c.c.add(1) }

// Add adds v, which must be non-negative (counters are monotone).
func (c Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decrement")
	}
	c.c.add(v)
}

// Value returns the current count.
func (c Counter) Value() float64 { return c.c.value() }

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set stores v.
func (g Gauge) Set(v float64) { g.c.set(v) }

// Add adds v (negative to subtract).
func (g Gauge) Add(v float64) { g.c.add(v) }

// Inc adds one.
func (g Gauge) Inc() { g.c.add(1) }

// Dec subtracts one.
func (g Gauge) Dec() { g.c.add(-1) }

// Value returns the current value.
func (g Gauge) Value() float64 { return g.c.value() }

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values (created on
// first use).
func (v CounterVec) With(values ...string) Counter { return Counter{v.f.child(values)} }

// WithFunc installs a callback child: its value is read at render time.
// The callback must be monotone non-decreasing to honor counter
// semantics.
func (v CounterVec) WithFunc(fn func() float64, values ...string) { v.f.child(values).fn = fn }

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v GaugeVec) With(values ...string) Gauge { return Gauge{v.f.child(values)} }

// WithFunc installs a callback child: its value is read at render time.
func (v GaugeVec) WithFunc(fn func() float64, values ...string) { v.f.child(values).fn = fn }

// Counter registers and returns an unlabelled counter.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{r.register(name, help, KindCounter, nil).child(nil)}
}

// CounterFunc registers a counter whose value is read from fn at render
// time. fn must be monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, KindCounter, nil).child(nil).fn = fn
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.register(name, help, KindCounter, nil, labels...)}
}

// Gauge registers and returns an unlabelled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{r.register(name, help, KindGauge, nil).child(nil)}
}

// GaugeFunc registers a gauge whose value is read from fn at render
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, nil).child(nil).fn = fn
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.register(name, help, KindGauge, nil, labels...)}
}

// Histogram registers and returns an unlabelled histogram with the
// given bucket upper bounds (nil = DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	f := r.register(name, help, KindHistogram, checkBuckets(name, buckets))
	return Histogram{f.child(nil).hist}
}

// HistogramVec registers a labelled histogram family with the given
// bucket upper bounds (nil = DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	return HistogramVec{r.register(name, help, KindHistogram, checkBuckets(name, buckets), labels...)}
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v HistogramVec) With(values ...string) Histogram { return Histogram{v.f.child(values).hist} }

func checkBuckets(name string, buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefLatencyBuckets()
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], 1) {
		// The +Inf bucket is implicit; an explicit one would duplicate it.
		buckets = buckets[:len(buckets)-1]
	}
	return append([]float64(nil), buckets...)
}
