package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families in registration order,
// children in sorted label-value order.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	fams := append([]*family(nil), r.fams...)
	r.mu.RUnlock()
	for _, f := range fams {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, c := range children {
			if f.kind == KindHistogram {
				writeHistogram(bw, f, c)
				continue
			}
			bw.WriteString(f.name)
			writeLabels(bw, f.labels, c.labelValues, "", "")
			bw.WriteByte(' ')
			bw.WriteString(formatValue(c.value()))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram child: cumulative _bucket series
// with an le label, then _sum and _count.
func writeHistogram(bw *bufio.Writer, f *family, c *child) {
	h := c.hist
	cum := uint64(0)
	for i := 0; i <= len(h.bounds); i++ {
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatValue(h.bounds[i])
		}
		cum += h.counts[i].Load()
		bw.WriteString(f.name)
		bw.WriteString("_bucket")
		writeLabels(bw, f.labels, c.labelValues, "le", le)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(f.name)
	bw.WriteString("_sum")
	writeLabels(bw, f.labels, c.labelValues, "", "")
	bw.WriteByte(' ')
	bw.WriteString(formatValue(Histogram{h}.Sum()))
	bw.WriteByte('\n')
	bw.WriteString(f.name)
	bw.WriteString("_count")
	writeLabels(bw, f.labels, c.labelValues, "", "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(h.count.Load(), 10))
	bw.WriteByte('\n')
}

// writeLabels renders {a="x",b="y"} (nothing when there are no labels),
// appending the extra pair — the histogram le — when extraName != "".
func writeLabels(bw *bufio.Writer, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	bw.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(n)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(values[i]))
		bw.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(extraName)
		bw.WriteString(`="`)
		bw.WriteString(extraValue)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// Handler returns an http.Handler serving the registry in the text
// exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
