package obs

import (
	"strings"
	"testing"
)

// TestWriteTextGolden pins the exact Prometheus text rendering of one
// registry: family order is registration order, children sort by label
// values, histograms emit cumulative buckets plus _sum/_count.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.")
	c.Add(3)
	v := r.CounterVec("pairs_total", "Pair evaluations.", "kind", "outcome")
	v.With("skyline", "evaluated").Add(7)
	v.With("range", "pruned").Inc()
	g := r.Gauge("inflight", "In-flight requests.")
	g.Set(2)
	g.Dec()
	r.GaugeFunc("shard_graphs", "Graphs per shard.", func() float64 { return 42 })
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 0.5, 1})
	h.Observe(0.05)
	h.Observe(0.5) // boundary: lands in le="0.5"
	h.Observe(3)   // past the last bound: +Inf only

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total 3
# HELP pairs_total Pair evaluations.
# TYPE pairs_total counter
pairs_total{kind="range",outcome="pruned"} 1
pairs_total{kind="skyline",outcome="evaluated"} 7
# HELP inflight In-flight requests.
# TYPE inflight gauge
inflight 1
# HELP shard_graphs Graphs per shard.
# TYPE shard_graphs gauge
shard_graphs 42
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="0.5"} 2
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 3.55
latency_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("rendered text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("weird", "Help with \\ backslash\nand newline.", "l")
	v.With("a\"b\\c\nd").Set(1)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `# HELP weird Help with \\ backslash\nand newline.`) {
		t.Errorf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, `weird{l="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", got)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok_total", "x")
	mustPanic("duplicate", func() { r.Gauge("ok_total", "x") })
	mustPanic("bad metric name", func() { r.Counter("bad-name", "x") })
	mustPanic("bad label name", func() { r.CounterVec("ok2_total", "x", "bad-label") })
	mustPanic("counter decrement", func() { r.Counter("ok3_total", "x").Add(-1) })
	mustPanic("label arity", func() { r.CounterVec("ok4_total", "x", "a").With("v1", "v2") })
	mustPanic("unsorted buckets", func() { r.Histogram("h1", "x", []float64{1, 1}) })
	mustPanic("empty buckets", func() { r.Histogram("h2", "x", []float64{}) })
}

func TestCounterFuncAndVecFunc(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("cb_total", "callback", func() float64 { n++; return n })
	gv := r.GaugeVec("occ", "occupancy", "shard")
	gv.WithFunc(func() float64 { return 7 }, "0")
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "cb_total 42") {
		t.Errorf("callback counter not rendered:\n%s", got)
	}
	if !strings.Contains(got, `occ{shard="0"} 7`) {
		t.Errorf("callback gauge child not rendered:\n%s", got)
	}
}
