package obs

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to a bucket's upper bound lands in that bucket (le is <=), one
// just above it lands in the next, and anything past the last bound
// lands in the implicit +Inf bucket only.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "x", []float64{1, 2, 4})
	cases := []struct {
		v    float64
		want int // bucket index; 3 = +Inf
	}{
		{0, 0}, {1, 0}, {1.0000001, 1}, {2, 1}, {3, 2}, {4, 2}, {4.5, 3}, {math.Inf(1), 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	_, counts := h.Buckets()
	wantCounts := make([]uint64, 4)
	for _, c := range cases {
		wantCounts[c.want]++
	}
	for i := range counts {
		if counts[i] != wantCounts[i] {
			t.Errorf("bucket %d: got %d observations, want %d (counts %v)", i, counts[i], wantCounts[i], counts)
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("Count() = %d, want %d", h.Count(), len(cases))
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d: got %g, want %g", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ExpBuckets(0, ...) should panic")
		}
	}()
	ExpBuckets(0, 2, 4)
}

// TestExplicitInfBucketDropped checks an explicit trailing +Inf bound
// is folded into the implicit one instead of duplicating it.
func TestExplicitInfBucketDropped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inf", "x", []float64{1, math.Inf(1)})
	h.Observe(5)
	bounds, counts := h.Buckets()
	if len(bounds) != 1 || len(counts) != 2 {
		t.Fatalf("bounds %v counts %v: want one finite bound and an implicit +Inf", bounds, counts)
	}
	if counts[1] != 1 {
		t.Errorf("observation above the finite bound should land in +Inf, got counts %v", counts)
	}
}

func TestDefLatencyBucketsShape(t *testing.T) {
	b := DefLatencyBuckets()
	if len(b) == 0 || b[0] != 0.0005 {
		t.Fatalf("unexpected default buckets %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("default buckets not increasing at %d: %v", i, b)
		}
	}
	if last := b[len(b)-1]; last < 5 || last > 20 {
		t.Errorf("default buckets should top out at a few seconds, got %g", last)
	}
}
