// Package mcs computes the maximum common subgraph of two labeled graphs in
// the sense of the paper's Definition 7: the largest *connected* subgraph of
// g1 that is subgraph-isomorphic to g2. Because every similarity measure in
// the paper consumes |mcs| = the number of common *edges* (Definitions
// 9–10), the search maximizes the number of common edges.
//
// Three engines are provided:
//
//   - Exact: a McGregor-style branch-and-bound over vertex correspondences
//     that grows a connected common edge subgraph (the default for the
//     paper-scale graphs).
//   - Greedy: a randomized best-first heuristic with restarts, for large
//     inputs.
//   - Clique-based induced MCS lives in internal/product as an ablation.
package mcs

import (
	"math/rand"
	"sync"

	"skygraph/internal/graph"
)

// Mapping is a common-subgraph witness: pairs of corresponding vertices
// (U in g1, V in g2) and the number of common edges they realize.
type Mapping struct {
	Pairs []Pair
	Edges int
}

// Pair couples vertex U of g1 with vertex V of g2.
type Pair struct{ U, V int }

// Options tunes the exact search.
type Options struct {
	// MaxNodes caps the number of branch-and-bound node expansions; 0 means
	// unlimited. When the cap is hit the search degrades gracefully into an
	// anytime algorithm and returns the best mapping found so far together
	// with Exhausted=false.
	MaxNodes int64
	// Floor, when non-nil, is a precomputed GreedyLB(g1, g2) mapping to
	// use as the capped-search floor instead of recomputing it — the
	// filter-and-refine pipeline already paid for it in the refinement
	// tier. Must come from the same pair and orientation.
	Floor *Mapping
	// Need, when > 0, turns the search into a decision procedure for
	// "|mcs| >= Need": branches that cannot reach Need common edges are
	// pruned regardless of the incumbent, and the search stops the
	// moment any mapping reaches Need edges. If the pruned space is
	// exhausted without the cap firing and without reaching Need, the
	// result reports ProvedBelowNeed — a certificate that |mcs| < Need.
	// The returned Mapping is then only decision-grade (the aggressive
	// pruning may have skipped the true maximum), so Exhausted is never
	// set when Need > 0; ranked queries use this to discard candidates
	// whose distance provably exceeds the current threshold, re-running
	// a plain search for candidates that survive.
	Need int
}

// Result reports the outcome of an exact search.
type Result struct {
	Mapping Mapping
	// Exhausted is true when the search space was fully explored, i.e. the
	// mapping is provably maximum. Never set when Options.Need > 0: the
	// decision-grade pruning forfeits maximality.
	Exhausted bool
	// ProvedBelowNeed is true when the Need-pruned search space was
	// fully explored without any mapping reaching Options.Need common
	// edges: a certificate that |mcs| < Need. Only possible when
	// Options.Need > 0 and the node cap did not fire.
	ProvedBelowNeed bool
	// Nodes is the number of search-tree expansions performed.
	Nodes int64
}

// Size returns |mcs(g1,g2)| — the number of edges of a maximum common
// connected subgraph — using the exact engine with no node cap.
func Size(g1, g2 *graph.Graph) int {
	return Exact(g1, g2, Options{}).Mapping.Edges
}

// Exact runs the branch-and-bound search and returns the best mapping.
// When the node cap truncates the search, the result is additionally
// floored by the deterministic GreedyLB mapping — like ged.Exact
// degrading to its bipartite upper bound, the capped search never
// returns a worse witness than the cheap greedy one. Bound-driven
// pruning in internal/gdb relies on this floor: GreedyLB is then a
// valid lower bound on the value Exact reports, capped or not.
func Exact(g1, g2 *graph.Graph, opts Options) Result {
	// Search from the smaller graph for a smaller branching factor.
	orig1, orig2 := g1, g2
	swapped := false
	if g1.Order() > g2.Order() {
		g1, g2 = g2, g1
		swapped = true
	}
	s := searcherPool.Get().(*searcher)
	s.g1, s.g2, s.maxNodes = g1, g2, opts.MaxNodes
	s.need = opts.Need
	s.run()
	m := Mapping{Pairs: s.bestPairs, Edges: s.bestEdges}
	res := Result{Exhausted: !s.capped && opts.Need == 0, Nodes: s.nodes}
	if opts.Need > 0 {
		res.ProvedBelowNeed = !s.capped && !s.decided
	}
	s.release()
	if swapped {
		for i := range m.Pairs {
			m.Pairs[i].U, m.Pairs[i].V = m.Pairs[i].V, m.Pairs[i].U
		}
	}
	if !res.Exhausted {
		lb := opts.Floor
		if lb == nil {
			v := GreedyLB(orig1, orig2)
			lb = &v
		}
		if lb.Edges > m.Edges {
			m = *lb
		}
	}
	res.Mapping = m
	return res
}

type searcher struct {
	g1, g2   *graph.Graph
	maxNodes int64
	nodes    int64
	capped   bool
	need     int  // decision threshold (0 = plain maximization)
	decided  bool // a mapping with >= need edges was found

	m1 []int // g1 vertex -> g2 vertex or -1
	m2 []int // g2 vertex -> g1 vertex or -1

	// e1, e2 cache graph.Edges() once per search: bound() consults the
	// edge lists on every expansion and Edges() allocates per call.
	e1, e2 []graph.Edge

	curPairs  []Pair
	curEdges  int
	bestPairs []Pair
	bestEdges int
}

// searcherPool recycles searcher scratch (mapping arrays, cached edge
// lists, the current-pairs stack) across Exact calls; pair evaluation
// runs one Exact per database graph, so the churn adds up.
var searcherPool = sync.Pool{New: func() any { return &searcher{} }}

// release resets the searcher (dropping references into the graphs and
// the escaped best mapping) and returns it to the pool.
func (s *searcher) release() {
	s.g1, s.g2 = nil, nil
	s.nodes, s.capped = 0, false
	s.need, s.decided = 0, false
	s.curPairs = s.curPairs[:0]
	s.curEdges = 0
	s.bestPairs, s.bestEdges = nil, 0
	s.e1, s.e2 = nil, nil
	searcherPool.Put(s)
}

// resizeNeg returns buf resized to n, reusing its backing array when
// large enough, with every element set to -1.
func resizeNeg(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = -1
	}
	return buf
}

func (s *searcher) run() {
	n1, n2 := s.g1.Order(), s.g2.Order()
	if n1 == 0 || n2 == 0 {
		return
	}
	s.m1 = resizeNeg(s.m1, n1)
	s.m2 = resizeNeg(s.m2, n2)
	s.e1, s.e2 = s.g1.Edges(), s.g2.Edges()
	// Try every label-compatible seed pair. To avoid rediscovering the same
	// subgraph from different seeds, seeds are processed in order and a
	// later seed's search forbids earlier seed u-vertices as members:
	// any connected common subgraph has a minimal g1-vertex, so rooting the
	// enumeration at that vertex covers all candidates exactly once.
	for u := 0; u < n1 && !s.capped && !s.decided; u++ {
		for v := 0; v < n2 && !s.capped && !s.decided; v++ {
			if s.g1.VertexLabel(u) != s.g2.VertexLabel(v) {
				continue
			}
			s.m1[u], s.m2[v] = v, u
			s.curPairs = append(s.curPairs, Pair{U: u, V: v})
			s.extend(u)
			s.curPairs = s.curPairs[:0]
			s.m1[u], s.m2[v] = -1, -1
		}
	}
	if s.bestPairs == nil && n1 > 0 && n2 > 0 {
		// No label-compatible vertex pair at all: empty common subgraph.
		s.bestPairs = []Pair{}
	}
}

// minSeed is the g1 vertex of the first pair (the root); extensions only use
// g1 vertices greater than the root to break symmetry across seeds.
func (s *searcher) extend(root int) {
	if s.maxNodes > 0 && s.nodes >= s.maxNodes {
		s.capped = true
		return
	}
	s.nodes++
	if s.curEdges > s.bestEdges || (s.bestPairs == nil && len(s.curPairs) > 0) {
		s.bestEdges = s.curEdges
		s.bestPairs = append([]Pair(nil), s.curPairs...)
	}
	if s.need > 0 && s.bestEdges >= s.need {
		// Decision reached: a common subgraph with Need edges exists.
		s.decided = true
		return
	}
	// Decision-grade pruning: with a Need threshold, branches that
	// cannot reach Need edges are irrelevant even when they could beat
	// the incumbent.
	floor := s.bestEdges
	if s.need > 0 && s.need-1 > floor {
		floor = s.need - 1
	}
	if s.bound() <= floor {
		return
	}
	// Candidate extensions: unmapped g1 vertex u > root adjacent to a mapped
	// vertex, paired with an unmapped g2 vertex v sharing its label, such
	// that at least one common edge to the mapped part is gained
	// (connectivity of the common edge subgraph).
	for u := root + 1; u < s.g1.Order(); u++ {
		if s.m1[u] >= 0 {
			continue
		}
		if !s.adjacentToMapped(u) {
			continue
		}
		for v := 0; v < s.g2.Order(); v++ {
			if s.m2[v] >= 0 || s.g1.VertexLabel(u) != s.g2.VertexLabel(v) {
				continue
			}
			gain := s.edgeGain(u, v)
			if gain == 0 {
				continue
			}
			s.m1[u], s.m2[v] = v, u
			s.curPairs = append(s.curPairs, Pair{U: u, V: v})
			s.curEdges += gain
			s.extend(root)
			s.curEdges -= gain
			s.curPairs = s.curPairs[:len(s.curPairs)-1]
			s.m1[u], s.m2[v] = -1, -1
			if s.capped || s.decided {
				return
			}
		}
	}
}

func (s *searcher) adjacentToMapped(u int) bool {
	for w := range s.g1.NeighborSet(u) {
		if s.m1[w] >= 0 {
			return true
		}
	}
	return false
}

// edgeGain counts the common edges gained by mapping u -> v: edges of g1
// between u and an already-mapped vertex w whose counterpart edge
// (v, m1[w]) exists in g2 with the same label.
func (s *searcher) edgeGain(u, v int) int {
	gain := 0
	for w, lbl := range s.g1.NeighborSet(u) {
		mw := s.m1[w]
		if mw < 0 {
			continue
		}
		if hl, ok := s.g2.EdgeLabel(v, mw); ok && hl == lbl {
			gain++
		}
	}
	return gain
}

// bound returns an optimistic upper bound on the total common edges
// reachable from the current state: current edges plus the smaller of the
// factor edges still touchable (at least one endpoint unmapped) on each
// side. Edges between two mapped vertices are already decided.
func (s *searcher) bound() int {
	rem1 := 0
	for _, e := range s.e1 {
		if s.m1[e.U] < 0 || s.m1[e.V] < 0 {
			rem1++
		}
	}
	rem2 := 0
	for _, e := range s.e2 {
		if s.m2[e.U] < 0 || s.m2[e.V] < 0 {
			rem2++
		}
	}
	if rem2 < rem1 {
		rem1 = rem2
	}
	return s.curEdges + rem1
}

// greedyLBSeeds caps how many seed pairs GreedyLB grows a subgraph
// from. A handful keeps the bound cheap (it runs once per candidate in
// the filter phase) while escaping the worst single-seed starts.
const greedyLBSeeds = 8

// greedyLBSeedsPerVertex caps seeds sharing the same g1 root, so a
// uniform-label graph (every pair compatible) still roots its seeds at
// distinct g1 vertices instead of burning the whole budget on vertex 0.
const greedyLBSeedsPerVertex = 2

// GreedyLB is the deterministic greedy lower bound on |mcs(g1,g2)|: it
// grows a connected common subgraph from up to greedyLBSeeds
// label-compatible vertex pairs — taken in lexicographic order, at
// most greedyLBSeedsPerVertex per g1 root — and keeps the best. Unlike
// Greedy it takes no randomness, so repeated calls on the same pair
// agree — the property the filter-and-refine pipeline needs to use the
// value as a certified floor of Exact's capped results.
func GreedyLB(g1, g2 *graph.Graph) Mapping {
	best := Mapping{Pairs: []Pair{}}
	tried := 0
	for u := 0; u < g1.Order() && tried < greedyLBSeeds; u++ {
		perRoot := 0
		for v := 0; v < g2.Order() && tried < greedyLBSeeds && perRoot < greedyLBSeedsPerVertex; v++ {
			if g1.VertexLabel(u) != g2.VertexLabel(v) {
				continue
			}
			tried++
			perRoot++
			m := greedyFrom(g1, g2, Pair{U: u, V: v})
			if m.Edges > best.Edges || (len(best.Pairs) == 0 && len(m.Pairs) > 0) {
				best = m
			}
		}
	}
	return best
}

// Greedy grows a connected common subgraph by repeatedly taking the
// extension pair with the largest immediate edge gain, restarting from
// `restarts` random label-compatible seeds and keeping the best result.
// It is a heuristic: the returned edge count is a lower bound on |mcs|.
func Greedy(g1, g2 *graph.Graph, restarts int, rng *rand.Rand) Mapping {
	if restarts < 1 {
		restarts = 1
	}
	var seeds []Pair
	for u := 0; u < g1.Order(); u++ {
		for v := 0; v < g2.Order(); v++ {
			if g1.VertexLabel(u) == g2.VertexLabel(v) {
				seeds = append(seeds, Pair{U: u, V: v})
			}
		}
	}
	if len(seeds) == 0 {
		return Mapping{Pairs: []Pair{}}
	}
	best := Mapping{Pairs: []Pair{}}
	for r := 0; r < restarts; r++ {
		seed := seeds[rng.Intn(len(seeds))]
		m := greedyFrom(g1, g2, seed)
		if m.Edges > best.Edges || (len(best.Pairs) == 0 && len(m.Pairs) > 0) {
			best = m
		}
	}
	return best
}

func greedyFrom(g1, g2 *graph.Graph, seed Pair) Mapping {
	m1 := make([]int, g1.Order())
	m2 := make([]int, g2.Order())
	for i := range m1 {
		m1[i] = -1
	}
	for i := range m2 {
		m2[i] = -1
	}
	m1[seed.U], m2[seed.V] = seed.V, seed.U
	pairs := []Pair{seed}
	edges := 0
	for {
		bestGain, bestU, bestV := 0, -1, -1
		for u := 0; u < g1.Order(); u++ {
			if m1[u] >= 0 {
				continue
			}
			for v := 0; v < g2.Order(); v++ {
				if m2[v] >= 0 || g1.VertexLabel(u) != g2.VertexLabel(v) {
					continue
				}
				gain := 0
				for w, lbl := range g1.NeighborSet(u) {
					if mw := m1[w]; mw >= 0 {
						if hl, ok := g2.EdgeLabel(v, mw); ok && hl == lbl {
							gain++
						}
					}
				}
				if gain > bestGain {
					bestGain, bestU, bestV = gain, u, v
				}
			}
		}
		if bestU < 0 {
			break
		}
		m1[bestU], m2[bestV] = bestV, bestU
		pairs = append(pairs, Pair{U: bestU, V: bestV})
		edges += bestGain
	}
	return Mapping{Pairs: pairs, Edges: edges}
}
