package mcs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"skygraph/internal/graph"
)

func TestSizeIdenticalGraphs(t *testing.T) {
	g := graph.Cycle(5, "A", "x")
	if got := Size(g, g.Clone()); got != 5 {
		t.Errorf("mcs(C5,C5)=%d, want 5", got)
	}
}

func TestSizeSubgraph(t *testing.T) {
	q := graph.Path(4, "A", "x") // 3 edges
	host := graph.Cycle(6, "A", "x")
	if got := Size(q, host); got != 3 {
		t.Errorf("mcs(P4,C6)=%d, want 3", got)
	}
}

func TestSizeNoCommonLabels(t *testing.T) {
	a := graph.Path(3, "A", "x")
	b := graph.Path(3, "B", "x")
	if got := Size(a, b); got != 0 {
		t.Errorf("mcs=%d, want 0", got)
	}
}

func TestSizeEdgeLabelSensitive(t *testing.T) {
	a := graph.Path(3, "A", "x")
	b := graph.Path(3, "A", "y")
	if got := Size(a, b); got != 0 {
		t.Errorf("mcs=%d, want 0 (edge labels differ)", got)
	}
}

func TestSizeConnectedConstraint(t *testing.T) {
	// g1: two disjoint P2 segments with distinct labels. g2 contains both
	// segments but far apart; a connected common subgraph can only use one.
	g1 := graph.New("g1")
	g1.AddVertex("A")
	g1.AddVertex("B")
	g1.AddVertex("C")
	g1.AddVertex("D")
	g1.MustAddEdge(0, 1, "x")
	g1.MustAddEdge(2, 3, "x")

	g2 := graph.New("g2")
	g2.AddVertex("A") // 0
	g2.AddVertex("B") // 1
	g2.AddVertex("Z") // 2
	g2.AddVertex("C") // 3
	g2.AddVertex("D") // 4
	g2.MustAddEdge(0, 1, "x")
	g2.MustAddEdge(1, 2, "q")
	g2.MustAddEdge(2, 3, "q")
	g2.MustAddEdge(3, 4, "x")

	if got := Size(g1, g2); got != 1 {
		t.Errorf("mcs=%d, want 1 (connectivity must restrict to one segment)", got)
	}
}

func TestExactWitnessConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		g1 := graph.Molecule(8, rng)
		g2 := graph.Molecule(8, rng)
		res := Exact(g1, g2, Options{})
		if !res.Exhausted {
			t.Fatal("uncapped search reported capped")
		}
		checkWitness(t, g1, g2, res.Mapping)
	}
}

// checkWitness verifies the mapping is injective, label-preserving, realizes
// at least Mapping.Edges common edges, and the common edge subgraph is
// connected.
func checkWitness(t *testing.T, g1, g2 *graph.Graph, m Mapping) {
	t.Helper()
	seenU := map[int]bool{}
	seenV := map[int]bool{}
	for _, p := range m.Pairs {
		if seenU[p.U] || seenV[p.V] {
			t.Fatalf("mapping not injective: %v", m.Pairs)
		}
		seenU[p.U], seenV[p.V] = true, true
		if g1.VertexLabel(p.U) != g2.VertexLabel(p.V) {
			t.Fatalf("label mismatch in pair %v", p)
		}
	}
	// Count realized common edges and build the common subgraph on pairs.
	idx := map[int]int{}
	for i, p := range m.Pairs {
		idx[p.U] = i
	}
	common := 0
	cg := graph.New("common")
	cg.AddVertices(len(m.Pairs), "*")
	for i := 0; i < len(m.Pairs); i++ {
		for j := i + 1; j < len(m.Pairs); j++ {
			l1, ok1 := g1.EdgeLabel(m.Pairs[i].U, m.Pairs[j].U)
			l2, ok2 := g2.EdgeLabel(m.Pairs[i].V, m.Pairs[j].V)
			if ok1 && ok2 && l1 == l2 {
				common++
				cg.MustAddEdge(i, j, l1)
			}
		}
	}
	if common < m.Edges {
		t.Fatalf("mapping realizes %d common edges, claimed %d", common, m.Edges)
	}
	if len(m.Pairs) > 0 && !cg.IsConnected() {
		// The common edge subgraph grown by the search must be connected.
		// (Extra common edges can only add connectivity, never remove it.)
		t.Fatalf("common subgraph disconnected: pairs=%v", m.Pairs)
	}
}

func TestExactMatchesBruteForceOnSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1 := graph.ErdosRenyi(2+r.Intn(4), 0.6, []string{"A", "B"}, []string{"x"}, r)
		g2 := graph.ErdosRenyi(2+r.Intn(4), 0.6, []string{"A", "B"}, []string{"x"}, r)
		return Size(g1, g2) == bruteMCS(g1, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// bruteMCS enumerates every injective label-preserving vertex mapping and
// returns the max number of common edges whose common subgraph is connected.
func bruteMCS(g1, g2 *graph.Graph) int {
	best := 0
	n1 := g1.Order()
	m := make([]int, n1)
	for i := range m {
		m[i] = -1
	}
	used := make([]bool, g2.Order())
	var rec func(u int)
	eval := func() {
		// Build common edge subgraph over mapped pairs; check connectivity.
		var pairs []Pair
		for u, v := range m {
			if v >= 0 {
				pairs = append(pairs, Pair{U: u, V: v})
			}
		}
		if len(pairs) == 0 {
			return
		}
		cg := graph.New("c")
		cg.AddVertices(len(pairs), "*")
		edges := 0
		for i := 0; i < len(pairs); i++ {
			for j := i + 1; j < len(pairs); j++ {
				l1, ok1 := g1.EdgeLabel(pairs[i].U, pairs[j].U)
				l2, ok2 := g2.EdgeLabel(pairs[i].V, pairs[j].V)
				if ok1 && ok2 && l1 == l2 {
					edges++
					cg.MustAddEdge(i, j, l1)
				}
			}
		}
		// Use the largest connected component's edge count.
		for _, comp := range cg.Components() {
			ce := 0
			inComp := map[int]bool{}
			for _, v := range comp {
				inComp[v] = true
			}
			for _, e := range cg.Edges() {
				if inComp[e.U] && inComp[e.V] {
					ce++
				}
			}
			if ce > best {
				best = ce
			}
		}
	}
	rec = func(u int) {
		if u == n1 {
			eval()
			return
		}
		rec(u + 1) // leave u unmapped
		for v := 0; v < g2.Order(); v++ {
			if used[v] || g1.VertexLabel(u) != g2.VertexLabel(v) {
				continue
			}
			m[u] = v
			used[v] = true
			rec(u + 1)
			m[u] = -1
			used[v] = false
		}
	}
	rec(0)
	return best
}

func TestExactNodeCap(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g1 := graph.Molecule(14, rng)
	g2 := graph.Molecule(14, rng)
	res := Exact(g1, g2, Options{MaxNodes: 10})
	if res.Exhausted {
		t.Error("tiny node cap reported exhausted")
	}
	if res.Nodes > 10+1 {
		t.Errorf("node cap not respected: %d", res.Nodes)
	}
}

func TestExactSwapSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 10; trial++ {
		g1 := graph.Molecule(6, rng)
		g2 := graph.Molecule(9, rng)
		if a, b := Size(g1, g2), Size(g2, g1); a != b {
			t.Fatalf("mcs not symmetric: %d vs %d", a, b)
		}
	}
}

func TestGreedyLowerBoundsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		g1 := graph.Molecule(8, rng)
		g2 := graph.Molecule(8, rng)
		exact := Size(g1, g2)
		greedy := Greedy(g1, g2, 10, rng)
		checkWitness(t, g1, g2, greedy)
		if greedy.Edges > exact {
			t.Fatalf("greedy %d exceeds exact %d", greedy.Edges, exact)
		}
	}
}

func TestGreedyNoCommonLabels(t *testing.T) {
	a := graph.Path(3, "A", "x")
	b := graph.Path(3, "B", "x")
	m := Greedy(a, b, 3, rand.New(rand.NewSource(1)))
	if m.Edges != 0 || len(m.Pairs) != 0 {
		t.Errorf("greedy on disjoint labels: %+v", m)
	}
}

func TestSizeEmptyGraphs(t *testing.T) {
	e := graph.New("e")
	g := graph.Path(3, "A", "x")
	if Size(e, g) != 0 || Size(g, e) != 0 || Size(e, e.Clone()) != 0 {
		t.Error("empty graph mcs should be 0")
	}
}
