package mcs

import (
	"math/rand"
	"testing"

	"skygraph/internal/graph"
)

// TestNeedDecision: a Need-fed search either certifies |mcs| < Need —
// and the true maximum really is below — or finds a witness of at
// least Need edges.
func TestNeedDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		g1 := graph.Molecule(3+rng.Intn(4), rng)
		g2 := graph.Molecule(3+rng.Intn(4), rng)
		truth := Exact(g1, g2, Options{})
		if !truth.Exhausted {
			t.Fatal("uncapped reference search not exhausted")
		}
		best := truth.Mapping.Edges
		for _, need := range []int{1, best, best + 1, best + 3} {
			if need < 1 {
				continue // Need 0 is a plain maximization, not a decision
			}
			res := Exact(g1, g2, Options{Need: need})
			if res.Exhausted {
				t.Fatalf("trial %d need %d: decision result claims exhaustive maximality", trial, need)
			}
			if res.ProvedBelowNeed {
				if best >= need {
					t.Fatalf("trial %d: proof claims |mcs| < %d but exact is %d", trial, need, best)
				}
				continue
			}
			if res.Mapping.Edges < need {
				t.Fatalf("trial %d need %d: no proof and no witness (best found %d, exact %d)",
					trial, need, res.Mapping.Edges, best)
			}
		}
	}
}

// TestNeedCappedNoFalseProof: whatever the node cap does to a Need-fed
// search, ProvedBelowNeed may only appear when the true maximum really
// is below Need — here Need is set to the true maximum itself, so any
// certificate is a false proof.
func TestNeedCappedNoFalseProof(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 15; trial++ {
		g1 := graph.Molecule(6, rng)
		g2 := graph.Molecule(6, rng)
		truth := Exact(g1, g2, Options{}).Mapping.Edges
		if truth == 0 {
			continue
		}
		for _, cap := range []int64{0, 2, 50} {
			if res := Exact(g1, g2, Options{Need: truth, MaxNodes: cap}); res.ProvedBelowNeed {
				t.Fatalf("trial %d cap %d: proof claims |mcs| < %d but that IS the maximum", trial, cap, truth)
			}
		}
	}
}
