// Package wal implements the durable storage primitives under the
// graph database: a segmented append-only write-ahead log of mutation
// records, atomic point-in-time snapshots, and the manifest binding
// the two together.
//
// The log knows nothing about graphs. A Record is an opcode, an
// insert-sequence number, a name and an opaque payload; the database
// layer (internal/gdb) decides what the payload means. Records are
// framed as
//
//	uint32 payload length (little endian)
//	uint32 IEEE CRC32 of the payload (little endian)
//	payload
//
// and live in segment files named wal-<first LSN, 16 hex digits>.log.
// Every record has a log sequence number (LSN), assigned densely in
// append order across segments; the snapshot manifest records the LSN
// its snapshot covers, and recovery replays only records above it.
//
// Recovery tolerates a torn tail: Open scans every segment and
// truncates the log at the first record that is incomplete or fails
// its checksum — the surviving prefix is exactly the mutations whose
// appends completed, which is the strongest guarantee a crash leaves
// available. Segments after a truncation point are dropped (their
// records would be discontiguous), and the repair is counted so the
// serving layer can surface it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"skygraph/internal/fault"
)

// Op is a record opcode.
type Op uint8

const (
	// OpInsert records a graph insertion; Data carries the encoded graph
	// and Seq its process-unique insert sequence.
	OpInsert Op = 1
	// OpDelete records a deletion by name; Seq and Data are unused.
	OpDelete Op = 2
	// OpNoop records nothing: it exists so a health probe can exercise
	// the full append+fsync path ("is the disk writable again?") without
	// mutating the database. Replay skips it.
	OpNoop Op = 3
)

// ErrCorrupt tags corruption-class storage failures: a damaged
// snapshot, an unreadable manifest — states where retrying cannot help
// and the data directory needs operator attention. Everything else
// (EIO, ENOSPC, ...) is transient-class: the serving layer degrades to
// read-only and probes for recovery instead of failing permanently.
// Test with errors.Is.
var ErrCorrupt = errors.New("wal: corrupt data")

func init() {
	// Let fault specs inject the corruption class by name
	// ("err=corrupt") without the fault package importing wal.
	fault.RegisterError("corrupt", ErrCorrupt)
}

// Record is one logged mutation (or one snapshot entry — snapshots
// reuse the record codec, so a snapshot file is simply a compacted log
// of inserts).
type Record struct {
	Op   Op
	Seq  uint64 // insert-sequence high-water information (inserts only)
	Name string
	// Key is the client idempotency key the mutation was submitted
	// under ("" = unkeyed). Persisting it makes the key itself durable
	// evidence: recovery can prove a retried key was previously
	// accepted instead of guessing from surviving state.
	Key  string
	Data []byte // opaque payload (the LGF-encoded graph for inserts)
}

// SyncPolicy selects when appended records are fsynced to stable
// storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acked mutation is never
	// lost, at one fsync of latency per mutation.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery):
	// a crash loses at most the last interval of acked mutations.
	SyncInterval
	// SyncNever leaves flushing to the OS (and to rotation/Close): the
	// fastest policy, with crash-loss bounded only by the page cache.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return "unknown"
}

// Options tunes a Log.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64 MiB).
	SegmentBytes int64
	// StartLSN floors the next assigned LSN. Recovery passes the
	// manifest's LSN+1 so a log whose segments were all reclaimed by a
	// snapshot keeps counting from where it left off instead of reusing
	// LSNs the manifest already covers.
	StartLSN uint64
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// frameHeaderLen is the fixed per-record framing overhead.
const frameHeaderLen = 8

// maxRecordBytes bounds a single record payload; a declared length
// beyond it is treated as corruption rather than attempted.
const maxRecordBytes = 256 << 20

// encodeRecord appends the framed wire form of rec to buf and returns
// the extended slice.
func encodeRecord(buf []byte, rec Record) []byte {
	payload := encodePayload(nil, rec)
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Payload versions. Version 1 is the original layout (op, seq, name,
// data); version 2 adds a uvarint-length-prefixed idempotency key
// between name and data. Unkeyed records are still written as version
// 1, so snapshots, no-ops and pre-key logs stay byte-identical, and
// decode accepts both.
const (
	payloadVersion1 = 1
	payloadVersion2 = 2
)

func encodePayload(buf []byte, rec Record) []byte {
	version := byte(payloadVersion1)
	if rec.Key != "" {
		version = payloadVersion2
	}
	buf = append(buf, version, byte(rec.Op))
	buf = binary.AppendUvarint(buf, rec.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Name)))
	buf = append(buf, rec.Name...)
	if version == payloadVersion2 {
		buf = binary.AppendUvarint(buf, uint64(len(rec.Key)))
		buf = append(buf, rec.Key...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(rec.Data)))
	return append(buf, rec.Data...)
}

// decodePayload parses one record payload (the frame's checksum has
// already been verified).
func decodePayload(payload []byte) (Record, error) {
	if len(payload) < 2 {
		return Record{}, fmt.Errorf("wal: payload of %d bytes is too short", len(payload))
	}
	version := payload[0]
	if version != payloadVersion1 && version != payloadVersion2 {
		return Record{}, fmt.Errorf("wal: unknown payload version %d", payload[0])
	}
	rec := Record{Op: Op(payload[1])}
	if rec.Op != OpInsert && rec.Op != OpDelete && rec.Op != OpNoop {
		return Record{}, fmt.Errorf("wal: unknown opcode %d", payload[1])
	}
	rest := payload[2:]
	var n int
	rec.Seq, n = binary.Uvarint(rest)
	if n <= 0 {
		return Record{}, fmt.Errorf("wal: bad seq varint")
	}
	rest = rest[n:]
	nameLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < nameLen {
		return Record{}, fmt.Errorf("wal: bad name length")
	}
	rest = rest[n:]
	rec.Name = string(rest[:nameLen])
	rest = rest[nameLen:]
	if version == payloadVersion2 {
		keyLen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < keyLen {
			return Record{}, fmt.Errorf("wal: bad key length")
		}
		rest = rest[n:]
		rec.Key = string(rest[:keyLen])
		rest = rest[keyLen:]
	}
	dataLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) != dataLen {
		return Record{}, fmt.Errorf("wal: bad data length")
	}
	if dataLen > 0 {
		rec.Data = append([]byte(nil), rest[n:]...)
	}
	return rec, nil
}
