package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testRecords builds n distinguishable records (inserts with payloads,
// an occasional delete).
func testRecords(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		if i%5 == 4 {
			out[i] = Record{Op: OpDelete, Name: fmt.Sprintf("g%03d", i-1)}
			continue
		}
		out[i] = Record{
			Op:   OpInsert,
			Seq:  uint64(100 + i),
			Name: fmt.Sprintf("g%03d", i),
			Data: []byte(fmt.Sprintf("graph g%03d\nv 0 C\nv 1 O\ne 0 1 -\n", i)),
		}
	}
	return out
}

func appendAll(t *testing.T, l *Log, recs []Record) []uint64 {
	t.Helper()
	lsns := make([]uint64, len(recs))
	for i, rec := range recs {
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		lsns[i] = lsn
	}
	return lsns
}

func replayAll(t *testing.T, l *Log, afterLSN uint64) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(afterLSN, func(lsn uint64, rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(23)
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	lsns := appendAll(t, l, recs)
	for i := 1; i < len(lsns); i++ {
		if lsns[i] != lsns[i-1]+1 {
			t.Fatalf("LSNs not dense: %v", lsns)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(recs[0]); err == nil {
		t.Fatal("append after Close succeeded")
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed records differ:\n got %v\nwant %v", got, recs)
	}
	// Replay above an LSN skips the prefix.
	tail := replayAll(t, l2, lsns[9])
	if !reflect.DeepEqual(tail, recs[10:]) {
		t.Fatalf("partial replay differs: got %d records, want %d", len(tail), len(recs)-10)
	}
}

func TestLogRotationAndReclaim(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(40)
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	lsns := appendAll(t, l, recs)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("tiny SegmentBytes produced only %d segments", st.Segments)
	}
	// Reclaim everything below the 30th record: sealed segments whose
	// last LSN is covered disappear, and replay still yields the rest.
	if err := l.Reclaim(lsns[29]); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got >= st.Segments {
		t.Fatalf("reclaim removed nothing (%d -> %d segments)", st.Segments, got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2, lsns[29])
	if !reflect.DeepEqual(got, recs[30:]) {
		t.Fatalf("replay after reclaim differs: got %d records, want %d", len(got), 10)
	}
	if l2.LastLSN() != lsns[39] {
		t.Fatalf("LastLSN = %d; want %d", l2.LastLSN(), lsns[39])
	}
}

// segmentFiles returns the log's segment paths in LSN order.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, segmentPrefix+"*"+segmentSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestLogTruncatedTailRepair(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(12)
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	// Tear off the last 5 bytes: the final record becomes partial.
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], st.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if l2.Stats().RepairedBytes == 0 {
		t.Fatal("repair not reported")
	}
	got := replayAll(t, l2, 0)
	if !reflect.DeepEqual(got, recs[:11]) {
		t.Fatalf("surviving prefix is %d records; want 11", len(got))
	}
	// The log keeps working: new appends land after the survivors and a
	// third open sees prefix + new.
	extra := Record{Op: OpInsert, Seq: 999, Name: "fresh", Data: []byte("x")}
	if _, err := l2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	want := append(append([]Record(nil), recs[:11]...), extra)
	if got := replayAll(t, l3, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-repair log differs: got %d records, want %d", len(got), len(want))
	}
}

func TestLogCorruptMiddleSegmentDropsTail(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(30)
	l, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 400})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Flip a byte in the FIRST record of the second segment: recovery
	// must keep segment 1 whole and drop segments 2..N entirely.
	f, err := os.OpenFile(segs[1], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, frameHeaderLen); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, frameHeaderLen); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Count segment 1's records so we know the expected prefix.
	n1, _, _, err := scanSegment(segs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Stats().DroppedSegments == 0 {
		t.Fatal("dropped segments not reported")
	}
	got := replayAll(t, l2, 0)
	if !reflect.DeepEqual(got, recs[:n1]) {
		t.Fatalf("surviving prefix is %d records; want %d", len(got), n1)
	}
}

func TestLogStartLSNFloor(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{StartLSN: 41})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(Record{Op: OpDelete, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 41 {
		t.Fatalf("first LSN = %d; want 41 (the StartLSN floor)", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// With live segments above the floor, the floor is ignored.
	l2, err := Open(dir, Options{StartLSN: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if lsn, err = l2.Append(Record{Op: OpDelete, Name: "y"}); err != nil || lsn != 42 {
		t.Fatalf("append after reopen: lsn=%d err=%v; want 42", lsn, err)
	}
}

func TestSnapshotManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if m, err := LoadManifest(dir); err != nil || m != nil {
		t.Fatalf("fresh dir manifest = %v, %v; want nil, nil", m, err)
	}
	recs := testRecords(8)
	name, err := WriteSnapshot(dir, 17, func(sink func(Record) error) error {
		for _, r := range recs {
			if err := sink(r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, Manifest{LSN: 17, MaxSeq: 123, Snapshot: name, Graphs: len(recs)}); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.LSN != 17 || m.MaxSeq != 123 || m.Snapshot != name || m.Graphs != len(recs) {
		t.Fatalf("manifest round trip: %+v", m)
	}
	var got []Record
	if err := ReadSnapshot(filepath.Join(dir, name), func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("snapshot records differ")
	}

	// A corrupt snapshot is a hard error, not a silent prefix.
	path := filepath.Join(dir, name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadSnapshot(path, func(Record) error { return nil }); err == nil {
		t.Fatal("corrupt snapshot read succeeded")
	}
}

func TestPruneSnapshots(t *testing.T) {
	dir := t.TempDir()
	emit := func(sink func(Record) error) error { return sink(Record{Op: OpDelete, Name: "x"}) }
	old, err := WriteSnapshot(dir, 1, emit)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := WriteSnapshot(dir, 2, emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := PruneSnapshots(dir, keep); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, old)); !os.IsNotExist(err) {
		t.Fatalf("old snapshot survived pruning: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, keep)); err != nil {
		t.Fatalf("kept snapshot missing: %v", err)
	}
}

func TestRecordCodecEdgeCases(t *testing.T) {
	cases := []Record{
		{Op: OpInsert, Seq: 0, Name: "", Data: nil},
		{Op: OpInsert, Seq: 1<<64 - 1, Name: "n", Data: []byte{0}},
		{Op: OpDelete, Name: "weird \xff\x00 name"},
	}
	for i, rec := range cases {
		frame := encodeRecord(nil, rec)
		got, n, ok := nextRecord(frame)
		if !ok || n != int64(len(frame)) {
			t.Fatalf("case %d: decode failed", i)
		}
		if got.Op != rec.Op || got.Seq != rec.Seq || got.Name != rec.Name || !reflect.DeepEqual(got.Data, rec.Data) {
			t.Fatalf("case %d: round trip %+v -> %+v", i, rec, got)
		}
	}
	// Truncated frames and bad checksums are rejected, never panic.
	frame := encodeRecord(nil, cases[0])
	for cut := 0; cut < len(frame); cut++ {
		if _, _, ok := nextRecord(frame[:cut]); ok {
			t.Fatalf("truncated frame at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 1
	if _, _, ok := nextRecord(bad); ok {
		t.Fatal("checksum-violating frame accepted")
	}
}

// TestRecordKeyCodec pins the idempotency-key extension: keyed records
// round-trip through the v2 payload, while keyless records keep the v1
// encoding byte for byte — so logs written before keys existed (and all
// noop/snapshot records) still decode.
func TestRecordKeyCodec(t *testing.T) {
	keyed := []Record{
		{Op: OpInsert, Seq: 7, Name: "g1", Data: []byte("data"), Key: "client-1:42"},
		{Op: OpDelete, Name: "g1", Key: "k"},
		{Op: OpInsert, Seq: 8, Name: "g2", Data: nil, Key: "weird \xff key"},
	}
	for i, rec := range keyed {
		frame := encodeRecord(nil, rec)
		if v := frame[8]; v != payloadVersion2 {
			t.Fatalf("case %d: keyed record encoded as version %d", i, v)
		}
		got, n, ok := nextRecord(frame)
		if !ok || n != int64(len(frame)) {
			t.Fatalf("case %d: decode failed", i)
		}
		if got.Key != rec.Key || got.Op != rec.Op || got.Seq != rec.Seq || got.Name != rec.Name || !reflect.DeepEqual(got.Data, rec.Data) {
			t.Fatalf("case %d: round trip %+v -> %+v", i, rec, got)
		}
	}
	// A keyless record stays on the v1 payload: byte-identical to what
	// pre-key versions wrote, and decodes with an empty Key.
	plain := Record{Op: OpInsert, Seq: 3, Name: "g", Data: []byte("d")}
	frame := encodeRecord(nil, plain)
	if v := frame[8]; v != payloadVersion1 {
		t.Fatalf("keyless record encoded as version %d", v)
	}
	got, _, ok := nextRecord(frame)
	if !ok || got.Key != "" || got.Name != plain.Name {
		t.Fatalf("keyless round trip: %+v", got)
	}
}
