package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWrite writes a file so that path either keeps its old content
// or holds the complete new content — never a torn mix, even across a
// crash. The content is produced into a temp file in the same
// directory, fsynced, renamed over path, and the directory entry is
// fsynced so the rename itself is durable.
func AtomicWrite(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return fmt.Errorf("wal: writing %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so recent entry changes (creates, renames,
// removals) survive a crash.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
