package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"skygraph/internal/fault"
)

// reopenAndReplay closes l, reopens the directory and returns every
// surviving record — the "what would a restart recover" oracle.
func reopenAndReplay(t *testing.T, l *Log, dir string) []Record {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	return replayAll(t, l2, 0)
}

// TestAppendFaultModes drives every injectable failure shape through
// Append and asserts the same invariant each time: the failed append
// leaves no trace, later appends succeed on the SAME log handle, and a
// restart recovers exactly the acknowledged records.
func TestAppendFaultModes(t *testing.T) {
	cases := []struct {
		name  string
		cfg   fault.Config
		point string
	}{
		{"append-eio", fault.Config{Mode: fault.ModeError, Err: syscall.EIO, Limit: 1}, fault.WALAppend},
		{"append-enospc", fault.Config{Mode: fault.ModeError, Err: syscall.ENOSPC, Limit: 1}, fault.WALAppend},
		{"append-short", fault.Config{Mode: fault.ModeShortWrite, ShortBytes: 5, Limit: 1}, fault.WALAppend},
		{"append-short-zero", fault.Config{Mode: fault.ModeShortWrite, ShortBytes: 0, Limit: 1}, fault.WALAppend},
		{"fsync-eio", fault.Config{Mode: fault.ModeError, Err: syscall.EIO, Limit: 1}, fault.WALFsync},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer fault.Reset()
			dir := t.TempDir()
			l, err := Open(dir, Options{Sync: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			recs := testRecords(6)
			acked := recs[:3]
			appendAll(t, l, acked)

			fault.Set(tc.point, tc.cfg)
			if _, err := l.Append(recs[3]); err == nil {
				t.Fatal("append under fault succeeded")
			} else if tc.cfg.Err != nil && !errors.Is(err, tc.cfg.Err) {
				t.Fatalf("append error %v does not wrap injected %v", err, tc.cfg.Err)
			}

			// Limit=1: the glitch has cleared; the same handle must keep
			// working (online repair truncated the partial frame).
			if _, err := l.Append(recs[4]); err != nil {
				t.Fatalf("append after fault cleared: %v", err)
			}
			want := append(append([]Record(nil), acked...), recs[4])
			got := reopenAndReplay(t, l, dir)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered %d records, want %d:\n got %+v\nwant %+v", len(got), len(want), got, want)
			}
		})
	}
}

// TestAppendFaultPersistentThenHeals holds the fault for several
// appends (every one must fail cleanly) before clearing it — the
// "disk stays broken for a while" shape the daemon's degraded mode
// rides out.
func TestAppendFaultPersistentThenHeals(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(10)
	appendAll(t, l, recs[:2])
	fault.Set(fault.WALAppend, fault.Config{Mode: fault.ModeShortWrite, ShortBytes: 3})
	for i := 2; i < 7; i++ {
		if _, err := l.Append(recs[i]); err == nil {
			t.Fatalf("append %d under persistent fault succeeded", i)
		}
	}
	fault.Reset()
	lsn, err := l.Append(recs[7])
	if err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if lsn != 3 {
		t.Fatalf("healed append got LSN %d, want 3 (failed appends must not burn LSNs)", lsn)
	}
	want := []Record{recs[0], recs[1], recs[7]}
	if got := reopenAndReplay(t, l, dir); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
}

// TestRotateFault pins that a rotation failure fails the triggering
// append without touching the sealed-or-active state, and that the log
// rotates fine once the fault clears.
func TestRotateFault(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(8)
	// First append creates the segment; the tiny SegmentBytes forces a
	// rotation attempt on the next one.
	appendAll(t, l, recs[:1])
	fault.Set(fault.WALRotate, fault.Config{Mode: fault.ModeError, Err: syscall.EIO, Limit: 1})
	if _, err := l.Append(recs[1]); err == nil {
		t.Fatal("append across faulted rotation succeeded")
	}
	if _, err := l.Append(recs[1]); err != nil {
		t.Fatalf("append after rotate fault cleared: %v", err)
	}
	want := []Record{recs[0], recs[1]}
	if got := reopenAndReplay(t, l, dir); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
}

// TestIntervalSyncFaultKeepsDirty pins the retry semantics of the
// background flusher: a failed interval fsync must leave the dirty
// flag set so the next tick retries instead of dropping the data.
func TestIntervalSyncFaultKeepsDirty(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, testRecords(1))
	fault.Set(fault.WALFsync, fault.Config{Mode: fault.ModeError, Err: syscall.EIO, Limit: 1})
	if err := l.Sync(); err == nil {
		t.Fatal("faulted Sync succeeded")
	}
	if !l.dirty.Load() {
		t.Fatal("failed Sync cleared the dirty flag")
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("retry Sync: %v", err)
	}
	if l.dirty.Load() {
		t.Fatal("successful Sync left the dirty flag set")
	}
}

// TestSnapshotAndManifestFaults pins that faulted snapshot/manifest
// writes fail without disturbing the durable root.
func TestSnapshotAndManifestFaults(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	if err := WriteManifest(dir, Manifest{LSN: 7, MaxSeq: 9}); err != nil {
		t.Fatal(err)
	}
	fault.Set(fault.ManifestReplace, fault.Config{Mode: fault.ModeError, Err: syscall.ENOSPC})
	fault.Set(fault.SnapshotWrite, fault.Config{Mode: fault.ModeError, Err: syscall.ENOSPC})

	if err := WriteManifest(dir, Manifest{LSN: 99}); err == nil {
		t.Fatal("faulted WriteManifest succeeded")
	}
	if _, err := WriteSnapshot(dir, 42, func(sink func(Record) error) error { return nil }); err == nil {
		t.Fatal("faulted WriteSnapshot succeeded")
	}
	m, err := LoadManifest(dir)
	if err != nil || m == nil || m.LSN != 7 || m.MaxSeq != 9 {
		t.Fatalf("manifest disturbed by faulted writes: %+v, %v", m, err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != manifestName {
			t.Fatalf("faulted writes left %q behind", e.Name())
		}
	}
}

// TestCorruptClassErrors pins that damaged base state surfaces as
// ErrCorrupt (the 500 class) rather than a transient error.
func TestCorruptClassErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(manifestPath(dir), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage manifest: err = %v, want ErrCorrupt", err)
	}
	snap := filepath.Join(dir, snapshotName(1))
	if err := os.WriteFile(snap, []byte("\x10\x00\x00\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadSnapshot(snap, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage snapshot: err = %v, want ErrCorrupt", err)
	}
}

// TestNoopRecordRoundTrips pins the probe record type: appendable,
// replayable, opcode preserved.
func TestNoopRecordRoundTrips(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Op: OpInsert, Seq: 1, Name: "g", Data: []byte("x")},
		{Op: OpNoop},
		{Op: OpDelete, Name: "g"},
	}
	appendAll(t, l, recs)
	if got := reopenAndReplay(t, l, dir); !reflect.DeepEqual(got, recs) {
		t.Fatalf("recovered %+v, want %+v", got, recs)
	}
}
