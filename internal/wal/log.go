package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skygraph/internal/fault"
)

// Log is a segmented append-only record log in one directory. All
// methods are safe for concurrent use; appends are serialized
// internally, so record order equals call order only when callers
// serialize themselves (the database layer appends under its mutation
// lock, which does exactly that).
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File      // active segment (nil after Close)
	size     int64         // bytes written to the active segment
	buf      []byte        // reusable append frame buffer
	segments []segmentInfo // closed + active segments, ascending firstLSN
	nextLSN  uint64
	appended bool // Replay may only run before the first Append
	closed   bool
	// pendingRepair is set when a failed append may have left a partial
	// frame in the active segment. Until the truncate-back repair
	// succeeds, later appends must not write past the garbage — a later
	// valid frame after a torn one would be unreachable to recovery's
	// prefix scan, silently losing acknowledged mutations.
	pendingRepair bool
	dirty         atomic.Bool // unsynced appends (SyncInterval)
	stop          chan struct{}
	done          chan struct{}

	appends       atomic.Uint64
	appendedBytes atomic.Uint64
	fsyncs        atomic.Uint64

	repairedBytes   int64
	droppedSegments int
}

// segmentInfo describes one segment file as scanned at Open (count and
// size of the active segment grow with appends).
type segmentInfo struct {
	path     string
	firstLSN uint64
	count    uint64
	size     int64
}

func (s segmentInfo) lastLSN() uint64 { return s.firstLSN + s.count - 1 }

const segmentPrefix = "wal-"
const segmentSuffix = ".log"

func segmentPath(dir string, firstLSN uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segmentPrefix, firstLSN, segmentSuffix))
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// RepairInfo reports what Open had to discard to make the log
// consistent: bytes truncated off a torn or corrupt tail, and whole
// segments dropped because they followed the truncation point.
type RepairInfo struct {
	TruncatedBytes  int64
	DroppedSegments int
}

// Open scans (and, if needed, repairs) the log in dir and positions it
// for appending. The scan validates every record frame; the first
// incomplete or checksum-failing record truncates the log there — the
// surviving prefix is exactly the appends that completed. Appends go
// to a fresh segment, never to a scanned one.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if l.nextLSN == 0 {
		l.nextLSN = 1
	}
	if opts.StartLSN > l.nextLSN {
		l.nextLSN = opts.StartLSN
	}
	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// scan validates existing segments in LSN order, repairing the tail:
// the segment holding the first invalid record is truncated to its
// last valid offset (removed entirely when nothing valid remains) and
// every later segment is deleted.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, segmentInfo{path: filepath.Join(l.dir, e.Name()), firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	for i := range segs {
		if i > 0 && segs[i].firstLSN != segs[i-1].firstLSN+segs[i-1].count {
			// A hole in the LSN space cannot be replayed in order. Treat
			// everything from the hole on as unrecoverable tail.
			return l.dropFrom(segs, i, segs[:i])
		}
		count, valid, total, scanErr := scanSegment(segs[i].path, nil)
		if scanErr != nil {
			return scanErr
		}
		segs[i].count = count
		segs[i].size = valid
		if valid < total {
			// Torn or corrupt tail: truncate this segment and drop the rest.
			l.repairedBytes += total - valid
			if err := truncateSegment(segs[i].path, valid); err != nil {
				return err
			}
			if valid == 0 {
				return l.dropFrom(segs, i, segs[:i])
			}
			return l.dropFrom(segs, i+1, segs[:i+1])
		}
		if count == 0 {
			// An empty segment (created by an Open that never appended)
			// carries no records; remove it so the namespace stays clean.
			if err := os.Remove(segs[i].path); err != nil {
				return err
			}
			segs[i].count = 0
		}
	}
	kept := segs[:0]
	for _, s := range segs {
		if s.count > 0 {
			kept = append(kept, s)
		}
	}
	l.finishScan(kept)
	return nil
}

// dropFrom deletes segs[from:] (unrecoverable after a truncation
// point) and finishes the scan with keep as the surviving set.
func (l *Log) dropFrom(segs []segmentInfo, from int, keep []segmentInfo) error {
	for _, s := range segs[from:] {
		st, err := os.Stat(s.path)
		if err == nil {
			l.repairedBytes += st.Size()
		}
		if err := os.Remove(s.path); err != nil {
			return err
		}
		l.droppedSegments++
	}
	kept := make([]segmentInfo, 0, len(keep))
	for _, s := range keep {
		if s.count > 0 {
			kept = append(kept, s)
		}
	}
	l.finishScan(kept)
	if l.repairedBytes > 0 || l.droppedSegments > 0 {
		return SyncDir(l.dir)
	}
	return nil
}

func (l *Log) finishScan(segs []segmentInfo) {
	l.segments = append([]segmentInfo(nil), segs...)
	if n := len(segs); n > 0 {
		l.nextLSN = segs[n-1].firstLSN + segs[n-1].count
	}
}

// truncateSegment cuts a segment file to size and fsyncs it.
func truncateSegment(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// scanSegment reads every valid record of one segment, invoking fn (if
// non-nil) per record. It returns the record count, the byte offset of
// the end of the last valid record, and the file size. A torn or
// corrupt tail is NOT an error — it shows up as valid < total; real
// I/O failures are.
func scanSegment(path string, fn func(Record) error) (count uint64, valid int64, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, 0, err
	}
	total = st.Size()
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, 0, 0, err
	}
	off := int64(0)
	for {
		rec, n, ok := nextRecord(data[off:])
		if !ok {
			return count, off, total, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return count, off, total, err
			}
		}
		off += n
		count++
	}
}

// nextRecord decodes the frame at the head of data. ok is false when
// the bytes do not form a complete, checksum-valid record — the torn
// tail signal.
func nextRecord(data []byte) (Record, int64, bool) {
	if len(data) < frameHeaderLen {
		return Record{}, 0, false
	}
	plen := binary.LittleEndian.Uint32(data[0:4])
	if plen > maxRecordBytes || int64(len(data)-frameHeaderLen) < int64(plen) {
		return Record{}, 0, false
	}
	payload := data[frameHeaderLen : frameHeaderLen+int(plen)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return Record{}, 0, false
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, false
	}
	return rec, frameHeaderLen + int64(plen), true
}

// Replay streams every record with LSN > afterLSN, in LSN order, to fn.
// It must be called before the first Append (recovery happens before
// serving); fn errors abort the replay.
func (l *Log) Replay(afterLSN uint64, fn func(lsn uint64, rec Record) error) error {
	l.mu.Lock()
	if l.appended {
		l.mu.Unlock()
		return fmt.Errorf("wal: Replay after Append")
	}
	segs := append([]segmentInfo(nil), l.segments...)
	l.mu.Unlock()
	for _, s := range segs {
		if s.lastLSN() <= afterLSN {
			continue
		}
		lsn := s.firstLSN
		_, _, _, err := scanSegment(s.path, func(rec Record) error {
			defer func() { lsn++ }()
			if lsn <= afterLSN {
				return nil
			}
			return fn(lsn, rec)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Append writes rec, assigns it the next LSN and (under SyncAlways)
// fsyncs before returning: when Append returns nil under SyncAlways,
// the record survives any crash. A failed Append leaves no trace: the
// partial frame is truncated back out (retried on the next Append if
// the disk refuses even that), so the log's durable content is always
// exactly the acknowledged prefix plus, at worst, one torn tail that
// recovery repairs.
func (l *Log) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if l.pendingRepair {
		if err := l.repairLocked(); err != nil {
			return 0, fmt.Errorf("wal: segment repair: %w", err)
		}
	}
	if l.f == nil {
		if err := l.openSegmentLocked(); err != nil {
			return 0, err
		}
	}
	if l.size > 0 && l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	l.appended = true
	l.buf = encodeRecord(l.buf[:0], rec)
	frame := l.buf
	if act := fault.Hit(fault.WALAppend); act != nil {
		if act.Short >= 0 && act.Short < len(frame) {
			// Simulate a torn write: part of the frame lands on disk
			// before the failure surfaces.
			_, _ = l.f.Write(frame[:act.Short])
		}
		if err := act.Do(); err != nil {
			l.pendingRepair = true
			_ = l.repairLocked()
			return 0, fmt.Errorf("wal: append: %w", err)
		}
	}
	n, err := l.f.Write(frame)
	if err != nil {
		l.pendingRepair = true
		_ = l.repairLocked()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if l.opts.Sync == SyncAlways {
		if err := l.fsyncLocked(); err != nil {
			// The frame is fully written but not durably synced; back it
			// out so the caller's failure report matches the log. If the
			// truncate also fails (or we crash first), replay may
			// resurrect this never-acked mutation — documented as the one
			// tolerated asymmetry (acked mutations are never lost;
			// failed ones may still land).
			l.pendingRepair = true
			_ = l.repairLocked()
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
	} else {
		l.dirty.Store(true)
	}
	l.size += int64(n)
	l.segments[len(l.segments)-1].count++
	l.segments[len(l.segments)-1].size = l.size
	lsn := l.nextLSN
	l.nextLSN++
	l.appends.Add(1)
	l.appendedBytes.Add(uint64(n))
	return lsn, nil
}

// repairLocked truncates the active segment back to the last good
// offset after a failed append. It tries the live fd first, then a
// fresh open of the segment path (the fd itself may be the broken
// part). While it keeps failing, pendingRepair stays set and appends
// keep refusing — never writing past garbage keeps every acknowledged
// record inside the valid prefix recovery trusts.
func (l *Log) repairLocked() error {
	if !l.pendingRepair {
		return nil
	}
	if l.f != nil {
		if l.f.Truncate(l.size) == nil {
			if _, err := l.f.Seek(l.size, io.SeekStart); err == nil {
				l.pendingRepair = false
				return nil
			}
		}
		l.f.Close()
		l.f = nil
	}
	seg := l.segments[len(l.segments)-1]
	f, err := os.OpenFile(seg.path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Truncate(l.size); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(l.size, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.pendingRepair = false
	return nil
}

// fsyncLocked is every fsync of the active segment (per-append under
// SyncAlways, interval flushes, rotation seals, Close), with the
// wal/fsync failpoint in front.
func (l *Log) fsyncLocked() error {
	if err := fault.Hit(fault.WALFsync).Do(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	return nil
}

// openSegmentLocked starts the fresh segment appends go to (the first
// Append after Open or rotation creates it; Open itself stays
// read-only so a recover-inspect cycle leaves no trace).
func (l *Log) openSegmentLocked() error {
	path := segmentPath(l.dir, l.nextLSN)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.size = 0
	l.segments = append(l.segments, segmentInfo{path: path, firstLSN: l.nextLSN})
	return nil
}

// rotateLocked seals the active segment (fsync + close) and opens the
// next one. A rotation failure leaves the current segment active and
// intact — the append that triggered it fails without side effects.
func (l *Log) rotateLocked() error {
	if err := fault.Hit(fault.WALRotate).Do(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := l.fsyncLocked(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f = nil
	return l.openSegmentLocked()
}

// Sync flushes appended records to stable storage regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil || !l.dirty.Swap(false) {
		return nil
	}
	if err := l.fsyncLocked(); err != nil {
		// Still unsynced; keep the flag so the next flush retries
		// instead of silently forgetting the dirty data.
		l.dirty.Store(true)
		return err
	}
	return nil
}

// syncLoop is the SyncInterval flusher.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-l.stop:
			return
		}
	}
}

// Close flushes and closes the log. Further Appends fail.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
		l.stop, l.done = nil, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.pendingRepair {
		// Best effort: a clean shutdown should not leave a garbage tail
		// for recovery to repair. If it still fails, the torn-tail scan
		// handles it.
		_ = l.repairLocked()
	}
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Reclaim removes sealed segments whose every record is covered by a
// snapshot at uptoLSN. The active segment is never removed.
func (l *Log) Reclaim(uptoLSN uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segments[:0]
	removed := false
	for i, s := range l.segments {
		active := l.f != nil && i == len(l.segments)-1
		if !active && s.count > 0 && s.lastLSN() <= uptoLSN {
			if err := os.Remove(s.path); err != nil {
				return err
			}
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.segments = append([]segmentInfo(nil), kept...)
	if removed {
		return SyncDir(l.dir)
	}
	return nil
}

// LastLSN returns the LSN of the most recently appended record (0 when
// the log is empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Segments        int
	SizeBytes       int64
	LastLSN         uint64
	Appends         uint64
	AppendedBytes   uint64
	Fsyncs          uint64
	RepairedBytes   int64
	DroppedSegments int
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:        len(l.segments),
		LastLSN:         l.nextLSN - 1,
		Appends:         l.appends.Load(),
		AppendedBytes:   l.appendedBytes.Load(),
		Fsyncs:          l.fsyncs.Load(),
		RepairedBytes:   l.repairedBytes,
		DroppedSegments: l.droppedSegments,
	}
	for _, s := range l.segments {
		st.SizeBytes += s.size
	}
	return st
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }
