package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"skygraph/internal/fault"
)

// Manifest is the durable root of a data directory: it names the
// snapshot holding the state up to LSN and records the insert-sequence
// high-water mark, so recovery can rebuild the database (snapshot +
// WAL records above LSN) and mint fresh sequences above every one ever
// persisted. The manifest file is replaced atomically — recovery sees
// either the old root or the new one, never a torn write.
type Manifest struct {
	Version int `json:"version"`
	// LSN is the last WAL record reflected in the snapshot; replay
	// starts just above it.
	LSN uint64 `json:"lsn"`
	// MaxSeq is the largest insert sequence ever minted when the
	// snapshot was cut; recovery seeds the sequence counter above it.
	MaxSeq uint64 `json:"max_seq"`
	// Snapshot is the snapshot file name inside the directory (empty
	// when the database was empty at the cut).
	Snapshot string `json:"snapshot,omitempty"`
	// Graphs is the number of records in the snapshot.
	Graphs int `json:"graphs"`
	// InsertKeys and DeleteKeys carry the idempotency-key evidence of
	// keyed mutations forward past log reclaim: the keyed records
	// themselves live in WAL segments the snapshot lets go of, so the
	// keys ride in the manifest instead (oldest first, bounded by the
	// writer). Absent in pre-key manifests.
	InsertKeys []ManifestInsertKey `json:"insert_keys,omitempty"`
	DeleteKeys []ManifestDeleteKey `json:"delete_keys,omitempty"`
	// UnixNano timestamps the cut (informational).
	UnixNano int64 `json:"unix_nano"`
}

// ManifestInsertKey is one insert idempotency key and the graph names
// logged under it.
type ManifestInsertKey struct {
	Key   string   `json:"key"`
	Names []string `json:"names"`
}

// ManifestDeleteKey is one delete idempotency key and the name it
// removed.
type ManifestDeleteKey struct {
	Key  string `json:"key"`
	Name string `json:"name"`
}

const manifestVersion = 1
const manifestName = "MANIFEST"

// manifestPath returns dir's manifest file path.
func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// WriteManifest atomically replaces dir's manifest.
func WriteManifest(dir string, m Manifest) error {
	if err := fault.Hit(fault.ManifestReplace).Do(); err != nil {
		return fmt.Errorf("wal: manifest replace: %w", err)
	}
	m.Version = manifestVersion
	if m.UnixNano == 0 {
		m.UnixNano = time.Now().UnixNano()
	}
	return AtomicWrite(manifestPath(dir), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(m)
	})
}

// LoadManifest reads dir's manifest; (nil, nil) when none exists (a
// fresh data directory, or one that never snapshotted).
func LoadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(manifestPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("%w: manifest version %d not supported", ErrCorrupt, m.Version)
	}
	return &m, nil
}

// snapshotName returns the snapshot file name for a cut at lsn.
func snapshotName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

const snapshotPrefix = "snap-"
const snapshotSuffix = ".snap"

// WriteSnapshot durably writes a snapshot file for a cut at lsn and
// returns its name. emit is called with a sink that frames each record
// exactly like a WAL segment (a snapshot IS a compacted log of
// inserts). The file lands atomically; the caller then commits it by
// writing a manifest referencing it — a crash in between leaves an
// orphan file the next snapshot prunes, never a broken root.
func WriteSnapshot(dir string, lsn uint64, emit func(sink func(Record) error) error) (string, error) {
	if err := fault.Hit(fault.SnapshotWrite).Do(); err != nil {
		return "", fmt.Errorf("wal: snapshot write: %w", err)
	}
	name := snapshotName(lsn)
	var buf []byte
	err := AtomicWrite(filepath.Join(dir, name), func(w io.Writer) error {
		return emit(func(rec Record) error {
			buf = encodeRecord(buf[:0], rec)
			_, err := w.Write(buf)
			return err
		})
	})
	if err != nil {
		return "", err
	}
	return name, nil
}

// ReadSnapshot streams every record of a snapshot file to fn. Unlike
// WAL replay, corruption here is a hard error: the snapshot is the
// base state, written atomically — a damaged one cannot be partially
// trusted.
func ReadSnapshot(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	data, err := io.ReadAll(bufio.NewReader(f))
	if err != nil {
		return err
	}
	off := int64(0)
	for off < st.Size() {
		rec, n, ok := nextRecord(data[off:])
		if !ok {
			return fmt.Errorf("%w: snapshot %s at byte %d", ErrCorrupt, path, off)
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// PruneSnapshots removes every snapshot file in dir except keep (the
// one the current manifest references). Orphans arise only from a
// crash between snapshot write and manifest commit.
func PruneSnapshots(dir, keep string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == keep ||
			!strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return SyncDir(dir)
	}
	return nil
}
