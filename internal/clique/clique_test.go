package clique

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Error("Set/Has broken")
	}
	if b.Count() != 3 {
		t.Errorf("Count=%d", b.Count())
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 2 {
		t.Error("Clear broken")
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Errorf("ForEach=%v", got)
	}
	c := b.Clone()
	c.Clear(0)
	if !b.Has(0) {
		t.Error("Clone aliases")
	}
	if b.Empty() {
		t.Error("Empty wrong")
	}
	if !NewBitSet(10).Empty() {
		t.Error("fresh bitset not empty")
	}
}

func TestBitSetIntersect(t *testing.T) {
	a, b, dst := NewBitSet(100), NewBitSet(100), NewBitSet(100)
	a.Set(3)
	a.Set(70)
	b.Set(70)
	b.Set(99)
	a.IntersectInto(b, dst)
	if dst.Count() != 1 || !dst.Has(70) {
		t.Error("IntersectInto wrong")
	}
}

func TestMaxCliqueEmpty(t *testing.T) {
	g := NewGraph(0)
	if c := g.MaxClique(0); len(c) != 0 {
		t.Errorf("clique=%v", c)
	}
	g1 := NewGraph(3) // no edges: max clique is any single vertex
	if s := g1.MaxCliqueSize(); s != 1 {
		t.Errorf("size=%d, want 1", s)
	}
}

func TestMaxCliqueComplete(t *testing.T) {
	n := 8
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	if s := g.MaxCliqueSize(); s != n {
		t.Errorf("K%d clique size=%d", n, s)
	}
}

func TestMaxCliquePlanted(t *testing.T) {
	// 20 vertices, plant K6 on {2,5,8,11,14,17}, sprinkle random edges that
	// do not create a larger clique among low vertices (checked by brute).
	rng := rand.New(rand.NewSource(19))
	planted := []int{2, 5, 8, 11, 14, 17}
	g := NewGraph(20)
	for i := 0; i < len(planted); i++ {
		for j := i + 1; j < len(planted); j++ {
			g.AddEdge(planted[i], planted[j])
		}
	}
	for k := 0; k < 25; k++ {
		g.AddEdge(rng.Intn(20), rng.Intn(20))
	}
	got := g.MaxClique(0)
	want := bruteMaxCliqueSize(g)
	if len(got) != want {
		t.Errorf("clique size=%d, brute=%d", len(got), want)
	}
	if !isClique(g, got) {
		t.Errorf("returned set %v is not a clique", got)
	}
	if len(got) < 6 {
		t.Errorf("missed planted K6: %v", got)
	}
}

func TestMaxCliqueSelfLoopIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0)
	if g.Adj[0].Has(0) {
		t.Error("self loop stored")
	}
}

func TestMaxCliqueMinSizePrune(t *testing.T) {
	// Max clique is 3; asking for minSize 5 must return nil (nothing >= 5).
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	if c := g.MaxClique(5); c != nil {
		t.Errorf("minSize prune returned %v", c)
	}
	if c := g.MaxClique(3); len(c) != 3 {
		t.Errorf("minSize=3 returned %v", c)
	}
}

func TestMaxCliqueMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.5 {
					g.AddEdge(i, j)
				}
			}
		}
		got := g.MaxClique(0)
		return isClique(g, got) && len(got) == bruteMaxCliqueSize(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func isClique(g *Graph, vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.Adj[vs[i]].Has(vs[j]) {
				return false
			}
		}
	}
	sorted := append([]int(nil), vs...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return false
		}
	}
	return true
}

func bruteMaxCliqueSize(g *Graph) int {
	best := 0
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > best {
			best = len(cur)
		}
		for v := start; v < g.N; v++ {
			ok := true
			for _, w := range cur {
				if !g.Adj[v].Has(w) {
					ok = false
					break
				}
			}
			if ok {
				rec(v+1, append(cur, v))
			}
		}
	}
	if g.N > 0 {
		rec(0, nil)
	}
	return best
}
