// Package clique implements maximum-clique search on small dense graphs
// given as adjacency bitsets. It is the substrate of the clique-on-modular-
// product formulation of maximum common subgraph (internal/product +
// internal/mcs).
//
// The solver is a branch-and-bound Bron–Kerbosch variant with greedy
// coloring bounds (a compact Tomita-style MCS algorithm). Graph sizes here
// are products of the two compared graphs' orders, typically < 200 vertices.
package clique

import "math/bits"

// BitSet is a fixed-capacity bitset over vertex indices.
type BitSet []uint64

// NewBitSet returns a bitset able to hold n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set sets bit i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set.
func (b BitSet) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Count returns the number of set bits.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a copy.
func (b BitSet) Clone() BitSet {
	c := make(BitSet, len(b))
	copy(c, b)
	return c
}

// IntersectInto sets dst = b ∩ o. dst must have the same length.
func (b BitSet) IntersectInto(o, dst BitSet) {
	for i := range b {
		dst[i] = b[i] & o[i]
	}
}

// Empty reports whether no bit is set.
func (b BitSet) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for each set bit in ascending order.
func (b BitSet) ForEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			f(i)
			w &= w - 1
		}
	}
}

// Graph is an undirected graph in adjacency-bitset form.
type Graph struct {
	N   int
	Adj []BitSet
}

// NewGraph returns an empty clique-search graph on n vertices.
func NewGraph(n int) *Graph {
	g := &Graph{N: n, Adj: make([]BitSet, n)}
	for i := range g.Adj {
		g.Adj[i] = NewBitSet(n)
	}
	return g
}

// AddEdge adds the undirected edge {u,v}.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.Adj[u].Set(v)
	g.Adj[v].Set(u)
}

// MaxClique returns one maximum clique as a sorted vertex list. The empty
// graph yields an empty clique. minSize, if > 0, prunes branches that
// cannot reach that size (useful when the caller only cares about cliques
// of at least a known bound); pass 0 for a full search.
func (g *Graph) MaxClique(minSize int) []int {
	if g.N == 0 {
		return nil
	}
	s := &solver{g: g, bestSize: minSize - 1}
	cand := NewBitSet(g.N)
	for i := 0; i < g.N; i++ {
		cand.Set(i)
	}
	s.expand(cand, nil)
	return s.best
}

// MaxCliqueSize returns the size of the maximum clique.
func (g *Graph) MaxCliqueSize() int { return len(g.MaxClique(0)) }

type solver struct {
	g        *Graph
	best     []int
	bestSize int
}

// expand is the Tomita-style branch and bound: order candidates by greedy
// coloring, then try them in reverse color order, pruning when
// |current| + color <= best.
func (s *solver) expand(cand BitSet, cur []int) {
	if cand.Empty() {
		if len(cur) > s.bestSize {
			s.bestSize = len(cur)
			s.best = append([]int(nil), cur...)
		}
		return
	}
	order, colors := s.colorSort(cand)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if len(cur)+colors[i] <= s.bestSize {
			return
		}
		next := NewBitSet(s.g.N)
		cand.IntersectInto(s.g.Adj[v], next)
		s.expand(next, append(cur, v))
		cand.Clear(v)
	}
}

// colorSort greedily colors the candidate set and returns the vertices
// sorted by ascending color together with their colors. color[i] is an
// upper bound on the clique size extendable from order[i:].
func (s *solver) colorSort(cand BitSet) (order []int, colors []int) {
	var verts []int
	cand.ForEach(func(i int) { verts = append(verts, i) })
	// Color classes: vertices in one class are pairwise non-adjacent.
	classes := make([][]int, 0, 8)
	for _, v := range verts {
		placed := false
		for ci := range classes {
			ok := true
			for _, w := range classes[ci] {
				if s.g.Adj[v].Has(w) {
					ok = false
					break
				}
			}
			if ok {
				classes[ci] = append(classes[ci], v)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{v})
		}
	}
	for ci, class := range classes {
		for _, v := range class {
			order = append(order, v)
			colors = append(colors, ci+1)
		}
	}
	return order, colors
}
