// Package product builds the modular (association) product of two labeled
// graphs. Maximum cliques of the modular product correspond to maximum
// common *induced* subgraphs of the two factors, which gives the classic
// clique-based MCS formulation used as an ablation against the McGregor
// search in internal/mcs.
package product

import (
	"skygraph/internal/clique"
	"skygraph/internal/graph"
)

// Pair is one vertex of the modular product: the hypothesis that vertex U
// of the first factor corresponds to vertex V of the second.
type Pair struct{ U, V int }

// Modular returns the modular product of g and h restricted to
// label-compatible pairs, together with the pair corresponding to each
// product vertex. Product vertices (u1,v1) and (u2,v2) are adjacent iff
// u1 != u2, v1 != v2 and either both factors have an equally-labeled edge
// between the respective vertices, or neither factor has any edge there.
//
// The O(n²) double loop over product vertices probes both factors'
// adjacency once per pair; doing that through per-vertex label maps
// (graph.EdgeLabel) made the probe a hash lookup on the MCS hot path.
// Instead both factors are flattened once into dense label-id
// adjacency rows sharing one label table, which turns the adjacency
// test into two array loads and an integer compare: ids are equal
// exactly when both factors have equally-labeled edges there or
// neither has any (id 0).
func Modular(g, h *graph.Graph) (*clique.Graph, []Pair) {
	var pairs []Pair
	for u := 0; u < g.Order(); u++ {
		for v := 0; v < h.Order(); v++ {
			if g.VertexLabel(u) == h.VertexLabel(v) {
				pairs = append(pairs, Pair{U: u, V: v})
			}
		}
	}
	labels := map[string]int32{}
	gadj, gn := labelAdjacency(g, labels)
	hadj, hn := labelAdjacency(h, labels)
	pg := clique.NewGraph(len(pairs))
	for i := 0; i < len(pairs); i++ {
		a := pairs[i]
		grow := gadj[a.U*gn : (a.U+1)*gn]
		hrow := hadj[a.V*hn : (a.V+1)*hn]
		for j := i + 1; j < len(pairs); j++ {
			b := pairs[j]
			if a.U == b.U || a.V == b.V {
				continue
			}
			if grow[b.U] == hrow[b.V] {
				pg.AddEdge(i, j)
			}
		}
	}
	return pg, pairs
}

// labelAdjacency flattens a factor into a dense n×n row-major matrix of
// edge-label ids: 0 for no edge, otherwise 1 + the label's index in the
// shared table (so ids are comparable across both factors).
func labelAdjacency(g *graph.Graph, labels map[string]int32) ([]int32, int) {
	n := g.Order()
	adj := make([]int32, n*n)
	for _, e := range g.Edges() {
		id, ok := labels[e.Label]
		if !ok {
			id = int32(len(labels)) + 1
			labels[e.Label] = id
		}
		adj[e.U*n+e.V] = id
		adj[e.V*n+e.U] = id
	}
	return adj, n
}

// MaxCommonInducedSubgraph returns a maximum common induced subgraph of g
// and h via max clique on the modular product. The result is the list of
// corresponding vertex pairs; the induced common subgraph may be
// disconnected. This is the Levi/Barrow–Burstall formulation; note the
// *induced* semantics differ from the paper's Definition 7 (connected,
// edge-maximal partial subgraph), which internal/mcs implements directly.
func MaxCommonInducedSubgraph(g, h *graph.Graph) []Pair {
	pg, pairs := Modular(g, h)
	cl := pg.MaxClique(0)
	out := make([]Pair, 0, len(cl))
	for _, i := range cl {
		out = append(out, pairs[i])
	}
	return out
}

// CommonEdges counts the factor edges realized by a set of corresponding
// pairs: edges (u1,u2) of g such that both pairs are present, the matching
// (v1,v2) edge exists in h, and the labels agree.
func CommonEdges(g, h *graph.Graph, pairs []Pair) int {
	n := 0
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			gl, gok := g.EdgeLabel(pairs[i].U, pairs[j].U)
			hl, hok := h.EdgeLabel(pairs[i].V, pairs[j].V)
			if gok && hok && gl == hl {
				n++
			}
		}
	}
	return n
}
