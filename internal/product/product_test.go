package product

import (
	"math/rand"
	"testing"

	"skygraph/internal/graph"
)

func TestModularPairsLabelCompatible(t *testing.T) {
	g := graph.Path(2, "A", "x")
	h := graph.New("h")
	h.AddVertex("A")
	h.AddVertex("B")
	_, pairs := Modular(g, h)
	if len(pairs) != 2 { // (0,0) and (1,0)
		t.Errorf("pairs=%v", pairs)
	}
}

func TestMCISIdentical(t *testing.T) {
	g := graph.Cycle(4, "A", "x")
	pairs := MaxCommonInducedSubgraph(g, g.Clone())
	if len(pairs) != 4 {
		t.Errorf("MCIS of identical C4: %d pairs, want 4", len(pairs))
	}
	if ce := CommonEdges(g, g, pairs); ce != 4 {
		t.Errorf("common edges=%d, want 4", ce)
	}
}

func TestMCISInducedSemantics(t *testing.T) {
	// P3 (path a-b-c) vs K3: the max common *induced* subgraph is a single
	// edge plus possibly an isolated vertex; the three P3 vertices cannot
	// all be chosen because K3 has the closing edge and P3 does not.
	p := graph.Path(3, "A", "x")
	k := graph.Complete(3, "A", "x")
	pairs := MaxCommonInducedSubgraph(p, k)
	if ce := CommonEdges(p, k, pairs); ce > 1 {
		t.Errorf("induced MCIS realizes %d edges; induced semantics violated", ce)
	}
}

func TestMCISWitnessValid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := graph.Molecule(7, rng)
		h := graph.Molecule(7, rng)
		pairs := MaxCommonInducedSubgraph(g, h)
		seenU, seenV := map[int]bool{}, map[int]bool{}
		for _, p := range pairs {
			if seenU[p.U] || seenV[p.V] {
				t.Fatalf("not injective: %v", pairs)
			}
			seenU[p.U], seenV[p.V] = true, true
			if g.VertexLabel(p.U) != h.VertexLabel(p.V) {
				t.Fatalf("label mismatch: %v", p)
			}
		}
		// Induced property: adjacency patterns must agree on all pairs.
		for i := 0; i < len(pairs); i++ {
			for j := i + 1; j < len(pairs); j++ {
				gl, gok := g.EdgeLabel(pairs[i].U, pairs[j].U)
				hl, hok := h.EdgeLabel(pairs[i].V, pairs[j].V)
				if gok != hok || (gok && gl != hl) {
					t.Fatalf("induced property violated at %v,%v", pairs[i], pairs[j])
				}
			}
		}
	}
}

func TestCommonEdgesEmpty(t *testing.T) {
	g := graph.Path(3, "A", "x")
	if CommonEdges(g, g, nil) != 0 {
		t.Error("CommonEdges(nil) != 0")
	}
}

func TestModularDisjointLabels(t *testing.T) {
	g := graph.Path(3, "A", "x")
	h := graph.Path(3, "B", "x")
	pg, pairs := Modular(g, h)
	if len(pairs) != 0 || pg.N != 0 {
		t.Errorf("expected empty product, got %d pairs", len(pairs))
	}
	if got := MaxCommonInducedSubgraph(g, h); len(got) != 0 {
		t.Errorf("MCIS=%v", got)
	}
}
