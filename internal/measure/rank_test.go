package measure

import (
	"math"
	"math/rand"
	"testing"

	"skygraph/internal/graph"
)

func rankSweep() []Measure {
	return []Measure{DistEd{}, DistNEd{}, DistMcs{}, DistGu{}, DistVLabel{}, DistELabel{}, DistDegree{}}
}

// TestIntervalAdmissible: for every built-in measure, the scalar
// interval brackets the value Compute reports — from tier-0 signatures
// alone, after refinement, and under engine caps.
func TestIntervalAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		g := graph.Molecule(3+rng.Intn(7), rng)
		q := graph.Molecule(3+rng.Intn(7), rng)
		sg, sq := NewSignature(g), NewSignature(q)
		bs0 := BoundPair(sg, sq)
		bs1 := Refine(g, q, bs0)
		for _, opts := range []Options{{}, {GEDMaxNodes: 15, MCSMaxNodes: 15}} {
			ps := Compute(g, q, opts)
			for _, m := range rankSweep() {
				v := m.FromStats(ps)
				for _, bs := range []BoundStats{bs0, bs1} {
					lo, hi := bs.Interval(m)
					if v < lo || v > hi {
						t.Fatalf("trial %d %s: value %v outside [%v, %v] (caps %+v)", trial, m.Name(), v, lo, hi, opts)
					}
				}
			}
		}
	}
}

// TestPlanRankCutoffs checks the cutoff semantics against brute force:
// for every integer GED in the interval, the distance fits the
// threshold iff GED <= GEDLimit; for every integer |mcs|, it fits iff
// |mcs| >= MCSNeed.
func TestPlanRankCutoffs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		g := graph.Molecule(3+rng.Intn(6), rng)
		q := graph.Molecule(3+rng.Intn(6), rng)
		bs := Refine(g, q, BoundPair(NewSignature(g), NewSignature(q)))
		for _, m := range rankSweep() {
			lo, hi := bs.Interval(m)
			for _, t0 := range []float64{lo - 0.5, lo, (lo + hi) / 2, hi, hi + 0.5} {
				p := PlanRank(m, bs, t0)
				if p.NeedGED {
					for gv := int(bs.GEDLo); gv <= int(bs.GEDHi); gv++ {
						fits := m.FromStats(bs.statsAt(float64(gv), bs.MCSHi)) <= t0
						if fits != (float64(gv) <= p.GEDLimit) {
							t.Fatalf("%s t=%v: GED=%d fits=%v but limit=%v", m.Name(), t0, gv, fits, p.GEDLimit)
						}
					}
				}
				if p.NeedMCS {
					for mv := bs.MCSLo; mv <= bs.MCSHi; mv++ {
						fits := m.FromStats(bs.statsAt(bs.GEDLo, mv)) <= t0
						if fits != (mv >= p.MCSNeed) {
							t.Fatalf("%s t=%v: MCS=%d fits=%v but need=%d", m.Name(), t0, mv, fits, p.MCSNeed)
						}
					}
				}
			}
		}
	}
}

// TestComputeRankMatchesComputeHinted: ComputeRank either excludes a
// pair — and then the true reported distance really exceeds the
// threshold — or returns the bit-identical score of the full
// evaluation, with and without engine caps and refinement witnesses.
func TestComputeRankMatchesComputeHinted(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 30; trial++ {
		g := graph.Molecule(3+rng.Intn(6), rng)
		q := graph.Molecule(3+rng.Intn(6), rng)
		sg, sq := NewSignature(g), NewSignature(q)
		for _, opts := range []Options{{}, {GEDMaxNodes: 15, MCSMaxNodes: 15}} {
			bs, wit := RefineWitness(g, q, BoundPair(sg, sq))
			h := PairHints{Sig1: sg, Sig2: sq, Witness: wit}
			for _, m := range rankSweep() {
				truth := m.FromStats(ComputeHinted(g, q, opts, h))
				if got, _ := ScorePair(g, q, m, opts, h); got != truth {
					t.Fatalf("%s: ScorePair %v != truth %v (caps %+v)", m.Name(), got, truth, opts)
				}
				lo, hi := bs.Interval(m)
				for _, t0 := range []float64{lo - 1, lo, truth, (lo + hi) / 2, hi, math.Inf(1)} {
					score, excluded, _ := ComputeRank(g, q, m, t0, bs, opts, h)
					if excluded {
						if truth <= t0 {
							t.Fatalf("%s t=%v: excluded but truth %v fits (caps %+v)", m.Name(), t0, truth, opts)
						}
						continue
					}
					if score != truth {
						t.Fatalf("%s t=%v: score %v != truth %v (caps %+v)", m.Name(), t0, score, truth, opts)
					}
				}
			}
		}
	}
}
