package measure

import (
	"math/rand"
	"testing"
	"testing/quick"

	"skygraph/internal/graph"
)

func TestFeatureMeasuresIdenticalZero(t *testing.T) {
	g := graph.Cycle(5, "A", "x")
	s := Compute(g, g.Clone(), Options{})
	for _, m := range []Measure{DistVLabel{}, DistELabel{}, DistDegree{}} {
		if v := m.FromStats(s); v != 0 {
			t.Errorf("%s=%v on identical graphs", m.Name(), v)
		}
	}
}

func TestFeatureMeasuresRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1 := graph.ErdosRenyi(1+r.Intn(7), 0.4, []string{"A", "B"}, []string{"x", "y"}, r)
		g2 := graph.ErdosRenyi(1+r.Intn(7), 0.4, []string{"A", "B"}, []string{"x", "y"}, r)
		s := Compute(g1, g2, Options{})
		for _, m := range []Measure{DistVLabel{}, DistELabel{}, DistDegree{}} {
			v := m.FromStats(s)
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestDistVLabelValues(t *testing.T) {
	g1 := graph.Path(4, "A", "x") // 4x A
	g2 := graph.Path(4, "B", "x") // 4x B
	s := Compute(g1, g2, Options{})
	if v := (DistVLabel{}).FromStats(s); v != 1 {
		t.Errorf("DistVLabel=%v, want 1 (fully disjoint labels)", v)
	}
	g3 := graph.Path(4, "A", "x")
	g3.RelabelVertex(0, "B")
	s2 := Compute(g1, g3, Options{})
	if v := (DistVLabel{}).FromStats(s2); v != 0.25 {
		t.Errorf("DistVLabel=%v, want 0.25 (1 of 4 differs)", v)
	}
}

func TestDistELabelValues(t *testing.T) {
	g1 := graph.Path(3, "A", "x")
	g2 := graph.Path(3, "A", "y")
	s := Compute(g1, g2, Options{})
	if v := (DistELabel{}).FromStats(s); v != 1 {
		t.Errorf("DistELabel=%v, want 1", v)
	}
}

func TestDistDegreeStructureOnly(t *testing.T) {
	// Path P4 vs star S4: degree sequences (2,2,1,1) vs (3,1,1,1): L1 = 2,
	// total degree mass 2*(3+3)=12 -> 1/6.
	p := graph.Path(4, "A", "x")
	s := graph.Star(4, "A", "x")
	st := Compute(p, s, Options{})
	want := 2.0 / 12.0
	if v := (DistDegree{}).FromStats(st); v != want {
		t.Errorf("DistDegree=%v, want %v", v, want)
	}
	// Same structure, different labels: degree distance must be 0.
	q := graph.Path(4, "B", "y")
	st2 := Compute(p, q, Options{})
	if v := (DistDegree{}).FromStats(st2); v != 0 {
		t.Errorf("DistDegree=%v, want 0 (labels must not matter)", v)
	}
}

func TestDegreeL1(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{3, 1}, nil, 4},
		{[]int{3, 2, 1}, []int{3, 2, 1}, 0},
		{[]int{4, 1}, []int{2, 2, 1}, 4},
	}
	for i, c := range cases {
		if got := degreeL1(c.a, c.b); got != c.want {
			t.Errorf("case %d: %d, want %d", i, got, c.want)
		}
		if got := degreeL1(c.b, c.a); got != c.want {
			t.Errorf("case %d sym: %d, want %d", i, got, c.want)
		}
	}
}

func TestExtendedBasis(t *testing.T) {
	ext := Extended()
	if len(ext) != 6 {
		t.Fatalf("len=%d", len(ext))
	}
	for _, name := range []string{"DistVLabel", "DistELabel", "DistDegree"} {
		m, err := ByName(name)
		if err != nil || m.Name() != name {
			t.Errorf("ByName(%s): %v %v", name, m, err)
		}
	}
}

func TestHistDistsMatchGEDLowerBound(t *testing.T) {
	// VHistDist + EHistDist must equal ged.LowerBound by construction and
	// therefore never exceed the exact GED.
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 10; trial++ {
		g1 := graph.Molecule(6, rng)
		g2 := graph.Molecule(6, rng)
		s := Compute(g1, g2, Options{})
		if lb := float64(s.VHistDist + s.EHistDist); lb > s.GED+1e-9 {
			t.Fatalf("histogram bound %v exceeds GED %v", lb, s.GED)
		}
	}
}
