package measure

import (
	"math/rand"
	"testing"

	"skygraph/internal/graph"
)

// requireContains asserts lo <= vec <= hi componentwise.
func requireContains(t *testing.T, label string, lo, vec, hi []float64) {
	t.Helper()
	if len(lo) != len(vec) || len(hi) != len(vec) {
		t.Fatalf("%s: dimension mismatch lo=%d vec=%d hi=%d", label, len(lo), len(vec), len(hi))
	}
	for d := range vec {
		if vec[d] < lo[d] || vec[d] > hi[d] {
			t.Fatalf("%s: dim %d: exact %v outside [%v, %v]\nlo=%v\nvec=%v\nhi=%v",
				label, d, vec[d], lo[d], hi[d], lo, vec, hi)
		}
	}
}

// TestBoundGCSAdmissible: the tier-0 signature intervals and the tier-1
// refined intervals must both contain the GCS vector Compute reports —
// for unbounded exact evaluation and for capped evaluation (where
// Compute returns the bipartite GED upper bound and the greedy-floored
// MCS the bounds are built around).
func TestBoundGCSAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bases := [][]Measure{Default(), Extended(), DiversityBasis()}
	evals := []Options{
		{}, // exact
		{GEDMaxNodes: 50, MCSMaxNodes: 50},
		{GEDMaxNodes: 1, MCSMaxNodes: 1},
	}
	for trial := 0; trial < 40; trial++ {
		g := graph.Molecule(3+rng.Intn(7), rng)
		q := graph.Molecule(3+rng.Intn(7), rng)
		sg, sq := NewSignature(g), NewSignature(q)
		bs0 := BoundPair(sg, sq)
		bs1, wit := RefineWitness(g, q, bs0)
		if bs1.GEDHi > bs0.GEDHi || bs1.MCSLo < bs0.MCSLo {
			t.Fatalf("refinement loosened bounds: tier0=%+v tier1=%+v", bs0, bs1)
		}
		for _, eval := range evals {
			// Reusing the refinement witness and the stored signatures
			// must not change what Compute reports (the equivalence
			// guarantee rests on it).
			plain := Compute(g, q, eval)
			hinted := ComputeHinted(g, q, eval, PairHints{Sig1: sg, Sig2: sq, Witness: wit})
			if hinted != plain {
				t.Fatalf("hint reuse changed Compute: %+v vs %+v", hinted, plain)
			}
			for _, basis := range bases {
				vec := GCS(plain, basis)
				lo0, hi0 := BoundGCS(sg, sq, basis)
				requireContains(t, "tier0", lo0, vec, hi0)
				lo1, hi1 := bs1.IntervalGCS(basis)
				requireContains(t, "tier1", lo1, vec, hi1)
			}
		}
	}
}

// TestBoundGCSEmptyGraphs: degenerate inputs keep the invariant.
func TestBoundGCSEmptyGraphs(t *testing.T) {
	empty := graph.New("empty")
	single := graph.New("single")
	single.AddVertex("C")
	rng := rand.New(rand.NewSource(11))
	mol := graph.Molecule(5, rng)
	pairs := [][2]*graph.Graph{{empty, empty}, {empty, mol}, {mol, empty}, {single, mol}, {single, single}}
	for _, p := range pairs {
		g, q := p[0], p[1]
		sg, sq := NewSignature(g), NewSignature(q)
		vec := GCS(Compute(g, q, Options{}), Default())
		lo, hi := BoundGCS(sg, sq, Default())
		requireContains(t, g.Name()+"/"+q.Name(), lo, vec, hi)
		bs := Refine(g, q, BoundPair(sg, sq))
		lo1, hi1 := bs.IntervalGCS(Default())
		requireContains(t, "refined "+g.Name()+"/"+q.Name(), lo1, vec, hi1)
	}
}

// TestBoundableRejectsForeignMeasures: pruning must not engage for a
// basis containing a measure whose monotonicity is unknown.
func TestBoundableRejectsForeignMeasures(t *testing.T) {
	if !Boundable(Default()) || !Boundable(Extended()) || !Boundable(DiversityBasis()) {
		t.Fatal("built-in bases must be boundable")
	}
	if Boundable([]Measure{DistEd{}, fakeMeasure{}}) {
		t.Fatal("foreign measure must make the basis unboundable")
	}
}

type fakeMeasure struct{}

func (fakeMeasure) Name() string                { return "Fake" }
func (fakeMeasure) FromStats(PairStats) float64 { return 0 }
