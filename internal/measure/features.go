package measure

// This file adds cheap feature-based local distances beyond the paper's
// three structural measures. The paper argues each index captures "one
// aspect in the graph structure" (Section IV); these measures extend the
// GCS basis to higher dimensions for the d-sweep experiments (E8) at
// negligible cost: all derive from label histograms and degree sequences
// already computed by Compute.

// DistVLabel is the normalized vertex-label histogram distance: the
// minimum number of vertex relabel/insert/delete operations implied by the
// label multisets alone, divided by max(|V1|, |V2|). It lower-bounds the
// vertex-related fraction of the edit distance and reacts only to label
// composition, not structure.
type DistVLabel struct{}

func (DistVLabel) Name() string { return "DistVLabel" }

// FromStats returns VHistDist / max(order1, order2), or 0 for two empty
// graphs.
func (DistVLabel) FromStats(s PairStats) float64 {
	m := s.Order1
	if s.Order2 > m {
		m = s.Order2
	}
	if m == 0 {
		return 0
	}
	return float64(s.VHistDist) / float64(m)
}

// DistELabel is the normalized edge-label histogram distance, the edge
// analogue of DistVLabel.
type DistELabel struct{}

func (DistELabel) Name() string { return "DistELabel" }

// FromStats returns EHistDist / max(|g1|, |g2|), or 0 when both graphs
// are edgeless.
func (DistELabel) FromStats(s PairStats) float64 {
	m := s.Size1
	if s.Size2 > m {
		m = s.Size2
	}
	if m == 0 {
		return 0
	}
	return float64(s.EHistDist) / float64(m)
}

// DistDegree compares connectivity profiles: the L1 distance between the
// sorted degree sequences (shorter padded with zeros) normalized by the
// total degree mass 2(|E1|+|E2|). Two graphs with identical degree
// sequences score 0 regardless of labels.
type DistDegree struct{}

func (DistDegree) Name() string { return "DistDegree" }

// FromStats returns DegL1 / (2(|g1|+|g2|)), or 0 when both graphs are
// edgeless.
func (DistDegree) FromStats(s PairStats) float64 {
	total := 2 * (s.Size1 + s.Size2)
	if total == 0 {
		return 0
	}
	return float64(s.DegL1) / float64(total)
}

// Extended returns the paper basis extended with the feature measures:
// (DistEd, DistMcs, DistGu, DistVLabel, DistELabel, DistDegree).
func Extended() []Measure {
	return []Measure{DistEd{}, DistMcs{}, DistGu{}, DistVLabel{}, DistELabel{}, DistDegree{}}
}

// degreeL1 is the L1 distance of two descending degree sequences, the
// shorter padded with zeros.
func degreeL1(a, b []int) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	at := func(s []int, i int) int {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	sum := 0
	for i := 0; i < n; i++ {
		d := at(a, i) - at(b, i)
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}
