package measure

import (
	"math"

	"skygraph/internal/ged"
	"skygraph/internal/graph"
	"skygraph/internal/mcs"
)

// This file is the ranked-query side of the bound machinery: where the
// skyline filter consumes whole interval vectors (IntervalGCS), top-k
// and range queries rank by ONE measure and carry a live scalar
// threshold (the current k-th best distance, or the radius). Three
// pieces serve that:
//
//   - Interval: the scalar [lo, hi] bracket of a single measure, the
//     optimistic bound a best-first scan orders candidates by;
//   - PlanRank: translating "distance > t" into decision thresholds the
//     exact engines understand (a GED limit, an |mcs| floor);
//   - ComputeRank: the threshold-fed pair evaluation — decision runs
//     first, full exactness only for candidates the engines cannot
//     discard. Scores of surviving candidates are byte-identical to
//     m.FromStats(ComputeHinted(...)) on the same pair.

// Rankable reports whether m is a built-in measure the ranked
// filter-and-refine path can bound and decide. Foreign measures must
// fall back to full evaluation.
func Rankable(m Measure) bool { return Boundable([]Measure{m}) }

// EngineNeeds reports which exact engines m consumes: the feature
// measures (DistVLabel, DistELabel, DistDegree) derive entirely from
// signatures and need neither. Only meaningful for Rankable measures.
func EngineNeeds(m Measure) (needGED, needMCS bool) {
	switch m.(type) {
	case DistEd, DistNEd:
		return true, false
	case DistMcs, DistGu:
		return false, true
	}
	return false, false
}

// statsAt renders the PairStats the measure functions see for a
// hypothetical (GED, MCS) point inside the interval; the cheap fields
// are exact and shared.
func (bs BoundStats) statsAt(gedv float64, mcsv int) PairStats {
	return PairStats{
		GED: gedv, MCS: mcsv,
		Size1: bs.Size1, Size2: bs.Size2,
		Order1: bs.Order1, Order2: bs.Order2,
		VHistDist: bs.VHistDist, EHistDist: bs.EHistDist, DegL1: bs.DegL1,
	}
}

// Interval returns the scalar [lo, hi] bracket of a single measure
// under bs: lo <= m.FromStats(Compute(...)) <= hi, by the same corner
// monotonicity IntervalGCS relies on. Only valid for Rankable measures.
func (bs BoundStats) Interval(m Measure) (lo, hi float64) {
	opt, pes := bs.corners()
	return m.FromStats(opt), m.FromStats(pes)
}

// RankPlan tells the exact engines how to decide "distance under m
// exceeds t" for one candidate pair. Either proof suffices:
//
//   - GED side: the reported edit distance provably exceeds GEDLimit
//     (ged.Options.Limit);
//   - MCS side: the reported |mcs| is provably below MCSNeed
//     (mcs.Options.Need).
//
// The cutoffs are derived by evaluating m.FromStats over integer grid
// points of the interval — the same float operations the scoring path
// uses — so no analytic inversion can disagree with the scores by a
// rounding error.
type RankPlan struct {
	// NeedGED and NeedMCS report which engines m consumes (EngineNeeds).
	NeedGED, NeedMCS bool
	// GEDLimit is the largest GED value whose m-distance still fits
	// under the threshold: a proof of GED > GEDLimit excludes the
	// candidate. +Inf when no reportable GED can push the distance past
	// the threshold (exclusion via GED impossible). Valid when NeedGED.
	GEDLimit float64
	// MCSNeed is the smallest |mcs| whose m-distance fits under the
	// threshold: a proof of |mcs| < MCSNeed excludes the candidate.
	// 0 when every reportable |mcs| fits (exclusion via MCS
	// impossible). Valid when NeedMCS.
	MCSNeed int
}

// PlanRank derives the engine cutoffs for deciding "m-distance > t" on
// a candidate bounded by bs. The uniform cost model (integral GED) is
// assumed, as everywhere in the Compute pipeline.
func PlanRank(m Measure, bs BoundStats, t float64) RankPlan {
	p := RankPlan{}
	p.NeedGED, p.NeedMCS = EngineNeeds(m)
	if p.NeedGED {
		// m-distance is non-decreasing in GED and the reported GED lies
		// in [GEDLo, GEDHi]; find the largest integer in that range
		// whose distance still fits (binary search on monotonicity).
		lo, hi := int(bs.GEDLo), int(bs.GEDHi)
		switch {
		case m.FromStats(bs.statsAt(float64(hi), bs.MCSHi)) <= t:
			// Even the pessimistic end fits: no reportable GED exceeds
			// the threshold.
			p.GEDLimit = math.Inf(1)
		case m.FromStats(bs.statsAt(float64(lo), bs.MCSHi)) > t:
			// Even the optimistic end exceeds: any proof of
			// GED > GEDLo - 1 (immediate — the histogram bound is the
			// root f-value) excludes.
			p.GEDLimit = float64(lo) - 1
		default:
			for lo < hi {
				mid := (lo + hi + 1) / 2
				if m.FromStats(bs.statsAt(float64(mid), bs.MCSHi)) <= t {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			p.GEDLimit = float64(lo)
		}
	}
	if p.NeedMCS {
		// m-distance is non-increasing in |mcs| and the reported |mcs|
		// lies in [MCSLo, MCSHi]; find the smallest integer in that
		// range whose distance fits.
		lo, hi := bs.MCSLo, bs.MCSHi
		switch {
		case m.FromStats(bs.statsAt(bs.GEDLo, lo)) <= t:
			// Even the pessimistic end fits: exclusion impossible.
			p.MCSNeed = 0
		case m.FromStats(bs.statsAt(bs.GEDLo, hi)) > t:
			// Even the optimistic end exceeds: |mcs| <= MCSHi always
			// holds, so proving |mcs| < MCSHi + 1 excludes.
			p.MCSNeed = hi + 1
		default:
			for lo < hi {
				mid := (lo + hi) / 2
				if m.FromStats(bs.statsAt(bs.GEDLo, mid)) <= t {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			p.MCSNeed = lo
		}
	}
	return p
}

// ScorePair computes the exact score of one pair under a single
// measure, running only the engines the measure consumes (a DistEd
// scan never pays for MCS, a DistMcs scan never pays for GED, feature
// measures run neither). The score is byte-identical to
// m.FromStats(ComputeHinted(g1, g2, opts, h)); inexact reports whether
// a capped engine that actually ran backed it. Only valid for Rankable
// measures.
func ScorePair(g1, g2 *graph.Graph, m Measure, opts Options, h PairHints) (score float64, inexact bool) {
	score, _, inexact = ScorePairWith(g1, g2, m, opts, h, EngineResults{})
	return score, inexact
}

// ScorePairWith is ScorePair with per-engine reuse: results already
// present in have (and consumed by m) are replayed instead of re-run,
// and got returns the engine results this call used — exactly the
// engines m consumes — for republication into a memo.
func ScorePairWith(g1, g2 *graph.Graph, m Measure, opts Options, h PairHints, have EngineResults) (score float64, got EngineResults, inexact bool) {
	v1, e1, d1 := histsOf(g1, h.Sig1)
	v2, e2, d2 := histsOf(g2, h.Sig2)
	ps := PairStats{
		Size1: g1.Size(), Size2: g2.Size(),
		Order1: g1.Order(), Order2: g2.Order(),
		VHistDist: graph.HistogramDistance(v1, v2),
		EHistDist: graph.HistogramDistance(e1, e2),
		DegL1:     degreeL1(d1, d2),
	}
	needGED, needMCS := EngineNeeds(m)
	if needGED {
		if !have.HasGED {
			gopts := ged.Options{MaxNodes: opts.GEDMaxNodes}
			if h.Witness != nil {
				gopts.Upper = &h.Witness.GEDUpper
			}
			gres := ged.Exact(g1, g2, gopts)
			have.GED, have.GEDExact, have.HasGED = gres.Distance, gres.Exact, true
		}
		ps.GED, ps.GEDExact = have.GED, have.GEDExact
		got.GED, got.GEDExact, got.HasGED = have.GED, have.GEDExact, true
		inexact = inexact || !have.GEDExact
	}
	if needMCS {
		if !have.HasMCS {
			mopts := mcs.Options{MaxNodes: opts.MCSMaxNodes}
			if h.Witness != nil {
				mopts.Floor = &h.Witness.MCSFloor
			}
			mres := mcs.Exact(g1, g2, mopts)
			have.MCS, have.MCSExact, have.HasMCS = mres.Mapping.Edges, mres.Exhausted, true
		}
		ps.MCS, ps.MCSExact = have.MCS, have.MCSExact
		got.MCS, got.MCSExact, got.HasMCS = have.MCS, have.MCSExact, true
		inexact = inexact || !have.MCSExact
	}
	return m.FromStats(ps), got, inexact
}

// ComputeRank is the threshold-fed pair evaluation: it either proves
// the pair's m-distance exceeds t (excluded=true, no score) or returns
// the exact score, byte-identical to m.FromStats(ComputeHinted(g1, g2,
// opts, h)). bs must bound the pair (tier-0 BoundPair, optionally
// tightened by Refine) and h should carry the pair's signatures and
// refinement witness as usual. inexact reports whether a capped engine
// backed the returned score.
func ComputeRank(g1, g2 *graph.Graph, m Measure, t float64, bs BoundStats, opts Options, h PairHints) (score float64, excluded, inexact bool) {
	score, _, excluded, inexact = ComputeRankResults(g1, g2, m, t, bs, opts, h)
	return score, excluded, inexact
}

// ComputeRankResults is ComputeRank additionally returning the plain
// engine results that back an included score — exactly the engines m
// consumes, for republication into a memo. Decision-run outcomes are
// never returned: a search truncated at the decision threshold is not
// the plain engine's answer (except the uncapped goal case, whose
// value is provably identical and is returned). Excluded candidates
// return empty results.
func ComputeRankResults(g1, g2 *graph.Graph, m Measure, t float64, bs BoundStats, opts Options, h PairHints) (score float64, got EngineResults, excluded, inexact bool) {
	lo, hi := bs.Interval(m)
	if lo > t {
		// The whole interval sits above the threshold: the reported
		// distance cannot fit. (The best-first scan normally stops
		// before such candidates; this catches a threshold that
		// tightened after the candidate was claimed.)
		return 0, EngineResults{}, true, false
	}
	plan := PlanRank(m, bs, t)
	ps := bs.statsAt(0, 0)
	certain := hi <= t // interval proves inclusion: skip decision runs
	if plan.NeedGED {
		gopts := ged.Options{MaxNodes: opts.GEDMaxNodes}
		if h.Witness != nil {
			gopts.Upper = &h.Witness.GEDUpper
		}
		if !certain && !math.IsInf(plan.GEDLimit, 1) &&
			(gopts.Upper == nil || gopts.Upper.Distance > plan.GEDLimit) {
			dopts := gopts
			dopts.Limit = &plan.GEDLimit
			dres := ged.Exact(g1, g2, dopts)
			switch {
			case dres.AboveLimit:
				return 0, EngineResults{}, true, false
			case opts.GEDMaxNodes == 0 && dres.Exact:
				// Uncapped decision searches that reach a goal are the
				// plain search truncated at nothing: the goal is the
				// true minimum, exactly what the full run would report.
				ps.GED, ps.GEDExact = dres.Distance, true
			}
		}
		if !ps.GEDExact {
			gres := ged.Exact(g1, g2, gopts)
			ps.GED, ps.GEDExact = gres.Distance, gres.Exact
		}
		if !ps.GEDExact {
			inexact = true
		}
		got.GED, got.GEDExact, got.HasGED = ps.GED, ps.GEDExact, true
	}
	if plan.NeedMCS {
		mopts := mcs.Options{MaxNodes: opts.MCSMaxNodes}
		if h.Witness != nil {
			mopts.Floor = &h.Witness.MCSFloor
		}
		if !certain && plan.MCSNeed > 0 &&
			(mopts.Floor == nil || mopts.Floor.Edges < plan.MCSNeed) {
			dopts := mopts
			dopts.Need = plan.MCSNeed
			if dres := mcs.Exact(g1, g2, dopts); dres.ProvedBelowNeed {
				return 0, EngineResults{}, true, false
			}
			// A decision run that reached Need stopped early; its
			// mapping is decision-grade only, so the survivor pays the
			// plain search below for the byte-identical score.
		}
		mres := mcs.Exact(g1, g2, mopts)
		ps.MCS, ps.MCSExact = mres.Mapping.Edges, mres.Exhausted
		if !mres.Exhausted {
			inexact = true
		}
		got.MCS, got.MCSExact, got.HasMCS = ps.MCS, ps.MCSExact, true
	}
	return m.FromStats(ps), got, false, inexact
}
