package measure

import (
	"skygraph/internal/ged"
	"skygraph/internal/graph"
	"skygraph/internal/mcs"
)

// This file implements the bound side of the filter-and-refine skyline
// pipeline: interval versions of the pair statistics, derived first
// from stored signatures alone (BoundPair, no graph access) and then
// tightened by cheap polynomial engines (Refine). The intervals are
// admissible with respect to Compute — for any engine caps, the value
// Compute reports lies inside them:
//
//   - GED low:  the label-histogram lower bound (== ged.LowerBound).
//     Compute's GED is the exact distance or the bipartite upper bound,
//     both >= the histogram bound.
//   - GED high: delete-all/insert-all (|V1|+|V2|+|E1|+|E2|) from
//     signatures, refined to the ged.Bipartite mapping cost — exactly
//     the value Compute degrades to when its A* cap fires.
//   - MCS high: the edge-label multiset intersection, capped by the
//     densest simple graph on the common vertex labels. Every common
//     subgraph's edges match labels on both sides, so no witness —
//     exact or partial — can exceed it.
//   - MCS low:  0 from signatures, refined to mcs.GreedyLB — a real
//     connected common subgraph, and the floor mcs.Exact applies to
//     capped searches.
//
// The uniform cost model is assumed throughout (it is the only one
// Compute uses).

// BoundStats is the interval analogue of PairStats: the expensive
// quantities are known only as ranges, the cheap ones exactly.
type BoundStats struct {
	// GEDLo and GEDHi bracket the edit distance Compute would report.
	GEDLo, GEDHi float64
	// MCSLo and MCSHi bracket the common-edge count Compute would report.
	MCSLo, MCSHi int
	// The remaining fields are exact, straight from the signatures
	// (same meaning as in PairStats).
	Size1, Size2   int
	Order1, Order2 int
	VHistDist      int
	EHistDist      int
	DegL1          int
}

// BoundPair derives tier-0 interval statistics for the pair (s1, s2)
// from signatures alone — O(labels + degrees), no graph access.
func BoundPair(s1, s2 *Signature) BoundStats {
	vd := graph.HistogramDistance(s1.VHist, s2.VHist)
	ed := graph.HistogramDistance(s1.EHist, s2.EHist)
	return BoundStats{
		GEDLo:     float64(vd + ed),
		GEDHi:     float64(s1.Order + s2.Order + s1.Size + s2.Size),
		MCSLo:     0,
		MCSHi:     mcsUpper(s1, s2),
		Size1:     s1.Size,
		Size2:     s2.Size,
		Order1:    s1.Order,
		Order2:    s2.Order,
		VHistDist: vd,
		EHistDist: ed,
		DegL1:     degreeL1(s1.Degrees, s2.Degrees),
	}
}

// mcsUpper bounds |mcs| from signatures: common edges must agree on the
// full edge type — edge label plus both endpoint labels (multiset
// intersection over THist) — and a common subgraph has at most
// min(common vertex labels) vertices, hence at most C(v,2) edges.
func mcsUpper(s1, s2 *Signature) int {
	ub := s1.Size
	if s2.Size < ub {
		ub = s2.Size
	}
	if ti := histIntersection(s1.THist, s2.THist); ti < ub {
		ub = ti
	}
	vi := histIntersection(s1.VHist, s2.VHist)
	if dense := vi * (vi - 1) / 2; dense < ub {
		ub = dense
	}
	return ub
}

// histIntersection is the multiset intersection size of two count maps.
func histIntersection(a, b map[string]int) int {
	n := 0
	for l, ca := range a {
		if cb := b[l]; cb < ca {
			n += cb
		} else {
			n += ca
		}
	}
	return n
}

// Witness carries the refinement tier's engine results so a later
// exact evaluation of the same pair (same orientation) can reuse them:
// ComputeHinted hands GEDUpper to ged.Exact as its cap fallback and
// MCSFloor to mcs.Exact as its capped-search floor, instead of both
// engines recomputing what Refine already paid for.
type Witness struct {
	GEDUpper ged.Result
	MCSFloor mcs.Mapping
}

// Refine tightens tier-0 bounds with the cheap polynomial engines: the
// bipartite assignment upper bound on GED (the exact value Compute
// falls back to under a cap) and the deterministic greedy lower bound
// on MCS (the floor mcs.Exact applies under a cap). Runs in polynomial
// time — orders of magnitude cheaper than the exact engines it may
// render unnecessary.
func Refine(g1, g2 *graph.Graph, bs BoundStats) BoundStats {
	bs, _ = RefineWitness(g1, g2, bs)
	return bs
}

// RefineWitness is Refine, additionally returning the engine results
// for reuse by ComputeHinted on the pairs that survive pruning.
func RefineWitness(g1, g2 *graph.Graph, bs BoundStats) (BoundStats, *Witness) {
	w := &Witness{
		GEDUpper: ged.Bipartite(g1, g2, nil),
		MCSFloor: mcs.GreedyLB(g1, g2),
	}
	if w.GEDUpper.Distance < bs.GEDHi {
		bs.GEDHi = w.GEDUpper.Distance
	}
	if w.MCSFloor.Edges > bs.MCSLo {
		bs.MCSLo = w.MCSFloor.Edges
	}
	return bs, w
}

// TightenGED intersects an externally certified GED interval — the
// pivot tier's triangle-inequality bounds — into bs. Admissibility is
// the caller's contract: lo must lower-bound the true edit distance
// (any true-distance floor also floors what Compute reports, capped or
// not), but hi must upper-bound the value Compute would *report* —
// with a capped GED engine that is the bipartite fallback, which a
// true-distance ceiling does not dominate, so callers pass hi = +Inf
// unless the GED engine runs uncapped.
func (bs *BoundStats) TightenGED(lo, hi float64) {
	if lo > bs.GEDLo {
		bs.GEDLo = lo
	}
	if hi < bs.GEDHi {
		bs.GEDHi = hi
	}
}

// corners returns the optimistic and pessimistic PairStats corners of
// the interval: every basis measure is non-decreasing in GED and
// non-increasing in MCS (distances shrink as similarity grows), so the
// (GEDLo, MCSHi) corner minimizes and the (GEDHi, MCSLo) corner
// maximizes each measure simultaneously.
func (bs BoundStats) corners() (opt, pes PairStats) {
	shared := PairStats{
		Size1: bs.Size1, Size2: bs.Size2,
		Order1: bs.Order1, Order2: bs.Order2,
		VHistDist: bs.VHistDist, EHistDist: bs.EHistDist, DegL1: bs.DegL1,
	}
	opt, pes = shared, shared
	opt.GED, opt.MCS = bs.GEDLo, bs.MCSHi
	pes.GED, pes.MCS = bs.GEDHi, bs.MCSLo
	return opt, pes
}

// IntervalGCS evaluates the GCS interval vector of the bounds under
// basis: lo[i] <= exact GCS[i] <= hi[i] for every basis measure. Only
// valid for Boundable bases.
func (bs BoundStats) IntervalGCS(basis []Measure) (lo, hi []float64) {
	opt, pes := bs.corners()
	return GCS(opt, basis), GCS(pes, basis)
}

// BoundGCS computes the per-measure [lo, hi] interval vector of the GCS
// of a pair known only by its signatures: lo and hi bracket, dimension
// by dimension, the exact GCS vector Compute+GCS would produce. Only
// valid for Boundable bases.
func BoundGCS(sg, sq *Signature, basis []Measure) (lo, hi []float64) {
	return BoundPair(sg, sq).IntervalGCS(basis)
}

// Boundable reports whether every basis measure is one of the built-in
// measures, all of which are monotone in (GED, MCS) as corners()
// requires. Pruning layers must fall back to full evaluation for bases
// containing foreign measures.
func Boundable(basis []Measure) bool {
	for _, m := range basis {
		switch m.(type) {
		case DistEd, DistNEd, DistMcs, DistGu, DistVLabel, DistELabel, DistDegree:
		default:
			return false
		}
	}
	return true
}
