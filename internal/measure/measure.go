// Package measure implements the local graph distance measures of the
// paper's Section IV and the Graph Compound Similarity vector (GCS,
// Definition 11) built from them:
//
//   - DistEd: graph edit distance with uniform costs (Definition 8).
//   - DistNEd: its normalization x/(1+x) used by the diversity step
//     (Section VII).
//   - DistMcs: 1 − |mcs|/max(|g1|,|g2|) (Definition 9 / Eq. 2).
//   - DistGu: 1 − |mcs|/(|g1|+|g2|−|mcs|) (Definition 10 / Eq. 3).
//
// Because DistMcs and DistGu share the mcs computation and DistEd is
// expensive, measures are evaluated from a PairStats value computed once
// per graph pair.
package measure

import (
	"fmt"

	"skygraph/internal/ged"
	"skygraph/internal/graph"
	"skygraph/internal/mcs"
)

// PairStats carries the expensive quantities shared by all measures for one
// graph pair.
type PairStats struct {
	// GED is the (uniform-cost) graph edit distance, or an upper bound when
	// GEDExact is false.
	GED float64
	// GEDExact reports whether GED is provably minimal.
	GEDExact bool
	// MCS is |mcs(g1,g2)|: the edge count of a maximum common connected
	// subgraph, or a lower bound when MCSExact is false.
	MCS int
	// MCSExact reports whether MCS is provably maximal.
	MCSExact bool
	// Size1, Size2 are |g1| and |g2| (edge counts).
	Size1, Size2 int
	// Order1, Order2 are the vertex counts.
	Order1, Order2 int
	// VHistDist and EHistDist are the label-histogram distances over
	// vertices and edges (inputs to DistVLabel/DistELabel and exactly the
	// two halves of ged.LowerBound).
	VHistDist, EHistDist int
	// DegL1 is the L1 distance between the sorted degree sequences
	// (input to DistDegree).
	DegL1 int
}

// Options bounds the exact engines; zero values mean exact, unbounded
// computation. The struct is wire- and cache-friendly: it serializes to
// JSON and Key renders it as a stable cache-key fragment.
type Options struct {
	// GEDMaxNodes caps A* expansions (0 = unlimited). On cap the bipartite
	// upper bound is used and GEDExact is false.
	GEDMaxNodes int64 `json:"ged_max_nodes,omitempty"`
	// MCSMaxNodes caps the MCS branch and bound (0 = unlimited).
	MCSMaxNodes int64 `json:"mcs_max_nodes,omitempty"`
}

// Key renders the options as a short stable string for use in cache keys.
func (o Options) Key() string {
	return fmt.Sprintf("ged=%d,mcs=%d", o.GEDMaxNodes, o.MCSMaxNodes)
}

// Compute evaluates the shared statistics for the pair (g1, g2).
func Compute(g1, g2 *graph.Graph, opts Options) PairStats {
	return ComputeHinted(g1, g2, opts, PairHints{})
}

// PairHints carries precomputed material ComputeHinted can reuse for a
// pair: the graphs' stored signatures (sparing the per-pair histogram
// and degree-sequence rebuild) and the refinement tier's witness (the
// capped engines fall back to its bipartite result and greedy floor
// instead of recomputing them). Every field is optional; hints must
// describe the same graphs in the same orientation.
type PairHints struct {
	Sig1, Sig2 *Signature
	Witness    *Witness
}

// ComputeHinted is Compute reusing whatever hints the caller has. The
// returned statistics are identical to plain Compute's either way.
func ComputeHinted(g1, g2 *graph.Graph, opts Options, h PairHints) PairStats {
	ps, _ := ComputeWith(g1, g2, opts, h, EngineResults{})
	return ps
}

// EngineResults carries the raw exact-engine outputs of one pair in
// one orientation, the unit the cross-query score memo stores: the
// engines are deterministic for a fixed (pair, options), so replaying
// a recorded result is byte-identical to re-running the engine.
type EngineResults struct {
	// GED and GEDExact mirror PairStats (value or bipartite bound);
	// HasGED reports whether the GED engine's result is present.
	GED      float64
	GEDExact bool
	HasGED   bool
	// MCS/MCSExact/HasMCS are the MCS engine analogues.
	MCS      int
	MCSExact bool
	HasMCS   bool
}

// Covers reports whether the results satisfy the given engine needs.
func (r EngineResults) Covers(needGED, needMCS bool) bool {
	return (!needGED || r.HasGED) && (!needMCS || r.HasMCS)
}

// ComputeWith is ComputeHinted with per-engine reuse: engine results
// already present in have are taken as-is and only the missing engines
// run. It returns the pair statistics (byte-identical to plain
// Compute's — recorded results must come from the same pair,
// orientation and options) plus the now-complete engine results for
// republication.
func ComputeWith(g1, g2 *graph.Graph, opts Options, h PairHints, have EngineResults) (PairStats, EngineResults) {
	if !have.HasGED {
		gopts := ged.Options{MaxNodes: opts.GEDMaxNodes}
		if h.Witness != nil {
			gopts.Upper = &h.Witness.GEDUpper
		}
		gres := ged.Exact(g1, g2, gopts)
		have.GED, have.GEDExact, have.HasGED = gres.Distance, gres.Exact, true
	}
	if !have.HasMCS {
		mopts := mcs.Options{MaxNodes: opts.MCSMaxNodes}
		if h.Witness != nil {
			mopts.Floor = &h.Witness.MCSFloor
		}
		mres := mcs.Exact(g1, g2, mopts)
		have.MCS, have.MCSExact, have.HasMCS = mres.Mapping.Edges, mres.Exhausted, true
	}
	v1, e1, d1 := histsOf(g1, h.Sig1)
	v2, e2, d2 := histsOf(g2, h.Sig2)
	return PairStats{
		GED:       have.GED,
		GEDExact:  have.GEDExact,
		MCS:       have.MCS,
		MCSExact:  have.MCSExact,
		Size1:     g1.Size(),
		Size2:     g2.Size(),
		Order1:    g1.Order(),
		Order2:    g2.Order(),
		VHistDist: graph.HistogramDistance(v1, v2),
		EHistDist: graph.HistogramDistance(e1, e2),
		DegL1:     degreeL1(d1, d2),
	}, have
}

// PairStatsFrom assembles the pair statistics of a graph pair known by
// its stored signatures and previously recorded engine results — the
// memo-hit path: no graph access and no engine runs, byte-identical to
// ComputeHinted on the same pair (signatures carry exactly the
// order/size/histogram/degree material the cheap fields derive from).
// Fields of engines absent from r are zero; callers must only consume
// measures r covers.
func PairStatsFrom(s1, s2 *Signature, r EngineResults) PairStats {
	return PairStats{
		GED:       r.GED,
		GEDExact:  r.GEDExact,
		MCS:       r.MCS,
		MCSExact:  r.MCSExact,
		Size1:     s1.Size,
		Size2:     s2.Size,
		Order1:    s1.Order,
		Order2:    s2.Order,
		VHistDist: graph.HistogramDistance(s1.VHist, s2.VHist),
		EHistDist: graph.HistogramDistance(s1.EHist, s2.EHist),
		DegL1:     degreeL1(s1.Degrees, s2.Degrees),
	}
}

// histsOf returns g's label histograms and degree sequence, from the
// signature when one is supplied.
func histsOf(g *graph.Graph, sig *Signature) (vh, eh map[string]int, deg []int) {
	if sig != nil {
		return sig.VHist, sig.EHist, sig.Degrees
	}
	vh, eh = g.LabelHistogram()
	return vh, eh, g.DegreeSequence()
}

// Measure is a local graph distance derived from PairStats. Smaller is more
// similar, matching the paper's "the smaller the better" convention
// (Definition 1 and 12).
type Measure interface {
	// Name returns the measure identifier, e.g. "DistEd".
	Name() string
	// FromStats derives the distance value from shared pair statistics.
	FromStats(PairStats) float64
}

// DistEd is the graph edit distance measure (unnormalized, as used in
// Table III of the paper).
type DistEd struct{}

func (DistEd) Name() string { return "DistEd" }

// FromStats returns the edit distance.
func (DistEd) FromStats(s PairStats) float64 { return s.GED }

// DistNEd is the normalized edit distance f(x) = x/(1+x) used by the
// diversity refinement (Section VII). It maps [0,∞) into [0,1).
type DistNEd struct{}

func (DistNEd) Name() string { return "DistNEd" }

// FromStats returns GED/(1+GED).
func (DistNEd) FromStats(s PairStats) float64 { return s.GED / (1 + s.GED) }

// DistMcs is the Bunke–Shearer mcs distance (Eq. 2).
type DistMcs struct{}

func (DistMcs) Name() string { return "DistMcs" }

// FromStats returns 1 − |mcs|/max(|g1|,|g2|); by convention two empty
// graphs have distance 0.
func (DistMcs) FromStats(s PairStats) float64 {
	m := s.Size1
	if s.Size2 > m {
		m = s.Size2
	}
	if m == 0 {
		return 0
	}
	return 1 - float64(s.MCS)/float64(m)
}

// DistGu is the Wallis graph-union distance (Eq. 3), the graph analogue of
// the Jaccard distance.
type DistGu struct{}

func (DistGu) Name() string { return "DistGu" }

// FromStats returns 1 − |mcs|/(|g1|+|g2|−|mcs|); two empty graphs have
// distance 0.
func (DistGu) FromStats(s PairStats) float64 {
	union := s.Size1 + s.Size2 - s.MCS
	if union == 0 {
		return 0
	}
	return 1 - float64(s.MCS)/float64(union)
}

// SimMcs returns the Bunke–Shearer similarity |mcs|/max (Definition 9).
func SimMcs(s PairStats) float64 { return 1 - (DistMcs{}).FromStats(s) }

// SimGu returns the graph-union similarity (Definition 10).
func SimGu(s PairStats) float64 { return 1 - (DistGu{}).FromStats(s) }

// Default is the paper's three-measure GCS basis (Section V):
// (DistEd, DistMcs, DistGu).
func Default() []Measure { return []Measure{DistEd{}, DistMcs{}, DistGu{}} }

// DiversityBasis is the basis of the Section VII refinement:
// (DistNEd, DistMcs, DistGu).
func DiversityBasis() []Measure { return []Measure{DistNEd{}, DistMcs{}, DistGu{}} }

// ByName returns the measure with the given name.
func ByName(name string) (Measure, error) {
	switch name {
	case "DistEd":
		return DistEd{}, nil
	case "DistNEd":
		return DistNEd{}, nil
	case "DistMcs":
		return DistMcs{}, nil
	case "DistGu":
		return DistGu{}, nil
	case "DistVLabel":
		return DistVLabel{}, nil
	case "DistELabel":
		return DistELabel{}, nil
	case "DistDegree":
		return DistDegree{}, nil
	}
	return nil, fmt.Errorf("measure: unknown measure %q", name)
}

// BasisNames returns the measure names of a basis, in order — the
// serializable form of a basis for wire formats and cache keys.
func BasisNames(basis []Measure) []string {
	out := make([]string, len(basis))
	for i, m := range basis {
		out[i] = m.Name()
	}
	return out
}

// BasisByNames resolves measure names back into a basis; an empty list
// yields the paper's default basis.
func BasisByNames(names []string) ([]Measure, error) {
	if len(names) == 0 {
		return Default(), nil
	}
	out := make([]Measure, len(names))
	for i, n := range names {
		m, err := ByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// GCS evaluates the compound similarity vector (Definition 11) of the pair
// statistics under the given measure basis.
func GCS(s PairStats, basis []Measure) []float64 {
	out := make([]float64, len(basis))
	for i, m := range basis {
		out[i] = m.FromStats(s)
	}
	return out
}

// ComputeGCS is Compute followed by GCS on the default basis.
func ComputeGCS(g, q *graph.Graph, opts Options) []float64 {
	return GCS(Compute(g, q, opts), Default())
}
