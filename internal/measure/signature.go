package measure

import (
	"skygraph/internal/graph"
)

// Signature is the per-graph summary backing the filter-and-refine
// pipeline: everything the cheap GCS bounds need, precomputed once (at
// database insert time) so no query ever re-walks a stored graph's
// vertices and edges just to bound it. All fields are isomorphism
// invariants.
type Signature struct {
	// Order and Size are the vertex and edge counts.
	Order, Size int
	// VHist and EHist are the vertex- and edge-label histograms.
	VHist, EHist map[string]int
	// THist is the edge-type histogram: each edge keyed by its edge label
	// plus both endpoint vertex labels (endpoint pair sorted). An edge of
	// a common subgraph must agree on all three, so type-multiset
	// intersection upper-bounds |mcs| far tighter than edge labels alone
	// when the label alphabet is small (molecules: C-C single vs C-N
	// single are different types, same edge label).
	THist map[string]int
	// Degrees is the degree sequence, descending.
	Degrees []int
}

// NewSignature computes g's signature. Callers must not mutate g
// afterwards (the database enforces this already for stored graphs).
func NewSignature(g *graph.Graph) *Signature {
	vh, eh := g.LabelHistogram()
	th := make(map[string]int, g.Size())
	for _, e := range g.Edges() {
		th[edgeType(g.VertexLabel(e.U), g.VertexLabel(e.V), e.Label)]++
	}
	return &Signature{
		Order:   g.Order(),
		Size:    g.Size(),
		VHist:   vh,
		EHist:   eh,
		THist:   th,
		Degrees: g.DegreeSequence(),
	}
}

// edgeType renders the canonical (endpoint labels, edge label) key of
// an edge, orientation-independent.
func edgeType(va, vb, label string) string {
	if vb < va {
		va, vb = vb, va
	}
	return va + "\x00" + label + "\x00" + vb
}

// HistLB returns the label-histogram lower bound on the uniform-cost
// edit distance between the signatures' graphs — the same bound as
// ged.LowerBound, served from the precomputed histograms. Every index
// pruning site (top-k, range, the skyline filter's GEDLo) goes through
// this one definition.
func (s *Signature) HistLB(o *Signature) float64 {
	return float64(graph.HistogramDistance(s.VHist, o.VHist) +
		graph.HistogramDistance(s.EHist, o.EHist))
}
