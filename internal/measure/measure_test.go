package measure

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"skygraph/internal/graph"
)

func statsFor(t *testing.T, g1, g2 *graph.Graph) PairStats {
	t.Helper()
	s := Compute(g1, g2, Options{})
	if !s.GEDExact || !s.MCSExact {
		t.Fatal("exact computation reported inexact")
	}
	return s
}

func TestIdenticalGraphsAllZero(t *testing.T) {
	g := graph.Cycle(5, "A", "x")
	s := statsFor(t, g, g.Clone())
	for _, m := range Default() {
		if v := m.FromStats(s); v != 0 {
			t.Errorf("%s=%v on identical graphs", m.Name(), v)
		}
	}
}

func TestEmptyGraphConventions(t *testing.T) {
	e := graph.New("e")
	s := statsFor(t, e, e.Clone())
	if (DistMcs{}).FromStats(s) != 0 || (DistGu{}).FromStats(s) != 0 {
		t.Error("empty-vs-empty mcs distances should be 0")
	}
	if (DistNEd{}).FromStats(s) != 0 {
		t.Error("empty-vs-empty normalized GED should be 0")
	}
}

func TestDistancesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 12; trial++ {
		g1 := graph.Molecule(5+rng.Intn(3), rng)
		g2 := graph.Molecule(5+rng.Intn(3), rng)
		s := statsFor(t, g1, g2)
		for _, m := range []Measure{DistMcs{}, DistGu{}, DistNEd{}} {
			v := m.FromStats(s)
			if v < 0 || v > 1 {
				t.Fatalf("%s=%v out of [0,1]", m.Name(), v)
			}
		}
		if (DistEd{}).FromStats(s) < 0 {
			t.Fatal("negative edit distance")
		}
	}
}

func TestSimGuStrongerThanSimMcs(t *testing.T) {
	// Paper, Section IV-C: SimGu(g1,g2) <= SimMcs(g1,g2) always holds.
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1 := graph.Molecule(4+r.Intn(4), r)
		g2 := graph.Molecule(4+r.Intn(4), r)
		s := Compute(g1, g2, Options{})
		return SimGu(s) <= SimMcs(s)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestDistGuIsJaccardLike(t *testing.T) {
	// q = P4 (3 edges) embedded in host P6 (5 edges): mcs=3.
	q := graph.Path(4, "A", "x")
	host := graph.Path(6, "A", "x")
	s := statsFor(t, q, host)
	if s.MCS != 3 {
		t.Fatalf("mcs=%d", s.MCS)
	}
	wantMcs := 1 - 3.0/5.0
	wantGu := 1 - 3.0/(3+5-3.0)
	if v := (DistMcs{}).FromStats(s); math.Abs(v-wantMcs) > 1e-12 {
		t.Errorf("DistMcs=%v, want %v", v, wantMcs)
	}
	if v := (DistGu{}).FromStats(s); math.Abs(v-wantGu) > 1e-12 {
		t.Errorf("DistGu=%v, want %v", v, wantGu)
	}
}

func TestNormalizedEdMonotone(t *testing.T) {
	vals := []float64{0, 1, 2, 5, 100}
	prev := -1.0
	for _, x := range vals {
		v := (DistNEd{}).FromStats(PairStats{GED: x})
		if v <= prev || v >= 1 {
			t.Errorf("f(%v)=%v not in (prev,1)", x, v)
		}
		prev = v
	}
	if v := (DistNEd{}).FromStats(PairStats{GED: 6}); math.Abs(v-6.0/7.0) > 1e-12 {
		t.Errorf("f(6)=%v", v)
	}
}

func TestGCSVectorOrder(t *testing.T) {
	s := PairStats{GED: 4, MCS: 4, Size1: 6, Size2: 6}
	vec := GCS(s, Default())
	if len(vec) != 3 {
		t.Fatalf("len=%d", len(vec))
	}
	if vec[0] != 4 {
		t.Errorf("vec[0]=%v", vec[0])
	}
	if math.Abs(vec[1]-(1-4.0/6.0)) > 1e-9 {
		t.Errorf("vec[1]=%v", vec[1])
	}
	if math.Abs(vec[2]-0.5) > 1e-9 {
		t.Errorf("vec[2]=%v", vec[2])
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"DistEd", "DistNEd", "DistMcs", "DistGu"} {
		m, err := ByName(name)
		if err != nil || m.Name() != name {
			t.Errorf("ByName(%s): %v, %v", name, m, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown measure accepted")
	}
}

func TestDefaultBasisNames(t *testing.T) {
	want := []string{"DistEd", "DistMcs", "DistGu"}
	for i, m := range Default() {
		if m.Name() != want[i] {
			t.Errorf("Default()[%d]=%s", i, m.Name())
		}
	}
	wantDiv := []string{"DistNEd", "DistMcs", "DistGu"}
	for i, m := range DiversityBasis() {
		if m.Name() != wantDiv[i] {
			t.Errorf("DiversityBasis()[%d]=%s", i, m.Name())
		}
	}
}

func TestComputeGCSConvenience(t *testing.T) {
	g := graph.Path(3, "A", "x")
	vec := ComputeGCS(g, g.Clone(), Options{})
	for i, v := range vec {
		if v != 0 {
			t.Errorf("vec[%d]=%v", i, v)
		}
	}
}

func TestCappedComputeStillBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g1 := graph.Molecule(10, rng)
	g2 := graph.Molecule(10, rng)
	exact := Compute(g1, g2, Options{})
	capped := Compute(g1, g2, Options{GEDMaxNodes: 3, MCSMaxNodes: 3})
	if capped.GEDExact {
		t.Error("capped GED claims exact")
	}
	if capped.GED < exact.GED-1e-9 {
		t.Errorf("capped GED %v below exact %v (must be an upper bound)", capped.GED, exact.GED)
	}
	if capped.MCS > exact.MCS {
		t.Errorf("capped MCS %v above exact %v (must be a lower bound)", capped.MCS, exact.MCS)
	}
}
