// Package topk implements the single-measure top-k retrieval baseline the
// paper argues against (Section VI): ranking database graphs by one scalar
// distance and returning the k smallest. It is used by experiment E11 to
// quantify how much of the similarity skyline a single measure misses.
package topk

import (
	"container/heap"
	"sort"
)

// Item couples an identifier with a scalar score (smaller is better).
type Item struct {
	ID    string
	Score float64
}

// maxHeap keeps the k best (smallest) items by evicting the current worst.
// Ordering is by (score, ID) so ties are resolved deterministically.
type maxHeap []Item

func worse(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID > b.ID
}

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return worse(h[i], h[j]) }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Select returns the k items with the smallest scores, sorted ascending by
// score with ties broken by ID for determinism. k larger than the input
// returns everything.
func Select(items []Item, k int) []Item {
	if k <= 0 {
		return []Item{}
	}
	h := make(maxHeap, 0, k)
	heap.Init(&h)
	for _, it := range items {
		if len(h) < k {
			heap.Push(&h, it)
			continue
		}
		if worse(h[0], it) {
			h[0] = it
			heap.Fix(&h, 0)
		}
	}
	out := []Item(h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Recall returns |got ∩ want| / |want|: the fraction of the reference set
// covered by the retrieved IDs. An empty reference yields 1.
func Recall(got []Item, want map[string]bool) float64 {
	if len(want) == 0 {
		return 1
	}
	hit := 0
	for _, it := range got {
		if want[it.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
