// Package topk implements the single-measure top-k retrieval baseline the
// paper argues against (Section VI): ranking database graphs by one scalar
// distance and returning the k smallest. It is used by experiment E11 to
// quantify how much of the similarity skyline a single measure misses.
package topk

import (
	"container/heap"
	"sort"
)

// Item couples an identifier with a scalar score (smaller is better).
type Item struct {
	ID    string
	Score float64
}

// maxHeap keeps the k best (smallest) items by evicting the current worst.
// Ordering is by (score, ID) so ties are resolved deterministically.
type maxHeap []Item

func worse(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID > b.ID
}

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return worse(h[i], h[j]) }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Bounded is a bounded max-heap keeping the k best (smallest) items
// offered so far under the (score, ID) total order. It is the
// incremental form of Select: O(log k) per offer and one O(k log k)
// extraction, where repeatedly re-running Select over a growing slice
// would be quadratic. The zero threshold question — "what score must a
// new item beat to matter?" — is answered by Worst. Not safe for
// concurrent use; wrap with a lock for shared collectors.
type Bounded struct {
	k int
	h maxHeap
}

// NewBounded returns a collector of the k best items (k < 1 keeps
// nothing).
func NewBounded(k int) *Bounded { return &Bounded{k: k} }

// Offer considers one item, reporting whether it entered the heap (it
// is among the k best seen so far).
func (b *Bounded) Offer(it Item) bool {
	if b.k < 1 {
		return false
	}
	if len(b.h) < b.k {
		heap.Push(&b.h, it)
		return true
	}
	if worse(b.h[0], it) {
		b.h[0] = it
		heap.Fix(&b.h, 0)
		return true
	}
	return false
}

// Full reports whether k items are held — only then is Worst a
// meaningful pruning threshold.
func (b *Bounded) Full() bool { return len(b.h) >= b.k }

// Worst returns the worst retained item (the current k-th best when
// the heap is full); ok is false while the heap is empty.
func (b *Bounded) Worst() (Item, bool) {
	if len(b.h) == 0 {
		return Item{}, false
	}
	return b.h[0], true
}

// Len returns the number of items held.
func (b *Bounded) Len() int { return len(b.h) }

// Items returns the held items sorted ascending by (score, ID) — the
// exact order Select produces. The heap is left intact.
func (b *Bounded) Items() []Item {
	out := make([]Item, len(b.h))
	copy(out, b.h)
	sortItems(out)
	return out
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Score != items[j].Score {
			return items[i].Score < items[j].Score
		}
		return items[i].ID < items[j].ID
	})
}

// Select returns the k items with the smallest scores, sorted ascending by
// score with ties broken by ID for determinism. k larger than the input
// returns everything.
func Select(items []Item, k int) []Item {
	if k <= 0 {
		return []Item{}
	}
	b := NewBounded(k)
	for _, it := range items {
		b.Offer(it)
	}
	return b.Items()
}

// Recall returns |got ∩ want| / |want|: the fraction of the reference set
// covered by the retrieved IDs. An empty reference yields 1.
func Recall(got []Item, want map[string]bool) float64 {
	if len(want) == 0 {
		return 1
	}
	hit := 0
	for _, it := range got {
		if want[it.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
