package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectBasic(t *testing.T) {
	items := []Item{
		{"a", 3}, {"b", 1}, {"c", 2}, {"d", 5}, {"e", 0.5},
	}
	got := Select(items, 3)
	want := []string{"e", "b", "c"}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i].ID != want[i] {
			t.Errorf("got %v, want %v", got, want)
			break
		}
	}
}

func TestSelectKLargerThanInput(t *testing.T) {
	items := []Item{{"a", 2}, {"b", 1}}
	got := Select(items, 10)
	if len(got) != 2 || got[0].ID != "b" {
		t.Errorf("got %v", got)
	}
}

func TestSelectKZero(t *testing.T) {
	if got := Select([]Item{{"a", 1}}, 0); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestSelectTiesDeterministic(t *testing.T) {
	items := []Item{{"z", 1}, {"a", 1}, {"m", 1}, {"b", 2}}
	got := Select(items, 2)
	if got[0].ID != "a" || got[1].ID != "m" {
		t.Errorf("tie-break wrong: %v", got)
	}
}

func TestSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(50)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: string(rune('a' + i%26)), Score: float64(r.Intn(10))}
		}
		k := r.Intn(n + 2)
		got := Select(items, k)
		ref := append([]Item(nil), items...)
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].Score != ref[j].Score {
				return ref[i].Score < ref[j].Score
			}
			return ref[i].ID < ref[j].ID
		})
		if k > len(ref) {
			k = len(ref)
		}
		ref = ref[:k]
		if len(got) != len(ref) {
			return false
		}
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRecall(t *testing.T) {
	got := []Item{{"a", 1}, {"b", 2}, {"x", 3}}
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	if r := Recall(got, want); r != 0.5 {
		t.Errorf("recall=%v, want 0.5", r)
	}
	if r := Recall(nil, map[string]bool{}); r != 1 {
		t.Errorf("empty reference recall=%v, want 1", r)
	}
	if r := Recall(nil, want); r != 0 {
		t.Errorf("empty retrieval recall=%v, want 0", r)
	}
}
