// Package lru provides the bounded least-recently-used map underneath
// every query-layer cache in the repository: the serving layer's
// vector-table/ranked-answer cache and the database's cross-query
// exact-score memo both wrap one Cache. The core is deliberately
// policy-free — no TTLs, no counters, no key semantics — so each
// wrapper keeps its own invalidation rules (generation-keyed
// unreachability) and its own hit/miss accounting on top.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU map from string keys to values of type V.
// All methods are safe for concurrent use. A capacity below 1 disables
// the cache entirely: every lookup misses and Put is a no-op.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type entry[V any] struct {
	key string
	val V
}

// New returns a cache holding at most capacity entries.
func New[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Capacity returns the configured bound.
func (c *Cache[V]) Capacity() int { return c.capacity }

// Get returns the value under key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry[V]).val, true
}

// Contains reports whether key is cached without touching recency — a
// planning peek, not a lookup.
func (c *Cache[V]) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put stores val under key (replacing any previous value and marking it
// most recently used), evicting least-recently-used entries while the
// cache is over capacity. It returns the number of evictions.
func (c *Cache[V]) Put(key string, val V) int {
	return c.Update(key, func(V, bool) V { return val })
}

// Update atomically merges a value under key: merge receives the
// current value (zero when absent) and returns the value to store. The
// entry becomes most recently used. Returns evictions like Put. Used by
// the score memo so two engines finishing the same pair concurrently
// cannot overwrite each other's half of the entry.
func (c *Cache[V]) Update(key string, merge func(old V, ok bool) V) int {
	if c.capacity < 1 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry[V])
		e.val = merge(e.val, true)
		c.ll.MoveToFront(el)
		return 0
	}
	var zero V
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: merge(zero, false)})
	evicted := 0
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
		evicted++
	}
	return evicted
}

// Remove drops the entry under key, reporting whether it was present.
// Unlike eviction or pruning, removal is caller-driven — the table
// cache retires a superseded key after republishing its upgraded value
// under a new one.
func (c *Cache[V]) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, key)
	return true
}

// PruneFunc removes every entry for which pred returns true, returning
// how many were removed. pred runs under the cache lock and must not
// call back into the cache.
func (c *Cache[V]) PruneFunc(pred func(key string, val V) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry[V]); pred(e.key, e.val) {
			c.ll.Remove(el)
			delete(c.items, e.key)
			dropped++
		}
		el = next
	}
	return dropped
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
