package lru

import "testing"

func TestGetPutEvict(t *testing.T) {
	c := New[int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" must evict it.
	if ev := c.Put("c", 3); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPutReplaces(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("a", 7)
	if v, _ := c.Get("a"); v != 7 {
		t.Fatalf("replaced value = %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestContainsNoRecency(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if !c.Contains("a") {
		t.Fatal("Contains(a) = false")
	}
	// Contains must not have refreshed "a": it is still the LRU entry.
	c.Put("c", 3)
	if _, ok := c.Get("a"); ok {
		t.Fatal("Contains refreshed recency")
	}
}

func TestUpdateMerges(t *testing.T) {
	c := New[int](2)
	c.Update("a", func(old int, ok bool) int {
		if ok {
			t.Fatal("merge saw a value in an empty cache")
		}
		return 1
	})
	c.Update("a", func(old int, ok bool) int {
		if !ok || old != 1 {
			t.Fatalf("merge old = %d, %v", old, ok)
		}
		return old + 10
	})
	if v, _ := c.Get("a"); v != 11 {
		t.Fatalf("merged value = %d", v)
	}
}

func TestPruneFunc(t *testing.T) {
	c := New[int](4)
	for _, k := range []string{"a1", "a2", "b1"} {
		c.Put(k, 0)
	}
	if n := c.PruneFunc(func(k string, _ int) bool { return k[0] == 'a' }); n != 2 {
		t.Fatalf("pruned %d, want 2", n)
	}
	if c.Len() != 1 || !c.Contains("b1") {
		t.Fatalf("wrong survivor set, len %d", c.Len())
	}
}

func TestDisabled(t *testing.T) {
	c := New[int](0)
	c.Put("a", 1)
	c.Update("a", func(int, bool) int { return 2 })
	if _, ok := c.Get("a"); ok || c.Len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}
