// Package testutil provides deterministic seeded graph-database
// builders and equivalence helpers shared by the gdb, server and shard
// tests. Everything here is reproducible from a seed, so failures
// reported by the property tests can be replayed exactly.
package testutil

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/skyline"
	"skygraph/internal/topk"
)

// SeededGraphs returns n deterministic molecule-like graphs with unique
// names g000, g001, ... derived from seed. Sizes cycle through 5..8
// vertices so exact-engine pair evaluation stays cheap.
func SeededGraphs(seed int64, n int) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, n)
	for i := range out {
		g := graph.Molecule(5+i%4, rng)
		g.SetName(fmt.Sprintf("g%03d", i))
		out[i] = g
	}
	return out
}

// SeededQueries returns n deterministic query graphs: mutated clones of
// members of gs, renamed q000, q001, ...
func SeededQueries(seed int64, gs []*graph.Graph, n int) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, n)
	for i := range out {
		base := gs[rng.Intn(len(gs))]
		q := graph.Mutate(base, 1+rng.Intn(3), graph.MoleculeAlphabet.Atoms, graph.MoleculeAlphabet.Bonds, rng)
		q.SetName(fmt.Sprintf("q%03d", i))
		out[i] = q
	}
	return out
}

// NewDB builds an unsharded database over gs.
func NewDB(tb testing.TB, gs []*graph.Graph) *gdb.DB {
	tb.Helper()
	db := gdb.New()
	if err := db.InsertAll(gs); err != nil {
		tb.Fatalf("testutil: building DB: %v", err)
	}
	return db
}

// NewSharded builds an n-shard database over gs, inserted in order so
// the global insertion order matches an unsharded DB built from the
// same slice.
func NewSharded(tb testing.TB, nshards int, gs []*graph.Graph) *gdb.Sharded {
	tb.Helper()
	sh := gdb.NewSharded(nshards)
	if err := sh.InsertAll(gs); err != nil {
		tb.Fatalf("testutil: building %d-shard DB: %v", nshards, err)
	}
	return sh
}

// RequireSameSkyline fails unless want and got hold the same skyline:
// the same (ID, vector) members, order-insensitively, with exact vector
// equality (both engines run the identical pair computations, so even
// floats must match bitwise).
func RequireSameSkyline(tb testing.TB, label string, want, got []skyline.Point) {
	tb.Helper()
	if len(want) != len(got) {
		tb.Fatalf("%s: skyline sizes differ: want %d %v, got %d %v",
			label, len(want), pointIDs(want), len(got), pointIDs(got))
	}
	w := sortedPoints(want)
	g := sortedPoints(got)
	for i := range w {
		if w[i].ID != g[i].ID {
			tb.Fatalf("%s: skyline members differ: want %v, got %v", label, pointIDs(want), pointIDs(got))
		}
		if !sameVec(w[i].Vec, g[i].Vec) {
			tb.Fatalf("%s: vectors for %s differ: want %v, got %v", label, w[i].ID, w[i].Vec, g[i].Vec)
		}
	}
}

// RequireSameItems fails unless want and got are identical (ID, score)
// sequences — top-k and range answers are deterministic, so order
// matters here.
func RequireSameItems(tb testing.TB, label string, want, got []topk.Item) {
	tb.Helper()
	if len(want) != len(got) {
		tb.Fatalf("%s: item counts differ: want %d %v, got %d %v", label, len(want), want, len(got), got)
	}
	for i := range want {
		if want[i] != got[i] {
			tb.Fatalf("%s: item %d differs: want %+v, got %+v", label, i, want[i], got[i])
		}
	}
}

func sortedPoints(pts []skyline.Point) []skyline.Point {
	out := append([]skyline.Point(nil), pts...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func pointIDs(pts []skyline.Point) []string {
	ids := make([]string, len(pts))
	for i, p := range pts {
		ids[i] = p.ID
	}
	return ids
}

func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
