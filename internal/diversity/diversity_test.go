package diversity

import (
	"math"
	"math/rand"
	"testing"
)

// paperMatrix builds the pairwise distance matrix among the paper's skyline
// members GSS = {g1, g4, g5, g7} (indices 0..3) in the diversity basis
// (DistNEd, DistMcs, DistGu), decoded from Table IV: each 2-subset's Div is
// exactly the pairwise distance of its two members.
func paperMatrix() *Matrix {
	m := NewMatrix(4, 3)
	set := func(i, j int, v1, v2, v3 float64) {
		m.Set(0, i, j, v1)
		m.Set(1, i, j, v2)
		m.Set(2, i, j, v3)
	}
	set(0, 1, 0.86, 0.67, 0.80) // {g1,g4} = S1
	set(0, 2, 0.83, 0.50, 0.60) // {g1,g5} = S2
	set(0, 3, 0.87, 0.60, 0.67) // {g1,g7} = S3
	set(1, 2, 0.80, 0.62, 0.73) // {g4,g5} = S4
	set(1, 3, 0.83, 0.70, 0.77) // {g4,g7} = S5
	set(2, 3, 0.75, 0.50, 0.61) // {g5,g7} = S6
	return m
}

func TestPaperTable4And5(t *testing.T) {
	m := paperMatrix()
	best, all, err := Exhaustive(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("candidates=%d, want 6", len(all))
	}
	// Winner is S1 = {g1, g4} with val = 5 (Table V-b).
	if best.Members[0] != 0 || best.Members[1] != 1 {
		t.Errorf("winner=%v, want [0 1] (g1,g4)", best.Members)
	}
	if best.Val != 5 {
		t.Errorf("val=%d, want 5", best.Val)
	}
	// Full Table V check: ranks and vals per subset.
	wantRanks := map[[2]int][3]int{
		{0, 1}: {2, 2, 1}, // S1
		{0, 2}: {3, 5, 6}, // S2
		{0, 3}: {1, 4, 4}, // S3
		{1, 2}: {4, 3, 3}, // S4
		{1, 3}: {3, 1, 2}, // S5
		{2, 3}: {5, 5, 5}, // S6
	}
	wantVals := map[[2]int]int{
		{0, 1}: 5, {0, 2}: 14, {0, 3}: 9, {1, 2}: 10, {1, 3}: 6, {2, 3}: 15,
	}
	for _, c := range all {
		key := [2]int{c.Members[0], c.Members[1]}
		wr := wantRanks[key]
		for d := 0; d < 3; d++ {
			if c.Ranks[d] != wr[d] {
				t.Errorf("subset %v dim %d: rank=%d, want %d", c.Members, d, c.Ranks[d], wr[d])
			}
		}
		if c.Val != wantVals[key] {
			t.Errorf("subset %v: val=%d, want %d", c.Members, c.Val, wantVals[key])
		}
	}
	// Val ordering: S1(5) < S5(6) < S3(9) < S4(10) < S2(14) < S6(15).
	wantOrder := [][2]int{{0, 1}, {1, 3}, {0, 3}, {1, 2}, {0, 2}, {2, 3}}
	for i, c := range all {
		if c.Members[0] != wantOrder[i][0] || c.Members[1] != wantOrder[i][1] {
			t.Errorf("rank order position %d: %v, want %v", i, c.Members, wantOrder[i])
		}
	}
}

func TestDivVector(t *testing.T) {
	m := paperMatrix()
	div := m.Div([]int{0, 1, 2}) // g1,g4,g5: min over 3 pairs per dim
	want := []float64{0.80, 0.50, 0.60}
	for i := range want {
		if math.Abs(div[i]-want[i]) > 1e-12 {
			t.Errorf("div[%d]=%v, want %v", i, div[i], want[i])
		}
	}
	single := m.Div([]int{2})
	for _, v := range single {
		if !math.IsInf(v, 1) {
			t.Errorf("singleton diversity=%v, want +Inf", v)
		}
	}
}

func TestDenseRanks(t *testing.T) {
	cases := []struct {
		in   []float64
		want []int
	}{
		{[]float64{0.86, 0.83, 0.87, 0.80, 0.83, 0.75}, []int{2, 3, 1, 4, 3, 5}}, // Table V v1
		{[]float64{0.67, 0.50, 0.60, 0.62, 0.70, 0.50}, []int{2, 5, 4, 3, 1, 5}}, // Table V v2
		{[]float64{0.80, 0.60, 0.67, 0.73, 0.77, 0.61}, []int{1, 6, 4, 3, 2, 5}}, // Table V v3
		{[]float64{5, 5, 5}, []int{1, 1, 1}},
		{[]float64{}, []int{}},
		{[]float64{1}, []int{1}},
	}
	for i, c := range cases {
		got := DenseRanks(c.in)
		if len(got) != len(c.want) {
			t.Errorf("case %d: %v", i, got)
			continue
		}
		for j := range c.want {
			if got[j] != c.want[j] {
				t.Errorf("case %d: got %v, want %v", i, got, c.want)
				break
			}
		}
	}
}

func TestExhaustiveErrors(t *testing.T) {
	m := NewMatrix(4, 2)
	if _, _, err := Exhaustive(m, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Exhaustive(m, 5, 0); err == nil {
		t.Error("k>n accepted")
	}
	big := NewMatrix(50, 1)
	if _, _, err := Exhaustive(big, 25, 1000); err == nil {
		t.Error("candidate explosion not detected")
	}
}

func TestExhaustiveK1(t *testing.T) {
	m := paperMatrix()
	best, all, err := Exhaustive(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 || len(best.Members) != 1 {
		t.Errorf("k=1: %d candidates, best=%v", len(all), best.Members)
	}
	// All singletons tie at +Inf diversity; lexicographic winner is {0}.
	if best.Members[0] != 0 {
		t.Errorf("winner=%v", best.Members)
	}
}

func TestGreedyBasics(t *testing.T) {
	m := paperMatrix()
	sel, err := Greedy(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("sel=%v", sel)
	}
	// Farthest pair by aggregated distance: S1 {0,1} has sum 2.33, the
	// largest in the fixture, so greedy should agree with exhaustive here.
	if sel[0] != 0 || sel[1] != 1 {
		t.Errorf("greedy sel=%v, want [0 1]", sel)
	}
	if _, err := Greedy(m, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if one, err := Greedy(m, 1); err != nil || len(one) != 1 {
		t.Errorf("k=1: %v %v", one, err)
	}
}

func TestGreedyCoversAllK(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n, dims := 10, 3
	m := NewMatrix(n, dims)
	for d := 0; d < dims; d++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(d, i, j, rng.Float64())
			}
		}
	}
	for k := 1; k <= n; k++ {
		sel, err := Greedy(m, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel) != k {
			t.Fatalf("k=%d: len=%d", k, len(sel))
		}
		seen := map[int]bool{}
		for _, s := range sel {
			if seen[s] || s < 0 || s >= n {
				t.Fatalf("k=%d: invalid selection %v", k, sel)
			}
			seen[s] = true
		}
	}
}

func TestGreedyNearOptimalOnRandom(t *testing.T) {
	// Greedy should find a subset whose val is within the candidate range;
	// here we only require it to beat the *worst* exhaustive candidate on
	// average, a weak but meaningful sanity bound.
	rng := rand.New(rand.NewSource(79))
	worse := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		n := 6 + rng.Intn(3)
		m := NewMatrix(n, 2)
		for d := 0; d < 2; d++ {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					m.Set(d, i, j, rng.Float64())
				}
			}
		}
		_, all, err := Exhaustive(m, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := Greedy(m, 3)
		if err != nil {
			t.Fatal(err)
		}
		valOf := func(members []int) int {
			for _, c := range all {
				if c.Members[0] == members[0] && c.Members[1] == members[1] && c.Members[2] == members[2] {
					return c.Val
				}
			}
			t.Fatalf("subset %v not found", members)
			return 0
		}
		if valOf(sel) > all[len(all)-1].Val {
			worse++
		}
	}
	if worse > 0 {
		t.Errorf("greedy worse than the worst candidate %d/%d times", worse, trials)
	}
}

func TestBinomialAndCombinations(t *testing.T) {
	if binomial(6, 2) != 15 {
		t.Errorf("C(6,2)=%d", binomial(6, 2))
	}
	if binomial(4, 0) != 1 || binomial(4, 4) != 1 || binomial(3, 5) != 0 {
		t.Error("binomial edge cases")
	}
	combs := combinations(4, 2)
	if len(combs) != 6 {
		t.Errorf("combinations(4,2)=%v", combs)
	}
}
