// Package diversity implements the Section VII refinement of the paper:
// selecting, from a (possibly large) graph similarity skyline, the size-k
// subset with maximal diversity under a ranking-dominance criterion adapted
// from Kukkonen & Lampinen.
//
// The diversity of a subset S is the vector Div(S) = (v_1, ..., v_d) where
// v_i is the minimum pairwise distance between members of S in dimension i
// (larger is more diverse). Every k-subset is dense-ranked per dimension
// (rank 1 = most diverse) and val(S) = sum of its ranks; the subset
// minimizing val(S) wins. A greedy farthest-point heuristic is provided for
// skylines too large to enumerate.
package diversity

import (
	"fmt"
	"math"
	"sort"
)

// Matrix holds symmetric pairwise distances between n items in d dimensions:
// D[dim][i][j]. Diagonals are ignored.
type Matrix struct {
	N    int
	Dims int
	D    [][][]float64
}

// NewMatrix allocates an all-zero distance matrix.
func NewMatrix(n, dims int) *Matrix {
	d := make([][][]float64, dims)
	for k := range d {
		d[k] = make([][]float64, n)
		for i := range d[k] {
			d[k][i] = make([]float64, n)
		}
	}
	return &Matrix{N: n, Dims: dims, D: d}
}

// Set stores the distance of items i and j in dimension dim (symmetric).
func (m *Matrix) Set(dim, i, j int, v float64) {
	m.D[dim][i][j] = v
	m.D[dim][j][i] = v
}

// Div returns the diversity vector of the subset sel (item indices): the
// per-dimension minimum pairwise distance. Subsets with fewer than two
// members have undefined diversity; by convention the vector is all +Inf
// (a singleton is "maximally spread").
func (m *Matrix) Div(sel []int) []float64 {
	out := make([]float64, m.Dims)
	for k := range out {
		out[k] = math.Inf(1)
	}
	for a := 0; a < len(sel); a++ {
		for b := a + 1; b < len(sel); b++ {
			for k := 0; k < m.Dims; k++ {
				if d := m.D[k][sel[a]][sel[b]]; d < out[k] {
					out[k] = d
				}
			}
		}
	}
	return out
}

// Candidate is one k-subset with its diversity vector, per-dimension dense
// ranks and rank sum.
type Candidate struct {
	Members []int
	Div     []float64
	Ranks   []int
	Val     int
}

// Exhaustive enumerates all k-subsets of the n items, ranks them, and
// returns the winner along with every candidate (sorted by Val ascending,
// ties broken by lexicographic member order for determinism, matching the
// paper's Table IV/V presentation). It errors when k is out of range or the
// candidate count would exceed maxCandidates (pass 0 for the default of
// 200000).
func Exhaustive(m *Matrix, k int, maxCandidates int) (best Candidate, all []Candidate, err error) {
	if k < 1 || k > m.N {
		return Candidate{}, nil, fmt.Errorf("diversity: k=%d out of range [1,%d]", k, m.N)
	}
	if maxCandidates <= 0 {
		maxCandidates = 200000
	}
	count := binomial(m.N, k)
	if count > maxCandidates {
		return Candidate{}, nil, fmt.Errorf("diversity: C(%d,%d)=%d candidates exceed cap %d; use Greedy", m.N, k, count, maxCandidates)
	}
	subsets := combinations(m.N, k)
	all = make([]Candidate, len(subsets))
	for i, s := range subsets {
		all[i] = Candidate{Members: s, Div: m.Div(s)}
	}
	// Dense-rank each dimension: rank 1 = largest diversity.
	for dim := 0; dim < m.Dims; dim++ {
		vals := make([]float64, len(all))
		for i := range all {
			vals[i] = all[i].Div[dim]
		}
		ranks := DenseRanks(vals)
		for i := range all {
			all[i].Ranks = append(all[i].Ranks, ranks[i])
		}
	}
	for i := range all {
		v := 0
		for _, r := range all[i].Ranks {
			v += r
		}
		all[i].Val = v
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].Val != all[b].Val {
			return all[a].Val < all[b].Val
		}
		return lexLess(all[a].Members, all[b].Members)
	})
	return all[0], all, nil
}

// DenseRanks assigns dense competition ranks to values, descending: the
// largest value gets rank 1, equal values share a rank, and the next
// distinct value gets the next integer (1,2,2,3 ... as in the paper's
// Table V).
func DenseRanks(values []float64) []int {
	uniq := append([]float64(nil), values...)
	sort.Sort(sort.Reverse(sort.Float64Slice(uniq)))
	rank := map[float64]int{}
	r := 0
	for i, v := range uniq {
		if i == 0 || v != uniq[i-1] {
			r++
		}
		if _, ok := rank[v]; !ok {
			rank[v] = r
		}
	}
	out := make([]int, len(values))
	for i, v := range values {
		out[i] = rank[v]
	}
	return out
}

// Greedy selects k items with a farthest-point heuristic on the aggregated
// (summed over dimensions) distance: start from the globally farthest pair,
// then repeatedly add the item maximizing its minimum aggregated distance
// to the selection. It approximates the exhaustive optimum at O(k·n²) cost.
func Greedy(m *Matrix, k int) ([]int, error) {
	if k < 1 || k > m.N {
		return nil, fmt.Errorf("diversity: k=%d out of range [1,%d]", k, m.N)
	}
	if k == 1 {
		return []int{0}, nil
	}
	agg := func(i, j int) float64 {
		s := 0.0
		for dim := 0; dim < m.Dims; dim++ {
			s += m.D[dim][i][j]
		}
		return s
	}
	bi, bj, bd := 0, 1, -1.0
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			if d := agg(i, j); d > bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	sel := []int{bi, bj}
	chosen := map[int]bool{bi: true, bj: true}
	for len(sel) < k {
		bestItem, bestScore := -1, -1.0
		for i := 0; i < m.N; i++ {
			if chosen[i] {
				continue
			}
			minD := math.Inf(1)
			for _, s := range sel {
				if d := agg(i, s); d < minD {
					minD = d
				}
			}
			if minD > bestScore {
				bestItem, bestScore = i, minD
			}
		}
		sel = append(sel, bestItem)
		chosen[bestItem] = true
	}
	sort.Ints(sel)
	return sel, nil
}

func combinations(n, k int) [][]int {
	var out [][]int
	comb := make([]int, k)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == k {
			out = append(out, append([]int(nil), comb...))
			return
		}
		for i := start; i <= n-(k-idx); i++ {
			comb[idx] = i
			rec(i+1, idx+1)
		}
	}
	rec(0, 0)
	return out
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
		if r < 0 || r > 1<<40 {
			return 1 << 40 // saturate: "too many"
		}
	}
	return r
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
