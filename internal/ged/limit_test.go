package ged

import (
	"math/rand"
	"testing"

	"skygraph/internal/graph"
)

// TestLimitDecision: a limit-fed search either proves the distance
// exceeds the limit — and the true distance really does — or returns
// exactly the plain search's result.
func TestLimitDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		g1 := graph.Molecule(3+rng.Intn(4), rng)
		g2 := graph.Molecule(3+rng.Intn(4), rng)
		truth := Exact(g1, g2, Options{})
		for _, limit := range []float64{-1, 0, truth.Distance - 1, truth.Distance, truth.Distance + 2, 1e9} {
			l := limit
			res := Exact(g1, g2, Options{Limit: &l})
			if res.AboveLimit {
				if truth.Distance <= limit {
					t.Fatalf("trial %d limit %v: proof claims > limit but exact distance is %v", trial, limit, truth.Distance)
				}
				if res.Distance > truth.Distance {
					t.Fatalf("trial %d limit %v: proven lower bound %v exceeds exact %v", trial, limit, res.Distance, truth.Distance)
				}
				continue
			}
			if !res.Exact || res.Distance != truth.Distance {
				t.Fatalf("trial %d limit %v: non-proof result %+v differs from exact %v", trial, limit, res, truth.Distance)
			}
		}
	}
}

// TestLimitCappedNoFalseProof: a node cap firing during a limit-fed
// search must never fabricate an AboveLimit proof, and the capped
// fallback still reports a valid upper bound.
func TestLimitCappedNoFalseProof(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 15; trial++ {
		g1 := graph.Molecule(6, rng)
		g2 := graph.Molecule(6, rng)
		truth := Exact(g1, g2, Options{})
		limit := truth.Distance // never exceedable: AboveLimit must stay false...
		res := Exact(g1, g2, Options{Limit: &limit, MaxNodes: 3})
		if res.AboveLimit {
			t.Fatalf("trial %d: capped search proved distance > %v but exact is %v", trial, limit, truth.Distance)
		}
		if res.Exact && res.Distance != truth.Distance {
			t.Fatalf("trial %d: capped search claims exact %v != %v", trial, res.Distance, truth.Distance)
		}
		if !res.Exact && res.Distance < truth.Distance {
			t.Fatalf("trial %d: capped upper bound %v below exact %v", trial, res.Distance, truth.Distance)
		}
	}
}
