// Package ged computes the graph edit distance of the paper's Definition 8:
// the minimum total cost of a sequence of edit operations (vertex/edge
// insertion, deletion, relabeling) transforming one graph into another.
//
// Engines:
//
//   - Exact: A* over vertex assignments with an admissible label-histogram
//     heuristic (optimal, exponential worst case; fine at paper scale).
//   - Beam: the same search truncated to a beam width (suboptimal, returns
//     an upper bound).
//   - Bipartite: Riesen–Bunke style assignment approximation via the
//     Hungarian algorithm (fast upper bound).
//   - LowerBound: the histogram lower bound itself (cheap, used for index
//     pruning in internal/gdb).
package ged

import "skygraph/internal/graph"

// CostModel assigns non-negative costs to the six elementary edit
// operations. The paper (Section IV-A) uses the uniform model: relabeling
// costs 1 when labels differ (0 otherwise) and every insertion/deletion
// costs 1.
type CostModel interface {
	VertexSubst(a, b string) float64
	VertexDel(label string) float64
	VertexIns(label string) float64
	EdgeSubst(a, b string) float64
	EdgeDel(label string) float64
	EdgeIns(label string) float64
}

// Uniform is the paper's uniform cost model.
type Uniform struct{}

// VertexSubst returns 0 for equal labels, 1 otherwise.
func (Uniform) VertexSubst(a, b string) float64 {
	if a == b {
		return 0
	}
	return 1
}

// VertexDel returns 1.
func (Uniform) VertexDel(string) float64 { return 1 }

// VertexIns returns 1.
func (Uniform) VertexIns(string) float64 { return 1 }

// EdgeSubst returns 0 for equal labels, 1 otherwise.
func (Uniform) EdgeSubst(a, b string) float64 {
	if a == b {
		return 0
	}
	return 1
}

// EdgeDel returns 1.
func (Uniform) EdgeDel(string) float64 { return 1 }

// EdgeIns returns 1.
func (Uniform) EdgeIns(string) float64 { return 1 }

// WeightedCost scales the uniform model: label mismatches cost Subst,
// insertions/deletions cost Indel (per element kind). It demonstrates the
// pluggable cost interface; all paper experiments use Uniform.
type WeightedCost struct {
	VertexSubstW, VertexIndelW float64
	EdgeSubstW, EdgeIndelW     float64
}

func (w WeightedCost) VertexSubst(a, b string) float64 {
	if a == b {
		return 0
	}
	return w.VertexSubstW
}
func (w WeightedCost) VertexDel(string) float64 { return w.VertexIndelW }
func (w WeightedCost) VertexIns(string) float64 { return w.VertexIndelW }
func (w WeightedCost) EdgeSubst(a, b string) float64 {
	if a == b {
		return 0
	}
	return w.EdgeSubstW
}
func (w WeightedCost) EdgeDel(string) float64 { return w.EdgeIndelW }
func (w WeightedCost) EdgeIns(string) float64 { return w.EdgeIndelW }

// EditCostOfMapping returns the exact edit cost induced by a complete
// vertex mapping m: m[u] = v maps g1 vertex u to g2 vertex v, m[u] = -1
// deletes u. Every g2 vertex not in the image of m is inserted. The cost of
// any mapping is an upper bound on the edit distance, and the edit distance
// equals the minimum over all mappings (for metric-style cost models such
// as Uniform).
func EditCostOfMapping(g1, g2 *graph.Graph, m []int, cm CostModel) float64 {
	n1, n2 := g1.Order(), g2.Order()
	cost := 0.0
	image := make([]bool, n2)
	for u := 0; u < n1; u++ {
		v := m[u]
		if v < 0 {
			cost += cm.VertexDel(g1.VertexLabel(u))
			continue
		}
		image[v] = true
		cost += cm.VertexSubst(g1.VertexLabel(u), g2.VertexLabel(v))
	}
	for v := 0; v < n2; v++ {
		if !image[v] {
			cost += cm.VertexIns(g2.VertexLabel(v))
		}
	}
	// g1 edges: substituted if both endpoints map and the g2 edge exists,
	// deleted otherwise.
	for _, e := range g1.Edges() {
		v1, v2 := m[e.U], m[e.V]
		if v1 >= 0 && v2 >= 0 {
			if l2, ok := g2.EdgeLabel(v1, v2); ok {
				cost += cm.EdgeSubst(e.Label, l2)
				continue
			}
		}
		cost += cm.EdgeDel(e.Label)
	}
	// g2 edges with no g1 counterpart are inserted.
	inv := make([]int, n2)
	for i := range inv {
		inv[i] = -1
	}
	for u, v := range m {
		if v >= 0 {
			inv[v] = u
		}
	}
	for _, e := range g2.Edges() {
		u1, u2 := inv[e.U], inv[e.V]
		if u1 >= 0 && u2 >= 0 {
			if _, ok := g1.EdgeLabel(u1, u2); ok {
				continue // already charged as substitution
			}
		}
		cost += cm.EdgeIns(e.Label)
	}
	return cost
}

// LowerBound returns a cheap admissible lower bound on the uniform-cost
// edit distance: the label-histogram distance over vertices plus the one
// over edges. It never exceeds the true distance and costs O(V+E).
func LowerBound(g1, g2 *graph.Graph) float64 {
	v1, e1 := g1.LabelHistogram()
	v2, e2 := g2.LabelHistogram()
	return float64(graph.HistogramDistance(v1, v2) + graph.HistogramDistance(e1, e2))
}
