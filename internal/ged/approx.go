package ged

import (
	"sort"
	"sync"

	"skygraph/internal/assign"
	"skygraph/internal/graph"
)

// bigCost stands in for +infinity in assignment matrices (the Hungarian
// solver requires finite costs). It dwarfs any realistic edit cost while
// staying far from float64 overflow.
const bigCost = 1e12

// costBuf is a reusable square cost matrix: one flat backing array with
// row views sliced out of it. Bipartite runs once per database graph in
// both the refinement tier and every capped exact fallback, so matrix
// allocation is hot.
type costBuf struct {
	flat []float64
	rows [][]float64
}

// matrix returns an n x n view over the buffer, growing it as needed.
// Cells are not zeroed; Bipartite writes every cell.
func (b *costBuf) matrix(n int) [][]float64 {
	if cap(b.flat) < n*n {
		b.flat = make([]float64, n*n)
	}
	b.flat = b.flat[:n*n]
	if cap(b.rows) < n {
		b.rows = make([][]float64, n)
	}
	b.rows = b.rows[:n]
	for i := range b.rows {
		b.rows[i] = b.flat[i*n : (i+1)*n]
	}
	return b.rows
}

var costPool = sync.Pool{New: func() any { return &costBuf{} }}

// Bipartite computes the Riesen–Bunke style assignment-based approximation:
// a square (n1+n2)x(n1+n2) cost matrix couples every g1 vertex to every g2
// vertex (substitution including a local edge-histogram estimate), to its
// private deletion slot, and every g2 vertex to its private insertion slot.
// The optimal assignment induces a full vertex mapping whose true edit cost
// (EditCostOfMapping) is returned — always an upper bound on the exact
// distance. cm == nil means Uniform{}.
func Bipartite(g1, g2 *graph.Graph, cm CostModel) Result {
	if cm == nil {
		cm = Uniform{}
	}
	n1, n2 := g1.Order(), g2.Order()
	n := n1 + n2
	if n == 0 {
		return Result{Distance: 0, Mapping: []int{}, Exact: true}
	}
	buf := costPool.Get().(*costBuf)
	defer costPool.Put(buf)
	cost := buf.matrix(n)
	// Per-vertex incident edge-label histograms, computed once instead of
	// per (u, v) cell.
	h1, h2 := incidentHists(g1), incidentHists(g2)
	for u := 0; u < n1; u++ {
		for v := 0; v < n2; v++ {
			cost[u][v] = cm.VertexSubst(g1.VertexLabel(u), g2.VertexLabel(v)) +
				float64(graph.HistogramDistance(h1[u], h2[v]))/2
		}
		for j := n2; j < n; j++ {
			if j == n2+u {
				cost[u][j] = cm.VertexDel(g1.VertexLabel(u)) + incidentEdgeCost(g1, u, cm.EdgeDel)
			} else {
				cost[u][j] = bigCost
			}
		}
	}
	for i := n1; i < n; i++ {
		for v := 0; v < n2; v++ {
			if i == n1+v {
				cost[i][v] = cm.VertexIns(g2.VertexLabel(v)) + incidentEdgeCost(g2, v, cm.EdgeIns)
			} else {
				cost[i][v] = bigCost
			}
		}
		// Bottom-right block: epsilon -> epsilon costs nothing. Written
		// explicitly because the pooled matrix arrives dirty.
		for j := n2; j < n; j++ {
			cost[i][j] = 0
		}
	}
	a, _, err := assign.Solve(cost)
	if err != nil {
		// Cannot happen for the matrices built above; fall back to the
		// trivial delete-all/insert-all mapping.
		a = make([]int, n)
		for i := range a {
			a[i] = (i + n2) % n
		}
	}
	m := make([]int, n1)
	for u := 0; u < n1; u++ {
		if a[u] < n2 {
			m[u] = a[u]
		} else {
			m[u] = -1
		}
	}
	d := EditCostOfMapping(g1, g2, m, cm)
	return Result{Distance: d, Mapping: m, Exact: false}
}

// incidentHists returns each vertex's incident edge-label histogram. The
// histogram distance between h[u] and h[v] (halved: each edge has two
// endpoints and would otherwise be double-counted across the assignment)
// estimates the edge cost implied by mapping u -> v — matched labels are
// free, the remainder costs one substitution or indel each.
func incidentHists(g *graph.Graph) []map[string]int {
	out := make([]map[string]int, g.Order())
	for v := range out {
		h := make(map[string]int, g.Degree(v))
		for _, l := range g.NeighborSet(v) {
			h[l]++
		}
		out[v] = h
	}
	return out
}

func incidentEdgeCost(g *graph.Graph, v int, per func(string) float64) float64 {
	c := 0.0
	for _, l := range g.NeighborSet(v) {
		c += per(l) / 2
	}
	return c
}

// Beam runs the A* search restricted to the `width` best nodes per depth
// level. It returns an upper bound on the edit distance (exact when the
// optimal path survives the beam; guaranteed only for width >= the full
// branching). cm == nil means Uniform{}.
func Beam(g1, g2 *graph.Graph, width int, cm CostModel) Result {
	if cm == nil {
		cm = Uniform{}
	}
	if width < 1 {
		width = 1
	}
	s := &astar{g1: g1, g2: g2, cm: cm, order: vertexOrder(g1), useH: false}
	n1, n2 := g1.Order(), g2.Order()
	s.mapping = make([]int, n1)
	s.used = make([]bool, n2)
	s.cacheEdges()

	level := []*node{{depth: 0}}
	for depth := 0; depth < n1; depth++ {
		var next []*node
		for _, cur := range level {
			s.loadState(cur)
			u := s.order[depth]
			for v := 0; v < n2; v++ {
				if s.used[v] {
					continue
				}
				child := &node{parent: cur, depth: depth + 1, v: v}
				child.g = cur.g + s.assignCost(u, v)
				if child.depth == n1 {
					child.g += s.completionCostAfter(v)
				}
				next = append(next, child)
			}
			child := &node{parent: cur, depth: depth + 1, v: -1}
			child.g = cur.g + s.deleteCost(u)
			if child.depth == n1 {
				child.g += s.completionCostAfter(-1)
			}
			next = append(next, child)
		}
		sort.Slice(next, func(i, j int) bool { return next[i].g < next[j].g })
		if len(next) > width {
			next = next[:width]
		}
		level = next
	}
	best := level[0]
	for _, n := range level[1:] {
		if n.g < best.g {
			best = n
		}
	}
	// n1 == 0: pure insertion of g2.
	if n1 == 0 {
		d := 0.0
		for v := 0; v < n2; v++ {
			d += cm.VertexIns(g2.VertexLabel(v))
		}
		for _, e := range g2.Edges() {
			d += cm.EdgeIns(e.Label)
		}
		return Result{Distance: d, Mapping: []int{}, Exact: true}
	}
	return Result{Distance: best.g, Mapping: s.extractMapping(best), Exact: false}
}
