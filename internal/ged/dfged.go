package ged

import "skygraph/internal/graph"

// DepthFirst computes the exact edit distance by depth-first branch and
// bound instead of best-first A*: it seeds the upper bound with the
// bipartite approximation, explores assignments in depth-first order, and
// prunes partial mappings whose cost plus heuristic reaches the incumbent.
// It visits more nodes than A* but allocates no frontier, making it the
// memory-light alternative (the DF-GED ablation in DESIGN.md). cm == nil
// means Uniform{}.
func DepthFirst(g1, g2 *graph.Graph, cm CostModel) Result {
	if cm == nil {
		cm = Uniform{}
	}
	_, uniform := cm.(Uniform)
	s := &astar{g1: g1, g2: g2, cm: cm, order: vertexOrder(g1), useH: uniform}
	n1, n2 := g1.Order(), g2.Order()
	s.mapping = make([]int, n1)
	s.used = make([]bool, n2)
	s.cacheEdges()
	for i := range s.mapping {
		s.mapping[i] = -2
	}

	seed := Bipartite(g1, g2, cm)
	df := &dfSearch{astar: s, bestDist: seed.Distance, bestMapping: seed.Mapping}
	if n1 == 0 {
		d := s.completionCostAfter(-1)
		return Result{Distance: d, Mapping: []int{}, Exact: true, Nodes: 1}
	}
	df.dive(0, 0)
	return Result{Distance: df.bestDist, Mapping: df.bestMapping, Exact: true, Nodes: df.nodes}
}

type dfSearch struct {
	*astar
	bestDist    float64
	bestMapping []int
	nodes       int64
}

func (df *dfSearch) dive(depth int, g float64) {
	df.nodes++
	n1, n2 := df.g1.Order(), df.g2.Order()
	if depth == n1 {
		total := g + df.completionCostAfter(-1)
		if total < df.bestDist {
			df.bestDist = total
			m := make([]int, n1)
			for i, v := range df.mapping {
				if v == -2 {
					v = -1
				}
				m[i] = v
			}
			df.bestMapping = m
		}
		return
	}
	u := df.order[depth]
	// Children in increasing immediate-cost order: cheap moves first finds
	// tight incumbents early.
	type move struct {
		v    int
		cost float64
	}
	moves := make([]move, 0, n2+1)
	for v := 0; v < n2; v++ {
		if !df.used[v] {
			moves = append(moves, move{v, df.assignCost(u, v)})
		}
	}
	moves = append(moves, move{-1, df.deleteCost(u)})
	for i := 1; i < len(moves); i++ {
		for j := i; j > 0 && moves[j].cost < moves[j-1].cost; j-- {
			moves[j], moves[j-1] = moves[j-1], moves[j]
		}
	}
	for _, mv := range moves {
		child := g + mv.cost
		if child >= df.bestDist {
			continue
		}
		if df.useH && child+df.remainderBound(depth, u, mv.v) >= df.bestDist {
			continue
		}
		df.mapping[u] = mv.v
		if mv.v >= 0 {
			df.used[mv.v] = true
		}
		df.dive(depth+1, child)
		if mv.v >= 0 {
			df.used[mv.v] = false
		}
		df.mapping[u] = -2
	}
}

// remainderBound is the admissible histogram bound on the cost of the
// still-open part after assigning u -> v (v == -1 for deletion); it
// mirrors astar.heuristicAfter but reads dfSearch's live scratch state.
func (df *dfSearch) remainderBound(depth, u, v int) float64 {
	cur := &node{depth: depth}
	return df.heuristicAfter(cur, u, v)
}
