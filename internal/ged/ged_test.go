package ged

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"skygraph/internal/graph"
)

func TestDistanceIdentical(t *testing.T) {
	g := graph.Cycle(5, "A", "x")
	if d := Distance(g, g.Clone()); d != 0 {
		t.Errorf("d=%v, want 0", d)
	}
}

func TestDistanceIsomorphicIsZero(t *testing.T) {
	g := graph.New("g")
	g.AddVertex("A")
	g.AddVertex("B")
	g.AddVertex("C")
	g.MustAddEdge(0, 1, "x")
	g.MustAddEdge(1, 2, "y")
	h := graph.New("h") // same graph, vertices permuted
	h.AddVertex("C")
	h.AddVertex("A")
	h.AddVertex("B")
	h.MustAddEdge(1, 2, "x")
	h.MustAddEdge(2, 0, "y")
	if d := Distance(g, h); d != 0 {
		t.Errorf("d=%v, want 0 for isomorphic graphs", d)
	}
}

func TestDistanceSingleOps(t *testing.T) {
	base := graph.Path(4, "A", "x")
	cases := []struct {
		name string
		ops  []graph.EditOp
		want float64
	}{
		{"vertex relabel", []graph.EditOp{graph.RelabelVertexOp{V: 1, Label: "B"}}, 1},
		{"edge relabel", []graph.EditOp{graph.RelabelEdgeOp{U: 1, V: 2, Label: "y"}}, 1},
		{"edge delete", []graph.EditOp{graph.DeleteEdge{U: 2, V: 3}}, 1},
		{"edge insert", []graph.EditOp{graph.InsertEdge{U: 0, V: 3, Label: "x"}}, 1},
		{"vertex insert", []graph.EditOp{graph.InsertVertex{Label: "Z"}}, 1},
		{"two ops", []graph.EditOp{
			graph.RelabelVertexOp{V: 0, Label: "Q"},
			graph.InsertEdge{U: 0, V: 2, Label: "z"},
		}, 2},
	}
	for _, c := range cases {
		mutated, err := graph.ApplyScript(base, c.ops)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if d := Distance(base, mutated); d != c.want {
			t.Errorf("%s: d=%v, want %v", c.name, d, c.want)
		}
	}
}

func TestDistanceEmptyGraphs(t *testing.T) {
	e := graph.New("e")
	g := graph.Path(3, "A", "x") // 3 vertices + 2 edges
	if d := Distance(e, g); d != 5 {
		t.Errorf("d(empty,P3)=%v, want 5", d)
	}
	if d := Distance(g, e); d != 5 {
		t.Errorf("d(P3,empty)=%v, want 5", d)
	}
	if d := Distance(e, graph.New("e2")); d != 0 {
		t.Errorf("d(empty,empty)=%v", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		g1 := graph.Molecule(5+rng.Intn(3), rng)
		g2 := graph.Molecule(5+rng.Intn(3), rng)
		d12, d21 := Distance(g1, g2), Distance(g2, g1)
		if d12 != d21 {
			t.Fatalf("not symmetric: %v vs %v\n%s\n%s", d12, d21, g1, g2)
		}
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		a := graph.Molecule(5, rng)
		b := graph.Molecule(5, rng)
		c := graph.Molecule(5, rng)
		dab, dbc, dac := Distance(a, b), Distance(b, c), Distance(a, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle violated: d(a,c)=%v > %v + %v", dac, dab, dbc)
		}
	}
}

// bruteDistance minimizes EditCostOfMapping over every injective partial
// mapping — the definitionally correct distance for mapping-induced costs.
func bruteDistance(g1, g2 *graph.Graph, cm CostModel) float64 {
	n1 := g1.Order()
	m := make([]int, n1)
	used := make([]bool, g2.Order())
	best := math.Inf(1)
	var rec func(u int)
	rec = func(u int) {
		if u == n1 {
			if c := EditCostOfMapping(g1, g2, m, cm); c < best {
				best = c
			}
			return
		}
		m[u] = -1
		rec(u + 1)
		for v := 0; v < g2.Order(); v++ {
			if used[v] {
				continue
			}
			m[u] = v
			used[v] = true
			rec(u + 1)
			used[v] = false
		}
		m[u] = -1
	}
	rec(0)
	return best
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1 := graph.ErdosRenyi(1+r.Intn(4), 0.5, []string{"A", "B"}, []string{"x", "y"}, r)
		g2 := graph.ErdosRenyi(1+r.Intn(4), 0.5, []string{"A", "B"}, []string{"x", "y"}, r)
		got := Distance(g1, g2)
		want := bruteDistance(g1, g2, Uniform{})
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestExactMappingRealizesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g1 := graph.Molecule(6, rng)
		g2 := graph.Molecule(6, rng)
		res := Exact(g1, g2, Options{})
		if !res.Exact {
			t.Fatal("uncapped exact not exact")
		}
		realized := EditCostOfMapping(g1, g2, res.Mapping, Uniform{})
		if math.Abs(realized-res.Distance) > 1e-9 {
			t.Fatalf("mapping cost %v != reported %v", realized, res.Distance)
		}
	}
}

func TestLowerBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		g1 := graph.Molecule(6, rng)
		g2 := graph.Molecule(6, rng)
		lb := LowerBound(g1, g2)
		d := Distance(g1, g2)
		if lb > d+1e-9 {
			t.Fatalf("lower bound %v exceeds distance %v", lb, d)
		}
	}
}

func TestBipartiteUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		g1 := graph.Molecule(7, rng)
		g2 := graph.Molecule(7, rng)
		ub := Bipartite(g1, g2, nil)
		d := Distance(g1, g2)
		if ub.Distance < d-1e-9 {
			t.Fatalf("bipartite %v below exact %v", ub.Distance, d)
		}
		realized := EditCostOfMapping(g1, g2, ub.Mapping, Uniform{})
		if math.Abs(realized-ub.Distance) > 1e-9 {
			t.Fatalf("bipartite mapping cost %v != reported %v", realized, ub.Distance)
		}
	}
}

func TestBipartiteEmpty(t *testing.T) {
	e := graph.New("e")
	if r := Bipartite(e, e.Clone(), nil); r.Distance != 0 {
		t.Errorf("d=%v", r.Distance)
	}
	g := graph.Path(3, "A", "x")
	if r := Bipartite(e, g, nil); r.Distance != 5 {
		t.Errorf("d(empty,P3)=%v, want 5", r.Distance)
	}
}

func TestBeamUpperBoundAndConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		g1 := graph.Molecule(5, rng)
		g2 := graph.Molecule(5, rng)
		d := Distance(g1, g2)
		// Beam search is not strictly monotone in width (truncation sets do
		// not nest), but every width yields an upper bound, and a beam wider
		// than the whole level set is exhaustive, hence exact.
		var full float64
		for _, w := range []int{1, 5, 50, 1 << 24} {
			b := Beam(g1, g2, w, nil)
			if b.Distance < d-1e-9 {
				t.Fatalf("beam(%d) %v below exact %v", w, b.Distance, d)
			}
			full = b.Distance
		}
		if math.Abs(full-d) > 1e-9 {
			t.Fatalf("full-width beam %v != exact %v", full, d)
		}
	}
}

func TestExactNodeCapFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g1 := graph.Molecule(10, rng)
	g2 := graph.Molecule(10, rng)
	res := Exact(g1, g2, Options{MaxNodes: 5})
	if res.Exact {
		t.Error("capped search claims exactness")
	}
	if math.IsInf(res.Distance, 1) || res.Mapping == nil {
		t.Error("capped search did not fall back to an upper bound")
	}
	if d := Distance(g1, g2); res.Distance < d-1e-9 {
		t.Errorf("fallback %v below exact %v", res.Distance, d)
	}
}

func TestWeightedCostModel(t *testing.T) {
	w := WeightedCost{VertexSubstW: 2, VertexIndelW: 3, EdgeSubstW: 5, EdgeIndelW: 7}
	base := graph.Path(3, "A", "x")
	relabeled, _ := graph.ApplyScript(base, []graph.EditOp{graph.RelabelVertexOp{V: 1, Label: "B"}})
	res := Exact(base, relabeled, Options{Cost: w})
	if res.Distance != 2 {
		t.Errorf("weighted relabel distance=%v, want 2", res.Distance)
	}
	edgeDel, _ := graph.ApplyScript(base, []graph.EditOp{graph.DeleteEdge{U: 0, V: 1}})
	res = Exact(base, edgeDel, Options{Cost: w})
	if res.Distance != 7 {
		t.Errorf("weighted edge-del distance=%v, want 7", res.Distance)
	}
}

func TestDisableHeuristicSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 8; trial++ {
		g1 := graph.Molecule(5, rng)
		g2 := graph.Molecule(5, rng)
		a := Exact(g1, g2, Options{})
		b := Exact(g1, g2, Options{DisableHeuristic: true})
		if math.Abs(a.Distance-b.Distance) > 1e-9 {
			t.Fatalf("heuristic changed the optimum: %v vs %v", a.Distance, b.Distance)
		}
		if b.Nodes < a.Nodes {
			t.Logf("note: heuristic expanded more nodes (%d vs %d)", a.Nodes, b.Nodes)
		}
	}
}

func TestEditCostOfMappingDeleteAll(t *testing.T) {
	g1 := graph.Path(3, "A", "x")
	g2 := graph.Path(2, "B", "y")
	m := []int{-1, -1, -1}
	// delete 3 vertices + 2 edges, insert 2 vertices + 1 edge = 8
	if c := EditCostOfMapping(g1, g2, m, Uniform{}); c != 8 {
		t.Errorf("cost=%v, want 8", c)
	}
}

func TestUniformCostValues(t *testing.T) {
	u := Uniform{}
	if u.VertexSubst("a", "a") != 0 || u.VertexSubst("a", "b") != 1 {
		t.Error("VertexSubst")
	}
	if u.EdgeSubst("a", "a") != 0 || u.EdgeSubst("a", "b") != 1 {
		t.Error("EdgeSubst")
	}
	if u.VertexDel("a") != 1 || u.VertexIns("a") != 1 || u.EdgeDel("a") != 1 || u.EdgeIns("a") != 1 {
		t.Error("indel costs")
	}
}

func TestDepthFirstMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		g1 := graph.Molecule(4+rng.Intn(4), rng)
		g2 := graph.Molecule(4+rng.Intn(4), rng)
		a := Distance(g1, g2)
		d := DepthFirst(g1, g2, nil)
		if math.Abs(a-d.Distance) > 1e-9 {
			t.Fatalf("DF %v != A* %v\n%s\n%s", d.Distance, a, g1, g2)
		}
		if !d.Exact {
			t.Error("DepthFirst not exact")
		}
		realized := EditCostOfMapping(g1, g2, d.Mapping, Uniform{})
		if math.Abs(realized-d.Distance) > 1e-9 {
			t.Fatalf("DF mapping cost %v != reported %v", realized, d.Distance)
		}
	}
}

func TestDepthFirstEmpty(t *testing.T) {
	e := graph.New("e")
	g := graph.Path(3, "A", "x")
	if d := DepthFirst(e, g, nil); d.Distance != 5 {
		t.Errorf("DF(empty,P3)=%v, want 5", d.Distance)
	}
	if d := DepthFirst(g, e, nil); d.Distance != 5 {
		t.Errorf("DF(P3,empty)=%v, want 5", d.Distance)
	}
}

func TestDepthFirstWeightedCost(t *testing.T) {
	w := WeightedCost{VertexSubstW: 2, VertexIndelW: 3, EdgeSubstW: 5, EdgeIndelW: 7}
	base := graph.Path(3, "A", "x")
	mutated, _ := graph.ApplyScript(base, []graph.EditOp{graph.RelabelVertexOp{V: 1, Label: "B"}})
	if d := DepthFirst(base, mutated, w); d.Distance != 2 {
		t.Errorf("weighted DF=%v, want 2", d.Distance)
	}
}
