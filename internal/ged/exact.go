package ged

import (
	"container/heap"
	"math"

	"skygraph/internal/graph"
)

// Options tunes the exact search.
type Options struct {
	// Cost is the cost model; nil means Uniform{}.
	Cost CostModel
	// MaxNodes caps A* node expansions; 0 means unlimited. When the cap is
	// hit, Exact falls back to the bipartite upper bound and reports
	// Exact=false in the result.
	MaxNodes int64
	// DisableHeuristic switches A* to uniform-cost search (h = 0). The
	// histogram heuristic is admissible for the Uniform model; for custom
	// cost models with unit costs below 1 it could overestimate, so it is
	// automatically disabled unless the model is Uniform.
	DisableHeuristic bool
	// Upper, when non-nil, is a precomputed Bipartite(g1, g2, Cost)
	// result to use as the cap fallback instead of recomputing it —
	// the filter-and-refine pipeline already paid for it in the
	// refinement tier. Must come from the same pair, orientation and
	// cost model, or the result is undefined.
	Upper *Result
	// Limit, when non-nil, turns the search into a decision procedure
	// for "distance > *Limit": the moment the cheapest open node's
	// f-value exceeds the limit, every remaining completion provably
	// costs more than the limit (the f-value of an ancestor lower-bounds
	// all of its completions), so the search stops and reports
	// AboveLimit with Distance holding that proven lower bound. A goal
	// within the limit is returned exactly as without Limit. Ranked
	// queries use this to discard candidates whose distance provably
	// exceeds the current top-k threshold without paying for exactness.
	Limit *float64
}

// Result reports a distance computation.
type Result struct {
	// Distance is the edit distance (exact) or an upper bound (inexact).
	Distance float64
	// Mapping is the vertex mapping realizing Distance: Mapping[u] is the
	// g2 vertex assigned to g1 vertex u, or -1 for deletion.
	Mapping []int
	// Exact is true when Distance is provably minimal.
	Exact bool
	// AboveLimit is true when the search stopped early having proven
	// Distance > *Options.Limit; Distance then holds the proven lower
	// bound and Mapping is nil. Only possible when Options.Limit is set.
	AboveLimit bool
	// LowerBound is a proven lower bound on the true distance: the
	// distance itself for exact results, the cheapest open f-value at
	// the stopping point for capped or limit-stopped searches (the
	// f-value of an ancestor lower-bounds all of its completions, so no
	// mapping can cost less). Engines that do not search (Bipartite,
	// Beam) leave it 0 — the trivial bound. The pivot index stores it as
	// the low end of a distance interval when the insert-time search
	// caps out.
	LowerBound float64
	// Nodes is the number of A* expansions performed.
	Nodes int64
}

// Distance returns the exact uniform-cost edit distance between g1 and g2.
func Distance(g1, g2 *graph.Graph) float64 {
	return Exact(g1, g2, Options{}).Distance
}

// Exact computes the edit distance by A* over vertex assignments.
func Exact(g1, g2 *graph.Graph, opts Options) Result {
	cm := opts.Cost
	if cm == nil {
		cm = Uniform{}
	}
	_, uniform := cm.(Uniform)
	useH := uniform && !opts.DisableHeuristic

	limit := math.Inf(1)
	if opts.Limit != nil {
		limit = *opts.Limit
	}
	s := &astar{
		g1: g1, g2: g2, cm: cm,
		order: vertexOrder(g1),
		useH:  useH,
		limit: limit,
	}
	res := s.run(opts.MaxNodes)
	if !res.Exact && !res.AboveLimit {
		// Graceful degradation: bipartite approximation upper bound
		// (precomputed by the caller when available). An AboveLimit
		// result is left alone — its Distance is a proven lower bound,
		// which an upper bound cannot replace.
		ub := opts.Upper
		if ub == nil {
			b := Bipartite(g1, g2, cm)
			ub = &b
		}
		if ub.Distance < res.Distance || res.Mapping == nil {
			res.Distance = ub.Distance
			res.Mapping = ub.Mapping
		}
	}
	return res
}

// vertexOrder processes high-degree vertices first: they constrain the most
// edges, which tightens g early and prunes better.
func vertexOrder(g *graph.Graph) []int {
	order := make([]int, g.Order())
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && g.Degree(order[j]) > g.Degree(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

type node struct {
	parent *node
	depth  int // number of g1 vertices assigned
	v      int // g2 vertex assigned to order[depth-1], or -1 for deletion
	g, h   float64
	index  int // heap bookkeeping
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].g+h[i].h < h[j].g+h[j].h }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *nodeHeap) Push(x interface{}) { n := x.(*node); n.index = len(*h); *h = append(*h, n) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return n
}

type astar struct {
	g1, g2 *graph.Graph
	cm     CostModel
	order  []int
	useH   bool
	limit  float64 // decision threshold (+Inf = plain optimization)

	// scratch, rebuilt per expansion
	mapping []int  // g1 vertex -> g2 vertex or -1; -2 = unassigned
	used    []bool // g2 vertex used

	// heuristic histogram scratch, cleared and refilled per child node
	// instead of allocating four maps per expansion
	hv1, hv2, he1, he2 map[string]int

	// edges1, edges2 cache graph.Edges() once per search; the heuristic
	// and completion costs walk the edge lists on every expansion and
	// Edges() allocates per call
	edges1, edges2 []graph.Edge
}

// cacheEdges fills the per-search edge list scratch.
func (s *astar) cacheEdges() {
	s.edges1, s.edges2 = s.g1.Edges(), s.g2.Edges()
}

func (s *astar) run(maxNodes int64) Result {
	n1, n2 := s.g1.Order(), s.g2.Order()
	s.mapping = make([]int, n1)
	s.used = make([]bool, n2)
	s.cacheEdges()
	if n1 == 0 {
		// Pure insertion of g2.
		d := s.completionCostAfter(-1)
		return Result{Distance: d, Mapping: []int{}, Exact: true, LowerBound: d}
	}

	open := &nodeHeap{}
	root := &node{depth: 0, g: 0}
	root.h = s.heuristic(root)
	heap.Push(open, root)

	var nodes int64
	for open.Len() > 0 {
		if maxNodes > 0 && nodes >= maxNodes {
			// The cheapest open f-value lower-bounds every completion
			// still reachable, so it is a certified floor of the true
			// distance even though the search gives up on exactness.
			top := (*open)[0]
			return Result{Distance: math.Inf(1), Exact: false, LowerBound: top.g + top.h, Nodes: nodes}
		}
		cur := heap.Pop(open).(*node)
		if cur.g+cur.h > s.limit {
			// cur is the cheapest open node and its f-value lower-bounds
			// every completion still reachable, so no mapping fits under
			// the limit: the decision "distance > limit" is proven.
			return Result{Distance: cur.g + cur.h, AboveLimit: true, LowerBound: cur.g + cur.h, Nodes: nodes}
		}
		nodes++
		if cur.depth == n1 {
			// Complete assignment: add the completion cost for unused g2
			// vertices and untouched g2 edges, already included in g via
			// the final expansion step.
			return Result{Distance: cur.g, Mapping: s.extractMapping(cur), Exact: true, LowerBound: cur.g, Nodes: nodes}
		}
		s.loadState(cur)
		u := s.order[cur.depth]
		// Try assigning u to every unused g2 vertex.
		for v := 0; v < n2; v++ {
			if s.used[v] {
				continue
			}
			child := &node{parent: cur, depth: cur.depth + 1, v: v}
			child.g = cur.g + s.assignCost(u, v)
			if child.depth == n1 {
				child.g += s.completionCostAfter(v)
			} else if s.useH {
				child.h = s.heuristicAfter(cur, u, v)
			}
			heap.Push(open, child)
		}
		// Or delete u.
		child := &node{parent: cur, depth: cur.depth + 1, v: -1}
		child.g = cur.g + s.deleteCost(u)
		if child.depth == n1 {
			child.g += s.completionCostAfter(-1)
		} else if s.useH {
			child.h = s.heuristicAfter(cur, u, -1)
		}
		heap.Push(open, child)
	}
	// Unreachable: the search space always contains the all-delete mapping.
	return Result{Distance: math.Inf(1), Nodes: nodes}
}

// loadState rebuilds the mapping/used scratch arrays for cur by walking its
// parent chain.
func (s *astar) loadState(cur *node) {
	for i := range s.mapping {
		s.mapping[i] = -2
	}
	for i := range s.used {
		s.used[i] = false
	}
	for n := cur; n != nil && n.depth > 0; n = n.parent {
		u := s.order[n.depth-1]
		s.mapping[u] = n.v
		if n.v >= 0 {
			s.used[n.v] = true
		}
	}
}

func (s *astar) extractMapping(cur *node) []int {
	s.loadState(cur)
	out := make([]int, len(s.mapping))
	for i, v := range s.mapping {
		if v == -2 {
			v = -1
		}
		out[i] = v
	}
	return out
}

// assignCost is the incremental cost of mapping u -> v given the scratch
// state: the vertex substitution plus every edge between u and an
// already-assigned g1 vertex (substitution, deletion, or the matching g2
// edge insertion).
func (s *astar) assignCost(u, v int) float64 {
	cost := s.cm.VertexSubst(s.g1.VertexLabel(u), s.g2.VertexLabel(v))
	// Edges of g1 between u and assigned vertices.
	for w, l1 := range s.g1.NeighborSet(u) {
		mw := s.mapping[w]
		if mw == -2 {
			continue // w not processed yet; charged later
		}
		if mw >= 0 {
			if l2, ok := s.g2.EdgeLabel(v, mw); ok {
				cost += s.cm.EdgeSubst(l1, l2)
				continue
			}
		}
		cost += s.cm.EdgeDel(l1)
	}
	// Edges of g2 between v and used vertices with no g1 counterpart.
	for x, l2 := range s.g2.NeighborSet(v) {
		if !s.used[x] {
			continue
		}
		w := s.inverse(x)
		if _, ok := s.g1.EdgeLabel(u, w); ok {
			continue // handled above as substitution
		}
		cost += s.cm.EdgeIns(l2)
	}
	return cost
}

// deleteCost charges the deletion of u and of its edges toward already-
// processed vertices.
func (s *astar) deleteCost(u int) float64 {
	cost := s.cm.VertexDel(s.g1.VertexLabel(u))
	for w, l1 := range s.g1.NeighborSet(u) {
		if s.mapping[w] != -2 {
			cost += s.cm.EdgeDel(l1)
		}
	}
	return cost
}

// inverse returns the g1 vertex currently mapped to g2 vertex x (x must be
// used).
func (s *astar) inverse(x int) int {
	for w, v := range s.mapping {
		if v == x {
			return w
		}
	}
	return -1
}

// completionCostAfter charges, once all g1 vertices are processed, the
// insertion of every g2 vertex left unused and of every g2 edge with at
// least one unused endpoint. (g2 edges between two used vertices were
// charged during assignment.) The scratch state corresponds to the parent;
// v is the g2 vertex the final step consumes (-1 when the final g1 vertex
// was deleted).
func (s *astar) completionCostAfter(v int) float64 {
	cost := 0.0
	for x := 0; x < s.g2.Order(); x++ {
		if s.open2(x, v) {
			cost += s.cm.VertexIns(s.g2.VertexLabel(x))
		}
	}
	for _, e := range s.edges2 {
		if s.open2(e.U, v) || s.open2(e.V, v) {
			cost += s.cm.EdgeIns(e.Label)
		}
	}
	return cost
}

// heuristic returns the admissible histogram bound for the root.
func (s *astar) heuristic(*node) float64 {
	if !s.useH {
		return 0
	}
	return LowerBound(s.g1, s.g2)
}

// heuristicAfter bounds the remaining cost after additionally assigning
// u -> v (or deleting u when v == -1) on top of cur's state: the histogram
// distance between the labels of unprocessed g1 vertices and unused g2
// vertices, plus the same bound over edges with at least one open endpoint.
// Scratch state must correspond to cur (loadState(cur) called earlier in
// the expansion loop).
func (s *astar) heuristicAfter(cur *node, u, v int) float64 {
	if s.hv1 == nil {
		s.hv1, s.hv2 = map[string]int{}, map[string]int{}
		s.he1, s.he2 = map[string]int{}, map[string]int{}
	}
	v1, v2, e1, e2 := s.hv1, s.hv2, s.he1, s.he2
	clear(v1)
	clear(v2)
	clear(e1)
	clear(e2)
	// Unprocessed g1 vertices, excluding u.
	for i := cur.depth + 1; i < len(s.order); i++ {
		v1[s.g1.VertexLabel(s.order[i])]++
	}
	for x := 0; x < s.g2.Order(); x++ {
		if !s.used[x] && x != v {
			v2[s.g2.VertexLabel(x)]++
		}
	}
	for _, e := range s.edges1 {
		if s.open1(e.U, u) || s.open1(e.V, u) {
			e1[e.Label]++
		}
	}
	for _, e := range s.edges2 {
		if s.open2(e.U, v) || s.open2(e.V, v) {
			e2[e.Label]++
		}
	}
	return float64(graph.HistogramDistance(v1, v2) + graph.HistogramDistance(e1, e2))
}

// open1 reports whether g1 vertex w is still unprocessed after u is
// processed.
func (s *astar) open1(w, u int) bool { return w != u && s.mapping[w] == -2 }

// open2 reports whether g2 vertex x is still unused after v is used.
func (s *astar) open2(x, v int) bool { return x != v && !s.used[x] }
