package ged

import (
	"math/rand"
	"testing"

	"skygraph/internal/graph"
)

// The pivot index (internal/pivot) is sound only because uniform-cost
// GED is a metric. These tests fuzz the metric axioms over seeded
// random graph triples — identity, symmetry and above all the triangle
// inequality the triangle bounds rely on — plus the certified
// LowerBound contract of capped and limit-stopped searches.

func randomTriple(rng *rand.Rand) (a, b, c *graph.Graph) {
	a = graph.Molecule(3+rng.Intn(5), rng)
	b = graph.Molecule(3+rng.Intn(5), rng)
	// c is sometimes a mutation of a, so the triple is not always three
	// unrelated graphs (tight triangles stress the inequality hardest).
	if rng.Intn(2) == 0 {
		c = graph.Mutate(a, 1+rng.Intn(3), graph.MoleculeAlphabet.Atoms, graph.MoleculeAlphabet.Bonds, rng)
	} else {
		c = graph.Molecule(3+rng.Intn(5), rng)
	}
	return a, b, c
}

// TestTriangleInequalityFuzz: d(a,c) <= d(a,b) + d(b,c) for exact
// uniform-cost GED on seeded random triples, plus symmetry and
// identity.
func TestTriangleInequalityFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	for i := 0; i < rounds; i++ {
		a, b, c := randomTriple(rng)
		dab := Exact(a, b, Options{}).Distance
		dbc := Exact(b, c, Options{}).Distance
		dac := Exact(a, c, Options{}).Distance
		if dac > dab+dbc {
			t.Fatalf("round %d: triangle violated: d(a,c)=%v > d(a,b)+d(b,c)=%v+%v\na=%v\nb=%v\nc=%v",
				i, dac, dab, dbc, a, b, c)
		}
		if dba := Exact(b, a, Options{}).Distance; dba != dab {
			t.Fatalf("round %d: asymmetric: d(a,b)=%v, d(b,a)=%v", i, dab, dba)
		}
		if daa := Exact(a, a, Options{}).Distance; daa != 0 {
			t.Fatalf("round %d: d(a,a)=%v", i, daa)
		}
	}
}

// TestLowerBoundCertified: Result.LowerBound must never exceed the true
// distance — for exact runs it equals it, for capped runs it is the
// frontier floor the pivot index stores, and it must dominate the
// histogram bound the search started from whenever the search got
// anywhere.
func TestLowerBoundCertified(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		g1 := graph.Molecule(4+rng.Intn(5), rng)
		g2 := graph.Molecule(4+rng.Intn(5), rng)
		exact := Exact(g1, g2, Options{})
		if !exact.Exact {
			t.Fatalf("round %d: uncapped search not exact", i)
		}
		if exact.LowerBound != exact.Distance {
			t.Fatalf("round %d: exact LowerBound %v != Distance %v", i, exact.LowerBound, exact.Distance)
		}
		for _, cap := range []int64{1, 5, 50} {
			capped := Exact(g1, g2, Options{MaxNodes: cap})
			if capped.LowerBound > exact.Distance {
				t.Fatalf("round %d cap=%d: LowerBound %v exceeds true distance %v",
					i, cap, capped.LowerBound, exact.Distance)
			}
			if !capped.Exact && capped.Distance < exact.Distance {
				t.Fatalf("round %d cap=%d: capped Distance %v below true %v",
					i, cap, capped.Distance, exact.Distance)
			}
		}
		// Limit-stopped searches certify their bound too.
		if exact.Distance > 0 {
			limit := exact.Distance - 1
			dec := Exact(g1, g2, Options{Limit: &limit})
			if dec.AboveLimit {
				if dec.LowerBound > exact.Distance {
					t.Fatalf("round %d: AboveLimit LowerBound %v exceeds true %v", i, dec.LowerBound, exact.Distance)
				}
				if dec.LowerBound <= limit {
					t.Fatalf("round %d: AboveLimit bound %v does not prove > %v", i, dec.LowerBound, limit)
				}
			}
		}
	}
}
