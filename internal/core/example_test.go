package core_test

import (
	"fmt"

	"skygraph/internal/core"
	"skygraph/internal/dataset"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
)

// ExampleEngine_Skyline reproduces the paper's Section VI query: the
// similarity skyline of the seven-graph database against q.
func ExampleEngine_Skyline() {
	eng := core.NewEngine()
	if err := eng.Add(dataset.PaperDB()...); err != nil {
		panic(err)
	}
	res, err := eng.Skyline(dataset.PaperQuery())
	if err != nil {
		panic(err)
	}
	for _, m := range res.Members {
		fmt.Printf("%s (%.0f, %.2f, %.2f)\n", m.Name, m.Vector[0], m.Vector[1], m.Vector[2])
	}
	// Output:
	// g1 (4, 0.33, 0.50)
	// g4 (2, 0.50, 0.67)
	// g5 (3, 0.38, 0.44)
	// g7 (4, 0.40, 0.40)
}

// ExampleEngine_TopK shows the single-measure baseline the skyline
// generalizes: the nearest graph by edit distance alone.
func ExampleEngine_TopK() {
	eng := core.NewEngine()
	if err := eng.Add(dataset.PaperDB()...); err != nil {
		panic(err)
	}
	top, err := eng.TopK(dataset.PaperQuery(), measure.DistEd{}, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(top[0].Name, top[0].Vector[0])
	// Output:
	// g4 2
}

// ExampleExplain shows how to ask why a graph was excluded from the
// skyline.
func ExampleExplain() {
	eng := core.NewEngine()
	if err := eng.Add(dataset.PaperDB()...); err != nil {
		panic(err)
	}
	res, err := eng.Skyline(dataset.PaperQuery())
	if err != nil {
		panic(err)
	}
	dom, ok := core.Explain(res, "g3")
	fmt.Println(ok, dom)
	// Output:
	// true g5
}

// ExampleNewEngine demonstrates building graphs programmatically and
// querying with a custom two-measure basis.
func ExampleNewEngine() {
	tri := graph.Complete(3, "A", "x")
	tri.SetName("triangle")
	p4 := graph.Path(4, "A", "x")
	p4.SetName("path4")

	eng := core.NewEngine(core.WithBasis(measure.DistEd{}, measure.DistGu{}))
	if err := eng.Add(tri, p4); err != nil {
		panic(err)
	}
	res, err := eng.Skyline(graph.Path(3, "A", "x"))
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Members[0].Vector), "dimensions")
	// Output:
	// 2 dimensions
}
