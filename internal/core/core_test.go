package core

import (
	"path/filepath"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
)

func paperEngine(t *testing.T, options ...Option) *Engine {
	t.Helper()
	e := NewEngine(options...)
	if err := e.Add(dataset.PaperDB()...); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineSkylinePaper(t *testing.T) {
	e := paperEngine(t)
	res, err := e.Skyline(dataset.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 7 || res.Inexact != 0 {
		t.Errorf("evaluated=%d inexact=%d", res.Evaluated, res.Inexact)
	}
	if len(res.Members) != 4 {
		t.Fatalf("members=%v", res.Members)
	}
	for i, want := range dataset.GSSExpected {
		if res.Members[i].Name != want {
			t.Errorf("member[%d]=%s, want %s", i, res.Members[i].Name, want)
		}
	}
}

func TestEngineAddRemove(t *testing.T) {
	e := paperEngine(t)
	if e.Len() != 7 {
		t.Errorf("len=%d", e.Len())
	}
	if !e.Remove("g3") {
		t.Error("Remove failed")
	}
	if _, ok := e.Get("g3"); ok {
		t.Error("g3 still present")
	}
	if len(e.Names()) != 6 {
		t.Errorf("names=%v", e.Names())
	}
}

func TestEngineSaveLoad(t *testing.T) {
	e := paperEngine(t)
	path := filepath.Join(t.TempDir(), "paper.lgf")
	if err := e.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Skyline(dataset.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 4 {
		t.Errorf("skyline after reload: %v", res.Members)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nope.lgf")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestEngineDiverseSkyline(t *testing.T) {
	e := paperEngine(t)
	res, err := e.DiverseSkyline(dataset.PaperQuery(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 || !res.Exhaustive {
		t.Errorf("selected=%v exhaustive=%v", res.Selected, res.Exhaustive)
	}
}

func TestEngineTopK(t *testing.T) {
	e := paperEngine(t)
	got, err := e.TopK(dataset.PaperQuery(), measure.DistEd{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "g4" || got[0].Vector[0] != 2 {
		t.Errorf("top1=%v", got)
	}
}

func TestEngineOptions(t *testing.T) {
	e := paperEngine(t,
		WithBasis(measure.DistEd{}, measure.DistGu{}),
		WithWorkers(2),
		WithSkylineAlgorithm(skyline.BNL),
	)
	res, err := e.Skyline(dataset.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All[0].Vector) != 2 {
		t.Errorf("basis dimension %d, want 2", len(res.All[0].Vector))
	}
	// In the (DistEd, DistGu) plane: g4 (2,.67), g3 (3,.56), g5 (3,.44),
	// g7 (4,.40): g3 dominated by g5; g1 (4,.50), g2 (4,.56), g6 (4,.50)
	// dominated by g5/g7.
	want := map[string]bool{"g4": true, "g5": true, "g7": true}
	if len(res.Members) != len(want) {
		t.Fatalf("members=%v", res.Members)
	}
	for _, m := range res.Members {
		if !want[m.Name] {
			t.Errorf("unexpected member %s", m.Name)
		}
	}
}

func TestEngineBudget(t *testing.T) {
	e := NewEngine(WithBudget(2, 2))
	if err := e.Add(dataset.MoleculeDB(3, 10, 12, 9)...); err != nil {
		t.Fatal(err)
	}
	q := dataset.MoleculeDB(1, 10, 12, 10)[0]
	res, err := e.Skyline(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inexact == 0 {
		t.Error("tight budget should report inexact evaluations")
	}
}

func TestExplain(t *testing.T) {
	e := paperEngine(t)
	res, err := e.Skyline(dataset.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	for loser, winner := range dataset.DominatedBy {
		dom, ok := Explain(res, loser)
		if !ok {
			t.Errorf("no dominator for %s", loser)
			continue
		}
		// Any dominating skyline member is acceptable; the paper names one.
		if dom == "" {
			t.Errorf("empty dominator for %s (paper says %s)", loser, winner)
		}
	}
	if _, ok := Explain(res, "g1"); ok {
		t.Error("skyline member has a dominator")
	}
	if _, ok := Explain(res, "missing"); ok {
		t.Error("missing graph explained")
	}
}

func TestMemberString(t *testing.T) {
	m := Member{Name: "g1", Vector: []float64{1, 2}}
	if m.String() != "g1[1 2]" {
		t.Errorf("String=%q", m.String())
	}
}
