// Package core is the public face of skygraph: a graph similarity search
// engine answering queries with the *graph similarity skyline* of Abbaci,
// Hadjali, Liétard & Rocacher (GDM/ICDE 2011) instead of a single-measure
// ranking.
//
// Similarity between a database graph g and the query q is the compound
// vector GCS(g,q) = (DistEd, DistMcs, DistGu): edit distance, maximum-
// common-subgraph distance and graph-union (Jaccard-style) distance. The
// answer set is the Pareto-optimal subset of the database under this
// vector — graphs no other graph beats on every dimension — optionally
// refined to a maximally diverse k-subset.
//
// Basic usage:
//
//	eng := core.NewEngine()
//	_ = eng.Add(g1, g2, g3)
//	res, _ := eng.Skyline(q)
//	for _, m := range res.Members {
//	    fmt.Println(m.Name, m.Vector)
//	}
package core

import (
	"fmt"

	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
)

// Engine wraps a graph database with the measure basis and evaluation
// budget used to answer similarity skyline queries. Engines are safe for
// concurrent use.
type Engine struct {
	db   *gdb.DB
	opts gdb.QueryOptions
}

// Option customizes an Engine.
type Option func(*Engine)

// WithBasis replaces the default (DistEd, DistMcs, DistGu) measure basis.
func WithBasis(basis ...measure.Measure) Option {
	return func(e *Engine) { e.opts.Basis = basis }
}

// WithBudget caps the exact GED/MCS searches at the given node counts;
// capped evaluations degrade to guaranteed bounds and are counted in
// Result.Inexact. Zero means exact, unbounded computation.
func WithBudget(gedMaxNodes, mcsMaxNodes int64) Option {
	return func(e *Engine) {
		e.opts.Eval = measure.Options{GEDMaxNodes: gedMaxNodes, MCSMaxNodes: mcsMaxNodes}
	}
}

// WithWorkers sets the parallelism of vector evaluation (default:
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.opts.Workers = n }
}

// WithPrune enables bound-index filter-and-refine evaluation: skyline
// queries skip graphs the signature/bipartite intervals prove
// dominated, and top-k queries run best-first against the live k-th
// best score with threshold-fed exact engines. Answers are identical
// to unpruned evaluation; only the work changes.
func WithPrune() Option {
	return func(e *Engine) { e.opts.Prune = true }
}

// WithSkylineAlgorithm selects the skyline algorithm (default SFS).
func WithSkylineAlgorithm(a skyline.Algorithm) Option {
	return func(e *Engine) { e.opts.Algorithm = a }
}

// NewEngine returns an empty engine.
func NewEngine(options ...Option) *Engine {
	e := &Engine{db: gdb.New()}
	for _, o := range options {
		o(e)
	}
	return e
}

// WithOptions applies further options to an existing engine (e.g. one
// returned by Load) and returns it for chaining. Not safe to call
// concurrently with running queries.
func (e *Engine) WithOptions(options ...Option) *Engine {
	for _, o := range options {
		o(e)
	}
	return e
}

// Load returns an engine populated from an LGF file.
func Load(path string, options ...Option) (*Engine, error) {
	db, err := gdb.Load(path)
	if err != nil {
		return nil, err
	}
	e := NewEngine(options...)
	e.db = db
	return e, nil
}

// Save writes the engine's database to an LGF file.
func (e *Engine) Save(path string) error { return e.db.Save(path) }

// Add inserts graphs into the database. Each graph needs a unique non-empty
// name; the engine takes ownership (do not mutate afterwards).
func (e *Engine) Add(gs ...*graph.Graph) error { return e.db.InsertAll(gs) }

// Remove deletes the named graph, reporting whether it existed.
func (e *Engine) Remove(name string) bool { return e.db.Delete(name) }

// Get returns the named graph.
func (e *Engine) Get(name string) (*graph.Graph, bool) { return e.db.Get(name) }

// Len returns the number of stored graphs.
func (e *Engine) Len() int { return e.db.Len() }

// Names returns the stored graph names in insertion order.
func (e *Engine) Names() []string { return e.db.Names() }

// DB exposes the underlying database for advanced use (top-k and range
// queries, raw stats).
func (e *Engine) DB() *gdb.DB { return e.db }

// Member is one answer graph with its compound similarity vector.
type Member struct {
	// Name identifies the database graph.
	Name string
	// Vector is the GCS vector under the engine's basis (all dimensions:
	// smaller = more similar).
	Vector []float64
}

// Result is the answer to a Skyline query.
type Result struct {
	// Members is the graph similarity skyline GSS(D, q), in database
	// insertion order.
	Members []Member
	// All carries the vector of every database graph (the full comparison
	// table), in insertion order.
	All []Member
	// Evaluated and Inexact count vector computations and capped (bounded
	// rather than exact) pair evaluations.
	Evaluated, Inexact int
}

// Skyline answers a graph similarity query with the Pareto-optimal set of
// database graphs (Definition 12 / Eq. 4 of the paper).
func (e *Engine) Skyline(q *graph.Graph) (Result, error) {
	res, err := e.db.SkylineQuery(q, e.opts)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Members:   toMembers(res.Skyline),
		All:       toMembers(res.All),
		Evaluated: res.Stats.Evaluated,
		Inexact:   res.Stats.Inexact,
	}, nil
}

// DiverseResult extends Result with the Section VII refinement.
type DiverseResult struct {
	Result
	// Selected is the maximally diverse k-subset of the skyline.
	Selected []string
	// Exhaustive is true when the optimal subset search ran (false: greedy
	// fallback because the skyline was too large to enumerate).
	Exhaustive bool
}

// DiverseSkyline answers a query with the skyline refined to its most
// diverse k graphs: pairwise distances between skyline members are ranked
// per dimension and the k-subset minimizing the rank sum wins.
func (e *Engine) DiverseSkyline(q *graph.Graph, k int) (DiverseResult, error) {
	res, err := e.db.DiverseSkylineQuery(q, k, e.opts)
	if err != nil {
		return DiverseResult{}, err
	}
	return DiverseResult{
		Result: Result{
			Members:   toMembers(res.Skyline),
			All:       toMembers(res.All),
			Evaluated: res.Stats.Evaluated,
			Inexact:   res.Stats.Inexact,
		},
		Selected:   res.Selected,
		Exhaustive: res.Exhaustive,
	}, nil
}

// TopK is the single-measure baseline: the k nearest graphs under one
// measure (the retrieval model the skyline approach generalizes).
func (e *Engine) TopK(q *graph.Graph, m measure.Measure, k int) ([]Member, error) {
	res, err := e.db.TopKQuery(q, m, k, e.opts)
	if err != nil {
		return nil, err
	}
	out := make([]Member, len(res.Items))
	for i, it := range res.Items {
		out[i] = Member{Name: it.ID, Vector: []float64{it.Score}}
	}
	return out, nil
}

// Explain reports, for a non-skyline graph, one skyline member that
// dominates it; for skyline members it returns ok=false.
func Explain(res Result, name string) (dominator string, ok bool) {
	var target []float64
	for _, m := range res.All {
		if m.Name == name {
			target = m.Vector
			break
		}
	}
	if target == nil {
		return "", false
	}
	for _, m := range res.Members {
		if m.Name != name && skyline.Dominates(m.Vector, target) {
			return m.Name, true
		}
	}
	return "", false
}

func toMembers(pts []skyline.Point) []Member {
	out := make([]Member, len(pts))
	for i, p := range pts {
		out[i] = Member{Name: p.ID, Vector: p.Vec}
	}
	return out
}

// Version identifies the library release.
const Version = "1.0.0"

// String renders a member compactly.
func (m Member) String() string { return fmt.Sprintf("%s%v", m.Name, m.Vector) }
