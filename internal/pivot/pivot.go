// Package pivot implements a metric pivot index over a graph
// collection, in the LAESA / vantage-point tradition of the GED
// similarity-search literature. Uniform-cost graph edit distance is a
// metric, so for any pivot graph p the triangle inequality brackets the
// distance of a query q to every stored graph g:
//
//	|d(q,p) − d(p,g)|  ≤  d(q,g)  ≤  d(q,p) + d(p,g)
//
// The index pays for the d(p,g) column once, in the background at
// insert time, and a query pays for its P pivot distances once — after
// that every candidate gets a GED interval for O(P) arithmetic, usually
// far tighter than the label-histogram bound on structurally similar
// graphs. Because the A* engine can cap out, both sides are stored as
// certified intervals (proven lower bound, reported upper bound), and
// the triangle algebra is done on intervals, so the derived bounds are
// admissible no matter how much of the index has been computed exactly.
//
// Pivots are selected by a deterministic max-min farthest-first sweep
// over the signature lower bounds (measure.Signature.HistLB): the first
// stored graph seeds the sweep, then each further pivot is the graph
// maximizing its minimum bound-distance to the pivots already chosen,
// ties broken by insertion order. The index re-selects (and recomputes
// its columns, epoch-guarded) whenever the collection doubles past the
// last selection or a pivot is deleted, so long-lived databases keep
// representative pivots without any foreground work.
package pivot

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"skygraph/internal/ged"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
)

// Defaults for Config zero values.
const (
	DefaultPivots        = 4
	DefaultMaxNodes      = 20000
	DefaultQueryMaxNodes = 3000
)

// Config tunes an Index.
type Config struct {
	// Pivots is the number of pivot graphs P (0 = DefaultPivots).
	Pivots int
	// MaxNodes caps the insert-time A* computing each d(p, g) column
	// entry (0 = DefaultMaxNodes, negative = unbounded exact). Capped
	// entries degrade to certified intervals instead of points.
	MaxNodes int64
	// QueryMaxNodes caps the per-query d(q, p) computations, which run
	// on the query hot path (0 = DefaultQueryMaxNodes, negative =
	// unbounded exact).
	QueryMaxNodes int64
	// Workers bounds the background distance workers (0 = GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Pivots <= 0 {
		c.Pivots = DefaultPivots
	}
	switch {
	case c.MaxNodes == 0:
		c.MaxNodes = DefaultMaxNodes
	case c.MaxNodes < 0:
		c.MaxNodes = 0 // ged.Options semantics: 0 = unlimited
	}
	switch {
	case c.QueryMaxNodes == 0:
		c.QueryMaxNodes = DefaultQueryMaxNodes
	case c.QueryMaxNodes < 0:
		c.QueryMaxNodes = 0
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Entry is a certified interval around one true pivot distance:
// Lo <= d <= Hi, with Lo == Hi when the search finished exactly.
type Entry struct {
	Lo, Hi float64
}

// member is one indexed graph.
type member struct {
	g   *graph.Graph
	sig *measure.Signature
}

// job is one background distance-column computation.
type job struct {
	name  string
	epoch uint64
}

// Index maintains the pivot set and the per-graph distance columns for
// one graph collection. All methods are safe for concurrent use; the
// expensive distance computations run on background workers that spawn
// while work is queued and exit when it drains (no persistent
// goroutines, nothing to close).
type Index struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	order   []string // live member names, insertion order
	members map[string]*member
	pivots  []*member
	pnames  []string
	// entries maps a member name to its pivot-distance column for the
	// current epoch. Columns are immutable once published.
	entries map[string][]Entry
	// snap is the query-facing copy of entries, rebuilt lazily when
	// snapDirty (a column published, a member removed, an epoch
	// turned). Once the index is fully built — the steady state —
	// every StartQuery shares one immutable map instead of paying an
	// O(members) copy per query.
	snap       map[string][]Entry
	snapDirty  bool
	epoch      uint64
	selectedAt int // member count at the last pivot selection
	queue      []job
	running    int

	// Monotone work counters (atomics: column work is recorded outside
	// the mutex), exposed via Counters for metrics exporters.
	rebuilds     atomic.Int64
	rebuildNanos atomic.Int64
	columns      atomic.Int64
	columnNanos  atomic.Int64
}

// Counters is a monotone snapshot of the index's background work.
type Counters struct {
	// Rebuilds counts pivot re-selections; RebuildNanos is their total
	// inline selection time.
	Rebuilds     int64
	RebuildNanos int64
	// Columns counts distance columns computed, including recomputations
	// that a newer epoch later discarded; ColumnNanos is their total
	// engine time.
	Columns     int64
	ColumnNanos int64
}

// Counters returns the index's cumulative work counters.
func (ix *Index) Counters() Counters {
	return Counters{
		Rebuilds:     ix.rebuilds.Load(),
		RebuildNanos: ix.rebuildNanos.Load(),
		Columns:      ix.columns.Load(),
		ColumnNanos:  ix.columnNanos.Load(),
	}
}

// New returns an empty index.
func New(cfg Config) *Index {
	ix := &Index{
		cfg:     cfg.withDefaults(),
		members: make(map[string]*member),
		entries: make(map[string][]Entry),
	}
	ix.cond = sync.NewCond(&ix.mu)
	return ix
}

// Config returns the resolved configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Add registers a stored graph (callers must not mutate g afterwards,
// matching the database's contract) and schedules its distance column
// in the background. Adding the graph that doubles the collection past
// the last pivot selection triggers a deterministic re-selection.
func (ix *Index) Add(name string, g *graph.Graph, sig *measure.Signature) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.members[name]; dup {
		return
	}
	ix.members[name] = &member{g: g, sig: sig}
	ix.order = append(ix.order, name)
	n := len(ix.order)
	switch {
	case ix.selectedAt == 0 && n >= ix.cfg.Pivots:
		ix.rebuildLocked()
	case ix.selectedAt > 0 && n >= 2*ix.selectedAt:
		ix.rebuildLocked()
	case ix.selectedAt > 0:
		ix.enqueueLocked(job{name: name, epoch: ix.epoch})
	}
}

// Remove forgets a graph. Removing a pivot triggers re-selection over
// the remaining members.
func (ix *Index) Remove(name string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.members[name]; !ok {
		return
	}
	delete(ix.members, name)
	if _, had := ix.entries[name]; had {
		delete(ix.entries, name)
		ix.snapDirty = true
	}
	for i, n := range ix.order {
		if n == name {
			ix.order = append(ix.order[:i], ix.order[i+1:]...)
			break
		}
	}
	for _, pn := range ix.pnames {
		if pn == name {
			ix.rebuildLocked()
			return
		}
	}
}

// rebuildLocked re-selects the pivot set from the current members and
// schedules every distance column for recomputation under a new epoch
// (stale queued or in-flight jobs publish nothing). Selection itself is
// cheap — O(members × pivots) histogram bounds — so it runs inline.
func (ix *Index) rebuildLocked() {
	start := time.Now()
	defer func() {
		ix.rebuilds.Add(1)
		ix.rebuildNanos.Add(int64(time.Since(start)))
	}()
	ix.epoch++
	ix.entries = make(map[string][]Entry)
	ix.snapDirty = true
	ix.pivots, ix.pnames = nil, nil
	ix.selectedAt = len(ix.order)
	if len(ix.order) == 0 {
		return
	}
	p := ix.cfg.Pivots
	if p > len(ix.order) {
		p = len(ix.order)
	}
	// Farthest-first: seed with the oldest member, then repeatedly take
	// the member maximizing its min HistLB to the chosen set (ties to
	// the earliest inserted, so the sweep is deterministic).
	minDist := make([]float64, len(ix.order))
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	chosen := make([]bool, len(ix.order))
	pick := 0
	for len(ix.pivots) < p {
		pm := ix.members[ix.order[pick]]
		chosen[pick] = true
		ix.pivots = append(ix.pivots, pm)
		ix.pnames = append(ix.pnames, ix.order[pick])
		best, bestAt := -1.0, -1
		for i, name := range ix.order {
			if chosen[i] {
				continue
			}
			if d := ix.members[name].sig.HistLB(pm.sig); d < minDist[i] {
				minDist[i] = d
			}
			if minDist[i] > best {
				best, bestAt = minDist[i], i
			}
		}
		if bestAt < 0 {
			break
		}
		pick = bestAt
	}
	jobs := make([]job, 0, len(ix.order))
	for _, name := range ix.order {
		jobs = append(jobs, job{name: name, epoch: ix.epoch})
	}
	ix.enqueueLocked(jobs...)
}

// enqueueLocked appends work and tops up the drainer pool.
func (ix *Index) enqueueLocked(jobs ...job) {
	ix.queue = append(ix.queue, jobs...)
	for ix.running < ix.cfg.Workers && ix.running < len(ix.queue) {
		ix.running++
		go ix.drain()
	}
}

// drain processes queued columns until the queue empties, then exits.
func (ix *Index) drain() {
	for {
		ix.mu.Lock()
		if len(ix.queue) == 0 {
			ix.running--
			if ix.running == 0 {
				ix.cond.Broadcast()
			}
			ix.mu.Unlock()
			return
		}
		j := ix.queue[0]
		ix.queue = ix.queue[1:]
		if j.epoch != ix.epoch {
			ix.mu.Unlock()
			continue
		}
		m, live := ix.members[j.name]
		pivots := ix.pivots
		ix.mu.Unlock()
		if !live {
			continue
		}
		colStart := time.Now()
		col := make([]Entry, len(pivots))
		for i, p := range pivots {
			col[i] = distance(m.g, m.sig, p, ix.cfg.MaxNodes)
		}
		ix.columns.Add(1)
		ix.columnNanos.Add(int64(time.Since(colStart)))
		ix.mu.Lock()
		if j.epoch == ix.epoch {
			if _, stillLive := ix.members[j.name]; stillLive {
				ix.entries[j.name] = col
				ix.snapDirty = true
			}
		}
		ix.mu.Unlock()
	}
}

// distance computes the certified interval around the true GED between
// g and pivot p: a point when A* finishes, otherwise the max of the
// search's frontier floor and the histogram bound below, the bipartite
// mapping cost above.
func distance(g *graph.Graph, sig *measure.Signature, p *member, maxNodes int64) Entry {
	res := ged.Exact(g, p.g, ged.Options{MaxNodes: maxNodes})
	if res.Exact {
		return Entry{Lo: res.Distance, Hi: res.Distance}
	}
	lo := sig.HistLB(p.sig)
	if res.LowerBound > lo {
		lo = res.LowerBound
	}
	return Entry{Lo: lo, Hi: res.Distance}
}

// Wait blocks until every scheduled distance column has been computed
// (benchmarks and tests; serving layers never need it — queries simply
// skip graphs whose column is not ready yet).
func (ix *Index) Wait() {
	ix.mu.Lock()
	for len(ix.queue) > 0 || ix.running > 0 {
		ix.cond.Wait()
	}
	ix.mu.Unlock()
}

// Ready reports the index occupancy: the current pivot count, how many
// member columns have been computed for the current epoch, and how many
// are still pending (members without a published column).
func (ix *Index) Ready() (pivots, entries, pending int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.pivots), len(ix.entries), len(ix.members) - len(ix.entries)
}

// Pivots returns the current pivot names, in selection order.
func (ix *Index) Pivots() []string {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return append([]string(nil), ix.pnames...)
}

// QueryBounds carries one query's pivot distances plus a consistent
// snapshot of the index columns: GED returns the triangle-inequality
// interval for a candidate in O(P), with no locking and no engine work.
type QueryBounds struct {
	qd      []Entry
	entries map[string][]Entry
	epoch   uint64
	// Dists is the number of query-to-pivot engine runs performed.
	Dists int
}

// snapLocked returns the query-facing copy of the columns, rebuilding
// it if stale. Callers must hold ix.mu.
func (ix *Index) snapLocked() map[string][]Entry {
	if ix.snap == nil || ix.snapDirty {
		ix.snap = make(map[string][]Entry, len(ix.entries))
		for name, col := range ix.entries {
			ix.snap[name] = col
		}
		ix.snapDirty = false
	}
	return ix.snap
}

// StartQuery computes the query's P pivot distances (the only engine
// work the pivot tier adds to a query) and snapshots the columns. It
// returns nil when the index has no pivots selected yet, so callers can
// gate the whole tier on one check.
func (ix *Index) StartQuery(q *graph.Graph, qsig *measure.Signature) *QueryBounds {
	ix.mu.Lock()
	pivots := ix.pivots
	epoch := ix.epoch
	entries := ix.snapLocked()
	ix.mu.Unlock()
	if len(pivots) == 0 || len(entries) == 0 {
		return nil
	}
	qb := &QueryBounds{qd: make([]Entry, len(pivots)), entries: entries, epoch: epoch, Dists: len(pivots)}
	for i, p := range pivots {
		qb.qd[i] = distance(q, qsig, p, ix.cfg.QueryMaxNodes)
	}
	return qb
}

// Epoch returns the selection epoch the bounds were captured at.
// Consumers holding per-epoch derived data (the vector tier's cell
// summaries) compare epochs before trusting any cross-referenced
// per-pivot geometry.
func (qb *QueryBounds) Epoch() uint64 { return qb.epoch }

// NumPivots returns the number of query-to-pivot intervals held.
func (qb *QueryBounds) NumPivots() int { return len(qb.qd) }

// QueryDistance returns the i-th query-to-pivot certified interval, in
// pivot selection order.
func (qb *QueryBounds) QueryDistance(i int) Entry { return qb.qd[i] }

// Midpoints returns the midpoint of every query-to-pivot interval, in
// pivot selection order — the query's coordinates in the pivot-distance
// part of the vector tier's embedding space.
func (qb *QueryBounds) Midpoints() []float64 {
	out := make([]float64, len(qb.qd))
	for i, e := range qb.qd {
		out[i] = (e.Lo + e.Hi) / 2
	}
	return out
}

// ColumnsSnapshot returns the current selection epoch, the pivot names
// in selection order, and the query-facing snapshot of the published
// distance columns. The snapshot map is shared and immutable — callers
// must not mutate it. The vector tier reads it to place members at
// their pivot-distance midpoints and to summarize per-cell pivot
// ranges; the epoch tag lets it reject cross-epoch combinations.
func (ix *Index) ColumnsSnapshot() (epoch uint64, pnames []string, cols map[string][]Entry) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.epoch, append([]string(nil), ix.pnames...), ix.snapLocked()
}

// GED returns the intersected triangle-inequality interval
// [lo, hi] around the true GED(q, g) for the named candidate. ok is
// false when the candidate's column is not in the snapshot (not yet
// computed, or inserted after the snapshot); the caller then keeps its
// signature-only bounds.
func (qb *QueryBounds) GED(name string) (lo, hi float64, ok bool) {
	col, ok := qb.entries[name]
	if !ok || len(col) != len(qb.qd) {
		return 0, 0, false
	}
	lo, hi = 0, math.Inf(1)
	for i, pg := range col {
		qp := qb.qd[i]
		if l := qp.Lo - pg.Hi; l > lo {
			lo = l
		}
		if l := pg.Lo - qp.Hi; l > lo {
			lo = l
		}
		if h := qp.Hi + pg.Hi; h < hi {
			hi = h
		}
	}
	return lo, hi, true
}
