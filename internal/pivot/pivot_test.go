package pivot

import (
	"fmt"
	"math/rand"
	"testing"

	"skygraph/internal/ged"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
)

func molecules(tb testing.TB, seed int64, n int) []*graph.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, n)
	for i := range out {
		g := graph.Molecule(5+i%4, rng)
		g.SetName(fmt.Sprintf("g%03d", i))
		out[i] = g
	}
	return out
}

func buildIndex(tb testing.TB, cfg Config, gs []*graph.Graph) *Index {
	tb.Helper()
	ix := New(cfg)
	for _, g := range gs {
		ix.Add(g.Name(), g, measure.NewSignature(g))
	}
	ix.Wait()
	return ix
}

// TestSelectionDeterministic: the same insert sequence yields the same
// pivots and the same columns.
func TestSelectionDeterministic(t *testing.T) {
	gs := molecules(t, 7, 12)
	a := buildIndex(t, Config{Pivots: 3}, gs)
	b := buildIndex(t, Config{Pivots: 3}, gs)
	pa, pb := a.Pivots(), b.Pivots()
	if len(pa) != 3 || len(pb) != 3 {
		t.Fatalf("pivot counts %d / %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("pivot %d differs: %s vs %s", i, pa[i], pb[i])
		}
	}
}

// TestBoundsContainTrueGED: for every (query, graph) pair the triangle
// interval must contain the true edit distance.
func TestBoundsContainTrueGED(t *testing.T) {
	gs := molecules(t, 11, 10)
	ix := buildIndex(t, Config{Pivots: 3, MaxNodes: -1, QueryMaxNodes: -1}, gs)
	queries := molecules(t, 99, 3)
	for _, q := range queries {
		qb := ix.StartQuery(q, measure.NewSignature(q))
		if qb == nil {
			t.Fatal("index not ready after Wait")
		}
		for _, g := range gs {
			lo, hi, ok := qb.GED(g.Name())
			if !ok {
				t.Fatalf("no column for %s", g.Name())
			}
			d := ged.Exact(q, g, ged.Options{}).Distance
			if d < lo || d > hi {
				t.Fatalf("true GED(%s,%s)=%v outside pivot interval [%v, %v]", q.Name(), g.Name(), d, lo, hi)
			}
		}
	}
}

// TestCappedBoundsStillAdmissible: with tiny engine budgets the index
// stores wide intervals — they must still contain the true distance.
func TestCappedBoundsStillAdmissible(t *testing.T) {
	gs := molecules(t, 13, 10)
	ix := buildIndex(t, Config{Pivots: 3, MaxNodes: 5, QueryMaxNodes: 5}, gs)
	q := molecules(t, 101, 1)[0]
	qb := ix.StartQuery(q, measure.NewSignature(q))
	if qb == nil {
		t.Fatal("index not ready")
	}
	for _, g := range gs {
		lo, hi, ok := qb.GED(g.Name())
		if !ok {
			continue
		}
		d := ged.Exact(q, g, ged.Options{}).Distance
		if d < lo || d > hi {
			t.Fatalf("true GED(q,%s)=%v outside capped pivot interval [%v, %v]", g.Name(), d, lo, hi)
		}
	}
}

// TestRemovePivotRebuilds: deleting a pivot re-selects and recomputes.
func TestRemovePivotRebuilds(t *testing.T) {
	gs := molecules(t, 17, 8)
	ix := buildIndex(t, Config{Pivots: 2}, gs)
	victim := ix.Pivots()[0]
	ix.Remove(victim)
	ix.Wait()
	for _, p := range ix.Pivots() {
		if p == victim {
			t.Fatalf("removed pivot %s still selected", victim)
		}
	}
	pivots, entries, pending := ix.Ready()
	if pivots != 2 || entries != len(gs)-1 || pending != 0 {
		t.Fatalf("after rebuild: pivots=%d entries=%d pending=%d", pivots, entries, pending)
	}
	if _, _, ok := (&QueryBounds{}).GED("x"); ok {
		t.Fatal("empty QueryBounds claimed a column")
	}
}

// TestIncrementalAddAfterSelection: graphs inserted after selection get
// columns without a rebuild.
func TestIncrementalAddAfterSelection(t *testing.T) {
	gs := molecules(t, 19, 5)
	ix := buildIndex(t, Config{Pivots: 4}, gs)
	before := ix.Pivots()
	extra := molecules(t, 23, 7)[5:] // distinct names needed
	for i, g := range extra {
		g.SetName(fmt.Sprintf("x%03d", i))
		ix.Add(g.Name(), g, measure.NewSignature(g))
	}
	ix.Wait()
	after := ix.Pivots()
	if len(before) != len(after) {
		t.Fatalf("pivot count changed: %d -> %d", len(before), len(after))
	}
	_, entries, pending := ix.Ready()
	if entries != len(gs)+len(extra) || pending != 0 {
		t.Fatalf("entries=%d pending=%d", entries, pending)
	}
}
