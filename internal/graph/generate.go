package graph

import (
	"fmt"
	"math/rand"
)

// This file provides deterministic, seedable synthetic graph generators used
// by the example applications and by the experiments that the paper promises
// but does not report (EXPERIMENTS.md, E8–E12). The molecule-like generator
// mimics the label distributions of chemical-compound benchmarks (AIDS-style
// datasets) common in the graph-similarity literature the paper cites.

// Path returns the path graph v0-v1-...-v_{n-1} with uniform labels.
func Path(n int, vlabel, elabel string) *Graph {
	g := New(fmt.Sprintf("path%d", n))
	g.AddVertices(n, vlabel)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, elabel)
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 vertices with uniform labels.
func Cycle(n int, vlabel, elabel string) *Graph {
	if n < 3 {
		panic("graph.Cycle: need n >= 3")
	}
	g := Path(n, vlabel, elabel)
	g.SetName(fmt.Sprintf("cycle%d", n))
	g.MustAddEdge(n-1, 0, elabel)
	return g
}

// Complete returns the complete graph K_n with uniform labels.
func Complete(n int, vlabel, elabel string) *Graph {
	g := New(fmt.Sprintf("k%d", n))
	g.AddVertices(n, vlabel)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j, elabel)
		}
	}
	return g
}

// Star returns the star graph with one hub and n-1 leaves.
func Star(n int, vlabel, elabel string) *Graph {
	if n < 1 {
		panic("graph.Star: need n >= 1")
	}
	g := New(fmt.Sprintf("star%d", n))
	g.AddVertices(n, vlabel)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i, elabel)
	}
	return g
}

// Grid returns the rows x cols grid graph with uniform labels.
func Grid(rows, cols int, vlabel, elabel string) *Graph {
	g := New(fmt.Sprintf("grid%dx%d", rows, cols))
	g.AddVertices(rows*cols, vlabel)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), elabel)
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), elabel)
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n vertices built by
// attaching each new vertex to a uniformly chosen earlier vertex.
func RandomTree(n int, vlabels, elabels []string, rng *rand.Rand) *Graph {
	g := New(fmt.Sprintf("tree%d", n))
	for i := 0; i < n; i++ {
		g.AddVertex(pick(vlabels, rng))
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(rng.Intn(i), i, pick(elabels, rng))
	}
	return g
}

// ErdosRenyi returns a G(n, p) random graph with labels drawn uniformly
// from the provided alphabets.
func ErdosRenyi(n int, p float64, vlabels, elabels []string, rng *rand.Rand) *Graph {
	g := New(fmt.Sprintf("er%d", n))
	for i := 0; i < n; i++ {
		g.AddVertex(pick(vlabels, rng))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.MustAddEdge(i, j, pick(elabels, rng))
			}
		}
	}
	return g
}

// ConnectedErdosRenyi is ErdosRenyi followed by joining the components with
// random tree edges so the result is connected.
func ConnectedErdosRenyi(n int, p float64, vlabels, elabels []string, rng *rand.Rand) *Graph {
	g := ErdosRenyi(n, p, vlabels, elabels, rng)
	comps := g.Components()
	for i := 1; i < len(comps); i++ {
		u := comps[i-1][rng.Intn(len(comps[i-1]))]
		v := comps[i][rng.Intn(len(comps[i]))]
		g.MustAddEdge(u, v, pick(elabels, rng))
		comps[i] = append(comps[i], comps[i-1]...)
	}
	return g
}

// MoleculeAlphabet holds the default label alphabets of the molecule-like
// generator: a handful of frequent "atoms" and two "bond" types, echoing
// the label statistics of public chemical graph benchmarks.
var MoleculeAlphabet = struct {
	Atoms []string
	Bonds []string
}{
	Atoms: []string{"C", "C", "C", "C", "N", "O", "S", "P"},
	Bonds: []string{"-", "-", "-", "="},
}

// Molecule returns a connected, degree-bounded (max degree 4) random graph
// with atom/bond style labels on n vertices and roughly 1.15*n edges.
func Molecule(n int, rng *rand.Rand) *Graph {
	g := New(fmt.Sprintf("mol%d", n))
	for i := 0; i < n; i++ {
		g.AddVertex(pick(MoleculeAlphabet.Atoms, rng))
	}
	// Spanning tree first (connectivity), respecting the degree bound.
	for i := 1; i < n; i++ {
		for {
			j := rng.Intn(i)
			if g.Degree(j) < 4 {
				g.MustAddEdge(j, i, pick(MoleculeAlphabet.Bonds, rng))
				break
			}
		}
	}
	// Extra ring-closing edges: about 15% of n, max degree 4.
	extra := n * 15 / 100
	for tries := 0; extra > 0 && tries < 50*n; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) || g.Degree(u) >= 4 || g.Degree(v) >= 4 {
			continue
		}
		g.MustAddEdge(u, v, pick(MoleculeAlphabet.Bonds, rng))
		extra--
	}
	return g
}

// Mutate returns a clone of g perturbed by nops random edit operations drawn
// from {edge insert, edge delete, vertex relabel, edge relabel}. Mutations
// that would disconnect the graph or create duplicates are retried. This is
// the standard way to build query workloads with a known amount of noise.
func Mutate(g *Graph, nops int, vlabels, elabels []string, rng *rand.Rand) *Graph {
	out := g.Clone()
	out.SetName(g.Name() + "~")
	edges := out.Edges()
	for done := 0; done < nops; {
		switch rng.Intn(4) {
		case 0: // insert edge
			if out.Order() < 2 {
				continue
			}
			u, v := rng.Intn(out.Order()), rng.Intn(out.Order())
			if u == v || out.HasEdge(u, v) {
				continue
			}
			out.MustAddEdge(u, v, pick(elabels, rng))
			edges = append(edges, Edge{U: min(u, v), V: max(u, v)})
			done++
		case 1: // delete edge (keep connectivity)
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			if !out.HasEdge(e.U, e.V) {
				continue
			}
			lbl, _ := out.EdgeLabel(e.U, e.V)
			out.RemoveEdge(e.U, e.V)
			if !out.IsConnected() {
				out.MustAddEdge(e.U, e.V, lbl)
				continue
			}
			done++
		case 2: // relabel vertex
			if out.Order() == 0 {
				continue
			}
			v := rng.Intn(out.Order())
			l := pick(vlabels, rng)
			if out.VertexLabel(v) == l {
				continue
			}
			out.RelabelVertex(v, l)
			done++
		case 3: // relabel edge
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			if !out.HasEdge(e.U, e.V) {
				continue
			}
			cur, _ := out.EdgeLabel(e.U, e.V)
			l := pick(elabels, rng)
			if cur == l {
				continue
			}
			out.RelabelEdge(e.U, e.V, l)
			done++
		}
	}
	return out
}

// Rewire returns a clone of g perturbed by nops edge relocations: each
// operation removes one edge and re-adds an edge with the SAME label
// between a different vertex pair (connectivity preserved, max degree
// 4, retried like Mutate). Unlike Mutate, a rewire changes no label
// histogram and no size — the perturbed graph is invisible to
// label-multiset filters (its histogram edit-distance bound to g is 0)
// while its true edit distance grows by up to 2 per operation. Rewired
// families are therefore the adversarial workload for signature-based
// pruning and the motivating one for metric (pivot) indexing.
func Rewire(g *Graph, nops int, rng *rand.Rand) *Graph {
	out := g.Clone()
	out.SetName(g.Name() + "~")
	if out.Size() == 0 || out.Order() < 3 {
		return out
	}
	for done, tries := 0, 0; done < nops && tries < 200*nops; tries++ {
		edges := out.Edges()
		e := edges[rng.Intn(len(edges))]
		lbl := e.Label
		out.RemoveEdge(e.U, e.V)
		if !out.IsConnected() {
			out.MustAddEdge(e.U, e.V, lbl)
			continue
		}
		u, v := rng.Intn(out.Order()), rng.Intn(out.Order())
		if u == v || out.HasEdge(u, v) || out.Degree(u) >= 4 || out.Degree(v) >= 4 || (u == e.U && v == e.V) || (u == e.V && v == e.U) {
			out.MustAddEdge(e.U, e.V, lbl)
			continue
		}
		out.MustAddEdge(u, v, lbl)
		done++
	}
	return out
}

func pick(labels []string, rng *rand.Rand) string {
	if len(labels) == 0 {
		return ""
	}
	return labels[rng.Intn(len(labels))]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BarabasiAlbert grows a preferential-attachment graph: starting from a
// small clique of m+1 vertices, each new vertex attaches to m distinct
// existing vertices chosen proportionally to their degree. The result is
// connected with a heavy-tailed degree distribution.
func BarabasiAlbert(n, m int, vlabels, elabels []string, rng *rand.Rand) *Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("graph.BarabasiAlbert: need n >= m+1 >= 2, got n=%d m=%d", n, m))
	}
	g := New(fmt.Sprintf("ba%d_%d", n, m))
	for i := 0; i < n; i++ {
		g.AddVertex(pick(vlabels, rng))
	}
	// Seed clique.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.MustAddEdge(i, j, pick(elabels, rng))
		}
	}
	// Repeated-endpoint list: each edge contributes both endpoints, so
	// sampling uniformly from it is degree-proportional sampling.
	var ends []int
	for _, e := range g.Edges() {
		ends = append(ends, e.U, e.V)
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			t := ends[rng.Intn(len(ends))]
			if t != v && !chosen[t] {
				chosen[t] = true
			}
		}
		for t := range chosen {
			g.MustAddEdge(v, t, pick(elabels, rng))
			ends = append(ends, v, t)
		}
	}
	return g
}
