package graph

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements 1-dimensional Weisfeiler–Leman (color refinement):
// vertices start colored by their label and are iteratively recolored by
// the multiset of (edge label, neighbor color) pairs until stable. The
// stable color histogram is an isomorphism invariant that is strictly
// stronger than label/degree histograms and almost always separates
// non-isomorphic graphs in practice, at O((V+E)·iters) cost — the standard
// cheap pre-filter before running an exact matcher.

// WLColors returns the stable WL colors (arbitrary but deterministic
// integers) per vertex, and the number of refinement rounds executed.
func WLColors(g *Graph) ([]int, int) {
	n := g.Order()
	colors := make([]int, n)
	names := map[string]int{}
	for v := 0; v < n; v++ {
		key := "l:" + g.VertexLabel(v)
		id, ok := names[key]
		if !ok {
			id = len(names)
			names[key] = id
		}
		colors[v] = id
	}
	rounds := 0
	for {
		next := make([]int, n)
		nextNames := map[string]int{}
		for v := 0; v < n; v++ {
			sig := make([]string, 0, g.Degree(v))
			for w, el := range g.NeighborSet(v) {
				sig = append(sig, fmt.Sprintf("%s~%d", el, colors[w]))
			}
			sort.Strings(sig)
			key := fmt.Sprintf("%d(%s)", colors[v], strings.Join(sig, ","))
			id, ok := nextNames[key]
			if !ok {
				id = len(nextNames)
				nextNames[key] = id
			}
			next[v] = id
		}
		rounds++
		if samePartition(colors, next) {
			return colors, rounds
		}
		colors = next
		if rounds > n+1 {
			// Refinement stabilizes within |V| rounds; this is a safety net.
			return colors, rounds
		}
	}
}

// samePartition reports whether two colorings induce the same partition of
// the vertices.
func samePartition(a, b []int) bool {
	fwd := map[int]int{}
	bwd := map[int]int{}
	for i := range a {
		if m, ok := fwd[a[i]]; ok {
			if m != b[i] {
				return false
			}
		} else {
			fwd[a[i]] = b[i]
		}
		if m, ok := bwd[b[i]]; ok {
			if m != a[i] {
				return false
			}
		} else {
			bwd[b[i]] = a[i]
		}
	}
	return true
}

// WLSignature returns a canonical string for the stable WL color
// histogram. Isomorphic graphs always share a signature; unequal
// signatures prove non-isomorphism (the converse does not hold: rare
// WL-equivalent non-isomorphic pairs exist, e.g. C6 vs two triangles).
func WLSignature(g *Graph) string {
	colors, _ := WLColors(g)
	// Rebuild a canonical naming: color class -> (class signature) where
	// the signature is derived from one more refinement-style expansion,
	// then histogram.
	n := g.Order()
	classSig := make([]string, n)
	for v := 0; v < n; v++ {
		sig := make([]string, 0, g.Degree(v))
		for w, el := range g.NeighborSet(v) {
			sig = append(sig, fmt.Sprintf("%s~%s", el, classLabel(g, colors, w)))
		}
		sort.Strings(sig)
		classSig[v] = classLabel(g, colors, v) + "(" + strings.Join(sig, ",") + ")"
	}
	sort.Strings(classSig)
	return strings.Join(classSig, "|")
}

// classLabel names a color class by invariant data only (original label +
// class size), never by the arbitrary integer id.
func classLabel(g *Graph, colors []int, v int) string {
	size := 0
	for _, c := range colors {
		if c == colors[v] {
			size++
		}
	}
	return fmt.Sprintf("%s#%d", g.VertexLabel(v), size)
}

// WLEquivalent reports whether the graphs are indistinguishable by color
// refinement — a necessary condition for isomorphism.
func WLEquivalent(g, h *Graph) bool {
	if g.Order() != h.Order() || g.Size() != h.Size() {
		return false
	}
	return WLSignature(g) == WLSignature(h)
}
