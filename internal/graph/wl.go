package graph

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements 1-dimensional Weisfeiler–Leman (color refinement):
// vertices start colored by their label and are iteratively recolored by
// the multiset of (edge label, neighbor color) pairs until stable. The
// stable color histogram is an isomorphism invariant that is strictly
// stronger than label/degree histograms and almost always separates
// non-isomorphic graphs in practice, at O((V+E)·iters) cost — the standard
// cheap pre-filter before running an exact matcher.
//
// Colors are 64-bit FNV hashes computed canonically from structure alone
// (no per-graph numbering), so the same rooted neighborhood produces the
// same hash in every graph. That makes the colors directly usable as
// cross-graph features (WLHistogram) in addition to the per-graph
// partition views (WLColors, WLSignature).

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvString folds a string into a running FNV-1a hash, with a length
// prefix so concatenated fields cannot collide by re-splitting.
func fnvString(h uint64, s string) uint64 {
	h = fnvUint64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// fnvUint64 folds eight bytes into a running FNV-1a hash.
func fnvUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// wlRefine runs color refinement on hashed colors, reusing scratch
// buffers across rounds (no strings, no per-round maps except the
// distinct-color counter). maxRounds <= 0 refines to stability; the
// |V|+1 safety bound always applies. Returns the final colors and the
// number of rounds executed.
//
// Stopping criterion: refinement only ever splits color classes (the
// next color is a function of the current one), so the partition is
// stable exactly when the number of distinct colors stops growing.
func wlRefine(g *Graph, maxRounds int) ([]uint64, int) {
	n := g.Order()
	cur := make([]uint64, n)
	labelSeed := fnvString(fnvOffset64, "wl/v")
	for v := 0; v < n; v++ {
		cur[v] = fnvString(labelSeed, g.VertexLabel(v))
	}
	if n == 0 {
		return cur, 0
	}
	next := make([]uint64, n)
	sig := make([]uint64, 0, 16) // per-vertex neighbor contributions, reused
	distinct := make(map[uint64]struct{}, n)
	countDistinct := func(cs []uint64) int {
		clear(distinct)
		for _, c := range cs {
			distinct[c] = struct{}{}
		}
		return len(distinct)
	}
	classes := countDistinct(cur)
	edgeSeed := fnvString(fnvOffset64, "wl/e")
	rounds := 0
	for rounds < n+1 && (maxRounds <= 0 || rounds < maxRounds) {
		for v := 0; v < n; v++ {
			sig = sig[:0]
			for w, el := range g.NeighborSet(v) {
				sig = append(sig, fnvUint64(fnvString(edgeSeed, el), cur[w]))
			}
			sort.Slice(sig, func(i, j int) bool { return sig[i] < sig[j] })
			h := fnvUint64(fnvString(fnvOffset64, "wl/c"), cur[v])
			for _, s := range sig {
				h = fnvUint64(h, s)
			}
			next[v] = h
		}
		rounds++
		cur, next = next, cur
		nc := countDistinct(cur)
		if nc == classes {
			break
		}
		classes = nc
	}
	return cur, rounds
}

// WLColors returns the stable WL colors (arbitrary but deterministic
// integers, dense in first-vertex order) per vertex, and the number of
// refinement rounds executed.
func WLColors(g *Graph) ([]int, int) {
	return WLColorsCapped(g, 0)
}

// WLColorsCapped is WLColors with an iteration cap: maxRounds <= 0
// refines to stability, otherwise at most maxRounds refinement rounds
// run (a capped run is still a valid — merely coarser — invariant
// partition).
func WLColorsCapped(g *Graph, maxRounds int) ([]int, int) {
	hashes, rounds := wlRefine(g, maxRounds)
	colors := make([]int, len(hashes))
	ids := make(map[uint64]int, len(hashes))
	for v, h := range hashes {
		id, ok := ids[h]
		if !ok {
			id = len(ids)
			ids[h] = id
		}
		colors[v] = id
	}
	return colors, rounds
}

// WLHistogram returns a dims-length feature-hashed histogram of g's WL
// colors after at most iters refinement rounds (iters <= 0 refines to
// stability). Bucket = color hash mod dims. Colors are canonical across
// graphs, so isomorphic graphs produce identical histograms and graphs
// sharing local structure share buckets — the embedding feature used by
// the vector candidate tier. Counts are raw vertex counts.
func WLHistogram(g *Graph, iters, dims int) []float64 {
	if dims <= 0 {
		return nil
	}
	out := make([]float64, dims)
	hashes, _ := wlRefine(g, iters)
	for _, h := range hashes {
		out[h%uint64(dims)]++
	}
	return out
}

// samePartition reports whether two colorings induce the same partition of
// the vertices.
func samePartition(a, b []int) bool {
	fwd := map[int]int{}
	bwd := map[int]int{}
	for i := range a {
		if m, ok := fwd[a[i]]; ok {
			if m != b[i] {
				return false
			}
		} else {
			fwd[a[i]] = b[i]
		}
		if m, ok := bwd[b[i]]; ok {
			if m != a[i] {
				return false
			}
		} else {
			bwd[b[i]] = a[i]
		}
	}
	return true
}

// WLSignature returns a canonical string for the stable WL color
// histogram. Isomorphic graphs always share a signature; unequal
// signatures prove non-isomorphism (the converse does not hold: rare
// WL-equivalent non-isomorphic pairs exist, e.g. C6 vs two triangles).
func WLSignature(g *Graph) string {
	colors, _ := WLColors(g)
	// Rebuild a canonical naming: color class -> (class signature) where
	// the signature is derived from one more refinement-style expansion,
	// then histogram.
	n := g.Order()
	classSig := make([]string, n)
	for v := 0; v < n; v++ {
		sig := make([]string, 0, g.Degree(v))
		for w, el := range g.NeighborSet(v) {
			sig = append(sig, fmt.Sprintf("%s~%s", el, classLabel(g, colors, w)))
		}
		sort.Strings(sig)
		classSig[v] = classLabel(g, colors, v) + "(" + strings.Join(sig, ",") + ")"
	}
	sort.Strings(classSig)
	return strings.Join(classSig, "|")
}

// classLabel names a color class by invariant data only (original label +
// class size), never by the arbitrary integer id.
func classLabel(g *Graph, colors []int, v int) string {
	size := 0
	for _, c := range colors {
		if c == colors[v] {
			size++
		}
	}
	return fmt.Sprintf("%s#%d", g.VertexLabel(v), size)
}

// WLEquivalent reports whether the graphs are indistinguishable by color
// refinement — a necessary condition for isomorphism.
func WLEquivalent(g, h *Graph) bool {
	if g.Order() != h.Order() || g.Size() != h.Size() {
		return false
	}
	return WLSignature(g) == WLSignature(h)
}
