package graph

// This file implements label-preserving (sub)graph isomorphism testing in
// the sense of Definitions 4 and 5 of the paper, using a VF2-style
// backtracking search. Subgraph isomorphism here is a *monomorphism*: every
// edge of the pattern must map to an edge of the host with the same label,
// but the host may have extra edges between mapped vertices (Definition 5
// requires only an injection preserving edges, not an induced embedding).

// Isomorphic reports whether g and h are isomorphic (Definition 4): there is
// a label-preserving bijection between their vertex sets preserving labeled
// edges in both directions.
func Isomorphic(g, h *Graph) bool {
	if g.Order() != h.Order() || g.Size() != h.Size() {
		return false
	}
	if !sameLabelHistogram(g, h) {
		return false
	}
	st := newIsoState(g, h, true)
	return st.match(0)
}

// SubgraphIsomorphic reports whether pattern is subgraph-isomorphic to host
// (Definition 5): an injection from pattern vertices to host vertices that
// preserves vertex labels and maps every pattern edge to a host edge with
// the same label.
func SubgraphIsomorphic(pattern, host *Graph) bool {
	m := FindSubgraphIsomorphism(pattern, host)
	return m != nil
}

// FindSubgraphIsomorphism returns one injection (pattern vertex -> host
// vertex) witnessing subgraph isomorphism, or nil if none exists.
func FindSubgraphIsomorphism(pattern, host *Graph) []int {
	if pattern.Order() > host.Order() || pattern.Size() > host.Size() {
		return nil
	}
	st := newIsoState(pattern, host, false)
	if !st.match(0) {
		return nil
	}
	out := make([]int, pattern.Order())
	copy(out, st.core)
	return out
}

// IsSubgraphOf reports whether g ⊆ h (Definition 6).
func IsSubgraphOf(g, h *Graph) bool { return SubgraphIsomorphic(g, h) }

// IsSupergraphOf reports whether g ⊇ h (Definition 6).
func IsSupergraphOf(g, h *Graph) bool { return SubgraphIsomorphic(h, g) }

type isoState struct {
	p, h    *Graph
	induced bool  // true for full isomorphism (degree must match exactly)
	core    []int // pattern vertex -> host vertex or -1
	used    []bool
	order   []int // pattern vertices in matching order (connectivity-first)
}

func newIsoState(p, h *Graph, induced bool) *isoState {
	st := &isoState{
		p:       p,
		h:       h,
		induced: induced,
		core:    make([]int, p.Order()),
		used:    make([]bool, h.Order()),
		order:   matchingOrder(p),
	}
	for i := range st.core {
		st.core[i] = -1
	}
	return st
}

// matchingOrder returns the pattern vertices ordered so that, within each
// connected component, every vertex after the first is adjacent to an
// earlier one (BFS order), with higher-degree roots first. This keeps the
// partial mapping connected and prunes aggressively.
func matchingOrder(p *Graph) []int {
	n := p.Order()
	seen := make([]bool, n)
	order := make([]int, 0, n)
	for {
		root, best := -1, -1
		for v := 0; v < n; v++ {
			if !seen[v] && p.Degree(v) > best {
				root, best = v, p.Degree(v)
			}
		}
		if root < 0 {
			break
		}
		for _, v := range p.BFS(root) {
			seen[v] = true
			order = append(order, v)
		}
	}
	return order
}

func (st *isoState) match(depth int) bool {
	if depth == len(st.order) {
		return true
	}
	pv := st.order[depth]
	for hv := 0; hv < st.h.Order(); hv++ {
		if st.used[hv] || !st.feasible(pv, hv) {
			continue
		}
		st.core[pv] = hv
		st.used[hv] = true
		if st.match(depth + 1) {
			return true
		}
		st.core[pv] = -1
		st.used[hv] = false
	}
	return false
}

func (st *isoState) feasible(pv, hv int) bool {
	if st.p.VertexLabel(pv) != st.h.VertexLabel(hv) {
		return false
	}
	pd, hd := st.p.Degree(pv), st.h.Degree(hv)
	if st.induced {
		if pd != hd {
			return false
		}
	} else if pd > hd {
		return false
	}
	// Every already-mapped neighbor of pv must connect to hv with a matching
	// labeled edge; for induced matching, non-adjacency must be mirrored.
	for w, lbl := range st.p.NeighborSet(pv) {
		hw := st.core[w]
		if hw < 0 {
			continue
		}
		hl, ok := st.h.EdgeLabel(hv, hw)
		if !ok || hl != lbl {
			return false
		}
	}
	if st.induced {
		for hw, hl := range st.h.NeighborSet(hv) {
			pw := st.hostToPattern(hw)
			if pw < 0 {
				continue
			}
			pl, ok := st.p.EdgeLabel(pv, pw)
			if !ok || pl != hl {
				return false
			}
		}
	}
	return true
}

func (st *isoState) hostToPattern(hv int) int {
	for pv, m := range st.core {
		if m == hv {
			return pv
		}
	}
	return -1
}

func sameLabelHistogram(g, h *Graph) bool {
	gv, ge := g.LabelHistogram()
	hv, he := h.LabelHistogram()
	if len(gv) != len(hv) || len(ge) != len(he) {
		return false
	}
	for l, c := range gv {
		if hv[l] != c {
			return false
		}
	}
	for l, c := range ge {
		if he[l] != c {
			return false
		}
	}
	return true
}
