package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLabelHistogram(t *testing.T) {
	g := New("g")
	g.AddVertex("A")
	g.AddVertex("A")
	g.AddVertex("B")
	g.MustAddEdge(0, 1, "x")
	g.MustAddEdge(1, 2, "x")
	vh, eh := g.LabelHistogram()
	if vh["A"] != 2 || vh["B"] != 1 || eh["x"] != 2 {
		t.Errorf("histograms: %v %v", vh, eh)
	}
}

func TestDegreeSequence(t *testing.T) {
	g := Star(5, "A", "x")
	seq := g.DegreeSequence()
	want := []int{4, 1, 1, 1, 1}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq=%v", seq)
		}
	}
}

func TestFingerprintInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ConnectedErdosRenyi(3+r.Intn(8), 0.35, []string{"A", "B"}, []string{"x", "y"}, r)
		return g.Fingerprint() == permute(g, r).Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestFingerprintSeparates(t *testing.T) {
	a := Path(4, "A", "x")
	b := Path(4, "A", "y")
	c := Cycle(4, "A", "x")
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("edge-label difference not reflected in fingerprint")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("structure difference not reflected in fingerprint")
	}
}

func TestHistogramDistance(t *testing.T) {
	cases := []struct {
		a, b map[string]int
		want int
	}{
		{map[string]int{"A": 2}, map[string]int{"A": 2}, 0},
		{map[string]int{"A": 2}, map[string]int{"A": 1}, 1},
		{map[string]int{"A": 2}, map[string]int{"B": 2}, 2},         // 2 substitutions
		{map[string]int{"A": 3}, map[string]int{"A": 1, "B": 1}, 2}, // 1 sub + 1 del
		{map[string]int{}, map[string]int{"A": 4}, 4},
		{map[string]int{"A": 1, "B": 1}, map[string]int{"C": 1}, 2},
	}
	for i, c := range cases {
		if got := HistogramDistance(c.a, c.b); got != c.want {
			t.Errorf("case %d: got %d, want %d", i, got, c.want)
		}
	}
}

func TestHistogramDistanceSymmetric(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a, b := map[string]int{}, map[string]int{}
		labels := []string{"A", "B", "C"}
		for _, x := range av {
			a[labels[int(x)%3]]++
		}
		for _, x := range bv {
			b[labels[int(x)%3]]++
		}
		return HistogramDistance(a, b) == HistogramDistance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestApplyScript(t *testing.T) {
	g := Path(3, "A", "x")
	ops := []EditOp{
		RelabelVertexOp{V: 1, Label: "B"},
		DeleteEdge{U: 1, V: 2},
		RelabelEdgeOp{U: 0, V: 1, Label: "y"},
		InsertVertex{Label: "C"},
		InsertEdge{U: 2, V: 3, Label: "z"},
	}
	out, err := ApplyScript(g, ops)
	if err != nil {
		t.Fatal(err)
	}
	if g.VertexLabel(1) != "A" {
		t.Error("ApplyScript mutated the input graph")
	}
	if out.VertexLabel(1) != "B" || out.Order() != 4 || out.Size() != 2 {
		t.Errorf("script result wrong: %s", out)
	}
	if l, _ := out.EdgeLabel(0, 1); l != "y" {
		t.Error("relabel-edge missed")
	}
}

func TestApplyScriptErrors(t *testing.T) {
	g := Path(3, "A", "x")
	bad := [][]EditOp{
		{DeleteEdge{U: 0, V: 2}},
		{DeleteVertex{V: 0}},                 // not isolated
		{DeleteVertex{V: 9}},                 // missing
		{RelabelVertexOp{V: 9}},              // missing
		{RelabelEdgeOp{U: 0, V: 2}},          // missing edge
		{InsertEdge{U: 0, V: 1, Label: "x"}}, // duplicate
	}
	for i, ops := range bad {
		if _, err := ApplyScript(g, ops); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestDeleteVertexOpOnIsolated(t *testing.T) {
	g := New("g")
	g.AddVertex("A")
	g.AddVertex("B")
	out, err := ApplyScript(g, []EditOp{DeleteVertex{V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Order() != 1 || out.VertexLabel(0) != "B" {
		t.Errorf("result: %s", out)
	}
}

func TestEditOpStrings(t *testing.T) {
	ops := []EditOp{
		InsertVertex{"A"}, DeleteVertex{1}, RelabelVertexOp{1, "B"},
		InsertEdge{0, 1, "x"}, DeleteEdge{0, 1}, RelabelEdgeOp{0, 1, "y"},
	}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("%T has empty String()", op)
		}
	}
}
