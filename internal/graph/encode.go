package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// This file implements two codecs for graphs:
//
//   - LGF ("labeled graph format"), a line-oriented text format:
//
//       graph <name>
//       v <id> <label>
//       e <u> <v> <label>
//
//     Blank lines and lines starting with '#' are ignored. Vertex ids must
//     be dense and declared in ascending order. Multiple graphs may appear
//     in one stream, each introduced by a "graph" line.
//
//   - JSON, for interop with other tooling.

// WriteLGF writes g in LGF form.
func WriteLGF(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	name := g.Name()
	if name == "" {
		name = "unnamed"
	}
	fmt.Fprintf(bw, "graph %s\n", name)
	for v := 0; v < g.Order(); v++ {
		fmt.Fprintf(bw, "v %d %s\n", v, quoteLabel(g.VertexLabel(v)))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "e %d %d %s\n", e.U, e.V, quoteLabel(e.Label))
	}
	return bw.Flush()
}

// MarshalLGF renders g as an LGF string.
func MarshalLGF(g *Graph) string {
	var b strings.Builder
	_ = WriteLGF(&b, g)
	return b.String()
}

// ReadLGF parses every graph in the stream.
func ReadLGF(r io.Reader) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []*Graph
	var cur *Graph
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "graph":
			if len(fields) < 2 {
				return nil, fmt.Errorf("lgf line %d: graph directive needs a name", lineno)
			}
			cur = New(fields[1])
			out = append(out, cur)
		case "v":
			if cur == nil {
				return nil, fmt.Errorf("lgf line %d: vertex before graph directive", lineno)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("lgf line %d: want 'v <id> <label>'", lineno)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("lgf line %d: bad vertex id %q", lineno, fields[1])
			}
			if id != cur.Order() {
				return nil, fmt.Errorf("lgf line %d: vertex ids must be dense ascending (got %d, want %d)", lineno, id, cur.Order())
			}
			cur.AddVertex(unquoteLabel(fields[2]))
		case "e":
			if cur == nil {
				return nil, fmt.Errorf("lgf line %d: edge before graph directive", lineno)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("lgf line %d: want 'e <u> <v> <label>'", lineno)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("lgf line %d: bad edge endpoints", lineno)
			}
			if err := cur.AddEdge(u, v, unquoteLabel(fields[3])); err != nil {
				return nil, fmt.Errorf("lgf line %d: %w", lineno, err)
			}
		default:
			return nil, fmt.Errorf("lgf line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, g := range out {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ParseLGF parses LGF text expected to contain exactly one graph.
func ParseLGF(s string) (*Graph, error) {
	gs, err := ReadLGF(strings.NewReader(s))
	if err != nil {
		return nil, err
	}
	if len(gs) != 1 {
		return nil, fmt.Errorf("lgf: want exactly 1 graph, got %d", len(gs))
	}
	return gs[0], nil
}

// quoteLabel makes a label safe for the whitespace-separated LGF
// format: the empty label becomes %00, and every '%' or whitespace rune
// (anything the field splitter could split on, including multi-byte
// unicode spaces) is percent-escaped byte-wise. All other bytes pass
// through untouched — in particular invalid UTF-8 is preserved, not
// replaced, so quote/unquote round-trips arbitrary byte strings.
func quoteLabel(l string) string {
	if l == "" {
		return "%00"
	}
	var b strings.Builder
	for i := 0; i < len(l); {
		r, size := utf8.DecodeRuneInString(l[i:])
		if (r == utf8.RuneError && size == 1) || (r != '%' && !unicode.IsSpace(r)) {
			b.WriteByte(l[i])
			i++
			continue
		}
		for j := 0; j < size; j++ {
			fmt.Fprintf(&b, "%%%02X", l[i+j])
		}
		i += size
	}
	return b.String()
}

// unquoteLabel decodes %XX escapes (any byte); malformed escapes stay
// literal, which is safe because quoteLabel always escapes real '%'
// characters.
func unquoteLabel(l string) string {
	if l == "%00" {
		return ""
	}
	if !strings.Contains(l, "%") {
		return l
	}
	var b strings.Builder
	for i := 0; i < len(l); {
		if l[i] == '%' && i+3 <= len(l) {
			if hi, ok1 := unhex(l[i+1]); ok1 {
				if lo, ok2 := unhex(l[i+2]); ok2 {
					b.WriteByte(hi<<4 | lo)
					i += 3
					continue
				}
			}
		}
		b.WriteByte(l[i])
		i++
	}
	return b.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// jsonGraph is the JSON wire form of a Graph.
type jsonGraph struct {
	Name     string     `json:"name"`
	Vertices []string   `json:"vertices"`
	Edges    []jsonEdge `json:"edges"`
}

type jsonEdge struct {
	U     int    `json:"u"`
	V     int    `json:"v"`
	Label string `json:"label"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name(), Vertices: g.VertexLabels(), Edges: []jsonEdge{}}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, jsonEdge{U: e.U, V: e.V, Label: e.Label})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	*g = Graph{name: jg.Name}
	for _, l := range jg.Vertices {
		g.AddVertex(l)
	}
	for _, e := range jg.Edges {
		if err := g.AddEdge(e.U, e.V, e.Label); err != nil {
			return err
		}
	}
	return g.Validate()
}
