package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
)

// LabelHistogram returns the multiset of vertex labels and edge labels as
// count maps. Histograms are isomorphism invariants and back the cheap
// lower bounds used by the GED engine and the database index.
func (g *Graph) LabelHistogram() (vertices, edges map[string]int) {
	vertices = make(map[string]int, len(g.vlabels))
	for _, l := range g.vlabels {
		vertices[l]++
	}
	edges = make(map[string]int)
	for _, e := range g.Edges() {
		edges[e.Label]++
	}
	return vertices, edges
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	seq := make([]int, g.Order())
	for v := range seq {
		seq[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seq)))
	return seq
}

// Fingerprint returns a 64-bit isomorphism-invariant hash combining order,
// size, label histograms, degree sequence and the multiset of
// (vertexLabel, sorted incident edge labels) signatures. Equal fingerprints
// do not imply isomorphism, but different fingerprints imply
// non-isomorphism, so the value is usable as a fast negative filter.
func (g *Graph) Fingerprint() uint64 {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.Order()))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(g.Size()))
	h.Write(buf[:])

	vh, eh := g.LabelHistogram()
	writeHistogram(h, vh)
	writeHistogram(h, eh)

	for _, d := range g.DegreeSequence() {
		binary.LittleEndian.PutUint64(buf[:], uint64(d))
		h.Write(buf[:])
	}

	sigs := make([]string, g.Order())
	for v := 0; v < g.Order(); v++ {
		inc := make([]string, 0, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			l, _ := g.EdgeLabel(v, w)
			inc = append(inc, l+"~"+g.VertexLabel(w))
		}
		sort.Strings(inc)
		sigs[v] = g.VertexLabel(v) + "(" + strings.Join(inc, ",") + ")"
	}
	sort.Strings(sigs)
	for _, s := range sigs {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}

	sum := h.Sum(nil)
	return binary.LittleEndian.Uint64(sum[:8])
}

func writeHistogram(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d;", k, m[k])
	}
}

// HistogramDistance returns the L1 distance between two count maps divided
// by two, i.e. the minimum number of element substitutions/insertions/
// deletions to transform one multiset into the other when a substitution
// repairs one surplus and one deficit at once. This is the classic
// label-histogram lower bound on edit distance restricted to one element
// kind.
func HistogramDistance(a, b map[string]int) int {
	surplus, deficit := 0, 0
	for l, ca := range a {
		if cb := b[l]; ca > cb {
			surplus += ca - cb
		}
	}
	for l, cb := range b {
		if ca := a[l]; cb > ca {
			deficit += cb - ca
		}
	}
	if surplus > deficit {
		return surplus
	}
	return deficit
}
