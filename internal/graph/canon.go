package graph

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements a canonical form for small labeled graphs: a
// vertex ordering whose induced encoding is lexicographically minimal.
// Two graphs are isomorphic iff their canonical strings are equal, which
// makes the canonical form usable for exact deduplication and hashing.
//
// The encoding is block-decomposable — block i holds vertex i's label and
// its back-edges into vertices 0..i-1 — so a partial vertex ordering fixes
// a string prefix and the branch-and-bound can prune any prefix already
// lexicographically above the best complete encoding. Worst case
// exponential; intended for graphs up to ~10 vertices (use Fingerprint or
// WLSignature as cheap pre-filters first).

// CanonicalString returns a complete isomorphism-invariant encoding of g.
// Isomorphic graphs produce identical strings; non-isomorphic graphs
// produce different ones.
func CanonicalString(g *Graph) string {
	s, _ := CanonicalStringBudget(g, 0)
	return s
}

// CanonicalStringBudget is CanonicalString with a cap on search-tree
// nodes (0 = unlimited). ok is false when the budget was exhausted; the
// returned string is then a best-effort encoding that is deterministic
// for this exact graph but NOT isomorphism-invariant, so callers needing
// the invariant must discard it. Highly symmetric graphs (many tied
// labels) are where the branch and bound degenerates; the budget turns
// a potentially exponential stall into a clean refusal.
func CanonicalStringBudget(g *Graph, maxNodes int) (s string, ok bool) {
	n := g.Order()
	if n == 0 {
		return "canon:0:", true
	}
	cs := &canonSearch{g: g, budget: maxNodes}
	cs.search(make([]int, 0, n), make([]bool, n), "")
	return fmt.Sprintf("canon:%d:%s", n, cs.best), !cs.exhausted
}

type canonSearch struct {
	g         *Graph
	best      string
	done      bool
	budget    int // max search nodes; 0 = unlimited
	nodes     int
	exhausted bool
}

// block renders vertex v's contribution given the already-placed prefix:
// its label plus its sorted back-edges into the prefix.
func (cs *canonSearch) block(v int, order []int) string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(cs.g.VertexLabel(v))
	for i, u := range order {
		if l, ok := cs.g.EdgeLabel(v, u); ok {
			fmt.Fprintf(&b, ";%d:%s", i, l)
		}
	}
	b.WriteByte(']')
	return b.String()
}

func (cs *canonSearch) search(order []int, used []bool, partial string) {
	if cs.exhausted {
		return
	}
	cs.nodes++
	if cs.budget > 0 && cs.nodes > cs.budget {
		cs.exhausted = true
		return
	}
	n := cs.g.Order()
	if len(order) == n {
		if !cs.done || partial < cs.best {
			cs.best = partial
			cs.done = true
		}
		return
	}
	// Expand candidates in block order so better prefixes are tried first
	// (finds a good bound early, then prunes hard).
	type cand struct {
		v     int
		block string
	}
	var cands []cand
	for v := 0; v < n; v++ {
		if !used[v] {
			cands = append(cands, cand{v, cs.block(v, order)})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].block < cands[b].block })
	for i, c := range cands {
		// Identical blocks lead to identical subtrees only if the vertices
		// are interchangeable, which we cannot assume — but trying the
		// second of two equal blocks cannot yield a *strictly smaller*
		// prefix than the first at this position, so we still must explore
		// both. Prune only on the bound below.
		_ = i
		next := partial + c.block
		if cs.done {
			limit := len(next)
			if limit > len(cs.best) {
				limit = len(cs.best)
			}
			if next[:limit] > cs.best[:limit] {
				// Every completion extends next, so it exceeds best.
				continue
			}
		}
		used[c.v] = true
		cs.search(append(order, c.v), used, next)
		used[c.v] = false
	}
}

// CanonicalEqual reports graph isomorphism via canonical strings. It is an
// independent (slower, but simpler) alternative to the VF2 matcher, used
// to cross-validate it in tests.
func CanonicalEqual(g, h *Graph) bool {
	if g.Order() != h.Order() || g.Size() != h.Size() {
		return false
	}
	return CanonicalString(g) == CanonicalString(h)
}
