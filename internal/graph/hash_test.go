package graph

import (
	"testing"
	"time"
)

// permuted rebuilds g with vertex i renamed to perm[i].
func permuted(g *Graph, perm []int) *Graph {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	out := New(g.Name() + "-perm")
	for i := 0; i < g.Order(); i++ {
		out.AddVertex(g.VertexLabel(inv[i]))
	}
	for _, e := range g.Edges() {
		out.MustAddEdge(perm[e.U], perm[e.V], e.Label)
	}
	return out
}

func hashTestGraph() *Graph {
	g := New("h")
	g.AddVertex("a")
	g.AddVertex("b")
	g.AddVertex("c")
	g.AddVertex("a")
	g.MustAddEdge(0, 1, "x")
	g.MustAddEdge(1, 2, "y")
	g.MustAddEdge(2, 3, "x")
	g.MustAddEdge(3, 0, "z")
	return g
}

func TestQueryHashIsomorphismInvariant(t *testing.T) {
	g := hashTestGraph()
	want := QueryHash(g)
	perms := [][]int{
		{3, 2, 1, 0},
		{1, 0, 3, 2},
		{2, 3, 0, 1},
	}
	for _, p := range perms {
		h := permuted(g, p)
		if got := QueryHash(h); got != want {
			t.Errorf("perm %v: hash %s != %s", p, got, want)
		}
	}
}

func TestQueryHashIgnoresName(t *testing.T) {
	g := hashTestGraph()
	h := g.Clone()
	h.SetName("renamed")
	if QueryHash(g) != QueryHash(h) {
		t.Error("hash must not depend on the graph name")
	}
}

func TestQueryHashSeparatesGraphs(t *testing.T) {
	g := hashTestGraph()
	seen := map[string]string{QueryHash(g): "base"}

	variants := map[string]func() *Graph{
		"relabel vertex": func() *Graph {
			h := g.Clone()
			h.RelabelVertex(0, "zz")
			return h
		},
		"relabel edge": func() *Graph {
			h := g.Clone()
			h.RelabelEdge(0, 1, "w")
			return h
		},
		"drop edge": func() *Graph {
			h := g.Clone()
			h.RemoveEdge(0, 1)
			return h
		},
		"extra vertex": func() *Graph {
			h := g.Clone()
			h.AddVertex("q")
			return h
		},
	}
	for name, build := range variants {
		hash := QueryHash(build())
		if prev, dup := seen[hash]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[hash] = name
	}
}

func TestQueryHashSymmetricGraphIsFast(t *testing.T) {
	// A uniformly-labeled K10 makes the unbudgeted canonical search
	// exponential (every prefix ties). The budget must turn that into a
	// quick fallback, not a multi-second stall — this runs on a
	// synchronous, unauthenticated server path.
	k10 := New("k10")
	for i := 0; i < 10; i++ {
		k10.AddVertex("v")
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			k10.MustAddEdge(i, j, "e")
		}
	}
	start := time.Now()
	h := QueryHash(k10)
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("QueryHash(K10) took %v; the canon budget is not biting", d)
	}
	if h != QueryHash(k10.Clone()) {
		t.Error("budgeted hash must stay deterministic")
	}
}

func TestCanonicalStringBudget(t *testing.T) {
	p := New("path")
	p.AddVertex("a")
	p.AddVertex("b")
	p.AddVertex("c")
	p.MustAddEdge(0, 1, "x")
	p.MustAddEdge(1, 2, "y")
	s, ok := CanonicalStringBudget(p, 1000)
	if !ok {
		t.Fatal("easy graph exhausted a generous budget")
	}
	if s != CanonicalString(p) {
		t.Errorf("budgeted result %q differs from unbudgeted %q", s, CanonicalString(p))
	}
	if _, ok := CanonicalStringBudget(p, 1); ok {
		t.Error("budget of 1 node cannot complete a 3-vertex search")
	}
}

func TestQueryHashLargeGraphFallback(t *testing.T) {
	// Above canonHashOrder vertices the exact-encoding fallback runs:
	// deterministic, and collision-free even for graphs that 1-WL cannot
	// distinguish.
	cycle := func(name string, n, offset int, g *Graph) *Graph {
		if g == nil {
			g = New(name)
		}
		base := g.Order()
		for i := 0; i < n; i++ {
			g.AddVertex("v")
		}
		for i := 0; i < n; i++ {
			g.MustAddEdge(base+i, base+(i+1)%n, "e")
		}
		return g
	}

	c12 := cycle("c12", 12, 0, nil)
	if QueryHash(c12) != QueryHash(cycle("c12-again", 12, 0, nil)) {
		t.Error("identical large graphs must hash identically")
	}

	// One 12-cycle vs two disjoint 6-cycles: indistinguishable by 1-WL
	// (same order, size, labels, stable colors) — the exact fallback must
	// separate them.
	two6 := cycle("two6", 6, 0, nil)
	two6 = cycle("", 6, 6, two6)
	if QueryHash(c12) == QueryHash(two6) {
		t.Error("12-cycle and two 6-cycles must not collide")
	}

	path := New("bigpath")
	n := 12
	for i := 0; i < n; i++ {
		path.AddVertex("v")
	}
	for i := 0; i+1 < n; i++ {
		path.MustAddEdge(i, i+1, "e")
	}
	if QueryHash(c12) == QueryHash(path) {
		t.Error("cycle and path should hash differently")
	}
}
