package graph

import (
	"strings"
	"testing"
)

// graphFromBytes deterministically decodes fuzz input into a small
// labeled graph (2..10 vertices), so the canonical-form path of
// QueryHash is reachable. Returns nil for inputs too short to decode.
func graphFromBytes(data []byte) *Graph {
	if len(data) < 3 {
		return nil
	}
	vlabels := []string{"C", "N", "O", "S"}
	elabels := []string{"-", "="}
	n := 2 + int(data[0])%9
	g := New("fuzz")
	for i := 0; i < n; i++ {
		g.AddVertex(vlabels[int(data[1+i%(len(data)-1)])%len(vlabels)])
	}
	for i := 2; i+1 < len(data); i += 2 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, elabels[int(data[i]>>4)%len(elabels)])
	}
	return g
}

// rotate returns g with its vertices renumbered by i -> (i+k) mod n:
// an isomorphic graph with a different literal encoding.
func rotate(g *Graph, k int) *Graph {
	n := g.Order()
	if n == 0 {
		return g.Clone()
	}
	k = ((k % n) + n) % n
	out := New(g.Name() + "-rot")
	for i := 0; i < n; i++ {
		out.AddVertex(g.VertexLabel((i - k + n) % n))
	}
	for _, e := range g.Edges() {
		out.MustAddEdge((e.U+k)%n, (e.V+k)%n, e.Label)
	}
	return out
}

// FuzzQueryHash checks the two cache-safety properties of QueryHash:
// isomorphic renumberings collide whenever the canonical path is taken,
// and structurally different graphs never collide.
func FuzzQueryHash(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 0, 1, 1, 2})
	f.Add([]byte{7, 1, 2, 3, 4, 5, 6, 0, 1, 2, 3})
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<10 {
			t.Skip("oversized input")
		}
		g := graphFromBytes(data)
		if g == nil {
			t.Skip("input too short")
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("generated graph invalid: %v", err)
		}
		h := QueryHash(g)
		if h != QueryHash(g) {
			t.Fatal("QueryHash is not deterministic")
		}

		rot := rotate(g, 1+int(data[0])%3)
		if QueryHashCanonical(g) && QueryHashCanonical(rot) {
			if QueryHash(rot) != h {
				t.Fatalf("isomorphic renumbering hashes apart:\n%s\nvs\n%s", g, rot)
			}
		}

		// Relabel one vertex to a label outside the alphabet: the label
		// histogram changes, so the result cannot be isomorphic to g and
		// must hash differently.
		mut := g.Clone()
		mut.RelabelVertex(0, "Zz")
		if Isomorphic(g, mut) {
			t.Fatalf("fresh-label relabel produced an isomorphic graph: %s", g)
		}
		if QueryHash(mut) == h {
			t.Fatalf("non-isomorphic graphs collide:\n%s\nvs\n%s", g, mut)
		}
	})
}

// FuzzLGFRoundTrip feeds arbitrary text to the LGF parser; whatever it
// accepts must survive a marshal/parse round trip unchanged, including
// labels with escaped whitespace and percent signs.
func FuzzLGFRoundTrip(f *testing.F) {
	f.Add("graph g\nv 0 C\nv 1 N\ne 0 1 -\n")
	f.Add("graph a\nv 0 %20\n# comment\ngraph b\nv 0 %00\nv 1 x%25y\ne 0 1 %09\n")
	f.Add("graph w\nv 0 a\nv 1 b\nv 2 c\ne 0 1 x\ne 1 2 y\ne 0 2 z\n")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1<<16 {
			t.Skip("oversized input")
		}
		gs, err := ReadLGF(strings.NewReader(text))
		if err != nil {
			t.Skip("parser rejected input")
		}
		for _, g := range gs {
			enc := MarshalLGF(g)
			back, err := ParseLGF(enc)
			if err != nil {
				t.Fatalf("re-parse of marshaled graph failed: %v\n%s", err, enc)
			}
			if !back.Equal(g) {
				t.Fatalf("round trip changed the graph:\nbefore %s\nafter  %s\nencoding:\n%s", g, back, enc)
			}
			if back.Name() != g.Name() {
				t.Fatalf("round trip changed the name: %q -> %q", g.Name(), back.Name())
			}
		}
	})
}
