package graph

import (
	"math/rand"
	"testing"
)

// The hashed recoloring loop must be deterministic: same graph, same
// colors, same round count, every run.
func TestWLColorsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := ConnectedErdosRenyi(12, 0.25, []string{"A", "B", "C"}, []string{"x", "y"}, rng)
		c1, r1 := WLColors(g)
		c2, r2 := WLColors(g)
		if r1 != r2 {
			t.Fatalf("trial %d: round counts differ: %d vs %d", trial, r1, r2)
		}
		for v := range c1 {
			if c1[v] != c2[v] {
				t.Fatalf("trial %d: colors differ at v=%d", trial, v)
			}
		}
	}
}

// Isomorphic graphs must produce the same WL partition and — because
// colors are hashed canonically from structure, not numbered per graph —
// byte-identical feature histograms at every dimension and iteration
// cap. This is the invariance the vector tier's embeddings rely on.
func TestWLHistogramIsomorphismInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		g := ConnectedErdosRenyi(10, 0.3, []string{"A", "B"}, []string{"x", "y"}, rng)
		h := permute(g, rng)
		for _, dims := range []int{8, 32, 64} {
			for _, iters := range []int{1, 2, 0} {
				hg := WLHistogram(g, iters, dims)
				hh := WLHistogram(h, iters, dims)
				for d := range hg {
					if hg[d] != hh[d] {
						t.Fatalf("trial %d dims=%d iters=%d: histograms differ at bucket %d: %v vs %v",
							trial, dims, iters, d, hg, hh)
					}
				}
			}
		}
	}
}

// Histograms of structurally different graphs should differ (WL is
// strictly stronger than the label histogram: P4 and S4 share labels and
// degree-sum but not WL colors).
func TestWLHistogramSeparates(t *testing.T) {
	hp := WLHistogram(Path(4, "A", "x"), 0, 64)
	hs := WLHistogram(Star(4, "A", "x"), 0, 64)
	same := true
	for d := range hp {
		if hp[d] != hs[d] {
			same = false
			break
		}
	}
	if same {
		t.Error("WLHistogram failed to separate P4 from S4")
	}
}

// The iteration cap must bound the rounds executed, and a capped run
// must still be deterministic and refine monotonically (never more
// classes than the stable partition).
func TestWLColorsCapped(t *testing.T) {
	g := Path(9, "A", "x")
	_, full := WLColors(g)
	if full < 2 {
		t.Fatalf("path9 should need multiple rounds, got %d", full)
	}
	colors, rounds := WLColorsCapped(g, 1)
	if rounds != 1 {
		t.Fatalf("cap 1: executed %d rounds", rounds)
	}
	// After one round endpoints (degree 1) split from interior vertices.
	if colors[0] != colors[8] || colors[0] == colors[4] {
		t.Fatalf("cap 1: unexpected partition %v", colors)
	}
	// The capped partition must agree with itself across runs.
	colors2, _ := WLColorsCapped(g, 1)
	if !samePartition(colors, colors2) {
		t.Fatal("capped run not deterministic")
	}
}

// Zero- and one-vertex graphs must not panic and must round-trip through
// the histogram path.
func TestWLTinyGraphs(t *testing.T) {
	empty := New("empty")
	if h := WLHistogram(empty, 0, 8); len(h) != 8 {
		t.Fatalf("empty histogram length %d", len(h))
	}
	one := New("one")
	one.AddVertex("A")
	h := WLHistogram(one, 0, 8)
	total := 0.0
	for _, x := range h {
		total += x
	}
	if total != 1 {
		t.Fatalf("one-vertex histogram mass %v", total)
	}
	if h2 := WLHistogram(one, 0, 0); h2 != nil {
		t.Fatalf("dims<=0 should return nil, got %v", h2)
	}
}
