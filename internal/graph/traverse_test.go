package graph

import (
	"math/rand"
	"testing"
)

func TestBFSOrder(t *testing.T) {
	g := Path(5, "A", "x")
	got := g.BFS(2)
	want := []int{2, 1, 3, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFS=%v, want %v", got, want)
		}
	}
}

func TestDFSOrder(t *testing.T) {
	g := Star(4, "A", "x")
	got := g.DFS(0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DFS=%v, want %v", got, want)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New("g")
	g.AddVertices(5, "A")
	g.MustAddEdge(0, 1, "x")
	g.MustAddEdge(3, 4, "x")
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components=%v", comps)
	}
	if len(comps[0]) != 2 || len(comps[1]) != 1 || len(comps[2]) != 2 {
		t.Errorf("component sizes wrong: %v", comps)
	}
}

func TestIsConnected(t *testing.T) {
	if !Path(6, "A", "x").IsConnected() {
		t.Error("path not connected")
	}
	g := Path(3, "A", "x")
	g.AddVertex("B")
	if g.IsConnected() {
		t.Error("graph with isolated vertex reported connected")
	}
	single := New("s")
	single.AddVertex("A")
	if !single.IsConnected() {
		t.Error("K1 not connected")
	}
}

func TestShortestPathLengths(t *testing.T) {
	g := Cycle(6, "A", "x")
	d := g.ShortestPathLengths(0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist=%v, want %v", d, want)
		}
	}
	g2 := New("g")
	g2.AddVertices(3, "A")
	g2.MustAddEdge(0, 1, "x")
	d2 := g2.ShortestPathLengths(0)
	if d2[2] != -1 {
		t.Errorf("unreachable distance=%d, want -1", d2[2])
	}
}

func TestDiameter(t *testing.T) {
	if d := Path(7, "A", "x").Diameter(); d != 6 {
		t.Errorf("P7 diameter=%d", d)
	}
	if d := Cycle(8, "A", "x").Diameter(); d != 4 {
		t.Errorf("C8 diameter=%d", d)
	}
	if d := Complete(5, "A", "x").Diameter(); d != 1 {
		t.Errorf("K5 diameter=%d", d)
	}
	if d := New("e").Diameter(); d != 0 {
		t.Errorf("empty diameter=%d", d)
	}
}

func TestGeneratorsShape(t *testing.T) {
	if g := Path(5, "A", "x"); g.Order() != 5 || g.Size() != 4 {
		t.Error("Path shape")
	}
	if g := Cycle(5, "A", "x"); g.Order() != 5 || g.Size() != 5 {
		t.Error("Cycle shape")
	}
	if g := Complete(5, "A", "x"); g.Size() != 10 {
		t.Error("Complete shape")
	}
	if g := Star(5, "A", "x"); g.Size() != 4 || g.Degree(0) != 4 {
		t.Error("Star shape")
	}
	if g := Grid(3, 4, "A", "x"); g.Order() != 12 || g.Size() != 3*3+2*4 {
		t.Errorf("Grid shape: %d edges", g.Size())
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(20)
		g := RandomTree(n, []string{"A", "B"}, []string{"x"}, rng)
		if g.Order() != n || g.Size() != n-1 || !g.IsConnected() {
			t.Fatalf("not a tree: order=%d size=%d connected=%v", g.Order(), g.Size(), g.IsConnected())
		}
	}
}

func TestConnectedErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := ConnectedErdosRenyi(15, 0.05, []string{"A"}, []string{"x"}, rng)
		if !g.IsConnected() {
			t.Fatal("ConnectedErdosRenyi produced disconnected graph")
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMoleculeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := Molecule(20, rng)
		if !g.IsConnected() {
			t.Fatal("molecule disconnected")
		}
		for v := 0; v < g.Order(); v++ {
			if g.Degree(v) > 4 {
				t.Fatalf("degree bound violated: %d", g.Degree(v))
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMutateCountsAndConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := Molecule(15, rng)
	for _, nops := range []int{1, 3, 7} {
		m := Mutate(base, nops, []string{"C", "N", "O"}, []string{"-", "="}, rng)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if !m.IsConnected() {
			t.Error("mutation disconnected the graph")
		}
		if m.Equal(base) && nops > 0 {
			t.Error("mutation produced identical graph")
		}
	}
}
