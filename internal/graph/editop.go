package graph

import "fmt"

// EditOp is one elementary edit operation of the paper's Section IV-A: an
// insertion or deletion of a vertex/edge, or a relabeling of a vertex/edge.
// Applying a sequence of edit ops transforms one graph into another; the
// edit distance engine (internal/ged) searches over such sequences.
type EditOp interface {
	// Apply mutates g in place, returning an error if the operation is not
	// applicable (e.g. deleting a missing edge).
	Apply(g *Graph) error
	// String renders a human-readable description.
	String() string
}

// InsertVertex adds a vertex with the given label. The new vertex receives
// the next dense identifier.
type InsertVertex struct{ Label string }

// DeleteVertex removes vertex V, which must be isolated (graph edit
// distance conventions delete incident edges explicitly first).
type DeleteVertex struct{ V int }

// RelabelVertex changes the label of vertex V to Label.
type RelabelVertexOp struct {
	V     int
	Label string
}

// InsertEdge adds the labeled edge {U,V}.
type InsertEdge struct {
	U, V  int
	Label string
}

// DeleteEdge removes the edge {U,V}.
type DeleteEdge struct{ U, V int }

// RelabelEdge changes the label of edge {U,V} to Label.
type RelabelEdgeOp struct {
	U, V  int
	Label string
}

func (op InsertVertex) Apply(g *Graph) error {
	g.AddVertex(op.Label)
	return nil
}
func (op InsertVertex) String() string { return fmt.Sprintf("insert-vertex(%s)", op.Label) }

func (op DeleteVertex) Apply(g *Graph) error {
	if !g.HasVertex(op.V) {
		return fmt.Errorf("delete-vertex: no vertex %d", op.V)
	}
	if g.Degree(op.V) != 0 {
		return fmt.Errorf("delete-vertex: vertex %d has degree %d; delete incident edges first", op.V, g.Degree(op.V))
	}
	g.RemoveVertex(op.V)
	return nil
}
func (op DeleteVertex) String() string { return fmt.Sprintf("delete-vertex(%d)", op.V) }

func (op RelabelVertexOp) Apply(g *Graph) error {
	if !g.HasVertex(op.V) {
		return fmt.Errorf("relabel-vertex: no vertex %d", op.V)
	}
	g.RelabelVertex(op.V, op.Label)
	return nil
}
func (op RelabelVertexOp) String() string {
	return fmt.Sprintf("relabel-vertex(%d -> %s)", op.V, op.Label)
}

func (op InsertEdge) Apply(g *Graph) error { return g.AddEdge(op.U, op.V, op.Label) }
func (op InsertEdge) String() string {
	return fmt.Sprintf("insert-edge(%d-%d:%s)", op.U, op.V, op.Label)
}

func (op DeleteEdge) Apply(g *Graph) error {
	if !g.RemoveEdge(op.U, op.V) {
		return fmt.Errorf("delete-edge: no edge {%d,%d}", op.U, op.V)
	}
	return nil
}
func (op DeleteEdge) String() string { return fmt.Sprintf("delete-edge(%d-%d)", op.U, op.V) }

func (op RelabelEdgeOp) Apply(g *Graph) error {
	if !g.RelabelEdge(op.U, op.V, op.Label) {
		return fmt.Errorf("relabel-edge: no edge {%d,%d}", op.U, op.V)
	}
	return nil
}
func (op RelabelEdgeOp) String() string {
	return fmt.Sprintf("relabel-edge(%d-%d -> %s)", op.U, op.V, op.Label)
}

// ApplyScript applies ops to a clone of g and returns the result. g itself
// is not modified. The first failing operation aborts with an error.
func ApplyScript(g *Graph, ops []EditOp) (*Graph, error) {
	out := g.Clone()
	for i, op := range ops {
		if err := op.Apply(out); err != nil {
			return nil, fmt.Errorf("op %d (%s): %w", i, op, err)
		}
	}
	return out, nil
}
