// Package graph implements the undirected labeled graphs of the paper
// (Definition 3): a graph is a 4-tuple (V, E, L, l) where both vertices and
// edges carry labels. Vertices are dense integer identifiers 0..Order()-1.
// Graphs are simple: no self-loops and no parallel edges. The size of a
// graph, |g|, is its number of edges (paper, Section II-B).
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is an undirected labeled edge. U < V is maintained as a normal form
// by all functions returning Edge values.
type Edge struct {
	U, V  int
	Label string
}

// normalize returns e with endpoints ordered U <= V.
func (e Edge) normalize() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Graph is an undirected labeled simple graph. The zero value is an empty
// graph ready to use.
type Graph struct {
	name    string
	vlabels []string
	adj     []map[int]string
	nedges  int
}

// New returns an empty graph with the given name. The name is metadata only
// and plays no role in comparisons.
func New(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// SetName sets the graph's name.
func (g *Graph) SetName(name string) { g.name = name }

// Order returns |V|, the number of vertices.
func (g *Graph) Order() int { return len(g.vlabels) }

// Size returns |E|, the number of edges. Per the paper, this is the size
// |g| of the graph.
func (g *Graph) Size() int { return g.nedges }

// AddVertex adds a vertex with the given label and returns its identifier.
func (g *Graph) AddVertex(label string) int {
	g.vlabels = append(g.vlabels, label)
	g.adj = append(g.adj, nil)
	return len(g.vlabels) - 1
}

// AddVertices adds n vertices sharing one label and returns the identifier
// of the first.
func (g *Graph) AddVertices(n int, label string) int {
	first := len(g.vlabels)
	for i := 0; i < n; i++ {
		g.AddVertex(label)
	}
	return first
}

// HasVertex reports whether v is a valid vertex identifier.
func (g *Graph) HasVertex(v int) bool { return v >= 0 && v < len(g.vlabels) }

// VertexLabel returns the label of vertex v. It panics if v is invalid.
func (g *Graph) VertexLabel(v int) string {
	g.mustVertex(v)
	return g.vlabels[v]
}

// RelabelVertex sets the label of vertex v.
func (g *Graph) RelabelVertex(v int, label string) {
	g.mustVertex(v)
	g.vlabels[v] = label
}

func (g *Graph) mustVertex(v int) {
	if !g.HasVertex(v) {
		panic(fmt.Sprintf("graph %q: invalid vertex %d (order %d)", g.name, v, g.Order()))
	}
}

// AddEdge inserts an undirected edge {u,v} with the given label. It returns
// an error if either endpoint is invalid, u == v (self-loop), or the edge
// already exists.
func (g *Graph) AddEdge(u, v int, label string) error {
	if !g.HasVertex(u) || !g.HasVertex(v) {
		return fmt.Errorf("graph %q: edge {%d,%d}: endpoint out of range (order %d)", g.name, u, v, g.Order())
	}
	if u == v {
		return fmt.Errorf("graph %q: self-loop on vertex %d not allowed", g.name, u)
	}
	if _, ok := g.adj[u][v]; ok {
		return fmt.Errorf("graph %q: edge {%d,%d} already exists", g.name, u, v)
	}
	if g.adj[u] == nil {
		g.adj[u] = make(map[int]string)
	}
	if g.adj[v] == nil {
		g.adj[v] = make(map[int]string)
	}
	g.adj[u][v] = label
	g.adj[v][u] = label
	g.nedges++
	return nil
}

// MustAddEdge is AddEdge but panics on error. It is intended for
// programmatic construction of fixtures where the input is known valid.
func (g *Graph) MustAddEdge(u, v int, label string) {
	if err := g.AddEdge(u, v, label); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the edge {u,v}. It returns false if the edge does not
// exist.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !g.HasVertex(u) || !g.HasVertex(v) {
		return false
	}
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.nedges--
	return true
}

// HasEdge reports whether the edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if !g.HasVertex(u) || !g.HasVertex(v) {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// EdgeLabel returns the label of edge {u,v} and whether the edge exists.
func (g *Graph) EdgeLabel(u, v int) (string, bool) {
	if !g.HasVertex(u) || !g.HasVertex(v) {
		return "", false
	}
	l, ok := g.adj[u][v]
	return l, ok
}

// RelabelEdge sets the label of an existing edge {u,v}. It returns false if
// the edge does not exist.
func (g *Graph) RelabelEdge(u, v int, label string) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.adj[u][v] = label
	g.adj[v][u] = label
	return true
}

// RemoveVertex deletes vertex v together with its incident edges. To keep
// identifiers dense, the last vertex is renumbered to v (swap-delete);
// callers holding identifiers of the previously-last vertex must account for
// this. It returns the identifier that was renumbered to v, or -1 if v was
// the last vertex.
func (g *Graph) RemoveVertex(v int) int {
	g.mustVertex(v)
	for w := range g.adj[v] {
		delete(g.adj[w], v)
		g.nedges--
	}
	g.adj[v] = nil
	last := len(g.vlabels) - 1
	moved := -1
	if v != last {
		// Renumber `last` to `v`.
		g.vlabels[v] = g.vlabels[last]
		g.adj[v] = g.adj[last]
		for w, l := range g.adj[v] {
			delete(g.adj[w], last)
			g.adj[w][v] = l
		}
		moved = last
	}
	g.vlabels = g.vlabels[:last]
	g.adj = g.adj[:last]
	return moved
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int {
	g.mustVertex(v)
	return len(g.adj[v])
}

// Neighbors returns the sorted neighbor identifiers of v.
func (g *Graph) Neighbors(v int) []int {
	g.mustVertex(v)
	out := make([]int, 0, len(g.adj[v]))
	for w := range g.adj[v] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// NeighborSet returns the adjacency map of v (neighbor -> edge label). The
// returned map is the graph's internal storage and must not be mutated.
func (g *Graph) NeighborSet(v int) map[int]string {
	g.mustVertex(v)
	return g.adj[v]
}

// Edges returns all edges in a deterministic order (sorted by U then V),
// with U < V in each edge.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.nedges)
	for u := range g.adj {
		for v, l := range g.adj[u] {
			if u < v {
				out = append(out, Edge{U: u, V: v, Label: l})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// VertexLabels returns a copy of the vertex label slice indexed by vertex
// identifier.
func (g *Graph) VertexLabels() []string {
	out := make([]string, len(g.vlabels))
	copy(out, g.vlabels)
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		name:    g.name,
		vlabels: append([]string(nil), g.vlabels...),
		adj:     make([]map[int]string, len(g.adj)),
		nedges:  g.nedges,
	}
	for v, m := range g.adj {
		if len(m) == 0 {
			continue
		}
		cm := make(map[int]string, len(m))
		for w, l := range m {
			cm[w] = l
		}
		c.adj[v] = cm
	}
	return c
}

// Equal reports whether g and h are identical under the identity mapping:
// same order, same vertex labels per identifier, same labeled edges. Use
// Isomorphic for structural equality up to vertex renaming.
func (g *Graph) Equal(h *Graph) bool {
	if g.Order() != h.Order() || g.Size() != h.Size() {
		return false
	}
	for v, l := range g.vlabels {
		if h.vlabels[v] != l {
			return false
		}
	}
	for u := range g.adj {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for v, l := range g.adj[u] {
			if hl, ok := h.adj[u][v]; !ok || hl != l {
				return false
			}
		}
	}
	return true
}

// Validate checks internal consistency (adjacency symmetry, edge count,
// no self-loops) and returns a descriptive error on the first violation.
// It is primarily used by tests and by the codec after parsing.
func (g *Graph) Validate() error {
	if len(g.vlabels) != len(g.adj) {
		return fmt.Errorf("graph %q: %d labels but %d adjacency rows", g.name, len(g.vlabels), len(g.adj))
	}
	count := 0
	for u := range g.adj {
		for v, l := range g.adj[u] {
			if v == u {
				return fmt.Errorf("graph %q: self-loop on %d", g.name, u)
			}
			if v < 0 || v >= len(g.adj) {
				return fmt.Errorf("graph %q: edge {%d,%d} endpoint out of range", g.name, u, v)
			}
			back, ok := g.adj[v][u]
			if !ok {
				return fmt.Errorf("graph %q: edge {%d,%d} missing reverse entry", g.name, u, v)
			}
			if back != l {
				return fmt.Errorf("graph %q: edge {%d,%d} label mismatch %q vs %q", g.name, u, v, l, back)
			}
			count++
		}
	}
	if count%2 != 0 {
		return fmt.Errorf("graph %q: odd directed edge count %d", g.name, count)
	}
	if count/2 != g.nedges {
		return fmt.Errorf("graph %q: edge counter %d disagrees with adjacency %d", g.name, g.nedges, count/2)
	}
	return nil
}

// String renders a compact deterministic description, e.g.
// "g1(V=3,E=2){0:A 1:B 2:C | 0-1:x 1-2:y}".
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(V=%d,E=%d){", g.name, g.Order(), g.Size())
	for v, l := range g.vlabels {
		if v > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%s", v, l)
	}
	b.WriteString(" |")
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, " %d-%d:%s", e.U, e.V, e.Label)
	}
	b.WriteByte('}')
	return b.String()
}
