package graph

import "sort"

// BFS returns the vertices reachable from start in breadth-first order.
func (g *Graph) BFS(start int) []int {
	g.mustVertex(start)
	seen := make([]bool, g.Order())
	order := make([]int, 0, g.Order())
	queue := []int{start}
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return order
}

// DFS returns the vertices reachable from start in depth-first preorder
// (neighbors visited in ascending identifier order).
func (g *Graph) DFS(start int) []int {
	g.mustVertex(start)
	seen := make([]bool, g.Order())
	order := make([]int, 0, g.Order())
	var visit func(int)
	visit = func(v int) {
		seen[v] = true
		order = append(order, v)
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				visit(w)
			}
		}
	}
	visit(start)
	return order
}

// Components returns the connected components as slices of vertex
// identifiers, each sorted ascending, ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.Order())
	var comps [][]int
	for v := 0; v < g.Order(); v++ {
		if seen[v] {
			continue
		}
		comp := g.BFS(v)
		for _, w := range comp {
			seen[w] = true
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g is connected. The empty graph and the
// single-vertex graph are connected.
func (g *Graph) IsConnected() bool {
	if g.Order() <= 1 {
		return true
	}
	return len(g.BFS(0)) == g.Order()
}

// ShortestPathLengths returns BFS hop distances from start; unreachable
// vertices get -1.
func (g *Graph) ShortestPathLengths(start int) []int {
	g.mustVertex(start)
	dist := make([]int, g.Order())
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Diameter returns the longest shortest-path length over all connected
// pairs, or 0 for graphs with fewer than two vertices. Disconnected pairs
// are ignored.
func (g *Graph) Diameter() int {
	max := 0
	for v := 0; v < g.Order(); v++ {
		for _, d := range g.ShortestPathLengths(v) {
			if d > max {
				max = d
			}
		}
	}
	return max
}
