package graph

import (
	"math/rand"
	"testing"
)

// permute returns a copy of g with vertices renamed by a random permutation.
func permute(g *Graph, rng *rand.Rand) *Graph {
	n := g.Order()
	perm := rng.Perm(n)
	out := New(g.Name() + "_perm")
	inv := make([]int, n)
	for i, p := range perm {
		inv[p] = i
	}
	for i := 0; i < n; i++ {
		out.AddVertex(g.VertexLabel(inv[i]))
	}
	for _, e := range g.Edges() {
		out.MustAddEdge(perm[e.U], perm[e.V], e.Label)
	}
	return out
}

func TestIsomorphicSelf(t *testing.T) {
	g := Cycle(5, "A", "x")
	if !Isomorphic(g, g.Clone()) {
		t.Error("graph not isomorphic to its clone")
	}
}

func TestIsomorphicUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := ConnectedErdosRenyi(8, 0.3, []string{"A", "B"}, []string{"x", "y"}, rng)
		h := permute(g, rng)
		if !Isomorphic(g, h) {
			t.Fatalf("trial %d: permuted copy not isomorphic\n%s\n%s", trial, g, h)
		}
	}
}

func TestNonIsomorphicLabels(t *testing.T) {
	g := Path(3, "A", "x")
	h := Path(3, "A", "x")
	h.RelabelVertex(1, "B")
	if Isomorphic(g, h) {
		t.Error("label difference missed")
	}
	h2 := Path(3, "A", "x")
	h2.RelabelEdge(0, 1, "y")
	if Isomorphic(g, h2) {
		t.Error("edge label difference missed")
	}
}

func TestNonIsomorphicStructure(t *testing.T) {
	// Same degree histogram, different structure: two triangles vs 6-cycle.
	g := New("2tri")
	g.AddVertices(6, "A")
	g.MustAddEdge(0, 1, "x")
	g.MustAddEdge(1, 2, "x")
	g.MustAddEdge(0, 2, "x")
	g.MustAddEdge(3, 4, "x")
	g.MustAddEdge(4, 5, "x")
	g.MustAddEdge(3, 5, "x")
	h := Cycle(6, "A", "x")
	if Isomorphic(g, h) {
		t.Error("C6 reported isomorphic to 2xK3")
	}
}

func TestSubgraphIsomorphismBasic(t *testing.T) {
	host := Cycle(6, "A", "x")
	pat := Path(4, "A", "x")
	if !SubgraphIsomorphic(pat, host) {
		t.Error("P4 not found in C6")
	}
	if SubgraphIsomorphic(host, pat) {
		t.Error("C6 found in P4")
	}
}

func TestSubgraphIsomorphismNonInduced(t *testing.T) {
	// Monomorphism: P3 must embed into K3 even though K3 has the extra
	// closing edge (non-induced embedding).
	pat := Path(3, "A", "x")
	host := Complete(3, "A", "x")
	if !SubgraphIsomorphic(pat, host) {
		t.Error("monomorphism P3 -> K3 not found (induced semantics leaked in)")
	}
}

func TestSubgraphIsomorphismLabelSensitive(t *testing.T) {
	host := Path(4, "A", "x")
	pat := Path(2, "A", "y")
	if SubgraphIsomorphic(pat, host) {
		t.Error("edge label mismatch ignored")
	}
	pat2 := Path(2, "B", "x")
	if SubgraphIsomorphic(pat2, host) {
		t.Error("vertex label mismatch ignored")
	}
}

func TestFindSubgraphIsomorphismWitness(t *testing.T) {
	host := New("host")
	host.AddVertex("A") // 0
	host.AddVertex("B") // 1
	host.AddVertex("C") // 2
	host.MustAddEdge(0, 1, "x")
	host.MustAddEdge(1, 2, "y")
	pat := New("pat")
	pat.AddVertex("B")
	pat.AddVertex("C")
	pat.MustAddEdge(0, 1, "y")
	m := FindSubgraphIsomorphism(pat, host)
	if m == nil {
		t.Fatal("no witness found")
	}
	if m[0] != 1 || m[1] != 2 {
		t.Errorf("witness=%v, want [1 2]", m)
	}
	// Check the witness actually embeds pattern edges.
	for _, e := range pat.Edges() {
		hl, ok := host.EdgeLabel(m[e.U], m[e.V])
		if !ok || hl != e.Label {
			t.Errorf("witness does not preserve edge %v", e)
		}
	}
}

func TestSubSupergraphHelpers(t *testing.T) {
	q := Path(3, "A", "x")
	super := Path(5, "A", "x")
	if !IsSubgraphOf(q, super) {
		t.Error("IsSubgraphOf failed")
	}
	if !IsSupergraphOf(super, q) {
		t.Error("IsSupergraphOf failed")
	}
	if IsSubgraphOf(super, q) {
		t.Error("IsSubgraphOf inverted")
	}
}

func TestIsomorphicDisconnected(t *testing.T) {
	g := New("g")
	g.AddVertices(4, "A")
	g.MustAddEdge(0, 1, "x")
	g.MustAddEdge(2, 3, "x")
	rng := rand.New(rand.NewSource(3))
	h := permute(g, rng)
	if !Isomorphic(g, h) {
		t.Error("disconnected isomorphism failed")
	}
}

func TestSubgraphIsomorphicDisconnectedPattern(t *testing.T) {
	pat := New("pat")
	pat.AddVertices(4, "A")
	pat.MustAddEdge(0, 1, "x")
	pat.MustAddEdge(2, 3, "x")
	host := Path(5, "A", "x")
	if !SubgraphIsomorphic(pat, host) {
		t.Error("two disjoint edges not found in P5")
	}
	host2 := Path(3, "A", "x") // only 2 edges sharing a vertex
	if SubgraphIsomorphic(pat, host2) {
		t.Error("two disjoint edges found in P3")
	}
}
