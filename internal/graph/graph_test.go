package graph

import (
	"strings"
	"testing"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	g := New("tri")
	g.AddVertex("A")
	g.AddVertex("B")
	g.AddVertex("C")
	g.MustAddEdge(0, 1, "x")
	g.MustAddEdge(1, 2, "y")
	g.MustAddEdge(0, 2, "z")
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New("empty")
	if g.Order() != 0 || g.Size() != 0 {
		t.Fatalf("empty graph: order=%d size=%d", g.Order(), g.Size())
	}
	if !g.IsConnected() {
		t.Error("empty graph should be connected by convention")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddVertexAndEdge(t *testing.T) {
	g := triangle(t)
	if g.Order() != 3 || g.Size() != 3 {
		t.Fatalf("order=%d size=%d, want 3,3", g.Order(), g.Size())
	}
	if got := g.VertexLabel(1); got != "B" {
		t.Errorf("VertexLabel(1)=%q", got)
	}
	if l, ok := g.EdgeLabel(2, 0); !ok || l != "z" {
		t.Errorf("EdgeLabel(2,0)=%q,%v", l, ok)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New("g")
	g.AddVertices(2, "A")
	if err := g.AddEdge(0, 0, "x"); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5, "x"); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(0, 1, "x"); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(1, 0, "y"); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := triangle(t)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0) failed")
	}
	if g.Size() != 2 {
		t.Errorf("size=%d, want 2", g.Size())
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge still present after removal")
	}
	if g.RemoveEdge(0, 1) {
		t.Error("double removal reported success")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRemoveVertexSwapDelete(t *testing.T) {
	g := triangle(t)
	g.AddVertex("D")
	g.MustAddEdge(3, 0, "w")
	moved := g.RemoveVertex(1) // last vertex (3, "D") is renumbered to 1
	if moved != 3 {
		t.Errorf("moved=%d, want 3", moved)
	}
	if g.Order() != 3 {
		t.Fatalf("order=%d, want 3", g.Order())
	}
	if g.VertexLabel(1) != "D" {
		t.Errorf("renumbered vertex label=%q, want D", g.VertexLabel(1))
	}
	if l, ok := g.EdgeLabel(1, 0); !ok || l != "w" {
		t.Errorf("edge D-A after renumber: %q,%v", l, ok)
	}
	if g.Size() != 2 { // edges 0-1(x) and 1-2(y) of B deleted; 0-2(z), 0-D(w) remain
		t.Errorf("size=%d, want 2", g.Size())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRemoveLastVertex(t *testing.T) {
	g := triangle(t)
	if moved := g.RemoveVertex(2); moved != -1 {
		t.Errorf("moved=%d, want -1", moved)
	}
	if g.Order() != 2 || g.Size() != 1 {
		t.Errorf("order=%d size=%d, want 2,1", g.Order(), g.Size())
	}
}

func TestRelabel(t *testing.T) {
	g := triangle(t)
	g.RelabelVertex(0, "Z")
	if g.VertexLabel(0) != "Z" {
		t.Error("vertex relabel lost")
	}
	if !g.RelabelEdge(0, 1, "q") {
		t.Fatal("RelabelEdge failed")
	}
	if l, _ := g.EdgeLabel(1, 0); l != "q" {
		t.Errorf("edge label=%q, want q (both directions)", l)
	}
	if g.RelabelEdge(1, 2+5, "q") {
		t.Error("relabel of missing edge reported success")
	}
}

func TestNeighborsSortedAndDegree(t *testing.T) {
	g := New("g")
	g.AddVertices(4, "A")
	g.MustAddEdge(2, 0, "x")
	g.MustAddEdge(2, 3, "x")
	g.MustAddEdge(2, 1, "x")
	nb := g.Neighbors(2)
	want := []int{0, 1, 3}
	if len(nb) != 3 {
		t.Fatalf("neighbors=%v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbors=%v, want %v", nb, want)
		}
	}
	if g.Degree(2) != 3 || g.Degree(0) != 1 {
		t.Errorf("degrees: %d,%d", g.Degree(2), g.Degree(0))
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := triangle(t)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("edges=%v", es)
	}
	for _, e := range es {
		if e.U >= e.V {
			t.Errorf("edge %v not normalized", e)
		}
	}
	if es[0] != (Edge{0, 1, "x"}) || es[1] != (Edge{0, 2, "z"}) || es[2] != (Edge{1, 2, "y"}) {
		t.Errorf("edge order: %v", es)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle(t)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.RelabelVertex(0, "Q")
	c.RemoveEdge(0, 1)
	if g.VertexLabel(0) != "A" || !g.HasEdge(0, 1) {
		t.Error("mutating clone affected original")
	}
}

func TestEqual(t *testing.T) {
	g := triangle(t)
	h := triangle(t)
	if !g.Equal(h) {
		t.Error("identical graphs not Equal")
	}
	h.RelabelEdge(0, 1, "different")
	if g.Equal(h) {
		t.Error("edge-label difference missed")
	}
	h2 := triangle(t)
	h2.RelabelVertex(2, "Q")
	if g.Equal(h2) {
		t.Error("vertex-label difference missed")
	}
}

func TestStringDeterministic(t *testing.T) {
	g := triangle(t)
	s := g.String()
	if !strings.Contains(s, "tri(V=3,E=3)") {
		t.Errorf("String()=%q", s)
	}
	if s != g.String() {
		t.Error("String not deterministic")
	}
}

func TestVertexLabelsCopy(t *testing.T) {
	g := triangle(t)
	ls := g.VertexLabels()
	ls[0] = "mutated"
	if g.VertexLabel(0) != "A" {
		t.Error("VertexLabels returned aliasing slice")
	}
}

func TestMustVertexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid vertex")
		}
	}()
	New("g").VertexLabel(0)
}
