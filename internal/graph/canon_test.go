package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCanonicalStringInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(1+r.Intn(7), 0.4, []string{"A", "B"}, []string{"x", "y"}, r)
		return CanonicalString(g) == CanonicalString(permute(g, r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalEqualMatchesVF2(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(1+r.Intn(6), 0.5, []string{"A", "B"}, []string{"x"}, r)
		h := ErdosRenyi(1+r.Intn(6), 0.5, []string{"A", "B"}, []string{"x"}, r)
		return CanonicalEqual(g, h) == Isomorphic(g, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalStringSeparates(t *testing.T) {
	a := Path(4, "A", "x")
	b := Star(4, "A", "x")
	if CanonicalString(a) == CanonicalString(b) {
		t.Error("P4 and S4 share canonical string")
	}
	c := Path(4, "A", "x")
	c.RelabelEdge(1, 2, "y")
	if CanonicalString(a) == CanonicalString(c) {
		t.Error("edge relabel not reflected")
	}
}

func TestCanonicalStringEmpty(t *testing.T) {
	if CanonicalString(New("e")) != "canon:0:" {
		t.Error("empty canonical string")
	}
}

func TestCanonicalDeduplication(t *testing.T) {
	// Generate permuted duplicates; canonical strings must collapse them.
	rng := rand.New(rand.NewSource(47))
	base := Molecule(7, rng)
	seen := map[string]int{}
	for i := 0; i < 5; i++ {
		seen[CanonicalString(permute(base, rng))]++
	}
	if len(seen) != 1 {
		t.Errorf("permuted copies produced %d distinct canonical strings", len(seen))
	}
}

func TestWLColorsStable(t *testing.T) {
	g := Cycle(6, "A", "x")
	colors, rounds := WLColors(g)
	// All vertices of C6 are equivalent: one color class.
	for _, c := range colors[1:] {
		if c != colors[0] {
			t.Fatalf("C6 colors=%v", colors)
		}
	}
	if rounds < 1 {
		t.Error("no rounds executed")
	}
}

func TestWLDistinguishesLabels(t *testing.T) {
	g := Path(4, "A", "x")
	colors, _ := WLColors(g)
	// Path endpoints vs middle vertices must differ.
	if colors[0] == colors[1] {
		t.Errorf("endpoint and interior share a color: %v", colors)
	}
	if colors[0] != colors[3] || colors[1] != colors[2] {
		t.Errorf("symmetric vertices differ: %v", colors)
	}
}

func TestWLEquivalentNecessaryForIso(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ConnectedErdosRenyi(3+r.Intn(7), 0.35, []string{"A", "B"}, []string{"x", "y"}, r)
		return WLEquivalent(g, permute(g, r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestWLClassicBlindSpot(t *testing.T) {
	// C6 vs 2xC3 (all labels equal) is the classic pair that 1-WL cannot
	// distinguish; document the limitation and confirm the exact matcher
	// does distinguish them.
	c6 := Cycle(6, "A", "x")
	twoTriangles := New("2tri")
	twoTriangles.AddVertices(6, "A")
	twoTriangles.MustAddEdge(0, 1, "x")
	twoTriangles.MustAddEdge(1, 2, "x")
	twoTriangles.MustAddEdge(0, 2, "x")
	twoTriangles.MustAddEdge(3, 4, "x")
	twoTriangles.MustAddEdge(4, 5, "x")
	twoTriangles.MustAddEdge(3, 5, "x")
	if !WLEquivalent(c6, twoTriangles) {
		t.Log("note: WL separated C6 from 2xC3 (stronger than classic 1-WL)")
	}
	if Isomorphic(c6, twoTriangles) {
		t.Error("exact matcher confused C6 with 2xC3")
	}
	if CanonicalEqual(c6, twoTriangles) {
		t.Error("canonical form confused C6 with 2xC3")
	}
}

func TestWLSeparatesDifferentDegrees(t *testing.T) {
	if WLEquivalent(Path(4, "A", "x"), Star(4, "A", "x")) {
		t.Error("WL failed to separate P4 from S4")
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	g := BarabasiAlbert(30, 2, []string{"A"}, []string{"x"}, rng)
	if g.Order() != 30 {
		t.Errorf("order=%d", g.Order())
	}
	// Edges: C(3,2)=3 seed + 2*(30-3) attachments.
	if want := 3 + 2*27; g.Size() != want {
		t.Errorf("size=%d, want %d", g.Size(), want)
	}
	if !g.IsConnected() {
		t.Error("BA graph disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for n < m+1")
		}
	}()
	BarabasiAlbert(2, 2, []string{"A"}, []string{"x"}, rand.New(rand.NewSource(1)))
}
