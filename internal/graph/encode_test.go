package graph

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLGFRoundTrip(t *testing.T) {
	g := New("mol 1") // name with space is written as-is; parse keeps first token
	g.SetName("mol1")
	g.AddVertex("C")
	g.AddVertex("N")
	g.AddVertex("O")
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(1, 2, "=")
	s := MarshalLGF(g)
	got, err := ParseLGF(s)
	if err != nil {
		t.Fatalf("ParseLGF: %v\n%s", err, s)
	}
	if !g.Equal(got) {
		t.Errorf("round-trip mismatch:\n%s\n%s", g, got)
	}
}

func TestLGFQuotedLabels(t *testing.T) {
	g := New("g")
	g.AddVertex("has space")
	g.AddVertex("")
	g.AddVertex("pct%sign")
	g.MustAddEdge(0, 1, "tab\there")
	s := MarshalLGF(g)
	got, err := ParseLGF(s)
	if err != nil {
		t.Fatalf("ParseLGF: %v\n%s", err, s)
	}
	if got.VertexLabel(0) != "has space" || got.VertexLabel(1) != "" || got.VertexLabel(2) != "pct%sign" {
		t.Errorf("labels: %v", got.VertexLabels())
	}
	if l, _ := got.EdgeLabel(0, 1); l != "tab\there" {
		t.Errorf("edge label %q", l)
	}
}

func TestLGFMultipleGraphs(t *testing.T) {
	src := `
# two graphs
graph a
v 0 A
v 1 B
e 0 1 x

graph b
v 0 C
`
	gs, err := ReadLGF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 || gs[0].Name() != "a" || gs[1].Name() != "b" {
		t.Fatalf("parsed %d graphs", len(gs))
	}
	if gs[0].Size() != 1 || gs[1].Order() != 1 {
		t.Error("graph contents wrong")
	}
}

func TestLGFErrors(t *testing.T) {
	cases := []string{
		"v 0 A",                        // vertex before graph
		"graph g\nv 1 A",               // non-dense id
		"graph g\nv 0 A\ne 0 0 x",      // self loop
		"graph g\nv 0 A\ne 0 1 x",      // missing endpoint
		"graph g\nbogus 1 2",           // unknown directive
		"graph",                        // missing name
		"graph g\nv 0 A\nv 1 B\ne 0 1", // short edge line
		"graph g\nv zero A",            // bad id
	}
	for _, src := range cases {
		if _, err := ReadLGF(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := Molecule(12, rng)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var got Graph
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(&got) {
		t.Errorf("JSON round-trip mismatch")
	}
}

func TestJSONRejectsBadEdges(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"name":"g","vertices":["A"],"edges":[{"u":0,"v":5,"label":"x"}]}`), &g); err == nil {
		t.Error("bad edge accepted")
	}
}

func TestLGFRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(2+r.Intn(10), 0.4, []string{"A", "B", "C"}, []string{"x", "y"}, r)
		got, err := ParseLGF(MarshalLGF(g))
		return err == nil && g.Equal(got)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
