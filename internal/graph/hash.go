package graph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// QueryHash returns a stable identifier for g suitable as a cache key
// for query results. It never collides for structurally different
// graphs, so a cache keyed by it can never serve one query's results as
// another's.
//
// Small graphs (up to canonHashOrder vertices) are hashed from their
// exact canonical string, making the hash a complete isomorphism
// invariant: a renumbered but isomorphic query reuses the same cache
// entry. The canonical search is budgeted — highly symmetric graphs
// (e.g. a uniformly-labeled K10) would otherwise take exponential time
// on a synchronous, unauthenticated code path. Budget-exhausted and
// larger graphs are hashed from their exact literal encoding instead —
// still deterministic and collision-free, but vertex-order-sensitive,
// so isomorphic re-numberings of such queries hash apart and merely
// miss the cache. (A WL-signature fallback would stay order-invariant
// but collides with certainty on regular graphs — e.g. one 12-cycle vs
// two 6-cycles — which a cache must never risk.)
const (
	canonHashOrder  = 10
	canonHashBudget = 50000 // search nodes; sub-millisecond cutoff
)

func QueryHash(g *Graph) string {
	var payload string
	if c, ok := canonPayload(g); ok {
		payload = c
	} else {
		payload = fmt.Sprintf("exact|%d|%d|%s", g.Order(), g.Size(), literalEncoding(g))
	}
	sum := sha256.Sum256([]byte(payload))
	return hex.EncodeToString(sum[:16])
}

// QueryHashCanonical reports whether QueryHash derives g's hash from
// its canonical form — i.e. whether the hash is a full isomorphism
// invariant for g. Large or budget-exhausting graphs fall back to the
// literal (vertex-order-sensitive) encoding and return false. Tests use
// this to know when isomorphic renumberings are guaranteed to collide.
func QueryHashCanonical(g *Graph) bool {
	_, ok := canonPayload(g)
	return ok
}

func canonPayload(g *Graph) (string, bool) {
	if g.Order() > canonHashOrder {
		return "", false
	}
	c, ok := CanonicalStringBudget(g, canonHashBudget)
	if !ok {
		return "", false
	}
	return "canon|" + c, true
}

// literalEncoding renders g exactly as stored (vertex labels in index
// order, edges sorted), excluding the name. Equal encodings imply equal
// graphs.
func literalEncoding(g *Graph) string {
	var b strings.Builder
	for v := 0; v < g.Order(); v++ {
		fmt.Fprintf(&b, "v%q", g.VertexLabel(v))
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "e%d,%d%q", e.U, e.V, e.Label)
	}
	return b.String()
}
