package gdb_test

import (
	"context"
	"fmt"
	"testing"

	"skygraph/internal/gdb"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
	"skygraph/internal/testutil"
)

// stageSums folds a trace's wire form into totals for assertions.
func stageSums(stages []gdb.TraceStage) (pruned, exactPairs, exactPruned int, byName map[string]gdb.TraceStage) {
	byName = make(map[string]gdb.TraceStage, len(stages))
	for _, s := range stages {
		byName[s.Stage] = s
		pruned += s.Pruned
		if s.Stage == "exact" {
			exactPairs, exactPruned = s.Pairs, s.Pruned
		}
	}
	return pruned, exactPairs, exactPruned, byName
}

// requireTraceConsistent asserts the documented trace/stats invariants:
// per-stage pruned counts sum to Stats.Pruned, and the exact stage's
// pairs minus its pruned equal Stats.Evaluated.
func requireTraceConsistent(t *testing.T, label string, tr *gdb.QueryTrace, stats gdb.QueryStats, dbLen int) {
	t.Helper()
	stages := tr.Stages()
	if len(stages) == 0 {
		t.Fatalf("%s: empty trace", label)
	}
	pruned, exactPairs, exactPruned, byName := stageSums(stages)
	if pruned != stats.Pruned {
		t.Fatalf("%s: stage pruned sum %d != stats.Pruned %d (stages %+v)", label, pruned, stats.Pruned, stages)
	}
	if exactPairs-exactPruned != stats.Evaluated {
		t.Fatalf("%s: exact pairs %d - pruned %d != stats.Evaluated %d (stages %+v)",
			label, exactPairs, exactPruned, stats.Evaluated, stages)
	}
	if stats.Evaluated+stats.Pruned != dbLen {
		t.Fatalf("%s: evaluated %d + pruned %d != %d graphs", label, stats.Evaluated, stats.Pruned, dbLen)
	}
	if stats.PivotPruned > 0 {
		if p, ok := byName["pivot"]; !ok || p.Pruned != stats.PivotPruned {
			t.Fatalf("%s: pivot stage %+v disagrees with stats.PivotPruned %d", label, byName["pivot"], stats.PivotPruned)
		}
	}
	for _, s := range stages {
		if s.Pairs < 0 || s.Pruned < 0 || s.DurationMS < 0 {
			t.Fatalf("%s: negative stage counters: %+v", label, s)
		}
	}
}

// TestTraceSkylineConsistent: on pruned sharded skyline queries the
// per-stage attribution must reconcile exactly with the query's
// evaluated/pruned stats — the acceptance invariant of the trace layer.
func TestTraceSkylineConsistent(t *testing.T) {
	gs := testutil.SeededGraphs(7, 30)
	queries := testutil.SeededQueries(107, gs, 3)
	for _, shards := range []int{1, 3} {
		sh := testutil.NewSharded(t, shards, gs)
		sh.EnablePivots(pivot.Config{Pivots: 3})
		sh.WaitPivots()
		for qi, q := range queries {
			tr := gdb.NewQueryTrace()
			opts := prunedOpts(true)
			opts.Trace = tr
			res, err := sh.SkylineQueryContext(context.Background(), q, opts)
			if err != nil {
				t.Fatalf("shards=%d q=%d: %v", shards, qi, err)
			}
			label := fmt.Sprintf("skyline shards=%d q=%d", shards, qi)
			requireTraceConsistent(t, label, tr, res.Stats, len(gs))
			if _, _, _, byName := stageSums(tr.Stages()); byName["merge"].Pairs == 0 {
				t.Fatalf("%s: sharded query recorded no merge stage", label)
			}
		}
	}
}

// TestTraceRankedConsistent: the same invariant on best-first top-k and
// range scans, where the exact stage also excludes candidates via
// threshold-fed decision runs.
func TestTraceRankedConsistent(t *testing.T) {
	gs := testutil.SeededGraphs(9, 30)
	queries := testutil.SeededQueries(109, gs, 3)
	m := measure.DistEd{}
	for _, shards := range []int{1, 3} {
		sh := testutil.NewSharded(t, shards, gs)
		sh.EnablePivots(pivot.Config{Pivots: 3})
		sh.WaitPivots()
		for qi, q := range queries {
			tr := gdb.NewQueryTrace()
			opts := prunedOpts(true)
			opts.Trace = tr
			res, err := sh.TopKQueryContext(context.Background(), q, m, 5, opts)
			if err != nil {
				t.Fatalf("topk shards=%d q=%d: %v", shards, qi, err)
			}
			requireTraceConsistent(t, fmt.Sprintf("topk shards=%d q=%d", shards, qi), tr, res.Stats, len(gs))

			tr = gdb.NewQueryTrace()
			opts.Trace = tr
			rres, err := sh.RangeQueryContext(context.Background(), q, m, 6, opts)
			if err != nil {
				t.Fatalf("range shards=%d q=%d: %v", shards, qi, err)
			}
			requireTraceConsistent(t, fmt.Sprintf("range shards=%d q=%d", shards, qi), tr, rres.Stats, len(gs))
		}
	}
}

// TestTraceUnprunedExactOnly: without pruning every pair is exact-stage
// work; the trace must say so and nothing else (no bound/pivot/refine
// stages ran).
func TestTraceUnprunedExactOnly(t *testing.T) {
	gs := testutil.SeededGraphs(13, 16)
	sh := testutil.NewSharded(t, 2, gs)
	q := testutil.SeededQueries(113, gs, 1)[0]

	tr := gdb.NewQueryTrace()
	opts := prunedOpts(false)
	opts.Trace = tr
	res, err := sh.SkylineQueryContext(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, exactPairs, _, byName := stageSums(tr.Stages())
	if exactPairs != res.Stats.Evaluated || exactPairs != len(gs) {
		t.Fatalf("unpruned skyline: exact pairs %d, want evaluated %d == %d", exactPairs, res.Stats.Evaluated, len(gs))
	}
	for _, st := range []string{"bound", "pivot", "refine"} {
		if _, ok := byName[st]; ok {
			t.Fatalf("unpruned skyline recorded %s stage: %+v", st, byName[st])
		}
	}
}

// TestTraceNilIsFree: a nil trace must not change results and must stay
// empty (the Observe no-op contract).
func TestTraceNilIsFree(t *testing.T) {
	var tr *gdb.QueryTrace
	if got := tr.Stages(); got != nil {
		t.Fatalf("nil trace Stages() = %+v, want nil", got)
	}
	tr.Observe(gdb.StageExact, 0, 1, 1) // must not panic
}
