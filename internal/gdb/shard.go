package gdb

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"time"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
	"skygraph/internal/skyline"
	"skygraph/internal/topk"
	"skygraph/internal/vector"
)

// Sharded partitions a graph database across N independent DB shards by
// a stable hash of the graph name. Each shard keeps its own storage,
// histogram index and generation counter, so a mutation invalidates
// only its own shard's cached vector tables. Queries evaluate per shard
// in parallel and merge: the skyline of a union is the skyline of the
// per-partition skylines (the divide-and-conquer identity), top-k
// merges per-shard heaps, and range results concatenate. Answers are
// identical — including order — to a single unsharded DB holding the
// same graphs, because Sharded tracks the global insertion order and
// sorts merged results by it.
type Sharded struct {
	shards []*DB

	mu    sync.RWMutex
	order []string       // global insertion order of live graph names
	pos   map[string]int // name -> index in order

	// pivotCfg and vectorCfg remember the per-shard index
	// configurations (nil = disabled) and memo the shared score memo,
	// so Reshard can carry all three over to the new shard set.
	pivotCfg  *pivot.Config
	vectorCfg *vector.Config
	memo      *ScoreMemo
}

// NewSharded returns an empty database split across n shards (n < 1 is
// treated as 1).
func NewSharded(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	sh := &Sharded{shards: make([]*DB, n), pos: make(map[string]int)}
	for i := range sh.shards {
		sh.shards[i] = New()
	}
	return sh
}

// NumShards returns the shard count.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Shard returns the i-th shard's DB. Callers must not mutate it
// directly; route inserts and deletes through Sharded so the global
// order stays consistent.
func (sh *Sharded) Shard(i int) *DB { return sh.shards[i] }

// ShardFor returns the shard owning the given graph name (stable FNV-1a
// hash, so the mapping survives restarts).
func (sh *Sharded) ShardFor(name string) int {
	if len(sh.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(sh.shards)))
}

// Insert routes g to its shard. Name uniqueness is global for free:
// a duplicate name always hashes to the same shard, which rejects it.
// sh.mu is held across both the shard mutation and the order update so
// a concurrent Delete of the same name cannot interleave between them
// and leave the global order out of sync with the shards; queries never
// take sh.mu (only the rank snapshot does, briefly), so mutations
// serializing against each other costs nothing on the hot path.
func (sh *Sharded) Insert(g *graph.Graph) error {
	return sh.InsertKeyed(g, "")
}

// InsertKeyed is Insert with the client's idempotency key threaded
// into the write-ahead record (durable evidence the key was accepted).
func (sh *Sharded) InsertKeyed(g *graph.Graph, key string) error {
	_, _, err := sh.InsertKeyedGen(g, key)
	return err
}

// InsertKeyedGen is InsertKeyed returning the owning shard and the
// generation the insert produced on it: the (shard, gen) evidence a
// delta-maintaining cache uses to upgrade entries in place instead of
// invalidating them.
func (sh *Sharded) InsertKeyedGen(g *graph.Graph, key string) (shard int, gen uint64, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	shard = sh.ShardFor(g.Name())
	gen, err = sh.shards[shard].InsertKeyedGen(g, key)
	if err != nil {
		return shard, 0, err
	}
	sh.pos[g.Name()] = len(sh.order)
	sh.order = append(sh.order, g.Name())
	return shard, gen, nil
}

// InsertAll inserts every graph, stopping at the first error.
func (sh *Sharded) InsertAll(gs []*graph.Graph) error {
	for _, g := range gs {
		if err := sh.Insert(g); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the named graph from its owning shard.
func (sh *Sharded) Get(name string) (*graph.Graph, bool) {
	return sh.shards[sh.ShardFor(name)].Get(name)
}

// Delete removes the named graph, reporting whether it existed. Only
// the owning shard's generation bumps. Like Insert, the shard mutation
// and the order update happen under one sh.mu critical section. With a
// Store attached, a failed write-ahead append also reports false (the
// database is unchanged); use DeleteErr to see the error itself.
func (sh *Sharded) Delete(name string) bool {
	ok, err := sh.DeleteErr(name)
	return ok && err == nil
}

// DeleteErr removes the named graph, surfacing write-ahead append
// errors (see DB.DeleteErr).
func (sh *Sharded) DeleteErr(name string) (existed bool, err error) {
	return sh.DeleteKeyedErr(name, "")
}

// DeleteKeyedErr is DeleteErr with the client's idempotency key
// threaded into the write-ahead record.
func (sh *Sharded) DeleteKeyedErr(name, key string) (existed bool, err error) {
	existed, _, _, err = sh.DeleteKeyedGen(name, key)
	return existed, err
}

// DeleteKeyedGen is DeleteKeyedErr returning the owning shard and the
// generation the delete produced on it (0 when nothing was deleted) —
// the delta-maintenance counterpart of InsertKeyedGen.
func (sh *Sharded) DeleteKeyedGen(name, key string) (existed bool, shard int, gen uint64, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	shard = sh.ShardFor(name)
	existed, gen, err = sh.shards[shard].DeleteKeyedGen(name, key)
	if !existed || err != nil {
		return existed, shard, gen, err
	}
	if p, ok := sh.pos[name]; ok {
		sh.order = append(sh.order[:p], sh.order[p+1:]...)
		delete(sh.pos, name)
		for j := p; j < len(sh.order); j++ {
			sh.pos[sh.order[j]] = j
		}
	}
	return true, shard, gen, nil
}

// SetStore attaches one write-ahead store to every shard. One SHARED
// store, not one per shard: the shard routing is a pure function of
// the graph name, so a single untagged log replays correctly under any
// shard count. sh.mu is held across every logged mutation, so append
// order in the store equals the global mutation order. Attach AFTER
// recovery replay; pass nil to detach.
func (sh *Sharded) SetStore(st Store) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, db := range sh.shards {
		db.SetStore(st)
	}
}

// insertPreservingSeq inserts g into its shard keeping a previously
// minted insert sequence — the shared primitive of Reshard (moving
// graphs between shard sets) and recovery replay (rebuilding state from
// snapshot and WAL records that carry the persisted sequences).
func (sh *Sharded) insertPreservingSeq(g *graph.Graph, seq uint64) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, err := sh.shards[sh.ShardFor(g.Name())].insertWithSeq(g, seq, ""); err != nil {
		return err
	}
	sh.pos[g.Name()] = len(sh.order)
	sh.order = append(sh.order, g.Name())
	return nil
}

// Len returns the total number of stored graphs.
func (sh *Sharded) Len() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.order)
}

// Names returns all graph names in global insertion order.
func (sh *Sharded) Names() []string {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]string(nil), sh.order...)
}

// Graphs returns all stored graphs in global insertion order.
func (sh *Sharded) Graphs() []*graph.Graph {
	var out []*graph.Graph
	for _, n := range sh.Names() {
		if g, ok := sh.Get(n); ok {
			out = append(out, g)
		}
	}
	return out
}

// EnablePivots attaches one metric pivot index per shard (each shard
// indexes exactly its own graphs — sharded pruning stays per shard, as
// with the signature bounds). Stored so Reshard re-enables the index
// on the new shard set.
func (sh *Sharded) EnablePivots(cfg pivot.Config) {
	sh.mu.Lock()
	sh.pivotCfg = &cfg
	sh.mu.Unlock()
	for _, db := range sh.shards {
		db.EnablePivots(cfg)
	}
}

// EnableVector attaches one vector candidate tier per shard (each
// shard partitions exactly its own graphs, so sharded cell skipping
// stays per shard, like the signature and pivot tiers). Stored so
// Reshard re-enables the tier on the new shard set. Enable pivots
// first to give the embeddings their pivot-midpoint block.
func (sh *Sharded) EnableVector(cfg vector.Config) {
	sh.mu.Lock()
	sh.vectorCfg = &cfg
	sh.mu.Unlock()
	for _, db := range sh.shards {
		db.EnableVector(cfg)
	}
}

// EnableScoreMemo attaches one shared cross-query score memo to every
// shard (entries are keyed by process-unique insert sequences, so
// sharing one LRU across shards is safe and pools its capacity where
// the traffic is).
func (sh *Sharded) EnableScoreMemo(capacity int) *ScoreMemo {
	sh.mu.Lock()
	if sh.memo == nil {
		sh.memo = NewScoreMemo(capacity)
	}
	m := sh.memo
	sh.mu.Unlock()
	for _, db := range sh.shards {
		db.SetScoreMemo(m)
	}
	return m
}

// Memo returns the shared score memo (nil when disabled).
func (sh *Sharded) Memo() *ScoreMemo {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.memo
}

// WaitPivots blocks until every shard's pivot index has computed all
// scheduled distance columns (tests and benchmarks).
func (sh *Sharded) WaitPivots() {
	for _, db := range sh.shards {
		if ix := db.PivotIndex(); ix != nil {
			ix.Wait()
		}
	}
}

// WaitVector blocks until every shard's vector index has drained its
// background centroid rebuilds (tests and benchmarks; serving never
// needs it — the previous partition answers until the swap).
func (sh *Sharded) WaitVector() {
	for _, db := range sh.shards {
		if ix := db.VectorIndex(); ix != nil {
			ix.WaitRebuild()
		}
	}
}

// Reshard redistributes the database across n shards: a new Sharded
// holding the same graphs in the same global insertion order, with the
// pivot index configuration and the shared score memo carried over —
// every new shard's index re-selects pivots over its own graphs and
// rebuilds its distance columns in the background (WaitPivots blocks
// until they are ready), and graphs KEEP their insert sequences (a
// reshard moves values, it does not change them), so existing memo
// entries stay reachable. The receiver is left untouched; callers must
// quiesce mutations for the duration or the new database may miss
// them.
func (sh *Sharded) Reshard(n int) (*Sharded, error) {
	out := NewSharded(n)
	sh.mu.RLock()
	cfg, vcfg, memo := sh.pivotCfg, sh.vectorCfg, sh.memo
	sh.mu.RUnlock()
	if cfg != nil {
		out.EnablePivots(*cfg)
	}
	if vcfg != nil {
		out.EnableVector(*vcfg)
	}
	if memo != nil {
		out.mu.Lock()
		out.memo = memo
		out.mu.Unlock()
		for _, db := range out.shards {
			db.SetScoreMemo(memo)
		}
	}
	for _, name := range sh.Names() {
		src := sh.shards[sh.ShardFor(name)]
		g, ok := src.Get(name)
		if !ok {
			continue // deleted mid-reshard; the caller broke quiescence
		}
		seq, _ := src.seqOf(name)
		if err := out.insertPreservingSeq(g, seq); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ShardGeneration returns shard i's generation counter.
func (sh *Sharded) ShardGeneration(i int) uint64 { return sh.shards[i].Generation() }

// Generations returns every shard's generation counter.
func (sh *Sharded) Generations() []uint64 {
	out := make([]uint64, len(sh.shards))
	for i, db := range sh.shards {
		out[i] = db.Generation()
	}
	return out
}

// Generation returns the sum of the shard generations: a single counter
// that changes on every successful mutation anywhere in the database.
func (sh *Sharded) Generation() uint64 {
	var sum uint64
	for _, db := range sh.shards {
		sum += db.Generation()
	}
	return sum
}

// Stats aggregates statistics across shards. Distinct label counts are
// unioned, not summed.
func (sh *Sharded) Stats() Stats {
	s := Stats{}
	vl, el := map[string]bool{}, map[string]bool{}
	first := true
	for _, db := range sh.shards {
		ds, svl, sel := db.statsAndLabels()
		if ds.Graphs == 0 {
			continue
		}
		s.Graphs += ds.Graphs
		s.Vertices += ds.Vertices
		s.Edges += ds.Edges
		if first || ds.MinSize < s.MinSize {
			s.MinSize = ds.MinSize
		}
		if first || ds.MaxSize > s.MaxSize {
			s.MaxSize = ds.MaxSize
		}
		first = false
		for l := range svl {
			vl[l] = true
		}
		for l := range sel {
			el[l] = true
		}
	}
	s.VertexLabels, s.EdgeLabels = len(vl), len(el)
	return s
}

// shardedWorkers resolves the per-shard pair-evaluation parallelism:
// an explicit value is taken as-is (per shard); the default spreads
// GOMAXPROCS across the shards evaluating concurrently.
func (sh *Sharded) shardedWorkers(w int) int {
	if w > 0 {
		return w
	}
	n := len(sh.shards)
	return (runtime.GOMAXPROCS(0) + n - 1) / n
}

// VectorTables evaluates q against every shard concurrently, returning
// one VectorTable per shard (indexed by shard). opts.Workers is the
// pair-evaluation parallelism per shard; 0 spreads GOMAXPROCS across
// the shards. The first shard error aborts the whole evaluation.
//
// This is the library-level entry point (every shard evaluates, so the
// flat worker spread is right). The serving layer instead fetches shard
// tables individually through its cache and sizes workers by the
// shards actually evaluating — if you change evaluation semantics
// here, check Server.tables keeps matching; the equivalence harness
// covers both paths.
//
// opts.Prune applies per shard: each shard filters against its own
// candidates only, so sharded pruning is (at worst) less aggressive
// than unsharded pruning, never incorrect — cross-shard dominance is
// re-established by the skyline merge.
func (sh *Sharded) VectorTables(ctx context.Context, q *graph.Graph, opts QueryOptions) ([]*VectorTable, error) {
	opts.Workers = sh.shardedWorkers(opts.Workers)
	if opts.QueryHash == "" && sh.Memo() != nil {
		// Canonicalize once for all shards; each shard's memo keys use it.
		opts.QueryHash = graph.QueryHash(q)
	}
	tables := make([]*VectorTable, len(sh.shards))
	errs := make([]error, len(sh.shards))
	var wg sync.WaitGroup
	for i, db := range sh.shards {
		wg.Add(1)
		go func(i int, db *DB) {
			defer wg.Done()
			tables[i], errs[i] = db.VectorTable(ctx, q, opts)
		}(i, db)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return tables, nil
}

// byRank orders by global insertion rank; names no longer present
// (deleted since the tables were built) sort last, by name, so the
// order is still deterministic.
func byRank(rank map[string]int, a, b string) bool {
	ra, aok := rank[a]
	rb, bok := rank[b]
	if aok != bok {
		return aok
	}
	if !aok {
		return a < b
	}
	return ra < rb
}

// sortPointsByRank restores global insertion order. The rank map is
// read in place under the read lock rather than copied — the sort is
// O(result·log result), not O(database) — and a single shard's results
// are already in insertion order, so nothing to do there.
func (sh *Sharded) sortPointsByRank(pts []skyline.Point) {
	if len(sh.shards) == 1 {
		return
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sort.SliceStable(pts, func(i, j int) bool { return byRank(sh.pos, pts[i].ID, pts[j].ID) })
}

// SortItemsByRank restores global insertion order on scalar result
// rows (used by the serving layer to order merged ranked answers; the
// table merge paths call it internally).
func (sh *Sharded) SortItemsByRank(items []topk.Item) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sort.SliceStable(items, func(i, j int) bool { return byRank(sh.pos, items[i].ID, items[j].ID) })
}

// sortItemsByRank is sortPointsByRank for scalar result rows.
func (sh *Sharded) sortItemsByRank(items []topk.Item) {
	if len(sh.shards) == 1 {
		return
	}
	sh.SortItemsByRank(items)
}

// MergeTables concatenates per-shard tables into the full global vector
// table in insertion order — exactly the Points of an unsharded
// VectorTable over the same graphs (for pruned tables: the evaluated
// survivors only).
func (sh *Sharded) MergeTables(tables []*VectorTable) []skyline.Point {
	out := []skyline.Point{}
	for _, t := range tables {
		out = append(out, t.Points...)
	}
	sh.sortPointsByRank(out)
	return out
}

// MergeSkyline computes each shard's local skyline and cross-filters
// them with the divide-and-conquer combiner, returning the global
// skyline in insertion order. Only local skyline members cross shard
// boundaries — the merge never re-examines dominated points.
func (sh *Sharded) MergeSkyline(tables []*VectorTable, alg skyline.Algorithm) []skyline.Point {
	parts := make([][]skyline.Point, len(tables))
	for i, t := range tables {
		parts[i] = t.Skyline(alg)
	}
	merged := skyline.Merge(parts)
	sh.sortPointsByRank(merged)
	return merged
}

// MergeTopK merges per-shard top-k heaps: each shard contributes its k
// best rows under m, and one final selection over the (at most
// k*shards) candidates yields the global top-k in the deterministic
// (score, ID) order of topk.Select.
func (sh *Sharded) MergeTopK(tables []*VectorTable, m measure.Measure, k int) ([]topk.Item, error) {
	if k < 1 {
		return nil, fmt.Errorf("gdb: k must be >= 1")
	}
	var all []topk.Item
	for _, t := range tables {
		items, err := t.TopK(m, k)
		if err != nil {
			return nil, err
		}
		all = append(all, items...)
	}
	return topk.Select(all, k), nil
}

// MergeRange concatenates per-shard range results and restores global
// insertion order.
func (sh *Sharded) MergeRange(tables []*VectorTable, m measure.Measure, radius float64) ([]topk.Item, error) {
	var all []topk.Item
	for _, t := range tables {
		items, err := t.Range(m, radius)
		if err != nil {
			return nil, err
		}
		all = append(all, items...)
	}
	sh.sortItemsByRank(all)
	return all, nil
}

// tableRows counts the rows entering a table merge (the merge stage's
// pair count).
func tableRows(tables []*VectorTable) int {
	n := 0
	for _, t := range tables {
		n += len(t.Points)
	}
	return n
}

// mergedStats folds per-shard table stats into query stats.
func mergedStats(tables []*VectorTable, start time.Time) QueryStats {
	s := QueryStats{Duration: time.Since(start)}
	for _, t := range tables {
		s.Evaluated += len(t.Points)
		s.Pruned += t.Pruned
		s.Inexact += t.Inexact
		s.PivotDists += t.PivotDists
		s.PivotPruned += t.PivotPruned
		s.MemoHits += t.MemoHits
		s.MemoMisses += t.MemoMisses
		s.VectorCells += t.VectorCells
		s.VectorSkipped += t.VectorSkipped
		s.VectorFallbacks += t.VectorFallbacks
	}
	return s
}

// SkylineQueryContext is the sharded analogue of DB.SkylineQueryContext:
// per-shard parallel evaluation and local skylines, merged.
func (sh *Sharded) SkylineQueryContext(ctx context.Context, q *graph.Graph, opts QueryOptions) (SkylineResult, error) {
	start := time.Now()
	tables, err := sh.VectorTables(ctx, q, opts)
	if err != nil {
		return SkylineResult{}, err
	}
	var mstart time.Time
	if opts.Trace != nil {
		mstart = time.Now()
	}
	res := SkylineResult{
		Skyline: sh.MergeSkyline(tables, opts.Algorithm),
		All:     sh.MergeTables(tables),
		Stats:   mergedStats(tables, start),
	}
	if opts.Trace != nil {
		opts.Trace.Observe(StageMerge, time.Since(mstart), len(res.All), 0)
	}
	return res, nil
}

// withMeasure ensures m is one of the basis columns so table-derived
// answers can rank by it (mirrors the server's basis extension).
func withMeasure(opts QueryOptions, m measure.Measure) QueryOptions {
	basis := opts.Basis
	if basis == nil {
		basis = measure.Default()
	}
	for _, b := range basis {
		if b.Name() == m.Name() {
			opts.Basis = basis
			return opts
		}
	}
	opts.Basis = append(append([]measure.Measure{}, basis...), m)
	return opts
}

// TopKQueryContext answers a single-measure top-k query. With
// opts.Prune set (and a built-in measure), every shard runs the
// best-first bound-index scan of ranked.go concurrently against ONE
// shared collector, so the k-th best score seen anywhere prunes
// candidates everywhere — no shard builds a full table. Otherwise
// per-shard complete tables are built and heap-merged. Items are
// identical either way.
func (sh *Sharded) TopKQueryContext(ctx context.Context, q *graph.Graph, m measure.Measure, k int, opts QueryOptions) (TopKResult, error) {
	if k < 1 {
		return TopKResult{}, fmt.Errorf("gdb: k must be >= 1")
	}
	start := time.Now()
	if opts.Prune && measure.Rankable(m) {
		run := NewRankedTopK(m, k)
		stats, err := sh.evalRankedShards(ctx, run, q, opts)
		if err != nil {
			return TopKResult{}, err
		}
		stats.Duration = time.Since(start)
		return TopKResult{Items: run.Items(), Stats: stats}, nil
	}
	opts.Prune = false // table ranking needs every row
	tables, err := sh.VectorTables(ctx, q, withMeasure(opts, m))
	if err != nil {
		return TopKResult{}, err
	}
	var mstart time.Time
	if opts.Trace != nil {
		mstart = time.Now()
	}
	items, err := sh.MergeTopK(tables, m, k)
	if err != nil {
		return TopKResult{}, err
	}
	if opts.Trace != nil {
		opts.Trace.Observe(StageMerge, time.Since(mstart), tableRows(tables), 0)
	}
	return TopKResult{Items: items, Stats: mergedStats(tables, start)}, nil
}

// RangeQueryContext answers a single-measure range query. With
// opts.Prune set (and a built-in measure), shards run the best-first
// scan with the radius as a fixed threshold instead of building full
// tables; items are identical either way, in global insertion order.
func (sh *Sharded) RangeQueryContext(ctx context.Context, q *graph.Graph, m measure.Measure, radius float64, opts QueryOptions) (RangeResult, error) {
	start := time.Now()
	if opts.Prune && measure.Rankable(m) {
		run := NewRankedRange(m, radius)
		stats, err := sh.evalRankedShards(ctx, run, q, opts)
		if err != nil {
			return RangeResult{}, err
		}
		items := run.Items()
		sh.SortItemsByRank(items)
		stats.Duration = time.Since(start)
		return RangeResult{Items: items, Stats: stats}, nil
	}
	opts.Prune = false // table ranging needs every row
	tables, err := sh.VectorTables(ctx, q, withMeasure(opts, m))
	if err != nil {
		return RangeResult{}, err
	}
	var mstart time.Time
	if opts.Trace != nil {
		mstart = time.Now()
	}
	items, err := sh.MergeRange(tables, m, radius)
	if err != nil {
		return RangeResult{}, err
	}
	if opts.Trace != nil {
		opts.Trace.Observe(StageMerge, time.Since(mstart), tableRows(tables), 0)
	}
	return RangeResult{Items: items, Stats: mergedStats(tables, start)}, nil
}

// evalRankedShards drives one Ranked run over every shard
// concurrently. opts.Workers is the per-shard scan width; 0 spreads
// GOMAXPROCS across the shards, mirroring VectorTables.
func (sh *Sharded) evalRankedShards(ctx context.Context, run *Ranked, q *graph.Graph, opts QueryOptions) (QueryStats, error) {
	opts.Workers = sh.shardedWorkers(opts.Workers)
	stats := make([]RankedStats, len(sh.shards))
	errs := make([]error, len(sh.shards))
	var wg sync.WaitGroup
	for i, db := range sh.shards {
		wg.Add(1)
		go func(i int, db *DB) {
			defer wg.Done()
			stats[i], errs[i] = run.EvalDB(ctx, db, q, opts)
		}(i, db)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return QueryStats{}, err
		}
	}
	total := QueryStats{}
	for _, s := range stats {
		total.addRanked(s)
	}
	return total, nil
}

// LoadSharded reads an LGF file into a fresh n-shard database.
func LoadSharded(path string, n int) (*Sharded, error) {
	db, err := Load(path)
	if err != nil {
		return nil, err
	}
	sh := NewSharded(n)
	if err := sh.InsertAll(db.Graphs()); err != nil {
		return nil, err
	}
	return sh, nil
}
