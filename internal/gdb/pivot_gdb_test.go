package gdb_test

import (
	"context"
	"fmt"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
	"skygraph/internal/testutil"
)

// pivotCfg is the test configuration: small pivot sets and modest
// budgets so rebuilds finish instantly, plus a deliberately tiny-budget
// variant exercising the capped-interval algebra.
var pivotCfgs = []pivot.Config{
	{Pivots: 3},
	{Pivots: 3, MaxNodes: 5, QueryMaxNodes: 5}, // every column capped: wide intervals
}

// TestPivotIntervalsAdmissible: for paper and seeded DBs, the tier-0
// interval after pivot tightening must contain the GED that
// measure.Compute reports — exact and capped engines both.
func TestPivotIntervalsAdmissible(t *testing.T) {
	cases := []struct {
		label string
		gs    []*graph.Graph
		qs    []*graph.Graph
	}{
		{"paper", dataset.PaperDB(), []*graph.Graph{dataset.PaperQuery()}},
		{"seeded", testutil.SeededGraphs(5, 16), testutil.SeededQueries(105, testutil.SeededGraphs(5, 16), 3)},
	}
	evals := []measure.Options{{}, {GEDMaxNodes: 200, MCSMaxNodes: 200}}
	for _, tc := range cases {
		for ci, cfg := range pivotCfgs {
			db := testutil.NewDB(t, tc.gs)
			ix := db.EnablePivots(cfg)
			ix.Wait()
			for _, eval := range evals {
				for _, q := range tc.qs {
					qsig := measure.NewSignature(q)
					qb := ix.StartQuery(q, qsig)
					if qb == nil {
						t.Fatalf("%s cfg=%d: pivot index not ready", tc.label, ci)
					}
					for _, g := range tc.gs {
						sig, _ := db.Signature(g.Name())
						bs := measure.BoundPair(sig, qsig)
						lo, hi, ok := qb.GED(g.Name())
						if !ok {
							t.Fatalf("%s cfg=%d: no pivot column for %s", tc.label, ci, g.Name())
						}
						// The upper bound only brackets the *reported* GED
						// when the engine is uncapped (see TightenGED).
						if eval.GEDMaxNodes != 0 {
							hi = bs.GEDHi
						}
						bs.TightenGED(lo, hi)
						ps := measure.Compute(g, q, eval)
						if ps.GED < bs.GEDLo || ps.GED > bs.GEDHi {
							t.Fatalf("%s cfg=%d eval=%+v: reported GED(%s,%s)=%v outside pivot-tightened [%v, %v]",
								tc.label, ci, eval, g.Name(), q.Name(), ps.GED, bs.GEDLo, bs.GEDHi)
						}
					}
				}
			}
		}
	}
}

// pivotDB builds an unsharded DB with pivots (and optionally a memo)
// enabled and fully built.
func pivotDB(t *testing.T, gs []*graph.Graph, cfg pivot.Config, memo bool) *gdb.DB {
	t.Helper()
	db := testutil.NewDB(t, gs)
	db.EnablePivots(cfg).Wait()
	if memo {
		db.SetScoreMemo(gdb.NewScoreMemo(4096))
	}
	return db
}

// TestPrunedSkylineWithPivotsSeeded: the skyline property test with the
// pivot tier and the score memo live — answers must stay byte-identical
// to the unpruned reference, on the first (cold memo) and second (warm
// memo) run alike.
func TestPrunedSkylineWithPivotsSeeded(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		gs := testutil.SeededGraphs(seed, 20)
		ref := testutil.NewDB(t, gs)
		for ci, cfg := range pivotCfgs {
			db := pivotDB(t, gs, cfg, true)
			for qi, q := range testutil.SeededQueries(seed+100, gs, 3) {
				label := fmt.Sprintf("seed=%d cfg=%d q=%d", seed, ci, qi)
				opts := gdb.QueryOptions{Eval: measure.Options{GEDMaxNodes: 2000, MCSMaxNodes: 2000}}
				want, err := ref.SkylineQuery(q, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Prune = true
				for round := 0; round < 2; round++ {
					got, err := db.SkylineQuery(q, opts)
					if err != nil {
						t.Fatal(err)
					}
					testutil.RequireSameSkyline(t, fmt.Sprintf("%s round=%d", label, round), want.Skyline, got.Skyline)
					if got.Stats.Evaluated+got.Stats.Pruned != len(gs) {
						t.Fatalf("%s: evaluated %d + pruned %d != %d",
							label, got.Stats.Evaluated, got.Stats.Pruned, len(gs))
					}
					if round == 1 && got.Stats.MemoHits == 0 {
						t.Fatalf("%s: warm rerun hit the memo 0 times", label)
					}
				}
			}
		}
	}
}

// TestPrunedRankedWithPivotsSharded: top-k and range equivalence with
// pivots + memo at shard counts 1/2/3/7, against the unpruned unsharded
// reference.
func TestPrunedRankedWithPivotsSharded(t *testing.T) {
	gs := testutil.SeededGraphs(31, 18)
	qs := testutil.SeededQueries(131, gs, 2)
	eval := measure.Options{GEDMaxNodes: 500, MCSMaxNodes: 500}
	ctx := context.Background()
	flat := testutil.NewDB(t, gs)
	for _, m := range []measure.Measure{measure.DistEd{}, measure.DistGu{}} {
		for _, q := range qs {
			refTK, err := flat.TopKQueryContext(ctx, q, m, 4, gdb.QueryOptions{Eval: eval, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			refRG, err := flat.RangeQueryContext(ctx, q, m, 4, gdb.QueryOptions{Eval: eval, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			popts := gdb.QueryOptions{Eval: eval, Workers: 4, Prune: true}
			for _, counts := range []int{1, 2, 3, 7} {
				sh := testutil.NewSharded(t, counts, gs)
				sh.EnablePivots(pivot.Config{Pivots: 3})
				sh.EnableScoreMemo(4096)
				sh.WaitPivots()
				label := fmt.Sprintf("%s/%s shards=%d", q.Name(), m.Name(), counts)
				for round := 0; round < 2; round++ {
					tk, err := sh.TopKQueryContext(ctx, q, m, 4, popts)
					if err != nil {
						t.Fatal(err)
					}
					testutil.RequireSameItems(t, label+"/topk", refTK.Items, tk.Items)
					rg, err := sh.RangeQueryContext(ctx, q, m, 4, popts)
					if err != nil {
						t.Fatal(err)
					}
					testutil.RequireSameItems(t, label+"/range", refRG.Items, rg.Items)
				}
			}
		}
	}
}

// TestReshardRebuildsPivotIndex: resizing the shard set must rebuild a
// consistent pivot index on every new shard — full coverage of that
// shard's graphs — and keep query answers byte-identical, across the
// shard counts 1 -> 2 -> 3 -> 7 and back down to 2.
func TestReshardRebuildsPivotIndex(t *testing.T) {
	gs := testutil.SeededGraphs(41, 21)
	q := testutil.SeededQueries(141, gs, 1)[0]
	opts := gdb.QueryOptions{Eval: measure.Options{GEDMaxNodes: 1000, MCSMaxNodes: 1000}, Prune: true}
	ref := testutil.NewDB(t, gs)
	want, err := ref.SkylineQuery(q, gdb.QueryOptions{Eval: opts.Eval})
	if err != nil {
		t.Fatal(err)
	}
	wantTK, err := ref.TopKQuery(q, measure.DistEd{}, 4, gdb.QueryOptions{Eval: opts.Eval})
	if err != nil {
		t.Fatal(err)
	}

	sh := testutil.NewSharded(t, 1, gs)
	sh.EnablePivots(pivot.Config{Pivots: 3})
	sh.EnableScoreMemo(4096)
	// Warm the memo so the resized databases can prove entries stayed
	// reachable (graphs keep their insert sequences across Reshard).
	if _, err := sh.TopKQueryContext(context.Background(), q, measure.DistEd{}, 4, opts); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, 7, 2} {
		resized, err := sh.Reshard(n)
		if err != nil {
			t.Fatalf("Reshard(%d): %v", n, err)
		}
		sh = resized
		if sh.NumShards() != n {
			t.Fatalf("Reshard(%d) produced %d shards", n, sh.NumShards())
		}
		if sh.Memo() == nil {
			t.Fatalf("Reshard(%d) dropped the score memo", n)
		}
		sh.WaitPivots()
		for i := 0; i < n; i++ {
			shard := sh.Shard(i)
			ix := shard.PivotIndex()
			if ix == nil {
				t.Fatalf("shard %d/%d has no pivot index after reshard", i, n)
			}
			pivots, entries, pending := ix.Ready()
			if shard.Len() >= 3 {
				// Enough graphs for a pivot set: the rebuilt index must
				// cover the shard completely.
				if pivots != 3 || entries != shard.Len() || pending != 0 {
					t.Fatalf("shard %d/%d: %d graphs, %d pivots, %d columns (%d pending)",
						i, n, shard.Len(), pivots, entries, pending)
				}
			} else if pivots != 0 {
				t.Fatalf("shard %d/%d: %d pivots from %d graphs", i, n, pivots, shard.Len())
			}
		}
		got, err := sh.SkylineQueryContext(context.Background(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		testutil.RequireSameSkyline(t, fmt.Sprintf("reshard=%d", n), want.Skyline, got.Skyline)
		gotTK, err := sh.TopKQueryContext(context.Background(), q, measure.DistEd{}, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		testutil.RequireSameItems(t, fmt.Sprintf("reshard=%d/topk", n), wantTK.Items, gotTK.Items)
		if gotTK.Stats.MemoHits == 0 {
			t.Fatalf("reshard=%d: memo entries unreachable after resize (0 hits)", n)
		}
	}
}

// TestPivotSurvivesMutations: inserts and deletes (including deleting a
// pivot) keep the background index consistent and the answers correct.
func TestPivotSurvivesMutations(t *testing.T) {
	gs := testutil.SeededGraphs(51, 16)
	db := pivotDB(t, gs, pivot.Config{Pivots: 3}, false)
	ix := db.PivotIndex()
	q := testutil.SeededQueries(151, gs, 1)[0]
	opts := gdb.QueryOptions{Eval: measure.Options{GEDMaxNodes: 1000, MCSMaxNodes: 1000}}

	// Delete a pivot (forces a rebuild) and a regular member.
	victim := ix.Pivots()[0]
	if !db.Delete(victim) {
		t.Fatalf("delete %s failed", victim)
	}
	db.Delete(gs[7].Name())
	extra := testutil.SeededGraphs(251, 4)
	for _, g := range extra {
		g.SetName("x" + g.Name())
		if err := db.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	ix.Wait()
	_, entries, pending := ix.Ready()
	if entries != db.Len() || pending != 0 {
		t.Fatalf("after mutations: %d graphs, %d columns, %d pending", db.Len(), entries, pending)
	}

	ref := testutil.NewDB(t, db.Graphs())
	want, err := ref.SkylineQuery(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	popts := opts
	popts.Prune = true
	got, err := db.SkylineQuery(q, popts)
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireSameSkyline(t, "after-mutations", want.Skyline, got.Skyline)
}
