package gdb_test

import (
	"context"
	"fmt"
	"testing"

	"skygraph/internal/gdb"
	"skygraph/internal/measure"
	"skygraph/internal/testutil"
)

// TestMemoReplaysAcrossQueries: a second identical ranked query must be
// served from the memo (hits > 0) with identical items.
func TestMemoReplaysAcrossQueries(t *testing.T) {
	gs := testutil.SeededGraphs(61, 12)
	db := testutil.NewDB(t, gs)
	db.SetScoreMemo(gdb.NewScoreMemo(1024))
	q := testutil.SeededQueries(161, gs, 1)[0]
	opts := gdb.QueryOptions{Eval: measure.Options{GEDMaxNodes: 1000, MCSMaxNodes: 1000}}

	cold, err := db.TopKQuery(q, measure.DistEd{}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.MemoHits != 0 {
		t.Fatalf("cold query reported %d memo hits", cold.Stats.MemoHits)
	}
	warm, err := db.TopKQuery(q, measure.DistEd{}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireSameItems(t, "warm", cold.Items, warm.Items)
	if warm.Stats.MemoHits != len(gs) {
		t.Fatalf("warm query hit the memo %d times, want %d", warm.Stats.MemoHits, len(gs))
	}
	if s := db.Memo().Stats(); s.Entries == 0 || s.Hits == 0 {
		t.Fatalf("memo stats after warm query: %+v", s)
	}
}

// TestMemoSurvivesUnrelatedMutations: inserting a new graph must leave
// existing entries reusable — that is the whole point of keying on
// per-graph insert sequences rather than the database generation.
func TestMemoSurvivesUnrelatedMutations(t *testing.T) {
	gs := testutil.SeededGraphs(71, 10)
	db := testutil.NewDB(t, gs)
	db.SetScoreMemo(gdb.NewScoreMemo(1024))
	q := testutil.SeededQueries(171, gs, 1)[0]
	opts := gdb.QueryOptions{Eval: measure.Options{GEDMaxNodes: 1000, MCSMaxNodes: 1000}}
	if _, err := db.TopKQuery(q, measure.DistEd{}, 3, opts); err != nil {
		t.Fatal(err)
	}
	extra := testutil.SeededGraphs(271, 1)[0]
	extra.SetName("extra")
	if err := db.Insert(extra); err != nil {
		t.Fatal(err)
	}
	warm, err := db.TopKQuery(q, measure.DistEd{}, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every pre-existing graph replays; only the new one runs engines.
	if warm.Stats.MemoHits != len(gs) || warm.Stats.MemoMisses != 1 {
		t.Fatalf("after unrelated insert: hits=%d misses=%d, want %d/1",
			warm.Stats.MemoHits, warm.Stats.MemoMisses, len(gs))
	}
}

// TestMemoInvalidatedByReinsert: deleting a graph and re-inserting a
// DIFFERENT graph under the same name must not replay the old graph's
// scores — the fresh insert sequence makes the stale entries
// unreachable.
func TestMemoInvalidatedByReinsert(t *testing.T) {
	gs := testutil.SeededGraphs(81, 8)
	q := testutil.SeededQueries(181, gs, 1)[0]
	opts := gdb.QueryOptions{Eval: measure.Options{}}

	db := testutil.NewDB(t, gs)
	db.SetScoreMemo(gdb.NewScoreMemo(1024))
	if _, err := db.RangeQuery(q, measure.DistEd{}, 100, opts); err != nil {
		t.Fatal(err)
	}

	// Replace g003 with a structurally different graph of the same name.
	victim := gs[3].Name()
	if !db.Delete(victim) {
		t.Fatal("delete failed")
	}
	repl := testutil.SeededGraphs(999, 5)[4]
	repl.SetName(victim)
	if err := db.Insert(repl); err != nil {
		t.Fatal(err)
	}

	got, err := db.RangeQuery(q, measure.DistEd{}, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: a memo-free database with the same final contents.
	ref := testutil.NewDB(t, db.Graphs())
	want, err := ref.RangeQuery(q, measure.DistEd{}, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireSameItems(t, "after-reinsert", want.Items, got.Items)
	// And the replacement's score must differ from the victim's unless
	// the graphs coincidentally tie — sanity that the test bites.
	var oldScore, newScore float64
	oldScore, _ = measure.ScorePair(gs[3], q, measure.DistEd{}, opts.Eval, measure.PairHints{})
	newScore, _ = measure.ScorePair(repl, q, measure.DistEd{}, opts.Eval, measure.PairHints{})
	if oldScore == newScore {
		t.Logf("note: victim and replacement tie at %v (test still valid via item equality)", oldScore)
	}
	for _, it := range got.Items {
		if it.ID == victim && it.Score != newScore {
			t.Fatalf("stale memo served: %s scored %v, want %v", victim, it.Score, newScore)
		}
	}
}

// TestMemoSharedAcrossShards: one memo serves all shards of a Sharded
// database; a warm sharded query replays every pair.
func TestMemoSharedAcrossShards(t *testing.T) {
	gs := testutil.SeededGraphs(91, 14)
	sh := testutil.NewSharded(t, 3, gs)
	sh.EnableScoreMemo(2048)
	q := testutil.SeededQueries(191, gs, 1)[0]
	opts := gdb.QueryOptions{Eval: measure.Options{GEDMaxNodes: 1000, MCSMaxNodes: 1000}, Prune: true}
	cold, err := sh.TopKQueryContext(context.Background(), q, measure.DistEd{}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sh.TopKQueryContext(context.Background(), q, measure.DistEd{}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireSameItems(t, "sharded-warm", cold.Items, warm.Items)
	if warm.Stats.MemoHits == 0 {
		t.Fatal("warm sharded query hit the shared memo 0 times")
	}
	if fmt.Sprint(sh.Memo().Stats().Entries) == "0" {
		t.Fatal("shared memo is empty after queries")
	}
}
