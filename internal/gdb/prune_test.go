package gdb_test

import (
	"context"
	"fmt"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/testutil"
)

// prunedOpts are the evaluation options of the equivalence runs: capped
// engines (the realistic serving configuration, and the regime where
// the bound/fallback interplay is subtlest) with pruning toggled per
// run.
func prunedOpts(prune bool) gdb.QueryOptions {
	return gdb.QueryOptions{
		Eval:  measure.Options{GEDMaxNodes: 2000, MCSMaxNodes: 2000},
		Prune: prune,
	}
}

// requireEquivalent runs the same skyline query pruned and unpruned
// against db and fails unless the skylines agree exactly. It also
// checks the pruning bookkeeping: every graph is either evaluated or
// pruned, never both, never neither.
func requireEquivalent(t *testing.T, label string, db *gdb.DB, q *graph.Graph, opts gdb.QueryOptions) {
	t.Helper()
	o := opts
	o.Prune = false
	ref, err := db.SkylineQuery(q, o)
	if err != nil {
		t.Fatalf("%s: unpruned query: %v", label, err)
	}
	o.Prune = true
	got, err := db.SkylineQuery(q, o)
	if err != nil {
		t.Fatalf("%s: pruned query: %v", label, err)
	}
	testutil.RequireSameSkyline(t, label, ref.Skyline, got.Skyline)
	if got.Stats.Evaluated+got.Stats.Pruned != db.Len() {
		t.Fatalf("%s: evaluated %d + pruned %d != %d graphs",
			label, got.Stats.Evaluated, got.Stats.Pruned, db.Len())
	}
	if ref.Stats.Pruned != 0 || ref.Stats.Evaluated != db.Len() {
		t.Fatalf("%s: unpruned run reported pruning: %+v", label, ref.Stats)
	}
}

// TestPrunedSkylineMatchesUnprunedPaperDB: the worked example of the
// paper, exact engines — GSS(D,q) = {g1, g4, g5, g7} either way.
func TestPrunedSkylineMatchesUnprunedPaperDB(t *testing.T) {
	db := testutil.NewDB(t, dataset.PaperDB())
	requireEquivalent(t, "paper", db, dataset.PaperQuery(), gdb.QueryOptions{})
	requireEquivalent(t, "paper/capped", db, dataset.PaperQuery(), prunedOpts(false))
}

// TestPrunedSkylineMatchesUnprunedSeeded: property test over seeded
// random databases and queries, unsharded.
func TestPrunedSkylineMatchesUnprunedSeeded(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		gs := testutil.SeededGraphs(seed, 24)
		db := testutil.NewDB(t, gs)
		for qi, q := range testutil.SeededQueries(seed+100, gs, 4) {
			requireEquivalent(t, fmt.Sprintf("seed=%d q=%d", seed, qi), db, q, prunedOpts(false))
		}
	}
}

// TestPrunedSkylineShardedEquivalence: the pruned sharded engine must
// agree with the unpruned unsharded reference for every shard count,
// including the per-shard Pruned/Evaluated accounting.
func TestPrunedSkylineShardedEquivalence(t *testing.T) {
	gs := testutil.SeededGraphs(11, 30)
	queries := testutil.SeededQueries(211, gs, 3)
	ref := testutil.NewDB(t, gs)
	for _, shards := range []int{1, 2, 3, 7} {
		sh := testutil.NewSharded(t, shards, gs)
		for qi, q := range queries {
			label := fmt.Sprintf("shards=%d q=%d", shards, qi)
			want, err := ref.SkylineQuery(q, prunedOpts(false))
			if err != nil {
				t.Fatalf("%s: reference: %v", label, err)
			}
			got, err := sh.SkylineQueryContext(context.Background(), q, prunedOpts(true))
			if err != nil {
				t.Fatalf("%s: sharded pruned: %v", label, err)
			}
			testutil.RequireSameSkyline(t, label, want.Skyline, got.Skyline)
			if got.Stats.Evaluated+got.Stats.Pruned != len(gs) {
				t.Fatalf("%s: evaluated %d + pruned %d != %d graphs",
					label, got.Stats.Evaluated, got.Stats.Pruned, len(gs))
			}
		}
	}
}

// TestPrunedPaperDBActuallyPrunes: on the paper database the filter
// must spare at least one exact evaluation (the worked example has
// clearly dominated members), so the Pruned counter is exercised for
// real, not vacuously.
func TestPrunedPaperDBActuallyPrunes(t *testing.T) {
	db := testutil.NewDB(t, dataset.PaperDB())
	res, err := db.SkylineQuery(dataset.PaperQuery(), prunedOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pruned == 0 {
		t.Skip("bounds too loose to prune the paper DB (allowed, but unexpected)")
	}
	if len(res.All) != res.Stats.Evaluated {
		t.Fatalf("All holds %d rows, Evaluated=%d", len(res.All), res.Stats.Evaluated)
	}
}

// TestPrunedTableRejectsRanking: a pruned vector table must refuse
// top-k and range duty rather than silently answering from survivor
// rows only.
func TestPrunedTableRejectsRanking(t *testing.T) {
	db := testutil.NewDB(t, dataset.PaperDB())
	opts := prunedOpts(true)
	opts.Workers = 2
	tab, err := db.VectorTable(context.Background(), dataset.PaperQuery(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Complete {
		t.Skip("nothing pruned on this build; table is complete and rankable")
	}
	if _, err := tab.TopK(measure.DistEd{}, 3); err == nil {
		t.Fatal("TopK on a pruned table must error")
	}
	if _, err := tab.Range(measure.DistEd{}, 100); err == nil {
		t.Fatal("Range on a pruned table must error")
	}
}

// TestPruneIgnoredForForeignBasis: a basis with a measure outside the
// built-ins must fall back to full evaluation (Pruned = 0, every graph
// evaluated) rather than prune on unknown monotonicity.
func TestPruneIgnoredForForeignBasis(t *testing.T) {
	db := testutil.NewDB(t, dataset.PaperDB())
	opts := prunedOpts(true)
	opts.Basis = []measure.Measure{measure.DistEd{}, oppositeMeasure{}}
	res, err := db.SkylineQuery(dataset.PaperQuery(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pruned != 0 || res.Stats.Evaluated != db.Len() {
		t.Fatalf("foreign basis pruned anyway: %+v", res.Stats)
	}
}

// oppositeMeasure is deliberately anti-monotone in GED: a similarity,
// not a distance. Pruning with corner bounds would be wrong for it.
type oppositeMeasure struct{}

func (oppositeMeasure) Name() string                          { return "Opposite" }
func (oppositeMeasure) FromStats(s measure.PairStats) float64 { return -s.GED }
