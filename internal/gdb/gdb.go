// Package gdb implements the graph database underneath the similarity
// skyline query engine: named graph storage, LGF persistence, a
// label-histogram index providing cheap edit-distance lower bounds, and
// parallel evaluation of compound similarity vectors.
package gdb

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
	"skygraph/internal/vector"
	"skygraph/internal/wal"
)

// DB is a concurrency-safe collection of uniquely named graphs with a
// per-graph signature index (label histograms, degree sequence, sizes)
// maintained on insert. The signatures serve the histogram edit-
// distance lower bound, aggregate statistics, and the filter phase of
// pruned skyline evaluation without ever re-walking a stored graph.
type DB struct {
	mu     sync.RWMutex
	names  []string // insertion order
	graphs map[string]*entry
	gen    uint64 // bumped on every successful Insert/Delete

	// pidx, when enabled, is the metric pivot index maintained in the
	// background as graphs come and go (see EnablePivots).
	pidx *pivot.Index
	// vidx, when enabled, is the vector candidate-generation tier:
	// per-graph embeddings and the IVF partition queries probe
	// best-first (see EnableVector).
	vidx *vector.Index
	// memo, when set, is the cross-query exact-score memo consulted and
	// fed by every evaluation path (see SetScoreMemo).
	memo *ScoreMemo
	// store, when set, receives every mutation BEFORE it is applied
	// (and before the caller is told it succeeded): the write-ahead
	// discipline. A store error fails the mutation with the database
	// unchanged. See SetStore / OpenDurable.
	store Store
}

type entry struct {
	g   *graph.Graph
	sig *measure.Signature
	// seq is the graph's process-unique insert sequence: the
	// generational key of the score memo. Deleting and re-inserting a
	// name mints a new sequence, so memo entries of the old graph can
	// never be served for the new one.
	seq uint64
}

// insertSeq mints process-unique insert sequences. Process-wide (not
// per DB) so one score memo can be shared across shards — and across a
// Reshard, which re-inserts every graph into fresh DBs — without two
// different graphs ever colliding on (name, seq).
//
// Once mutations persist, "process-unique" must extend across process
// restarts: a replayed graph keeps its recorded sequence, so recovery
// seeds this counter above every sequence ever persisted
// (SeedInsertSeq) before minting new ones — otherwise a freshly
// inserted graph could collide with a replayed one on (name, seq) and
// the score memo's delete+reinsert safety argument would break.
var insertSeq atomic.Uint64

// ErrNotPersisted marks mutation failures caused by the write-ahead
// store rather than the request itself (duplicate name, bad graph):
// the append failed, the database is unchanged, and the caller must
// not report success. Callers distinguish it with errors.Is.
var ErrNotPersisted = errors.New("mutation not persisted")

// InsertSeqHighWater returns the largest insert sequence minted so far
// (process-wide). Clients use it with idempotency keys: a mutation
// acked at or below the high-water of a recovered server has either
// survived or is individually checkable, so retries after an ambiguous
// failure can be decided safely.
func InsertSeqHighWater() uint64 { return insertSeq.Load() }

// SeedInsertSeq raises the insert-sequence counter to at least min:
// sequences minted afterwards are strictly greater. Recovery calls it
// with the largest sequence found in the snapshot manifest and the
// replayed WAL records; raising is monotone, so concurrent callers
// (multiple durable databases in one process) compose safely.
func SeedInsertSeq(min uint64) {
	for {
		cur := insertSeq.Load()
		if cur >= min || insertSeq.CompareAndSwap(cur, min) {
			return
		}
	}
}

// New returns an empty database.
func New() *DB {
	return &DB{graphs: make(map[string]*entry)}
}

// Insert adds g. The graph must validate, carry a non-empty name, and the
// name must be unused. The database stores g itself; callers must not
// mutate a graph after insertion (Clone first if needed).
func (db *DB) Insert(g *graph.Graph) error {
	_, err := db.insertWithSeq(g, insertSeq.Add(1), "")
	return err
}

// InsertKeyed is Insert with the client's idempotency key logged into
// the write-ahead record, leaving durable evidence the key was
// accepted (see Store.LogInsert).
func (db *DB) InsertKeyed(g *graph.Graph, key string) error {
	_, err := db.insertWithSeq(g, insertSeq.Add(1), key)
	return err
}

// InsertKeyedGen is InsertKeyed returning the generation the insert
// produced — the evidence a delta-maintaining cache needs to prove a
// cached entry is exactly one mutation behind (gen-1 → gen with this
// insert as the only difference).
func (db *DB) InsertKeyedGen(g *graph.Graph, key string) (uint64, error) {
	return db.insertWithSeq(g, insertSeq.Add(1), key)
}

// insertWithSeq is Insert with a caller-supplied insert sequence:
// Reshard re-inserts the same immutable graphs into fresh shards and
// keeps their sequences, so score-memo entries stay reachable across a
// resize (the sequence identifies the graph VALUE, which a reshard
// does not change).
func (db *DB) insertWithSeq(g *graph.Graph, seq uint64, key string) (uint64, error) {
	if g.Name() == "" {
		return 0, fmt.Errorf("gdb: graph has no name")
	}
	if err := g.Validate(); err != nil {
		return 0, fmt.Errorf("gdb: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.graphs[g.Name()]; dup {
		return 0, fmt.Errorf("gdb: duplicate graph name %q", g.Name())
	}
	// Write-ahead: with every failure mode that is checkable up front
	// already rejected, log the mutation before applying it. If the
	// append fails the database is unchanged; if the process dies after
	// the append, replay applies a mutation that was never acked —
	// harmless, the client saw no success.
	if db.store != nil {
		if err := db.store.LogInsert(g, seq, key); err != nil {
			return 0, fmt.Errorf("gdb: %w: wal append: %w", ErrNotPersisted, err)
		}
	}
	e := &entry{g: g, sig: measure.NewSignature(g), seq: seq}
	db.graphs[g.Name()] = e
	db.names = append(db.names, g.Name())
	db.gen++
	if db.pidx != nil {
		db.pidx.Add(g.Name(), e.g, e.sig)
	}
	if db.vidx != nil {
		db.vidx.Add(g.Name(), e.g, e.sig, db.gen)
	}
	return db.gen, nil
}

// seqOf returns the named graph's insert sequence.
func (db *DB) seqOf(name string) (uint64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.graphs[name]
	if !ok {
		return 0, false
	}
	return e.seq, true
}

// InsertAll inserts every graph, stopping at the first error.
func (db *DB) InsertAll(gs []*graph.Graph) error {
	for _, g := range gs {
		if err := db.Insert(g); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the graph with the given name.
func (db *DB) Get(name string) (*graph.Graph, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.graphs[name]
	if !ok {
		return nil, false
	}
	return e.g, true
}

// Delete removes the named graph, reporting whether it existed. With a
// Store attached, a failed write-ahead append also reports false (the
// database is unchanged); use DeleteErr to see the error itself.
func (db *DB) Delete(name string) bool {
	ok, err := db.DeleteErr(name)
	return ok && err == nil
}

// DeleteErr removes the named graph. existed reports whether the name
// was present; err is non-nil only when the write-ahead append failed
// (in which case the graph remains).
func (db *DB) DeleteErr(name string) (existed bool, err error) {
	return db.DeleteKeyedErr(name, "")
}

// DeleteKeyedErr is DeleteErr with the client's idempotency key logged
// into the write-ahead record (see Store.LogDelete).
func (db *DB) DeleteKeyedErr(name, key string) (existed bool, err error) {
	existed, _, err = db.DeleteKeyedGen(name, key)
	return existed, err
}

// DeleteKeyedGen is DeleteKeyedErr returning the generation the delete
// produced (0 when nothing was deleted) — the delta-maintenance
// counterpart of InsertKeyedGen.
func (db *DB) DeleteKeyedGen(name, key string) (existed bool, gen uint64, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.graphs[name]; !ok {
		return false, 0, nil
	}
	if db.store != nil {
		if err := db.store.LogDelete(name, key); err != nil {
			return true, 0, fmt.Errorf("gdb: %w: wal append: %w", ErrNotPersisted, err)
		}
	}
	delete(db.graphs, name)
	for i, n := range db.names {
		if n == name {
			db.names = append(db.names[:i], db.names[i+1:]...)
			break
		}
	}
	db.gen++
	if db.pidx != nil {
		db.pidx.Remove(name)
	}
	if db.vidx != nil {
		db.vidx.Remove(name, db.gen)
	}
	return true, db.gen, nil
}

// EnablePivots attaches a metric pivot index (see internal/pivot) to
// the database: pivot distance columns for the current graphs are
// scheduled immediately and maintained in the background on every
// insert and delete from then on. Queries pick the index up
// automatically — partial columns simply leave individual candidates
// on their signature-only bounds, so enabling is safe at any point.
// Calling it again is a no-op; it returns the index either way.
func (db *DB) EnablePivots(cfg pivot.Config) *pivot.Index {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pidx == nil {
		db.pidx = pivot.New(cfg)
		for _, n := range db.names {
			e := db.graphs[n]
			db.pidx.Add(n, e.g, e.sig)
		}
		if db.vidx != nil {
			db.vidx.AttachPivots(db.pidx)
		}
	}
	return db.pidx
}

// PivotIndex returns the attached pivot index (nil when disabled).
func (db *DB) PivotIndex() *pivot.Index {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.pidx
}

// EnableVector attaches the vector candidate tier (see internal/vector):
// embeddings for the current graphs are computed immediately — the
// initial partition build completes before EnableVector returns — and
// maintained on every insert and delete from then on (membership and
// generation tags synchronously; centroid re-selections in the
// background, off the mutation path).
// Queries pick the tier up automatically once the collection reaches
// Config.Cells members; until then — and whenever a query cannot prove
// its snapshot matches the partition — evaluation falls back to the
// plain scan, so enabling is safe at any point, including right after
// recovery replay (the embeddings rebuild from the recovered graphs, no
// separate persistence). Enable pivots first (or at any later point) to
// get pivot-midpoint embedding coordinates and per-cell pivot floors.
// Calling it again is a no-op; it returns the index either way.
func (db *DB) EnableVector(cfg vector.Config) *vector.Index {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.vidx == nil {
		db.vidx = vector.New(cfg, db.pidx)
		for _, n := range db.names {
			e := db.graphs[n]
			db.vidx.Add(n, e.g, e.sig, db.gen)
		}
		db.vidx.WaitRebuild()
	}
	return db.vidx
}

// VectorIndex returns the attached vector index (nil when disabled).
func (db *DB) VectorIndex() *vector.Index {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.vidx
}

// SetScoreMemo attaches a cross-query exact-score memo. Pass the same
// memo to every shard of a sharded database — entries are keyed by
// process-unique insert sequences, so sharing is safe.
func (db *DB) SetScoreMemo(m *ScoreMemo) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.memo = m
}

// SetStore attaches a write-ahead store: from now on every mutation is
// logged to st before it is applied, and a store error fails the
// mutation with the database unchanged. Attach AFTER recovery replay so
// replayed mutations are not re-logged. Pass nil to detach.
func (db *DB) SetStore(st Store) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.store = st
}

// Memo returns the attached score memo (nil when disabled).
func (db *DB) Memo() *ScoreMemo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.memo
}

// Generation returns a counter that changes on every successful mutation
// (insert or delete). Caches keyed by (generation, query) are therefore
// automatically invalidated by any database change: stale entries can
// never be served because no future lookup carries an old generation.
func (db *DB) Generation() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.gen
}

// Len returns the number of stored graphs.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.names)
}

// Names returns the graph names in insertion order.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.names...)
}

// Graphs returns the stored graphs in insertion order.
func (db *DB) Graphs() []*graph.Graph {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*graph.Graph, 0, len(db.names))
	for _, n := range db.names {
		out = append(out, db.graphs[n].g)
	}
	return out
}

// Stats summarizes the database contents.
type Stats struct {
	Graphs       int
	Vertices     int
	Edges        int
	VertexLabels int
	EdgeLabels   int
	MinSize      int
	MaxSize      int
}

// Stats returns aggregate statistics.
func (db *DB) Stats() Stats {
	s, _, _ := db.statsAndLabels()
	return s
}

// statsAndLabels aggregates the stored signatures — no graph structure
// is touched under the read lock — and returns the distinct label sets
// too; shard aggregation needs the sets because distinct counts union
// rather than sum.
func (db *DB) statsAndLabels() (Stats, map[string]bool, map[string]bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{Graphs: len(db.names)}
	vl, el := map[string]bool{}, map[string]bool{}
	first := true
	for _, n := range db.names {
		sig := db.graphs[n].sig
		s.Vertices += sig.Order
		s.Edges += sig.Size
		for l := range sig.VHist {
			vl[l] = true
		}
		for l := range sig.EHist {
			el[l] = true
		}
		if first || sig.Size < s.MinSize {
			s.MinSize = sig.Size
		}
		if first || sig.Size > s.MaxSize {
			s.MaxSize = sig.Size
		}
		first = false
	}
	s.VertexLabels, s.EdgeLabels = len(vl), len(el)
	return s, vl, el
}

// LowerBoundGED returns the histogram lower bound on the uniform-cost edit
// distance between the named graph and q, served from the signature index
// without touching the graph structure. ok is false for unknown names.
func (db *DB) LowerBoundGED(name string, qv, qe map[string]int) (lb float64, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.graphs[name]
	if !ok {
		return 0, false
	}
	return float64(graph.HistogramDistance(e.sig.VHist, qv) + graph.HistogramDistance(e.sig.EHist, qe)), true
}

// Signature returns the stored signature of the named graph (the value
// computed at insert time). ok is false for unknown names.
func (db *DB) Signature(name string) (*measure.Signature, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.graphs[name]
	if !ok {
		return nil, false
	}
	return e.sig, true
}

// WriteTo streams the whole database as LGF, returning the bytes written
// per io.WriterTo.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	for _, g := range db.Graphs() {
		if err := graph.WriteLGF(cw, g); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// countingWriter tracks bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Save writes the database to path as LGF. The write is atomic and
// durable: the content lands in a temp file that is fsynced and then
// renamed over path (with the directory entry fsynced too), so a crash
// mid-save leaves the previous file intact rather than a truncated or
// torn one.
func (db *DB) Save(path string) error {
	return wal.AtomicWrite(path, func(w io.Writer) error {
		_, err := db.WriteTo(w)
		return err
	})
}

// Load reads an LGF file into a fresh database.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gs, err := graph.ReadLGF(f)
	if err != nil {
		return nil, err
	}
	db := New()
	if err := db.InsertAll(gs); err != nil {
		return nil, err
	}
	return db, nil
}

// SortedNames returns the graph names sorted lexicographically (for
// deterministic reporting independent of insertion order).
func (db *DB) SortedNames() []string {
	out := db.Names()
	sort.Strings(out)
	return out
}
