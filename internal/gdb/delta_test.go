package gdb_test

import (
	"context"
	"reflect"
	"testing"

	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/testutil"
)

// coldTable builds the unpruned complete table for q over gs on a fresh
// database — the reference every delta patch must reproduce row for row.
func coldTable(t *testing.T, gs []*graph.Graph, q *graph.Graph) *gdb.VectorTable {
	t.Helper()
	db := testutil.NewDB(t, gs)
	tab, err := db.VectorTable(context.Background(), q, gdb.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestDeltaPatchedTableMatchesCold: a table carried across an insert by
// DeltaRow + WithInsert, then across a delete by WithDelete, holds
// exactly the rows — values and order — of a table cold-built over the
// mutated collection.
func TestDeltaPatchedTableMatchesCold(t *testing.T) {
	gs := testutil.SeededGraphs(31, 12)
	q := testutil.SeededQueries(131, gs, 1)[0]
	db := testutil.NewDB(t, gs)
	t0, err := db.VectorTable(context.Background(), q, gdb.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	late := testutil.SeededGraphs(231, 1)[0]
	late.SetName("late")
	gen, err := db.InsertKeyedGen(late, "")
	if err != nil {
		t.Fatal(err)
	}
	pt, inexact, got, ok := db.DeltaRow("late", q, gdb.QueryOptions{})
	if !ok || got != gen {
		t.Fatalf("DeltaRow ok=%v gen=%d, want true/%d", ok, got, gen)
	}
	t1 := t0.WithInsert(pt, inexact, gen)
	want := coldTable(t, append(append([]*graph.Graph(nil), gs...), late), q)
	if !reflect.DeepEqual(want.Points, t1.Points) {
		t.Fatalf("patched insert table differs from cold build:\ncold  %v\ndelta %v", want.Points, t1.Points)
	}
	if t1.Generation != gen || t1.Deltas != 1 || !t1.Complete {
		t.Fatalf("patched table gen=%d deltas=%d complete=%v, want %d/1/true", t1.Generation, t1.Deltas, t1.Complete, gen)
	}
	// The original must be untouched: patches copy, they never mutate.
	if len(t0.Points) != len(gs) || t0.Deltas != 0 {
		t.Fatalf("WithInsert mutated its receiver: %d rows, %d deltas", len(t0.Points), t0.Deltas)
	}

	victim := gs[3].Name()
	existed, gen2, err := db.DeleteKeyedGen(victim, "")
	if err != nil || !existed {
		t.Fatalf("delete %s: existed=%v err=%v", victim, existed, err)
	}
	t2, ok := t1.WithDelete(victim, gen2)
	if !ok {
		t.Fatalf("WithDelete(%s) did not find the row", victim)
	}
	var live []*graph.Graph
	for _, g := range gs {
		if g.Name() != victim {
			live = append(live, g)
		}
	}
	live = append(live, late)
	want2 := coldTable(t, live, q)
	if !reflect.DeepEqual(want2.Points, t2.Points) {
		t.Fatalf("patched delete table differs from cold build:\ncold  %v\ndelta %v", want2.Points, t2.Points)
	}
	if t2.Generation != gen2 || t2.Deltas != 2 {
		t.Fatalf("patched table gen=%d deltas=%d, want %d/2", t2.Generation, t2.Deltas, gen2)
	}

	if _, ok := t2.WithDelete("never-inserted", gen2+1); ok {
		t.Fatal("WithDelete of an absent name claimed success")
	}
}

// TestDeltaRowObservesInterleavedMutation: DeltaRow's reported
// generation exposes mutations that land between the caller's read of
// the generation and the row evaluation — the guard the server's
// provability check relies on.
func TestDeltaRowObservesInterleavedMutation(t *testing.T) {
	gs := testutil.SeededGraphs(41, 8)
	q := testutil.SeededQueries(141, gs, 1)[0]
	db := testutil.NewDB(t, gs)
	gen, err := db.InsertKeyedGen(mustNamed(t, 241, "a"), "")
	if err != nil {
		t.Fatal(err)
	}
	// A second mutation advances the generation past the first.
	if _, err := db.InsertKeyedGen(mustNamed(t, 242, "b"), ""); err != nil {
		t.Fatal(err)
	}
	_, _, got, ok := db.DeltaRow("a", q, gdb.QueryOptions{})
	if !ok {
		t.Fatal("DeltaRow did not find the inserted graph")
	}
	if got == gen {
		t.Fatalf("DeltaRow observed generation %d despite a later mutation", got)
	}
	if _, _, _, ok := db.DeltaRow("missing", q, gdb.QueryOptions{}); ok {
		t.Fatal("DeltaRow of an absent name claimed success")
	}
}

// TestDeltaScoreMatchesRankedScan: the score DeltaScore computes for a
// freshly inserted graph equals the one the ranked scan produces for
// it, for every rankable measure — with and without a score memo.
func TestDeltaScoreMatchesRankedScan(t *testing.T) {
	gs := testutil.SeededGraphs(51, 10)
	q := testutil.SeededQueries(151, gs, 1)[0]
	for _, withMemo := range []bool{false, true} {
		db := testutil.NewDB(t, gs)
		if withMemo {
			db.SetScoreMemo(gdb.NewScoreMemo(1024))
		}
		late := testutil.SeededGraphs(251, 1)[0]
		late.SetName("late")
		gen, err := db.InsertKeyedGen(late, "")
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []measure.Measure{measure.DistEd{}, measure.DistGu{}} {
			score, _, got, ok := db.DeltaScore("late", q, m, gdb.QueryOptions{})
			if !ok || got != gen {
				t.Fatalf("memo=%v m=%s: DeltaScore ok=%v gen=%d, want true/%d", withMemo, m.Name(), ok, got, gen)
			}
			ref, err := testutil.NewDB(t, append(append([]*graph.Graph(nil), gs...), late)).
				TopKQuery(q, m, len(gs)+1, gdb.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, it := range ref.Items {
				if it.ID == "late" {
					found = true
					if it.Score != score {
						t.Fatalf("memo=%v m=%s: DeltaScore %v, ranked scan %v", withMemo, m.Name(), score, it.Score)
					}
				}
			}
			if !found {
				t.Fatalf("memo=%v m=%s: reference scan did not rank the inserted graph", withMemo, m.Name())
			}
		}
	}
}

// mustNamed returns one seeded graph renamed to name.
func mustNamed(t *testing.T, seed int64, name string) *graph.Graph {
	t.Helper()
	g := testutil.SeededGraphs(seed, 1)[0]
	g.SetName(name)
	return g
}
