package gdb

import (
	"math"
	"strconv"
	"sync/atomic"

	"skygraph/internal/graph"
	"skygraph/internal/lru"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
)

// ScoreMemo is the cross-query exact-score memo: a bounded LRU (the
// same internal/lru core behind the serving layer's table cache) of
// raw engine results keyed by
//
//	(stored graph insert sequence, canonical query hash, engine budgets)
//
// A memo hit replays the recorded GED/MCS engine output instead of
// re-running the exponential engines — the engines are deterministic
// for a fixed (pair, options), so replayed scores are byte-identical.
// The invalidation rule is generational, like every cache in the
// system: entries are keyed by the stored graph's process-unique
// insert sequence, so deleting and re-inserting a name mints a new
// sequence and strands the old entries (the LRU ages them out), while
// an unrelated insert or delete invalidates *nothing* — which is
// exactly the cross-query win. The serving layer's vector-table cache
// dies wholesale on the owning shard's generation bump; the memo
// survives it, so rebuilding a table after one insert only pays
// engines for the new graph.
//
// One memo is safely shared across the shards of a Sharded database
// (sequences are process-unique, names shard-stable).
type ScoreMemo struct {
	lru    *lru.Cache[measure.EngineResults]
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewScoreMemo returns a memo holding at most capacity pair entries
// (< 1 disables it).
func NewScoreMemo(capacity int) *ScoreMemo {
	return &ScoreMemo{lru: lru.New[measure.EngineResults](capacity)}
}

// memoKey renders the cache key of one (stored graph, query) pair. The
// graph name is included only for debuggability — seq alone is unique.
func memoKey(name string, seq uint64, qh, evalKey string) string {
	return name + "\x1f" + strconv.FormatUint(seq, 10) + "\x1f" + qh + "\x1f" + evalKey
}

// MemoStats is a point-in-time snapshot of memo counters.
type MemoStats struct {
	Capacity int    `json:"capacity"`
	Entries  int    `json:"entries"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

// Stats returns the current counters.
func (m *ScoreMemo) Stats() MemoStats {
	return MemoStats{
		Capacity: m.lru.Capacity(),
		Entries:  m.lru.Len(),
		Hits:     m.hits.Load(),
		Misses:   m.misses.Load(),
	}
}

// evalCtx carries the per-query index material every evaluation path
// over one snapshot shares: the pivot tier's triangle bounds, the
// score-memo handles, and the per-query counters the wire stats
// surface. A nil *evalCtx (no pivot index, no memo) is valid
// everywhere and turns every method into a cheap no-op.
type evalCtx struct {
	// pb is the pivot tier's per-query state (nil = tier off).
	pb *pivot.QueryBounds
	// tightenHi gates the triangle *upper* bound: it brackets the true
	// distance, which only brackets the reported distance when the GED
	// engine runs uncapped (see BoundStats.TightenGED).
	tightenHi bool

	memo    *ScoreMemo
	qh      string
	evalKey string

	pivotDists  int
	pivotPruned atomic.Int64
	memoHits    atomic.Int64
	memoMisses  atomic.Int64
}

// newEvalCtx assembles the per-query context. usePivot is false on
// paths that evaluate every pair anyway (unpruned full tables), where
// paying engine runs for query-to-pivot distances buys nothing.
func (db *DB) newEvalCtx(q *graph.Graph, qsig *measure.Signature, opts QueryOptions, usePivot bool) *evalCtx {
	ec := &evalCtx{}
	if pidx := db.PivotIndex(); usePivot && pidx != nil {
		ec.pb = pidx.StartQuery(q, qsig)
		if ec.pb != nil {
			ec.pivotDists = ec.pb.Dists
			ec.tightenHi = opts.Eval.GEDMaxNodes == 0
		}
	}
	if memo := db.Memo(); memo != nil {
		ec.memo = memo
		ec.qh = opts.QueryHash
		if ec.qh == "" {
			ec.qh = graph.QueryHash(q)
		}
		ec.evalKey = opts.Eval.Key()
	}
	if ec.pb == nil && ec.memo == nil {
		return nil
	}
	return ec
}

// tighten intersects the pivot tier's GED interval into bs, reporting
// whether it actually narrowed anything (the attribution signal behind
// the pivot_pruned counter).
func (ec *evalCtx) tighten(bs *measure.BoundStats, name string) bool {
	if ec == nil || ec.pb == nil {
		return false
	}
	lo, hi, ok := ec.pb.GED(name)
	if !ok {
		return false
	}
	if !ec.tightenHi {
		hi = math.Inf(1)
	}
	changed := lo > bs.GEDLo || hi < bs.GEDHi
	bs.TightenGED(lo, hi)
	return changed
}

// memoGet looks up the pair's recorded engine results, succeeding only
// when they cover the given needs. Hit/miss counters (per query and
// global) move on every call, so the ratio reflects what the memo
// actually served.
func (ec *evalCtx) memoGet(name string, seq uint64, needGED, needMCS bool) (measure.EngineResults, bool) {
	if ec == nil || ec.memo == nil {
		return measure.EngineResults{}, false
	}
	r, ok := ec.memo.lru.Get(memoKey(name, seq, ec.qh, ec.evalKey))
	if ok && r.Covers(needGED, needMCS) {
		ec.memoHits.Add(1)
		ec.memo.hits.Add(1)
		return r, true
	}
	ec.memoMisses.Add(1)
	ec.memo.misses.Add(1)
	if ok {
		// Partial entry: reuse what is there, the caller runs the rest.
		return r, false
	}
	return measure.EngineResults{}, false
}

// memoPeek is memoGet for an opportunistic probe — the pruned skyline
// path's tier-0 interval collapse, which checks every snapshot graph
// even though most get pruned without ever needing engines. Hits count
// (the memo really served them); absences do not count as misses, so
// the wire hit-ratio keeps meaning "share of engine-needing lookups
// the memo answered" — the authoritative miss is counted where the
// engines would otherwise run.
func (ec *evalCtx) memoPeek(name string, seq uint64, needGED, needMCS bool) (measure.EngineResults, bool) {
	if ec == nil || ec.memo == nil {
		return measure.EngineResults{}, false
	}
	r, ok := ec.memo.lru.Get(memoKey(name, seq, ec.qh, ec.evalKey))
	if ok && r.Covers(needGED, needMCS) {
		ec.memoHits.Add(1)
		ec.memo.hits.Add(1)
		return r, true
	}
	return measure.EngineResults{}, false
}

// memoPublish merges freshly computed engine results into the memo.
func (ec *evalCtx) memoPublish(name string, seq uint64, got measure.EngineResults) {
	if ec == nil || ec.memo == nil || (!got.HasGED && !got.HasMCS) {
		return
	}
	ec.memo.lru.Update(memoKey(name, seq, ec.qh, ec.evalKey), func(old measure.EngineResults, ok bool) measure.EngineResults {
		if !ok {
			return got
		}
		if got.HasGED && !old.HasGED {
			old.GED, old.GEDExact, old.HasGED = got.GED, got.GEDExact, true
		}
		if got.HasMCS && !old.HasMCS {
			old.MCS, old.MCSExact, old.HasMCS = got.MCS, got.MCSExact, true
		}
		return old
	})
}

// computeFull evaluates a pair's full statistics with memo interplay:
// replayed entirely on a covering hit, completed from a partial entry,
// published after a fresh run. h must carry both signatures.
func (ec *evalCtx) computeFull(g, q *graph.Graph, seq uint64, eval measure.Options, h measure.PairHints) measure.PairStats {
	if ec == nil || ec.memo == nil || h.Sig1 == nil || h.Sig2 == nil {
		return measure.ComputeHinted(g, q, eval, h)
	}
	have, hit := ec.memoGet(g.Name(), seq, true, true)
	if hit {
		return measure.PairStatsFrom(h.Sig1, h.Sig2, have)
	}
	ps, got := measure.ComputeWith(g, q, eval, h, have)
	ec.memoPublish(g.Name(), seq, got)
	return ps
}

// counters folds the per-query counters into stats fields.
func (ec *evalCtx) counters() (pivotDists, memoHits, memoMisses int) {
	if ec == nil {
		return 0, 0, 0
	}
	return ec.pivotDists, int(ec.memoHits.Load()), int(ec.memoMisses.Load())
}
