package gdb_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
	"skygraph/internal/testutil"
	"skygraph/internal/vector"
)

// vCfg is the test vector configuration: few cells so the partition
// builds even on small seeded collections.
var vCfg = vector.Config{Dims: 16, Cells: 4}

// TestVectorRankedEquivalence: top-k and range answers with the vector
// tier live must be byte-identical to the unpruned reference AND to the
// pruned-but-unvectored scan, across the library's whole configuration
// matrix — paper and seeded data, shard counts 1/2/3/7, capped and
// uncapped engines, with and without the pivot tier and the score memo.
func TestVectorRankedEquivalence(t *testing.T) {
	cases := []struct {
		label string
		gs    []*graph.Graph
		qs    []*graph.Graph
	}{
		{"paper", dataset.PaperDB(), []*graph.Graph{dataset.PaperQuery()}},
		{"seeded", testutil.SeededGraphs(61, 18), testutil.SeededQueries(161, testutil.SeededGraphs(61, 18), 2)},
	}
	evals := []measure.Options{{}, {GEDMaxNodes: 200, MCSMaxNodes: 200}}
	ctx := context.Background()
	for _, tc := range cases {
		flat := testutil.NewDB(t, tc.gs)
		for _, withPivots := range []bool{false, true} {
			for _, withMemo := range []bool{false, true} {
				for _, eval := range evals {
					for _, m := range []measure.Measure{measure.DistEd{}, measure.DistGu{}} {
						for _, q := range tc.qs {
							ref, err := flat.TopKQueryContext(ctx, q, m, 4, gdb.QueryOptions{Eval: eval, Workers: 4})
							if err != nil {
								t.Fatal(err)
							}
							refRG, err := flat.RangeQueryContext(ctx, q, m, 4, gdb.QueryOptions{Eval: eval, Workers: 4})
							if err != nil {
								t.Fatal(err)
							}
							for _, shards := range []int{1, 2, 3, 7} {
								sh := testutil.NewSharded(t, shards, tc.gs)
								if withPivots {
									sh.EnablePivots(pivot.Config{Pivots: 3})
									sh.WaitPivots()
								}
								if withMemo {
									sh.EnableScoreMemo(4096)
								}
								sh.EnableVector(vCfg)
								label := fmt.Sprintf("%s/%s/%s shards=%d pivots=%v memo=%v eval=%v",
									tc.label, q.Name(), m.Name(), shards, withPivots, withMemo, eval.GEDMaxNodes)
								popts := gdb.QueryOptions{Eval: eval, Workers: 4, Prune: true}
								tk, err := sh.TopKQueryContext(ctx, q, m, 4, popts)
								if err != nil {
									t.Fatal(err)
								}
								testutil.RequireSameItems(t, label+"/topk", ref.Items, tk.Items)
								rg, err := sh.RangeQueryContext(ctx, q, m, 4, popts)
								if err != nil {
									t.Fatal(err)
								}
								testutil.RequireSameItems(t, label+"/range", refRG.Items, rg.Items)
								// The opt-out must also match, and must not
								// consult the partition at all.
								noopts := popts
								noopts.NoVector = true
								ntk, err := sh.TopKQueryContext(ctx, q, m, 4, noopts)
								if err != nil {
									t.Fatal(err)
								}
								testutil.RequireSameItems(t, label+"/topk-novector", ref.Items, ntk.Items)
								if ntk.Stats.VectorCells != 0 || ntk.Stats.VectorSkipped != 0 {
									t.Fatalf("%s: NoVector query reported vector work: %+v", label, ntk.Stats)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestVectorSkylineEquivalence: pruned skyline answers with the vector
// pre-selection live must match the unpruned reference across shard
// counts, with and without pivots.
func TestVectorSkylineEquivalence(t *testing.T) {
	for _, seed := range []int64{71, 72} {
		gs := testutil.SeededGraphs(seed, 20)
		ref := testutil.NewDB(t, gs)
		for _, withPivots := range []bool{false, true} {
			for qi, q := range testutil.SeededQueries(seed+100, gs, 2) {
				opts := gdb.QueryOptions{Eval: measure.Options{GEDMaxNodes: 2000, MCSMaxNodes: 2000}}
				want, err := ref.SkylineQuery(q, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{1, 2, 3, 7} {
					sh := testutil.NewSharded(t, shards, gs)
					if withPivots {
						sh.EnablePivots(pivot.Config{Pivots: 3})
						sh.WaitPivots()
					}
					sh.EnableVector(vCfg)
					label := fmt.Sprintf("seed=%d q=%d shards=%d pivots=%v", seed, qi, shards, withPivots)
					popts := opts
					popts.Prune = true
					got, err := sh.SkylineQueryContext(context.Background(), q, popts)
					if err != nil {
						t.Fatal(err)
					}
					testutil.RequireSameSkyline(t, label, want.Skyline, got.Skyline)
					if got.Stats.Evaluated+got.Stats.Pruned != len(gs) {
						t.Fatalf("%s: evaluated %d + pruned %d != %d",
							label, got.Stats.Evaluated, got.Stats.Pruned, len(gs))
					}
				}
			}
		}
	}
}

// TestVectorSurvivesMutations: inserts and deletes keep the embeddings,
// the generation tags and the answers consistent — the synchronous
// Add/Remove hooks must track the database exactly.
func TestVectorSurvivesMutations(t *testing.T) {
	gs := testutil.SeededGraphs(81, 16)
	db := testutil.NewDB(t, gs)
	db.EnablePivots(pivot.Config{Pivots: 3}).Wait()
	vix := db.EnableVector(vCfg)
	q := testutil.SeededQueries(181, gs, 1)[0]
	eval := measure.Options{GEDMaxNodes: 1000, MCSMaxNodes: 1000}

	db.Delete(gs[0].Name())
	db.Delete(gs[9].Name())
	extra := testutil.SeededGraphs(281, 6)
	for _, g := range extra {
		g.SetName("x" + g.Name())
		if err := db.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	db.PivotIndex().Wait()
	if p := vix.Snapshot(); p == nil || p.Gen != db.Generation() || p.N != db.Len() {
		t.Fatalf("partition out of sync after mutations: %+v vs gen=%d len=%d", p, db.Generation(), db.Len())
	}

	ref := testutil.NewDB(t, db.Graphs())
	wantTK, err := ref.TopKQuery(q, measure.DistEd{}, 4, gdb.QueryOptions{Eval: eval})
	if err != nil {
		t.Fatal(err)
	}
	gotTK, err := db.TopKQuery(q, measure.DistEd{}, 4, gdb.QueryOptions{Eval: eval, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireSameItems(t, "after-mutations/topk", wantTK.Items, gotTK.Items)
	if gotTK.Stats.VectorFallbacks != 0 {
		t.Fatalf("synchronous hooks should never desync: %d fallbacks", gotTK.Stats.VectorFallbacks)
	}
	want, err := ref.SkylineQuery(q, gdb.QueryOptions{Eval: eval})
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.SkylineQuery(q, gdb.QueryOptions{Eval: eval, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireSameSkyline(t, "after-mutations/skyline", want.Skyline, got.Skyline)
}

// TestVectorReshardConsistency: Reshard must carry the vector
// configuration to the new shard set — every new shard gets a fresh
// consistent partition — and answers must stay byte-identical across
// 1 -> 2 -> 3 -> 7 -> 2 shards.
func TestVectorReshardConsistency(t *testing.T) {
	gs := testutil.SeededGraphs(91, 21)
	q := testutil.SeededQueries(191, gs, 1)[0]
	eval := measure.Options{GEDMaxNodes: 1000, MCSMaxNodes: 1000}
	ref := testutil.NewDB(t, gs)
	wantTK, err := ref.TopKQuery(q, measure.DistEd{}, 4, gdb.QueryOptions{Eval: eval})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.SkylineQuery(q, gdb.QueryOptions{Eval: eval})
	if err != nil {
		t.Fatal(err)
	}

	sh := testutil.NewSharded(t, 1, gs)
	sh.EnablePivots(pivot.Config{Pivots: 3})
	sh.EnableVector(vCfg)
	sh.WaitPivots()
	opts := gdb.QueryOptions{Eval: eval, Prune: true}
	for _, n := range []int{2, 3, 7, 2} {
		resized, err := sh.Reshard(n)
		if err != nil {
			t.Fatalf("Reshard(%d): %v", n, err)
		}
		sh = resized
		sh.WaitPivots()
		for i := 0; i < n; i++ {
			shard := sh.Shard(i)
			vix := shard.VectorIndex()
			if vix == nil {
				t.Fatalf("shard %d/%d has no vector index after reshard", i, n)
			}
			if p := vix.Snapshot(); p != nil && (p.Gen != shard.Generation() || p.N != shard.Len()) {
				t.Fatalf("shard %d/%d: partition gen/N %d/%d vs shard %d/%d",
					i, n, p.Gen, p.N, shard.Generation(), shard.Len())
			}
		}
		gotTK, err := sh.TopKQueryContext(context.Background(), q, measure.DistEd{}, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		testutil.RequireSameItems(t, fmt.Sprintf("reshard=%d/topk", n), wantTK.Items, gotTK.Items)
		got, err := sh.SkylineQueryContext(context.Background(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		testutil.RequireSameSkyline(t, fmt.Sprintf("reshard=%d/skyline", n), want.Skyline, got.Skyline)
	}
}

// TestVectorCellSkipHappens: on clustered data with the pivot tier
// live, a top-k query from inside one cluster must actually skip
// candidates wholesale — the counter that proves the tier earns its
// keep (equivalence is covered above; this guards the mechanism
// against silent regression to always-probe-everything).
func TestVectorCellSkipHappens(t *testing.T) {
	gs := dataset.RewiredClusters(8, 16, 6, 7, 5, 901)
	db := testutil.NewDB(t, gs)
	db.EnablePivots(pivot.Config{Pivots: 8, QueryMaxNodes: -1}).Wait()
	db.EnableVector(vector.Config{Dims: 16, Cells: 8})
	q := graph.Rewire(gs[0], 1, rand.New(rand.NewSource(902)))
	q.SetName("q")
	res, err := db.TopKQuery(q, measure.DistEd{}, 3, gdb.QueryOptions{Prune: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VectorSkipped == 0 {
		t.Fatalf("no candidates skipped on clustered data: %+v", res.Stats)
	}
	ref, err := testutil.NewDB(t, gs).TopKQuery(q, measure.DistEd{}, 3, gdb.QueryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	testutil.RequireSameItems(t, "clustered", ref.Items, res.Items)
}
