package gdb

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
)

// Filter-and-refine skyline evaluation. A skyline query does not need
// the exact GCS vector of every database graph: a graph whose
// optimistic (lower-bound) vector is already dominated by another
// graph's pessimistic (upper-bound) vector can never be Pareto-optimal,
// so its exact GED/MCS never runs. Evaluation proceeds in tiers of
// increasing cost:
//
//	tier 0  signature bounds   O(labels) per pair, from the stored index,
//	        intersected with the pivot index's triangle-inequality GED
//	        interval (O(P) arithmetic after P query-to-pivot distances)
//	        and collapsed to the exact point on a score-memo hit
//	tier 1  bipartite + greedy polynomial refinement of the survivors
//	tier 2  exact GED/MCS      only for graphs the bounds cannot exclude
//
// Every tier's intervals contain the value measure.Compute would
// report (capped or not — see internal/measure/bound.go), so the
// skyline over the tier-2 survivors is byte-identical to the skyline of
// the full evaluation.

// evalPruned runs the pipeline for q against the snapshot. It returns
// the exact points of the surviving graphs in insertion order, the
// number of graphs pruned without exact evaluation, and the inexact
// pair count among the survivors. The caller has already checked
// measure.Boundable(opts.Basis); ec may be nil (no pivot tier, no
// memo).
func evalPruned(ctx context.Context, sn snap, q *graph.Graph, qsig *measure.Signature, ec *evalCtx, opts QueryOptions) (pts []skyline.Point, pruned, inexact int, err error) {
	n := len(sn.graphs)
	if n == 0 {
		return []skyline.Point{}, 0, 0, nil
	}

	// Tier 0: bound every graph from its stored signature alone, then
	// tighten with the pivot tier and collapse memo-known pairs to
	// their exact point (the strongest interval there is). sigIpts
	// keeps the signature-only intervals when the pivot tier is live,
	// purely to attribute exclusions: a graph pruned under the merged
	// bounds but not under the signature bounds owes its exclusion to
	// the pivot tier.
	trace := opts.Trace
	var tierStart time.Time
	var pivotDur time.Duration
	tightened := 0
	if trace != nil {
		tierStart = time.Now()
	}
	bounds := make([]measure.BoundStats, n)
	ipts := make([]skyline.IntervalPoint, n)
	memoRes := make([]*measure.PairStats, n)
	attribute := ec != nil && ec.pb != nil
	var sigIpts []skyline.IntervalPoint
	if attribute {
		sigIpts = make([]skyline.IntervalPoint, n)
	}
	for i, sig := range sn.sigs {
		name := sn.graphs[i].Name()
		bounds[i] = measure.BoundPair(sig, qsig)
		if r, ok := ec.memoPeek(name, sn.seqs[i], true, true); ok {
			ps := measure.PairStatsFrom(sig, qsig, r)
			memoRes[i] = &ps
			vec := measure.GCS(ps, opts.Basis)
			ipts[i] = skyline.IntervalPoint{ID: name, Lo: vec, Hi: vec}
			if attribute {
				sigIpts[i] = ipts[i]
			}
			continue
		}
		if attribute {
			lo, hi := bounds[i].IntervalGCS(opts.Basis)
			sigIpts[i] = skyline.IntervalPoint{ID: name, Lo: lo, Hi: hi}
		}
		if trace != nil && attribute {
			// The pivot intersection (including any lazy query-to-pivot
			// engine runs inside tighten) is the pivot stage's time; the
			// rest of the tier-0 loop belongs to the bound stage.
			t0 := time.Now()
			ec.tighten(&bounds[i], name)
			pivotDur += time.Since(t0)
			tightened++
		} else {
			ec.tighten(&bounds[i], name)
		}
		lo, hi := bounds[i].IntervalGCS(opts.Basis)
		ipts[i] = skyline.IntervalPoint{ID: name, Lo: lo, Hi: hi}
	}
	pivotPruned0 := 0
	if attribute {
		// Attribution without a second full quadratic pass: a tightened
		// interval is a subset of its signature interval (optimistic
		// corner rises, pessimistic falls), so a signature-pruned point
		// is merged-pruned a fortiori. Prune under signature bounds
		// first, pre-seed those exclusions, and let the merged pass
		// test only the signature survivors — whatever it additionally
		// prunes is exactly the pivot tier's contribution.
		skyline.IntervalPrune(sigIpts)
		for i := range ipts {
			ipts[i].Pruned = sigIpts[i].Pruned
		}
		skyline.IntervalPrune(ipts)
		for i := range ipts {
			if ipts[i].Pruned && !sigIpts[i].Pruned {
				ec.pivotPruned.Add(1)
				pivotPruned0++
			}
		}
	} else {
		skyline.IntervalPrune(ipts)
	}
	tier0Pruned := 0
	if trace != nil {
		for i := range ipts {
			if ipts[i].Pruned {
				tier0Pruned++
			}
		}
		trace.Observe(StageBound, time.Since(tierStart)-pivotDur, n, tier0Pruned-pivotPruned0)
		if attribute {
			trace.Observe(StagePivot, pivotDur, tightened, pivotPruned0)
		}
	}

	// Tier 1: tighten the survivors with the polynomial engines, then
	// prune again. Already-pruned points keep their tier-0 corners —
	// they stay excluded and still act as filters. Memo-scored points
	// are already exact and skip refinement.
	var refineStart time.Time
	if trace != nil {
		refineStart = time.Now()
	}
	wits := make([]*measure.Witness, n)
	refined, err := refineSurvivors(ctx, sn.graphs, q, bounds, wits, memoRes, ipts, opts)
	if err != nil {
		return nil, 0, 0, err
	}
	skyline.IntervalPrune(ipts)
	if trace != nil {
		prunedNow := 0
		for i := range ipts {
			if ipts[i].Pruned {
				prunedNow++
			}
		}
		trace.Observe(StageRefine, time.Since(refineStart), refined, prunedNow-tier0Pruned)
	}

	// Tier 2: exact evaluation of whatever the bounds could not settle,
	// handing each survivor its signatures and tier-1 witness so the
	// engines reuse the histograms and bipartite/greedy results instead
	// of recomputing them. Memo-scored survivors contribute their
	// replayed stats directly — no engine runs at all.
	var exactStart time.Time
	if trace != nil {
		exactStart = time.Now()
	}
	type slot struct {
		i  int
		at int // index into the points slice
	}
	var (
		engGraphs []*graph.Graph
		engSeqs   []uint64
		engHints  []measure.PairHints
		engSlots  []slot
	)
	survivors := 0
	for i := range ipts {
		if ipts[i].Pruned {
			continue
		}
		survivors++
	}
	pts = make([]skyline.Point, survivors)
	at := 0
	for i := range ipts {
		if ipts[i].Pruned {
			continue
		}
		if ps := memoRes[i]; ps != nil {
			pts[at] = skyline.Point{ID: sn.graphs[i].Name(), Vec: measure.GCS(*ps, opts.Basis)}
			if !ps.GEDExact || !ps.MCSExact {
				inexact++
			}
		} else {
			engGraphs = append(engGraphs, sn.graphs[i])
			engSeqs = append(engSeqs, sn.seqs[i])
			engHints = append(engHints, measure.PairHints{Sig1: sn.sigs[i], Sig2: qsig, Witness: wits[i]})
			engSlots = append(engSlots, slot{i: i, at: at})
		}
		at++
	}
	if len(engGraphs) > 0 {
		engPts := make([]skyline.Point, len(engGraphs))
		engInexact, err := evalVectorsCtx(ctx, engGraphs, engSeqs, engHints, q, opts, ec, engPts)
		if err != nil {
			return nil, 0, 0, err
		}
		inexact += engInexact
		for j, s := range engSlots {
			pts[s.at] = engPts[j]
		}
	}
	// Pairs the exact stage settled == the evaluated count (memo replays
	// included); nothing is pruned at tier 2 on the skyline path.
	trace.Observe(StageExact, time.Since(exactStart), survivors, 0)
	return pts, n - survivors, inexact, nil
}

// refineSurvivors runs measure.RefineWitness on every unpruned
// candidate with a worker pool, updating the pessimistic corners in
// place and recording each candidate's witness in wits. (The
// optimistic corners are untouched: refinement only lowers the GED
// upper bound and raises the MCS lower bound.) Memo-scored candidates
// (memoRes[i] != nil) already sit on their exact point and are
// skipped. Honors ctx between candidates. Returns the number of
// candidates refined (the refine stage's pair count).
func refineSurvivors(ctx context.Context, graphs []*graph.Graph, q *graph.Graph, bounds []measure.BoundStats, wits []*measure.Witness, memoRes []*measure.PairStats, ipts []skyline.IntervalPoint, opts QueryOptions) (int, error) {
	var todo []int
	for i := range ipts {
		if !ipts[i].Pruned && memoRes[i] == nil {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return 0, nil
	}
	workers := opts.Workers
	if workers > len(todo) {
		workers = len(todo)
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		canceled atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(todo) || canceled.Load() {
					return
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				i := todo[k]
				bounds[i], wits[i] = measure.RefineWitness(graphs[i], q, bounds[i])
				_, hi := bounds[i].IntervalGCS(opts.Basis)
				ipts[i].Hi = hi
			}
		}()
	}
	wg.Wait()
	return len(todo), ctx.Err()
}
