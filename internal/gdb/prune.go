package gdb

import (
	"context"
	"sync"
	"sync/atomic"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
)

// Filter-and-refine skyline evaluation. A skyline query does not need
// the exact GCS vector of every database graph: a graph whose
// optimistic (lower-bound) vector is already dominated by another
// graph's pessimistic (upper-bound) vector can never be Pareto-optimal,
// so its exact GED/MCS never runs. Evaluation proceeds in tiers of
// increasing cost:
//
//	tier 0  signature bounds   O(labels) per pair, from the stored index
//	tier 1  bipartite + greedy polynomial refinement of the survivors
//	tier 2  exact GED/MCS      only for graphs the bounds cannot exclude
//
// Every tier's intervals contain the value measure.Compute would
// report (capped or not — see internal/measure/bound.go), so the
// skyline over the tier-2 survivors is byte-identical to the skyline of
// the full evaluation.

// evalPruned runs the pipeline for q against the snapshot (graphs,
// sigs). It returns the exact points of the surviving graphs in
// insertion order, the number of graphs pruned without exact
// evaluation, and the inexact pair count among the survivors. The
// caller has already checked measure.Boundable(opts.Basis).
func evalPruned(ctx context.Context, graphs []*graph.Graph, sigs []*measure.Signature, q *graph.Graph, opts QueryOptions) (pts []skyline.Point, pruned, inexact int, err error) {
	n := len(graphs)
	if n == 0 {
		return []skyline.Point{}, 0, 0, nil
	}
	qsig := measure.NewSignature(q)

	// Tier 0: bound every graph from its stored signature alone.
	bounds := make([]measure.BoundStats, n)
	ipts := make([]skyline.IntervalPoint, n)
	for i, sig := range sigs {
		bounds[i] = measure.BoundPair(sig, qsig)
		lo, hi := bounds[i].IntervalGCS(opts.Basis)
		ipts[i] = skyline.IntervalPoint{ID: graphs[i].Name(), Lo: lo, Hi: hi}
	}
	skyline.IntervalPrune(ipts)

	// Tier 1: tighten the survivors with the polynomial engines, then
	// prune again. Already-pruned points keep their tier-0 corners —
	// they stay excluded and still act as filters.
	wits := make([]*measure.Witness, n)
	if err := refineSurvivors(ctx, graphs, q, bounds, wits, ipts, opts); err != nil {
		return nil, 0, 0, err
	}
	skyline.IntervalPrune(ipts)

	// Tier 2: exact evaluation of whatever the bounds could not settle,
	// handing each survivor its signatures and tier-1 witness so the
	// engines reuse the histograms and bipartite/greedy results instead
	// of recomputing them.
	survivors := make([]*graph.Graph, 0, n)
	hints := make([]measure.PairHints, 0, n)
	for i := range ipts {
		if !ipts[i].Pruned {
			survivors = append(survivors, graphs[i])
			hints = append(hints, measure.PairHints{Sig1: sigs[i], Sig2: qsig, Witness: wits[i]})
		}
	}
	pts = make([]skyline.Point, len(survivors))
	inexact, err = evalVectorsCtx(ctx, survivors, hints, q, opts, pts)
	if err != nil {
		return nil, 0, 0, err
	}
	return pts, n - len(survivors), inexact, nil
}

// refineSurvivors runs measure.RefineWitness on every unpruned
// candidate with a worker pool, updating the pessimistic corners in
// place and recording each candidate's witness in wits. (The
// optimistic corners are untouched: refinement only lowers the GED
// upper bound and raises the MCS lower bound.) Honors ctx between
// candidates.
func refineSurvivors(ctx context.Context, graphs []*graph.Graph, q *graph.Graph, bounds []measure.BoundStats, wits []*measure.Witness, ipts []skyline.IntervalPoint, opts QueryOptions) error {
	var todo []int
	for i := range ipts {
		if !ipts[i].Pruned {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return nil
	}
	workers := opts.Workers
	if workers > len(todo) {
		workers = len(todo)
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		canceled atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(todo) || canceled.Load() {
					return
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				i := todo[k]
				bounds[i], wits[i] = measure.RefineWitness(graphs[i], q, bounds[i])
				_, hi := bounds[i].IntervalGCS(opts.Basis)
				ipts[i].Hi = hi
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
