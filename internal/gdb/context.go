package gdb

import (
	"context"
	"time"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
)

// SkylineQueryContext is SkylineQuery with cooperative cancellation: the
// evaluation of pair vectors — the expensive part, each pair costing an
// exact GED and MCS — checks ctx between pairs and aborts early, returning
// ctx.Err(). Pairs already finished are discarded. With opts.Prune the
// filter-and-refine pipeline (see prune.go) skips exact evaluation of
// graphs the bounds prove dominated; the skyline is unchanged.
func (db *DB) SkylineQueryContext(ctx context.Context, q *graph.Graph, opts QueryOptions) (SkylineResult, error) {
	opts = opts.withDefaults()
	start := time.Now()
	t, err := db.VectorTable(ctx, q, opts)
	if err != nil {
		return SkylineResult{}, err
	}
	return SkylineResult{
		Skyline: t.Skyline(opts.Algorithm),
		All:     t.Points,
		Stats: QueryStats{
			Evaluated:       len(t.Points),
			Pruned:          t.Pruned,
			Inexact:         t.Inexact,
			PivotDists:      t.PivotDists,
			PivotPruned:     t.PivotPruned,
			MemoHits:        t.MemoHits,
			MemoMisses:      t.MemoMisses,
			VectorCells:     t.VectorCells,
			VectorSkipped:   t.VectorSkipped,
			VectorFallbacks: t.VectorFallbacks,
			Duration:        time.Since(start),
		},
	}, nil
}

// evalVectorsCtx fills pts[i] with the GCS vector of graphs[i] vs q
// using a worker pool, honoring ctx between pairs. hints, when
// non-nil, is indexed like graphs and carries each pair's stored
// signatures and refinement witnesses for the engines to reuse. seqs
// (indexed like graphs) and ec drive the score-memo interplay; a nil
// ec computes every pair fresh.
func evalVectorsCtx(ctx context.Context, graphs []*graph.Graph, seqs []uint64, hints []measure.PairHints, q *graph.Graph, opts QueryOptions, ec *evalCtx, pts []skyline.Point) (int, error) {
	type result struct {
		i       int
		pt      skyline.Point
		inexact bool
	}
	work := make(chan int)
	results := make(chan result)
	done := make(chan struct{})
	defer close(done)

	for w := 0; w < opts.Workers; w++ {
		go func() {
			for i := range work {
				var h measure.PairHints
				if hints != nil {
					h = hints[i]
				}
				stats := ec.computeFull(graphs[i], q, seqs[i], opts.Eval, h)
				r := result{
					i:       i,
					pt:      skyline.Point{ID: graphs[i].Name(), Vec: measure.GCS(stats, opts.Basis)},
					inexact: !stats.GEDExact || !stats.MCSExact,
				}
				select {
				case results <- r:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		defer close(work)
		for i := range graphs {
			select {
			case work <- i:
			case <-done:
				return
			}
		}
	}()

	inexact := 0
	for filled := 0; filled < len(graphs); filled++ {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case r := <-results:
			pts[r.i] = r.pt
			if r.inexact {
				inexact++
			}
		}
	}
	return inexact, nil
}
