package gdb

import (
	"context"
	"time"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
)

// SkylineQueryContext is SkylineQuery with cooperative cancellation: the
// evaluation of pair vectors — the expensive part, each pair costing an
// exact GED and MCS — checks ctx between pairs and aborts early, returning
// ctx.Err(). Pairs already finished are discarded.
func (db *DB) SkylineQueryContext(ctx context.Context, q *graph.Graph, opts QueryOptions) (SkylineResult, error) {
	opts = opts.withDefaults()
	start := time.Now()
	graphs := db.Graphs()
	pts := make([]skyline.Point, len(graphs))
	inexact, err := evalVectorsCtx(ctx, graphs, q, opts, pts)
	if err != nil {
		return SkylineResult{}, err
	}
	sky := opts.Algorithm(pts)
	return SkylineResult{
		Skyline: sky,
		All:     pts,
		Stats: QueryStats{
			Evaluated: len(pts),
			Inexact:   inexact,
			Duration:  time.Since(start),
		},
	}, nil
}

func evalVectorsCtx(ctx context.Context, graphs []*graph.Graph, q *graph.Graph, opts QueryOptions, pts []skyline.Point) (int, error) {
	type result struct {
		i       int
		pt      skyline.Point
		inexact bool
	}
	work := make(chan int)
	results := make(chan result)
	done := make(chan struct{})
	defer close(done)

	for w := 0; w < opts.Workers; w++ {
		go func() {
			for i := range work {
				stats := measure.Compute(graphs[i], q, opts.Eval)
				r := result{
					i:       i,
					pt:      skyline.Point{ID: graphs[i].Name(), Vec: measure.GCS(stats, opts.Basis)},
					inexact: !stats.GEDExact || !stats.MCSExact,
				}
				select {
				case results <- r:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		defer close(work)
		for i := range graphs {
			select {
			case work <- i:
			case <-done:
				return
			}
		}
	}()

	inexact := 0
	for filled := 0; filled < len(graphs); filled++ {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case r := <-results:
			pts[r.i] = r.pt
			if r.inexact {
				inexact++
			}
		}
	}
	return inexact, nil
}
