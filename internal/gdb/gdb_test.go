package gdb

import (
	"path/filepath"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/graph"
)

func paperDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	if err := db.InsertAll(dataset.PaperDB()); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInsertGetDelete(t *testing.T) {
	db := New()
	g := graph.Path(3, "A", "x")
	g.SetName("p3")
	if err := db.Insert(g); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Errorf("len=%d", db.Len())
	}
	got, ok := db.Get("p3")
	if !ok || !got.Equal(g) {
		t.Error("Get failed")
	}
	if _, ok := db.Get("nope"); ok {
		t.Error("Get of missing graph succeeded")
	}
	if !db.Delete("p3") {
		t.Error("Delete failed")
	}
	if db.Delete("p3") {
		t.Error("double delete succeeded")
	}
	if db.Len() != 0 {
		t.Errorf("len=%d after delete", db.Len())
	}
}

func TestInsertErrors(t *testing.T) {
	db := New()
	unnamed := graph.New("")
	if err := db.Insert(unnamed); err == nil {
		t.Error("unnamed graph accepted")
	}
	g := graph.Path(2, "A", "x")
	g.SetName("g")
	if err := db.Insert(g); err != nil {
		t.Fatal(err)
	}
	dup := graph.Path(4, "B", "y")
	dup.SetName("g")
	if err := db.Insert(dup); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestNamesInsertionOrder(t *testing.T) {
	db := paperDB(t)
	names := db.Names()
	want := []string{"g1", "g2", "g3", "g4", "g5", "g6", "g7"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names=%v", names)
		}
	}
	gs := db.Graphs()
	for i, g := range gs {
		if g.Name() != want[i] {
			t.Fatalf("graphs order wrong at %d", i)
		}
	}
}

func TestStats(t *testing.T) {
	db := paperDB(t)
	s := db.Stats()
	if s.Graphs != 7 {
		t.Errorf("graphs=%d", s.Graphs)
	}
	if s.MinSize != 6 || s.MaxSize != 10 {
		t.Errorf("size range [%d,%d], want [6,10]", s.MinSize, s.MaxSize)
	}
	wantEdges := 0
	for _, n := range dataset.PaperSizes {
		wantEdges += n
	}
	if s.Edges != wantEdges {
		t.Errorf("edges=%d, want %d", s.Edges, wantEdges)
	}
	if s.EdgeLabels != 2 { // "s" and "t"
		t.Errorf("edge labels=%d", s.EdgeLabels)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := paperDB(t)
	path := filepath.Join(t.TempDir(), "db.lgf")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("len=%d, want %d", loaded.Len(), db.Len())
	}
	for _, name := range db.Names() {
		a, _ := db.Get(name)
		b, ok := loaded.Get(name)
		if !ok || !a.Equal(b) {
			t.Errorf("graph %s not preserved", name)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.lgf")); err == nil {
		t.Error("no error for missing file")
	}
}

func TestLowerBoundGED(t *testing.T) {
	db := paperDB(t)
	q := dataset.PaperQuery()
	qv, qe := q.LabelHistogram()
	for i, name := range db.Names() {
		lb, ok := db.LowerBoundGED(name, qv, qe)
		if !ok {
			t.Fatalf("LowerBoundGED(%s) not found", name)
		}
		if lb > dataset.PaperGED[i] {
			t.Errorf("%s: lower bound %v exceeds true GED %v", name, lb, dataset.PaperGED[i])
		}
	}
	if _, ok := db.LowerBoundGED("missing", qv, qe); ok {
		t.Error("lower bound for missing graph")
	}
}

func TestSortedNames(t *testing.T) {
	db := New()
	for _, n := range []string{"zz", "aa", "mm"} {
		g := graph.Path(2, "A", "x")
		g.SetName(n)
		if err := db.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	got := db.SortedNames()
	if got[0] != "aa" || got[1] != "mm" || got[2] != "zz" {
		t.Errorf("sorted=%v", got)
	}
}
