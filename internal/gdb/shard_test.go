package gdb_test

import (
	"context"
	"reflect"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/testutil"
)

func TestShardedRoutingAndOrder(t *testing.T) {
	gs := testutil.SeededGraphs(1, 10)
	sh := testutil.NewSharded(t, 3, gs)
	if sh.Len() != 10 {
		t.Fatalf("len = %d; want 10", sh.Len())
	}
	perShard := 0
	for i := 0; i < sh.NumShards(); i++ {
		perShard += sh.Shard(i).Len()
	}
	if perShard != 10 {
		t.Fatalf("shard occupancy sums to %d; want 10", perShard)
	}
	for _, g := range gs {
		own := sh.ShardFor(g.Name())
		if _, ok := sh.Shard(own).Get(g.Name()); !ok {
			t.Fatalf("graph %s not in its owning shard %d", g.Name(), own)
		}
		if got, ok := sh.Get(g.Name()); !ok || got != g {
			t.Fatalf("Get(%s) = %v, %v", g.Name(), got, ok)
		}
	}
	// Global insertion order is preserved.
	names := sh.Names()
	for i, g := range gs {
		if names[i] != g.Name() {
			t.Fatalf("names[%d] = %s; want %s", i, names[i], g.Name())
		}
	}
	// Duplicate insert is rejected (global uniqueness via stable routing).
	if err := sh.Insert(gs[0]); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
}

func TestShardedPerShardGenerations(t *testing.T) {
	gs := testutil.SeededGraphs(2, 8)
	sh := testutil.NewSharded(t, 4, gs)
	before := sh.Generations()
	victim := gs[3].Name()
	own := sh.ShardFor(victim)
	if !sh.Delete(victim) {
		t.Fatalf("delete %s failed", victim)
	}
	after := sh.Generations()
	for i := range before {
		want := before[i]
		if i == own {
			want++
		}
		if after[i] != want {
			t.Fatalf("shard %d generation %d -> %d; want %d (only shard %d mutates)",
				i, before[i], after[i], want, own)
		}
	}
	if sh.Len() != 7 {
		t.Fatalf("len after delete = %d; want 7", sh.Len())
	}
	// The deleted name drops out of the global order; the rest keep
	// their relative order (seeded names increase lexicographically).
	names := sh.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("order corrupted after delete: %v", names)
		}
	}
}

func TestShardedStatsAggregation(t *testing.T) {
	gs := testutil.SeededGraphs(3, 9)
	flat := testutil.NewDB(t, gs)
	sh := testutil.NewSharded(t, 3, gs)
	if got, want := sh.Stats(), flat.Stats(); got != want {
		t.Fatalf("sharded stats %+v != unsharded stats %+v", got, want)
	}
}

func TestShardedEmptyDB(t *testing.T) {
	sh := gdb.NewSharded(3)
	res, err := sh.SkylineQueryContext(context.Background(), dataset.PaperQuery(), gdb.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 0 || len(res.All) != 0 {
		t.Fatalf("empty sharded db answered %+v", res)
	}
}

// equivCase is one query to check across shard counts.
type equivCase struct {
	q      *graph.Graph
	k      int
	radius float64
}

// requireShardedMatchesUnsharded asserts that for every shard count in
// counts, the sharded engine's skyline, full table, top-k and range
// answers over gs are byte-identical (reflect.DeepEqual, order
// included) to the unsharded engine's.
func requireShardedMatchesUnsharded(t *testing.T, gs []*graph.Graph, cases []equivCase, eval measure.Options, counts []int) {
	t.Helper()
	ctx := context.Background()
	opts := gdb.QueryOptions{Eval: eval, Workers: 4}
	m := measure.DistEd{}
	flat := testutil.NewDB(t, gs)
	for ci, c := range cases {
		ref, err := flat.VectorTable(ctx, c.q, opts)
		if err != nil {
			t.Fatal(err)
		}
		refSky := ref.Skyline(nil)
		refTopK, err := ref.TopK(m, c.k)
		if err != nil {
			t.Fatal(err)
		}
		refRange, err := ref.Range(m, c.radius)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range counts {
			sh := testutil.NewSharded(t, n, gs)
			tables, err := sh.VectorTables(ctx, c.q, opts)
			if err != nil {
				t.Fatal(err)
			}
			label := c.q.Name()
			if label == "" {
				label = "case"
			}
			label = label + "/" + "shards"

			if got := sh.MergeTables(tables); !reflect.DeepEqual(got, ref.Points) {
				t.Fatalf("case %d, %d shards: merged table differs:\n got %v\nwant %v", ci, n, got, ref.Points)
			}
			gotSky := sh.MergeSkyline(tables, nil)
			testutil.RequireSameSkyline(t, label, refSky, gotSky)
			if !reflect.DeepEqual(gotSky, refSky) {
				t.Fatalf("case %d, %d shards: skyline order differs:\n got %v\nwant %v", ci, n, gotSky, refSky)
			}
			gotTopK, err := sh.MergeTopK(tables, m, c.k)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireSameItems(t, label+"/topk", refTopK, gotTopK)
			gotRange, err := sh.MergeRange(tables, m, c.radius)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireSameItems(t, label+"/range", refRange, gotRange)

			// The convenience wrappers agree with the explicit
			// table-and-merge path.
			skyRes, err := sh.SkylineQueryContext(ctx, c.q, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(skyRes.Skyline, refSky) || !reflect.DeepEqual(skyRes.All, ref.Points) {
				t.Fatalf("case %d, %d shards: SkylineQueryContext differs from reference", ci, n)
			}
			tkRes, err := sh.TopKQueryContext(ctx, c.q, m, c.k, opts)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireSameItems(t, label+"/topk-ctx", refTopK, tkRes.Items)
			rgRes, err := sh.RangeQueryContext(ctx, c.q, m, c.radius, opts)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireSameItems(t, label+"/range-ctx", refRange, rgRes.Items)
		}
	}
}

// TestShardedMatchesUnshardedPaper is the acceptance check on the paper
// dataset: for every shard count, merged skyline / top-k / range
// answers are byte-identical to the unsharded engine's.
func TestShardedMatchesUnshardedPaper(t *testing.T) {
	requireShardedMatchesUnsharded(t, dataset.PaperDB(),
		[]equivCase{{q: dataset.PaperQuery(), k: 3, radius: 3}},
		measure.Options{}, []int{1, 2, 3, 7})
}

// TestShardedMatchesUnshardedSeeded is the property test: seeded random
// databases and mutated queries, shard counts 1/2/3/7 — results must be
// identical to the unsharded engine, including order. Budgeted engines
// keep the worst pairs cheap; both sides run the identical computation,
// so equivalence is unaffected.
func TestShardedMatchesUnshardedSeeded(t *testing.T) {
	for _, seed := range []int64{11, 42} {
		gs := testutil.SeededGraphs(seed, 12)
		qs := testutil.SeededQueries(seed+100, gs, 2)
		cases := make([]equivCase, len(qs))
		for i, q := range qs {
			cases[i] = equivCase{q: q, k: 4, radius: 5}
		}
		requireShardedMatchesUnsharded(t, gs, cases,
			measure.Options{GEDMaxNodes: 20000, MCSMaxNodes: 20000}, []int{1, 2, 3, 7})
	}
}
