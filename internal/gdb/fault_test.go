package gdb

import (
	"errors"
	"syscall"
	"testing"

	"skygraph/internal/fault"
)

// TestFaultedMutationLeavesDBUnchanged is the satellite-c table: every
// storage failpoint, in every failure shape it supports, armed while a
// mutation runs. The invariants asserted per case:
//
//  1. the mutation fails with ErrNotPersisted wrapping the injected
//     error (the caller can classify it);
//  2. the in-memory database is byte-identical to before the attempt;
//  3. after the fault clears, mutations succeed on the same handle; and
//  4. a restart recovers exactly the acknowledged mutations — failed
//     ones left no partial trace on disk.
func TestFaultedMutationLeavesDBUnchanged(t *testing.T) {
	type mutation int
	const (
		doInsert mutation = iota
		doDelete
	)
	cases := []struct {
		name  string
		point string
		cfg   fault.Config
		mut   mutation
	}{
		{"store-insert-eio", fault.StoreInsert, fault.Config{Mode: fault.ModeError, Err: syscall.EIO, Limit: 1}, doInsert},
		{"store-delete-eio", fault.StoreDelete, fault.Config{Mode: fault.ModeError, Err: syscall.EIO, Limit: 1}, doDelete},
		{"append-eio", fault.WALAppend, fault.Config{Mode: fault.ModeError, Err: syscall.EIO, Limit: 1}, doInsert},
		{"append-enospc", fault.WALAppend, fault.Config{Mode: fault.ModeError, Err: syscall.ENOSPC, Limit: 1}, doInsert},
		{"append-short", fault.WALAppend, fault.Config{Mode: fault.ModeShortWrite, ShortBytes: 6, Limit: 1}, doInsert},
		{"append-short-delete", fault.WALAppend, fault.Config{Mode: fault.ModeShortWrite, ShortBytes: 6, Limit: 1}, doDelete},
		{"fsync-eio", fault.WALFsync, fault.Config{Mode: fault.ModeError, Err: syscall.EIO, Limit: 1}, doInsert},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer fault.Reset()
			dir := t.TempDir()
			d := reopen(t, dir, 2)
			graphs := storageGraphs(400, 6)
			for _, g := range graphs[:4] {
				if err := d.DB.Insert(g); err != nil {
					t.Fatalf("seed insert: %v", err)
				}
			}
			before := fingerprint(d.DB)

			fault.Set(tc.point, tc.cfg)
			var err error
			switch tc.mut {
			case doInsert:
				err = d.DB.Insert(graphs[4])
			case doDelete:
				_, err = d.DB.DeleteErr(graphs[0].Name())
			}
			if err == nil {
				t.Fatal("mutation under fault succeeded")
			}
			if !errors.Is(err, ErrNotPersisted) {
				t.Fatalf("error %v does not wrap ErrNotPersisted", err)
			}
			if tc.cfg.Err != nil && !errors.Is(err, tc.cfg.Err) {
				t.Fatalf("error %v does not wrap injected %v", err, tc.cfg.Err)
			}
			if got := fingerprint(d.DB); got != before {
				t.Fatal("failed mutation changed the database")
			}

			// Limit=1: the fault has cleared; the same handle keeps working.
			if err := d.DB.Insert(graphs[5]); err != nil {
				t.Fatalf("insert after fault cleared: %v", err)
			}
			want := fingerprint(d.DB)
			if err := d.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			d2 := reopen(t, dir, 3)
			defer d2.Close()
			if got := fingerprint(d2.DB); got != want {
				t.Fatalf("recovered state differs from acked state:\n got %q\nwant %q", got, want)
			}
		})
	}
}

// TestFaultPersistsAcrossManyFailedMutations holds a fault over a run
// of mutations — the degraded-mode steady state — and checks the WAL
// never accumulates partial frames that would poison recovery.
func TestFaultPersistsAcrossManyFailedMutations(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	d := reopen(t, dir, 2)
	graphs := storageGraphs(401, 12)
	for _, g := range graphs[:3] {
		if err := d.DB.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	before := fingerprint(d.DB)
	fault.Set(fault.WALAppend, fault.Config{Mode: fault.ModeShortWrite, ShortBytes: 4})
	for _, g := range graphs[3:9] {
		if err := d.DB.Insert(g); err == nil {
			t.Fatalf("insert %s under persistent fault succeeded", g.Name())
		}
	}
	if got := fingerprint(d.DB); got != before {
		t.Fatal("failed mutations changed the database")
	}
	fault.Reset()
	for _, g := range graphs[9:] {
		if err := d.DB.Insert(g); err != nil {
			t.Fatalf("insert after heal: %v", err)
		}
	}
	want := fingerprint(d.DB)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := reopen(t, dir, 2)
	defer d2.Close()
	if got := fingerprint(d2.DB); got != want {
		t.Fatalf("recovered state differs from acked state:\n got %q\nwant %q", got, want)
	}
}

// TestProbe pins the health probe: it fails while the disk is broken,
// succeeds once healed, and its no-op records are invisible to
// recovery.
func TestProbe(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	d := reopen(t, dir, 2)
	graphs := storageGraphs(402, 2)
	for _, g := range graphs {
		if err := d.DB.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	fault.Set(fault.WALAppend, fault.Config{Mode: fault.ModeError, Err: syscall.EIO, Limit: 1})
	if err := d.Probe(); err == nil {
		t.Fatal("probe succeeded on a broken disk")
	}
	if err := d.Probe(); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	want := fingerprint(d.DB)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := reopen(t, dir, 2)
	defer d2.Close()
	if got := fingerprint(d2.DB); got != want {
		t.Fatalf("probe records leaked into recovered state:\n got %q\nwant %q", got, want)
	}
	if d2.Recovery().ReplayedRecords != 3 { // 2 inserts + 1 noop replayed (skipped)
		t.Fatalf("replayed %d records, want 3", d2.Recovery().ReplayedRecords)
	}
}

// TestSnapshotFaultsDoNotLoseState pins that a faulted snapshot or
// manifest replace fails the Snapshot call but never the data: the WAL
// still holds everything, and recovery serves the full acked state.
func TestSnapshotFaultsDoNotLoseState(t *testing.T) {
	for _, point := range []string{fault.SnapshotWrite, fault.ManifestReplace} {
		t.Run(point, func(t *testing.T) {
			defer fault.Reset()
			dir := t.TempDir()
			d := reopen(t, dir, 2)
			for _, g := range storageGraphs(403, 5) {
				if err := d.DB.Insert(g); err != nil {
					t.Fatal(err)
				}
			}
			fault.Set(point, fault.Config{Mode: fault.ModeError, Err: syscall.ENOSPC, Limit: 1})
			if err := d.Snapshot(); err == nil {
				t.Fatal("faulted snapshot succeeded")
			}
			// Healed: the next snapshot succeeds and recovery uses it.
			if err := d.Snapshot(); err != nil {
				t.Fatalf("snapshot after heal: %v", err)
			}
			want := fingerprint(d.DB)
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d2 := reopen(t, dir, 2)
			defer d2.Close()
			if got := fingerprint(d2.DB); got != want {
				t.Fatalf("recovered state differs:\n got %q\nwant %q", got, want)
			}
			if d2.Recovery().SnapshotGraphs != 5 {
				t.Fatalf("recovered %d graphs from snapshot, want 5", d2.Recovery().SnapshotGraphs)
			}
		})
	}
}

// TestInsertSeqHighWater pins the monotone high-water accessor the
// idempotency checks rely on.
func TestInsertSeqHighWater(t *testing.T) {
	before := InsertSeqHighWater()
	db := New()
	for _, g := range storageGraphs(404, 3) {
		if err := db.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	if got := InsertSeqHighWater(); got != before+3 {
		t.Fatalf("high-water %d, want %d", got, before+3)
	}
}
