package gdb

import (
	"context"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/measure"
	"skygraph/internal/topk"
)

// rankedMeasures are the measures the property tests sweep: one from
// each engine family plus a signature-only feature measure.
var rankedMeasures = []measure.Measure{
	measure.DistEd{}, measure.DistNEd{}, measure.DistMcs{}, measure.DistGu{}, measure.DistVLabel{},
}

func requireSameItems(t *testing.T, label string, want, got []topk.Item) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: item counts differ: want %v, got %v", label, want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: item %d differs: want %+v, got %+v (want %v got %v)", label, i, want[i], got[i], want, got)
		}
	}
}

// TestRankedTopKMatchesUnpruned asserts the best-first pruned top-k
// path returns byte-identical items (scores and tie-order) to the full
// parallel scan, across measures, k values and engine caps, on the
// paper database.
func TestRankedTopKMatchesUnpruned(t *testing.T) {
	db := paperDB(t)
	q := dataset.PaperQuery()
	for _, eval := range []measure.Options{{}, {GEDMaxNodes: 40, MCSMaxNodes: 40}} {
		for _, m := range rankedMeasures {
			for _, k := range []int{1, 2, 3, 7, 10} {
				ref, err := db.TopKQuery(q, m, k, QueryOptions{Eval: eval})
				if err != nil {
					t.Fatal(err)
				}
				got, err := db.TopKQuery(q, m, k, QueryOptions{Eval: eval, Prune: true})
				if err != nil {
					t.Fatal(err)
				}
				label := m.Name()
				requireSameItems(t, label, ref.Items, got.Items)
				if got.Stats.Evaluated+got.Stats.Pruned != db.Len() {
					t.Errorf("%s k=%d: evaluated %d + pruned %d != %d",
						label, k, got.Stats.Evaluated, got.Stats.Pruned, db.Len())
				}
			}
		}
	}
}

// TestRankedRangeMatchesUnpruned is the range analogue, including the
// order of the returned items (insertion order on both paths).
func TestRankedRangeMatchesUnpruned(t *testing.T) {
	db := paperDB(t)
	q := dataset.PaperQuery()
	for _, m := range rankedMeasures {
		for _, radius := range []float64{0, 0.2, 0.5, 3, 10} {
			ref, err := db.RangeQuery(q, m, radius, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.RangeQuery(q, m, radius, QueryOptions{Prune: true})
			if err != nil {
				t.Fatal(err)
			}
			requireSameItems(t, m.Name(), ref.Items, got.Items)
		}
	}
}

// TestRankedCanceled checks the pruned path honors context
// cancellation.
func TestRankedCanceled(t *testing.T) {
	db := paperDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.TopKQueryContext(ctx, dataset.PaperQuery(), measure.DistEd{}, 2, QueryOptions{Prune: true}); err == nil {
		t.Error("canceled pruned top-k succeeded")
	}
	if _, err := db.RangeQueryContext(ctx, dataset.PaperQuery(), measure.DistEd{}, 2, QueryOptions{Prune: true}); err == nil {
		t.Error("canceled pruned range succeeded")
	}
}
