package gdb

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"skygraph/internal/diversity"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
	"skygraph/internal/topk"
)

// QueryOptions configures similarity queries.
type QueryOptions struct {
	// Basis is the measure vector defining the GCS (Definition 11); nil
	// means the paper's default (DistEd, DistMcs, DistGu).
	Basis []measure.Measure
	// Eval bounds the exact GED/MCS engines (zero = exact, unbounded).
	Eval measure.Options
	// Workers is the parallelism for pair evaluation; 0 means GOMAXPROCS.
	Workers int
	// Algorithm computes the skyline; nil means skyline.SFS.
	Algorithm skyline.Algorithm
	// QueryHash optionally carries graph.QueryHash(q), precomputed by
	// the caller (the serving layer computes it for its cache keys
	// anyway). The cross-query score memo keys on it; when empty it is
	// computed on demand, once per evaluation.
	QueryHash string
	// Prune enables filter-and-refine evaluation driven by the
	// signature/bound index. For skyline queries, graphs whose bound
	// intervals prove them dominated are never evaluated exactly; the
	// skyline is identical to an unpruned run, but SkylineResult.All
	// (and VectorTable.Points) then holds only the evaluated survivors,
	// so leave Prune off when the full table is needed. For top-k and
	// range queries, evaluation is best-first against a live threshold
	// (the k-th best score, or the radius): candidates whose optimistic
	// bound — or a threshold-fed engine decision run — proves them out
	// are never scored exactly, and the answer (scores and tie-order)
	// is identical to an unpruned run. Diversity queries ignore Prune.
	// Ignored for measures outside this package's built-ins.
	Prune bool
	// NoVector opts a pruned query out of the vector candidate tier
	// (EnableVector): candidates are scanned in plain bound order with
	// no partition probe. Answers are identical either way — the flag
	// exists for A/B measurement and as an escape hatch. Meaningless
	// when no vector index is attached.
	NoVector bool
	// Trace, when non-nil, accumulates per-cascade-stage work counters
	// and durations for this query (see trace.go). The same trace may be
	// shared by every shard of a sharded query; recording is
	// concurrency-safe. Nil (the default) records nothing and costs
	// nothing.
	Trace *QueryTrace
}

func (o QueryOptions) withDefaults() QueryOptions {
	if o.Basis == nil {
		o.Basis = measure.Default()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Algorithm == nil {
		o.Algorithm = skyline.SFS
	}
	return o
}

// QueryStats reports work done by a query.
type QueryStats struct {
	// Evaluated counts graphs whose exact answer contribution was
	// computed: the full GCS vector for skyline queries, the exact
	// ranking score for top-k and range queries.
	Evaluated int
	// Pruned counts graphs skipped via index bounds under
	// QueryOptions.Prune: the signature/bipartite interval filter for
	// skyline queries, and for top-k and range queries the best-first
	// threshold cutoff plus the threshold-fed engine decision runs.
	Pruned int
	// Inexact counts pairs where a capped engine returned a bound rather
	// than the exact value.
	Inexact int
	// PivotDists counts query-to-pivot distance computations the pivot
	// tier paid for (P per freshly scanned shard with a live index).
	PivotDists int
	// PivotPruned counts graphs whose exclusion needed the pivot
	// tier's triangle bounds — the signature bounds alone would not
	// have excluded them.
	PivotPruned int
	// MemoHits and MemoMisses count cross-query score-memo lookups;
	// hits replayed recorded engine results instead of running engines.
	MemoHits   int
	MemoMisses int
	// VectorCells counts partition cells the vector tier probed
	// (bounded and offered to the scan); VectorSkipped counts graphs in
	// cells the tier proved out wholesale — their per-graph bounds were
	// never even computed. VectorFallbacks counts snapshots where a
	// vector index was attached but could not serve the query (stale
	// generation, partition not built yet) and the scan fell back to
	// the plain bound order.
	VectorCells     int
	VectorSkipped   int
	VectorFallbacks int
	// Duration is the wall-clock query time.
	Duration time.Duration
}

// addRanked folds one database's ranked-scan contribution in.
func (s *QueryStats) addRanked(o RankedStats) {
	s.Evaluated += o.Evaluated
	s.Pruned += o.Pruned
	s.Inexact += o.Inexact
	s.PivotDists += o.PivotDists
	s.PivotPruned += o.PivotPruned
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
	s.VectorCells += o.VectorCells
	s.VectorSkipped += o.VectorSkipped
	s.VectorFallbacks += o.VectorFallbacks
}

// SkylineResult is the answer to a similarity skyline query.
type SkylineResult struct {
	// Skyline is GSS(D, q): the non-dominated graphs with their GCS
	// vectors, in database insertion order.
	Skyline []skyline.Point
	// All holds every evaluated (graph, vector) pair, in insertion order —
	// the full Table III analogue. Under QueryOptions.Prune it holds only
	// the filter-phase survivors (pruned graphs have no exact vector).
	All   []skyline.Point
	Stats QueryStats
}

// SkylineQuery computes the graph similarity skyline GSS(D, q) of
// Definition 12/Eq. 4: evaluate the GCS vector of database graphs
// against q in parallel — all of them, or just the bound-filter
// survivors under QueryOptions.Prune — then keep the Pareto-optimal
// ones.
func (db *DB) SkylineQuery(q *graph.Graph, opts QueryOptions) (SkylineResult, error) {
	return db.SkylineQueryContext(context.Background(), q, opts)
}

// TopKResult is the answer to a single-measure top-k query.
type TopKResult struct {
	Items []topk.Item
	Stats QueryStats
}

// TopKQuery is the single-measure baseline (Section VI): the k database
// graphs with the smallest distance under one measure. See
// TopKQueryContext.
func (db *DB) TopKQuery(q *graph.Graph, m measure.Measure, k int, opts QueryOptions) (TopKResult, error) {
	return db.TopKQueryContext(context.Background(), q, m, k, opts)
}

// TopKQueryContext answers a single-measure top-k query with a parallel
// scan (opts.Workers wide, honoring ctx between pairs). With opts.Prune
// set and a built-in measure, evaluation is best-first on the bound
// index instead: candidates whose optimistic bound or an engine
// decision run proves them past the live k-th best score are never
// scored exactly (see ranked.go); the items — scores and tie-order —
// are identical either way.
func (db *DB) TopKQueryContext(ctx context.Context, q *graph.Graph, m measure.Measure, k int, opts QueryOptions) (TopKResult, error) {
	if k < 1 {
		return TopKResult{}, fmt.Errorf("gdb: k must be >= 1")
	}
	opts = opts.withDefaults()
	start := time.Now()
	stats := QueryStats{}
	var items []topk.Item
	if opts.Prune && measure.Rankable(m) {
		run := NewRankedTopK(m, k)
		rs, err := run.EvalDB(ctx, db, q, opts)
		if err != nil {
			return TopKResult{}, err
		}
		stats.addRanked(rs)
		items = run.Items()
	} else {
		all, inexact, ec, err := db.scanScores(ctx, q, m, opts)
		if err != nil {
			return TopKResult{}, err
		}
		stats.Evaluated, stats.Inexact = len(all), inexact
		stats.PivotDists, stats.MemoHits, stats.MemoMisses = ec.counters()
		// The whole unpruned scan is exact-stage work: every pair runs
		// the engines (or replays the memo), nothing is bounded away.
		opts.Trace.Observe(StageExact, time.Since(start), len(all), 0)
		// One bounded-heap pass, extracted once at the end — not a
		// re-selection per improving item.
		items = topk.Select(all, k)
	}
	stats.Duration = time.Since(start)
	return TopKResult{Items: items, Stats: stats}, nil
}

// RangeResult is the answer to a distance-range query.
type RangeResult struct {
	Items []topk.Item
	Stats QueryStats
}

// RangeQuery returns every graph whose distance to q under m is at most
// radius, in insertion order. See RangeQueryContext.
func (db *DB) RangeQuery(q *graph.Graph, m measure.Measure, radius float64, opts QueryOptions) (RangeResult, error) {
	return db.RangeQueryContext(context.Background(), q, m, radius, opts)
}

// RangeQueryContext answers a single-measure range query with a
// parallel scan (opts.Workers wide, honoring ctx between pairs). With
// opts.Prune set and a built-in measure, evaluation is best-first on
// the bound index with the radius as a fixed threshold; the items are
// identical either way.
func (db *DB) RangeQueryContext(ctx context.Context, q *graph.Graph, m measure.Measure, radius float64, opts QueryOptions) (RangeResult, error) {
	opts = opts.withDefaults()
	start := time.Now()
	stats := QueryStats{}
	items := []topk.Item{}
	if opts.Prune && measure.Rankable(m) {
		// One snapshot serves both the scan and the result ordering, so
		// a concurrent mutation cannot desync the two.
		sn := db.snapshot()
		run := NewRankedRange(m, radius)
		qsig := run.querySig(q)
		ec := db.newEvalCtx(q, qsig, opts, true)
		rs, err := evalRanked(ctx, sn, qsig, q, m, opts, ec, db.startVector(sn, qsig, q, m, opts, ec), run.coll)
		if err != nil {
			return RangeResult{}, err
		}
		stats.addRanked(rs)
		items = append(items, run.Items()...)
		sortItemsBySnapshot(items, sn.graphs)
	} else {
		all, inexact, ec, err := db.scanScores(ctx, q, m, opts)
		if err != nil {
			return RangeResult{}, err
		}
		stats.Evaluated, stats.Inexact = len(all), inexact
		stats.PivotDists, stats.MemoHits, stats.MemoMisses = ec.counters()
		opts.Trace.Observe(StageExact, time.Since(start), len(all), 0)
		for _, it := range all {
			if it.Score <= radius {
				items = append(items, it)
			}
		}
	}
	stats.Duration = time.Since(start)
	return RangeResult{Items: items, Stats: stats}, nil
}

// sortItemsBySnapshot restores the snapshot's insertion order on a
// ranked result (parallel best-first evaluation finishes out of
// order).
func sortItemsBySnapshot(items []topk.Item, graphs []*graph.Graph) {
	pos := make(map[string]int, len(graphs))
	for i, g := range graphs {
		pos[g.Name()] = i
	}
	sort.SliceStable(items, func(i, j int) bool { return byRank(pos, items[i].ID, items[j].ID) })
}

// scanScores is the unpruned reference path: the exact score of every
// database graph under m, in snapshot order, computed by a worker pool
// that honors ctx between pairs. Only the engines m consumes run
// (measure.ScorePair) — a foreign measure falls back to the full pair
// evaluation. The score memo applies on both branches (replayed
// results are byte-identical to fresh engine runs); the returned
// evalCtx carries the lookup counters.
func (db *DB) scanScores(ctx context.Context, q *graph.Graph, m measure.Measure, opts QueryOptions) ([]topk.Item, int, *evalCtx, error) {
	sn := db.snapshot()
	qsig := measure.NewSignature(q)
	ec := db.newEvalCtx(q, qsig, opts, false)
	rankable := measure.Rankable(m)
	needGED, needMCS := measure.EngineNeeds(m)
	useMemo := ec != nil && ec.memo != nil
	items := make([]topk.Item, len(sn.graphs))
	type result struct {
		i       int
		score   float64
		inexact bool
	}
	work := make(chan int)
	results := make(chan result)
	done := make(chan struct{})
	defer close(done)
	workers := opts.Workers
	if workers > len(sn.graphs) {
		workers = len(sn.graphs)
	}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range work {
				h := measure.PairHints{Sig1: sn.sigs[i], Sig2: qsig}
				var r result
				r.i = i
				if rankable {
					var have measure.EngineResults
					if useMemo && (needGED || needMCS) {
						have, _ = ec.memoGet(sn.graphs[i].Name(), sn.seqs[i], needGED, needMCS)
					}
					var got measure.EngineResults
					r.score, got, r.inexact = measure.ScorePairWith(sn.graphs[i], q, m, opts.Eval, h, have)
					ec.memoPublish(sn.graphs[i].Name(), sn.seqs[i], got)
				} else {
					ps := ec.computeFull(sn.graphs[i], q, sn.seqs[i], opts.Eval, h)
					r.score, r.inexact = m.FromStats(ps), !ps.GEDExact || !ps.MCSExact
				}
				select {
				case results <- r:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		defer close(work)
		for i := range sn.graphs {
			select {
			case work <- i:
			case <-done:
				return
			}
		}
	}()
	inexact := 0
	for filled := 0; filled < len(sn.graphs); filled++ {
		select {
		case <-ctx.Done():
			return nil, 0, nil, ctx.Err()
		case r := <-results:
			items[r.i] = topk.Item{ID: sn.graphs[r.i].Name(), Score: r.score}
			if r.inexact {
				inexact++
			}
		}
	}
	return items, inexact, ec, nil
}

// DiverseResult is the answer to a diversity-refined skyline query
// (Section VII).
type DiverseResult struct {
	SkylineResult
	// Selected is the maximally diverse k-subset of the skyline (graph
	// names, in skyline order).
	Selected []string
	// Val is the winning rank sum (only set by the exhaustive path).
	Val int
	// Exhaustive reports whether the optimal subset search ran (false =
	// greedy fallback for very large skylines).
	Exhaustive bool
}

// DiverseSkylineQuery computes the skyline and then extracts its most
// diverse k-subset per Section VII: pairwise distances between skyline
// members are evaluated in the diversity basis (DistNEd, DistMcs, DistGu),
// every k-subset is dense-ranked per dimension, and the minimal rank sum
// wins. Skylines whose C(n,k) exceeds maxCandidates fall back to the greedy
// farthest-point heuristic. If k >= |skyline| the whole skyline is selected.
func (db *DB) DiverseSkylineQuery(q *graph.Graph, k int, opts QueryOptions) (DiverseResult, error) {
	if k < 1 {
		return DiverseResult{}, fmt.Errorf("gdb: k must be >= 1")
	}
	// Diversity reports the full vector table alongside the selection, so
	// the pruned evaluation path (which drops dominated rows) is not used.
	opts.Prune = false
	skyRes, err := db.SkylineQuery(q, opts)
	if err != nil {
		return DiverseResult{}, err
	}
	res := DiverseResult{SkylineResult: skyRes}
	n := len(skyRes.Skyline)
	if n == 0 {
		return res, nil
	}
	if k >= n {
		for _, p := range skyRes.Skyline {
			res.Selected = append(res.Selected, p.ID)
		}
		res.Exhaustive = true
		return res, nil
	}
	mat, err := db.pairwiseMatrix(skyRes.Skyline, opts)
	if err != nil {
		return DiverseResult{}, err
	}
	best, _, exErr := diversity.Exhaustive(mat, k, 0)
	if exErr != nil {
		sel, gErr := diversity.Greedy(mat, k)
		if gErr != nil {
			return DiverseResult{}, gErr
		}
		for _, i := range sel {
			res.Selected = append(res.Selected, skyRes.Skyline[i].ID)
		}
		return res, nil
	}
	for _, i := range best.Members {
		res.Selected = append(res.Selected, skyRes.Skyline[i].ID)
	}
	res.Val = best.Val
	res.Exhaustive = true
	return res, nil
}

// pairwiseMatrix evaluates the diversity-basis distances between all pairs
// of skyline members.
func (db *DB) pairwiseMatrix(sky []skyline.Point, opts QueryOptions) (*diversity.Matrix, error) {
	opts = opts.withDefaults()
	basis := measure.DiversityBasis()
	mat := diversity.NewMatrix(len(sky), len(basis))
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < len(sky); i++ {
		for j := i + 1; j < len(sky); j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	var wg sync.WaitGroup
	work := make(chan pair)
	var firstErr error
	var mu sync.Mutex
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				gi, ok1 := db.Get(sky[p.i].ID)
				gj, ok2 := db.Get(sky[p.j].ID)
				if !ok1 || !ok2 {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("gdb: skyline member vanished during query")
					}
					mu.Unlock()
					continue
				}
				ps := measure.Compute(gi, gj, opts.Eval)
				for d, m := range basis {
					mat.Set(d, p.i, p.j, m.FromStats(ps))
				}
			}
		}()
	}
	for _, p := range pairs {
		work <- p
	}
	close(work)
	wg.Wait()
	return mat, firstErr
}
