package gdb

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"skygraph/internal/diversity"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
	"skygraph/internal/topk"
)

// QueryOptions configures similarity queries.
type QueryOptions struct {
	// Basis is the measure vector defining the GCS (Definition 11); nil
	// means the paper's default (DistEd, DistMcs, DistGu).
	Basis []measure.Measure
	// Eval bounds the exact GED/MCS engines (zero = exact, unbounded).
	Eval measure.Options
	// Workers is the parallelism for pair evaluation; 0 means GOMAXPROCS.
	Workers int
	// Algorithm computes the skyline; nil means skyline.SFS.
	Algorithm skyline.Algorithm
	// Prune enables filter-and-refine skyline evaluation: graphs whose
	// signature/bipartite bound intervals prove them dominated are never
	// evaluated exactly. The skyline is identical to an unpruned run, but
	// SkylineResult.All (and VectorTable.Points) then holds only the
	// evaluated survivors, so leave Prune off when the full table is
	// needed (top-k, range and diversity queries ignore it). Ignored for
	// bases containing measures outside this package's built-ins.
	Prune bool
}

func (o QueryOptions) withDefaults() QueryOptions {
	if o.Basis == nil {
		o.Basis = measure.Default()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Algorithm == nil {
		o.Algorithm = skyline.SFS
	}
	return o
}

// QueryStats reports work done by a query.
type QueryStats struct {
	// Evaluated counts graphs whose full GCS vector was computed.
	Evaluated int
	// Pruned counts graphs skipped via index bounds: the signature /
	// bipartite interval filter for skyline queries run with
	// QueryOptions.Prune, the histogram lower bound for DistEd top-k and
	// range queries.
	Pruned int
	// Inexact counts pairs where a capped engine returned a bound rather
	// than the exact value.
	Inexact int
	// Duration is the wall-clock query time.
	Duration time.Duration
}

// SkylineResult is the answer to a similarity skyline query.
type SkylineResult struct {
	// Skyline is GSS(D, q): the non-dominated graphs with their GCS
	// vectors, in database insertion order.
	Skyline []skyline.Point
	// All holds every evaluated (graph, vector) pair, in insertion order —
	// the full Table III analogue. Under QueryOptions.Prune it holds only
	// the filter-phase survivors (pruned graphs have no exact vector).
	All   []skyline.Point
	Stats QueryStats
}

// SkylineQuery computes the graph similarity skyline GSS(D, q) of
// Definition 12/Eq. 4: evaluate the GCS vector of database graphs
// against q in parallel — all of them, or just the bound-filter
// survivors under QueryOptions.Prune — then keep the Pareto-optimal
// ones.
func (db *DB) SkylineQuery(q *graph.Graph, opts QueryOptions) (SkylineResult, error) {
	return db.SkylineQueryContext(context.Background(), q, opts)
}

// TopKResult is the answer to a single-measure top-k query.
type TopKResult struct {
	Items []topk.Item
	Stats QueryStats
}

// TopKQuery is the single-measure baseline (Section VI): the k database
// graphs with the smallest distance under one measure. For DistEd the
// histogram index prunes graphs whose lower bound already exceeds the
// current k-th best distance, skipping the exact computation.
func (db *DB) TopKQuery(q *graph.Graph, m measure.Measure, k int, opts QueryOptions) (TopKResult, error) {
	if k < 1 {
		return TopKResult{}, fmt.Errorf("gdb: k must be >= 1")
	}
	opts = opts.withDefaults()
	start := time.Now()
	qsig := measure.NewSignature(q)
	_, isEd := m.(measure.DistEd)

	var items []topk.Item
	stats := QueryStats{}
	kth := math.Inf(1)
	kthCount := 0
	graphs, sigs, _ := db.snapshot()
	for i, g := range graphs {
		if isEd && kthCount >= k {
			if sigs[i].HistLB(qsig) > kth {
				stats.Pruned++
				continue
			}
		}
		ps := measure.ComputeHinted(g, q, opts.Eval, measure.PairHints{Sig1: sigs[i], Sig2: qsig})
		if !ps.GEDExact || !ps.MCSExact {
			stats.Inexact++
		}
		stats.Evaluated++
		d := m.FromStats(ps)
		items = append(items, topk.Item{ID: g.Name(), Score: d})
		if d < kth || kthCount < k {
			best := topk.Select(items, k)
			kthCount = len(best)
			if kthCount == k {
				kth = best[k-1].Score
			}
		}
	}
	stats.Duration = time.Since(start)
	return TopKResult{Items: topk.Select(items, k), Stats: stats}, nil
}

// RangeResult is the answer to a distance-range query.
type RangeResult struct {
	Items []topk.Item
	Stats QueryStats
}

// RangeQuery returns every graph whose distance to q under m is at most
// radius. For DistEd the histogram index prunes hopeless candidates.
func (db *DB) RangeQuery(q *graph.Graph, m measure.Measure, radius float64, opts QueryOptions) (RangeResult, error) {
	opts = opts.withDefaults()
	start := time.Now()
	qsig := measure.NewSignature(q)
	_, isEd := m.(measure.DistEd)
	var items []topk.Item
	stats := QueryStats{}
	graphs, sigs, _ := db.snapshot()
	for i, g := range graphs {
		if isEd {
			if sigs[i].HistLB(qsig) > radius {
				stats.Pruned++
				continue
			}
		}
		ps := measure.ComputeHinted(g, q, opts.Eval, measure.PairHints{Sig1: sigs[i], Sig2: qsig})
		if !ps.GEDExact || !ps.MCSExact {
			stats.Inexact++
		}
		stats.Evaluated++
		if d := m.FromStats(ps); d <= radius {
			items = append(items, topk.Item{ID: g.Name(), Score: d})
		}
	}
	stats.Duration = time.Since(start)
	return RangeResult{Items: items, Stats: stats}, nil
}

// DiverseResult is the answer to a diversity-refined skyline query
// (Section VII).
type DiverseResult struct {
	SkylineResult
	// Selected is the maximally diverse k-subset of the skyline (graph
	// names, in skyline order).
	Selected []string
	// Val is the winning rank sum (only set by the exhaustive path).
	Val int
	// Exhaustive reports whether the optimal subset search ran (false =
	// greedy fallback for very large skylines).
	Exhaustive bool
}

// DiverseSkylineQuery computes the skyline and then extracts its most
// diverse k-subset per Section VII: pairwise distances between skyline
// members are evaluated in the diversity basis (DistNEd, DistMcs, DistGu),
// every k-subset is dense-ranked per dimension, and the minimal rank sum
// wins. Skylines whose C(n,k) exceeds maxCandidates fall back to the greedy
// farthest-point heuristic. If k >= |skyline| the whole skyline is selected.
func (db *DB) DiverseSkylineQuery(q *graph.Graph, k int, opts QueryOptions) (DiverseResult, error) {
	if k < 1 {
		return DiverseResult{}, fmt.Errorf("gdb: k must be >= 1")
	}
	// Diversity reports the full vector table alongside the selection, so
	// the pruned evaluation path (which drops dominated rows) is not used.
	opts.Prune = false
	skyRes, err := db.SkylineQuery(q, opts)
	if err != nil {
		return DiverseResult{}, err
	}
	res := DiverseResult{SkylineResult: skyRes}
	n := len(skyRes.Skyline)
	if n == 0 {
		return res, nil
	}
	if k >= n {
		for _, p := range skyRes.Skyline {
			res.Selected = append(res.Selected, p.ID)
		}
		res.Exhaustive = true
		return res, nil
	}
	mat, err := db.pairwiseMatrix(skyRes.Skyline, opts)
	if err != nil {
		return DiverseResult{}, err
	}
	best, _, exErr := diversity.Exhaustive(mat, k, 0)
	if exErr != nil {
		sel, gErr := diversity.Greedy(mat, k)
		if gErr != nil {
			return DiverseResult{}, gErr
		}
		for _, i := range sel {
			res.Selected = append(res.Selected, skyRes.Skyline[i].ID)
		}
		return res, nil
	}
	for _, i := range best.Members {
		res.Selected = append(res.Selected, skyRes.Skyline[i].ID)
	}
	res.Val = best.Val
	res.Exhaustive = true
	return res, nil
}

// pairwiseMatrix evaluates the diversity-basis distances between all pairs
// of skyline members.
func (db *DB) pairwiseMatrix(sky []skyline.Point, opts QueryOptions) (*diversity.Matrix, error) {
	opts = opts.withDefaults()
	basis := measure.DiversityBasis()
	mat := diversity.NewMatrix(len(sky), len(basis))
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < len(sky); i++ {
		for j := i + 1; j < len(sky); j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	var wg sync.WaitGroup
	work := make(chan pair)
	var firstErr error
	var mu sync.Mutex
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				gi, ok1 := db.Get(sky[p.i].ID)
				gj, ok2 := db.Get(sky[p.j].ID)
				if !ok1 || !ok2 {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("gdb: skyline member vanished during query")
					}
					mu.Unlock()
					continue
				}
				ps := measure.Compute(gi, gj, opts.Eval)
				for d, m := range basis {
					mat.Set(d, p.i, p.j, m.FromStats(ps))
				}
			}
		}()
	}
	for _, p := range pairs {
		work <- p
	}
	close(work)
	wg.Wait()
	return mat, firstErr
}
