package gdb

import (
	"sync/atomic"
	"time"
)

// Per-query cascade tracing. A QueryTrace attached to
// QueryOptions.Trace records, per cascade stage, how much wall-clock
// work ran there and how many candidate pairs it settled. The stages
// mirror the filter-and-refine pipeline (prune.go / ranked.go):
//
//	vector  the tier below the bounds: partition-index cell ordering,
//	        per-cell admissible floors, and the wholesale cell skips
//	        they prove (see internal/vector)
//	bound   tier-0 signature bounds: histogram/degree intervals from the
//	        stored index, the candidate ordering of ranked scans, and
//	        the threshold cutoff that ends them
//	pivot   the pivot index's triangle-inequality intersection —
//	        query-to-pivot distance runs plus interval arithmetic
//	refine  tier-1 polynomial refinement (bipartite + greedy)
//	exact   tier-2 engine work: exact GED/MCS runs, threshold-fed
//	        decision runs, and score-memo replays
//	merge   combining per-shard answers (skyline merge, top-k heap
//	        merge, range concatenation) — recorded by the serving layer
//
// Counts are exact work attribution: summed over stages, Pruned equals
// the query's reported pruned count, and the exact stage's Pairs minus
// its Pruned equals the reported evaluated count (on ranked scans the
// exact stage both scores candidates and, via engine decision runs,
// excludes them). Durations are summed across
// shards and workers, so on a parallel evaluation they can exceed the
// request's wall-clock time — they answer "where did the work go", not
// "what was the critical path".
//
// All methods are nil-safe and concurrency-safe: one QueryTrace is
// shared by every shard (and every evaluation worker) of one query.

// Stage identifies one cascade stage of a traced query.
type Stage int

const (
	StageVector Stage = iota
	StageBound
	StagePivot
	StageRefine
	StageExact
	StageMerge
	numStages
)

var stageNames = [numStages]string{"vector", "bound", "pivot", "refine", "exact", "merge"}

// String returns the stage's wire name.
func (s Stage) String() string { return stageNames[s] }

// stageAcc accumulates one stage's counters (atomics: shards and
// workers record concurrently).
type stageAcc struct {
	ns     atomic.Int64
	pairs  atomic.Int64
	pruned atomic.Int64
	events atomic.Int64 // observation count; stages never touched render nothing
}

// QueryTrace records per-stage work for one query. Create with
// NewQueryTrace, attach via QueryOptions.Trace, read back with Stages.
type QueryTrace struct {
	stages [numStages]stageAcc
}

// NewQueryTrace returns an empty trace.
func NewQueryTrace() *QueryTrace { return &QueryTrace{} }

// Observe adds one stage observation: d of stage work that looked at
// pairs candidate pairs and excluded pruned of them. Nil-safe (no-op on
// a nil trace), so call sites need no guards.
func (t *QueryTrace) Observe(s Stage, d time.Duration, pairs, pruned int) {
	if t == nil {
		return
	}
	a := &t.stages[s]
	a.ns.Add(int64(d))
	a.pairs.Add(int64(pairs))
	a.pruned.Add(int64(pruned))
	a.events.Add(1)
}

// TraceStage is one stage's totals in wire form.
type TraceStage struct {
	// Stage is the cascade stage name: vector, bound, pivot, refine,
	// exact, merge.
	Stage string `json:"stage"`
	// DurationMS is the stage's work time, summed across shards and
	// workers.
	DurationMS float64 `json:"duration_ms"`
	// Pairs counts candidate pairs the stage processed.
	Pairs int `json:"pairs"`
	// Pruned counts pairs the stage excluded from further evaluation.
	Pruned int `json:"pruned"`
}

// Stages returns the touched stages in cascade order. Stages with no
// observations are omitted (e.g. pivot without a pivot index, merge on
// a library-level query).
func (t *QueryTrace) Stages() []TraceStage {
	if t == nil {
		return nil
	}
	out := make([]TraceStage, 0, numStages)
	for s := Stage(0); s < numStages; s++ {
		a := &t.stages[s]
		if a.events.Load() == 0 {
			continue
		}
		out = append(out, TraceStage{
			Stage:      s.String(),
			DurationMS: float64(a.ns.Load()) / 1e6,
			Pairs:      int(a.pairs.Load()),
			Pruned:     int(a.pruned.Load()),
		})
	}
	return out
}
