package gdb

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"skygraph/internal/dataset"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
)

func TestSkylineQueryPaper(t *testing.T) {
	db := paperDB(t)
	q := dataset.PaperQuery()
	res, err := db.SkylineQuery(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evaluated != 7 || res.Stats.Inexact != 0 {
		t.Errorf("stats=%+v", res.Stats)
	}
	var got []string
	for _, p := range res.Skyline {
		got = append(got, p.ID)
	}
	if len(got) != len(dataset.GSSExpected) {
		t.Fatalf("GSS=%v, want %v", got, dataset.GSSExpected)
	}
	for i := range got {
		if got[i] != dataset.GSSExpected[i] {
			t.Fatalf("GSS=%v, want %v", got, dataset.GSSExpected)
		}
	}
	// All vectors must match Table III at 2-decimal precision.
	want := dataset.PaperTable3()
	for i, p := range res.All {
		for d := range p.Vec {
			if dataset.Round2(p.Vec[d]) != want[i].Vec[d] {
				t.Errorf("%s dim %d: %v, want %v", p.ID, d, dataset.Round2(p.Vec[d]), want[i].Vec[d])
			}
		}
	}
}

func TestSkylineQueryAlgorithmsAgree(t *testing.T) {
	db := paperDB(t)
	q := dataset.PaperQuery()
	for name, algo := range map[string]skyline.Algorithm{"BNL": skyline.BNL, "DC": skyline.DivideAndConquer} {
		res, err := db.SkylineQuery(q, QueryOptions{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Skyline) != 4 {
			t.Errorf("%s: skyline size %d", name, len(res.Skyline))
		}
	}
}

func TestSkylineQuerySingleWorker(t *testing.T) {
	db := paperDB(t)
	q := dataset.PaperQuery()
	seq, err := db.SkylineQuery(q, QueryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.SkylineQuery(q, QueryOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Skyline) != len(par.Skyline) {
		t.Error("worker count changed the result")
	}
	for i := range seq.All {
		for d := range seq.All[i].Vec {
			if seq.All[i].Vec[d] != par.All[i].Vec[d] {
				t.Fatal("parallel evaluation nondeterministic")
			}
		}
	}
}

func TestSkylineQueryEmptyDB(t *testing.T) {
	db := New()
	res, err := db.SkylineQuery(dataset.PaperQuery(), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 0 || len(res.All) != 0 {
		t.Error("empty DB produced results")
	}
}

func TestTopKQueryPaper(t *testing.T) {
	db := paperDB(t)
	q := dataset.PaperQuery()
	res, err := db.TopKQuery(q, measure.DistEd{}, 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 3 {
		t.Fatalf("items=%v", res.Items)
	}
	// Top-3 by DistEd: g4 (2), then g3 and g5 (3). The paper's argument:
	// g3 appears here despite being dominated by g5 in the skyline sense.
	if res.Items[0].ID != "g4" || res.Items[0].Score != 2 {
		t.Errorf("top1=%v", res.Items[0])
	}
	got := map[string]bool{}
	for _, it := range res.Items {
		got[it.ID] = true
	}
	if !got["g3"] || !got["g5"] {
		t.Errorf("top-3=%v, want g3 and g5 present", res.Items)
	}
}

func TestTopKPruningConsistent(t *testing.T) {
	// Pruning must not change results, only skip work. The unpruned
	// default evaluates everything; Prune accounts for every graph as
	// evaluated or pruned.
	db := paperDB(t)
	q := dataset.PaperQuery()
	ref, err := db.TopKQuery(q, measure.DistEd{}, 2, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Evaluated != db.Len() || ref.Stats.Pruned != 0 {
		t.Errorf("unpruned scan: evaluated %d pruned %d, want %d/0",
			ref.Stats.Evaluated, ref.Stats.Pruned, db.Len())
	}
	res, err := db.TopKQuery(q, measure.DistEd{}, 2, QueryOptions{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evaluated+res.Stats.Pruned != db.Len() {
		t.Errorf("evaluated %d + pruned %d != %d", res.Stats.Evaluated, res.Stats.Pruned, db.Len())
	}
	requireSameItems(t, "pruned-topk", ref.Items, res.Items)
}

func TestTopKErrors(t *testing.T) {
	db := paperDB(t)
	if _, err := db.TopKQuery(dataset.PaperQuery(), measure.DistEd{}, 0, QueryOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRangeQuery(t *testing.T) {
	db := paperDB(t)
	q := dataset.PaperQuery()
	res, err := db.RangeQuery(q, measure.DistEd{}, 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// GED values are 4,4,3,2,3,4,4: radius 3 admits g3, g4, g5.
	want := map[string]bool{"g3": true, "g4": true, "g5": true}
	if len(res.Items) != len(want) {
		t.Fatalf("items=%v", res.Items)
	}
	for _, it := range res.Items {
		if !want[it.ID] {
			t.Errorf("unexpected member %s", it.ID)
		}
		if it.Score > 3 {
			t.Errorf("score %v beyond radius", it.Score)
		}
	}
	if res.Stats.Evaluated+res.Stats.Pruned != db.Len() {
		t.Error("stats do not add up")
	}
}

func TestRangeQueryRadiusZero(t *testing.T) {
	db := paperDB(t)
	g1, _ := db.Get("g1")
	res, err := db.RangeQuery(g1, measure.DistEd{}, 0, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0].ID != "g1" {
		t.Errorf("self query: %v", res.Items)
	}
}

func TestDiverseSkylineQueryPaper(t *testing.T) {
	db := paperDB(t)
	q := dataset.PaperQuery()
	res, err := db.DiverseSkylineQuery(q, 2, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhaustive {
		t.Error("small skyline should use the exhaustive path")
	}
	if len(res.Selected) != 2 {
		t.Fatalf("selected=%v", res.Selected)
	}
	// NOTE: the paper's Table IV distances come from the original (lost)
	// figure graphs; our reconstruction matches Tables II/III exactly but
	// pairwise distances may differ, so here we only require a valid,
	// deterministic 2-subset of the skyline.
	inSky := map[string]bool{}
	for _, p := range res.Skyline {
		inSky[p.ID] = true
	}
	for _, id := range res.Selected {
		if !inSky[id] {
			t.Errorf("selected %s not in skyline", id)
		}
	}
	again, err := db.DiverseSkylineQuery(q, 2, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Selected {
		if res.Selected[i] != again.Selected[i] {
			t.Error("diverse selection nondeterministic")
		}
	}
}

func TestDiverseSkylineKCoversAll(t *testing.T) {
	db := paperDB(t)
	q := dataset.PaperQuery()
	res, err := db.DiverseSkylineQuery(q, 10, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != len(res.Skyline) {
		t.Errorf("selected=%v", res.Selected)
	}
	if _, err := db.DiverseSkylineQuery(q, 0, QueryOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestDiverseSkylineEmptyDB(t *testing.T) {
	db := New()
	res, err := db.DiverseSkylineQuery(dataset.PaperQuery(), 2, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 {
		t.Errorf("selected=%v", res.Selected)
	}
}

func TestCappedEvalReportsInexact(t *testing.T) {
	db := New()
	if err := db.InsertAll(dataset.MoleculeDB(4, 10, 12, 3)); err != nil {
		t.Fatal(err)
	}
	q := dataset.NoisyQueries(dataset.MoleculeDB(1, 10, 12, 3), 1, 3, 5)[0]
	res, err := db.SkylineQuery(q, QueryOptions{
		Eval: measure.Options{GEDMaxNodes: 2, MCSMaxNodes: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Inexact == 0 {
		t.Error("tiny caps should force inexact evaluations")
	}
	for _, p := range res.All {
		for _, v := range p.Vec {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Error("non-finite vector component under caps")
			}
		}
	}
}

func TestSkylineQueryContextCompletes(t *testing.T) {
	db := paperDB(t)
	res, err := db.SkylineQueryContext(context.Background(), dataset.PaperQuery(), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) != 4 {
		t.Errorf("skyline=%d", len(res.Skyline))
	}
}

func TestSkylineQueryContextCancel(t *testing.T) {
	db := New()
	if err := db.InsertAll(dataset.MoleculeDB(8, 9, 11, 77)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: must abort before finishing
	_, err := db.SkylineQueryContext(ctx, dataset.MoleculeDB(1, 9, 10, 78)[0], QueryOptions{})
	if err == nil {
		t.Fatal("canceled query returned no error")
	}
	if err != context.Canceled {
		t.Errorf("err=%v", err)
	}
}

func TestSkylineQueryContextTimeout(t *testing.T) {
	db := New()
	if err := db.InsertAll(dataset.MoleculeDB(10, 11, 13, 81)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	_, err := db.SkylineQueryContext(ctx, dataset.MoleculeDB(1, 11, 12, 82)[0], QueryOptions{})
	if err != context.DeadlineExceeded {
		t.Errorf("err=%v, want deadline exceeded", err)
	}
}

func TestConcurrentInsertAndQuery(t *testing.T) {
	// The DB must tolerate concurrent readers and writers (run with -race).
	db := paperDB(t)
	q := dataset.PaperQuery()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := db.SkylineQuery(q, QueryOptions{Workers: 2}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			g := graph.Path(3, "A", "x")
			g.SetName(fmt.Sprintf("extra%d", i))
			if err := db.Insert(g); err != nil {
				t.Error(err)
				return
			}
			db.Delete(g.Name())
		}
	}()
	wg.Wait()
}

func TestSkylineQueryExtendedBasis(t *testing.T) {
	db := paperDB(t)
	res, err := db.SkylineQuery(dataset.PaperQuery(), QueryOptions{Basis: measure.Extended()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All[0].Vec) != 6 {
		t.Fatalf("dims=%d, want 6", len(res.All[0].Vec))
	}
	// A wider basis can only grow the skyline: every point non-dominated in
	// a sub-basis stays non-dominated when dimensions are added... only if
	// the sub-basis dims coincide; here dims 0..2 are the default basis, so
	// default skyline members must survive.
	def, err := db.SkylineQuery(dataset.PaperQuery(), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ext := map[string]bool{}
	for _, p := range res.Skyline {
		ext[p.ID] = true
	}
	for _, p := range def.Skyline {
		if !ext[p.ID] {
			t.Errorf("%s lost when adding dimensions", p.ID)
		}
	}
}
