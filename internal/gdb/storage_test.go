package gdb

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skygraph/internal/graph"
	"skygraph/internal/wal"
)

// storageGraphs returns n deterministic small molecule graphs named
// d000, d001, ...
func storageGraphs(seed int64, n int) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, n)
	for i := range out {
		g := graph.Molecule(5+i%4, rng)
		g.SetName(fmt.Sprintf("d%03d", i))
		out[i] = g
	}
	return out
}

// fingerprint captures the full observable state of a sharded database
// independently of its shard count: every graph in global insertion
// order with its insert sequence and LGF encoding. Two databases with
// equal fingerprints are byte-identical as far as any query can tell.
func fingerprint(sh *Sharded) string {
	var b strings.Builder
	for _, name := range sh.Names() {
		src := sh.shards[sh.ShardFor(name)]
		g, ok := src.Get(name)
		if !ok {
			continue
		}
		seq, _ := src.seqOf(name)
		fmt.Fprintf(&b, "%s#%d\n%s", name, seq, graph.MarshalLGF(g))
	}
	return b.String()
}

// reopen recovers the data directory at the given shard count and
// returns the durable handle; the caller must Close it.
func reopen(t *testing.T, dir string, shards int) *Durable {
	t.Helper()
	d, err := OpenDurable(DurableOptions{Dir: dir, Shards: shards})
	if err != nil {
		t.Fatalf("OpenDurable(%s, shards=%d): %v", dir, shards, err)
	}
	return d
}

func TestDurableEmptyDir(t *testing.T) {
	dir := t.TempDir()
	d := reopen(t, dir, 2)
	if d.DB.Len() != 0 {
		t.Fatalf("fresh dir recovered %d graphs", d.DB.Len())
	}
	if rec := d.Recovery(); rec.ReplayedRecords != 0 || rec.SnapshotGraphs != 0 {
		t.Fatalf("fresh dir recovery reported work: %+v", rec)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A second open of a never-mutated directory must also be clean.
	d2 := reopen(t, dir, 2)
	defer d2.Close()
	if d2.DB.Len() != 0 {
		t.Fatalf("reopened fresh dir recovered %d graphs", d2.DB.Len())
	}
}

// TestDurableRoundTripShardCounts is the recovery equivalence harness:
// a mutation history (inserts, deletes, a delete+reinsert) recorded at
// one shard count must recover byte-identically — same graphs, same
// global order, same insert sequences — under every shard count, and
// identical state must yield identical skyline answers.
func TestDurableRoundTripShardCounts(t *testing.T) {
	dir := t.TempDir()
	gs := storageGraphs(7, 16)

	d := reopen(t, dir, 3)
	if err := d.DB.InsertAll(gs[:14]); err != nil {
		t.Fatalf("insert: %v", err)
	}
	for _, name := range []string{"d003", "d007", "d010"} {
		if ok, err := d.DB.DeleteErr(name); !ok || err != nil {
			t.Fatalf("delete %s: ok=%v err=%v", name, ok, err)
		}
	}
	// Delete + reinsert the same name: recovery must preserve the NEW
	// sequence, or the score memo's safety argument breaks.
	reins := gs[3].Clone()
	if err := d.DB.Insert(reins); err != nil {
		t.Fatalf("reinsert d003: %v", err)
	}
	if err := d.DB.InsertAll(gs[14:]); err != nil {
		t.Fatalf("insert tail: %v", err)
	}
	want := fingerprint(d.DB)
	q := storageGraphs(99, 1)[0]
	wantSky, err := d.DB.SkylineQueryContext(context.Background(), q, QueryOptions{})
	if err != nil {
		t.Fatalf("reference skyline: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	for _, shards := range []int{1, 2, 3, 7} {
		r := reopen(t, dir, shards)
		if got := fingerprint(r.DB); got != want {
			t.Fatalf("shards=%d: recovered state differs\nwant:\n%s\ngot:\n%s", shards, want, got)
		}
		gotSky, err := r.DB.SkylineQueryContext(context.Background(), q, QueryOptions{})
		if err != nil {
			t.Fatalf("shards=%d: skyline: %v", shards, err)
		}
		if len(gotSky.Skyline) != len(wantSky.Skyline) {
			t.Fatalf("shards=%d: skyline size %d, want %d", shards, len(gotSky.Skyline), len(wantSky.Skyline))
		}
		for i := range wantSky.Skyline {
			w, g := wantSky.Skyline[i], gotSky.Skyline[i]
			if w.ID != g.ID {
				t.Fatalf("shards=%d: skyline member %d is %s, want %s", shards, i, g.ID, w.ID)
			}
			for j := range w.Vec {
				if w.Vec[j] != g.Vec[j] {
					t.Fatalf("shards=%d: %s vec[%d]=%v, want %v", shards, w.ID, j, g.Vec[j], w.Vec[j])
				}
			}
		}
		if err := r.Close(); err != nil {
			t.Fatalf("shards=%d: Close: %v", shards, err)
		}
	}
}

// TestDurableSnapshotReclaim verifies the snapshot cycle: a snapshot
// commits atomically, reclaims covered WAL segments, and recovery from
// snapshot + remaining log reproduces the exact state.
func TestDurableSnapshotReclaim(t *testing.T) {
	dir := t.TempDir()
	gs := storageGraphs(11, 20)

	d, err := OpenDurable(DurableOptions{Dir: dir, Shards: 2, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	if err := d.DB.InsertAll(gs[:12]); err != nil {
		t.Fatalf("insert: %v", err)
	}
	before := d.Stats().WAL
	if before.Segments < 2 {
		t.Fatalf("want rotation before snapshot, got %d segments", before.Segments)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	st := d.Stats()
	if st.Snapshots != 1 || st.LastSnapGraphs != 12 {
		t.Fatalf("snapshot stats: %+v", st)
	}
	if st.WAL.Segments >= before.Segments {
		t.Fatalf("snapshot reclaimed nothing: %d -> %d segments", before.Segments, st.WAL.Segments)
	}
	// A second snapshot with no new records must be a no-op.
	if err := d.Snapshot(); err != nil {
		t.Fatalf("idle Snapshot: %v", err)
	}
	if got := d.Stats().Snapshots; got != 1 {
		t.Fatalf("idle snapshot was cut anyway (%d total)", got)
	}

	// Mutations after the snapshot land in the log and replay on top.
	if err := d.DB.InsertAll(gs[12:]); err != nil {
		t.Fatalf("insert after snapshot: %v", err)
	}
	if ok, err := d.DB.DeleteErr("d001"); !ok || err != nil {
		t.Fatalf("delete after snapshot: ok=%v err=%v", ok, err)
	}
	want := fingerprint(d.DB)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := reopen(t, dir, 5)
	defer r.Close()
	rec := r.Recovery()
	if rec.SnapshotGraphs != 12 {
		t.Fatalf("recovered %d snapshot graphs, want 12", rec.SnapshotGraphs)
	}
	if rec.ReplayedRecords != uint64(len(gs)-12)+1 {
		t.Fatalf("replayed %d records, want %d", rec.ReplayedRecords, len(gs)-12+1)
	}
	if got := fingerprint(r.DB); got != want {
		t.Fatalf("recovered state differs\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestInsertSeqHighWaterRestart is the regression test for the
// insert-sequence counter restarting at zero: a recovered database must
// mint fresh sequences strictly above every sequence it replayed, even
// ones far beyond the current process counter.
func TestInsertSeqHighWaterRestart(t *testing.T) {
	dir := t.TempDir()
	high := insertSeq.Load() + 1_000_000

	// Forge a WAL whose records carry sequences the current process has
	// never minted — what a restart into an old data directory sees.
	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	g := storageGraphs(3, 1)[0]
	if _, err := log.Append(wal.Record{
		Op: wal.OpInsert, Seq: high, Name: g.Name(), Data: []byte(graph.MarshalLGF(g)),
	}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	d := reopen(t, dir, 2)
	defer d.Close()
	if seq, _ := d.DB.shards[d.DB.ShardFor(g.Name())].seqOf(g.Name()); seq != high {
		t.Fatalf("replayed graph carries seq %d, want %d", seq, high)
	}
	fresh := storageGraphs(4, 2)[1]
	fresh.SetName("fresh")
	if err := d.DB.Insert(fresh); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if seq, _ := d.DB.shards[d.DB.ShardFor("fresh")].seqOf("fresh"); seq <= high {
		t.Fatalf("fresh insert minted seq %d, not above the recovered high-water mark %d", seq, high)
	}
}

// mutationTrace drives a deterministic mutation history against a
// durable database, recording after every mutation the WAL's byte size
// and the database fingerprint — the ground truth for the torture
// tests: truncating the log at byte X must recover exactly the state
// after the last mutation whose record ends at or before X.
type mutationTrace struct {
	dir    string
	bounds []int64  // bounds[i] = WAL bytes after mutation i (bounds[0]=0)
	prints []string // prints[i] = fingerprint after mutation i
}

func buildTrace(t *testing.T, dir string) mutationTrace {
	t.Helper()
	gs := storageGraphs(23, 18)
	d, err := OpenDurable(DurableOptions{Dir: dir, Shards: 3})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()
	tr := mutationTrace{dir: dir, bounds: []int64{0}, prints: []string{fingerprint(d.DB)}}
	record := func() {
		tr.bounds = append(tr.bounds, int64(d.Stats().WAL.SizeBytes))
		tr.prints = append(tr.prints, fingerprint(d.DB))
	}
	for i, g := range gs {
		if err := d.DB.Insert(g); err != nil {
			t.Fatalf("insert %s: %v", g.Name(), err)
		}
		record()
		if i%5 == 4 {
			victim := gs[i-2].Name()
			if ok, err := d.DB.DeleteErr(victim); !ok || err != nil {
				t.Fatalf("delete %s: ok=%v err=%v", victim, ok, err)
			}
			record()
		}
	}
	return tr
}

// walSegment returns the single WAL segment file of a trace directory
// (the default segment size keeps the whole history in one file).
func walSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one WAL segment in %s, got %v (err %v)", dir, matches, err)
	}
	return matches[0]
}

// copyTraceDir clones the data directory so each torture trial damages
// its own copy.
func copyTraceDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatalf("write %s: %v", e.Name(), err)
		}
	}
	return dst
}

// prefixAt returns the index of the last mutation whose record ends at
// or before byte offset x.
func (tr mutationTrace) prefixAt(x int64) int {
	p := 0
	for i, b := range tr.bounds {
		if b <= x {
			p = i
		}
	}
	return p
}

// TestDurableTortureTruncate cuts the WAL at random byte offsets —
// simulating a crash mid-append — and asserts recovery lands exactly on
// the surviving record prefix, never a torn or partial state.
func TestDurableTortureTruncate(t *testing.T) {
	base := t.TempDir()
	tr := buildTrace(t, base)
	total := tr.bounds[len(tr.bounds)-1]
	rng := rand.New(rand.NewSource(41))

	offsets := []int64{0, 1, total - 1, total}
	for i := 0; i < 12; i++ {
		offsets = append(offsets, rng.Int63n(total+1))
	}
	for _, off := range offsets {
		dir := copyTraceDir(t, base)
		if err := os.Truncate(walSegment(t, dir), off); err != nil {
			t.Fatalf("truncate at %d: %v", off, err)
		}
		d := reopen(t, dir, 3)
		wantIdx := tr.prefixAt(off)
		if got := fingerprint(d.DB); got != tr.prints[wantIdx] {
			t.Errorf("truncate at byte %d: recovered state is not the %d-mutation prefix", off, wantIdx)
		}
		if off < total && d.Recovery().RepairedBytes == 0 && tr.bounds[wantIdx] != off {
			// A cut strictly inside a record must be detected and repaired.
			t.Errorf("truncate at byte %d: mid-record cut reported no repair", off)
		}
		// The repaired log must accept new mutations.
		g := storageGraphs(77, 1)[0]
		g.SetName("post-repair")
		if err := d.DB.Insert(g); err != nil {
			t.Errorf("truncate at byte %d: insert after repair: %v", off, err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// TestDurableTortureByteFlip corrupts single bytes — simulating disk
// damage — and asserts the CRC check rejects the damaged record and
// everything after it, recovering the longest trustworthy prefix.
func TestDurableTortureByteFlip(t *testing.T) {
	base := t.TempDir()
	tr := buildTrace(t, base)
	total := tr.bounds[len(tr.bounds)-1]
	rng := rand.New(rand.NewSource(43))

	for i := 0; i < 12; i++ {
		off := rng.Int63n(total)
		dir := copyTraceDir(t, base)
		seg := walSegment(t, dir)
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		b[off] ^= 0xFF
		if err := os.WriteFile(seg, b, 0o644); err != nil {
			t.Fatalf("write segment: %v", err)
		}
		d := reopen(t, dir, 3)
		// The record containing byte off is damaged; every complete
		// record before it must survive.
		wantIdx := tr.prefixAt(off)
		if got := fingerprint(d.DB); got != tr.prints[wantIdx] {
			t.Errorf("flip at byte %d: recovered state is not the %d-mutation prefix", off, wantIdx)
		}
		if d.Recovery().RepairedBytes == 0 {
			t.Errorf("flip at byte %d: corruption reported no repair", off)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// TestSaveAtomic verifies the DB.Save crash-safety fix: the write goes
// through a fsynced temp file and atomic rename, so the target is
// replaced whole and no temp files are left behind.
func TestSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.lgf")
	if err := os.WriteFile(path, []byte("previous content\n"), 0o644); err != nil {
		t.Fatalf("seed old file: %v", err)
	}
	db := New()
	if err := db.InsertAll(storageGraphs(5, 3)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := db.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("Load after Save: %v", err)
	}
	if loaded.Len() != 3 {
		t.Fatalf("loaded %d graphs, want 3", loaded.Len())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.Name() != "db.lgf" {
			t.Fatalf("leftover file after Save: %s", e.Name())
		}
	}
}

// TestDurableStoreErrorFailsMutation verifies the write-ahead
// discipline end to end: once the log cannot accept appends, inserts
// and deletes fail WITHOUT mutating the database.
func TestDurableStoreErrorFailsMutation(t *testing.T) {
	dir := t.TempDir()
	d := reopen(t, dir, 2)
	gs := storageGraphs(9, 3)
	if err := d.DB.InsertAll(gs[:2]); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := d.Close(); err != nil { // log refuses appends from here on
		t.Fatalf("Close: %v", err)
	}
	if err := d.DB.Insert(gs[2]); err == nil {
		t.Fatal("insert after Close succeeded without persistence")
	}
	if d.DB.Len() != 2 {
		t.Fatalf("failed insert mutated the database: len=%d", d.DB.Len())
	}
	existed, err := d.DB.DeleteErr(gs[0].Name())
	if err == nil {
		t.Fatal("delete after Close reported persistence")
	}
	if !existed {
		t.Fatal("DeleteErr should report the name existed")
	}
	if _, ok := d.DB.Get(gs[0].Name()); !ok {
		t.Fatal("failed delete removed the graph anyway")
	}
	if d.DB.Delete(gs[1].Name()) {
		t.Fatal("bool Delete reported success for an unpersisted delete")
	}
}

// TestKeyTableSurvivesSnapshot pins the manifest-side key persistence:
// idempotency-key evidence must outlive the WAL segments that carried
// it (a snapshot reclaims them), and recovery must present the union of
// manifest keys and keys found in the remaining log suffix.
func TestKeyTableSurvivesSnapshot(t *testing.T) {
	dir := t.TempDir()
	gs := storageGraphs(13, 4)

	d, err := OpenDurable(DurableOptions{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	if err := d.DB.InsertKeyed(gs[0], "ik-snap"); err != nil {
		t.Fatalf("keyed insert: %v", err)
	}
	if err := d.DB.InsertKeyed(gs[1], "ik-snap"); err != nil {
		t.Fatalf("keyed insert: %v", err)
	}
	if err := d.DB.Insert(gs[2]); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if ok, err := d.DB.DeleteKeyedErr(gs[2].Name(), "dk-snap"); !ok || err != nil {
		t.Fatalf("keyed delete: ok=%v err=%v", ok, err)
	}
	// Snapshot: the keyed records' segments are reclaimed; the keys must
	// now live in the manifest.
	if err := d.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// One more keyed mutation after the snapshot rides in the log only.
	if err := d.DB.InsertKeyed(gs[3], "ik-log"); err != nil {
		t.Fatalf("keyed insert after snapshot: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := reopen(t, dir, 3)
	defer r.Close()
	rk := r.RecoveredKeys()
	if got := rk.Inserts["ik-snap"]; len(got) != 2 || got[0] != gs[0].Name() || got[1] != gs[1].Name() {
		t.Fatalf("manifest insert key: %v", got)
	}
	if got := rk.Inserts["ik-log"]; len(got) != 1 || got[0] != gs[3].Name() {
		t.Fatalf("log insert key: %v", got)
	}
	if got := rk.Deletes["dk-snap"]; got != gs[2].Name() {
		t.Fatalf("manifest delete key: %q", got)
	}
	// A second generation: snapshot again (folding the log key into the
	// manifest) and reopen — everything still there, nothing duplicated.
	if err := r.Snapshot(); err != nil {
		t.Fatalf("second Snapshot: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r2 := reopen(t, dir, 2)
	defer r2.Close()
	rk2 := r2.RecoveredKeys()
	if got := rk2.Inserts["ik-snap"]; len(got) != 2 {
		t.Fatalf("second-generation insert key duplicated or lost: %v", got)
	}
	if len(rk2.Inserts) != 2 || len(rk2.Deletes) != 1 {
		t.Fatalf("second-generation key table: %+v", rk2)
	}
}

// TestKeyTableCap pins the FIFO bound: past keyCap keys the oldest is
// forgotten (its retry becomes an honest conflict), the newest kept.
func TestKeyTableCap(t *testing.T) {
	var kt keyTable
	for i := 0; i < keyCap+10; i++ {
		kt.noteInsert(fmt.Sprintf("k%05d", i), fmt.Sprintf("g%05d", i))
		kt.noteDelete(fmt.Sprintf("k%05d", i), fmt.Sprintf("g%05d", i))
	}
	rk := kt.view()
	if len(rk.Inserts) != keyCap || len(rk.Deletes) != keyCap {
		t.Fatalf("table over cap: %d inserts, %d deletes", len(rk.Inserts), len(rk.Deletes))
	}
	if _, ok := rk.Inserts["k00000"]; ok {
		t.Fatal("oldest insert key not evicted")
	}
	if _, ok := rk.Inserts[fmt.Sprintf("k%05d", keyCap+9)]; !ok {
		t.Fatal("newest insert key missing")
	}
	if _, ok := rk.Deletes["k00000"]; ok {
		t.Fatal("oldest delete key not evicted")
	}
	// Re-noting an existing key's name is a no-op, not a duplicate.
	kt.noteInsert(fmt.Sprintf("k%05d", keyCap+9), fmt.Sprintf("g%05d", keyCap+9))
	if got := kt.view().Inserts[fmt.Sprintf("k%05d", keyCap+9)]; len(got) != 1 {
		t.Fatalf("dedup failed: %v", got)
	}
	ins, del := kt.manifest()
	if len(ins) != keyCap || len(del) != keyCap {
		t.Fatalf("manifest form: %d/%d", len(ins), len(del))
	}
	if ins[0].Key != fmt.Sprintf("k%05d", 10) || ins[len(ins)-1].Key != fmt.Sprintf("k%05d", keyCap+9) {
		t.Fatalf("manifest order: first %s last %s", ins[0].Key, ins[len(ins)-1].Key)
	}
}
