package gdb

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/topk"
)

// Best-first ranked-query evaluation. A top-k or range query does not
// need the exact score of every database graph: candidates are ordered
// by the optimistic (lower) end of their signature-derived score
// interval and evaluated most-promising-first against a live threshold
// — the current k-th best score, or the radius. The moment the next
// candidate's optimistic bound exceeds the threshold, every remaining
// candidate is provably out and the scan stops. Candidates the bound
// cannot settle go through the same tiers as pruned skyline evaluation:
// polynomial refinement (bipartite + greedy, witnesses reused), then a
// threshold-fed decision run of the exact engines (ged.Options.Limit /
// mcs.Options.Need) that discards most survivors without paying for
// exactness, and a plain exact evaluation only for candidates that
// might make the answer. Included scores are byte-identical to the full
// scan's, so the answer — scores and tie-order — matches the unpruned
// path exactly.

// atomicFloat is a lock-free float64 cell (stored as bits).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// rankedCollector accumulates exact scores behind a mutex and exposes
// the live pruning threshold lock-free: workers read it before every
// candidate, across every shard of a sharded database.
type rankedCollector interface {
	// offer records one exactly-scored item, tightening the threshold.
	offer(it topk.Item)
	// threshold is the current bar: a candidate whose score provably
	// exceeds it can never enter the answer. Monotone non-increasing.
	threshold() float64
	// seedUppers hands the collector one snapshot's per-candidate
	// upper bounds on the reported score (the pessimistic corner of
	// the bound index), BEFORE any of them is evaluated. A top-k
	// collector floors its threshold at the k-th smallest: the k best
	// reported scores each sit under one of the k smallest uppers, so
	// any candidate provably above that floor can never make the
	// answer — pruning starts tight instead of waiting for k exact
	// scores. Sound per shard snapshot (a subset's k-th best is never
	// below the global k-th best). Range collectors ignore it (their
	// threshold is the radius, fixed).
	seedUppers(his []float64)
	// items returns the collected answer (order documented per kind).
	items() []topk.Item
}

// topkCollector keeps the k best items in a bounded max-heap; the
// threshold is the k-th best score once k items are held, floored by
// the best seedUppers bound (+Inf before either exists).
type topkCollector struct {
	mu    sync.Mutex
	k     int
	b     *topk.Bounded
	th    atomicFloat
	floor atomicFloat
}

func newTopkCollector(k int) *topkCollector {
	c := &topkCollector{k: k, b: topk.NewBounded(k)}
	c.th.store(math.Inf(1))
	c.floor.store(math.Inf(1))
	return c
}

func (c *topkCollector) offer(it topk.Item) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.b.Offer(it)
	if c.b.Full() {
		if w, ok := c.b.Worst(); ok {
			c.th.store(w.Score)
		}
	}
}

func (c *topkCollector) seedUppers(his []float64) {
	if len(his) < c.k {
		return // fewer candidates than k: this snapshot bounds nothing
	}
	sorted := append([]float64(nil), his...)
	sort.Float64s(sorted)
	v := sorted[c.k-1]
	c.mu.Lock()
	if v < c.floor.load() {
		c.floor.store(v)
	}
	c.mu.Unlock()
}

func (c *topkCollector) threshold() float64 {
	t := c.th.load()
	if f := c.floor.load(); f < t {
		return f
	}
	return t
}

// items returns the k best in ascending (score, ID) order — exactly
// topk.Select's order.
func (c *topkCollector) items() []topk.Item {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.b.Items()
}

// rangeCollector keeps every item within the radius; the threshold is
// the radius itself, fixed for the whole query.
type rangeCollector struct {
	radius float64
	mu     sync.Mutex
	list   []topk.Item
}

func newRangeCollector(radius float64) *rangeCollector {
	return &rangeCollector{radius: radius, list: []topk.Item{}}
}

func (c *rangeCollector) offer(it topk.Item) {
	if it.Score > c.radius {
		return // evaluated, but outside the radius
	}
	c.mu.Lock()
	c.list = append(c.list, it)
	c.mu.Unlock()
}

func (c *rangeCollector) threshold() float64 { return c.radius }

// seedUppers is a no-op: the range threshold is the radius itself.
func (c *rangeCollector) seedUppers([]float64) {}

// items returns the in-radius items in unspecified order; callers
// restore insertion order (evaluation order is nondeterministic).
func (c *rangeCollector) items() []topk.Item {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]topk.Item{}, c.list...)
}

// RankedStats reports the work one database contributed to a ranked
// evaluation.
type RankedStats struct {
	// Evaluated counts graphs whose exact score was computed (memo
	// replays included — the score is exact either way).
	Evaluated int
	// Pruned counts graphs excluded without an exact score: best-first
	// cutoff, interval filter, or an engine decision run.
	Pruned int
	// Inexact counts evaluated graphs whose score came from a capped
	// engine bound.
	Inexact int
	// PivotDists counts query-to-pivot engine runs; PivotPruned counts
	// excluded graphs that only the pivot tier's bound condemns at the
	// final threshold (the signature bound alone would have let them
	// through to the engines).
	PivotDists  int
	PivotPruned int
	// MemoHits/MemoMisses count score-memo lookups during the scan.
	MemoHits   int
	MemoMisses int
	// VectorCells counts partition cells probed by the vector tier;
	// VectorSkipped counts candidates in cells the tier's admissible
	// floor proved out wholesale (their bounds were never computed);
	// VectorFallbacks counts snapshots where an attached vector index
	// could not serve the scan and the plain order ran instead.
	VectorCells     int
	VectorSkipped   int
	VectorFallbacks int
}

func (s *RankedStats) add(o RankedStats) {
	s.Evaluated += o.Evaluated
	s.Pruned += o.Pruned
	s.Inexact += o.Inexact
	s.PivotDists += o.PivotDists
	s.PivotPruned += o.PivotPruned
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
	s.VectorCells += o.VectorCells
	s.VectorSkipped += o.VectorSkipped
	s.VectorFallbacks += o.VectorFallbacks
}

// Ranked is one in-progress best-first ranked query: the shared
// collector and its live threshold. Shards of a sharded database (and
// cached per-shard answers) evaluate against a single Ranked value so
// the threshold crosses shard boundaries. Safe for concurrent use.
type Ranked struct {
	m    measure.Measure
	coll rankedCollector

	sigOnce sync.Once
	qsig    *measure.Signature
	qhOnce  sync.Once
	qh      string
}

// NewRankedTopK starts a top-k evaluation under measure m.
func NewRankedTopK(m measure.Measure, k int) *Ranked {
	return &Ranked{m: m, coll: newTopkCollector(k)}
}

// NewRankedRange starts a range evaluation under measure m.
func NewRankedRange(m measure.Measure, radius float64) *Ranked {
	return &Ranked{m: m, coll: newRangeCollector(radius)}
}

// Offer feeds already-exact scores — e.g. the rows of a cached complete
// vector table — into the collector, tightening the live threshold
// before (or while) other shards evaluate.
func (r *Ranked) Offer(items []topk.Item) {
	for _, it := range items {
		r.coll.offer(it)
	}
}

// Items returns the collected answer: for top-k the k best in
// ascending (score, ID) order, for range the in-radius items in
// unspecified order (restore insertion order with SortItemsByRank or
// the snapshot order).
func (r *Ranked) Items() []topk.Item { return r.coll.items() }

func (r *Ranked) querySig(q *graph.Graph) *measure.Signature {
	r.sigOnce.Do(func() { r.qsig = measure.NewSignature(q) })
	return r.qsig
}

func (r *Ranked) queryHash(q *graph.Graph) string {
	r.qhOnce.Do(func() { r.qh = graph.QueryHash(q) })
	return r.qh
}

// EvalDB runs the best-first scan of one database's snapshot against
// the shared threshold. opts.Workers bounds the scan's parallelism
// (resolved by the caller); opts.Eval caps the exact engines exactly as
// on the full-scan path, so included scores match it byte for byte.
func (r *Ranked) EvalDB(ctx context.Context, db *DB, q *graph.Graph, opts QueryOptions) (RankedStats, error) {
	sn := db.snapshot()
	qsig := r.querySig(q)
	if opts.QueryHash == "" && db.Memo() != nil {
		// Canonicalize once per query, not once per shard: the Ranked
		// value is shared by all shards of one query.
		opts.QueryHash = r.queryHash(q)
	}
	ec := db.newEvalCtx(q, qsig, opts, true)
	return evalRanked(ctx, sn, qsig, q, r.m, opts, ec, db.startVector(sn, qsig, q, r.m, opts, ec), r.coll)
}

// evalRanked is the scan itself: order candidates by optimistic bound,
// drain them with a worker pool, stop at the threshold. ec (nil-safe)
// adds the pivot tier — tighter optimistic bounds, so the scan claims
// true near-neighbors earlier and the cutoff fires sooner — and the
// score memo, which replays recorded pair scores without any engine
// work.
//
// vs (nil-safe) adds the vector tier below all of that: instead of
// bounding every candidate up front, the scan drains the partition's
// inverted lists as batches, nearest-and-most-promising cell first
// (ascending by admissible floor, then centroid proximity). Each batch
// pays tier-0 bounding only for its own members, so the threshold —
// seeded from the pessimistic corners probed so far and tightened by
// every exact score — is already tight when the far cells come up; the
// moment the next cell's floor exceeds the live threshold, that cell
// and every cell after it are excluded wholesale, without touching a
// single signature. Exclusion always carries a proof (the floor is
// admissible for every member), so the answer — scores and tie-order —
// is byte-identical to the plain scan.
func evalRanked(ctx context.Context, sn snap, qsig *measure.Signature, q *graph.Graph, m measure.Measure, opts QueryOptions, ec *evalCtx, vs *vecState, coll rankedCollector) (RankedStats, error) {
	n := len(sn.graphs)
	if n == 0 {
		return RankedStats{}, nil
	}

	trace := opts.Trace
	var stats RankedStats

	// Tier −1: the probe plan. With a live vector state the batches are
	// the partition's cells in ascending (floor, centroid distance)
	// order; otherwise one batch holds every candidate and the scan
	// below degenerates to exactly the plain pass.
	vsActive := vs != nil && len(vs.batches) > 0
	var batches []vecBatch
	if vsActive {
		batches = vs.batches
	} else {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		batches = []vecBatch{{members: all, floor: math.Inf(-1)}}
	}
	if vs != nil && vs.fallback {
		stats.VectorFallbacks = 1
	}

	bounds := make([]measure.BoundStats, n)
	los := make([]float64, n)
	sigLos := los
	attribute := ec != nil && ec.pb != nil
	if attribute {
		sigLos = make([]float64, n)
	}
	his := make([]float64, n)
	// probed marks candidates whose tier-0 bounds were computed; allHis
	// accumulates their pessimistic corners for threshold seeding.
	probed := make([]bool, n)
	allHis := make([]float64, 0, n)

	needGED, needMCS := measure.EngineNeeds(m)
	useMemo := ec != nil && ec.memo != nil && (needGED || needMCS)
	scored := make([]atomic.Bool, n)

	var (
		statsMu     sync.Mutex
		pivotDur    time.Duration
		exactPruned atomic.Int64 // decision-run exclusions, for stage attribution
		canceled    bool
	)
	for b := range batches {
		if ctx.Err() != nil {
			return RankedStats{}, ctx.Err()
		}
		// The admissibility guard: every member of this cell is provably
		// at least floor away, and batches ascend by floor — once the
		// live threshold drops below it, this cell and every remaining
		// one hold nothing that can enter the answer.
		if batches[b].floor > coll.threshold() {
			for _, rest := range batches[b:] {
				stats.VectorSkipped += len(rest.members)
			}
			break
		}
		if vsActive {
			stats.VectorCells++
		}
		mem := batches[b].members

		// Tier 0: bound this batch's candidates from their stored
		// signatures, tightened by the pivot tier, and order by the
		// optimistic end. sigLos keeps the signature-only optimistic
		// bound for attribution.
		var tierStart time.Time
		var batchPivot time.Duration
		if trace != nil {
			tierStart = time.Now()
		}
		for _, i := range mem {
			bounds[i] = measure.BoundPair(sn.sigs[i], qsig)
			if attribute {
				sigLos[i], _ = bounds[i].Interval(m)
				if trace != nil {
					// tighten may run query-to-pivot engines lazily; that
					// time belongs to the pivot stage, not the bound stage.
					t0 := time.Now()
					ec.tighten(&bounds[i], sn.graphs[i].Name())
					batchPivot += time.Since(t0)
				} else {
					ec.tighten(&bounds[i], sn.graphs[i].Name())
				}
			}
			los[i], his[i] = bounds[i].Interval(m)
			probed[i] = true
			allHis = append(allHis, his[i])
		}
		pivotDur += batchPivot
		// Claim order: by the optimistic end — which is what lets the scan
		// STOP at the first claim whose lo exceeds the threshold
		// (everything after in this batch is at least as hopeless) — with
		// lo ties broken by the pessimistic end. Distances are integral,
		// so lo ties are the common case, and within a tie the candidate
		// that is CERTAINLY near (small hi) should feed the threshold
		// before one that is merely possibly near; remaining ties keep
		// snapshot order, for a deterministic claim sequence. The answer
		// itself is order-independent — exclusion always carries a proof.
		order := append([]int(nil), mem...)
		sort.SliceStable(order, func(a, b int) bool {
			la, lb := los[order[a]], los[order[b]]
			if la != lb {
				return la < lb
			}
			return his[order[a]] < his[order[b]]
		})
		// Seed the threshold from every pessimistic corner probed so far:
		// the k best reported scores each sit under one of the k smallest
		// uppers (tier-0 uppers already bracket what the capped engines
		// report; the pivot tier tightens them further when the GED engine
		// is uncapped), so the scan runs against a real bar instead of
		// +Inf — and each batch tightens it further before the next floor
		// check.
		coll.seedUppers(allHis)
		if trace != nil {
			// Bounding, ordering and threshold seeding are bound-stage
			// work; the stage's pruned count (threshold cutoff plus
			// candidates the signature bound condemns) is derived after
			// the scan.
			trace.Observe(StageBound, time.Since(tierStart)-batchPivot, len(mem), 0)
		}

		workers := opts.Workers
		if workers < 1 {
			workers = 1
		}
		if workers > len(order) {
			workers = len(order)
		}
		var (
			wg         sync.WaitGroup
			cursor     atomic.Int64
			stopped    atomic.Bool
			cancelFlag atomic.Bool
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local RankedStats
				defer func() {
					statsMu.Lock()
					stats.add(local)
					statsMu.Unlock()
				}()
				for {
					k := int(cursor.Add(1)) - 1
					if k >= len(order) || stopped.Load() {
						return
					}
					if ctx.Err() != nil {
						cancelFlag.Store(true)
						stopped.Store(true)
						return
					}
					i := order[k]
					name := sn.graphs[i].Name()
					if los[i] > coll.threshold() {
						// Candidates are claimed in optimistic-bound order:
						// everything after this one in the batch is at
						// least as hopeless. (Later batches still get
						// their floor check — their members may bound
						// lower individually.)
						stopped.Store(true)
						return
					}
					var t0 time.Time
					if trace != nil {
						t0 = time.Now()
					}
					// Memo replay: a recorded pair score skips refinement and
					// the engines entirely. The replayed score is exact, so
					// the replay counts as exact-stage work.
					if useMemo {
						if r, ok := ec.memoGet(name, sn.seqs[i], needGED, needMCS); ok {
							ps := measure.PairStatsFrom(sn.sigs[i], qsig, r)
							local.Evaluated++
							if (needGED && !r.GEDExact) || (needMCS && !r.MCSExact) {
								local.Inexact++
							}
							scored[i].Store(true)
							coll.offer(topk.Item{ID: name, Score: m.FromStats(ps)})
							if trace != nil {
								trace.Observe(StageExact, time.Since(t0), 1, 0)
							}
							continue
						}
					}
					// Tier 1: polynomial refinement, witnesses kept for the
					// engines.
					var wit *measure.Witness
					bounds[i], wit = measure.RefineWitness(sn.graphs[i], q, bounds[i])
					if trace != nil {
						trace.Observe(StageRefine, time.Since(t0), 1, 0)
						t0 = time.Now()
					}
					hints := measure.PairHints{Sig1: sn.sigs[i], Sig2: qsig, Witness: wit}
					// Tier 2: threshold-fed evaluation — an engine decision
					// run excludes, or a plain exact run scores.
					score, got, excluded, inexact := measure.ComputeRankResults(sn.graphs[i], q, m, coll.threshold(), bounds[i], opts.Eval, hints)
					if excluded {
						if trace != nil {
							exactPruned.Add(1)
							trace.Observe(StageExact, time.Since(t0), 1, 1)
						}
						continue
					}
					ec.memoPublish(name, sn.seqs[i], got)
					local.Evaluated++
					if inexact {
						local.Inexact++
					}
					scored[i].Store(true)
					coll.offer(topk.Item{ID: name, Score: score})
					if trace != nil {
						trace.Observe(StageExact, time.Since(t0), 1, 0)
					}
				}
			}()
		}
		wg.Wait()
		if cancelFlag.Load() {
			canceled = true
			break
		}
	}
	if canceled {
		return RankedStats{}, ctx.Err()
	}
	stats.Pruned = n - stats.Evaluated
	if attribute {
		// Attribute exclusions the pivot tier alone explains: at the
		// final threshold the merged optimistic bound condemns the
		// candidate but the signature bound would have let it through.
		// Candidates a skipped cell covers were never bounded at all —
		// they are the vector tier's, not the pivot tier's.
		th := coll.threshold()
		for i := 0; i < n; i++ {
			if probed[i] && !scored[i].Load() && los[i] > th && sigLos[i] <= th {
				stats.PivotPruned++
			}
		}
	}
	stats.PivotDists, stats.MemoHits, stats.MemoMisses = ec.counters()
	if trace != nil {
		if vs != nil {
			trace.Observe(StageVector, vs.planDur, n, stats.VectorSkipped)
		}
		if attribute {
			trace.Observe(StagePivot, pivotDur, n, stats.PivotPruned)
		}
		// Whatever was excluded without reaching the engines — the
		// best-first cutoff or a signature-bound condemnation — is the
		// bound stage's doing, minus the vector and pivot tiers'
		// attributed shares.
		trace.Observe(StageBound, 0, 0, stats.Pruned-int(exactPruned.Load())-stats.PivotPruned-stats.VectorSkipped)
	}
	return stats, nil
}
