package gdb

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/topk"
)

// Best-first ranked-query evaluation. A top-k or range query does not
// need the exact score of every database graph: candidates are ordered
// by the optimistic (lower) end of their signature-derived score
// interval and evaluated most-promising-first against a live threshold
// — the current k-th best score, or the radius. The moment the next
// candidate's optimistic bound exceeds the threshold, every remaining
// candidate is provably out and the scan stops. Candidates the bound
// cannot settle go through the same tiers as pruned skyline evaluation:
// polynomial refinement (bipartite + greedy, witnesses reused), then a
// threshold-fed decision run of the exact engines (ged.Options.Limit /
// mcs.Options.Need) that discards most survivors without paying for
// exactness, and a plain exact evaluation only for candidates that
// might make the answer. Included scores are byte-identical to the full
// scan's, so the answer — scores and tie-order — matches the unpruned
// path exactly.

// atomicFloat is a lock-free float64 cell (stored as bits).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// rankedCollector accumulates exact scores behind a mutex and exposes
// the live pruning threshold lock-free: workers read it before every
// candidate, across every shard of a sharded database.
type rankedCollector interface {
	// offer records one exactly-scored item, tightening the threshold.
	offer(it topk.Item)
	// threshold is the current bar: a candidate whose score provably
	// exceeds it can never enter the answer. Monotone non-increasing.
	threshold() float64
	// items returns the collected answer (order documented per kind).
	items() []topk.Item
}

// topkCollector keeps the k best items in a bounded max-heap; the
// threshold is the k-th best score once k items are held (+Inf before).
type topkCollector struct {
	mu sync.Mutex
	b  *topk.Bounded
	th atomicFloat
}

func newTopkCollector(k int) *topkCollector {
	c := &topkCollector{b: topk.NewBounded(k)}
	c.th.store(math.Inf(1))
	return c
}

func (c *topkCollector) offer(it topk.Item) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.b.Offer(it)
	if c.b.Full() {
		if w, ok := c.b.Worst(); ok {
			c.th.store(w.Score)
		}
	}
}

func (c *topkCollector) threshold() float64 { return c.th.load() }

// items returns the k best in ascending (score, ID) order — exactly
// topk.Select's order.
func (c *topkCollector) items() []topk.Item {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.b.Items()
}

// rangeCollector keeps every item within the radius; the threshold is
// the radius itself, fixed for the whole query.
type rangeCollector struct {
	radius float64
	mu     sync.Mutex
	list   []topk.Item
}

func newRangeCollector(radius float64) *rangeCollector {
	return &rangeCollector{radius: radius, list: []topk.Item{}}
}

func (c *rangeCollector) offer(it topk.Item) {
	if it.Score > c.radius {
		return // evaluated, but outside the radius
	}
	c.mu.Lock()
	c.list = append(c.list, it)
	c.mu.Unlock()
}

func (c *rangeCollector) threshold() float64 { return c.radius }

// items returns the in-radius items in unspecified order; callers
// restore insertion order (evaluation order is nondeterministic).
func (c *rangeCollector) items() []topk.Item {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]topk.Item{}, c.list...)
}

// RankedStats reports the work one database contributed to a ranked
// evaluation.
type RankedStats struct {
	// Evaluated counts graphs whose exact score was computed.
	Evaluated int
	// Pruned counts graphs excluded without an exact score: best-first
	// cutoff, interval filter, or an engine decision run.
	Pruned int
	// Inexact counts evaluated graphs whose score came from a capped
	// engine bound.
	Inexact int
}

func (s *RankedStats) add(o RankedStats) {
	s.Evaluated += o.Evaluated
	s.Pruned += o.Pruned
	s.Inexact += o.Inexact
}

// Ranked is one in-progress best-first ranked query: the shared
// collector and its live threshold. Shards of a sharded database (and
// cached per-shard answers) evaluate against a single Ranked value so
// the threshold crosses shard boundaries. Safe for concurrent use.
type Ranked struct {
	m    measure.Measure
	coll rankedCollector

	sigOnce sync.Once
	qsig    *measure.Signature
}

// NewRankedTopK starts a top-k evaluation under measure m.
func NewRankedTopK(m measure.Measure, k int) *Ranked {
	return &Ranked{m: m, coll: newTopkCollector(k)}
}

// NewRankedRange starts a range evaluation under measure m.
func NewRankedRange(m measure.Measure, radius float64) *Ranked {
	return &Ranked{m: m, coll: newRangeCollector(radius)}
}

// Offer feeds already-exact scores — e.g. the rows of a cached complete
// vector table — into the collector, tightening the live threshold
// before (or while) other shards evaluate.
func (r *Ranked) Offer(items []topk.Item) {
	for _, it := range items {
		r.coll.offer(it)
	}
}

// Items returns the collected answer: for top-k the k best in
// ascending (score, ID) order, for range the in-radius items in
// unspecified order (restore insertion order with SortItemsByRank or
// the snapshot order).
func (r *Ranked) Items() []topk.Item { return r.coll.items() }

func (r *Ranked) querySig(q *graph.Graph) *measure.Signature {
	r.sigOnce.Do(func() { r.qsig = measure.NewSignature(q) })
	return r.qsig
}

// EvalDB runs the best-first scan of one database's snapshot against
// the shared threshold. opts.Workers bounds the scan's parallelism
// (resolved by the caller); opts.Eval caps the exact engines exactly as
// on the full-scan path, so included scores match it byte for byte.
func (r *Ranked) EvalDB(ctx context.Context, db *DB, q *graph.Graph, opts QueryOptions) (RankedStats, error) {
	graphs, sigs, _ := db.snapshot()
	return evalRanked(ctx, graphs, sigs, r.querySig(q), q, r.m, opts, r.coll)
}

// evalRanked is the scan itself: order candidates by optimistic bound,
// drain them with a worker pool, stop at the threshold.
func evalRanked(ctx context.Context, graphs []*graph.Graph, sigs []*measure.Signature, qsig *measure.Signature, q *graph.Graph, m measure.Measure, opts QueryOptions, coll rankedCollector) (RankedStats, error) {
	n := len(graphs)
	if n == 0 {
		return RankedStats{}, nil
	}

	// Tier 0: bound every candidate from its stored signature alone and
	// order by the optimistic end (ties by snapshot position, for a
	// deterministic claim order).
	bounds := make([]measure.BoundStats, n)
	los := make([]float64, n)
	order := make([]int, n)
	for i, sig := range sigs {
		bounds[i] = measure.BoundPair(sig, qsig)
		los[i], _ = bounds[i].Interval(m)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return los[order[a]] < los[order[b]] })

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		cursor   atomic.Int64
		stopped  atomic.Bool
		canceled atomic.Bool
		statsMu  sync.Mutex
		stats    RankedStats
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local RankedStats
			defer func() {
				statsMu.Lock()
				stats.add(local)
				statsMu.Unlock()
			}()
			for {
				k := int(cursor.Add(1)) - 1
				if k >= n || stopped.Load() {
					return
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					stopped.Store(true)
					return
				}
				i := order[k]
				if los[i] > coll.threshold() {
					// Candidates are claimed in optimistic-bound order:
					// everything after this one is at least as hopeless.
					stopped.Store(true)
					return
				}
				// Tier 1: polynomial refinement, witnesses kept for the
				// engines.
				var wit *measure.Witness
				bounds[i], wit = measure.RefineWitness(graphs[i], q, bounds[i])
				hints := measure.PairHints{Sig1: sigs[i], Sig2: qsig, Witness: wit}
				// Tier 2: threshold-fed evaluation — an engine decision
				// run excludes, or a plain exact run scores.
				score, excluded, inexact := measure.ComputeRank(graphs[i], q, m, coll.threshold(), bounds[i], opts.Eval, hints)
				if excluded {
					continue
				}
				local.Evaluated++
				if inexact {
					local.Inexact++
				}
				coll.offer(topk.Item{ID: graphs[i].Name(), Score: score})
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		return RankedStats{}, ctx.Err()
	}
	stats.Pruned = n - stats.Evaluated
	return stats, nil
}
