package gdb_test

import (
	"context"
	"testing"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/testutil"
)

// requirePrunedRankedMatches asserts that for every shard count, the
// pruned (best-first, cross-shard threshold) top-k and range answers
// over gs are byte-identical — scores and tie-order — to the unpruned
// unsharded reference, for every sweep measure.
func requirePrunedRankedMatches(t *testing.T, gs []*graph.Graph, qs []*graph.Graph, k int, radius float64, eval measure.Options, counts []int) {
	t.Helper()
	ctx := context.Background()
	measures := []measure.Measure{measure.DistEd{}, measure.DistMcs{}, measure.DistGu{}}
	flat := testutil.NewDB(t, gs)
	for _, q := range qs {
		for _, m := range measures {
			refTK, err := flat.TopKQueryContext(ctx, q, m, k, gdb.QueryOptions{Eval: eval, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			refRG, err := flat.RangeQueryContext(ctx, q, m, radius, gdb.QueryOptions{Eval: eval, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			popts := gdb.QueryOptions{Eval: eval, Workers: 4, Prune: true}
			label := q.Name() + "/" + m.Name()

			// Unsharded pruned path.
			tk, err := flat.TopKQueryContext(ctx, q, m, k, popts)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireSameItems(t, label+"/flat-topk", refTK.Items, tk.Items)
			rg, err := flat.RangeQueryContext(ctx, q, m, radius, popts)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireSameItems(t, label+"/flat-range", refRG.Items, rg.Items)

			// Sharded pruned path, every shard count.
			for _, n := range counts {
				sh := testutil.NewSharded(t, n, gs)
				tk, err := sh.TopKQueryContext(ctx, q, m, k, popts)
				if err != nil {
					t.Fatal(err)
				}
				testutil.RequireSameItems(t, label+"/topk", refTK.Items, tk.Items)
				if tk.Stats.Evaluated+tk.Stats.Pruned != len(gs) {
					t.Errorf("%s: %d shards: evaluated %d + pruned %d != %d",
						label, n, tk.Stats.Evaluated, tk.Stats.Pruned, len(gs))
				}
				rg, err := sh.RangeQueryContext(ctx, q, m, radius, popts)
				if err != nil {
					t.Fatal(err)
				}
				testutil.RequireSameItems(t, label+"/range", refRG.Items, rg.Items)
			}
		}
	}
}

// TestPrunedRankedPaper checks pruned==unpruned top-k and range answers
// on the paper database at shard counts 1/2/3/7.
func TestPrunedRankedPaper(t *testing.T) {
	requirePrunedRankedMatches(t, dataset.PaperDB(),
		[]*graph.Graph{dataset.PaperQuery()}, 3, 3, measure.Options{}, []int{1, 2, 3, 7})
}

// TestPrunedRankedSeeded is the property test over seeded random
// databases and mutated queries, with budgeted engines so capped-engine
// admissibility is exercised too.
func TestPrunedRankedSeeded(t *testing.T) {
	for _, seed := range []int64{7, 23} {
		gs := testutil.SeededGraphs(seed, 14)
		qs := testutil.SeededQueries(seed+100, gs, 2)
		requirePrunedRankedMatches(t, gs, qs, 4, 4,
			measure.Options{GEDMaxNodes: 500, MCSMaxNodes: 500}, []int{1, 2, 3, 7})
	}
}
