package gdb

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"skygraph/internal/dataset"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
)

func TestGenerationBumpsOnMutation(t *testing.T) {
	db := paperDB(t)
	g0 := db.Generation()
	if g0 == 0 {
		t.Fatal("generation should be nonzero after inserts")
	}
	if db.Generation() != g0 {
		t.Fatal("generation changed without a mutation")
	}
	if !db.Delete(db.Names()[0]) {
		t.Fatal("delete failed")
	}
	if db.Generation() == g0 {
		t.Fatal("delete did not bump the generation")
	}
	// A failed mutation must not bump.
	g1 := db.Generation()
	if err := db.Insert(dataset.PaperDB()[1]); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	if db.Generation() != g1 {
		t.Fatal("failed insert bumped the generation")
	}
}

func TestWriteToReportsBytes(t *testing.T) {
	db := paperDB(t)
	var buf bytes.Buffer
	n, err := db.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes; wrote %d", n, buf.Len())
	}
	if n == 0 {
		t.Fatal("WriteTo wrote nothing for a non-empty database")
	}
}

// TestSaveLoadQueryDeterminism pins the full persistence round trip: a
// database saved to LGF and reloaded must answer skyline, top-k and
// range queries identically (same members, same vectors).
func TestSaveLoadQueryDeterminism(t *testing.T) {
	db := paperDB(t)
	path := filepath.Join(t.TempDir(), "db.lgf")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db.Names(), reloaded.Names()) {
		t.Fatalf("names drifted: %v vs %v", db.Names(), reloaded.Names())
	}
	q := dataset.PaperQuery()

	r1, err := db.SkylineQuery(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := reloaded.SkylineQuery(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(r1.Skyline, r2.Skyline) || !samePoints(r1.All, r2.All) {
		t.Fatalf("skyline drifted across save/load:\n before %v\n  after %v", r1.Skyline, r2.Skyline)
	}

	k1, err := db.TopKQuery(q, measure.DistEd{}, 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := reloaded.TopKQuery(q, measure.DistEd{}, 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(k1.Items, k2.Items) {
		t.Fatalf("topk drifted: %v vs %v", k1.Items, k2.Items)
	}

	g1, err := db.RangeQuery(q, measure.DistGu{}, 0.9, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := reloaded.RangeQuery(q, measure.DistGu{}, 0.9, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1.Items, g2.Items) {
		t.Fatalf("range drifted: %v vs %v", g1.Items, g2.Items)
	}
}

func samePoints(a, b []skyline.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || !reflect.DeepEqual(a[i].Vec, b[i].Vec) {
			return false
		}
	}
	return true
}

// TestVectorTableMatchesDirectQueries checks the cache-aware entry point
// against the direct query paths it memoizes for.
func TestVectorTableMatchesDirectQueries(t *testing.T) {
	db := paperDB(t)
	q := dataset.PaperQuery()
	tab, err := db.VectorTable(context.Background(), q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Generation != db.Generation() {
		t.Fatalf("table generation %d; db %d", tab.Generation, db.Generation())
	}
	if len(tab.Points) != 7 {
		t.Fatalf("table has %d rows; want 7", len(tab.Points))
	}

	direct, err := db.SkylineQuery(q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(tab.Skyline(nil), direct.Skyline) {
		t.Fatalf("table skyline differs from direct query")
	}

	items, err := tab.TopK(measure.DistEd{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	directK, err := db.TopKQuery(q, measure.DistEd{}, 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items, directK.Items) {
		t.Fatalf("table topk %v differs from direct %v", items, directK.Items)
	}

	rItems, err := tab.Range(measure.DistMcs{}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	directR, err := db.RangeQuery(q, measure.DistMcs{}, 0.8, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rItems, directR.Items) {
		t.Fatalf("table range %v differs from direct %v", rItems, directR.Items)
	}

	// Range with an infinite radius returns every row.
	all, err := tab.Range(measure.DistEd{}, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Fatalf("infinite-radius range returned %d; want 7", len(all))
	}

	// A measure outside the basis is an error, not a panic.
	if _, err := tab.TopK(measure.DistDegree{}, 1); err == nil {
		t.Fatal("topk on out-of-basis measure should error")
	}
}

func TestVectorTableHonorsCancellation(t *testing.T) {
	db := paperDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.VectorTable(ctx, dataset.PaperQuery(), QueryOptions{}); err == nil {
		t.Fatal("canceled context should abort the evaluation")
	}
}

func TestVectorTableDeadline(t *testing.T) {
	db := paperDB(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := db.VectorTable(ctx, dataset.PaperQuery(), QueryOptions{}); err == nil {
		t.Fatal("expired deadline should abort the evaluation")
	}
}
