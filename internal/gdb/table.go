package gdb

import (
	"context"
	"fmt"
	"time"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
	"skygraph/internal/topk"
)

// VectorTable is the full GCS evaluation of one query graph against a
// database snapshot: one point per database graph, in insertion order.
// It is the unit of caching for a query-serving layer — skyline, top-k
// and range answers for the same (query, basis, eval options) are all
// derivable from it without touching the GED/MCS engines again.
type VectorTable struct {
	// Generation is the database generation the table was computed at.
	Generation uint64
	// Basis is the measure basis defining the vector columns.
	Basis []measure.Measure
	// Points holds every (graph, GCS vector) pair in insertion order.
	Points []skyline.Point
	// Inexact counts pairs where a capped engine returned a bound.
	Inexact int
	// Duration is the wall-clock time of the evaluation.
	Duration time.Duration
}

// snapshot returns the stored graphs and the generation they belong to
// under a single lock acquisition, so the pair is always consistent.
func (db *DB) snapshot() ([]*graph.Graph, uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*graph.Graph, 0, len(db.names))
	for _, n := range db.names {
		out = append(out, db.graphs[n].g)
	}
	return out, db.gen
}

// VectorTable evaluates the GCS vector of every database graph against q
// in parallel, honoring ctx cancellation between pairs. It is the
// cache-aware query entry point: callers memoize the returned table and
// answer subsequent skyline/top-k/range requests from it via the table's
// own methods, with zero new pair evaluations.
func (db *DB) VectorTable(ctx context.Context, q *graph.Graph, opts QueryOptions) (*VectorTable, error) {
	opts = opts.withDefaults()
	start := time.Now()
	graphs, gen := db.snapshot()
	pts := make([]skyline.Point, len(graphs))
	inexact, err := evalVectorsCtx(ctx, graphs, q, opts, pts)
	if err != nil {
		return nil, err
	}
	return &VectorTable{
		Generation: gen,
		Basis:      opts.Basis,
		Points:     pts,
		Inexact:    inexact,
		Duration:   time.Since(start),
	}, nil
}

// Skyline computes the similarity skyline of the table under alg (nil
// means skyline.SFS). No pair evaluation happens.
func (t *VectorTable) Skyline(alg skyline.Algorithm) []skyline.Point {
	if alg == nil {
		alg = skyline.SFS
	}
	return alg(t.Points)
}

// column returns the index of measure m in the table's basis.
func (t *VectorTable) column(m measure.Measure) (int, error) {
	for i, b := range t.Basis {
		if b.Name() == m.Name() {
			return i, nil
		}
	}
	return 0, fmt.Errorf("gdb: measure %s not in table basis %v", m.Name(), measure.BasisNames(t.Basis))
}

// TopK returns the k table rows with the smallest distance under m, which
// must be one of the table's basis measures.
func (t *VectorTable) TopK(m measure.Measure, k int) ([]topk.Item, error) {
	if k < 1 {
		return nil, fmt.Errorf("gdb: k must be >= 1")
	}
	col, err := t.column(m)
	if err != nil {
		return nil, err
	}
	items := make([]topk.Item, len(t.Points))
	for i, p := range t.Points {
		items[i] = topk.Item{ID: p.ID, Score: p.Vec[col]}
	}
	return topk.Select(items, k), nil
}

// Range returns every table row whose distance under m is at most radius.
func (t *VectorTable) Range(m measure.Measure, radius float64) ([]topk.Item, error) {
	col, err := t.column(m)
	if err != nil {
		return nil, err
	}
	var items []topk.Item
	for _, p := range t.Points {
		if d := p.Vec[col]; d <= radius {
			items = append(items, topk.Item{ID: p.ID, Score: d})
		}
	}
	return items, nil
}
