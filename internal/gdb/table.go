package gdb

import (
	"context"
	"fmt"
	"time"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
	"skygraph/internal/topk"
)

// VectorTable is the full GCS evaluation of one query graph against a
// database snapshot: one point per database graph, in insertion order.
// It is the unit of caching for a query-serving layer — skyline, top-k
// and range answers for the same (query, basis, eval options) are all
// derivable from it without touching the GED/MCS engines again.
type VectorTable struct {
	// Generation is the database generation the table was computed at.
	Generation uint64
	// Basis is the measure basis defining the vector columns.
	Basis []measure.Measure
	// Points holds the evaluated (graph, GCS vector) pairs in insertion
	// order: every database graph for a complete table, only the
	// filter-phase survivors for a pruned one.
	Points []skyline.Point
	// Pruned counts graphs the filter phase excluded without exact
	// evaluation (0 for complete tables).
	Pruned int
	// Complete reports whether Points covers every database graph.
	// Pruned tables answer skyline queries exactly but cannot serve
	// top-k or range queries.
	Complete bool
	// Inexact counts pairs where a capped engine returned a bound.
	Inexact int
	// PivotDists counts query-to-pivot engine runs the pivot tier paid
	// for while building the table; PivotPruned counts graphs whose
	// tier-0 exclusion needed the pivot tier's triangle bounds (they
	// survive the signature bounds alone).
	PivotDists  int
	PivotPruned int
	// MemoHits and MemoMisses count score-memo lookups during the
	// build; hits replayed recorded engine results instead of running
	// the engines.
	MemoHits   int
	MemoMisses int
	// VectorCells, VectorSkipped and VectorFallbacks report the vector
	// tier's pre-selection on a pruned build: partition cells probed,
	// graphs dropped wholesale because a probed survivor's pessimistic
	// corner strictly dominates their cell's floor vector, and
	// snapshots an attached index could not serve (stale generation).
	VectorCells     int
	VectorSkipped   int
	VectorFallbacks int
	// Deltas counts the incremental patches applied since the table was
	// cold-built (see DeltaRow / WithInsert / WithDelete): each one
	// advanced Generation by exactly one mutation without re-evaluating
	// the surviving rows.
	Deltas int
	// Duration is the wall-clock time of the evaluation.
	Duration time.Duration
}

// snap is one consistent read of the database: the stored graphs,
// their signatures, their insert sequences (the score-memo keys) and
// the generation they belong to, all under a single lock acquisition.
type snap struct {
	graphs []*graph.Graph
	sigs   []*measure.Signature
	seqs   []uint64
	gen    uint64
}

func (db *DB) snapshot() snap {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sn := snap{
		graphs: make([]*graph.Graph, 0, len(db.names)),
		sigs:   make([]*measure.Signature, 0, len(db.names)),
		seqs:   make([]uint64, 0, len(db.names)),
		gen:    db.gen,
	}
	for _, n := range db.names {
		e := db.graphs[n]
		sn.graphs = append(sn.graphs, e.g)
		sn.sigs = append(sn.sigs, e.sig)
		sn.seqs = append(sn.seqs, e.seq)
	}
	return sn
}

// VectorTable evaluates the GCS vector of database graphs against q in
// parallel, honoring ctx cancellation between pairs. It is the
// cache-aware query entry point: callers memoize the returned table and
// answer subsequent skyline/top-k/range requests from it via the table's
// own methods, with zero new pair evaluations.
//
// With opts.Prune set (and a Boundable basis), evaluation runs the
// filter-and-refine pipeline instead of the full scan: signature bounds
// for every graph, a cheap bipartite/greedy refinement for the
// candidates those bounds cannot exclude, and exact evaluation only for
// the survivors. The resulting table is marked !Complete; its skyline
// is identical to the complete table's.
func (db *DB) VectorTable(ctx context.Context, q *graph.Graph, opts QueryOptions) (*VectorTable, error) {
	opts = opts.withDefaults()
	start := time.Now()
	sn := db.snapshot()
	qsig := measure.NewSignature(q)
	t := &VectorTable{Generation: sn.gen, Basis: opts.Basis, Complete: true}
	var ec *evalCtx
	if opts.Prune && measure.Boundable(opts.Basis) {
		// The pivot tier only pays off when bounds can exclude pairs, so
		// only the pruned build computes query-to-pivot distances.
		ec = db.newEvalCtx(q, qsig, opts, true)
		// The vector tier narrows the snapshot first: whole cells whose
		// floor vector is strictly dominated by an already-probed
		// survivor never even reach the signature bounds.
		psn, vst := db.vectorPreselect(sn, qsig, q, opts, ec)
		pts, pruned, inexact, err := evalPruned(ctx, psn, q, qsig, ec, opts)
		if err != nil {
			return nil, err
		}
		pruned += vst.Skipped
		t.Points, t.Pruned, t.Inexact, t.Complete = pts, pruned, inexact, pruned == 0
		t.VectorCells, t.VectorSkipped, t.VectorFallbacks = vst.Cells, vst.Skipped, vst.Fallbacks
	} else {
		// Stored signatures spare the per-pair histogram/degree rebuild
		// even on the unpruned path; the query's is computed once. The
		// score memo still applies — a warm memo rebuilds a full table
		// with engines running only for graphs inserted since.
		ec = db.newEvalCtx(q, qsig, opts, false)
		hints := make([]measure.PairHints, len(sn.graphs))
		for i := range hints {
			hints[i] = measure.PairHints{Sig1: sn.sigs[i], Sig2: qsig}
		}
		pts := make([]skyline.Point, len(sn.graphs))
		inexact, err := evalVectorsCtx(ctx, sn.graphs, sn.seqs, hints, q, opts, ec, pts)
		if err != nil {
			return nil, err
		}
		t.Points, t.Inexact = pts, inexact
		// The whole unpruned scan is tier-2 work: every pair runs the
		// engines (or replays the memo), nothing is bounded away.
		opts.Trace.Observe(StageExact, time.Since(start), len(sn.graphs), 0)
	}
	t.PivotDists, t.MemoHits, t.MemoMisses = ec.counters()
	if ec != nil {
		t.PivotPruned = int(ec.pivotPruned.Load())
	}
	t.Duration = time.Since(start)
	return t, nil
}

// Skyline computes the similarity skyline of the table under alg (nil
// means skyline.SFS). No pair evaluation happens.
func (t *VectorTable) Skyline(alg skyline.Algorithm) []skyline.Point {
	if alg == nil {
		alg = skyline.SFS
	}
	return alg(t.Points)
}

// column returns the index of measure m in the table's basis.
func (t *VectorTable) column(m measure.Measure) (int, error) {
	for i, b := range t.Basis {
		if b.Name() == m.Name() {
			return i, nil
		}
	}
	return 0, fmt.Errorf("gdb: measure %s not in table basis %v", m.Name(), measure.BasisNames(t.Basis))
}

// TopK returns the k table rows with the smallest distance under m, which
// must be one of the table's basis measures. The table must be complete:
// a graph pruned for skyline purposes can still rank among the k best
// under a single measure.
func (t *VectorTable) TopK(m measure.Measure, k int) ([]topk.Item, error) {
	if k < 1 {
		return nil, fmt.Errorf("gdb: k must be >= 1")
	}
	if !t.Complete {
		return nil, fmt.Errorf("gdb: top-k needs a complete vector table, not a skyline-pruned one")
	}
	col, err := t.column(m)
	if err != nil {
		return nil, err
	}
	items := make([]topk.Item, len(t.Points))
	for i, p := range t.Points {
		items[i] = topk.Item{ID: p.ID, Score: p.Vec[col]}
	}
	return topk.Select(items, k), nil
}

// Range returns every table row whose distance under m is at most radius.
// Like TopK it requires a complete table.
func (t *VectorTable) Range(m measure.Measure, radius float64) ([]topk.Item, error) {
	if !t.Complete {
		return nil, fmt.Errorf("gdb: range needs a complete vector table, not a skyline-pruned one")
	}
	col, err := t.column(m)
	if err != nil {
		return nil, err
	}
	var items []topk.Item
	for _, p := range t.Points {
		if d := p.Vec[col]; d <= radius {
			items = append(items, topk.Item{ID: p.ID, Score: d})
		}
	}
	return items, nil
}
