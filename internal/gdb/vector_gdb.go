package gdb

import (
	"sort"
	"time"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
	"skygraph/internal/vector"
)

// Query-side consumption of the vector candidate tier (internal/vector).
// The tier sits BELOW the bound cascade: it never excludes anything on
// its own authority. Everything it proves comes from per-cell summaries
// that bracket every member — vertex/edge count ranges and per-pivot
// distance ranges — turned into an admissible floor on the reported
// distance via the same FromStats algebra the measures themselves use:
//
//   - a synthetic PairStats is assembled from the OPTIMISTIC end of
//     every summary (smallest provable GED, largest possible common
//     subgraph, zero histogram distances), so for any built-in measure
//     m, m.FromStats(synthetic) <= the score the scan would report for
//     every member of the cell;
//   - the GED floor combines the order/size gap (|Δ|V|| + |Δ|E|| <= GED)
//     with the pivot triangle floor max_j max(qd_j.Lo − PivHi_j,
//     PivLo_j − qd_j.Hi), the latter only when the query's pivot bounds
//     and the cell summaries come from the same pivot-selection epoch;
//   - measures the summaries say nothing about degrade to a floor of 0
//     — never wrong, merely never able to skip.
//
// A partition is consumed only when its generation matches the query's
// snapshot, so cell member indices are exact snapshot indices; any
// mismatch is a counted fallback to the plain scan. Answers are
// byte-identical with the tier on, off, or falling back.

// vecBatch is one probe unit of a ranked scan: the members of one
// partition cell (snapshot indices, ascending) plus the cell's
// admissible floor under the query measure and its centroid proximity.
type vecBatch struct {
	members []int
	floor   float64
	cdist   float64
	cell    int
}

// vecState is one ranked query's view of the vector tier: the probe
// plan in ascending (floor, centroid distance, cell) order, or a
// counted fallback. A nil *vecState means the tier is simply off.
type vecState struct {
	batches  []vecBatch
	fallback bool
	planDur  time.Duration
}

// startVector builds the probe plan for a ranked scan of sn under m.
// It returns nil when the tier is off (no index attached, opts.NoVector,
// or the partition is still dormant) and a fallback-marked state when an
// attached partition cannot serve this snapshot (generation mismatch).
func (db *DB) startVector(sn snap, qsig *measure.Signature, q *graph.Graph, m measure.Measure, opts QueryOptions, ec *evalCtx) *vecState {
	if opts.NoVector {
		return nil
	}
	vidx := db.VectorIndex()
	if vidx == nil {
		return nil
	}
	start := time.Now()
	part := vidx.Snapshot()
	if part == nil {
		return nil // dormant below Config.Cells members: tier off, not a fallback
	}
	if part.Gen != sn.gen || part.N != len(sn.graphs) {
		return &vecState{fallback: true, planDur: time.Since(start)}
	}
	pb := queryPivotBounds(ec)
	qvec := part.QueryVec(graph.WLHistogram(q, vidx.Config().WLIters, part.WLDims), queryMidpoints(pb, part))
	vs := &vecState{batches: make([]vecBatch, 0, len(part.Cells))}
	for c := range part.Cells {
		cell := &part.Cells[c]
		if len(cell.Members) == 0 {
			continue
		}
		vs.batches = append(vs.batches, vecBatch{
			members: cell.Members,
			floor:   cellFloor(part, cell, qsig, m, pb),
			cdist:   part.CentroidDist(qvec, c),
			cell:    c,
		})
	}
	// Ascending floor first: the wholesale-skip guard relies on every
	// batch after the failing one having a floor at least as high.
	// Within a floor tie (floor 0 is the common case near the query),
	// centroid proximity orders the probes so the threshold tightens on
	// true near-neighbors first; the cell index keeps ties deterministic.
	sort.SliceStable(vs.batches, func(a, b int) bool {
		x, y := &vs.batches[a], &vs.batches[b]
		if x.floor != y.floor {
			return x.floor < y.floor
		}
		if x.cdist != y.cdist {
			return x.cdist < y.cdist
		}
		return x.cell < y.cell
	})
	vs.planDur = time.Since(start)
	return vs
}

// queryPivotBounds extracts the pivot tier's per-query state (nil-safe).
func queryPivotBounds(ec *evalCtx) *pivot.QueryBounds {
	if ec == nil {
		return nil
	}
	return ec.pb
}

// queryMidpoints returns the query's pivot-distance midpoints when the
// pivot bounds share the partition's selection epoch, nil otherwise
// (the embedding's pivot block is then zero — an ordering concern only,
// never a correctness one).
func queryMidpoints(pb *pivot.QueryBounds, part *vector.Partition) []float64 {
	if pb == nil || pb.Epoch() != part.PivotEpoch {
		return nil
	}
	return pb.Midpoints()
}

// cellFloor derives an admissible lower bound on the distance the scan
// would REPORT under m between the query and every member of the cell,
// from the cell summaries alone. Admissible capped or not: the floor
// bounds the true distance from below, and capped engines only report
// pessimistically (GED high, MCS low), never below the true value's
// floor.
func cellFloor(part *vector.Partition, cell *vector.Cell, qsig *measure.Signature, m measure.Measure, pb *pivot.QueryBounds) float64 {
	// Order/size gap: every vertex-count difference costs a vertex edit,
	// every edge-count difference an edge edit, and the two op classes
	// are disjoint, so their sum lower-bounds GED for every member.
	orderGap := 0.0
	if d := float64(qsig.Order - cell.OrderMax); d > orderGap {
		orderGap = d
	}
	if d := float64(cell.OrderMin - qsig.Order); d > orderGap {
		orderGap = d
	}
	sizeGap := 0.0
	if d := float64(qsig.Size - cell.SizeMax); d > sizeGap {
		sizeGap = d
	}
	if d := float64(cell.SizeMin - qsig.Size); d > sizeGap {
		sizeGap = d
	}
	gedLo := orderGap + sizeGap
	// Pivot triangle floor: d(q,g) >= d(q,p) − d(p,g) >= qd.Lo − PivHi,
	// and symmetrically PivLo − qd.Hi. Sound only when the cell's ranges
	// and the query's distances refer to the same pivots — same epoch,
	// same count — and the ranges cover every member (PivAll).
	if cell.PivAll && pb != nil && pb.Epoch() == part.PivotEpoch && pb.NumPivots() == len(cell.PivLo) {
		for j := range cell.PivLo {
			e := pb.QueryDistance(j)
			if l := e.Lo - cell.PivHi[j]; l > gedLo {
				gedLo = l
			}
			if l := cell.PivLo[j] - e.Hi; l > gedLo {
				gedLo = l
			}
		}
	}
	// Largest conceivable common subgraph: no member can share more
	// edges with the query than either side has.
	mcsHi := qsig.Size
	if cell.SizeMax < mcsHi {
		mcsHi = cell.SizeMax
	}
	// Each field sits at its most favorable feasible end, and every
	// built-in FromStats is monotone in each field in the direction that
	// makes the composite a lower bound (smaller GED, larger MCS,
	// smaller sizes, zero histogram distances -> smaller distance).
	// Measures reading only the zeroed fields floor at <= 0: never skip.
	return m.FromStats(measure.PairStats{
		GED: gedLo, GEDExact: true,
		MCS: mcsHi, MCSExact: true,
		Size1: cell.SizeMin, Size2: qsig.Size,
		Order1: cell.OrderMin, Order2: qsig.Order,
	})
}

// vecSkyStats reports the vector tier's pre-selection work on a pruned
// skyline build.
type vecSkyStats struct {
	Cells     int
	Skipped   int
	Fallbacks int
}

// maxSkyFilters bounds the skyline pre-selection's filter set: the
// pessimistic corners retained to dominate later cells. Small on
// purpose — domination tests run per cell, not per graph.
const maxSkyFilters = 128

// vectorPreselect narrows a pruned skyline evaluation's snapshot using
// the partition: cells are probed in centroid-proximity order, probed
// members contribute their signature-only pessimistic GCS corner to a
// bounded filter set, and a later cell is dropped wholesale when some
// retained corner strictly dominates the cell's per-basis floor vector
// — that corner's graph then strictly dominates every member of the
// cell (corner >= its true vector componentwise; floor <= every
// member's true vector componentwise; strict in at least one basis
// dimension), so the Pareto front provably contains none of them.
// Returns the (possibly compacted) snapshot to evaluate; when the tier
// is off or nothing was skipped the input snapshot comes back as is.
func (db *DB) vectorPreselect(sn snap, qsig *measure.Signature, q *graph.Graph, opts QueryOptions, ec *evalCtx) (snap, vecSkyStats) {
	var st vecSkyStats
	if opts.NoVector {
		return sn, st
	}
	vidx := db.VectorIndex()
	if vidx == nil {
		return sn, st
	}
	start := time.Now()
	part := vidx.Snapshot()
	if part == nil {
		return sn, st
	}
	if part.Gen != sn.gen || part.N != len(sn.graphs) {
		st.Fallbacks = 1
		opts.Trace.Observe(StageVector, time.Since(start), len(sn.graphs), 0)
		return sn, st
	}
	pb := queryPivotBounds(ec)
	qvec := part.QueryVec(graph.WLHistogram(q, vidx.Config().WLIters, part.WLDims), queryMidpoints(pb, part))

	type corner struct {
		hi  []float64
		sum float64
	}
	filters := make([]corner, 0, maxSkyFilters)
	worst := -1 // index of the largest-sum retained corner
	keep := make([]int, 0, len(sn.graphs))
	for _, c := range part.Nearest(qvec) {
		cell := &part.Cells[c]
		if len(cell.Members) == 0 {
			continue
		}
		floor := make([]float64, len(opts.Basis))
		for d, m := range opts.Basis {
			floor[d] = cellFloor(part, cell, qsig, m, pb)
		}
		dominated := false
		for _, f := range filters {
			if cornerDominates(f.hi, floor) {
				dominated = true
				break
			}
		}
		if dominated {
			st.Skipped += len(cell.Members)
			continue
		}
		st.Cells++
		keep = append(keep, cell.Members...)
		// Feed the filter set from the probed members' signature-only
		// pessimistic corners (no pivot tighten — this must stay cheap).
		// Bounded: keep the smallest-sum corners, they dominate most.
		for _, i := range cell.Members {
			_, hi := measure.BoundPair(sn.sigs[i], qsig).IntervalGCS(opts.Basis)
			sum := 0.0
			for _, x := range hi {
				sum += x
			}
			if len(filters) < maxSkyFilters {
				filters = append(filters, corner{hi: hi, sum: sum})
				if worst < 0 || sum > filters[worst].sum {
					worst = len(filters) - 1
				}
				continue
			}
			if sum >= filters[worst].sum {
				continue
			}
			filters[worst] = corner{hi: hi, sum: sum}
			for j := range filters {
				if filters[j].sum > filters[worst].sum {
					worst = j
				}
			}
		}
	}
	opts.Trace.Observe(StageVector, time.Since(start), len(sn.graphs), st.Skipped)
	if st.Skipped == 0 {
		return sn, st
	}
	// Compact the snapshot to the kept members, preserving insertion
	// order — evalPruned's output order and the survivors' filter roles
	// are position-independent, so the subset evaluates exactly as it
	// would inside the full pass.
	sort.Ints(keep)
	sub := snap{
		graphs: make([]*graph.Graph, 0, len(keep)),
		sigs:   make([]*measure.Signature, 0, len(keep)),
		seqs:   make([]uint64, 0, len(keep)),
		gen:    sn.gen,
	}
	for _, i := range keep {
		sub.graphs = append(sub.graphs, sn.graphs[i])
		sub.sigs = append(sub.sigs, sn.sigs[i])
		sub.seqs = append(sub.seqs, sn.seqs[i])
	}
	return sub, st
}

// cornerDominates reports whether pessimistic corner a strictly
// dominates floor vector b: a <= b in every dimension, a < b in at
// least one. (skyline.Point's dominance helper is unexported and works
// on Points; this is the same minimization convention.)
func cornerDominates(a, b []float64) bool {
	strict := false
	for d := range a {
		if a[d] > b[d] {
			return false
		}
		if a[d] < b[d] {
			strict = true
		}
	}
	return strict
}
