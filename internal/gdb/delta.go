package gdb

import (
	"skygraph/internal/graph"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
)

// Delta maintenance primitives. A cached complete VectorTable (or a
// cached ranked answer derived from one evaluation) differs from its
// successor generation by exactly one row when the mutation between
// them was a single insert or delete. DeltaRow and DeltaScore evaluate
// that one row through the same code path the cold build uses —
// stored signature hints, ScoreMemo interplay, identical engine
// options — so a spliced row is byte-identical to the row a cold
// recompute would produce. The serving layer owns the provability
// argument (which cached entries a given mutation may patch); these
// primitives only guarantee row fidelity and report the generation
// they observed so the caller can detect interleaved mutations.

// DeltaRow evaluates the GCS vector of the single named graph against
// q, exactly as the unpruned table build would: stored signature as
// the pair hint, score-memo replay and publish, opts.Eval engine caps.
// gen is the database generation observed while reading the graph —
// callers patching a table toward generation G must see gen == G, or a
// later mutation has interleaved and the row may describe a different
// graph value (delete + re-insert of the same name). ok is false when
// the name is not present.
func (db *DB) DeltaRow(name string, q *graph.Graph, opts QueryOptions) (pt skyline.Point, inexact bool, gen uint64, ok bool) {
	opts = opts.withDefaults()
	db.mu.RLock()
	e, present := db.graphs[name]
	gen = db.gen
	db.mu.RUnlock()
	if !present {
		return skyline.Point{}, false, gen, false
	}
	qsig := measure.NewSignature(q)
	ec := db.newEvalCtx(q, qsig, opts, false)
	ps := ec.computeFull(e.g, q, e.seq, opts.Eval, measure.PairHints{Sig1: e.sig, Sig2: qsig})
	pt = skyline.Point{ID: name, Vec: measure.GCS(ps, opts.Basis)}
	return pt, !ps.GEDExact || !ps.MCSExact, gen, true
}

// DeltaScore evaluates the single named graph's exact score under m,
// mirroring the unpruned reference scan (scanScores): only the engines
// m consumes run, with memo replay and publish. Scores are therefore
// byte-identical to both the full scan and the best-first ranked path.
// gen and ok behave as in DeltaRow.
func (db *DB) DeltaScore(name string, q *graph.Graph, m measure.Measure, opts QueryOptions) (score float64, inexact bool, gen uint64, ok bool) {
	opts = opts.withDefaults()
	db.mu.RLock()
	e, present := db.graphs[name]
	gen = db.gen
	db.mu.RUnlock()
	if !present {
		return 0, false, gen, false
	}
	qsig := measure.NewSignature(q)
	ec := db.newEvalCtx(q, qsig, opts, false)
	h := measure.PairHints{Sig1: e.sig, Sig2: qsig}
	if measure.Rankable(m) {
		needGED, needMCS := measure.EngineNeeds(m)
		var have measure.EngineResults
		if needGED || needMCS {
			have, _ = ec.memoGet(name, e.seq, needGED, needMCS)
		}
		var got measure.EngineResults
		score, got, inexact = measure.ScorePairWith(e.g, q, m, opts.Eval, h, have)
		ec.memoPublish(name, e.seq, got)
		return score, inexact, gen, true
	}
	ps := ec.computeFull(e.g, q, e.seq, opts.Eval, h)
	return m.FromStats(ps), !ps.GEDExact || !ps.MCSExact, gen, true
}

// WithInsert returns a new table extending t by one freshly inserted
// row at generation gen. The receiver is never mutated — concurrent
// readers may hold it — and the row lands at the end of Points,
// matching the global insertion order a cold rebuild would produce.
// The caller must have proven admissibility: t is complete, gen ==
// t.Generation+1, and the row was evaluated at exactly gen (DeltaRow's
// returned generation).
func (t *VectorTable) WithInsert(pt skyline.Point, inexact bool, gen uint64) *VectorTable {
	nt := *t
	nt.Points = make([]skyline.Point, len(t.Points)+1)
	copy(nt.Points, t.Points)
	nt.Points[len(t.Points)] = pt
	if inexact {
		nt.Inexact++
	}
	nt.Generation = gen
	nt.Deltas++
	return &nt
}

// WithDelete returns a new table with the named row removed and the
// generation advanced to gen (again without mutating the receiver).
// ok is false when the name has no row — impossible for a complete
// table and a victim that existed, so callers treat it as a failed
// proof and fall back to invalidation. Skyline, top-k and range
// answers derive from Points per call, so dropping the row is the
// entire delete: no skyline recomputation happens unless a later query
// asks for one, and then only over the surviving rows.
func (t *VectorTable) WithDelete(name string, gen uint64) (*VectorTable, bool) {
	idx := -1
	for i := range t.Points {
		if t.Points[i].ID == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	nt := *t
	nt.Points = make([]skyline.Point, 0, len(t.Points)-1)
	nt.Points = append(nt.Points, t.Points[:idx]...)
	nt.Points = append(nt.Points, t.Points[idx+1:]...)
	nt.Generation = gen
	nt.Deltas++
	return &nt, true
}
