package gdb

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"skygraph/internal/fault"
	"skygraph/internal/graph"
	"skygraph/internal/wal"
)

// Store receives every database mutation BEFORE it is applied (and
// before the caller is told it succeeded) — the write-ahead contract.
// An error from either method fails the mutation with the database
// unchanged. Implementations are called under the database's mutation
// locks, so calls arrive in exactly the global mutation order and need
// no ordering logic of their own.
type Store interface {
	// LogInsert records that g is about to be inserted with the given
	// insert sequence, under the client's idempotency key ("" =
	// unkeyed).
	LogInsert(g *graph.Graph, seq uint64, key string) error
	// LogDelete records that the named graph is about to be removed,
	// under the client's idempotency key ("" = unkeyed).
	LogDelete(name, key string) error
}

// walStore adapts a wal.Log to the Store interface: inserts carry the
// LGF-encoded graph as their payload, deletes just the name. The
// idempotency key rides along in the record, so an accepted keyed
// mutation leaves durable evidence of its key — recovery rebuilds the
// key table from it instead of guessing from surviving state. Each
// successful keyed append is also noted in the live key table, which
// snapshots persist into the manifest so the evidence outlives log
// reclaim.
type walStore struct {
	log  *wal.Log
	keys *keyTable
}

func (s *walStore) LogInsert(g *graph.Graph, seq uint64, key string) error {
	_, err := s.log.Append(wal.Record{
		Op:   wal.OpInsert,
		Seq:  seq,
		Name: g.Name(),
		Key:  key,
		Data: []byte(graph.MarshalLGF(g)),
	})
	if err == nil {
		s.keys.noteInsert(key, g.Name())
	}
	return err
}

func (s *walStore) LogDelete(name, key string) error {
	_, err := s.log.Append(wal.Record{Op: wal.OpDelete, Name: name, Key: key})
	if err == nil {
		s.keys.noteDelete(key, name)
	}
	return err
}

// FaultStore wraps a Store with the store-level failpoints: it lets
// chaos runs fail mutations before they reach the WAL at all (the
// "store is sick but the log is fine" shape), independently of the
// WAL's own fs-level failpoints. It is wired in by OpenDurable, so
// every durable database is injectable; disarmed failpoints cost one
// atomic load per mutation.
type FaultStore struct {
	Inner Store
}

func (s *FaultStore) LogInsert(g *graph.Graph, seq uint64, key string) error {
	if err := fault.Hit(fault.StoreInsert).Do(); err != nil {
		return err
	}
	return s.Inner.LogInsert(g, seq, key)
}

func (s *FaultStore) LogDelete(name, key string) error {
	if err := fault.Hit(fault.StoreDelete).Do(); err != nil {
		return err
	}
	return s.Inner.LogDelete(name, key)
}

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Dir is the data directory (created if missing). It holds the WAL
	// segments, the snapshot files and the MANIFEST.
	Dir string
	// Shards is the shard count of the in-memory database. It is a
	// runtime choice, not a storage property: the log carries no shard
	// information (routing is a pure function of the graph name), so the
	// same directory recovers correctly under any value.
	Shards int
	// Sync is the WAL fsync policy (default wal.SyncAlways).
	Sync wal.SyncPolicy
	// SyncEvery is the wal.SyncInterval flush period (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes overrides the WAL segment rotation size.
	SegmentBytes int64
}

// RecoveryInfo reports what OpenDurable rebuilt from disk.
type RecoveryInfo struct {
	// ManifestLSN is the snapshot coverage point replay started above
	// (0 when no manifest existed).
	ManifestLSN uint64
	// SnapshotGraphs is the number of graphs loaded from the snapshot.
	SnapshotGraphs int
	// ReplayedRecords is the number of WAL records applied on top.
	ReplayedRecords uint64
	// RepairedBytes and DroppedSegments report torn-tail repair work the
	// WAL open performed (0 after a clean shutdown).
	RepairedBytes   int64
	DroppedSegments int
	// MaxSeq is the insert-sequence high-water mark the process counter
	// was seeded with.
	MaxSeq uint64
	// Duration is the wall time of the whole recovery.
	Duration time.Duration
}

// Durable binds a sharded in-memory database to a data directory:
// every mutation is write-ahead logged, Snapshot cuts an atomic
// point-in-time copy that lets the log be reclaimed, and OpenDurable
// rebuilds the exact database (same graphs, same global insertion
// order, same insert sequences) from whatever the directory holds.
type Durable struct {
	// DB is the recovered database. Mutate it only through Sharded's
	// methods — Durable's snapshot consistency relies on Sharded's
	// mutation lock covering both the WAL append and the in-memory
	// apply.
	DB *Sharded

	dir      string
	log      *wal.Log
	opts     DurableOptions
	recovery RecoveryInfo
	keys     keyTable

	mu            sync.Mutex // serializes Snapshot against Close
	closed        bool
	snapshots     uint64
	lastSnapLSN   uint64
	lastSnapCount int
}

// OpenDurable opens (or initializes) the data directory and returns
// the recovered database bound to it. Recovery loads the manifest's
// snapshot, replays every WAL record above the manifest LSN, seeds the
// process insert-sequence counter above every persisted sequence, and
// only then attaches the write-ahead store — so replay never re-logs.
func OpenDurable(opts DurableOptions) (*Durable, error) {
	start := time.Now()
	if opts.Dir == "" {
		return nil, fmt.Errorf("gdb: durable: empty data directory")
	}
	d := &Durable{dir: opts.Dir, opts: opts, DB: NewSharded(opts.Shards)}

	m, err := wal.LoadManifest(opts.Dir)
	if err != nil {
		return nil, err
	}
	var afterLSN, maxSeq uint64
	if m != nil {
		afterLSN, maxSeq = m.LSN, m.MaxSeq
		d.recovery.ManifestLSN = m.LSN
		d.lastSnapLSN = m.LSN
		d.lastSnapCount = m.Graphs
		d.keys.seed(m.InsertKeys, m.DeleteKeys)
		if m.Snapshot != "" {
			err := wal.ReadSnapshot(filepath.Join(opts.Dir, m.Snapshot), func(rec wal.Record) error {
				return d.applyRecord(rec, &maxSeq)
			})
			if err != nil {
				return nil, fmt.Errorf("gdb: durable: loading snapshot: %w", err)
			}
			d.recovery.SnapshotGraphs = d.DB.Len()
		}
	}

	log, err := wal.Open(opts.Dir, wal.Options{
		Sync:         opts.Sync,
		SyncEvery:    opts.SyncEvery,
		SegmentBytes: opts.SegmentBytes,
		StartLSN:     afterLSN + 1,
	})
	if err != nil {
		return nil, err
	}
	err = log.Replay(afterLSN, func(lsn uint64, rec wal.Record) error {
		d.recovery.ReplayedRecords++
		return d.applyRecord(rec, &maxSeq)
	})
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("gdb: durable: replay: %w", err)
	}

	SeedInsertSeq(maxSeq)
	ws := log.Stats()
	d.recovery.RepairedBytes = ws.RepairedBytes
	d.recovery.DroppedSegments = ws.DroppedSegments
	d.recovery.MaxSeq = maxSeq
	d.recovery.Duration = time.Since(start)
	d.log = log
	// From here on, mutations are logged (through the failpoint wrapper,
	// so chaos tests can fail them at will; disarmed it is a no-op).
	d.DB.SetStore(&FaultStore{Inner: &walStore{log: log, keys: &d.keys}})
	return d, nil
}

// applyRecord applies one recovered record (snapshot entry or replayed
// WAL record) to the in-memory database, tracking the largest insert
// sequence seen and collecting idempotency-key evidence. No store is
// attached yet, so nothing is re-logged.
func (d *Durable) applyRecord(rec wal.Record, maxSeq *uint64) error {
	switch rec.Op {
	case wal.OpInsert:
		g, err := graph.ParseLGF(string(rec.Data))
		if err != nil {
			return fmt.Errorf("decoding graph %q: %w", rec.Name, err)
		}
		if rec.Seq > *maxSeq {
			*maxSeq = rec.Seq
		}
		d.keys.noteInsert(rec.Key, rec.Name)
		return d.DB.insertPreservingSeq(g, rec.Seq)
	case wal.OpDelete:
		// A delete of an absent name is possible only for a mutation that
		// was logged but never acked (crash in between); dropping it is
		// exactly right.
		d.keys.noteDelete(rec.Key, rec.Name)
		d.DB.Delete(rec.Name)
		return nil
	case wal.OpNoop:
		// Health-probe records carry no state.
		return nil
	default:
		return fmt.Errorf("unknown opcode %d", rec.Op)
	}
}

// RecoveredKeys is the idempotency-key evidence recovery found on
// disk: every keyed mutation whose append completed, with the names it
// covered. The serving layer seeds its replay bookkeeping from it, so
// a keyed retry whose ack died with the previous process is answered
// from proof the key was accepted — never reconstructed from the mere
// existence (or absence) of similarly named graphs.
type RecoveredKeys struct {
	// Inserts maps each insert key to the names logged under it, in
	// log order (a multi-graph insert logs one record per graph).
	Inserts map[string][]string
	// Deletes maps each delete key to the name it removed.
	Deletes map[string]string
}

// keyCap bounds each side of the key table (and so the manifest's key
// section): past it the oldest key is forgotten, which turns its next
// retry into an honest 409/404 instead of growing the root without
// bound. Matches the serving layer's default replay-table capacity.
const keyCap = 4096

// keyTable is the durable idempotency-key evidence, maintained live:
// seeded from the manifest at open, extended by recovery's WAL replay
// and by every successful keyed append, and persisted back into the
// manifest at each snapshot — which is what lets the evidence outlive
// the reclaimed log segments that carried it. Insertion order is kept
// for FIFO capping and stable manifests. noteInsert dedups names per
// key, so the overlap between the manifest table and the un-reclaimed
// log suffix (both are replayed at open) is harmless.
type keyTable struct {
	mu       sync.Mutex
	inserts  map[string][]string
	insOrder []string
	deletes  map[string]string
	delOrder []string
}

func (t *keyTable) noteInsert(key, name string) {
	if key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inserts == nil {
		t.inserts = make(map[string][]string)
	}
	names, known := t.inserts[key]
	for _, n := range names {
		if n == name {
			return
		}
	}
	t.inserts[key] = append(names, name)
	if !known {
		t.insOrder = append(t.insOrder, key)
		if len(t.insOrder) > keyCap {
			delete(t.inserts, t.insOrder[0])
			t.insOrder = t.insOrder[1:]
		}
	}
}

func (t *keyTable) noteDelete(key, name string) {
	if key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deletes == nil {
		t.deletes = make(map[string]string)
	}
	if _, known := t.deletes[key]; !known {
		t.delOrder = append(t.delOrder, key)
		if len(t.delOrder) > keyCap {
			delete(t.deletes, t.delOrder[0])
			t.delOrder = t.delOrder[1:]
		}
	}
	t.deletes[key] = name
}

// seed loads the manifest's key section (oldest first, called before
// any concurrent use).
func (t *keyTable) seed(ins []wal.ManifestInsertKey, del []wal.ManifestDeleteKey) {
	for _, k := range ins {
		for _, n := range k.Names {
			t.noteInsert(k.Key, n)
		}
	}
	for _, k := range del {
		t.noteDelete(k.Key, k.Name)
	}
}

// view returns a copy in the exported shape.
func (t *keyTable) view() RecoveredKeys {
	t.mu.Lock()
	defer t.mu.Unlock()
	var rk RecoveredKeys
	if len(t.inserts) > 0 {
		rk.Inserts = make(map[string][]string, len(t.inserts))
		for k, names := range t.inserts {
			rk.Inserts[k] = append([]string(nil), names...)
		}
	}
	if len(t.deletes) > 0 {
		rk.Deletes = make(map[string]string, len(t.deletes))
		for k, n := range t.deletes {
			rk.Deletes[k] = n
		}
	}
	return rk
}

// manifest returns the table in manifest form, oldest key first.
func (t *keyTable) manifest() ([]wal.ManifestInsertKey, []wal.ManifestDeleteKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var ins []wal.ManifestInsertKey
	for _, k := range t.insOrder {
		ins = append(ins, wal.ManifestInsertKey{Key: k, Names: append([]string(nil), t.inserts[k]...)})
	}
	var del []wal.ManifestDeleteKey
	for _, k := range t.delOrder {
		del = append(del, wal.ManifestDeleteKey{Key: k, Name: t.deletes[k]})
	}
	return ins, del
}

// RecoveredKeys returns the idempotency keys recovery found (maps may
// be nil). The snapshot is taken at call time; the serving layer reads
// it once at startup.
func (d *Durable) RecoveredKeys() RecoveredKeys { return d.keys.view() }

// Snapshot cuts a point-in-time copy of the database, commits it with
// an atomic manifest replace, prunes superseded snapshot files and
// reclaims fully covered WAL segments. A snapshot that would cover no
// new records is a no-op. Safe to call concurrently with queries and
// mutations: the cut itself briefly excludes mutations, everything
// after works from the copy.
func (d *Durable) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("gdb: durable: closed")
	}

	// Cut under the mutation lock: every mutation appends to the WAL and
	// applies in memory under sh.mu, so state and LastLSN agree here.
	type snapEntry struct {
		name string
		seq  uint64
		data []byte
	}
	d.DB.mu.RLock()
	lsn := d.log.LastLSN()
	maxSeq := insertSeq.Load()
	cut := make([]snapEntry, 0, len(d.DB.order))
	for _, name := range d.DB.order {
		src := d.DB.shards[d.DB.ShardFor(name)]
		g, ok := src.Get(name)
		if !ok {
			continue
		}
		seq, _ := src.seqOf(name)
		cut = append(cut, snapEntry{name: name, seq: seq, data: []byte(graph.MarshalLGF(g))})
	}
	// The key table is cut inside the same mutation-exclusion window:
	// every keyed record at or below lsn has already been noted, so the
	// manifest's evidence covers exactly the log it lets be reclaimed.
	insKeys, delKeys := d.keys.manifest()
	d.DB.mu.RUnlock()

	if lsn == d.lastSnapLSN {
		return nil // nothing new since the last snapshot
	}

	name := ""
	if len(cut) > 0 {
		var err error
		name, err = wal.WriteSnapshot(d.dir, lsn, func(sink func(wal.Record) error) error {
			for _, e := range cut {
				rec := wal.Record{Op: wal.OpInsert, Seq: e.seq, Name: e.name, Data: e.data}
				if err := sink(rec); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	err := wal.WriteManifest(d.dir, wal.Manifest{
		LSN:        lsn,
		MaxSeq:     maxSeq,
		Snapshot:   name,
		Graphs:     len(cut),
		InsertKeys: insKeys,
		DeleteKeys: delKeys,
	})
	if err != nil {
		return err
	}
	d.snapshots++
	d.lastSnapLSN = lsn
	d.lastSnapCount = len(cut)
	// Best-effort housekeeping: the state is already committed, and a
	// failure here only leaves extra files the next snapshot retries.
	_ = wal.PruneSnapshots(d.dir, name)
	_ = d.log.Reclaim(lsn)
	return nil
}

// Close flushes the WAL and closes it. Mutations after Close fail (the
// attached store refuses appends); the database stays queryable.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.log.Close()
}

// Sync flushes appended WAL records to stable storage regardless of
// the fsync policy.
func (d *Durable) Sync() error { return d.log.Sync() }

// Probe exercises the full append+fsync path with a no-op record and
// reports whether it worked — the health state machine's "is the disk
// writable again?" check. A successful probe proves a real mutation
// would have persisted; the record itself is skipped on replay.
func (d *Durable) Probe() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("gdb: durable: closed")
	}
	if _, err := d.log.Append(wal.Record{Op: wal.OpNoop}); err != nil {
		return err
	}
	return d.log.Sync()
}

// Dir returns the data directory.
func (d *Durable) Dir() string { return d.dir }

// Recovery returns what OpenDurable rebuilt from disk.
func (d *Durable) Recovery() RecoveryInfo { return d.recovery }

// DurabilityStats is a point-in-time view of the persistence layer for
// the serving layer's stats and metrics endpoints.
type DurabilityStats struct {
	Dir            string
	Sync           string
	WAL            wal.Stats
	Recovery       RecoveryInfo
	Snapshots      uint64
	LastSnapLSN    uint64
	LastSnapGraphs int
}

// Stats returns the persistence layer's counters.
func (d *Durable) Stats() DurabilityStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DurabilityStats{
		Dir:            d.dir,
		Sync:           d.opts.Sync.String(),
		WAL:            d.log.Stats(),
		Recovery:       d.recovery,
		Snapshots:      d.snapshots,
		LastSnapLSN:    d.lastSnapLSN,
		LastSnapGraphs: d.lastSnapCount,
	}
}
